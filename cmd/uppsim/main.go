// Command uppsim runs a single chiplet-NoC simulation and prints its
// statistics — the quick way to poke at one configuration.
//
// Examples:
//
//	uppsim -scheme upp -rate 0.05 -pattern uniform_random
//	uppsim -scheme composable -vcs 4 -pattern transpose -cycles 50000
//	uppsim -scheme upp -faults 10 -rate 0.03
//	uppsim -scheme upp -fault-plan "flaps=4,drop=0.2" -rate 0.05
//	uppsim -scheme upp -fault-plan "kill=3@5000,kill=9@5000" -rate 0.03
//
// Persistent events in a fault plan (kill/add/killchiplet, see
// EXPERIMENTS.md) automatically attach the reconfiguration engine
// (internal/reconfig) instead of the plain injector and force up*/down*
// routing so the tables can be rebuilt mid-run (DESIGN.md §15).
//
//	uppsim -scheme none -rate 0.10       # watch a deadlock wedge the network
//	uppsim -scale large -rate 0.01       # 2048-router scale-out preset
//	UPP_KERNEL=parallel UPP_SHARDS=4 uppsim -scale huge -rate 0.005 -cycles 2000
//
// Closed-loop collective workloads (see EXPERIMENTS.md for the spec
// syntax) replace the rate-driven generator; a run can be recorded to a
// binary trace and replayed open-loop:
//
//	uppsim -scheme upp -workload ring_allreduce
//	uppsim -scheme upp -workload "training_step:gap=500,iters=4"
//	uppsim -scheme upp -workload all_to_all -record a2a.trace
//	uppsim -scheme upp -replay a2a.trace
//
// A rate-driven run can be checkpointed mid-flight and resumed
// bit-identically; the checkpoint embeds its spec, so -restore needs no
// other flags (DESIGN.md §14):
//
//	uppsim -scheme upp -rate 0.05 -snapshot run.upwr -at 5000
//	uppsim -restore run.upwr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"uppnoc/internal/experiments"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
	"uppnoc/internal/workload"
)

func main() {
	var (
		schemeName = flag.String("scheme", "upp", "upp | composable | remote_control | none")
		patName    = flag.String("pattern", "uniform_random", "uniform_random | bit_complement | bit_rotation | transpose")
		rate       = flag.Float64("rate", 0.03, "offered load, flits/cycle/node")
		vcs        = flag.Int("vcs", 1, "VCs per virtual network (1 or 4)")
		warmup     = flag.Int("warmup", 10000, "warmup cycles")
		cycles     = flag.Int("cycles", 100000, "measured cycles")
		faults     = flag.Int("faults", 0, "faulty links (forces up*/down* routing)")
		faultPlan  = flag.String("fault-plan", os.Getenv("UPP_FAULTS"), "runtime fault-injection spec, e.g. \"flaps=4,drop=0.2\" (default $UPP_FAULTS; see EXPERIMENTS.md)")
		large      = flag.Bool("large", false, "use the 128-core system (fig. 9)")
		boundaries = flag.Int("boundaries", 4, "boundary routers per chiplet")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		trace      = flag.Int("trace", 0, "print the first N simulator events (0 = off)")
		adaptive   = flag.Bool("adaptive", false, "minimal-adaptive odd-even local routing")
		vct        = flag.Bool("vct", false, "virtual cut-through flow control")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")
		wl         = flag.String("workload", "", "closed-loop collective workload spec, e.g. \"ring_allreduce\" or \"training_step:gap=500,iters=4\" (replaces -pattern/-rate)")
		maxCycles  = flag.Int("max-cycles", 400000, "workload completion horizon")
		record     = flag.String("record", "", "with -workload: write the run's binary message trace to this file")
		replay     = flag.String("replay", "", "replay a recorded trace open-loop instead of running a workload")
		routerArch = flag.String("router", "", "router microarchitecture: iq | oq | voq (default $UPP_ROUTER, then iq)")
		scale      = flag.String("scale", "", "scale-out preset: small (512 routers) | large (2048) | huge (8192); replaces -large/-boundaries")
		snapshot   = flag.String("snapshot", "", "write a checkpoint of the run's state to this file when it reaches -at, then continue")
		snapAt     = flag.Int64("at", 0, "with -snapshot: absolute cycle to checkpoint at (warmup starts the timeline at 0)")
		restore    = flag.String("restore", "", "resume a checkpoint written by -snapshot and run it to its schedule's end")
	)
	flag.Parse()

	sysCfg := topology.BaselineConfig()
	if *large {
		sysCfg = topology.LargeConfig()
	}
	sysCfg.BoundaryPerChiplet = *boundaries

	var scaleCfg *topology.ScaleConfig
	if *scale != "" {
		found := false
		for _, sys := range experiments.ScaleSystems() {
			if sys.Label == *scale {
				sc := sys.Config
				scaleCfg = &sc
				found = true
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown -scale preset %q (want small, large or huge)", *scale))
		}
		if *replay != "" || *wl != "" {
			fatal(fmt.Errorf("-scale does not combine with -replay/-workload"))
		}
	}

	if (*snapshot != "" || *restore != "") && (*wl != "" || *replay != "") {
		fatal(fmt.Errorf("-snapshot/-restore checkpoint rate-driven runs, not -workload/-replay"))
	}
	if *restore != "" {
		if *snapshot != "" {
			fatal(fmt.Errorf("-restore does not combine with -snapshot"))
		}
		data, err := os.ReadFile(*restore)
		if err != nil {
			fatal(err)
		}
		pt, spec, err := experiments.RunRestored(data)
		if err != nil {
			fatal(err)
		}
		printPoint(string(spec.Scheme), spec.Pattern.Name(), pt, *asJSON)
		return
	}

	if *replay != "" {
		runReplay(sysCfg, *schemeName, *routerArch, *vcs, *seed, *maxCycles, *replay)
		return
	}
	if *wl != "" {
		runWorkload(sysCfg, *schemeName, *routerArch, *vcs, *seed, *maxCycles, *wl, *record, *asJSON)
		return
	}

	pat, err := traffic.PatternByName(*patName)
	if err != nil {
		fatal(err)
	}
	spec := experiments.RunSpec{
		Topo:       sysCfg,
		Scale:      scaleCfg,
		Scheme:     experiments.SchemeName(*schemeName),
		VCsPerVNet: *vcs,
		Pattern:    pat,
		Rate:       *rate,
		Seed:       *seed,
		Dur:        experiments.Durations{Warmup: *warmup, Measure: *cycles},
		Faults:     *faults,
		FaultSeed:  *seed * 31,
		FaultPlan:  *faultPlan,
		RouterArch: *routerArch,
	}
	spec.TraceLimit = *trace
	spec.Adaptive = *adaptive
	spec.VCT = *vct
	var pt experiments.Point
	if *snapshot != "" {
		f, cerr := os.Create(*snapshot)
		if cerr != nil {
			fatal(cerr)
		}
		pt, err = experiments.RunCheckpointed(spec, *snapAt, f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "uppsim: checkpoint at cycle %d written to %s\n", *snapAt, *snapshot)
		}
	} else {
		pt, err = experiments.Run(spec)
	}
	if err != nil {
		fatal(err)
	}
	printPoint(*schemeName, *patName, pt, *asJSON)
}

// printPoint renders a rate-driven run's outcome, as JSON or the aligned
// text block.
func printPoint(schemeName, patName string, pt experiments.Point, asJSON bool) {
	if asJSON {
		out, err := json.MarshalIndent(struct {
			Scheme  string
			Pattern string
			experiments.Point
		}{schemeName, patName, pt}, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("scheme            %s\n", schemeName)
	fmt.Printf("pattern           %s\n", patName)
	fmt.Printf("offered load      %.4f flits/cycle/node\n", pt.Rate)
	fmt.Printf("accepted load     %.4f flits/cycle/node\n", pt.Throughput)
	fmt.Printf("avg latency       %.2f cycles (network %.2f + queueing %.2f)\n", pt.TotalLat, pt.NetLat, pt.QueueLat)
	fmt.Printf("p50/p99/max       %d / %d / %d cycles\n", pt.LatP50, pt.LatP99, pt.LatMax)
	fmt.Printf("packets measured  %d\n", pt.Packets)
	fmt.Printf("saturated         %v\n", pt.Saturated)
	if schemeName == "upp" {
		fmt.Printf("upward packets    %d\n", pt.Upward)
		fmt.Printf("popups completed  %d\n", pt.Popups)
		fmt.Printf("signal hops       %d\n", pt.Signals)
	}
}

// runWorkload drives a closed-loop collective to completion (or the
// horizon) and prints completion time plus scheme counters.
func runWorkload(sysCfg topology.SystemConfig, schemeName, routerArch string, vcs int, seed uint64, maxCycles int, wl, record string, asJSON bool) {
	spec := experiments.WorkloadSpec{
		Topo:       sysCfg,
		Scheme:     experiments.SchemeName(schemeName),
		Workload:   wl,
		VCsPerVNet: vcs,
		Seed:       seed,
		MaxCycles:  maxCycles,
		RouterArch: routerArch,
	}
	var rec *workload.TraceRecorder
	if record != "" {
		topo, err := topology.Build(sysCfg)
		if err != nil {
			fatal(err)
		}
		rec = workload.NewTraceRecorder(len(topo.Cores()))
		spec.Recorder = rec
	}
	pt, err := experiments.RunWorkload(spec)
	if err != nil {
		fatal(err)
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			fatal(err)
		}
		if err := rec.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "uppsim: recorded %d messages to %s\n", len(rec.Trace().Records), record)
	}
	if asJSON {
		out, err := json.MarshalIndent(pt, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("scheme            %s\n", schemeName)
	fmt.Printf("workload          %s\n", wl)
	fmt.Printf("completed         %v (%d/%d ops)\n", pt.Completed, pt.OpsFired, pt.OpsTotal)
	if pt.Completed {
		fmt.Printf("finish cycle      %d\n", pt.FinishCycle)
	}
	fmt.Printf("messages          %d\n", pt.Messages)
	fmt.Printf("avg latency       %.2f cycles (network %.2f + queueing %.2f)\n", pt.TotalLat, pt.NetLat, pt.QueueLat)
	if schemeName == "upp" {
		fmt.Printf("upward packets    %d\n", pt.Upward)
		fmt.Printf("popups completed  %d\n", pt.Popups)
		fmt.Printf("signal hops       %d\n", pt.Signals)
	}
	if schemeName == "remote_control" {
		fmt.Printf("injection holds   %d\n", pt.InjectionHolds)
	}
}

// runReplay re-injects a recorded trace open-loop until every record is
// in flight or delivered, then drains and prints the final statistics.
func runReplay(sysCfg topology.SystemConfig, schemeName, routerArch string, vcs int, seed uint64, maxCycles int, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	trace, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	topo, err := topology.Build(sysCfg)
	if err != nil {
		fatal(err)
	}
	scheme, err := experiments.MakeScheme(experiments.SchemeName(schemeName), topo)
	if err != nil {
		fatal(err)
	}
	cfg := network.DefaultConfig()
	if vcs > 0 {
		cfg.Router.VCsPerVNet = vcs
	}
	cfg.Seed = seed + 1
	cfg.RouterArch = routerArch
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		fatal(err)
	}
	rp, err := workload.NewReplayer(n, trace)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < maxCycles && !rp.Done(); i++ {
		rp.Tick(n.Cycle())
		n.Step()
	}
	if !rp.Done() {
		fatal(fmt.Errorf("replay of %s still injecting after %d cycles", path, maxCycles))
	}
	if err := n.Drain(maxCycles, 5000); err != nil {
		fatal(fmt.Errorf("replay drain: %w", err))
	}
	fmt.Printf("scheme            %s\n", schemeName)
	fmt.Printf("trace             %s (%d ranks, %d records)\n", path, trace.Ranks, len(trace.Records))
	fmt.Printf("final cycle       %d\n", n.Cycle())
	fmt.Printf("packets born      %d\n", n.Stats.BornPackets)
	fmt.Printf("packets consumed  %d\n", n.Stats.ConsumedPackets)
	fmt.Printf("avg latency       %.2f cycles (network %.2f + queueing %.2f)\n",
		n.AvgTotalLatency(), n.AvgNetLatency(), n.AvgQueueLatency())
	if schemeName == "upp" {
		fmt.Printf("upward packets    %d\n", n.Stats.UpwardPackets)
		fmt.Printf("popups completed  %d\n", n.Stats.PopupsCompleted)
		fmt.Printf("signal hops       %d\n", n.Stats.SignalsSent)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "uppsim: %v\n", err)
	os.Exit(1)
}
