// Command uppsim runs a single chiplet-NoC simulation and prints its
// statistics — the quick way to poke at one configuration.
//
// Examples:
//
//	uppsim -scheme upp -rate 0.05 -pattern uniform_random
//	uppsim -scheme composable -vcs 4 -pattern transpose -cycles 50000
//	uppsim -scheme upp -faults 10 -rate 0.03
//	uppsim -scheme upp -fault-plan "flaps=4,drop=0.2" -rate 0.05
//	uppsim -scheme none -rate 0.10       # watch a deadlock wedge the network
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"uppnoc/internal/experiments"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func main() {
	var (
		schemeName = flag.String("scheme", "upp", "upp | composable | remote_control | none")
		patName    = flag.String("pattern", "uniform_random", "uniform_random | bit_complement | bit_rotation | transpose")
		rate       = flag.Float64("rate", 0.03, "offered load, flits/cycle/node")
		vcs        = flag.Int("vcs", 1, "VCs per virtual network (1 or 4)")
		warmup     = flag.Int("warmup", 10000, "warmup cycles")
		cycles     = flag.Int("cycles", 100000, "measured cycles")
		faults     = flag.Int("faults", 0, "faulty links (forces up*/down* routing)")
		faultPlan  = flag.String("fault-plan", os.Getenv("UPP_FAULTS"), "runtime fault-injection spec, e.g. \"flaps=4,drop=0.2\" (default $UPP_FAULTS; see EXPERIMENTS.md)")
		large      = flag.Bool("large", false, "use the 128-core system (fig. 9)")
		boundaries = flag.Int("boundaries", 4, "boundary routers per chiplet")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		trace      = flag.Int("trace", 0, "print the first N simulator events (0 = off)")
		adaptive   = flag.Bool("adaptive", false, "minimal-adaptive odd-even local routing")
		vct        = flag.Bool("vct", false, "virtual cut-through flow control")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	sysCfg := topology.BaselineConfig()
	if *large {
		sysCfg = topology.LargeConfig()
	}
	sysCfg.BoundaryPerChiplet = *boundaries

	pat, err := traffic.PatternByName(*patName)
	if err != nil {
		fatal(err)
	}
	spec := experiments.RunSpec{
		Topo:       sysCfg,
		Scheme:     experiments.SchemeName(*schemeName),
		VCsPerVNet: *vcs,
		Pattern:    pat,
		Rate:       *rate,
		Seed:       *seed,
		Dur:        experiments.Durations{Warmup: *warmup, Measure: *cycles},
		Faults:     *faults,
		FaultSeed:  *seed * 31,
		FaultPlan:  *faultPlan,
	}
	spec.TraceLimit = *trace
	spec.Adaptive = *adaptive
	spec.VCT = *vct
	pt, err := experiments.Run(spec)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out, err := json.MarshalIndent(struct {
			Scheme  string
			Pattern string
			experiments.Point
		}{*schemeName, *patName, pt}, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("scheme            %s\n", *schemeName)
	fmt.Printf("pattern           %s\n", *patName)
	fmt.Printf("offered load      %.4f flits/cycle/node\n", pt.Rate)
	fmt.Printf("accepted load     %.4f flits/cycle/node\n", pt.Throughput)
	fmt.Printf("avg latency       %.2f cycles (network %.2f + queueing %.2f)\n", pt.TotalLat, pt.NetLat, pt.QueueLat)
	fmt.Printf("p50/p99/max       %d / %d / %d cycles\n", pt.LatP50, pt.LatP99, pt.LatMax)
	fmt.Printf("packets measured  %d\n", pt.Packets)
	fmt.Printf("saturated         %v\n", pt.Saturated)
	if *schemeName == "upp" {
		fmt.Printf("upward packets    %d\n", pt.Upward)
		fmt.Printf("popups completed  %d\n", pt.Popups)
		fmt.Printf("signal hops       %d\n", pt.Signals)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "uppsim: %v\n", err)
	os.Exit(1)
}
