// Command benchjson runs the cycle-kernel benchmarks (the same
// measurement as the BenchmarkKernel* benchmarks in bench_test.go) and
// writes the results as JSON, so the repository's perf trajectory is
// recorded in a diffable artifact. Run via `make bench-json`.
//
// With -alloc it instead measures the memory axis: allocations and
// bytes per simulated cycle with packet pooling on and off, plus GC
// counts over a fixed run, written as BENCH_alloc.json.
//
// With -parallel it measures all three kernels (naive/active/parallel)
// and records num_cpu and GOMAXPROCS alongside, written as
// BENCH_parallel.json — the CPU count matters because on a single-CPU
// machine the parallel kernel can only pay handoff overhead, and a
// reader must not mistake that for a regression.
//
// With -router it measures the three router microarchitectures
// (iq/oq/voq, equal buffer budget) under the active-set kernel at every
// load, written as BENCH_router.json — the cost axis of the Microarch
// interface and its variants.
//
// With -scale it measures the parallel kernel's shard-scaling curves
// (shards 1/2/4/8, active kernel as the sequential reference) on the
// small/large/huge scale-out systems, written as BENCH_scale.json — the
// regime where per-cycle work per shard is finally large enough for the
// two-phase kernel to show real multicore speedup.
//
// With -cache it measures the result cache's wall-clock effect on a
// fig7-quick subset (the three compared schemes, uniform random, 1 VC):
// the same sweep run cold into a fresh cache directory, again as pure
// cache hits, and a third time warm-started (results evicted, post-warmup
// checkpoints kept), written as BENCH_cache.json. ns_per_cycle here is
// wall-clock over the cycles the sweep represents, so the three rows
// share a denominator and the speedup ratios are wall-clock ratios.
//
// With -reconfig it measures dynamic reconfiguration: the simulated
// wall-clock of a two-link kill-and-migrate transition (Begin→Finish
// cycles) under the drainless and epoch-fenced protocols at three
// offered loads, plus the real wall-clock cost of the soak, written as
// BENCH_reconfig.json. The transition numbers are deterministic
// simulation outputs — only ns_per_cycle varies across machines.
//
// With -compare old.json new.json it diffs two BENCH_*.json files
// produced by any of the modes above, prints per-measurement
// ns_per_cycle deltas, and exits non-zero when any shared measurement
// regressed beyond -tolerance (default 10%). Run via
// `make bench-compare`; CI runs it warn-only because shared runners are
// noisy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"uppnoc/internal/experiments"
	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/reconfig"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// load pairs a label with the offered rate the benchmark injects at.
type load struct {
	Label string
	Rate  float64
}

var loads = []load{
	{"low", 0.02},
	{"mid", 0.05},
	{"saturation", 0.20},
}

type measurement struct {
	Load   string  `json:"load"`
	Rate   float64 `json:"rate"`
	Kernel string  `json:"kernel"`
	Router string  `json:"router,omitempty"`
	// Topology and NumRouters identify the simulated system ("baseline"
	// for the 60-node paper system, or a scale preset), so measurements
	// from different system sizes are never silently compared.
	Topology   string `json:"topology"`
	NumRouters int    `json:"num_routers"`
	// Shards is the parallel-kernel shard count, recorded per-row only by
	// the -scale mode (the -parallel artifact records it at the top
	// level, where all rows share one resolved value).
	Shards     int     `json:"shards,omitempty"`
	Cycles     int     `json:"cycles"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// allocMeasurement is one row of the -alloc report: the per-cycle
// allocation profile of the benchmark loop plus GC pressure over a
// fixed-length run, with pooling on or off.
type allocMeasurement struct {
	Load           string  `json:"load"`
	Rate           float64 `json:"rate"`
	Pooling        bool    `json:"pooling"`
	Cycles         int     `json:"cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	// GC pressure over a separate fixed run of FixedCycles cycles,
	// measured with runtime.ReadMemStats deltas.
	FixedCycles int    `json:"fixed_cycles"`
	GCCycles    uint32 `json:"gc_cycles"`
	Mallocs     uint64 `json:"mallocs"`
	TotalAlloc  uint64 `json:"total_alloc_bytes"`
	PoolReuses  uint64 `json:"pool_reuses"`
}

type allocReport struct {
	Date         string             `json:"date"`
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	NumCPU       int                `json:"num_cpu"`
	Measurements []allocMeasurement `json:"measurements"`
	// AllocReduction maps load label to unpooled/pooled mallocs ratio over
	// the fixed run: >1 means pooling removes allocations.
	AllocReduction map[string]float64 `json:"malloc_reduction_pooled"`
}

type report struct {
	Date         string        `json:"date"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	Measurements []measurement `json:"measurements"`
	// Speedup maps load label to naive/active ns-per-cycle ratio: >1 means
	// the active-set kernel is faster.
	Speedup map[string]float64 `json:"speedup_active_vs_naive"`
}

// parallelReport is the -parallel artifact: all three kernels at every
// load, plus the CPU/GOMAXPROCS context without which the parallel
// numbers cannot be interpreted (see the package comment).
type parallelReport struct {
	Date         string        `json:"date"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Shards       int           `json:"shards"`
	Measurements []measurement `json:"measurements"`
	// Speedup maps load label to active/parallel ns-per-cycle ratio: >1
	// means the parallel kernel is faster than active. Expect <1 when
	// num_cpu is 1.
	Speedup map[string]float64 `json:"speedup_parallel_vs_active"`
}

func measure(kernel string, rate float64) (measurement, error) {
	return measureArch(kernel, "", rate)
}

// baselineRouters caches the baseline system's node count for the
// topology/num_routers columns of the non-scale modes.
var baselineRouters = sync.OnceValue(func() int {
	return len(topology.MustBuild(topology.BaselineConfig()).Nodes)
})

func measureArch(kernel, arch string, rate float64) (measurement, error) {
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		kb, err := experiments.NewKernelBenchArch(kernel, arch, rate)
		if err != nil {
			buildErr = err
			b.Fatal(err)
		}
		b.ResetTimer()
		kb.Run(b.N)
	})
	if buildErr != nil {
		return measurement{}, buildErr
	}
	return measurement{
		Kernel:     kernel,
		Router:     arch,
		Rate:       rate,
		Topology:   "baseline",
		NumRouters: baselineRouters(),
		Cycles:     r.N,
		NsPerCycle: float64(r.T.Nanoseconds()) / float64(r.N),
	}, nil
}

// measureScale benchmarks one scale system under the given kernel and
// shard count — the cell of the BENCH_scale.json shard-scaling curves.
func measureScale(kernel string, sys experiments.ScaleSystem, shards int, rate float64) (measurement, error) {
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		kb, err := experiments.NewScaleBench(kernel, sys.Config, shards, rate)
		if err != nil {
			buildErr = err
			b.Fatal(err)
		}
		b.ResetTimer()
		kb.Run(b.N)
	})
	if buildErr != nil {
		return measurement{}, buildErr
	}
	return measurement{
		Kernel:     kernel,
		Rate:       rate,
		Topology:   sys.Label,
		NumRouters: sys.Config.NumRouters(),
		Shards:     shards,
		Cycles:     r.N,
		NsPerCycle: float64(r.T.Nanoseconds()) / float64(r.N),
	}, nil
}

// routerReport is the -router artifact: every router microarchitecture
// at every load under the active-set kernel. Overhead maps load label to
// each variant's ns-per-cycle relative to iq (>1 means the variant costs
// more per simulated cycle).
type routerReport struct {
	Date         string                        `json:"date"`
	GoVersion    string                        `json:"go_version"`
	GOOS         string                        `json:"goos"`
	GOARCH       string                        `json:"goarch"`
	NumCPU       int                           `json:"num_cpu"`
	Measurements []measurement                 `json:"measurements"`
	Overhead     map[string]map[string]float64 `json:"overhead_vs_iq"`
}

func runRouter(out string) {
	rep := routerReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Overhead:  map[string]map[string]float64{},
	}
	perLoad := map[string]map[string]float64{}
	for _, l := range loads {
		perLoad[l.Label] = map[string]float64{}
		for _, arch := range experiments.RouterArchs() {
			fmt.Fprintf(os.Stderr, "benchjson: %s load (rate %.2f), %s router...\n", l.Label, l.Rate, arch)
			m, err := measureArch(network.KernelActive, arch, l.Rate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			m.Load = l.Label
			rep.Measurements = append(rep.Measurements, m)
			perLoad[l.Label][arch] = m.NsPerCycle
		}
		rep.Overhead[l.Label] = map[string]float64{}
		for _, arch := range experiments.RouterArchs() {
			rep.Overhead[l.Label][arch] = perLoad[l.Label][arch] / perLoad[l.Label]["iq"]
		}
	}
	writeJSON(out, rep)
	for _, l := range loads {
		fmt.Fprintf(os.Stderr, "  %-10s iq %8.0f ns/cycle, oq %8.0f ns/cycle (%.2fx), voq %8.0f ns/cycle (%.2fx)\n",
			l.Label, perLoad[l.Label]["iq"],
			perLoad[l.Label]["oq"], rep.Overhead[l.Label]["oq"],
			perLoad[l.Label]["voq"], rep.Overhead[l.Label]["voq"])
	}
}

// measureAlloc benchmarks per-cycle allocation behavior with pooling on
// or off, then runs a fixed window under ReadMemStats bracketing so GC
// counts are comparable across machines regardless of how testing.B
// chose N.
func measureAlloc(rate float64, disablePool bool) (allocMeasurement, error) {
	const fixedCycles = 20000
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		kb, err := experiments.NewKernelBenchPool(network.KernelActive, rate, disablePool)
		if err != nil {
			buildErr = err
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		kb.Run(b.N)
	})
	if buildErr != nil {
		return allocMeasurement{}, buildErr
	}
	kb, err := experiments.NewKernelBenchPool(network.KernelActive, rate, disablePool)
	if err != nil {
		return allocMeasurement{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	kb.Run(fixedCycles)
	runtime.ReadMemStats(&after)
	return allocMeasurement{
		Rate:           rate,
		Pooling:        !disablePool,
		Cycles:         r.N,
		NsPerCycle:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerCycle: float64(r.MemAllocs) / float64(r.N),
		BytesPerCycle:  float64(r.MemBytes) / float64(r.N),
		FixedCycles:    fixedCycles,
		GCCycles:       after.NumGC - before.NumGC,
		Mallocs:        after.Mallocs - before.Mallocs,
		TotalAlloc:     after.TotalAlloc - before.TotalAlloc,
		PoolReuses:     kb.Network().PacketPool().Stats.Reuses,
	}, nil
}

func runAlloc(out string) {
	rep := allocReport{
		Date:           time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		AllocReduction: map[string]float64{},
	}
	mallocs := map[string]map[bool]uint64{}
	for _, l := range loads {
		mallocs[l.Label] = map[bool]uint64{}
		for _, disablePool := range []bool{true, false} {
			fmt.Fprintf(os.Stderr, "benchjson: %s load (rate %.2f), pooling=%v...\n", l.Label, l.Rate, !disablePool)
			m, err := measureAlloc(l.Rate, disablePool)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			m.Load = l.Label
			rep.Measurements = append(rep.Measurements, m)
			mallocs[l.Label][!disablePool] = m.Mallocs
		}
		if pooled := mallocs[l.Label][true]; pooled > 0 {
			rep.AllocReduction[l.Label] = float64(mallocs[l.Label][false]) / float64(pooled)
		}
	}
	writeJSON(out, rep)
	for _, m := range rep.Measurements {
		fmt.Fprintf(os.Stderr, "  %-10s pooling=%-5v %8.2f allocs/cycle %10.1f B/cycle, %3d GCs / %d cycles\n",
			m.Load, m.Pooling, m.AllocsPerCycle, m.BytesPerCycle, m.GCCycles, m.FixedCycles)
	}
}

func runParallel(out string) {
	rep := parallelReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Speedup:    map[string]float64{},
	}
	// Record the shard count the kernel will actually resolve to, so the
	// artifact is self-describing.
	{
		kb, err := experiments.NewKernelBench(network.KernelParallel, loads[0].Rate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep.Shards = kb.Network().Shards()
	}
	perLoad := map[string]map[string]float64{}
	for _, l := range loads {
		perLoad[l.Label] = map[string]float64{}
		for _, kernel := range []string{network.KernelNaive, network.KernelActive, network.KernelParallel} {
			fmt.Fprintf(os.Stderr, "benchjson: %s load (rate %.2f), %s kernel...\n", l.Label, l.Rate, kernel)
			m, err := measure(kernel, l.Rate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			m.Load = l.Label
			rep.Measurements = append(rep.Measurements, m)
			perLoad[l.Label][kernel] = m.NsPerCycle
		}
		rep.Speedup[l.Label] = perLoad[l.Label][network.KernelActive] / perLoad[l.Label][network.KernelParallel]
	}
	writeJSON(out, rep)
	for _, l := range loads {
		fmt.Fprintf(os.Stderr, "  %-10s active %8.0f ns/cycle, parallel %8.0f ns/cycle (%.2fx on %d CPUs, %d shards)\n",
			l.Label, perLoad[l.Label][network.KernelActive], perLoad[l.Label][network.KernelParallel],
			rep.Speedup[l.Label], rep.NumCPU, rep.Shards)
	}
}

// scaleReport is the -scale artifact: parallel-kernel ns/cycle across
// shard counts 1/2/4/8 on each scale system (plus the active-set kernel
// as the sequential reference), at the mid load. num_cpu and GOMAXPROCS
// are the interpretation key: on a single-CPU machine every shard count
// degenerates to sequential execution plus handoff overhead, so the
// shard-scaling curve is only meaningful when num_cpu > 1 (CI's
// scale-smoke job regenerates this artifact on a multicore runner).
type scaleReport struct {
	Date         string        `json:"date"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Measurements []measurement `json:"measurements"`
	// Speedup maps topology label to shards=1/shards=4 ns-per-cycle
	// ratio: >1 means four shards beat one. Expect <=1 when num_cpu is 1.
	Speedup map[string]float64 `json:"speedup_shards4_vs_shards1"`
}

// scaleShards is the shard axis of the -scale curves.
var scaleShards = []int{1, 2, 4, 8}

// scaleRate is the offered load of the -scale measurements: just below
// the scale systems' uniform-random saturation (~0.015 accepted
// flits/cycle/node on the 2048-router preset, bisection-limited), so the
// awake set is large enough for per-shard work to dominate coordination
// while steady state still exists — past saturation the injection queues
// grow without bound and ns/cycle drifts with the backlog.
const scaleRate = 0.01

func runScale(out string) {
	rep := scaleReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Speedup:    map[string]float64{},
	}
	perShards := map[string]map[int]float64{}
	for _, sys := range experiments.ScaleSystems() {
		perShards[sys.Label] = map[int]float64{}
		fmt.Fprintf(os.Stderr, "benchjson: %s (%d routers), active kernel...\n", sys.Label, sys.Config.NumRouters())
		m, err := measureScale(network.KernelActive, sys, 0, scaleRate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		m.Load = "mid"
		m.Shards = 0
		rep.Measurements = append(rep.Measurements, m)
		active := m.NsPerCycle
		for _, shards := range scaleShards {
			fmt.Fprintf(os.Stderr, "benchjson: %s (%d routers), parallel kernel, %d shard(s)...\n",
				sys.Label, sys.Config.NumRouters(), shards)
			m, err := measureScale(network.KernelParallel, sys, shards, scaleRate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			m.Load = "mid"
			rep.Measurements = append(rep.Measurements, m)
			perShards[sys.Label][shards] = m.NsPerCycle
		}
		rep.Speedup[sys.Label] = perShards[sys.Label][1] / perShards[sys.Label][4]
		fmt.Fprintf(os.Stderr, "  %-6s active %9.0f ns/cycle; parallel 1/2/4/8 shards %9.0f %9.0f %9.0f %9.0f (4-shard speedup %.2fx on %d CPUs)\n",
			sys.Label, active,
			perShards[sys.Label][1], perShards[sys.Label][2], perShards[sys.Label][4], perShards[sys.Label][8],
			rep.Speedup[sys.Label], rep.NumCPU)
	}
	writeJSON(out, rep)
}

// cacheReport is the -cache artifact: the wall-clock cost of one sweep
// executed cold, from the result cache, and warm-started. The three rows
// share one denominator (the simulated cycles the sweep represents), so
// Speedup's ratios are pure wall-clock ratios; cache_hit_vs_cold is the
// ISSUE's >=10x acceptance number.
type cacheReport struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// The sweep being measured: scheme x rate grid at these durations.
	Schemes      []string           `json:"schemes"`
	Pattern      string             `json:"pattern"`
	Warmup       int                `json:"warmup"`
	Measure      int                `json:"measure"`
	Points       int                `json:"points_per_phase"`
	Measurements []measurement      `json:"measurements"`
	Speedup      map[string]float64 `json:"speedup_vs_cold"`
}

func runCacheBench(out string) {
	dir, err := os.MkdirTemp("", "uppcache-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	os.Setenv("UPP_CACHE_DIR", dir)
	defer os.Unsetenv("UPP_CACHE_DIR")

	dur := experiments.QuickDurations()
	schemes := experiments.ComparedSchemes()
	rep := cacheReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Pattern:   traffic.UniformRandom{}.Name(),
		Warmup:    dur.Warmup,
		Measure:   dur.Measure,
		Speedup:   map[string]float64{},
	}
	for _, sch := range schemes {
		rep.Schemes = append(rep.Schemes, string(sch))
	}
	sweep := func() int {
		points := 0
		for _, sch := range schemes {
			spec := experiments.RunSpec{
				Topo:       topology.BaselineConfig(),
				Scheme:     sch,
				VCsPerVNet: 1,
				Pattern:    traffic.UniformRandom{},
				Seed:       11,
				Dur:        dur,
			}
			c, err := experiments.SweepRates(spec, experiments.DefaultRates(), string(sch))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			points += len(c.Points)
		}
		return points
	}
	phase := func(label string) measurement {
		fmt.Fprintf(os.Stderr, "benchjson: %s sweep (%d schemes x rate grid)...\n", label, len(schemes))
		start := time.Now()
		points := sweep()
		wall := time.Since(start)
		rep.Points = points
		cycles := points * (dur.Warmup + dur.Measure)
		return measurement{
			Load:       label,
			Topology:   "baseline",
			NumRouters: baselineRouters(),
			Cycles:     cycles,
			NsPerCycle: float64(wall.Nanoseconds()) / float64(cycles),
		}
	}
	cold := phase("cold")
	hit := phase("cache_hit")
	// Evict the results but keep the warm/ checkpoints: the third phase
	// re-measures every point from its post-warmup snapshot.
	if err := os.RemoveAll(filepath.Join(dir, "results")); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	warm := phase("warm_start")
	rep.Measurements = []measurement{cold, hit, warm}
	rep.Speedup["cache_hit"] = cold.NsPerCycle / hit.NsPerCycle
	rep.Speedup["warm_start"] = cold.NsPerCycle / warm.NsPerCycle
	writeJSON(out, rep)
	hits, misses, warmHits, warmMisses := experiments.CacheCounters()
	fmt.Fprintf(os.Stderr, "  cold %8.0f ns/cycle, cache_hit %8.3f (%.0fx), warm_start %8.0f (%.2fx); counters: %d hits / %d misses, %d warm hits / %d warm misses\n",
		cold.NsPerCycle, hit.NsPerCycle, rep.Speedup["cache_hit"],
		warm.NsPerCycle, rep.Speedup["warm_start"],
		hits, misses, warmHits, warmMisses)
	if rep.Speedup["cache_hit"] < 10 {
		fmt.Fprintf(os.Stderr, "benchjson: WARNING: cache-hit speedup %.1fx below the 10x acceptance bar\n", rep.Speedup["cache_hit"])
	}
}

// reconfigMeasurement is one row of the -reconfig artifact: a two-link
// kill-and-migrate soak under one transition protocol at one offered
// load. Every field except ns_per_cycle is a deterministic simulation
// output (cycles, counters), so regenerating the artifact on another
// machine must reproduce them exactly.
type reconfigMeasurement struct {
	Load string  `json:"load"`
	Rate float64 `json:"rate"`
	Mode string  `json:"mode"`
	// Compatible is the CDG verdict on the old∪new union; the two-link
	// kill reroutes enough of the mesh that epoch fencing is expected.
	Compatible bool `json:"compatible"`
	// TransitionCycles is Begin→Finish: the simulated wall-clock of the
	// migration. CutLatencyCycles is Begin→Cut (fence-and-drain window).
	TransitionCycles int64  `json:"transition_cycles"`
	CutLatencyCycles int64  `json:"cut_latency_cycles"`
	RouteMigrations  uint64 `json:"route_migrations"`
	HeadsMigrated    uint64 `json:"heads_migrated"`
	HeldStreams      uint64 `json:"held_streams"`
	Popups           uint64 `json:"popups_completed"`
	FinalCycle       int64  `json:"final_cycle"`
	// NsPerCycle is host wall-clock over simulated cycles for the whole
	// soak (load + transition + drain) — the only machine-dependent field.
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// reconfigReport is the -reconfig artifact. TransitionRatio maps load
// label to epoch/drainless transition-cycle ratio. Below 1 means the
// fenced protocol ends the mixed-epoch window sooner than drainless —
// the expected regime at high load, where continued injection congests
// the old epoch's drain; the fence pays for it in held_streams instead.
type reconfigReport struct {
	Date            string                `json:"date"`
	GoVersion       string                `json:"go_version"`
	GOOS            string                `json:"goos"`
	GOARCH          string                `json:"goarch"`
	NumCPU          int                   `json:"num_cpu"`
	KilledLinks     []int                 `json:"killed_links"`
	KillCycle       int64                 `json:"kill_cycle"`
	Measurements    []reconfigMeasurement `json:"measurements"`
	TransitionRatio map[string]float64    `json:"transition_cycles_epoch_over_drainless"`
}

// reconfigLoads keeps the soak below uniform-random saturation: past it
// the drain phase dominates wall-clock without changing the transition
// numbers.
var reconfigLoads = []load{
	{"low", 0.02},
	{"mid", 0.05},
	{"high", 0.10},
}

func runReconfigBench(out string) {
	links, err := experiments.KillableInterposerLinks(topology.BaselineConfig(), 2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	const killCycle = 400
	plan := faults.Plan{Kills: []faults.LinkKill{
		{Link: links[0], Cycle: killCycle},
		{Link: links[1], Cycle: killCycle},
	}}
	rep := reconfigReport{
		Date:            time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		KilledLinks:     links,
		KillCycle:       killCycle,
		TransitionRatio: map[string]float64{},
	}
	transition := map[string]map[string]int64{}
	for _, l := range reconfigLoads {
		transition[l.Label] = map[string]int64{}
		for _, mode := range []reconfig.Mode{reconfig.ModeDrainless, reconfig.ModeEpoch} {
			fmt.Fprintf(os.Stderr, "benchjson: %s load (rate %.2f), %s transition...\n", l.Label, l.Rate, mode)
			start := time.Now()
			o, err := experiments.RunReconfig(experiments.ReconfigSpec{
				Mode:       mode,
				Plan:       plan,
				Seed:       5,
				Rate:       l.Rate,
				LoadCycles: killCycle + 2000,
				DrainMax:   200000,
				StallLimit: 20000,
			})
			wall := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			if !o.Quiesced {
				fmt.Fprintf(os.Stderr, "benchjson: reconfig soak stalled: %s\n", o.Stall)
				os.Exit(1)
			}
			tr := o.Transitions[0]
			m := reconfigMeasurement{
				Load:             l.Label,
				Rate:             l.Rate,
				Mode:             mode.String(),
				Compatible:       tr.Compatible,
				TransitionCycles: int64(tr.Finish - tr.Begin),
				CutLatencyCycles: int64(tr.Cut - tr.Begin),
				RouteMigrations:  o.Stats.RouteMigrations,
				HeadsMigrated:    o.Stats.HeadsMigrated,
				HeldStreams:      o.Stats.ReconfigHeldStreams,
				Popups:           o.Stats.PopupsCompleted,
				FinalCycle:       int64(o.FinalCycle),
				NsPerCycle:       float64(wall.Nanoseconds()) / float64(o.FinalCycle),
			}
			rep.Measurements = append(rep.Measurements, m)
			transition[l.Label][mode.String()] = m.TransitionCycles
		}
		if d := transition[l.Label][reconfig.ModeDrainless.String()]; d > 0 {
			rep.TransitionRatio[l.Label] = float64(transition[l.Label][reconfig.ModeEpoch.String()]) / float64(d)
		}
	}
	writeJSON(out, rep)
	for _, l := range reconfigLoads {
		fmt.Fprintf(os.Stderr, "  %-5s drainless %5d cycles, epoch %5d cycles (%.2fx)\n",
			l.Label, transition[l.Label]["drainless"], transition[l.Label]["epoch"], rep.TransitionRatio[l.Label])
	}
}

// compareMeasurement is the cross-mode subset of a measurement row used
// by -compare: every BENCH_*.json variant carries load and ns_per_cycle;
// kernel and pooling distinguish rows within a file when present.
type compareMeasurement struct {
	Load       string  `json:"load"`
	Kernel     string  `json:"kernel"`
	Router     string  `json:"router"`
	Topology   string  `json:"topology"`
	Shards     int     `json:"shards"`
	Pooling    *bool   `json:"pooling"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// key identifies a measurement across artifacts. Files written before the
// topology axis existed carry no topology field; those rows are
// normalized to "baseline" (the only system they could measure), so an
// old artifact still lines up with a regenerated one instead of every row
// degenerating to a new/dropped pair. Axes a file doesn't use (shards,
// router, pooling) are simply absent from its keys, so artifacts with
// different axis sets compare on the rows they share and report the rest
// as added/dropped rather than failing.
func (m compareMeasurement) key() string {
	k := m.Load
	if m.Kernel != "" {
		k += "/" + m.Kernel
	}
	if m.Router != "" {
		k += "/" + m.Router
	}
	if m.Topology != "" && m.Topology != "baseline" {
		k += "/" + m.Topology
	}
	if m.Shards > 0 {
		k += fmt.Sprintf("/shards=%d", m.Shards)
	}
	if m.Pooling != nil {
		k += fmt.Sprintf("/pooling=%v", *m.Pooling)
	}
	return k
}

type compareFile struct {
	Date         string               `json:"date"`
	NumCPU       int                  `json:"num_cpu"`
	Measurements []compareMeasurement `json:"measurements"`
}

func loadCompareFile(path string) (compareFile, error) {
	var f compareFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Measurements) == 0 {
		return f, fmt.Errorf("%s: no measurements (is this a BENCH_*.json file?)", path)
	}
	return f, nil
}

// runCompare diffs two benchmark artifacts and returns the process exit
// code: 0 when no shared measurement's ns_per_cycle regressed beyond the
// tolerance, 1 otherwise. Rows present in only one file are reported but
// never fail the comparison — adding a kernel or load is not a
// regression.
func runCompare(oldPath, newPath string, tolerance float64) int {
	oldF, err := loadCompareFile(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newF, err := loadCompareFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if oldF.NumCPU != 0 && newF.NumCPU != 0 && oldF.NumCPU != newF.NumCPU {
		fmt.Printf("note: num_cpu differs (%d -> %d); deltas may reflect hardware, not code\n",
			oldF.NumCPU, newF.NumCPU)
	}
	oldRows := map[string]compareMeasurement{}
	for _, m := range oldF.Measurements {
		oldRows[m.key()] = m
	}
	fmt.Printf("%-34s %12s %12s %8s\n", "measurement", "old ns/cyc", "new ns/cyc", "delta")
	regressions := 0
	seen := map[string]bool{}
	for _, m := range newF.Measurements {
		k := m.key()
		seen[k] = true
		old, ok := oldRows[k]
		if !ok {
			fmt.Printf("%-34s %12s %12.0f %8s (new measurement)\n", k, "-", m.NsPerCycle, "-")
			continue
		}
		delta := (m.NsPerCycle - old.NsPerCycle) / old.NsPerCycle
		status := ""
		if delta > tolerance {
			status = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-34s %12.0f %12.0f %+7.1f%%%s\n", k, old.NsPerCycle, m.NsPerCycle, delta*100, status)
	}
	for _, m := range oldF.Measurements {
		if !seen[m.key()] {
			fmt.Printf("%-34s %12.0f %12s %8s (dropped measurement)\n", m.key(), m.NsPerCycle, "-", "-")
		}
	}
	if regressions > 0 {
		fmt.Printf("\n%d measurement(s) regressed beyond %.0f%% tolerance\n", regressions, tolerance*100)
		return 1
	}
	fmt.Printf("\nno ns_per_cycle regression beyond %.0f%% tolerance\n", tolerance*100)
	return 0
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", path)
}

func main() {
	alloc := flag.Bool("alloc", false, "measure allocations/GC (pooled vs unpooled) instead of kernel speed")
	parallel := flag.Bool("parallel", false, "measure all three kernels (naive/active/parallel) with CPU context")
	routerMode := flag.Bool("router", false, "measure the three router microarchitectures (iq/oq/voq) instead of kernels")
	scaleMode := flag.Bool("scale", false, "measure the parallel kernel's shard-scaling curves on the scale-out systems (small/large/huge)")
	cacheMode := flag.Bool("cache", false, "measure the result cache: one sweep cold vs cache-hit vs warm-started")
	reconfigMode := flag.Bool("reconfig", false, "measure dynamic reconfiguration: two-link kill-and-migrate transition cost, drainless vs epoch, three loads")
	compare := flag.Bool("compare", false, "diff two BENCH_*.json files: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.10, "with -compare, ns_per_cycle regression fraction that fails the diff")
	out := flag.String("out", "", "output JSON path (default BENCH_kernel.json, BENCH_alloc.json with -alloc, BENCH_parallel.json with -parallel, BENCH_router.json with -router, BENCH_scale.json with -scale, BENCH_cache.json with -cache)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *tolerance))
	}
	if *out == "" {
		switch {
		case *alloc:
			*out = "BENCH_alloc.json"
		case *parallel:
			*out = "BENCH_parallel.json"
		case *routerMode:
			*out = "BENCH_router.json"
		case *scaleMode:
			*out = "BENCH_scale.json"
		case *cacheMode:
			*out = "BENCH_cache.json"
		case *reconfigMode:
			*out = "BENCH_reconfig.json"
		default:
			*out = "BENCH_kernel.json"
		}
	}
	if *alloc {
		runAlloc(*out)
		return
	}
	if *parallel {
		runParallel(*out)
		return
	}
	if *routerMode {
		runRouter(*out)
		return
	}
	if *scaleMode {
		runScale(*out)
		return
	}
	if *cacheMode {
		runCacheBench(*out)
		return
	}
	if *reconfigMode {
		runReconfigBench(*out)
		return
	}

	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Speedup:   map[string]float64{},
	}
	perLoad := map[string]map[string]float64{}
	for _, l := range loads {
		perLoad[l.Label] = map[string]float64{}
		for _, kernel := range []string{network.KernelActive, network.KernelNaive} {
			fmt.Fprintf(os.Stderr, "benchjson: %s load (rate %.2f), %s kernel...\n", l.Label, l.Rate, kernel)
			m, err := measure(kernel, l.Rate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			m.Load = l.Label
			rep.Measurements = append(rep.Measurements, m)
			perLoad[l.Label][kernel] = m.NsPerCycle
		}
		rep.Speedup[l.Label] = perLoad[l.Label][network.KernelNaive] / perLoad[l.Label][network.KernelActive]
	}
	writeJSON(*out, rep)
	for _, l := range loads {
		fmt.Fprintf(os.Stderr, "  %-10s active %8.0f ns/cycle, naive %8.0f ns/cycle (%.2fx)\n",
			l.Label, perLoad[l.Label][network.KernelActive], perLoad[l.Label][network.KernelNaive], rep.Speedup[l.Label])
	}
}
