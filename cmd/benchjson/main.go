// Command benchjson runs the cycle-kernel benchmarks (the same
// measurement as the BenchmarkKernel* benchmarks in bench_test.go) and
// writes the results as JSON, so the repository's perf trajectory is
// recorded in a diffable artifact. Run via `make bench-json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"uppnoc/internal/experiments"
	"uppnoc/internal/network"
)

// load pairs a label with the offered rate the benchmark injects at.
type load struct {
	Label string
	Rate  float64
}

var loads = []load{
	{"low", 0.02},
	{"mid", 0.05},
	{"saturation", 0.20},
}

type measurement struct {
	Load       string  `json:"load"`
	Rate       float64 `json:"rate"`
	Kernel     string  `json:"kernel"`
	Cycles     int     `json:"cycles"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

type report struct {
	Date         string        `json:"date"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	Measurements []measurement `json:"measurements"`
	// Speedup maps load label to naive/active ns-per-cycle ratio: >1 means
	// the active-set kernel is faster.
	Speedup map[string]float64 `json:"speedup_active_vs_naive"`
}

func measure(kernel string, rate float64) (measurement, error) {
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		kb, err := experiments.NewKernelBench(kernel, rate)
		if err != nil {
			buildErr = err
			b.Fatal(err)
		}
		b.ResetTimer()
		kb.Run(b.N)
	})
	if buildErr != nil {
		return measurement{}, buildErr
	}
	return measurement{
		Kernel:     kernel,
		Rate:       rate,
		Cycles:     r.N,
		NsPerCycle: float64(r.T.Nanoseconds()) / float64(r.N),
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "output JSON path")
	flag.Parse()

	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Speedup:   map[string]float64{},
	}
	perLoad := map[string]map[string]float64{}
	for _, l := range loads {
		perLoad[l.Label] = map[string]float64{}
		for _, kernel := range []string{network.KernelActive, network.KernelNaive} {
			fmt.Fprintf(os.Stderr, "benchjson: %s load (rate %.2f), %s kernel...\n", l.Label, l.Rate, kernel)
			m, err := measure(kernel, l.Rate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			m.Load = l.Label
			rep.Measurements = append(rep.Measurements, m)
			perLoad[l.Label][kernel] = m.NsPerCycle
		}
		rep.Speedup[l.Label] = perLoad[l.Label][network.KernelNaive] / perLoad[l.Label][network.KernelActive]
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
	for _, l := range loads {
		fmt.Fprintf(os.Stderr, "  %-10s active %8.0f ns/cycle, naive %8.0f ns/cycle (%.2fx)\n",
			l.Label, perLoad[l.Label][network.KernelActive], perLoad[l.Label][network.KernelNaive], rep.Speedup[l.Label])
	}
}
