// Command deadlock demonstrates the paper's core premise (Figs. 1 and 3):
// it drives the baseline chiplet system with fully adaptive routing and no
// deadlock handling until an integration-induced deadlock wedges the
// network, shows the stalled upward packets sitting at interposer up
// ports, then re-runs the identical workload under UPP and reports the
// recovery.
package main

import (
	"flag"
	"fmt"
	"os"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func main() {
	var (
		rate = flag.Float64("rate", 0.10, "offered load, flits/cycle/node")
		seed = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	fmt.Println("--- Phase 1: fully adaptive routing, no deadlock handling ---")
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, *rate, *seed)
	g.Run(30000)
	g.SetRate(0)
	err := n.Drain(50000, 3000)
	if err == nil {
		fmt.Println("no deadlock formed at this load; try a higher -rate")
		os.Exit(0)
	}
	fmt.Printf("network wedged: %v\n\n", err)
	if c := n.FindDependencyCycle(); c != nil {
		fmt.Println("extracted buffer dependency cycle (the chain of Fig. 1):")
		fmt.Printf("  %s\n", c)
		fmt.Printf("  spans layers: %v, involves an upward packet: %v, chiplets touched: %v\n\n",
			c.SpansLayers(), c.InvolvesUpwardPacket(), c.Chiplets())
	}
	fmt.Println("stalled upward packets at interposer routers (the paper's key insight —")
	fmt.Println("every integration-induced deadlock contains at least one):")
	upward := 0
	for _, id := range topo.Interposer {
		r := n.Router(id)
		for pi := 0; pi < r.NumPorts(); pi++ {
			for vi := 0; vi < n.Cfg.Router.NumVCs(); vi++ {
				vc := r.VCAt(topology.PortID(pi), vi)
				if vc.State == router.VCIdle || vc.OutPort == topology.InvalidPort {
					continue
				}
				if r.TopoNode().Ports[vc.OutPort].Dir != topology.Up {
					continue
				}
				f, _, ok := vc.Front()
				if !ok {
					continue
				}
				upward++
				fmt.Printf("  interposer router %2d: packet %d (vnet %s) stalled toward chiplet %d, dst router %d\n",
					id, f.Pkt.ID, f.Pkt.VNet, topo.Node(f.Pkt.Dst).Chiplet, f.Pkt.Dst)
			}
		}
	}
	fmt.Printf("=> %d stalled upward packets found\n\n", upward)
	fmt.Println(n.RenderOccupancy())
	fmt.Println(n.RenderUpPorts())
	if upward == 0 {
		fmt.Println("unexpected: wedged without an upward packet (please report)")
		os.Exit(1)
	}

	fmt.Println("--- Phase 2: identical workload under UPP ---")
	topo2 := topology.MustBuild(topology.BaselineConfig())
	u := core.New(core.DefaultConfig())
	n2 := network.MustNew(topo2, network.DefaultConfig(), u)
	g2 := traffic.NewGenerator(n2, traffic.UniformRandom{}, *rate, *seed)
	g2.Run(30000)
	g2.SetRate(0)
	if err := n2.Drain(500000, 50000); err != nil {
		fmt.Printf("UPP failed to recover: %v\n", err)
		os.Exit(1)
	}
	s := n2.Stats
	fmt.Printf("all %d packets delivered.\n", s.ConsumedPackets)
	fmt.Printf("  upward packets detected: %d\n", s.UpwardPackets)
	fmt.Printf("  popups completed:        %d\n", s.PopupsCompleted)
	fmt.Printf("  false positives (stops): %d\n", s.PopupsCancelled)
	fmt.Printf("  ejection reservations:   %d\n", s.ReservationsGranted)
	fmt.Printf("  protocol signal hops:    %d\n", s.SignalsSent)
	fmt.Println("\nUPP detected every deadlock at the interposer up ports, reserved an")
	fmt.Println("ejection entry with UPP_req/UPP_ack, and popped the upward packets")
	fmt.Println("through buffer-bypassing circuits — breaking every dependency cycle.")
}
