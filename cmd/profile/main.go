// Command profile runs the kernel-bench workload under CPU and heap
// profiling and writes pprof files for `go tool pprof`. Run via
// `make profile`; inspect allocations with
//
//	go tool pprof -sample_index=alloc_objects profiles/mem.pprof
//
// The heap profile is taken with MemProfileRate=1 so every allocation
// in the simulated window is attributed — this is how the remaining
// steady-state allocators were found and eliminated, and how new ones
// show up.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"uppnoc/internal/experiments"
	"uppnoc/internal/network"
)

func main() {
	cpuOut := flag.String("cpu", "profiles/cpu.pprof", "CPU profile output path")
	memOut := flag.String("mem", "profiles/mem.pprof", "heap profile output path")
	rate := flag.Float64("rate", 0.20, "offered load (flits/node/cycle); default is saturation")
	cycles := flag.Int("cycles", 200000, "profiled simulation window in cycles")
	warmup := flag.Int("warmup", 20000, "extra warmup cycles before profiling starts")
	nopool := flag.Bool("nopool", false, "disable packet pooling (profile the before state)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		os.Exit(1)
	}

	// Attribute every allocation, not the default 1-in-512KiB sampling:
	// a pool regression of one object per cycle would be invisible at the
	// default rate. Must be set before the profiled allocations happen.
	runtime.MemProfileRate = 1

	kb, err := experiments.NewKernelBenchPool(network.KernelActive, *rate, *nopool)
	if err != nil {
		fail(err)
	}
	kb.Network().PacketPool().Preallocate(4096)
	kb.Run(*warmup)

	for _, p := range []string{*cpuOut, *memOut} {
		if dir := filepath.Dir(p); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
		}
	}
	cpuF, err := os.Create(*cpuOut)
	if err != nil {
		fail(err)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		fail(err)
	}
	kb.Run(*cycles)
	pprof.StopCPUProfile()
	if err := cpuF.Close(); err != nil {
		fail(err)
	}

	memF, err := os.Create(*memOut)
	if err != nil {
		fail(err)
	}
	runtime.GC() // flush outstanding profile records before the snapshot
	if err := pprof.WriteHeapProfile(memF); err != nil {
		fail(err)
	}
	if err := memF.Close(); err != nil {
		fail(err)
	}

	st := kb.Network().PacketPool().Stats
	fmt.Fprintf(os.Stderr, "profile: %d cycles at rate %.2f (pooling=%v); pool gets=%d reuses=%d live=%d\n",
		*cycles, *rate, !*nopool, st.Gets, st.Reuses, st.Live())
	fmt.Fprintf(os.Stderr, "profile: wrote %s and %s\n", *cpuOut, *memOut)
	fmt.Fprintf(os.Stderr, "profile: try `go tool pprof -sample_index=alloc_objects %s`\n", *memOut)
}
