// Command profile runs the kernel-bench workload under CPU and heap
// profiling and writes pprof files for `go tool pprof`. Run via
// `make profile`; inspect allocations with
//
//	go tool pprof -sample_index=alloc_objects profiles/mem.pprof
//
// The heap profile is taken with MemProfileRate=1 so every allocation
// in the simulated window is attributed — this is how the remaining
// steady-state allocators were found and eliminated, and how new ones
// show up.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"uppnoc/internal/experiments"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// flagSet reports whether the named flag was given explicitly on the
// command line (vs holding its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	cpuOut := flag.String("cpu", "profiles/cpu.pprof", "CPU profile output path")
	memOut := flag.String("mem", "profiles/mem.pprof", "heap profile output path")
	rate := flag.Float64("rate", 0.20, "offered load (flits/node/cycle); default is saturation")
	cycles := flag.Int("cycles", 200000, "profiled simulation window in cycles")
	warmup := flag.Int("warmup", 20000, "extra warmup cycles before profiling starts")
	nopool := flag.Bool("nopool", false, "disable packet pooling (profile the before state)")
	kernel := flag.String("kernel", network.KernelActive, "cycle kernel: active | naive | parallel")
	shards := flag.Int("shards", 0, "with -kernel parallel: shard count (0 = GOMAXPROCS)")
	scale := flag.String("scale", "", "profile a scale-out preset instead of the baseline: small | large | huge (lowers -rate/-cycles defaults)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		os.Exit(1)
	}

	// Attribute every allocation, not the default 1-in-512KiB sampling:
	// a pool regression of one object per cycle would be invisible at the
	// default rate. Must be set before the profiled allocations happen.
	runtime.MemProfileRate = 1

	var kb *experiments.KernelBench
	var err error
	if *scale != "" {
		// The scale systems saturate near 0.015 flits/cycle/node
		// (bisection-limited) and simulate orders of magnitude slower per
		// cycle, so the flag defaults would profile a wedged network for
		// hours; substitute scale-appropriate defaults unless overridden.
		if !flagSet("rate") {
			*rate = 0.01
		}
		if !flagSet("cycles") {
			*cycles = 20000
		}
		if !flagSet("warmup") {
			*warmup = 5000
		}
		var sc *topology.ScaleConfig
		for _, sys := range experiments.ScaleSystems() {
			if sys.Label == *scale {
				c := sys.Config
				sc = &c
			}
		}
		if sc == nil {
			fail(fmt.Errorf("unknown -scale preset %q (want small, large or huge)", *scale))
		}
		if *nopool {
			fail(fmt.Errorf("-nopool does not combine with -scale"))
		}
		kb, err = experiments.NewScaleBench(*kernel, *sc, *shards, *rate)
	} else {
		kb, err = experiments.NewKernelBenchPool(*kernel, *rate, *nopool)
	}
	if err != nil {
		fail(err)
	}
	kb.Network().PacketPool().Preallocate(4096)
	kb.Run(*warmup)

	for _, p := range []string{*cpuOut, *memOut} {
		if dir := filepath.Dir(p); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
		}
	}
	cpuF, err := os.Create(*cpuOut)
	if err != nil {
		fail(err)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		fail(err)
	}
	kb.Run(*cycles)
	pprof.StopCPUProfile()
	if err := cpuF.Close(); err != nil {
		fail(err)
	}

	memF, err := os.Create(*memOut)
	if err != nil {
		fail(err)
	}
	runtime.GC() // flush outstanding profile records before the snapshot
	if err := pprof.WriteHeapProfile(memF); err != nil {
		fail(err)
	}
	if err := memF.Close(); err != nil {
		fail(err)
	}

	st := kb.Network().PacketPool().Stats
	sys := "baseline"
	if *scale != "" {
		sys = *scale
	}
	fmt.Fprintf(os.Stderr, "profile: %s/%s: %d cycles at rate %.3f (pooling=%v); pool gets=%d reuses=%d live=%d\n",
		sys, *kernel, *cycles, *rate, !*nopool, st.Gets, st.Reuses, st.Live())
	fmt.Fprintf(os.Stderr, "profile: wrote %s and %s\n", *cpuOut, *memOut)
	fmt.Fprintf(os.Stderr, "profile: try `go tool pprof -sample_index=alloc_objects %s`\n", *memOut)
}
