package main

import (
	"strings"
	"testing"
)

const sampleCoverOutput = `?   	uppnoc/cmd/deadlock	[no test files]
ok  	uppnoc	0.631s	coverage: 100.0% of statements
ok  	uppnoc/internal/workload	0.186s	coverage: 85.2% of statements
ok  	uppnoc/internal/sim	(cached)	coverage: 92.1% of statements
ok  	uppnoc/examples	0.012s	coverage: [no statements]
--- FAIL: TestSomethingElse (0.00s)
    foo_test.go:10: unrelated verbose noise with coverage: words in it
?   	uppnoc/cmd/figures	[no test files]
	uppnoc/cmd/profile		coverage: 0.0% of statements
ok  	uppnoc/cmd/tool	0.1s	coverage: [no statements] [no tests to run]
`

func TestParseCover(t *testing.T) {
	rep, err := parseCover(strings.NewReader(sampleCoverOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"uppnoc":                   100.0,
		"uppnoc/internal/workload": 85.2,
		"uppnoc/internal/sim":      92.1,
	}
	if len(rep.Packages) != len(want) {
		t.Fatalf("parsed %d packages, want %d: %+v", len(rep.Packages), len(want), rep.Packages)
	}
	for _, p := range rep.Packages {
		if want[p.Package] != p.CoveragePct {
			t.Errorf("%s: got %.1f, want %.1f", p.Package, p.CoveragePct, want[p.Package])
		}
	}
	// Sorted output keeps the committed artifact diff-stable.
	for i := 1; i < len(rep.Packages); i++ {
		if rep.Packages[i-1].Package >= rep.Packages[i].Package {
			t.Fatalf("packages not sorted: %q before %q", rep.Packages[i-1].Package, rep.Packages[i].Package)
		}
	}
	wantUntested := []string{"uppnoc/cmd/deadlock", "uppnoc/cmd/figures", "uppnoc/cmd/profile"}
	if len(rep.Untested) != len(wantUntested) {
		t.Fatalf("untested = %v, want %v", rep.Untested, wantUntested)
	}
	for i, p := range wantUntested {
		if rep.Untested[i] != p {
			t.Fatalf("untested = %v, want %v", rep.Untested, wantUntested)
		}
	}
}

func TestParseCoverRejectsNonCoverageInput(t *testing.T) {
	if _, err := parseCover(strings.NewReader("ok  	uppnoc	0.1s\nPASS\n")); err == nil {
		t.Fatal("expected error for input without coverage lines")
	}
}

func TestCompareReports(t *testing.T) {
	oldRep := coverReport{Packages: []pkgCoverage{
		{"uppnoc/internal/network", 80.0},
		{"uppnoc/internal/sim", 92.0},
		{"uppnoc/internal/gone", 50.0},
	}}
	newRep := coverReport{Packages: []pkgCoverage{
		{"uppnoc/internal/network", 78.5}, // -1.5pp: regression at 1.0pp tolerance
		{"uppnoc/internal/sim", 92.3},
		{"uppnoc/internal/workload", 85.0}, // new: reported, never a regression
	}}
	var buf strings.Builder
	if got := compareReports(oldRep, newRep, 1.0, &buf); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "(new package)", "(dropped package)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Within tolerance: the same drop passes at 2.0pp.
	if got := compareReports(oldRep, newRep, 2.0, &strings.Builder{}); got != 0 {
		t.Fatalf("regressions at 2.0pp tolerance = %d, want 0", got)
	}
}
