// Command coverjson records the repository's per-package test coverage
// as a diffable JSON artifact and diffs two such artifacts, mirroring
// benchjson's baseline/compare workflow for the coverage axis.
//
// With -extract it parses `go test -cover ./...` output (from a file
// argument or stdin) into COVER_baseline.json: one row per package with
// its statement-coverage percentage, plus the packages that have no
// test files at all. Run via `make cover-json`.
//
// With -compare old.json new.json it prints per-package coverage deltas
// and exits non-zero when any shared package's coverage dropped by more
// than -tolerance percentage points (default 1.0). Packages present in
// only one file are reported but never fail the diff — adding or
// removing a package is not a coverage regression. Run via
// `make cover-compare`; CI runs it warn-only, like the benchmark
// baseline, because coverage of randomized soak tests can wobble.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// pkgCoverage is one row of the artifact: a package and the statement
// coverage `go test -cover` reported for it.
type pkgCoverage struct {
	Package     string  `json:"package"`
	CoveragePct float64 `json:"coverage_pct"`
}

type coverReport struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	Packages  []pkgCoverage `json:"packages"`
	// Untested lists packages `go test` reported as "[no test files]";
	// a package moving from Packages to Untested shows up in -compare as
	// a dropped package.
	Untested []string `json:"untested,omitempty"`
}

// parseCover reads `go test -cover ./...` output and extracts per-package
// coverage. It tolerates the format's variants:
//
//	ok  	uppnoc/internal/workload	0.186s	coverage: 85.0% of statements
//	ok  	uppnoc/internal/sim	(cached)	coverage: 92.1% of statements
//	ok  	uppnoc/examples	0.01s	coverage: [no statements]
//	?   	uppnoc/cmd/deadlock	[no test files]
//		uppnoc/cmd/deadlock		coverage: 0.0% of statements
//
// (the last is how newer toolchains report a package with no test files
// under -cover: a plain 0.0% row, recorded here as an untested package)
// and ignores everything else (test verbose output, FAIL lines, build
// noise). An input with no coverage lines at all is an error — it means
// the caller forgot -cover or piped the wrong stream.
func parseCover(r io.Reader) (coverReport, error) {
	rep := coverReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		switch fields[0] {
		case "?":
			if strings.Contains(line, "[no test files]") {
				rep.Untested = append(rep.Untested, fields[1])
			}
		case "ok":
			i := -1
			for j, f := range fields {
				if f == "coverage:" {
					i = j
					break
				}
			}
			if i < 0 || i+1 >= len(fields) {
				continue
			}
			if fields[i+1] == "[no" { // "coverage: [no statements]"
				continue
			}
			pct, err := strconv.ParseFloat(strings.TrimSuffix(fields[i+1], "%"), 64)
			if err != nil {
				return rep, fmt.Errorf("unparseable coverage %q in line %q", fields[i+1], line)
			}
			rep.Packages = append(rep.Packages, pkgCoverage{Package: fields[1], CoveragePct: pct})
		default:
			// The bare no-test-files row: "<pkg>  coverage: 0.0% of
			// statements". Anything that doesn't parse cleanly here is
			// verbose test output that happened to contain "coverage:",
			// so skip rather than error.
			if len(fields) < 3 || fields[1] != "coverage:" || !strings.HasSuffix(fields[2], "%") {
				continue
			}
			if _, err := strconv.ParseFloat(strings.TrimSuffix(fields[2], "%"), 64); err != nil {
				continue
			}
			rep.Untested = append(rep.Untested, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Packages) == 0 {
		return rep, fmt.Errorf("no coverage lines found (was the input produced by `go test -cover ./...`?)")
	}
	sort.Slice(rep.Packages, func(i, j int) bool { return rep.Packages[i].Package < rep.Packages[j].Package })
	sort.Strings(rep.Untested)
	return rep, nil
}

func loadCoverFile(path string) (coverReport, error) {
	var rep coverReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Packages) == 0 {
		return rep, fmt.Errorf("%s: no packages (is this a COVER_*.json file?)", path)
	}
	return rep, nil
}

// compareReports diffs two coverage artifacts and returns the number of
// shared packages whose coverage dropped by more than tolerance
// percentage points. New and dropped packages are reported but never
// counted as regressions.
func compareReports(oldRep, newRep coverReport, tolerance float64, w io.Writer) int {
	oldRows := map[string]float64{}
	for _, p := range oldRep.Packages {
		oldRows[p.Package] = p.CoveragePct
	}
	fmt.Fprintf(w, "%-40s %9s %9s %8s\n", "package", "old %", "new %", "delta")
	regressions := 0
	seen := map[string]bool{}
	for _, p := range newRep.Packages {
		seen[p.Package] = true
		old, ok := oldRows[p.Package]
		if !ok {
			fmt.Fprintf(w, "%-40s %9s %9.1f %8s (new package)\n", p.Package, "-", p.CoveragePct, "-")
			continue
		}
		delta := p.CoveragePct - old
		status := ""
		if delta < -tolerance {
			status = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %9.1f %9.1f %+7.1fpp%s\n", p.Package, old, p.CoveragePct, delta, status)
	}
	for _, p := range oldRep.Packages {
		if !seen[p.Package] {
			fmt.Fprintf(w, "%-40s %9.1f %9s %8s (dropped package)\n", p.Package, p.CoveragePct, "-", "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d package(s) lost more than %.1f coverage points\n", regressions, tolerance)
	} else {
		fmt.Fprintf(w, "\nno package lost more than %.1f coverage points\n", tolerance)
	}
	return regressions
}

func main() {
	extract := flag.Bool("extract", false, "parse `go test -cover` output (file argument or stdin) into a COVER JSON artifact")
	compare := flag.Bool("compare", false, "diff two COVER_*.json files: coverjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 1.0, "with -compare, per-package coverage drop (percentage points) that fails the diff")
	out := flag.String("out", "COVER_baseline.json", "with -extract, output JSON path")
	flag.Parse()
	switch {
	case *compare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "coverjson: -compare needs exactly two files: coverjson -compare old.json new.json")
			os.Exit(2)
		}
		oldRep, err := loadCoverFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverjson: %v\n", err)
			os.Exit(2)
		}
		newRep, err := loadCoverFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverjson: %v\n", err)
			os.Exit(2)
		}
		if compareReports(oldRep, newRep, *tolerance, os.Stdout) > 0 {
			os.Exit(1)
		}
	case *extract:
		in := io.Reader(os.Stdin)
		if flag.NArg() == 1 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintf(os.Stderr, "coverjson: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		} else if flag.NArg() > 1 {
			fmt.Fprintln(os.Stderr, "coverjson: -extract takes at most one input file (default stdin)")
			os.Exit(2)
		}
		rep, err := parseCover(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverjson: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverjson: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "coverjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "coverjson: wrote %s (%d packages, %d untested)\n", *out, len(rep.Packages), len(rep.Untested))
	default:
		fmt.Fprintln(os.Stderr, "coverjson: need -extract or -compare (see package comment)")
		os.Exit(2)
	}
}
