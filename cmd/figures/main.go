// Command figures regenerates every table and figure of the UPP paper's
// evaluation from the simulator.
//
// Usage:
//
//	figures -exp all                 # everything, quick durations
//	figures -exp fig7,fig14 -full    # selected experiments, paper-length runs
//	figures -exp fig8 -scale 0.2     # full-system figures at reduced quota
//	figures -exp fig7 -csv out/      # also write CSV files
//	figures -exp fig7 -jobs 8        # eight parallel simulation workers
//
// Experiments: table1 table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 fault_sweep load_balance tail_latency ablation collectives
// router_compare reconfig (fig8/fig12/fig15 run together as
// "fullsystem"), plus "scale" — the scale-out saturation comparison,
// which is opt-in (not in "all") because its systems are 10-100x the
// paper's.
//
// Simulation points fan out across a worker pool (-jobs, or UPP_JOBS,
// defaulting to GOMAXPROCS); the output is bit-identical at any worker
// count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uppnoc/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment list, or 'all'")
		full  = flag.Bool("full", false, "use the paper's 10k+100k cycle durations (slow)")
		scale = flag.Float64("scale", 0.25, "full-system benchmark access-quota scale (1.0 = calibrated profile)")
		csv   = flag.String("csv", "", "directory to also write CSV files into")
		quiet = flag.Bool("q", false, "suppress progress output")
		jobs  = flag.Int("jobs", 0, "parallel simulation workers (0 = UPP_JOBS env or GOMAXPROCS); results are bit-identical at any value")
		arch  = flag.String("router", "", "router microarchitecture for experiments that don't sweep it: iq, oq or voq (default: UPP_ROUTER env, then iq)")
	)
	flag.Parse()
	if *arch != "" {
		// Flag beats env: experiments build their configs with RouterArch
		// unset, so routing the flag through the env gives every run the
		// same flag > env > default resolution the library applies.
		os.Setenv("UPP_ROUTER", *arch)
	}

	dur := experiments.QuickDurations()
	if *full {
		dur = experiments.PaperDurations()
	}
	var progress experiments.Progress
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	opts := experiments.PoolOptions{Jobs: *jobs, Progress: progress}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	fullSystemWanted := all || want["fig8"] || want["fig12"] || want["fig15"] || want["fullsystem"]

	var tables []experiments.Table
	add := func(ts []experiments.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, ts...)
	}

	if all || want["table1"] {
		tables = append(tables, experiments.Table1())
	}
	if all || want["table2"] {
		tables = append(tables, experiments.Table2())
	}
	if all || want["fig2"] {
		add(experiments.Fig2(opts))
	}
	if all || want["fig7"] {
		add(experiments.Fig7(dur, opts))
	}
	if fullSystemWanted {
		add(experiments.FullSystem(*scale, opts))
	}
	if all || want["fig9"] {
		add(experiments.Fig9(dur, opts))
	}
	if all || want["fig10"] {
		add(experiments.Fig10(dur, opts))
	}
	if all || want["fig11"] {
		add(experiments.Fig11(dur, opts))
	}
	if all || want["fig13"] {
		add(experiments.Fig13(dur, opts))
	}
	if all || want["fault_sweep"] {
		add(experiments.FaultSweep(dur, opts))
	}
	if all || want["fig14"] {
		tables = append(tables, experiments.Fig14())
	}
	if all || want["load_balance"] {
		add(experiments.LoadBalance(dur, opts))
	}
	if all || want["tail_latency"] {
		add(experiments.TailLatency(dur, opts))
	}
	if all || want["collectives"] {
		add(experiments.Collectives(opts))
	}
	if all || want["router_compare"] {
		add(experiments.RouterCompare(opts))
	}
	if all || want["reconfig"] {
		add(experiments.Reconfig(dur, opts))
	}
	if want["scale"] {
		// Not part of -exp all: the scale systems are orders of magnitude
		// larger than the paper's, so the sweep is opt-in.
		add(experiments.Scale(dur, opts))
	}
	if all || want["ablation"] {
		add(experiments.AblationBinding(dur, opts))
		add(experiments.AblationAdaptive(dur, opts))
		add(experiments.AblationBufferDepth(dur, opts))
		add(experiments.AblationSignalGap(dur, opts))
	}

	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "figures: nothing selected (see -h)")
		os.Exit(2)
	}
	for i := range tables {
		fmt.Println(tables[i].Render())
		if *csv != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csv, tables[i].ID+".csv")
			if err := os.WriteFile(path, []byte(tables[i].CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if experiments.CacheDir() != "" {
		// Machine-greppable cache summary (CI's cache-smoke job asserts a
		// re-run reports misses=0).
		hits, misses, warmHits, warmMisses := experiments.CacheCounters()
		fmt.Fprintf(os.Stderr, "figures: result cache hits=%d misses=%d warm_hits=%d warm_misses=%d\n",
			hits, misses, warmHits, warmMisses)
	}
}
