// Command figures regenerates every table and figure of the UPP paper's
// evaluation from the simulator.
//
// Usage:
//
//	figures -exp all                 # everything, quick durations
//	figures -exp fig7,fig14 -full    # selected experiments, paper-length runs
//	figures -exp fig8 -scale 0.2     # full-system figures at reduced quota
//	figures -exp fig7 -csv out/      # also write CSV files
//
// Experiments: table1 table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 load_balance tail_latency ablation (fig8/fig12/fig15 run
// together as "fullsystem").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uppnoc/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment list, or 'all'")
		full  = flag.Bool("full", false, "use the paper's 10k+100k cycle durations (slow)")
		scale = flag.Float64("scale", 0.25, "full-system benchmark access-quota scale (1.0 = calibrated profile)")
		csv   = flag.String("csv", "", "directory to also write CSV files into")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	dur := experiments.QuickDurations()
	if *full {
		dur = experiments.PaperDurations()
	}
	var progress experiments.Progress
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	fullSystemWanted := all || want["fig8"] || want["fig12"] || want["fig15"] || want["fullsystem"]

	var tables []experiments.Table
	add := func(ts []experiments.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, ts...)
	}

	if all || want["table1"] {
		tables = append(tables, experiments.Table1())
	}
	if all || want["table2"] {
		tables = append(tables, experiments.Table2())
	}
	if all || want["fig2"] {
		add(experiments.Fig2(progress))
	}
	if all || want["fig7"] {
		add(experiments.Fig7(dur, progress))
	}
	if fullSystemWanted {
		add(experiments.FullSystem(*scale, progress))
	}
	if all || want["fig9"] {
		add(experiments.Fig9(dur, progress))
	}
	if all || want["fig10"] {
		add(experiments.Fig10(dur, progress))
	}
	if all || want["fig11"] {
		add(experiments.Fig11(dur, progress))
	}
	if all || want["fig13"] {
		add(experiments.Fig13(dur, progress))
	}
	if all || want["fig14"] {
		tables = append(tables, experiments.Fig14())
	}
	if all || want["load_balance"] {
		add(experiments.LoadBalance(dur, progress))
	}
	if all || want["tail_latency"] {
		add(experiments.TailLatency(dur, progress))
	}
	if all || want["ablation"] {
		add(experiments.AblationBinding(dur, progress))
		add(experiments.AblationAdaptive(dur, progress))
		add(experiments.AblationBufferDepth(dur, progress))
		add(experiments.AblationSignalGap(dur, progress))
	}

	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "figures: nothing selected (see -h)")
		os.Exit(2)
	}
	for i := range tables {
		fmt.Println(tables[i].Render())
		if *csv != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csv, tables[i].ID+".csv")
			if err := os.WriteFile(path, []byte(tables[i].CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
