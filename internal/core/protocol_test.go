package core_test

import (
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestAggressiveThresholdFalsePositives: with a hair-trigger threshold,
// ordinary congestion is repeatedly flagged as deadlock. The paper argues
// (Sec. V-A) that false positives are harmless — popups of congested
// packets use idle bandwidth and the UPP_stop path recycles reservations.
// Every resource must still come back.
func TestAggressiveThresholdFalsePositives(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	u := core.New(core.Config{Threshold: 2})
	n := network.MustNew(topo, cfg, u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.06, 17)
	g.Run(15000)
	g.SetRate(0)
	if err := n.Drain(300000, 50000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n.Stats.UpwardPackets == 0 {
		t.Fatal("threshold=2 should flag congestion constantly")
	}
	if n.Stats.PopupsCancelled == 0 {
		t.Fatal("expected UPP_stop cancellations of false positives")
	}
	if u.ActivePopups() != 0 {
		t.Fatalf("%d popups leaked", u.ActivePopups())
	}
	if err := u.UPPStateOK(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	t.Logf("upward=%d started=%d cancelled=%d", n.Stats.UpwardPackets, n.Stats.PopupsStarted, n.Stats.PopupsCancelled)
}

// TestDataPacketPopups: force recovery pressure with data-only (5-flit)
// traffic so popups exercise multi-flit drains, including the
// partly-transmitted wormhole machinery of Sec. V-B3.
func TestDataPacketPopups(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.12, 29)
	g.CtrlFraction = 0 // all data packets
	g.Run(20000)
	g.SetRate(0)
	if err := n.Drain(500000, 50000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n.Stats.PopupsCompleted == 0 {
		t.Fatal("no popups under all-data overload")
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if err := u.UPPStateOK(); err != nil {
		t.Fatal(err)
	}
}

// TestQuiescenceAfterRecovery: the headline recovery test plus full
// resource accounting.
func TestQuiescenceAfterRecovery(t *testing.T) {
	for _, vcs := range []int{1, 4} {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Router.VCsPerVNet = vcs
		u := core.New(core.DefaultConfig())
		n := network.MustNew(topo, cfg, u)
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 42)
		g.Run(15000)
		g.SetRate(0)
		if err := n.Drain(400000, 50000); err != nil {
			t.Fatalf("vcs=%d: %v", vcs, err)
		}
		if err := n.CheckQuiescent(); err != nil {
			t.Fatalf("vcs=%d: %v", vcs, err)
		}
	}
}

// TestUpwardPacketsAreResponseHeavy: under the synthetic mix, data packets
// ride VNet 2; popup bookkeeping must match per-VNet token accounting
// (indirectly validated through the state checker after heavy load on all
// three VNets).
func TestAllVNetsRecover(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), u)
	cores := topo.Cores()
	// Saturating bursts on every VNet simultaneously.
	for round := 0; round < 300; round++ {
		for i := 0; i < 16; i++ {
			src := cores[(round+i*4)%len(cores)]
			dst := cores[(round*7+i*11+31)%len(cores)]
			if src == dst {
				continue
			}
			p := &message.Packet{Src: src, Dst: dst, VNet: message.VNet(i % 3), Size: 1 + 4*(i%2)}
			n.NI(src).Enqueue(p, n.Cycle())
		}
		n.Step()
	}
	if err := n.Drain(500000, 50000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if err := u.UPPStateOK(); err != nil {
		t.Fatal(err)
	}
}

// TestDetectionRequiresThresholdDwell: a single briefly-blocked upward
// packet below the threshold must not trigger a popup.
func TestDetectionRequiresThresholdDwell(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	u := core.New(core.Config{Threshold: 5000})
	n := network.MustNew(topo, network.DefaultConfig(), u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.04, 3)
	g.Run(8000)
	g.SetRate(0)
	if err := n.Drain(100000, 20000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n.Stats.UpwardPackets != 0 {
		t.Fatalf("threshold=5000 flagged %d upward packets at light load", n.Stats.UpwardPackets)
	}
}

// TestConservationDuringRecovery: the credit/buffer conservation law must
// hold at every instant even while popups pop flits out of buffers,
// force-release diverted VCs and eject through reserved entries.
func TestConservationDuringRecovery(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.11, 42)
	for i := 0; i < 25000; i++ {
		g.Tick(n.Cycle())
		n.Step()
		if i%97 == 0 {
			if err := n.CheckConservation(); err != nil {
				t.Fatalf("cycle %d (popups started %d): %v", i, n.Stats.PopupsStarted, err)
			}
		}
	}
	if n.Stats.PopupsStarted == 0 {
		t.Fatal("no recovery activity — the test did not exercise the popup path")
	}
}

// assertUPPStats checks the cross-counter invariants of the protocol
// after a quiesced run:
//
//	upward packets = popups started + popups cancelled
//	popups completed = popups started (every accepted popup finishes)
//	reservations granted >= popups started (cancelled popups may also
//	  have been granted before their stop landed)
func assertUPPStats(t *testing.T, n *network.Network) {
	t.Helper()
	s := n.Stats
	if s.UpwardPackets != s.PopupsStarted+s.PopupsCancelled {
		t.Fatalf("upward %d != started %d + cancelled %d", s.UpwardPackets, s.PopupsStarted, s.PopupsCancelled)
	}
	if s.PopupsCompleted != s.PopupsStarted {
		t.Fatalf("completed %d != started %d", s.PopupsCompleted, s.PopupsStarted)
	}
	if s.ReservationsGranted < s.PopupsStarted {
		t.Fatalf("granted %d < started %d", s.ReservationsGranted, s.PopupsStarted)
	}
}

// TestProtocolCounterInvariants runs a recovery-heavy workload and checks
// the cross-counter accounting.
func TestProtocolCounterInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		topo := topology.MustBuild(topology.BaselineConfig())
		u := core.New(core.DefaultConfig())
		n := network.MustNew(topo, network.DefaultConfig(), u)
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.12, seed*131)
		g.Run(12000)
		g.SetRate(0)
		if err := n.Drain(400000, 50000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertUPPStats(t, n)
		if err := u.UPPStateOK(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
