package core_test

import (
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestDynamicReconfiguration plays out the Sec. III-C flexibility
// scenario: a running UPP system loses links (faults / power gating),
// quiesces, rebuilds its local routing as up*/down*, and keeps operating
// with recovery intact — the reconfiguration the baselines cannot do
// (composable's search is design-time; remote control's permission tree
// is hard-wired).
func TestDynamicReconfiguration(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), u)

	// Phase 1: healthy operation under XY.
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.05, 3)
	g.Run(8000)
	g.SetRate(0)
	if err := n.Drain(100000, 20000); err != nil {
		t.Fatalf("phase 1 drain: %v", err)
	}
	phase1 := n.Stats.ConsumedPackets

	// Reconfiguration: links fail; rebuild routing as up*/down* on the
	// degraded topology.
	if _, err := topo.InjectFaults(8, 77); err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatalf("rebuild routing: %v", err)
	}
	n.SetLocalRouting(ud)

	// Phase 2: operation continues on the degraded system.
	g.SetRate(0.05)
	g.Run(8000)
	g.SetRate(0)
	if err := n.Drain(300000, 50000); err != nil {
		t.Fatalf("phase 2 drain: %v", err)
	}
	if n.Stats.ConsumedPackets <= phase1 {
		t.Fatal("no traffic delivered after reconfiguration")
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if err := u.UPPStateOK(); err != nil {
		t.Fatal(err)
	}
	t.Logf("delivered %d packets before and %d after losing 8 links",
		phase1, n.Stats.ConsumedPackets-phase1)
}
