package core

import (
	"math"

	"uppnoc/internal/message"
	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// Snapshot serializes UPP's full protocol state into a UPWS section
// (DESIGN.md §14): the popup FSMs, every router's signal latches, ack
// buffers and circuit entries, the per-(chiplet, VNet) tokens and the
// ID allocator. Pending deferred actions (signals and popup flits in
// flight) live in the network's event wheel as SchemeCalls and are
// serialized there; pending reservation waiters live at the NIs and
// are rebound by Restore.
func (u *UPP) Snapshot(w *snap.Writer) {
	w.Uvarint(u.nextID)
	ps := u.sortedPopups()
	w.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		w.Uvarint(p.id)
		w.Varint(int64(p.vnet))
		w.Varint(int64(p.origin))
		w.Packet(p.pkt)
		w.Uvarint(uint64(p.pktGen))
		w.Varint(int64(p.dst))
		w.Int(p.dstChiplet)
		w.Uvarint(p.pktID)
		w.Varint(int64(p.port))
		w.Int(p.vcIdx)
		w.Varint(int64(p.frontSeq))
		w.Uvarint(uint64(len(p.path)))
		for _, h := range p.path {
			w.Varint(int64(h.node))
			w.Varint(int64(h.inPort))
			w.Varint(int64(h.outPort))
		}
		w.Uvarint(uint64(p.stage))
		w.Varint(p.drainStart)
		w.Bool(p.reqSent)
		w.Bool(p.cancelled)
		w.Bool(p.stopPending)
		w.Bool(p.stopDelivered)
		w.Bool(p.ackLaunched)
		w.Bool(p.ackDone)
		w.Bool(p.tailLeftOrigin)
		w.Varint(p.deadline)
		w.Int(int(p.retries))
		w.Bool(p.resendReq)
		w.Bool(p.resRequested)
	}
	for i := range u.nodes {
		ns := &u.nodes[i]
		for v := 0; v < message.NumVNets; v++ {
			w.Varint(int64(ns.counters[v]))
			if ns.entry[v] != nil {
				w.Uvarint(ns.entry[v].id)
			} else {
				w.Uvarint(0)
			}
			w.Int(ns.rr[v])
		}
		w.Varint(ns.nextSignal)
		for v := 0; v < message.NumVNets; v++ {
			ce := &ns.circuit[v]
			w.Bool(ce.active)
			w.Uvarint(ce.popupID)
			w.Varint(int64(ce.inPort))
			w.Varint(int64(ce.outPort))
			w.Varint(int64(ce.vcIdx))
			w.Bool(ce.released)
		}
		w.Bool(ns.reqStop.valid)
		w.Bool(ns.reqStop.reserved)
		w.Uvarint(uint64(ns.reqStop.kind))
		w.Uvarint(ns.reqStop.popupID)
		w.Int(ns.reqStop.hopIdx)
		w.Varint(ns.reqStop.ready)
		w.Uvarint(uint64(len(ns.acks)))
		for _, a := range ns.acks {
			w.Uvarint(a.popupID)
			w.Int(a.hopIdx)
			w.Varint(a.ready)
		}
		w.Int(ns.ackRes)
		for v := 0; v < message.NumVNets; v++ {
			l := &ns.popupLatch[v]
			w.Bool(l.valid)
			w.Bool(l.reserved)
			w.Flit(l.flit)
			w.Varint(l.ready)
		}
	}
	for ci := range u.tokens {
		for v := 0; v < message.NumVNets; v++ {
			w.Uvarint(u.tokens[ci][v])
		}
	}
}

// Restore overwrites the scheme's state from a snapshot written by
// Snapshot on an identically-configured system, then rebinds the grant
// callbacks of reservation waiters the NIs deserialized earlier in the
// restore sequence.
func (u *UPP) Restore(r *snap.Reader) error {
	numNodes := len(u.nodes)
	nvc := u.net.Cfg.Router.NumVCs()
	maxPath := 2*numNodes + 2 // chasePath bounds each phase by NumNodes

	u.nextID = r.Uvarint("upp next id")
	u.popups = make(map[uint64]*popup)
	u.sorted = nil
	np := r.Len("upp popup count", numNodes*message.NumVNets)
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < np; i++ {
		p := &popup{}
		p.id = r.Uvarint("popup id")
		p.vnet = message.VNet(r.Int("popup vnet", 0, message.NumVNets-1))
		p.origin = topology.NodeID(r.Int("popup origin", 0, int64(numNodes)-1))
		p.pkt = r.Packet()
		gen := r.Uvarint("popup pkt gen")
		if r.Err() == nil && gen > math.MaxUint32 {
			r.Fail("popup pkt gen %d out of range", gen)
		}
		p.pktGen = uint32(gen)
		p.dst = topology.NodeID(r.Int("popup dst", 0, int64(numNodes)-1))
		p.dstChiplet = r.Int("popup dst chiplet", 0, int64(len(u.tokens))-1)
		p.pktID = r.Uvarint("popup pkt id")
		p.port = topology.PortID(r.Int("popup port", 0, 127))
		p.vcIdx = r.Int("popup vc", 0, int64(nvc)-1)
		p.frontSeq = int32(r.Int("popup front seq", 0, math.MaxInt32))
		nh := r.Len("popup path len", maxPath)
		if r.Err() != nil {
			return r.Err()
		}
		if nh < 2 {
			r.Fail("popup path of %d hops (need origin and destination)", nh)
			return r.Err()
		}
		p.path = make([]hop, nh)
		for j := 0; j < nh; j++ {
			p.path[j].node = topology.NodeID(r.Int("hop node", 0, int64(numNodes)-1))
			p.path[j].inPort = topology.PortID(r.Int("hop in", -1, 127))
			p.path[j].outPort = topology.PortID(r.Int("hop out", -1, 127))
		}
		st := r.Uvarint("popup stage")
		if r.Err() == nil && st > uint64(stageDrain) {
			r.Fail("popup stage %d out of range", st)
		}
		p.stage = popupStage(st)
		p.drainStart = r.Varint("popup drain start")
		p.reqSent = r.Bool("popup req sent")
		p.cancelled = r.Bool("popup cancelled")
		p.stopPending = r.Bool("popup stop pending")
		p.stopDelivered = r.Bool("popup stop delivered")
		p.ackLaunched = r.Bool("popup ack launched")
		p.ackDone = r.Bool("popup ack done")
		p.tailLeftOrigin = r.Bool("popup tail left")
		p.deadline = r.Varint("popup deadline")
		p.retries = uint8(r.Int("popup retries", 0, math.MaxUint8))
		p.resendReq = r.Bool("popup resend req")
		p.resRequested = r.Bool("popup res requested")
		if r.Err() != nil {
			return r.Err()
		}
		if p.pkt == nil {
			r.Fail("popup %d without a packet reference", p.id)
			return r.Err()
		}
		if _, dup := u.popups[p.id]; dup {
			r.Fail("duplicate popup id %d", p.id)
			return r.Err()
		}
		u.popups[p.id] = p
	}
	for i := range u.nodes {
		ns := &u.nodes[i]
		*ns = nodeState{}
		for v := 0; v < message.NumVNets; v++ {
			ns.counters[v] = int32(r.Int("upp counter", 0, math.MaxInt32))
			if id := r.Uvarint("upp entry popup"); id != 0 {
				p := u.popups[id]
				if p == nil {
					r.Fail("node %d entry references unknown popup %d", i, id)
					return r.Err()
				}
				ns.entry[v] = p
			}
			ns.rr[v] = r.Int("upp rr", 0, int64(128*nvc))
		}
		ns.nextSignal = r.Varint("upp next signal")
		for v := 0; v < message.NumVNets; v++ {
			ce := &ns.circuit[v]
			ce.active = r.Bool("circuit active")
			ce.popupID = r.Uvarint("circuit popup")
			ce.inPort = topology.PortID(r.Int("circuit in", -1, 127))
			ce.outPort = topology.PortID(r.Int("circuit out", -1, 127))
			ce.vcIdx = int8(r.Int("circuit vc", -1, int64(nvc)-1))
			ce.released = r.Bool("circuit released")
		}
		ns.reqStop.valid = r.Bool("latch valid")
		ns.reqStop.reserved = r.Bool("latch reserved")
		k := r.Uvarint("latch kind")
		if r.Err() == nil && k > uint64(sigStop) {
			r.Fail("latch kind %d out of range", k)
		}
		ns.reqStop.kind = sigKind(k)
		ns.reqStop.popupID = r.Uvarint("latch popup")
		ns.reqStop.hopIdx = r.Int("latch hop", 0, int64(maxPath))
		ns.reqStop.ready = r.Varint("latch ready")
		na := r.Len("ack count", message.NumVNets)
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < na; j++ {
			a := ackEntry{}
			a.popupID = r.Uvarint("ack popup")
			a.hopIdx = r.Int("ack hop", 0, int64(maxPath))
			a.ready = r.Varint("ack ready")
			ns.acks = append(ns.acks, a)
		}
		ns.ackRes = r.Int("ack reserved", 0, message.NumVNets)
		for v := 0; v < message.NumVNets; v++ {
			l := &ns.popupLatch[v]
			l.valid = r.Bool("popup latch valid")
			l.reserved = r.Bool("popup latch reserved")
			l.flit = r.Flit()
			l.ready = r.Varint("popup latch ready")
		}
		if r.Err() != nil {
			return r.Err()
		}
	}
	for ci := range u.tokens {
		for v := 0; v < message.NumVNets; v++ {
			id := r.Uvarint("token holder")
			if r.Err() == nil && id != 0 && u.popups[id] == nil {
				r.Fail("token (chiplet %d, vnet %d) held by unknown popup %d", ci, v, id)
			}
			u.tokens[ci][v] = id
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	// Hop-index sanity now that every path length is known: a latched
	// signal or buffered ack with an index past its popup's path would
	// index out of range when it next moves.
	for i := range u.nodes {
		ns := &u.nodes[i]
		if ns.reqStop.valid {
			if p := u.popups[ns.reqStop.popupID]; p != nil && ns.reqStop.hopIdx >= len(p.path) {
				r.Fail("node %d signal latch hop %d past popup %d path (%d hops)",
					i, ns.reqStop.hopIdx, p.id, len(p.path))
				return r.Err()
			}
		}
		for _, a := range ns.acks {
			if p := u.popups[a.popupID]; p != nil && a.hopIdx >= len(p.path) {
				r.Fail("node %d ack hop %d past popup %d path (%d hops)",
					i, a.hopIdx, p.id, len(p.path))
				return r.Err()
			}
		}
	}
	// Re-install the grant callbacks of reservation waiters the NIs
	// restored earlier in the sequence (serialized as (vnet, popupID)
	// pairs — the closure itself cannot be serialized, but makeGrant
	// rebuilds an identical one).
	for _, ni := range u.net.NIs {
		ni := ni
		ni.ReservationWaiters(func(vnet message.VNet, popupID uint64) {
			ni.RebindReservation(popupID, u.makeGrant(ni, popupID, vnet))
		})
	}
	return r.Err()
}
