package core_test

import (
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestAdaptiveRoutingRecovery: UPP with minimal-adaptive odd-even local
// routing — the "fully adaptive network" configuration. The popup path is
// built by chasing the packet's own VC allocation chain (Sec. V-B3's
// req-follows-the-packet mechanism), so recovery stays exact even though
// routes depend on runtime congestion.
func TestAdaptiveRoutingRecovery(t *testing.T) {
	popups := uint64(0)
	for _, rate := range []float64{0.12, 0.20} {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Adaptive = true
		u := core.New(core.DefaultConfig())
		n := network.MustNew(topo, cfg, u)
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, 33)
		g.Run(15000)
		g.SetRate(0)
		if err := n.Drain(500000, 60000); err != nil {
			t.Fatalf("rate %.2f: %v", rate, err)
		}
		if err := n.CheckQuiescent(); err != nil {
			t.Fatalf("rate %.2f: %v", rate, err)
		}
		if err := u.UPPStateOK(); err != nil {
			t.Fatalf("rate %.2f: %v", rate, err)
		}
		popups += n.Stats.PopupsCompleted
		t.Logf("rate %.2f: %d packets, %d popups completed, %d cancelled",
			rate, n.Stats.ConsumedPackets, n.Stats.PopupsCompleted, n.Stats.PopupsCancelled)
	}
	if popups == 0 {
		t.Fatal("no popups exercised under adaptive routing — raise the load")
	}
}

// TestAdaptiveConservation: the conservation law must also hold with
// adaptive routing plus recovery running.
func TestAdaptiveConservation(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Adaptive = true
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, cfg, u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.11, 8)
	for i := 0; i < 20000; i++ {
		g.Tick(n.Cycle())
		n.Step()
		if i%173 == 0 {
			if err := n.CheckConservation(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
}

// TestAdaptiveBeatsXYOnTranspose: odd-even's path diversity should help
// the transpose pattern (diagonal traffic with many minimal paths) at
// moderate load — the payoff UPP's full path diversity enables.
func TestAdaptiveBeatsXYOnTranspose(t *testing.T) {
	run := func(adaptive bool) float64 {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Adaptive = adaptive
		cfg.Router.VCsPerVNet = 4
		n := network.MustNew(topo, cfg, core.New(core.DefaultConfig()))
		g := traffic.NewGenerator(n, traffic.Transpose{}, 0.06, 44)
		g.Run(4000)
		n.ResetMeasurement()
		g.Run(16000)
		return n.AvgTotalLatency()
	}
	xy, oe := run(false), run(true)
	t.Logf("transpose @0.06: XY %.1f cycles, odd-even adaptive %.1f cycles", xy, oe)
	if oe > xy*1.15 {
		t.Fatalf("adaptive routing substantially worse than XY on transpose: %.1f vs %.1f", oe, xy)
	}
}
