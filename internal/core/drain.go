package core

import (
	"fmt"

	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/sim"
)

// drain advances one popup's upward packet by at most one flit per router
// per cycle. Flits bypass buffers: between routers they sit in the
// per-VNet circuit latch and take only switch traversal + link traversal
// per hop, with absolute crossbar priority (Sec. V-C).
//
// Routers are processed destination-first so a chain of flits pipelines:
// the downstream latch empties before the upstream router tries to fill
// it in the same cycle.
func (u *UPP) drain(p *popup, cycle sim.Cycle) {
	for i := len(p.path) - 1; i >= 1; i-- {
		u.drainChipletHop(p, i, cycle)
		if u.popups[p.id] == nil {
			return // popup completed mid-drain (tail ejected)
		}
	}
	u.drainOrigin(p, cycle)
}

// drainChipletHop moves one flit at path[i]: first any buffered flit of
// the packet (earlier in sequence than anything in the latch), then the
// latch flit. It also force-releases the VC once the packet has diverted
// past it (partly-transmitted wormhole case, Sec. V-B3).
func (u *UPP) drainChipletHop(p *popup, i int, cycle sim.Cycle) {
	h := &p.path[i]
	ns := &u.nodes[h.node]
	ce := &ns.circuit[p.vnet]
	if !ce.active || ce.popupID != p.id {
		return
	}
	r := u.net.Router(h.node)
	moved := false

	// 1. Buffered flits of the packet in the circuit's input port.
	for vcIdx := 0; vcIdx < r.Config().NumVCs(); vcIdx++ {
		vc := r.VCAt(ce.inPort, vcIdx)
		f, ok := vc.FrontReady(cycle)
		if !ok || !p.holds(f.Pkt) {
			continue
		}
		ce.vcIdx = int8(vcIdx)
		if u.forwardPopupFlit(p, i, r, cycle, true, vcIdx) {
			moved = true
			if f.IsTail() {
				// The tail passed through this VC: PopFront reset it and
				// sent the free credit; no force-release is needed.
				ce.released = true
			}
		}
		break
	}

	// 2. The latch flit (a later flit arriving from upstream).
	if !moved {
		l := &ns.popupLatch[p.vnet]
		if l.valid && l.ready <= cycle {
			if u.forwardPopupFlit(p, i, r, cycle, false, -1) {
				l.valid = false
			}
		}
	}

	// 3. Release a VC the packet has diverted past: its remaining flits
	// travel by latch, so its tail will never arrive to reset it and free
	// the upstream router's allocation. This covers VCs left Active and
	// VCs never routed at all (a head popped straight out of an Idle VC).
	// The +3-cycle guard lets normally-sent in-flight flits land first.
	if ce.vcIdx >= 0 && !ce.released && cycle >= p.drainStart+3 {
		vc := r.VCAt(ce.inPort, int(ce.vcIdx))
		if vc.Empty() {
			r.ForceReleaseVC(ce.inPort, int(ce.vcIdx), cycle)
			ce.released = true
		}
	}
}

// forwardPopupFlit moves one flit of popup p out of router r at hop i,
// either popping it from VC vcIdx of the circuit input port (fromVC) or
// taking it from the latch. Returns whether the flit moved.
func (u *UPP) forwardPopupFlit(p *popup, i int, r router.Microarch, cycle sim.Cycle, fromVC bool, vcIdx int) bool {
	h := &p.path[i]
	out := h.outPort
	last := i == len(p.path)-1
	var nextLatch *flitLatch
	if !last {
		nextLatch = &u.nodes[p.path[i+1].node].popupLatch[p.vnet]
		if nextLatch.valid || nextLatch.reserved {
			return false
		}
	}
	if r.PortDown(out) {
		return false // mesh link transiently down: the drain waits out the flap
	}
	if r.OutputClaimed(out, cycle) {
		return false
	}
	if fromVC && !r.ClaimInput(h.inPort, cycle) {
		return false
	}
	r.ClaimOutput(out, cycle)

	var f = u.nodes[h.node].popupLatch[p.vnet].flit
	if fromVC {
		f = r.PopFront(h.inPort, vcIdx, cycle)
	}
	if last {
		// Eject straight into the reserved entry (Sec. V-B).
		r.EjectDirect(f, cycle)
		return true
	}
	r.SendDirect(out)
	nextLatch.reserved = true
	u.net.ScheduleCall(cycle+1+u.linkLat(), network.SchemeCall{
		Kind: uppCallLatch, Node: p.path[i+1].node, B: uint64(p.vnet), Flit: f, HasFlit: true,
	})
	return true
}

// drainOrigin sends the packet's flits out of the origin interposer
// router's tracked VC across the up link. Trailing flits still arriving
// through the interposer mesh keep flowing into this VC normally and are
// forwarded as they become ready.
func (u *UPP) drainOrigin(p *popup, cycle sim.Cycle) {
	if p.tailLeftOrigin {
		return
	}
	r := u.net.Router(p.origin)
	vc := r.VCAt(p.port, p.vcIdx)
	f, ok := vc.FrontReady(cycle)
	if !ok || !p.holds(f.Pkt) {
		return
	}
	out := p.path[0].outPort
	nextLatch := &u.nodes[p.path[1].node].popupLatch[p.vnet]
	if nextLatch.valid || nextLatch.reserved {
		return
	}
	if r.OutputClaimed(out, cycle) || !r.ClaimInput(p.port, cycle) {
		return
	}
	r.ClaimOutput(out, cycle)
	f = r.PopFront(p.port, p.vcIdx, cycle)
	r.SendDirect(out)
	r.MarkUpSent(p.vnet, cycle)
	if f.IsTail() {
		p.tailLeftOrigin = true
	}
	nextLatch.reserved = true
	u.net.ScheduleCall(cycle+1+u.linkLat(), network.SchemeCall{
		Kind: uppCallLatch, Node: p.path[1].node, B: uint64(p.vnet), Flit: f, HasFlit: true,
	})
}

// UPPStateOK validates internal invariants; tests call it after runs.
func (u *UPP) UPPStateOK() error {
	for ci := range u.tokens {
		for v := range u.tokens[ci] {
			if id := u.tokens[ci][v]; id != 0 && u.popups[id] == nil {
				return fmt.Errorf("upp: token held by retired popup %d (chiplet %d, vnet %d)", id, ci, v)
			}
		}
	}
	return nil
}
