package core_test

import (
	"fmt"
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// findBusyLeaks returns descriptions of (router, outport, vc) whose Busy
// flag is set while the downstream VC is idle+empty+fully credited.
func findBusyLeaks(n *network.Network) []string {
	var leaks []string
	for _, node := range n.Topo.Nodes {
		r := n.Router(node.ID)
		nvc := r.Config().NumVCs()
		for pi := 1; pi < len(node.Ports); pi++ {
			p := topology.PortID(pi)
			nb := node.Ports[pi].Neighbor
			nbPort := node.Ports[pi].NeighborPort
			dr := n.Router(nb)
			for vi := 0; vi < nvc; vi++ {
				if !r.OutBusy(p, vi) {
					continue
				}
				dvc := dr.VCAt(nbPort, vi)
				if dvc.State == router.VCIdle && dvc.Empty() && r.OutCredits(p, vi) == int16(dr.Config().BufferDepth) {
					leaks = append(leaks, fmt.Sprintf("node%d out[%d](%s)->node%d vc%d", node.ID, pi, node.Ports[pi].Dir, nb, vi))
				}
			}
		}
	}
	return leaks
}

func TestFindLeakCycle(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, cfg, u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 42)
	prev := map[string]bool{}
	for i := 0; i < 30000; i++ {
		g.Tick(n.Cycle())
		n.Step()
		if i%50 == 0 {
			cur := map[string]bool{}
			for _, l := range findBusyLeaks(n) {
				cur[l] = true
				if prev[l] {
					t.Fatalf("cycle %d: persistent busy leak: %s", n.Cycle(), l)
				}
			}
			prev = cur
		}
	}
	t.Log("no persistent leaks in 30k cycles")
}
