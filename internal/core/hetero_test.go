package core_test

import (
	"testing"

	"uppnoc/internal/composable"
	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/remotectl"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestHeterogeneousSystemAllSchemes runs a mixed-size chiplet system (the
// modularity scenario of Sec. III-A) under every scheme: the baselines
// must avoid deadlock, UPP must recover from any that form, and every
// resource must return.
func TestHeterogeneousSystemAllSchemes(t *testing.T) {
	build := func() *topology.Topology {
		topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	schemes := []struct {
		name string
		make func(*topology.Topology) (network.Scheme, error)
	}{
		{"upp", func(*topology.Topology) (network.Scheme, error) {
			return core.New(core.DefaultConfig()), nil
		}},
		{"composable", func(tp *topology.Topology) (network.Scheme, error) {
			return composable.NewScheme(tp)
		}},
		{"remote_control", func(*topology.Topology) (network.Scheme, error) {
			return remotectl.New(remotectl.DefaultConfig()), nil
		}},
	}
	for _, sc := range schemes {
		topo := build()
		scheme, err := sc.make(topo)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		n := network.MustNew(topo, network.DefaultConfig(), scheme)
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.08, 19)
		g.Run(15000)
		g.SetRate(0)
		if err := n.Drain(500000, 60000); err != nil {
			t.Fatalf("%s wedged on the heterogeneous system: %v", sc.name, err)
		}
		if err := n.CheckQuiescent(); err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		t.Logf("%s: delivered %d packets (upward %d)", sc.name, n.Stats.ConsumedPackets, n.Stats.UpwardPackets)
	}
}

// TestHeterogeneousDeadlockWithoutRecovery: the unprotected heterogeneous
// system also wedges — integration-induced deadlocks are not an artifact
// of the homogeneous baseline.
func TestHeterogeneousDeadlockWithoutRecovery(t *testing.T) {
	topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.15, 19)
	g.Run(30000)
	g.SetRate(0)
	if err := n.Drain(50000, 5000); err == nil {
		t.Skip("no deadlock formed on this workload (acceptable; UPP path covered above)")
	}
	c := n.FindDependencyCycle()
	if c == nil {
		t.Fatal("wedged without a dependency cycle")
	}
	if !c.InvolvesUpwardPacket() {
		t.Fatalf("heterogeneous deadlock without an upward packet: %s", c)
	}
}

// TestStarSystem: the passive-substrate star topology of Sec. VI-B — the
// central hub chiplet plays the interposer's role, and UPP applies
// unchanged.
func TestStarSystem(t *testing.T) {
	topo := topology.MustBuild(topology.StarConfig())
	u := core.New(core.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), u)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.06, 21)
	g.Run(15000)
	g.SetRate(0)
	if err := n.Drain(500000, 60000); err != nil {
		t.Fatalf("star system wedged under UPP: %v", err)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	t.Logf("star system: %d packets delivered, %d popups", n.Stats.ConsumedPackets, n.Stats.PopupsCompleted)
}
