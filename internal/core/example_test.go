package core_test

import (
	"fmt"

	"uppnoc/internal/core"
	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// Example builds the paper's baseline system with UPP attached and sends
// one packet across chiplets.
func Example() {
	topo := topology.MustBuild(topology.BaselineConfig())
	net := network.MustNew(topo, network.DefaultConfig(), core.New(core.DefaultConfig()))

	cores := topo.Cores()
	p := &message.Packet{
		Src:  cores[0],  // a core in chiplet 0
		Dst:  cores[63], // a core in chiplet 3
		VNet: message.VNetRequest,
		Size: message.DataPacketFlits,
	}
	net.NI(p.Src).Enqueue(p, 0)
	if err := net.Drain(10000, 2000); err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d flits across %d chiplets\n", p.Size, 2)
	// Output: delivered 5 flits across 2 chiplets
}

// ExampleUPP_deadlockRecovery shows the recovery framework in miniature:
// an aggressive detection threshold treats brief congestion as deadlock,
// so even a light run exercises the full req/ack/popup machinery.
func ExampleUPP_deadlockRecovery() {
	topo := topology.MustBuild(topology.BaselineConfig())
	upp := core.New(core.Config{Threshold: 2})
	net := network.MustNew(topo, network.DefaultConfig(), upp)

	cores := topo.Cores()
	// A synchronized burst into one chiplet congests its up links.
	for i := 0; i < 32; i++ {
		p := &message.Packet{
			Src:  cores[i],
			Dst:  cores[48+i%16],
			VNet: message.VNetResponse,
			Size: message.DataPacketFlits,
		}
		net.NI(p.Src).Enqueue(p, 0)
	}
	if err := net.Drain(50000, 10000); err != nil {
		panic(err)
	}
	fmt.Printf("all packets delivered: %v\n", net.Stats.ConsumedPackets == 32)
	fmt.Printf("popups left behind: %d\n", upp.ActivePopups())
	// Output:
	// all packets delivered: true
	// popups left behind: 0
}
