package core_test

import (
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// TestOQIntegrationDeadlockRecovery pins a property the router refactor
// surfaced: the output-queued variant's full-speedup input stage packs
// buffers differently from iq, and under scheme None with a single VC per
// VNet that packing wedges the all-pairs workload into a genuine
// integration-induced deadlock (the iq pipeline happens to squeak past
// it). The test asserts both halves of the paper's claim on the oq
// datapath: the extracted dependency cycle spans layers and contains an
// upward packet, and attaching UPP recovers the exact same workload.
func TestOQIntegrationDeadlockRecovery(t *testing.T) {
	run := func(t *testing.T, sch network.Scheme) (*network.Network, int, error) {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Router.VCsPerVNet = 1
		cfg.RouterArch = "oq"
		n, err := network.New(topo, cfg, sch)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cores := n.Topo.Cores()
		want := 0
		for i, src := range cores {
			for j := 0; j < len(cores); j += 7 {
				if i == j {
					continue
				}
				p := &message.Packet{Src: src, Dst: cores[j], VNet: message.VNet(want % message.NumVNets), Size: 1 + 4*(want%2)}
				n.NI(src).Enqueue(p, 0)
				want++
			}
		}
		return n, want, n.Drain(200000, 20000)
	}

	t.Run("none_deadlocks", func(t *testing.T) {
		n, _, err := run(t, network.None{})
		if err == nil {
			t.Skip("workload drained without a scheme; packing no longer wedges")
		}
		c := n.FindDependencyCycle()
		if c == nil {
			t.Fatalf("deadlocked but no dependency cycle found: %v", err)
		}
		if !c.SpansLayers() {
			t.Errorf("cycle does not span layers: %s", c)
		}
		if !c.InvolvesUpwardPacket() {
			t.Errorf("cycle has no stalled upward packet: %s", c)
		}
	})

	t.Run("upp_recovers", func(t *testing.T) {
		n, want, err := run(t, core.New(core.DefaultConfig()))
		if err != nil {
			t.Fatalf("drain under UPP: %v", err)
		}
		if int(n.Stats.EjectedPackets) != want {
			t.Fatalf("ejected %d of %d", n.Stats.EjectedPackets, want)
		}
		if n.Stats.PopupsCompleted == 0 {
			t.Errorf("UPP completed no popups; recovery untested")
		}
	})
}
