package core

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// sendOriginSignals transmits pending UPP_req and UPP_stop signals from
// interposer routers. Signals from one router are serialized with at least
// SignalGap cycles between them (Sec. V-B5, first case).
func (u *UPP) sendOriginSignals(cycle sim.Cycle) {
	for _, p := range u.sortedPopups() {
		switch {
		case !p.reqSent && !p.cancelled:
			u.trySendFromOrigin(p, sigReq, cycle)
		case p.stopPending:
			u.trySendFromOrigin(p, sigStop, cycle)
		}
	}
}

// trySendFromOrigin pushes a req or stop across the origin's up link into
// the first chiplet router's signal buffer.
func (u *UPP) trySendFromOrigin(p *popup, kind sigKind, cycle sim.Cycle) {
	ns := &u.nodes[p.origin]
	if cycle < ns.nextSignal {
		return
	}
	first := &u.nodes[p.path[1].node]
	if first.reqStop.valid || first.reqStop.reserved {
		return
	}
	r := u.net.Router(p.origin)
	out := p.path[0].outPort
	if r.OutputClaimed(out, cycle) {
		return // delayed by an upward flit (Sec. V-C1)
	}
	r.ClaimOutput(out, cycle)
	r.SendDirect(out)
	u.net.Stats.SignalsSent++
	u.assertEncodable(p, kind)
	ns.nextSignal = cycle + sim.Cycle(u.cfg.SignalGap)
	if kind == sigReq {
		p.reqSent = true
	} else {
		p.stopPending = false
	}
	first.reqStop.reserved = true
	id, hopIdx := p.id, 1
	u.net.Schedule(cycle+1+u.linkLat(), func(arrival sim.Cycle) {
		u.signalArrive(id, kind, hopIdx, arrival)
	})
}

// signalArrive is the buffer write of a req/stop at path[hopIdx]. Reqs
// install the circuit entry (Fig. 6's chiplet-router table) as they pass.
func (u *UPP) signalArrive(popupID uint64, kind sigKind, hopIdx int, arrival sim.Cycle) {
	p := u.popups[popupID]
	if p == nil {
		panic(fmt.Sprintf("upp: signal arrival for retired popup %d", popupID))
	}
	h := &p.path[hopIdx]
	ns := &u.nodes[h.node]
	ns.reqStop = reqStopLatch{
		valid:   true,
		kind:    kind,
		popupID: popupID,
		hopIdx:  hopIdx,
		ready:   arrival + 1, // BW this cycle, eligible next (head-flit pipeline)
	}
	if kind == sigReq {
		ce := &ns.circuit[p.vnet]
		if ce.active {
			panic(fmt.Sprintf("upp: circuit conflict at node %d vnet %s (popup %d vs %d)",
				h.node, p.vnet, ce.popupID, popupID))
		}
		*ce = circuitEntry{active: true, popupID: popupID, inPort: h.inPort, outPort: h.outPort, vcIdx: -1}
	}
}

// moveSignals advances every buffered req/stop one hop and every ack one
// reverse hop, respecting crossbar claims (popup flits already claimed
// theirs — they have priority) and downstream buffer occupancy.
func (u *UPP) moveSignals(cycle sim.Cycle) {
	for id := range u.nodes {
		u.moveReqStop(topology.NodeID(id), cycle)
	}
	for id := range u.nodes {
		u.moveAcks(topology.NodeID(id), cycle)
	}
}

func (u *UPP) moveReqStop(node topology.NodeID, cycle sim.Cycle) {
	ns := &u.nodes[node]
	l := &ns.reqStop
	if !l.valid || l.ready > cycle {
		return
	}
	p := u.popups[l.popupID]
	if p == nil {
		panic("upp: buffered signal for retired popup")
	}
	h := &p.path[l.hopIdx]
	if l.hopIdx == len(p.path)-1 {
		// Destination router: hand the signal to the NI.
		u.deliverReqStop(p, l.kind, cycle)
		l.valid = false
		return
	}
	r := u.net.Router(node)
	next := &u.nodes[p.path[l.hopIdx+1].node]
	if next.reqStop.valid || next.reqStop.reserved {
		return
	}
	if r.OutputClaimed(h.outPort, cycle) {
		return // delayed one cycle by an upward flit (Sec. V-C1)
	}
	r.ClaimOutput(h.outPort, cycle)
	r.SendDirect(h.outPort)
	u.net.Stats.SignalsSent++
	if l.kind == sigStop {
		// Stops dismantle the circuit as they retrace the req's path.
		ce := &ns.circuit[p.vnet]
		if ce.active && ce.popupID == p.id {
			*ce = circuitEntry{vcIdx: -1}
		}
	}
	next.reqStop.reserved = true
	id, kind, hopIdx := p.id, l.kind, l.hopIdx+1
	l.valid = false
	u.net.Schedule(cycle+1+u.linkLat(), func(arrival sim.Cycle) {
		u.signalArrive(id, kind, hopIdx, arrival)
	})
}

// deliverReqStop processes a req/stop reaching the destination NI. It
// addresses the destination through the popup's snapshot: a stop can
// arrive after a cancelled popup's packet was consumed and recycled.
func (u *UPP) deliverReqStop(p *popup, kind sigKind, cycle sim.Cycle) {
	ni := u.net.NI(p.dst)
	ns := &u.nodes[p.dst]
	if kind == sigStop {
		ni.CancelReservation(p.vnet, p.id)
		ce := &ns.circuit[p.vnet]
		if ce.active && ce.popupID == p.id {
			*ce = circuitEntry{vcIdx: -1}
		}
		p.stopDelivered = true
		u.finishCancelled(p)
		return
	}
	u.net.Trace("upp", p.dst, "popup %d: UPP_req at destination NI (vnet %s)", p.id, p.vnet)
	id := p.id
	ni.RequestReservation(p.vnet, p.id, cycle, func(grantCycle sim.Cycle) {
		u.net.Stats.ReservationsGranted++
		pp := u.popups[id]
		if pp == nil {
			panic("upp: reservation granted for retired popup")
		}
		pp.ackLaunched = true
		u.launchAck(pp, grantCycle)
	})
}

// assertEncodable checks that the signal state being transmitted fits the
// paper's Fig. 4 wire format (18-bit req/stop, 9-bit ack, 32-bit buffers)
// — the simulator moves structs, but the hardware budget must hold.
func (u *UPP) assertEncodable(p *popup, kind sigKind) {
	sig := message.Signal{VNet: p.vnet, Dst: p.dst, Origin: p.origin, PopupID: p.id, InputVC: int8(p.vcIdx)}
	switch kind {
	case sigReq:
		sig.Type = message.UPPReq
	case sigStop:
		sig.Type = message.UPPStop
	}
	if _, err := sig.Encode(); err != nil {
		panic(fmt.Sprintf("upp: signal exceeds the Fig. 4 encoding budget: %v", err))
	}
}

// launchAck places the UPP_ack in the destination router's ack buffer.
// Snapshot-addressed: the grant can fire for a popup cancelled after its
// packet already ejected, consumed and recycled.
func (u *UPP) launchAck(p *popup, cycle sim.Cycle) {
	ns := &u.nodes[p.dst]
	if len(ns.acks)+ns.ackRes >= message.NumVNets {
		panic("upp: ack buffer overflow (merging invariant violated)")
	}
	ns.acks = append(ns.acks, ackEntry{popupID: p.id, hopIdx: len(p.path) - 1, ready: cycle + 1})
}

func (u *UPP) moveAcks(node topology.NodeID, cycle sim.Cycle) {
	ns := &u.nodes[node]
	if len(ns.acks) == 0 {
		return
	}
	kept := ns.acks[:0]
	for _, a := range ns.acks {
		if a.ready > cycle || !u.moveAck(node, a, cycle) {
			kept = append(kept, a)
		}
	}
	ns.acks = kept
}

// moveAck advances one ack a single reverse hop; it reports whether the
// ack left this router.
func (u *UPP) moveAck(node topology.NodeID, a ackEntry, cycle sim.Cycle) bool {
	p := u.popups[a.popupID]
	if p == nil {
		panic("upp: buffered ack for retired popup")
	}
	h := &p.path[a.hopIdx]
	r := u.net.Router(node)
	// The ack leaves through the port its req arrived on — the recorded
	// reverse path (Sec. V-B2).
	if r.OutputClaimed(h.inPort, cycle) {
		return false
	}
	if a.hopIdx == 1 {
		// Next stop is the origin interposer router: process on arrival.
		r.ClaimOutput(h.inPort, cycle)
		r.SendDirect(h.inPort)
		u.net.Stats.SignalsSent++
		id := a.popupID
		u.net.Schedule(cycle+1+u.linkLat(), func(arrival sim.Cycle) {
			u.ackAtOrigin(id, arrival)
		})
		return true
	}
	prev := &u.nodes[p.path[a.hopIdx-1].node]
	if len(prev.acks)+prev.ackRes >= message.NumVNets {
		return false
	}
	r.ClaimOutput(h.inPort, cycle)
	r.SendDirect(h.inPort)
	u.net.Stats.SignalsSent++
	prev.ackRes++
	id, hopIdx := a.popupID, a.hopIdx-1
	u.net.Schedule(cycle+1+u.linkLat(), func(arrival sim.Cycle) {
		pp := u.popups[id]
		if pp == nil {
			panic("upp: ack arrival for retired popup")
		}
		pn := &u.nodes[pp.path[hopIdx].node]
		pn.ackRes--
		pn.acks = append(pn.acks, ackEntry{popupID: id, hopIdx: hopIdx, ready: arrival + 1})
	})
	return true
}

// ackAtOrigin processes the UPP_ack reaching the origin interposer router:
// start the popup drain, or discard the ack if the popup was cancelled
// meanwhile (Sec. V-B1, third rule).
func (u *UPP) ackAtOrigin(popupID uint64, cycle sim.Cycle) {
	p := u.popups[popupID]
	if p == nil {
		panic("upp: origin ack for retired popup")
	}
	if p.cancelled {
		p.ackDone = true
		u.finishCancelled(p)
		return
	}
	r := u.net.Router(p.origin)
	vc := r.VCAt(p.port, p.vcIdx)
	if f, _, ok := vc.Front(); !ok || !p.holds(f.Pkt) {
		// The packet slipped away in the same cycle the ack landed; treat
		// it as a late false positive: cancel and recycle the reservation.
		p.cancelled = true
		p.ackDone = true
		p.stopPending = true
		u.net.Stats.PopupsCancelled++
		return
	}
	// holds established the packet is the live incarnation at the front
	// of the tracked VC; livePkt re-asserts before mutation.
	lp := p.livePkt()
	p.stage = stageDrain
	p.drainStart = cycle
	lp.Popup = true
	lp.PopupID = p.id
	vc.Hold = true
	u.net.Stats.PopupsStarted++
	u.net.Trace("upp", p.origin, "popup %d: UPP_ack received; draining pkt%d through the circuit", p.id, p.pktID)
}
