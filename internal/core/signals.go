package core

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// netSignalKind maps a latch occupant to the fault-injection signal kind.
func netSignalKind(k sigKind) network.SignalKind {
	if k == sigStop {
		return network.SignalStop
	}
	return network.SignalReq
}

// sendOriginSignals transmits pending UPP_req and UPP_stop signals from
// interposer routers. Signals from one router are serialized with at least
// SignalGap cycles between them (Sec. V-B5, first case).
func (u *UPP) sendOriginSignals(cycle sim.Cycle) {
	for _, p := range u.sortedPopups() {
		switch {
		case (!p.reqSent || p.resendReq) && !p.cancelled:
			u.trySendFromOrigin(p, sigReq, cycle)
		case p.stopPending:
			u.trySendFromOrigin(p, sigStop, cycle)
		}
	}
}

// trySendFromOrigin pushes a req or stop across the origin's up link into
// the first chiplet router's signal buffer.
func (u *UPP) trySendFromOrigin(p *popup, kind sigKind, cycle sim.Cycle) {
	ns := &u.nodes[p.origin]
	if cycle < ns.nextSignal {
		return
	}
	first := &u.nodes[p.path[1].node]
	if first.reqStop.valid || first.reqStop.reserved {
		return
	}
	r := u.net.Router(p.origin)
	out := p.path[0].outPort
	if r.OutputClaimed(out, cycle) {
		return // delayed by an upward flit (Sec. V-C1)
	}
	r.ClaimOutput(out, cycle)
	r.SendDirect(out)
	u.net.Stats.SignalsSent++
	u.assertEncodable(p, kind)
	ns.nextSignal = cycle + sim.Cycle(u.cfg.SignalGap)
	if kind == sigReq {
		p.reqSent = true
		p.resendReq = false
	} else {
		p.stopPending = false
	}
	u.armDeadline(p, cycle)
	// The signal has left the router; fault injection decides whether it
	// survives the wire (the vertical up link never flaps, but signals
	// can still be dropped or delayed).
	fate := u.net.SignalFate(netSignalKind(kind), p.id, 1, cycle)
	if fate.Drop {
		return
	}
	first.reqStop.reserved = true
	u.net.ScheduleCall(cycle+1+u.linkLat()+fate.Delay, network.SchemeCall{
		Kind: uppCallSignal, Node: p.path[1].node, A: p.id, B: uint64(kind), Hop: 1,
	})
}

// signalArrive is the buffer write of a req/stop at path[hopIdx]. Reqs
// install the circuit entry (Fig. 6's chiplet-router table) as they pass.
// The landing node is captured at schedule time so a signal whose popup
// was force-retired mid-flight can still release its latch reservation.
func (u *UPP) signalArrive(popupID uint64, kind sigKind, hopIdx int, node topology.NodeID, arrival sim.Cycle) {
	ns := &u.nodes[node]
	p := u.popups[popupID]
	if p == nil {
		// The popup was force-retired (retry exhaustion) while this signal
		// was in flight: release the reservation and discard.
		ns.reqStop.reserved = false
		u.net.Stats.LateSignals++
		return
	}
	h := &p.path[hopIdx]
	ns.reqStop = reqStopLatch{
		valid:   true,
		kind:    kind,
		popupID: popupID,
		hopIdx:  hopIdx,
		ready:   arrival + 1, // BW this cycle, eligible next (head-flit pipeline)
	}
	if kind == sigReq {
		ce := &ns.circuit[p.vnet]
		if ce.active {
			if ce.popupID != popupID {
				// Two different live popups on one (node, VNet) would mean
				// the per-(chiplet, VNet) token was double-granted — a true
				// invariant, kept as a panic.
				panic(fmt.Sprintf("upp: circuit conflict at node %d vnet %s (popup %d vs %d)",
					node, p.vnet, ce.popupID, popupID))
			}
			// A retried req retracing entries its lost predecessor already
			// installed: leave the live entry untouched (the drain may be
			// using its vcIdx/released state).
		} else {
			*ce = circuitEntry{active: true, popupID: popupID, inPort: h.inPort, outPort: h.outPort, vcIdx: -1}
		}
	}
}

// moveSignals advances every buffered req/stop one hop and every ack one
// reverse hop, respecting crossbar claims (popup flits already claimed
// theirs — they have priority) and downstream buffer occupancy.
func (u *UPP) moveSignals(cycle sim.Cycle) {
	for id := range u.nodes {
		u.moveReqStop(topology.NodeID(id), cycle)
	}
	for id := range u.nodes {
		u.moveAcks(topology.NodeID(id), cycle)
	}
}

func (u *UPP) moveReqStop(node topology.NodeID, cycle sim.Cycle) {
	ns := &u.nodes[node]
	l := &ns.reqStop
	if !l.valid || l.ready > cycle {
		return
	}
	p := u.popups[l.popupID]
	if p == nil {
		// Defensive recovery (abortPopup sweeps its path's latches, so
		// this should be unreachable): discard instead of crashing.
		l.valid = false
		u.net.Stats.LateSignals++
		return
	}
	h := &p.path[l.hopIdx]
	if l.hopIdx == len(p.path)-1 {
		// Destination router: hand the signal to the NI.
		u.deliverReqStop(p, l.kind, cycle)
		l.valid = false
		return
	}
	r := u.net.Router(node)
	next := &u.nodes[p.path[l.hopIdx+1].node]
	if next.reqStop.valid || next.reqStop.reserved {
		return
	}
	if r.PortDown(h.outPort) {
		return // mesh link transiently down: wait out the flap
	}
	if r.OutputClaimed(h.outPort, cycle) {
		return // delayed one cycle by an upward flit (Sec. V-C1)
	}
	r.ClaimOutput(h.outPort, cycle)
	r.SendDirect(h.outPort)
	u.net.Stats.SignalsSent++
	if l.kind == sigStop {
		// Stops dismantle the circuit as they retrace the req's path.
		ce := &ns.circuit[p.vnet]
		if ce.active && ce.popupID == p.id {
			*ce = circuitEntry{vcIdx: -1}
		}
	}
	id, kind, hopIdx := p.id, l.kind, l.hopIdx+1
	l.valid = false
	fate := u.net.SignalFate(netSignalKind(kind), id, hopIdx, cycle)
	if fate.Drop {
		return
	}
	next.reqStop.reserved = true
	u.net.ScheduleCall(cycle+1+u.linkLat()+fate.Delay, network.SchemeCall{
		Kind: uppCallSignal, Node: p.path[hopIdx].node, A: id, B: uint64(kind), Hop: int32(hopIdx),
	})
}

// deliverReqStop processes a req/stop reaching the destination NI. It
// addresses the destination through the popup's snapshot: a stop can
// arrive after a cancelled popup's packet was consumed and recycled.
func (u *UPP) deliverReqStop(p *popup, kind sigKind, cycle sim.Cycle) {
	ni := u.net.NI(p.dst)
	ns := &u.nodes[p.dst]
	if kind == sigStop {
		if p.resRequested {
			// Only cancel when reservation state exists: with signal drops
			// the req may never have arrived, and a blind cancel of nothing
			// was one of the protocol's panics.
			ni.CancelReservation(p.vnet, p.id)
			p.resRequested = false
		}
		ce := &ns.circuit[p.vnet]
		if ce.active && ce.popupID == p.id {
			*ce = circuitEntry{vcIdx: -1}
		}
		p.stopDelivered = true
		if p.ackLaunched && !p.ackDone {
			// The discarded ack still has to come home; re-arm the watchdog
			// so a lost ack cannot strand the cancelled popup forever.
			p.retries = 0
			u.armDeadline(p, cycle)
		}
		u.finishCancelled(p)
		return
	}
	if p.resRequested {
		// A retried req caught up with its delivered predecessor. The
		// reservation machinery is already engaged; if the ack was already
		// granted it may have been the thing that got lost — re-launch it
		// (launchAck merges if one is still buffered at the destination).
		u.net.Stats.LateSignals++
		if p.ackLaunched {
			u.launchAck(p, cycle)
		}
		return
	}
	p.resRequested = true
	u.net.Trace("upp", p.dst, "popup %d: UPP_req at destination NI (vnet %s)", p.id, p.vnet)
	ni.RequestReservation(p.vnet, p.id, cycle, u.makeGrant(ni, p.id, p.vnet))
}

// assertEncodable checks that the signal state being transmitted fits the
// paper's Fig. 4 wire format (18-bit req/stop, 9-bit ack, 32-bit buffers)
// — the simulator moves structs, but the hardware budget must hold. On
// the scale-out systems the destination field widens with the node count
// (message.DestBits), so the budget scales as ceil(log2(N)) while
// everything else in the encoding is unchanged.
func (u *UPP) assertEncodable(p *popup, kind sigKind) {
	sig := message.Signal{VNet: p.vnet, Dst: p.dst, Origin: p.origin, PopupID: p.id, InputVC: int8(p.vcIdx)}
	switch kind {
	case sigReq:
		sig.Type = message.UPPReq
	case sigStop:
		sig.Type = message.UPPStop
	}
	if _, err := sig.EncodeSized(u.destBits); err != nil {
		panic(fmt.Sprintf("upp: signal exceeds the Fig. 4 encoding budget: %v", err))
	}
}

// launchAck places the UPP_ack in the destination router's ack buffer,
// merging with an ack of the same popup already buffered there (the paper
// ORs concurrent acks' one-hot VNet fields into the same 32-bit buffer —
// a retried req's duplicate ack merges the same way).
func (u *UPP) launchAck(p *popup, cycle sim.Cycle) {
	ns := &u.nodes[p.dst]
	for i := range ns.acks {
		if ns.acks[i].popupID == p.id {
			return
		}
	}
	if len(ns.acks)+ns.ackRes >= message.NumVNets {
		// Distinct popups are bounded by the per-(chiplet, VNet) token, so
		// overflow means the token was double-granted — a true invariant.
		panic(fmt.Sprintf("upp: ack buffer overflow at node %d (merging invariant violated)", p.dst))
	}
	ns.acks = append(ns.acks, ackEntry{popupID: p.id, hopIdx: len(p.path) - 1, ready: cycle + 1})
}

func (u *UPP) moveAcks(node topology.NodeID, cycle sim.Cycle) {
	ns := &u.nodes[node]
	if len(ns.acks) == 0 {
		return
	}
	kept := ns.acks[:0]
	for _, a := range ns.acks {
		if a.ready > cycle || !u.moveAck(node, a, cycle) {
			kept = append(kept, a)
		}
	}
	ns.acks = kept
}

// moveAck advances one ack a single reverse hop; it reports whether the
// ack left this router (or was discarded).
func (u *UPP) moveAck(node topology.NodeID, a ackEntry, cycle sim.Cycle) bool {
	p := u.popups[a.popupID]
	if p == nil {
		// Force-retired while buffered here (abortPopup sweeps its path,
		// so this should be unreachable): discard instead of crashing.
		u.net.Stats.LateSignals++
		return true
	}
	h := &p.path[a.hopIdx]
	r := u.net.Router(node)
	// The ack leaves through the port its req arrived on — the recorded
	// reverse path (Sec. V-B2).
	if r.PortDown(h.inPort) {
		return false // mesh link transiently down: wait out the flap
	}
	if r.OutputClaimed(h.inPort, cycle) {
		return false
	}
	if a.hopIdx == 1 {
		// Next stop is the origin interposer router: process on arrival.
		r.ClaimOutput(h.inPort, cycle)
		r.SendDirect(h.inPort)
		u.net.Stats.SignalsSent++
		id := a.popupID
		fate := u.net.SignalFate(network.SignalAck, id, a.hopIdx, cycle)
		if fate.Drop {
			return true
		}
		u.net.ScheduleCall(cycle+1+u.linkLat()+fate.Delay, network.SchemeCall{
			Kind: uppCallAckOrigin, A: id,
		})
		return true
	}
	prev := &u.nodes[p.path[a.hopIdx-1].node]
	if len(prev.acks)+prev.ackRes >= message.NumVNets {
		return false
	}
	r.ClaimOutput(h.inPort, cycle)
	r.SendDirect(h.inPort)
	u.net.Stats.SignalsSent++
	id, hopIdx := a.popupID, a.hopIdx-1
	fate := u.net.SignalFate(network.SignalAck, id, a.hopIdx, cycle)
	if fate.Drop {
		return true
	}
	prev.ackRes++
	u.net.ScheduleCall(cycle+1+u.linkLat()+fate.Delay, network.SchemeCall{
		Kind: uppCallAckRelay, Node: p.path[hopIdx].node, A: id, Hop: int32(hopIdx),
	})
	return true
}

// ackRelayArrive lands an ack one reverse hop down at node — the
// delivery half of moveAck's relay (dispatched via uppCallAckRelay).
func (u *UPP) ackRelayArrive(node topology.NodeID, id uint64, hopIdx int, arrival sim.Cycle) {
	pn := &u.nodes[node]
	pn.ackRes--
	if u.popups[id] == nil {
		// Landed after its popup was force-retired: discard.
		u.net.Stats.LateSignals++
		return
	}
	for i := range pn.acks {
		if pn.acks[i].popupID == id {
			// A duplicate ack (retried req) caught up with the original
			// at this node: merge (the OR of one-hot VNet fields).
			u.net.Stats.LateSignals++
			return
		}
	}
	pn.acks = append(pn.acks, ackEntry{popupID: id, hopIdx: hopIdx, ready: arrival + 1})
}

// ackAtOrigin processes the UPP_ack reaching the origin interposer router:
// start the popup drain, or discard the ack if the popup was cancelled
// meanwhile (Sec. V-B1, third rule).
func (u *UPP) ackAtOrigin(popupID uint64, cycle sim.Cycle) {
	p := u.popups[popupID]
	if p == nil {
		// The popup was force-retired while the ack was in flight.
		u.net.Stats.LateSignals++
		return
	}
	if p.stage == stageDrain {
		// Duplicate ack from a retried req; the first one already started
		// the drain.
		u.net.Stats.LateSignals++
		return
	}
	if p.cancelled {
		p.ackDone = true
		u.finishCancelled(p)
		return
	}
	r := u.net.Router(p.origin)
	vc := r.VCAt(p.port, p.vcIdx)
	if f, _, ok := vc.Front(); !ok || !p.holds(f.Pkt) {
		// The packet slipped away in the same cycle the ack landed; treat
		// it as a late false positive: cancel and recycle the reservation.
		p.cancelled = true
		p.ackDone = true
		p.stopPending = true
		u.net.Stats.PopupsCancelled++
		return
	}
	// holds established the packet is the live incarnation at the front
	// of the tracked VC; livePkt re-asserts before mutation.
	lp := p.livePkt()
	p.stage = stageDrain
	p.drainStart = cycle
	p.deadline = 0 // the drain makes its own progress; watchdog off
	lp.Popup = true
	lp.PopupID = p.id
	vc.Hold = true
	u.net.Stats.PopupsStarted++
	u.net.Trace("upp", p.origin, "popup %d: UPP_ack received; draining pkt%d through the circuit", p.id, p.pktID)
}
