// Package core implements UPP — Upward Packet Popup — the paper's
// deadlock recovery framework for modular chiplet-based systems.
//
// UPP rests on one observation (Sec. IV-A): every integration-induced
// deadlock contains an upward packet, permanently stalled in an interposer
// router while trying to move up a vertical link into a chiplet. UPP
// therefore:
//
//  1. detects deadlocks with a per-VNet timeout counter on each interposer
//     router's up output port and selects one stalled upward packet per
//     VNet with a round-robin arbiter (Sec. V-A);
//  2. reserves an ejection-queue entry at the destination NI with a
//     lightweight three-signal protocol — UPP_req / UPP_ack / UPP_stop —
//     whose signals travel the normal router datapath in two dedicated
//     32-bit buffers per chiplet router, with priority over normal flits
//     (Sec. V-B);
//  3. pops the packet up: the UPP_req installed a circuit through the
//     chiplet, and the packet's flits bypass buffers along it, taking only
//     the switch-traversal stage per hop with absolute crossbar priority
//     (Sec. V-C).
//
// False positives (congestion mistaken for deadlock) are harmless: the
// interposer router cancels with UPP_stop if the packet proceeds normally
// before the ack returns, and a popup of a merely-congested packet just
// uses bandwidth that was idle anyway (Sec. V-A).
//
// Concurrent popups of the same VNet into the same chiplet are serialized
// with a per-(chiplet, VNet) token — the interposer-router coordination
// option of Sec. V-B5; popups of different VNets proceed concurrently.
package core

import (
	"fmt"
	"strings"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Config parameterizes UPP.
type Config struct {
	// Threshold is the timeout in cycles before an idle-but-wanted up port
	// is declared deadlocked (Table II: 20; Fig. 13 sweeps 20/100/1000).
	Threshold int
	// SignalGap is the minimum spacing between consecutive protocol
	// signals sent by one interposer router
	// (Size_of_Data_Packet + 1, Sec. V-B5).
	SignalGap int
	// Policy overrides the egress-boundary selection (nil = the paper's
	// static closest-boundary binding). The ablation experiments swap in
	// the alternatives of Sec. V-D's design discussion.
	Policy routing.BoundaryPolicy
	// SignalTimeout, when > 0, arms a per-popup watchdog on every
	// outstanding protocol signal: a popup whose req (or a cancelled
	// popup whose stop or discarded ack) has produced no progress for
	// SignalTimeout cycles re-sends with exponential backoff, and after
	// MaxSignalRetries attempts the popup is force-retired — its path
	// swept clean, its reservation recycled — and the still-stalled
	// packet falls back to normal timeout re-detection. 0 (the default)
	// disables the machinery entirely: the healthy path is byte-identical
	// to a build without it. Enable under runtime fault injection, where
	// a dropped signal would otherwise wedge recovery forever.
	SignalTimeout int
	// MaxSignalRetries bounds re-sends per signal phase (default 3 when
	// SignalTimeout > 0).
	MaxSignalRetries int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{Threshold: 20, SignalGap: message.DataPacketFlits + 1}
}

// stage of a popup instance.
type popupStage uint8

const (
	// stageReq: packet selected; UPP_req queued/in flight; waiting for the
	// ack.
	stageReq popupStage = iota
	// stageDrain: ack received at the origin; the packet is being popped
	// up through the circuit.
	stageDrain
)

// hop is one step of a popup's path from the origin interposer router
// (index 0) to the destination chiplet router (last index).
type hop struct {
	node    topology.NodeID
	inPort  topology.PortID // port the UPP_req arrives on (invalid at origin)
	outPort topology.PortID // port it leaves by (Local at the destination)
}

// popup is one recovery instance.
//
// Packet ownership: the popup does not own its packet — the pool
// releases it through the destination NI once the PE consumes it, which
// for a cancelled popup can happen while the popup still waits for its
// stop/ack signals to sweep the path. The popup therefore snapshots
// everything it needs after cancellation (dst, dstChiplet, pktID) at
// creation time, and all identity checks against in-flight flits go
// through holds(), which pairs the pointer comparison with a generation
// check (pointer equality alone is ABA-unsafe once packets recycle).
type popup struct {
	id     uint64
	vnet   message.VNet
	origin topology.NodeID
	pkt    *message.Packet
	// pktGen is the packet's pool generation at selection time; dst,
	// dstChiplet and pktID snapshot the fields used on paths that may
	// run after the packet was consumed and recycled.
	pktGen     uint32
	dst        topology.NodeID
	dstChiplet int
	pktID      uint64
	// Tracked VC at the origin interposer router.
	port     topology.PortID
	vcIdx    int
	frontSeq int32
	path     []hop

	stage      popupStage
	drainStart sim.Cycle

	reqSent        bool
	cancelled      bool
	stopPending    bool
	stopDelivered  bool
	ackLaunched    bool
	ackDone        bool
	tailLeftOrigin bool

	// Signal-retry state (Config.SignalTimeout > 0; all zero otherwise).
	// deadline is the cycle at which the outstanding signal phase is
	// declared lost (0 = unarmed); retries counts re-sends in the current
	// phase; resendReq re-queues a req without clearing reqSent
	// (checkProceeded's remote-cleanup decision keys on whether any req
	// ever left); resRequested tracks whether the destination NI holds
	// reservation state — waiter or granted entry — for this popup.
	deadline     sim.Cycle
	retries      uint8
	resendReq    bool
	resRequested bool
}

// holds reports whether q is exactly the incarnation of the popup's
// packet that was selected — same pointer and same pool generation. All
// flit-identity checks use it instead of bare pointer equality.
func (p *popup) holds(q *message.Packet) bool {
	return q == p.pkt && q.Generation() == p.pktGen
}

// livePkt returns the popup's packet for paths that are only reached
// while the packet is provably still in flight (e.g. drain, completion
// at ejection), asserting the pool has not recycled it out from under
// the popup. Always-on: these are cold recovery paths.
func (p *popup) livePkt() *message.Packet {
	if p.pkt.Generation() != p.pktGen || p.pkt.Released() {
		panic(fmt.Sprintf("upp: popup %d references recycled packet %d (stale-generation access)", p.id, p.pktID))
	}
	return p.pkt
}

// circuitEntry is a chiplet router's per-VNet crossbar connection record,
// installed by a passing UPP_req and used by the ack's reverse path and
// the upward flits (Fig. 6's chiplet-router table).
type circuitEntry struct {
	active  bool
	popupID uint64
	inPort  topology.PortID
	outPort topology.PortID
	// vcIdx is the VC of inPort observed to hold the popup packet's flits
	// (-1 until seen); released marks that the VC was force-released after
	// the packet diverted past it.
	vcIdx    int8
	released bool
}

// sigKind distinguishes latch occupants.
type sigKind uint8

const (
	sigReq sigKind = iota
	sigStop
)

// reqStopLatch is the single-signal UPP_req/UPP_stop buffer of a chiplet
// router (one 32-bit buffer, Sec. V-B2).
type reqStopLatch struct {
	valid    bool
	reserved bool // an in-flight signal will land here
	kind     sigKind
	popupID  uint64
	hopIdx   int
	ready    sim.Cycle
}

// ackEntry is one UPP_ack in a chiplet router's ack buffer. The buffer
// holds up to one ack per VNet (the paper merges concurrent acks by ORing
// their one-hot VNet fields into the same 32-bit buffer).
type ackEntry struct {
	popupID uint64
	hopIdx  int
	ready   sim.Cycle
}

// flitLatch is the per-VNet circuit-switching latch a popup flit occupies
// between switch traversals.
type flitLatch struct {
	valid    bool
	reserved bool
	flit     message.Flit
	ready    sim.Cycle
}

// nodeState is the per-router UPP state (both roles; unused fields stay
// zero).
type nodeState struct {
	// Interposer-router side (Fig. 6 middle).
	counters   [message.NumVNets]int32
	entry      [message.NumVNets]*popup
	rr         [message.NumVNets]int
	nextSignal sim.Cycle

	// Chiplet-router side (Fig. 6 top).
	circuit    [message.NumVNets]circuitEntry
	reqStop    reqStopLatch
	acks       []ackEntry
	ackRes     int // reserved incoming acks
	popupLatch [message.NumVNets]flitLatch
}

// UPP is the scheme. Create with New and pass to network.New.
type UPP struct {
	network.BaseScheme
	cfg Config

	net    *network.Network
	nodes  []nodeState
	tokens [][message.NumVNets]uint64 // holder popup ID per (chiplet, vnet); 0 = free
	// destBits is the signal destination-field width the attached system
	// needs (message.DestBits of its node count): 8 bits on the paper's
	// systems, wider on the scale-out topologies.
	destBits int
	popups   map[uint64]*popup
	nextID   uint64
	// sorted is sortedPopups' reusable scratch buffer (recovery cycles
	// run several passes over the active set; reusing the slice keeps
	// them allocation-light).
	sorted []*popup
}

// New returns a UPP scheme instance.
func New(cfg Config) *UPP {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 20
	}
	if cfg.SignalGap <= 0 {
		cfg.SignalGap = message.DataPacketFlits + 1
	}
	if cfg.SignalTimeout > 0 && cfg.MaxSignalRetries <= 0 {
		cfg.MaxSignalRetries = 3
	}
	return &UPP{cfg: cfg, popups: make(map[uint64]*popup)}
}

// Name implements network.Scheme.
func (u *UPP) Name() string { return "upp" }

// Config returns the effective configuration after New's defaulting
// (threshold sweeps and configuration-propagation tests).
func (u *UPP) Config() Config { return u.cfg }

// Policy implements network.Scheme — UPP uses the static binding unless
// an ablation policy was configured.
func (u *UPP) Policy() routing.BoundaryPolicy {
	if u.cfg.Policy != nil {
		return u.cfg.Policy
	}
	return routing.DefaultPolicy{}
}

// Attach implements network.Scheme.
func (u *UPP) Attach(n *network.Network) {
	u.net = n
	u.destBits = message.DestBits(n.Topo.NumNodes())
	u.nodes = make([]nodeState, n.Topo.NumNodes())
	u.tokens = make([][message.NumVNets]uint64, len(n.Topo.Chiplets))
	for i := range u.nodes {
		ns := &u.nodes[i]
		for v := range ns.circuit {
			ns.circuit[v].vcIdx = -1
		}
	}
}

// ActivePopups returns the number of in-flight popup instances (tests).
func (u *UPP) ActivePopups() int { return len(u.popups) }

// PopupPathsAvoid reports that no live popup's circuit path crosses link
// l in either direction. The reconfiguration engine polls it before
// cutting a fenced link: popup circuits bypass switch allocation
// (SendDirect claims, not VC grants), so the router-level PortQuiet
// check alone cannot prove the link idle.
func (u *UPP) PopupPathsAvoid(l *topology.Link) bool {
	for _, p := range u.popups {
		for i := range p.path {
			h := &p.path[i]
			if (h.node == l.A && h.outPort == l.APort) || (h.node == l.B && h.outPort == l.BPort) {
				return false
			}
		}
	}
	return true
}

// linkLat returns the configured link latency.
func (u *UPP) linkLat() sim.Cycle { return sim.Cycle(u.net.Cfg.Router.LinkLatency) }

// StartOfCycle implements network.Scheme: popup flits move first (highest
// crossbar priority, Sec. V-C1), then protocol signals, then pending
// req/stop transmissions from interposer routers.
func (u *UPP) StartOfCycle(cycle sim.Cycle) {
	if len(u.popups) == 0 {
		// No live popup means no signal, latch or ack can be in flight
		// anywhere (they all belong to a popup that is only deleted after
		// its path is swept clean), so the signal movers below would walk
		// every node and find nothing.
		return
	}
	for _, p := range u.sortedPopups() {
		if p.stage == stageDrain {
			u.drain(p, cycle)
		}
	}
	u.moveSignals(cycle)
	u.sendOriginSignals(cycle)
}

// EndOfCycle implements network.Scheme: timeout counters, upward-packet
// selection, false-positive cancellation and (when enabled) the
// signal-retry watchdog.
func (u *UPP) EndOfCycle(cycle sim.Cycle) {
	u.detect(cycle)
	u.checkProceeded(cycle)
	if u.cfg.SignalTimeout > 0 {
		u.checkSignalTimeouts(cycle)
	}
}

// sortedPopups returns active popups in deterministic (id) order. The
// returned slice is the scheme's scratch buffer — valid until the next
// call, which every caller satisfies (they iterate it immediately).
func (u *UPP) sortedPopups() []*popup {
	if len(u.popups) == 0 {
		return nil
	}
	prev := len(u.sorted)
	ps := u.sorted[:0]
	for _, p := range u.popups {
		ps = append(ps, p)
	}
	// Zero any vacated tail so the scratch buffer does not retain
	// retired popups (and through them, packet pointers).
	for i := len(ps); i < prev; i++ {
		u.sorted[i] = nil
	}
	// Insertion sort: the set is tiny.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j-1].id > ps[j].id; j-- {
			ps[j-1], ps[j] = ps[j], ps[j-1]
		}
	}
	u.sorted = ps
	return ps
}

// --- Detection (Sec. V-A) ---------------------------------------------------

// detect runs the per-interposer-router timeout counters. Under the
// active-set kernels it walks the network's awake-router list (ascending
// NodeIDs) filtered down to interposer routers instead of the full
// topo.Interposer slice: a retired router has no buffered flits — so no
// stalled upward packet — and OnRouterIdle zeroed its counters, which is
// exactly the set the RouterActive skip used to drop. Both walks visit
// the same routers in the same (ascending-ID) order, so token claims and
// popup creation stay bit-identical; the awake walk just makes detection
// O(awake) instead of O(interposer) per cycle on mostly-idle large
// systems. The naive kernel keeps no awake list and scans everything.
func (u *UPP) detect(cycle sim.Cycle) {
	topo := u.net.Topo
	if awake := u.net.AwakeRouterIDs(); awake != nil {
		for _, id32 := range awake {
			id := topology.NodeID(id32)
			if topo.Node(id).Chiplet != topology.InterposerChiplet {
				continue
			}
			u.detectAt(id, cycle)
		}
		return
	}
	for _, id := range topo.Interposer {
		if !u.net.RouterActive(id) {
			// Idle under the active-set kernel: no buffered flit, so no
			// stalled upward packet; OnRouterIdle zeroed the counters when
			// the router retired.
			continue
		}
		u.detectAt(id, cycle)
	}
}

// detectAt advances the timeout counters of one interposer router — the
// body of the detection walk, shared by the awake-list and full scans.
func (u *UPP) detectAt(id topology.NodeID, cycle sim.Cycle) {
	topo := u.net.Topo
	node := topo.Node(id)
	if node.PortTo(topology.Up) == topology.InvalidPort {
		return // no vertical link: never hosts an upward packet
	}
	r := u.net.Router(id)
	ns := &u.nodes[id]
	upMask := r.UpSentMask(cycle)
	for v := 0; v < message.NumVNets; v++ {
		vnet := message.VNet(v)
		if ns.entry[v] != nil {
			// One popup per VNet per interposer router (Sec. V-A);
			// counting pauses while one is in flight.
			continue
		}
		if upMask&(1<<uint(v)) != 0 {
			ns.counters[v] = 0
			continue
		}
		port, vcIdx, f := u.findStalledUpward(r, vnet, ns.rr[v], cycle)
		if port == topology.InvalidPort && u.net.TransitionActive() {
			// During a routing-epoch transition, old- and new-epoch
			// traffic coexist and an incompatible pair can form a
			// dependency cycle entirely within the interposer mesh — a
			// shape the steady-state detector never sees, because
			// up*/down* keeps each layer acyclic on its own and any
			// deadlock must then involve an upward-stalled packet.
			// Widen detection to mesh-stalled packets while the
			// transition lasts (DESIGN.md §15): the popup mechanics are
			// path-agnostic, so recovery works unchanged.
			port, vcIdx, f = u.findStalledMesh(r, vnet, ns.rr[v], cycle)
		}
		if port == topology.InvalidPort {
			ns.counters[v] = 0
			continue
		}
		ns.counters[v]++
		if int(ns.counters[v]) < u.cfg.Threshold {
			continue
		}
		// Deadlock declared: serialize with the per-(chiplet, VNet)
		// popup token before selecting.
		chiplet := topo.Node(f.Pkt.Dst).Chiplet
		if u.tokens[chiplet][v] != 0 {
			continue // token busy; retry next cycle
		}
		u.startPopup(r, ns, vnet, port, vcIdx, f, cycle)
	}
}

// findStalledUpward scans r's input VCs round-robin for a stalled packet
// whose next hop is an Up port, returning its location and front flit.
func (u *UPP) findStalledUpward(r router.Microarch, vnet message.VNet, rrStart int, cycle sim.Cycle) (topology.PortID, int, message.Flit) {
	nports := r.NumPorts()
	nvc := r.Config().NumVCs()
	total := nports * nvc
	for k := 1; k <= total; k++ {
		idx := (rrStart + k) % total
		port := topology.PortID(idx / nvc)
		vcIdx := idx % nvc
		if r.Config().VCVNet(vcIdx) != vnet {
			continue
		}
		vc := r.VCAt(port, vcIdx)
		if vc.Hold || vc.State == router.VCIdle {
			continue
		}
		if vc.OutPort == topology.InvalidPort || r.TopoNode().Ports[vc.OutPort].Dir != topology.Up {
			continue
		}
		f, ok := vc.FrontReady(cycle)
		if !ok || f.Pkt.Popup {
			continue
		}
		return port, vcIdx, f
	}
	return topology.InvalidPort, -1, message.Flit{}
}

// findStalledMesh is findStalledUpward's transition-time companion: it
// scans for a stalled packet whose next hop is an intra-layer mesh port.
// Only consulted while a routing-epoch transition is active.
func (u *UPP) findStalledMesh(r router.Microarch, vnet message.VNet, rrStart int, cycle sim.Cycle) (topology.PortID, int, message.Flit) {
	nports := r.NumPorts()
	nvc := r.Config().NumVCs()
	total := nports * nvc
	for k := 1; k <= total; k++ {
		idx := (rrStart + k) % total
		port := topology.PortID(idx / nvc)
		vcIdx := idx % nvc
		if r.Config().VCVNet(vcIdx) != vnet {
			continue
		}
		vc := r.VCAt(port, vcIdx)
		if vc.Hold || vc.State == router.VCIdle {
			continue
		}
		if vc.OutPort == topology.InvalidPort || vc.OutPort == topology.LocalPort {
			continue
		}
		switch r.TopoNode().Ports[vc.OutPort].Dir {
		case topology.East, topology.West, topology.North, topology.South:
		default:
			continue
		}
		f, ok := vc.FrontReady(cycle)
		if !ok || f.Pkt.Popup {
			continue
		}
		return port, vcIdx, f
	}
	return topology.InvalidPort, -1, message.Flit{}
}

// startPopup creates a popup instance for the selected upward packet and
// queues its UPP_req. It may decline (returning without creating one)
// when the packet's route is momentarily unsettled — the counter stays
// above threshold and selection retries next cycle.
func (u *UPP) startPopup(r router.Microarch, ns *nodeState, vnet message.VNet, port topology.PortID, vcIdx int, f message.Flit, cycle sim.Cycle) {
	path, settled, err := u.chasePath(r, port, vcIdx, f.Pkt)
	if err != nil {
		panic(fmt.Sprintf("upp: path for popup of pkt %d: %v", f.Pkt.ID, err))
	}
	if !settled {
		return
	}
	// A live popup installs one circuit entry per (node, VNet): a second
	// same-VNet popup crossing any of its nodes would corrupt it. Normal
	// upward popups never overlap (the per-(chiplet, VNet) token covers
	// the chiplet hops and the origin is per-router), but transition-time
	// mesh popups traverse interposer mesh hops that can cross another
	// popup's path. Decline and retry next cycle — the counter stays
	// above threshold, and the blocking popup completes in bounded time.
	for _, q := range u.popups {
		if q.vnet != vnet {
			continue
		}
		for i := range q.path {
			for j := range path {
				if q.path[i].node == path[j].node {
					return
				}
			}
		}
	}
	u.nextID++
	p := &popup{
		id:         u.nextID,
		vnet:       vnet,
		origin:     r.NodeID(),
		pkt:        f.Pkt,
		pktGen:     f.Pkt.Generation(),
		dst:        f.Pkt.Dst,
		dstChiplet: u.net.Topo.Node(f.Pkt.Dst).Chiplet,
		pktID:      f.Pkt.ID,
		port:       port,
		vcIdx:      vcIdx,
		frontSeq:   f.Seq,
		path:       path,
		stage:      stageReq,
	}
	ns.entry[vnet] = p
	ns.rr[vnet] = int(port)*r.Config().NumVCs() + vcIdx
	chiplet := u.net.Topo.Node(f.Pkt.Dst).Chiplet
	u.tokens[chiplet][vnet] = p.id
	u.popups[p.id] = p
	u.net.Stats.UpwardPackets++
	u.net.Trace("upp", r.NodeID(), "popup %d: selected upward pkt%d (%s) toward %d",
		p.id, f.Pkt.ID, vnet, f.Pkt.Dst)
}

// chasePath builds the popup path the way the paper's UPP_req does
// (Sec. V-B3): it follows the upward packet's own VC allocation chain —
// the route its transmitted flits actually took, whatever the local
// routing algorithm chose — until the head flit's position, then extends
// with route computation for the untransmitted remainder. The UPP_req,
// the reversed UPP_ack and the upward flits all use this path.
//
// settled is false when the chain is momentarily indeterminate (a head in
// flight or not yet route-computed); the caller retries next cycle — a
// genuinely deadlocked packet settles and stays settled.
func (u *UPP) chasePath(r router.Microarch, port topology.PortID, vcIdx int, pkt *message.Packet) (path []hop, settled bool, err error) {
	topo := u.net.Topo
	tracked := r.VCAt(port, vcIdx)
	path = []hop{{node: r.NodeID(), inPort: topology.InvalidPort, outPort: tracked.OutPort}}
	cur, curIn := r.Neighbor(tracked.OutPort)
	curVC := tracked.OutVC // -1 when the packet is Waiting (nothing transmitted)

	// Phase 1: follow the allocation chain through the chiplet.
	for curVC >= 0 {
		if len(path) > topo.NumNodes() {
			return nil, false, fmt.Errorf("allocation chain loop from %d to %d", r.NodeID(), pkt.Dst)
		}
		rr := u.net.Router(cur)
		vc := rr.VCAt(curIn, int(curVC))
		if vc.OutPort == topology.InvalidPort {
			// The head sits here un-routed (or is still in flight): the
			// chain is not settled yet.
			return nil, false, nil
		}
		if f, _, ok := vc.Front(); ok && f.Pkt != pkt {
			// The VC has moved on to another packet mid-chase — the
			// tracked packet advanced; treat as unsettled (the proceeded
			// check will cancel if it fully moved).
			return nil, false, nil
		}
		path = append(path, hop{node: cur, inPort: curIn, outPort: vc.OutPort})
		if vc.OutPort == topology.LocalPort {
			if cur != pkt.Dst {
				return nil, false, fmt.Errorf("allocation chain ejects at %d, dst %d", cur, pkt.Dst)
			}
			return path, true, nil
		}
		next, nextIn := rr.Neighbor(vc.OutPort)
		nextVC := vc.OutVC
		cur, curIn, curVC = next, nextIn, nextVC
	}

	// Phase 2: the remainder was never transmitted; extend with route
	// computation (a pseudo-packet keeps per-packet routing state, e.g.
	// up*/down* phase or odd-even entry column, off the real packet).
	pseudo := &message.Packet{
		ID:                pkt.ID,
		Src:               pkt.Src,
		Dst:               pkt.Dst,
		VNet:              pkt.VNet,
		IngressInterposer: pkt.IngressInterposer,
		EgressBoundary:    pkt.EgressBoundary,
		RouteLayer:        int16(topology.InterposerChiplet),
		LayerEntryX:       int16(topo.Node(r.NodeID()).X),
		// Pin the pseudo packet to the CURRENT routing epoch regardless
		// of the real packet's stamp: during a reconfiguration the
		// untransmitted remainder of the chase must follow live tables
		// (the popup circuit drains the path directly, so the choice is
		// free), and an old-epoch copy would otherwise trip the lazy
		// migration accounting in Route on a packet that isn't real.
		Epoch: u.net.RouteEpoch(),
	}
	for i := 0; ; i++ {
		if i > topo.NumNodes() {
			return nil, false, fmt.Errorf("routing loop from %d to %d", r.NodeID(), pkt.Dst)
		}
		out, rerr := u.net.Route(cur, curIn, pseudo)
		if rerr != nil {
			return nil, false, rerr
		}
		path = append(path, hop{node: cur, inPort: curIn, outPort: out})
		if out == topology.LocalPort {
			if cur != pkt.Dst {
				return nil, false, fmt.Errorf("route to %d ejects early at %d", pkt.Dst, cur)
			}
			return path, true, nil
		}
		node := topo.Node(cur)
		cur, curIn = node.Ports[out].Neighbor, node.Ports[out].NeighborPort
	}
}

// checkProceeded cancels popups whose packet moved on normally before the
// ack returned — the false-positive path (Sec. V-B1, third rule).
func (u *UPP) checkProceeded(cycle sim.Cycle) {
	for _, p := range u.sortedPopups() {
		if p.stage != stageReq || p.cancelled {
			continue
		}
		r := u.net.Router(p.origin)
		vc := r.VCAt(p.port, p.vcIdx)
		f, _, ok := vc.Front()
		if ok && p.holds(f.Pkt) && f.Seq == p.frontSeq {
			continue // still stalled
		}
		p.cancelled = true
		u.net.Stats.PopupsCancelled++
		u.net.Trace("upp", p.origin, "popup %d: pkt%d proceeded normally; cancelling", p.id, p.pktID)
		if !p.reqSent {
			// The req never left; nothing to clean up remotely.
			u.finishCancelled(p)
			continue
		}
		p.stopPending = true
		if u.cfg.SignalTimeout > 0 {
			p.retries = 0 // fresh retry budget for the stop phase
		}
	}
}

// armDeadline (re)arms the signal watchdog for p's current phase with
// exponential backoff on the retry count. No-op with the watchdog off.
func (u *UPP) armDeadline(p *popup, cycle sim.Cycle) {
	if u.cfg.SignalTimeout <= 0 {
		return
	}
	shift := p.retries
	if shift > 6 {
		shift = 6
	}
	p.deadline = cycle + sim.Cycle(u.cfg.SignalTimeout)<<shift
}

// checkSignalTimeouts is the per-popup signal watchdog (Config.
// SignalTimeout > 0): re-send a lost req, re-arm a lost stop, and after
// MaxSignalRetries force-retire the popup via abortPopup. Every decision
// derives from origin-local knowledge only — the origin cannot tell a
// lost signal from a slow one, so a retry may race its predecessor; the
// receiver side (signalArrive, deliverReqStop, launchAck, ackAtOrigin)
// deduplicates same-popup signals instead of panicking.
func (u *UPP) checkSignalTimeouts(cycle sim.Cycle) {
	if len(u.popups) == 0 {
		return
	}
	maxR := uint8(u.cfg.MaxSignalRetries)
	for _, p := range u.sortedPopups() {
		if p.deadline == 0 || cycle < p.deadline || p.stage == stageDrain {
			continue
		}
		switch {
		case !p.cancelled:
			// The req — or the ack it should produce — went missing.
			if p.retries >= maxR {
				u.abortPopup(p)
				continue
			}
			p.retries++
			p.resendReq = true
			u.armDeadline(p, cycle)
			u.net.Stats.SignalRetries++
			u.net.Trace("upp", p.origin, "popup %d: signal timeout; re-sending UPP_req (retry %d)", p.id, p.retries)
		case !p.stopDelivered:
			// Cancelled, and the stop went missing on its way down.
			if p.retries >= maxR {
				u.abortPopup(p)
				continue
			}
			p.retries++
			p.stopPending = true
			u.armDeadline(p, cycle)
			u.net.Stats.SignalRetries++
			u.net.Trace("upp", p.origin, "popup %d: signal timeout; re-arming UPP_stop (retry %d)", p.id, p.retries)
		case p.ackLaunched && !p.ackDone:
			// Stop delivered but the to-be-discarded ack never came home:
			// it was lost on the wire; nothing is left to wait for.
			u.abortPopup(p)
		default:
			p.deadline = 0
		}
	}
}

// abortPopup force-retires a popup whose signal retries are exhausted:
// sweep every latch, buffered ack and circuit entry it owns along its
// path, recycle any reservation state at the destination NI, release the
// origin entry and the token, and delete it. Signals of it still in
// flight find the popup gone on arrival and are discarded (counted as
// Stats.LateSignals). The packet itself is untouched — still stalled, it
// re-trips detection after Threshold cycles, so recovery degrades to a
// bounded retry loop instead of a wedge or a panic. Only reachable in
// stageReq (the drain never arms a deadline), so no VC holds or popup
// flit latches exist yet.
func (u *UPP) abortPopup(p *popup) {
	for i := 1; i < len(p.path); i++ {
		h := &p.path[i]
		ns := &u.nodes[h.node]
		if ns.reqStop.valid && ns.reqStop.popupID == p.id {
			ns.reqStop.valid = false
		}
		for j := 0; j < len(ns.acks); {
			if ns.acks[j].popupID == p.id {
				last := len(ns.acks) - 1
				copy(ns.acks[j:], ns.acks[j+1:])
				ns.acks[last] = ackEntry{}
				ns.acks = ns.acks[:last]
			} else {
				j++
			}
		}
		ce := &ns.circuit[p.vnet]
		if ce.active && ce.popupID == p.id {
			*ce = circuitEntry{vcIdx: -1}
		}
	}
	if p.resRequested {
		u.net.NI(p.dst).CancelReservation(p.vnet, p.id)
		p.resRequested = false
	}
	p.cancelled = true
	u.releaseOrigin(p)
	delete(u.popups, p.id)
	u.net.Stats.PopupsAborted++
	u.net.Trace("upp", p.origin, "popup %d: retries exhausted; aborted (pkt%d falls back to re-detection)", p.id, p.pktID)
}

// finishCancelled releases everything held by a cancelled popup once no
// signal of it remains in flight. The token (and hence the right of a new
// popup to install circuits on this path) is only released after the stop
// has swept the path clean.
func (u *UPP) finishCancelled(p *popup) {
	if p.reqSent && !p.stopDelivered {
		return // the stop still has to clean circuits and the reservation
	}
	u.releaseOrigin(p)
	if p.ackLaunched && !p.ackDone {
		return // wait for the ack to come home and be discarded
	}
	delete(u.popups, p.id)
}

// releaseOrigin frees the origin entry and the chiplet/VNet token. It
// uses the snapshotted destination chiplet: for a cancelled popup the
// packet may already be consumed and recycled by the time the stop/ack
// cleanup reaches here.
func (u *UPP) releaseOrigin(p *popup) {
	ns := &u.nodes[p.origin]
	if ns.entry[p.vnet] == p {
		ns.entry[p.vnet] = nil
		ns.counters[p.vnet] = 0
	}
	if u.tokens[p.dstChiplet][p.vnet] == p.id {
		u.tokens[p.dstChiplet][p.vnet] = 0
	}
}

// OnRouterIdle implements network.Scheme: when the active-set kernel
// retires a router, its timeout counters reset for VNets with no popup in
// flight — exactly what the naive kernel's per-cycle detect would do (an
// empty router has no stalled upward packet, so findStalledUpward misses
// and the counter zeroes). Counters of VNets with an active popup are left
// alone: detection pauses for those in both kernels.
func (u *UPP) OnRouterIdle(node topology.NodeID, _ sim.Cycle) {
	ns := &u.nodes[node]
	for v := range ns.counters {
		if ns.entry[v] == nil {
			ns.counters[v] = 0
		}
	}
}

// Inert implements network.Scheme. With no live popup there is no signal,
// latch, ack, drain FSM, armed retry deadline or held token anywhere
// (every one of those belongs to a popup, which is only deleted after its
// path is swept clean), StartOfCycle short-circuits, and the detection
// counters advance only at awake routers — which the kernel's idle-skip
// precondition already requires to be none (OnRouterIdle zeroed the
// counters of every retired router). EndOfCycle is therefore a provable
// no-op until some event wakes a router.
func (u *UPP) Inert() bool { return len(u.popups) == 0 }

// Diagnostic implements network.Scheme: the deadlock watchdog's view of
// live popup FSMs and held tokens (embedded in Network.Drain's
// StallDiagnostic).
func (u *UPP) Diagnostic() string {
	if len(u.popups) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range u.sortedPopups() {
		stage := "req"
		if p.stage == stageDrain {
			stage = "drain"
		}
		fmt.Fprintf(&b, "popup %d: pkt%d %s origin=%d dst=%d stage=%s reqSent=%v cancelled=%v stopPending=%v stopDelivered=%v ackLaunched=%v ackDone=%v retries=%d deadline=%d\n",
			p.id, p.pktID, p.vnet, p.origin, p.dst, stage,
			p.reqSent, p.cancelled, p.stopPending, p.stopDelivered, p.ackLaunched, p.ackDone,
			p.retries, p.deadline)
	}
	for ci := range u.tokens {
		for v := range u.tokens[ci] {
			if id := u.tokens[ci][v]; id != 0 {
				fmt.Fprintf(&b, "token chiplet=%d vnet=%s held by popup %d\n", ci, message.VNet(v), id)
			}
		}
	}
	return b.String()
}

// Scheduled-call kinds: every deferred protocol action UPP used to
// schedule as a closure is now a serializable network.SchemeCall, so a
// snapshot can capture signals and popup flits mid-flight (DESIGN.md
// §14). Delivery order and timing are identical to the closure form —
// same wheel slot, same append order.
const (
	// uppCallSignal lands a req/stop at path hop Hop of popup A
	// (B carries the sigKind) on node Node.
	uppCallSignal uint8 = iota + 1
	// uppCallAckOrigin lands popup A's UPP_ack at its origin router.
	uppCallAckOrigin
	// uppCallAckRelay lands popup A's ack in node Node's ack buffer at
	// reverse hop Hop.
	uppCallAckRelay
	// uppCallLatch fills node Node's per-VNet (B) popup latch with Flit.
	uppCallLatch
)

// OnScheduledCall implements network.Scheme: the dispatch half of the
// closure-free deferred actions above.
func (u *UPP) OnScheduledCall(c network.SchemeCall, cycle sim.Cycle) {
	switch c.Kind {
	case uppCallSignal:
		u.signalArrive(c.A, sigKind(c.B), int(c.Hop), c.Node, cycle)
	case uppCallAckOrigin:
		u.ackAtOrigin(c.A, cycle)
	case uppCallAckRelay:
		u.ackRelayArrive(c.Node, c.A, int(c.Hop), cycle)
	case uppCallLatch:
		l := &u.nodes[c.Node].popupLatch[c.B]
		l.reserved = false
		l.valid = true
		l.flit = c.Flit
		l.ready = cycle // circuit switching: movable the cycle it lands
	default:
		panic(fmt.Sprintf("upp: unknown scheduled call kind %d", c.Kind))
	}
}

// makeGrant builds the reservation-grant callback for popup id at ni.
// Factored out of deliverReqStop so Restore can rebind the callback of
// a deserialized reservation waiter to an identical closure.
func (u *UPP) makeGrant(ni *network.NI, id uint64, vnet message.VNet) func(grantCycle sim.Cycle) {
	return func(grantCycle sim.Cycle) {
		u.net.Stats.ReservationsGranted++
		pp := u.popups[id]
		if pp == nil {
			// Granted for a force-retired popup (abortPopup removes its
			// waiter, so this should be unreachable): recycle the entry.
			ni.CancelReservation(vnet, id)
			u.net.Stats.LateSignals++
			return
		}
		pp.ackLaunched = true
		u.launchAck(pp, grantCycle)
	}
}

// OnPacketEjected implements network.Scheme: a fully ejected popup packet
// completes its recovery. Popup packets never eject through the normal
// router datapath (pickInputVC skips popup flits in the destination
// chiplet; popup ejection is EjectDirect from StartOfCycle), so under
// the parallel kernel this hook only ever fires from the coordinator —
// either directly or via the commit-phase replay of a deferred
// non-popup ejection, which returns immediately here.
func (u *UPP) OnPacketEjected(_ *network.NI, pkt *message.Packet, cycle sim.Cycle) {
	if !pkt.Popup {
		return
	}
	p := u.popups[pkt.PopupID]
	if p == nil || !p.holds(pkt) {
		return
	}
	u.completePopup(p, cycle)
}

// completePopup tears down circuit state, releases stranded VCs, frees the
// token and retires the popup.
func (u *UPP) completePopup(p *popup, cycle sim.Cycle) {
	for i := 1; i < len(p.path); i++ {
		h := &p.path[i]
		ns := &u.nodes[h.node]
		ce := &ns.circuit[p.vnet]
		if ce.active && ce.popupID == p.id {
			if ce.vcIdx >= 0 && !ce.released {
				// The packet diverted past this VC (its tail traveled by
				// latch); free the upstream allocation it still holds.
				r := u.net.Router(h.node)
				if vc := r.VCAt(h.inPort, int(ce.vcIdx)); vc.Empty() {
					r.ForceReleaseVC(h.inPort, int(ce.vcIdx), cycle)
				}
			}
			*ce = circuitEntry{vcIdx: -1}
		}
	}
	// completePopup runs at tail ejection, before the NI's consume step
	// releases the packet — livePkt asserts that ordering.
	p.livePkt().Popup = false
	u.releaseOrigin(p)
	delete(u.popups, p.id)
	u.net.Stats.PopupsCompleted++
	u.net.Trace("upp", p.dst, "popup %d: pkt%d fully ejected; recovery complete", p.id, p.pktID)
}
