package core_test

import (
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestVCTFlowControl: UPP must work identically under virtual cut-through
// flow control (Table I claims flow-control modularity: the framework
// supports both wormhole and VCT).
func TestVCTFlowControl(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCT = true
	cfg.Router.BufferDepth = 5 // VCT must hold the largest packet
	u := core.New(core.DefaultConfig())
	n, err := network.New(topo, cfg, u)
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 13)
	g.Run(15000)
	g.SetRate(0)
	if err := n.Drain(400000, 50000); err != nil {
		t.Fatalf("VCT drain: %v", err)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if err := u.UPPStateOK(); err != nil {
		t.Fatal(err)
	}
	t.Logf("VCT: delivered %d packets, %d popups", n.Stats.ConsumedPackets, n.Stats.PopupsCompleted)
}

// TestVCTConfigValidation: VCT with shallow buffers is rejected.
func TestVCTConfigValidation(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCT = true // depth still 4 < 5
	if _, err := network.New(topo, cfg, network.None{}); err == nil {
		t.Fatal("VCT with depth 4 accepted")
	}
}

// TestVCTNoStraddle: under VCT a packet's flits never straddle two
// routers' buffers — once the head moves, the whole packet can follow
// without waiting for downstream space. Verified indirectly: a VCT run
// completes with strictly fewer mid-packet stalls (credit waits) than the
// same wormhole run at equal buffering, observable as lower or equal
// latency.
func TestVCTNoStraddle(t *testing.T) {
	run := func(vct bool) float64 {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Router.BufferDepth = 5
		cfg.Router.VCT = vct
		n := network.MustNew(topo, cfg, core.New(core.DefaultConfig()))
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.04, 21)
		g.Run(4000)
		n.ResetMeasurement()
		g.Run(16000)
		return n.AvgNetLatency()
	}
	wh, vct := run(false), run(true)
	// VCT cannot beat wormhole at low load (same pipeline) but must be in
	// the same ballpark — a gross divergence means broken flow control.
	if vct > wh*1.25 || vct < wh*0.75 {
		t.Fatalf("VCT latency %.1f vs wormhole %.1f — implausible divergence", vct, wh)
	}
}
