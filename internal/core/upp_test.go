package core_test

import (
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func uppNet(t *testing.T, vcs int, seed uint64) (*network.Network, *core.UPP) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = vcs
	cfg.Seed = seed
	u := core.New(core.DefaultConfig())
	n, err := network.New(topo, cfg, u)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n, u
}

// TestDeadlockFormsWithoutRecovery validates the paper's premise: with
// fully adaptive (static-binding) routing and no deadlock handling,
// integration-induced deadlocks form under load and the network wedges.
func TestDeadlockFormsWithoutRecovery(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 42)
	g.Run(30000)
	g.SetRate(0)
	if err := n.Drain(50000, 3000); err == nil {
		t.Fatal("expected a deadlock without recovery, but the network drained")
	}
}

// TestUPPRecoversFromDeadlock is the headline behaviour: the identical
// workload that wedges the recovery-free network drains completely under
// UPP, via detected upward packets.
func TestUPPRecoversFromDeadlock(t *testing.T) {
	n, u := uppNet(t, 1, 1)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 42)
	g.Run(30000)
	g.SetRate(0)
	if err := n.Drain(400000, 50000); err != nil {
		t.Fatalf("UPP failed to recover: %v (popups active %d, stats %+v)", err, u.ActivePopups(), n.Stats)
	}
	if n.Stats.UpwardPackets == 0 {
		t.Fatal("drained without any upward packet detection — deadlocks never formed?")
	}
	if u.ActivePopups() != 0 {
		t.Fatalf("%d popups still active after quiesce", u.ActivePopups())
	}
	if err := u.UPPStateOK(); err != nil {
		t.Fatal(err)
	}
	t.Logf("upward=%d started=%d cancelled=%d completed=%d signals=%d",
		n.Stats.UpwardPackets, n.Stats.PopupsStarted, n.Stats.PopupsCancelled,
		n.Stats.PopupsCompleted, n.Stats.SignalsSent)
}

// TestUPPHighLoadManySeeds stresses recovery across seeds and VC counts.
func TestUPPHighLoadManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, vcs := range []int{1, 4} {
		for seed := uint64(1); seed <= 3; seed++ {
			n, u := uppNet(t, vcs, seed)
			g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.15, seed*977)
			g.Run(12000)
			g.SetRate(0)
			if err := n.Drain(400000, 50000); err != nil {
				t.Fatalf("vcs=%d seed=%d: %v", vcs, seed, err)
			}
			if u.ActivePopups() != 0 {
				t.Fatalf("vcs=%d seed=%d: %d popups leaked", vcs, seed, u.ActivePopups())
			}
			if err := u.UPPStateOK(); err != nil {
				t.Fatalf("vcs=%d seed=%d: %v", vcs, seed, err)
			}
		}
	}
}

// TestUPPTransparentAtLowLoad: when the network is free of deadlocks, UPP
// must not perturb packets (recovery frameworks cost nothing when idle).
func TestUPPTransparentAtLowLoad(t *testing.T) {
	n, u := uppNet(t, 4, 9)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.02, 5)
	g.Run(5000)
	g.SetRate(0)
	if err := n.Drain(20000, 3000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n.Stats.PopupsStarted != 0 && n.Stats.PopupsCompleted != n.Stats.PopupsStarted {
		t.Fatalf("popup bookkeeping mismatch: %+v", n.Stats)
	}
	_ = u
}
