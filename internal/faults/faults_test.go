package faults

import (
	"strings"
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// TestSignalFateDeterminism: fates are pure functions of the arguments —
// same plan, same (kind, popup, hop, cycle) → same verdict, in any query
// order, from independently-constructed injectors.
func TestSignalFateDeterminism(t *testing.T) {
	topo := testTopo(t)
	plan := Generate(topo, 42, GenConfig{DropReq: 0.3, DropAck: 0.2, DropStop: 0.25, DelayProb: 0.2, DelayMax: 6})
	mk := func() *Injector {
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		in, err := Attach(n, plan)
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
		return in
	}
	a, b := mk(), mk()
	kinds := []network.SignalKind{network.SignalReq, network.SignalAck, network.SignalStop}
	var dropped, delayed int
	for popup := uint64(1); popup <= 50; popup++ {
		for hop := 1; hop <= 4; hop++ {
			for cyc := sim.Cycle(0); cyc < 40; cyc += 7 {
				for _, k := range kinds {
					fa := a.SignalFate(k, popup, hop, cyc)
					// Query b in a scrambled arg order elsewhere first to
					// prove statelessness, then with the same args.
					b.SignalFate(kinds[(int(popup)+hop)%3], popup*31, hop+1, cyc+13)
					fb := b.SignalFate(k, popup, hop, cyc)
					if fa != fb {
						t.Fatalf("fate mismatch for (%d,%d,%d,%d): %+v vs %+v", k, popup, hop, cyc, fa, fb)
					}
					if fa.Drop {
						dropped++
					}
					if fa.Delay > 0 {
						delayed++
					}
				}
			}
		}
	}
	if dropped == 0 || delayed == 0 {
		t.Fatalf("want both drops and delays at these probabilities, got dropped=%d delayed=%d", dropped, delayed)
	}
}

// TestGenerateReproducibleAndMeshOnly: same seed → identical plan; flaps
// never target vertical links; windows on one link never overlap.
func TestGenerateReproducibleAndMeshOnly(t *testing.T) {
	topo := testTopo(t)
	g := GenConfig{Flaps: 8, Stalls: 4, DropReq: 0.1}
	p1 := Generate(topo, 99, g)
	p2 := Generate(topo, 99, g)
	if p1.String() != p2.String() || len(p1.Flaps) != len(p2.Flaps) {
		t.Fatalf("same seed produced different plans:\n%s\n%s", p1, p2)
	}
	for i := range p1.Flaps {
		if p1.Flaps[i] != p2.Flaps[i] {
			t.Fatalf("flap %d differs: %+v vs %+v", i, p1.Flaps[i], p2.Flaps[i])
		}
		l := topo.Links[p1.Flaps[i].Link]
		if l.Vertical {
			t.Fatalf("flap %d targets vertical link %d", i, l.ID)
		}
	}
	p3 := Generate(topo, 100, g)
	if p1.String() == p3.String() {
		t.Fatalf("different seeds produced identical plans: %s", p1)
	}
	// Overlap check per link.
	type win struct{ s, e sim.Cycle }
	byLink := map[int][]win{}
	for _, fl := range p1.Flaps {
		for _, w := range byLink[fl.Link] {
			if fl.Start < w.e && w.s < fl.End {
				t.Fatalf("overlapping flap windows on link %d: [%d,%d) and [%d,%d)", fl.Link, w.s, w.e, fl.Start, fl.End)
			}
		}
		byLink[fl.Link] = append(byLink[fl.Link], win{fl.Start, fl.End})
	}
}

// TestParseSpec: round-trips the documented keys and rejects junk.
func TestParseSpec(t *testing.T) {
	topo := testTopo(t)
	plan, err := ParseSpec(topo, "seed=7,flaps=3,flapdur=200,stalls=2,drop=0.2,delayprob=0.1,delaymax=5,start=50")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if plan.Seed != 7 || len(plan.Flaps) != 3 || len(plan.Stalls) != 2 {
		t.Fatalf("unexpected plan: %s", plan)
	}
	for _, k := range []network.SignalKind{network.SignalReq, network.SignalAck, network.SignalStop} {
		if plan.Drop[k] != 0.2 {
			t.Fatalf("drop shorthand did not apply to kind %d: %v", k, plan.Drop)
		}
	}
	if plan.DelayProb != 0.1 || plan.DelayMax != 5 {
		t.Fatalf("delay knobs lost: %s", plan)
	}
	if plan.Flaps[0].Start < 50 {
		t.Fatalf("start=50 ignored: %+v", plan.Flaps[0])
	}
	// dropreq alone must not touch the other kinds.
	p2, err := ParseSpec(topo, "dropreq=0.4")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if p2.Drop[network.SignalReq] != 0.4 || p2.Drop[network.SignalAck] != 0 || p2.Drop[network.SignalStop] != 0 {
		t.Fatalf("dropreq leaked: %v", p2.Drop)
	}
	for _, bad := range []string{"bogus=1", "flaps", "flaps=-1", "drop=1.5", "drop=x"} {
		if _, err := ParseSpec(topo, bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}

// TestAttachValidation: vertical links, out-of-range links/nodes and
// empty windows are rejected before the injector is installed.
func TestAttachValidation(t *testing.T) {
	topo := testTopo(t)
	var vertical int = -1
	for _, l := range topo.Links {
		if l.Vertical {
			vertical = l.ID
			break
		}
	}
	if vertical < 0 {
		t.Fatal("baseline topology has no vertical link?")
	}
	cases := []Plan{
		{Flaps: []LinkFlap{{Link: vertical, Start: 0, End: 10}}},
		{Flaps: []LinkFlap{{Link: len(topo.Links), Start: 0, End: 10}}},
		{Flaps: []LinkFlap{{Link: 0, Start: 10, End: 10}}},
		{Stalls: []EjectStall{{Node: topology.NodeID(topo.NumNodes()), Start: 0, End: 10}}},
		{Stalls: []EjectStall{{Node: 0, Start: 5, End: 5}}},
	}
	for i, plan := range cases {
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		if _, err := Attach(n, plan); err == nil {
			t.Fatalf("case %d: Attach should reject %+v", i, plan)
		}
	}
}

// TestFlapWindowsApplied: BeginCycle raises and clears Link.Down exactly
// at window edges and counts each outage once.
func TestFlapWindowsApplied(t *testing.T) {
	topo := testTopo(t)
	var mesh *topology.Link
	for _, l := range topo.Links {
		if !l.Vertical {
			mesh = l
			break
		}
	}
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	plan := Plan{Flaps: []LinkFlap{{Link: mesh.ID, Start: 10, End: 20}, {Link: mesh.ID, Start: 30, End: 35}}}
	in, err := Attach(n, plan)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for c := sim.Cycle(0); c < 50; c++ {
		in.BeginCycle(c)
		want := (c >= 10 && c < 20) || (c >= 30 && c < 35)
		if mesh.Down != want {
			t.Fatalf("cycle %d: Down=%v want %v", c, mesh.Down, want)
		}
	}
	if n.Stats.LinkFlaps != 2 {
		t.Fatalf("LinkFlaps=%d want 2", n.Stats.LinkFlaps)
	}
}

// TestParseSpecRejectsDegenerateWindows: parameter combinations whose
// generated windows collapse (end not after start) are spec errors, not
// silent no-op faults — the historical bug was flapevery=1 clamping the
// flap duration to zero and injecting nothing.
func TestParseSpecRejectsDegenerateWindows(t *testing.T) {
	topo := testTopo(t)
	cases := []struct {
		name, spec string
	}{
		{"flap window collapses", "flaps=1,flapevery=1"},
		{"flap window collapses multi", "flaps=3,flapevery=1,flapdur=700"},
		{"stall window collapses", "stalls=1,stallevery=1"},
		{"stall window collapses multi", "stalls=2,stallevery=1,stalldur=99"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(topo, tc.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) should fail", tc.spec)
			}
			if !strings.Contains(err.Error(), "want start<end") {
				t.Fatalf("ParseSpec(%q) error %q does not say \"want start<end\"", tc.spec, err)
			}
		})
	}
	// The boundary case that must still work: flapevery=2 gives dur 1.
	if _, err := ParseSpec(topo, "flaps=1,flapevery=2"); err != nil {
		t.Fatalf("ParseSpec(flapevery=2): %v", err)
	}
}

// TestParseSpecPersistentEvents: kill/add/killchiplet parse into the
// persistent-event lists, and bad forms are rejected.
func TestParseSpecPersistentEvents(t *testing.T) {
	topo := testTopo(t)
	plan, err := ParseSpec(topo, "kill=3@500,kill=7@500,add=3@2000,killchiplet=1@900")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(plan.Kills) != 2 || plan.Kills[0] != (LinkKill{Link: 3, Cycle: 500}) || plan.Kills[1] != (LinkKill{Link: 7, Cycle: 500}) {
		t.Fatalf("kills: %+v", plan.Kills)
	}
	if len(plan.Adds) != 1 || plan.Adds[0] != (LinkAdd{Link: 3, Cycle: 2000}) {
		t.Fatalf("adds: %+v", plan.Adds)
	}
	if len(plan.ChipletKills) != 1 || plan.ChipletKills[0] != (ChipletKill{Chiplet: 1, Cycle: 900}) {
		t.Fatalf("chiplet kills: %+v", plan.ChipletKills)
	}
	if !plan.Persistent() || plan.Empty() {
		t.Fatalf("plan with persistent events: Persistent=%v Empty=%v", plan.Persistent(), plan.Empty())
	}
	for _, bad := range []string{"kill=3", "kill=@5", "kill=3@", "kill=-1@5", "kill=3@-5", "add=x@5", "killchiplet=1@y"} {
		if _, err := ParseSpec(topo, bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
	// The plain injector refuses persistent plans: they change topology
	// and need the reconfiguration engine.
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	if _, err := Attach(n, plan); err == nil || !strings.Contains(err.Error(), "reconfig.Attach") {
		t.Fatalf("Attach of persistent plan: err=%v, want reconfig.Attach hint", err)
	}
}
