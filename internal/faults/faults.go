// Package faults is the deterministic runtime fault-injection subsystem:
// seed-driven plans that flap mesh links transiently, drop or delay UPP
// protocol signals, and stall NI ejection for bounded windows.
//
// Determinism contract: a Plan is pure data, and the Injector it drives
// keeps no RNG stream — signal fates are stateless hashes of
// (seed, kind, popupID, hop, cycle), and flap/stall windows are plain
// cycle-range comparisons. Two runs of the same plan therefore inject
// byte-identical faults regardless of kernel (naive, active, parallel),
// shard count, or the order fate queries happen to be made in.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// LinkFlap is one transient outage window on a mesh link: the link is
// down for cycles in [Start, End) and carries traffic again afterwards.
// Windows on the same link must not overlap.
type LinkFlap struct {
	Link       int // index into Topology.Links; must be a mesh (non-vertical) link
	Start, End sim.Cycle
}

// EjectStall freezes one NI's ejection (the PE stops consuming) for
// cycles in [Start, End) — the local-port backpressure a hung core exerts.
type EjectStall struct {
	Node       topology.NodeID
	Start, End sim.Cycle
}

// LinkKill is a persistent link failure: at Cycle the link is announced
// dead and never heals on its own. Unlike a LinkFlap — which only pauses
// traffic — a kill changes the topology, so the reconfiguration engine
// (internal/reconfig) must rebuild routing around it; the plain Injector
// refuses plans that contain one.
type LinkKill struct {
	Link  int // index into Topology.Links; must be a mesh (non-vertical) link
	Cycle sim.Cycle
}

// LinkAdd heals a construction-time Faulty link at Cycle — the hot-add /
// repair event. Routing starts using the link once the reconfiguration
// engine installs tables that include it.
type LinkAdd struct {
	Link  int
	Cycle sim.Cycle
}

// ChipletKill fail-stops one chiplet's compute at Cycle: its cores stop
// sourcing traffic and other cores stop targeting it. The chiplet's
// routers stay powered so in-flight packets drain (the fail-stop model of
// modular systems — a dead compute die, not a dead interposer region).
type ChipletKill struct {
	Chiplet int
	Cycle   sim.Cycle
}

// Plan is a complete, replayable fault schedule. The zero Plan injects
// nothing.
type Plan struct {
	// Seed keys the stateless signal-fate hash; two plans with different
	// seeds drop/delay different signal instances at the same probabilities.
	Seed uint64

	Flaps  []LinkFlap
	Stalls []EjectStall

	// Persistent topology events; require the reconfiguration engine.
	Kills        []LinkKill
	Adds         []LinkAdd
	ChipletKills []ChipletKill

	// Drop is the per-kind loss probability for UPP protocol signals
	// (indexed by network.SignalReq/SignalAck/SignalStop).
	Drop [network.NumSignalKinds]float64
	// DelayProb delays a surviving signal by 1..DelayMax extra cycles.
	DelayProb float64
	DelayMax  int
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return len(p.Flaps) == 0 && len(p.Stalls) == 0 && !p.Persistent() &&
		p.Drop == [network.NumSignalKinds]float64{} && p.DelayProb == 0
}

// Persistent reports whether the plan contains topology-changing events
// (kills, hot-adds, chiplet fail-stops) that need reconfig.Attach.
func (p *Plan) Persistent() bool {
	return len(p.Kills) > 0 || len(p.Adds) > 0 || len(p.ChipletKills) > 0
}

// Injector applies a Plan to one Network. It implements
// network.FaultInjector.
type Injector struct {
	net   *network.Network
	plan  Plan
	links []*topology.Link // resolved flap targets, parallel to plan.Flaps
	down  []bool           // current applied state, parallel to plan.Flaps
}

// Attach validates the plan against the network's topology, installs an
// Injector on the network and returns it. Flap targets must be in-range
// mesh links (vertical links never flap: the paper's fault model keeps
// the TSV/bump layer out of scope, and UPP's correctness leans on the up
// link existing).
func Attach(n *network.Network, plan Plan) (*Injector, error) {
	if plan.Persistent() {
		return nil, fmt.Errorf("faults: plan has persistent topology events (%d kills, %d adds, %d chiplet kills); attach it with reconfig.Attach",
			len(plan.Kills), len(plan.Adds), len(plan.ChipletKills))
	}
	in, err := NewInjector(n, plan)
	if err != nil {
		return nil, err
	}
	n.SetFaultInjector(in)
	return in, nil
}

// NewInjector validates the transient portion of plan (flaps, stalls,
// signal fates) and builds an Injector without installing it on the
// network. The reconfiguration engine embeds one this way, delegating
// transient faults while it owns the network's injector slot itself.
func NewInjector(n *network.Network, plan Plan) (*Injector, error) {
	topo := n.Topo
	links := make([]*topology.Link, len(plan.Flaps))
	for i, fl := range plan.Flaps {
		if fl.Link < 0 || fl.Link >= len(topo.Links) {
			return nil, fmt.Errorf("faults: flap %d targets link %d, out of range [0, %d)", i, fl.Link, len(topo.Links))
		}
		l := topo.Links[fl.Link]
		if l.Vertical {
			return nil, fmt.Errorf("faults: flap %d targets vertical link %d (%d-%d); only mesh links flap", i, fl.Link, l.A, l.B)
		}
		if fl.End <= fl.Start {
			return nil, fmt.Errorf("faults: flap %d has empty window [%d, %d)", i, fl.Start, fl.End)
		}
		links[i] = l
	}
	for i, st := range plan.Stalls {
		if int(st.Node) < 0 || int(st.Node) >= topo.NumNodes() {
			return nil, fmt.Errorf("faults: stall %d targets node %d, out of range", i, st.Node)
		}
		if st.End <= st.Start {
			return nil, fmt.Errorf("faults: stall %d has empty window [%d, %d)", i, st.Start, st.End)
		}
	}
	return &Injector{net: n, plan: plan, links: links, down: make([]bool, len(plan.Flaps))}, nil
}

// Plan returns the attached plan (read-only copy).
func (in *Injector) Plan() Plan { return in.plan }

// BeginCycle applies flap-window edges. It runs before event delivery
// each cycle on the coordinator goroutine, so link state is stable for
// the whole cycle under every kernel.
func (in *Injector) BeginCycle(cycle sim.Cycle) {
	for i := range in.plan.Flaps {
		fl := &in.plan.Flaps[i]
		want := cycle >= fl.Start && cycle < fl.End
		if want != in.down[i] {
			in.down[i] = want
			in.net.SetLinkDown(in.links[i], want)
		}
	}
}

// splitmix64 finalizer: a full-avalanche mix of one 64-bit word.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1) with 53 uniform bits.
func unit(h uint64) float64 { return float64(h>>11) * (1.0 / (1 << 53)) }

// SignalFate decides drop/delay for one signal transmission. Pure
// function of the plan seed and the call arguments: any kernel asking in
// any order gets the same verdict.
func (in *Injector) SignalFate(kind network.SignalKind, popupID uint64, hop int, cycle sim.Cycle) network.Fate {
	if in.plan.Drop[kind] == 0 && in.plan.DelayProb == 0 {
		return network.Fate{}
	}
	h := mix(in.plan.Seed ^ 0xa0761d6478bd642f ^
		uint64(kind)<<56 ^ uint64(hop)<<48 ^ uint64(cycle)<<16 ^ popupID)
	if unit(h) < in.plan.Drop[kind] {
		return network.Fate{Drop: true}
	}
	if in.plan.DelayProb > 0 && in.plan.DelayMax > 0 {
		h2 := mix(h ^ 0x9e3779b97f4a7c15)
		if unit(h2) < in.plan.DelayProb {
			return network.Fate{Delay: 1 + sim.Cycle((h2>>8)%uint64(in.plan.DelayMax))}
		}
	}
	return network.Fate{}
}

// EjectionStalled reports whether node's NI consume pass is suppressed
// this cycle.
func (in *Injector) EjectionStalled(node topology.NodeID, cycle sim.Cycle) bool {
	for i := range in.plan.Stalls {
		st := &in.plan.Stalls[i]
		if st.Node == node && cycle >= st.Start && cycle < st.End {
			return true
		}
	}
	return false
}

// GenConfig shapes Generate's output. Zero values take the documented
// defaults; probabilities default to zero (off).
type GenConfig struct {
	Flaps     int // number of link-flap windows (default 0)
	FlapEvery int // cycles between flap starts (default 1500)
	FlapDur   int // flap length; clamped to FlapEvery/2 (default 300)

	Stalls     int // number of ejection-stall windows (default 0)
	StallEvery int // cycles between stall starts (default 2000)
	StallDur   int // stall length; clamped to StallEvery/2 (default 250)

	DropReq, DropAck, DropStop float64
	DelayProb                  float64
	DelayMax                   int // default 8 when DelayProb > 0

	Start sim.Cycle // first window start (default 100)
}

// Generate builds a reproducible Plan for a topology: flaps target
// pseudo-randomly chosen mesh links, stalls pseudo-randomly chosen cores,
// with starts staggered so windows on one target never overlap.
func Generate(topo *topology.Topology, seed uint64, g GenConfig) Plan {
	if g.FlapEvery <= 0 {
		g.FlapEvery = 1500
	}
	if g.FlapDur <= 0 {
		g.FlapDur = 300
	}
	if g.FlapDur > g.FlapEvery/2 {
		g.FlapDur = g.FlapEvery / 2
	}
	if g.StallEvery <= 0 {
		g.StallEvery = 2000
	}
	if g.StallDur <= 0 {
		g.StallDur = 250
	}
	if g.StallDur > g.StallEvery/2 {
		g.StallDur = g.StallEvery / 2
	}
	if g.Start <= 0 {
		g.Start = 100
	}
	if g.DelayProb > 0 && g.DelayMax <= 0 {
		g.DelayMax = 8
	}
	rng := sim.NewRNG(seed)
	var mesh []int
	for _, l := range topo.Links {
		if !l.Vertical {
			mesh = append(mesh, l.ID)
		}
	}
	plan := Plan{Seed: seed, DelayProb: g.DelayProb, DelayMax: g.DelayMax}
	plan.Drop[network.SignalReq] = g.DropReq
	plan.Drop[network.SignalAck] = g.DropAck
	plan.Drop[network.SignalStop] = g.DropStop
	for i := 0; i < g.Flaps && len(mesh) > 0; i++ {
		start := g.Start + sim.Cycle(i*g.FlapEvery+rng.Intn(g.FlapEvery/4+1))
		plan.Flaps = append(plan.Flaps, LinkFlap{
			Link:  mesh[rng.Intn(len(mesh))],
			Start: start,
			End:   start + sim.Cycle(g.FlapDur),
		})
	}
	cores := topo.Cores()
	for i := 0; i < g.Stalls && len(cores) > 0; i++ {
		start := g.Start + sim.Cycle(i*g.StallEvery+rng.Intn(g.StallEvery/4+1))
		plan.Stalls = append(plan.Stalls, EjectStall{
			Node:  cores[rng.Intn(len(cores))],
			Start: start,
			End:   start + sim.Cycle(g.StallDur),
		})
	}
	return plan
}

// ParseSpec builds a Plan from a compact comma-separated key=value spec —
// the UPP_FAULTS / -faults command-line syntax. Keys:
//
//	seed=N        hash seed and Generate seed (default 1)
//	flaps=N       link-flap windows       flapevery=N  flapdur=N
//	stalls=N      ejection-stall windows  stallevery=N stalldur=N
//	dropreq=P dropack=P dropstop=P  per-kind signal-loss probabilities
//	drop=P        shorthand: all three kinds at once
//	delayprob=P   delaymax=N    signal delay injection
//	start=N       first fault window start cycle
//	kill=L@C      persistent link kill: link L dies at cycle C (repeatable)
//	add=L@C       hot-add: Faulty link L heals at cycle C (repeatable)
//	killchiplet=K@C  fail-stop chiplet K's compute at cycle C (repeatable)
//
// Example: "seed=7,flaps=4,drop=0.2,delayprob=0.1".
// Persistent events (kill/add/killchiplet) require reconfig.Attach.
// Every window in the resulting plan is validated to be non-empty: a
// degenerate parameter combination (e.g. flapevery=1, whose duration
// clamp collapses the window) is an error here, not a silent no-op fault.
func ParseSpec(topo *topology.Topology, spec string) (Plan, error) {
	g := GenConfig{}
	var seed uint64 = 1
	var kills []LinkKill
	var adds []LinkAdd
	var chipKills []ChipletKill
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: bad spec element %q (want key=value)", kv)
		}
		switch k {
		case "seed", "flaps", "flapevery", "flapdur", "stalls", "stallevery", "stalldur", "delaymax", "start":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("faults: bad value %q for %s (want a non-negative integer)", v, k)
			}
			switch k {
			case "seed":
				seed = uint64(n)
			case "flaps":
				g.Flaps = n
			case "flapevery":
				g.FlapEvery = n
			case "flapdur":
				g.FlapDur = n
			case "stalls":
				g.Stalls = n
			case "stallevery":
				g.StallEvery = n
			case "stalldur":
				g.StallDur = n
			case "delaymax":
				g.DelayMax = n
			case "start":
				g.Start = sim.Cycle(n)
			}
		case "drop", "dropreq", "dropack", "dropstop", "delayprob":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Plan{}, fmt.Errorf("faults: bad value %q for %s (want a probability in [0, 1])", v, k)
			}
			switch k {
			case "drop":
				g.DropReq, g.DropAck, g.DropStop = p, p, p
			case "dropreq":
				g.DropReq = p
			case "dropack":
				g.DropAck = p
			case "dropstop":
				g.DropStop = p
			case "delayprob":
				g.DelayProb = p
			}
		case "kill", "add", "killchiplet":
			ts, cs, ok := strings.Cut(v, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faults: bad value %q for %s (want TARGET@CYCLE)", v, k)
			}
			target, err1 := strconv.Atoi(ts)
			cyc, err2 := strconv.Atoi(cs)
			if err1 != nil || err2 != nil || target < 0 || cyc < 0 {
				return Plan{}, fmt.Errorf("faults: bad value %q for %s (want non-negative TARGET@CYCLE)", v, k)
			}
			switch k {
			case "kill":
				kills = append(kills, LinkKill{Link: target, Cycle: sim.Cycle(cyc)})
			case "add":
				adds = append(adds, LinkAdd{Link: target, Cycle: sim.Cycle(cyc)})
			case "killchiplet":
				chipKills = append(chipKills, ChipletKill{Chiplet: target, Cycle: sim.Cycle(cyc)})
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown spec key %q", k)
		}
	}
	plan := Generate(topo, seed, g)
	plan.Kills = kills
	plan.Adds = adds
	plan.ChipletKills = chipKills
	// Reject degenerate windows instead of passing them through: a flap
	// or stall whose end does not follow its start would silently inject
	// nothing (or, worse, a miscomputed window could invert).
	for i, fl := range plan.Flaps {
		if fl.End <= fl.Start {
			return Plan{}, fmt.Errorf("faults: flap %d has window [%d, %d), want start<end (check flapevery/flapdur)", i, fl.Start, fl.End)
		}
	}
	for i, st := range plan.Stalls {
		if st.End <= st.Start {
			return Plan{}, fmt.Errorf("faults: stall %d has window [%d, %d), want start<end (check stallevery/stalldur)", i, st.Start, st.End)
		}
	}
	return plan, nil
}

// String renders a plan summary for logs and diagnostics.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan seed=%d flaps=%d stalls=%d drop=[req %.3g ack %.3g stop %.3g] delay=%.3g/max%d",
		p.Seed, len(p.Flaps), len(p.Stalls),
		p.Drop[network.SignalReq], p.Drop[network.SignalAck], p.Drop[network.SignalStop],
		p.DelayProb, p.DelayMax)
	if len(p.Flaps) > 0 {
		links := make([]int, 0, len(p.Flaps))
		for _, fl := range p.Flaps {
			links = append(links, fl.Link)
		}
		sort.Ints(links)
		fmt.Fprintf(&b, " flap-links=%v", links)
	}
	if p.Persistent() {
		fmt.Fprintf(&b, " kills=%d adds=%d chiplet-kills=%d", len(p.Kills), len(p.Adds), len(p.ChipletKills))
	}
	return b.String()
}
