package experiments

// This file is the content-addressed run cache (DESIGN.md §14). A RunSpec
// whose inputs are fully canonicalizable — a named scheme, one of the
// registered traffic patterns, no tracer — maps to a canonical JSON
// envelope; the SHA-256 of those bytes addresses two on-disk artifacts
// under UPP_CACHE_DIR:
//
//	results/<hash>.json  the finished Point (exact-match verified
//	                     against the stored spec, not just the hash)
//	warm/<hash>.upws     a warm-start checkpoint: the full simulation
//	                     state after the warmup phase, keyed on the
//	                     envelope with Measure zeroed so runs that differ
//	                     only in measurement length share warmups
//
// The cache key deliberately excludes the execution strategy — cycle
// kernel, shard count and packet pooling — because all of them are
// bit-identical by construction (enforced by the kernel/pool equivalence
// tests), so a Point computed under any of them is valid for all. It
// deliberately includes the resolved router architecture (UPP_ROUTER
// applies when the spec leaves RouterArch empty) because that does change
// results. Entries are written atomically (temp file + rename), so
// concurrent sweep workers and concurrent processes sharing a cache
// directory never observe torn files; a corrupt or stale entry is treated
// as a miss, never an error.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// CacheDir returns the run-cache root directory (the UPP_CACHE_DIR
// environment variable); empty means caching is disabled.
func CacheDir() string { return os.Getenv("UPP_CACHE_DIR") }

// warmStartEnabled reports whether cold runs may checkpoint after warmup
// and later runs may restore those checkpoints. On by default whenever
// the cache is enabled; UPP_CACHE_WARM=0 opts out (results caching keeps
// working).
func warmStartEnabled() bool { return os.Getenv("UPP_CACHE_WARM") != "0" }

// cacheFormatVersion is part of every canonical envelope; bump it when
// the envelope, Point or UPWS snapshot format changes shape so stale
// cache entries miss instead of misleading.
const cacheFormatVersion = 1

// Cache hit/miss counters, process-wide. Hits/Misses count result-cache
// lookups; WarmHits/WarmMisses count warm-start checkpoint lookups on the
// miss path.
var cacheHits, cacheMisses, warmHits, warmMisses atomic.Uint64

// CacheCounters reports the process-wide cache statistics: result-cache
// hits and misses, and warm-start checkpoint hits and misses among the
// result misses. The figures and benchjson binaries print these so CI
// can assert a re-run was served from cache.
func CacheCounters() (hits, misses, warmStartHits, warmStartMisses uint64) {
	return cacheHits.Load(), cacheMisses.Load(), warmHits.Load(), warmMisses.Load()
}

// specEnvelope is the canonical form of a RunSpec: plain data, fixed
// field order, every result-relevant input made explicit (the router
// architecture is stored resolved). json.Marshal of this struct is the
// cache's canonical byte string.
type specEnvelope struct {
	Format         int                   `json:"format"`
	Topo           topology.SystemConfig `json:"topo"`
	Scale          *topology.ScaleConfig `json:"scale,omitempty"`
	Faults         int                   `json:"faults,omitempty"`
	FaultSeed      uint64                `json:"fault_seed,omitempty"`
	FaultsPerLayer int                   `json:"faults_per_layer,omitempty"`
	FaultPlan      string                `json:"fault_plan,omitempty"`
	Scheme         SchemeName            `json:"scheme"`
	VCsPerVNet     int                   `json:"vcs,omitempty"`
	BufferDepth    int                   `json:"buffer_depth,omitempty"`
	Pattern        string                `json:"pattern"`
	Rate           float64               `json:"rate"`
	Seed           uint64                `json:"seed"`
	Warmup         int                   `json:"warmup"`
	Measure        int                   `json:"measure"`
	UseUpDown      bool                  `json:"up_down,omitempty"`
	Adaptive       bool                  `json:"adaptive,omitempty"`
	VCT            bool                  `json:"vct,omitempty"`
	RouterArch     string                `json:"router"`
}

// resolvedRouterArch mirrors network.New's resolution of the router
// microarchitecture so the cache key captures what actually runs.
func resolvedRouterArch(arch string) string {
	if arch != "" {
		return arch
	}
	if env := os.Getenv("UPP_ROUTER"); env != "" {
		return env
	}
	return router.ArchIQ
}

// canonicalSpec canonicalizes a spec for caching. ok is false when the
// spec cannot be addressed by content: a SchemeOverride or a traffic
// pattern outside the registered set has no canonical name, and a traced
// run's side effects cannot come from a cache.
func canonicalSpec(spec RunSpec) (env specEnvelope, canonical []byte, ok bool) {
	if spec.SchemeOverride != nil || spec.TraceLimit > 0 || spec.Pattern == nil {
		return specEnvelope{}, nil, false
	}
	if _, err := traffic.PatternByName(spec.Pattern.Name()); err != nil {
		return specEnvelope{}, nil, false
	}
	env = specEnvelope{
		Format:         cacheFormatVersion,
		Topo:           spec.Topo,
		Scale:          spec.Scale,
		Faults:         spec.Faults,
		FaultSeed:      spec.FaultSeed,
		FaultsPerLayer: spec.FaultsPerLayer,
		FaultPlan:      spec.FaultPlan,
		Scheme:         spec.Scheme,
		VCsPerVNet:     spec.VCsPerVNet,
		BufferDepth:    spec.BufferDepth,
		Pattern:        spec.Pattern.Name(),
		Rate:           spec.Rate,
		Seed:           spec.Seed,
		Warmup:         spec.Dur.Warmup,
		Measure:        spec.Dur.Measure,
		UseUpDown:      spec.UseUpDown,
		Adaptive:       spec.Adaptive,
		VCT:            spec.VCT,
		RouterArch:     resolvedRouterArch(spec.RouterArch),
	}
	canonical, err := json.Marshal(env)
	if err != nil {
		return specEnvelope{}, nil, false
	}
	return env, canonical, true
}

// runSpec rebuilds the RunSpec a canonical envelope describes — the
// inverse of canonicalSpec, used to restore checkpoint containers.
func (e specEnvelope) runSpec() (RunSpec, error) {
	if e.Format != cacheFormatVersion {
		return RunSpec{}, fmt.Errorf("experiments: checkpoint spec format %d (this build reads %d)", e.Format, cacheFormatVersion)
	}
	pat, err := traffic.PatternByName(e.Pattern)
	if err != nil {
		return RunSpec{}, fmt.Errorf("experiments: checkpoint spec: %w", err)
	}
	return RunSpec{
		Topo:           e.Topo,
		Scale:          e.Scale,
		Faults:         e.Faults,
		FaultSeed:      e.FaultSeed,
		FaultsPerLayer: e.FaultsPerLayer,
		FaultPlan:      e.FaultPlan,
		Scheme:         e.Scheme,
		VCsPerVNet:     e.VCsPerVNet,
		BufferDepth:    e.BufferDepth,
		Pattern:        pat,
		Rate:           e.Rate,
		Seed:           e.Seed,
		Dur:            Durations{Warmup: e.Warmup, Measure: e.Measure},
		UseUpDown:      e.UseUpDown,
		Adaptive:       e.Adaptive,
		VCT:            e.VCT,
		// Stored resolved, so the rebuilt run ignores UPP_ROUTER.
		RouterArch: e.RouterArch,
	}, nil
}

// cacheHash addresses a canonical spec.
func cacheHash(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// cachedResult is the results/<hash>.json schema: the canonical spec is
// stored alongside the Point and compared on load, so a hash collision or
// a foreign file can only miss, never serve a wrong result.
type cachedResult struct {
	Spec  json.RawMessage `json:"spec"`
	Point Point           `json:"point"`
}

func resultPath(dir, hash string) string {
	return filepath.Join(dir, "results", hash+".json")
}

func loadCachedPoint(dir, hash string, canonical []byte) (Point, bool) {
	data, err := os.ReadFile(resultPath(dir, hash))
	if err != nil {
		return Point{}, false
	}
	var cr cachedResult
	if json.Unmarshal(data, &cr) != nil || !bytes.Equal(cr.Spec, canonical) {
		return Point{}, false
	}
	return cr.Point, true
}

func storeCachedPoint(dir, hash string, canonical []byte, pt Point) {
	data, err := json.Marshal(cachedResult{Spec: canonical, Point: pt})
	if err != nil {
		return
	}
	writeAtomic(resultPath(dir, hash), append(data, '\n'))
}

// writeAtomic writes data via a temp file and rename. Failures are
// swallowed: the cache is an optimization, never a correctness
// dependency, and a run must not fail because its result could not be
// recorded.
func writeAtomic(path string, data []byte) {
	dir := filepath.Dir(path)
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}

// checkpointMagic heads the standalone checkpoint container ("UPWR" for
// UPward-packet-popup Run): the magic, a little-endian uint32 length, the
// canonical spec JSON, then the network's UPWS snapshot.
const checkpointMagic = "UPWR"

// snapshotExtras assembles the SnapshotExtra list for a BuildRun
// environment: the generator, plus the fault injector when it carries
// snapshot state of its own (the reconfiguration engine does; the plain
// flap injector resyncs from the restored cycle instead).
func snapshotExtras(n *network.Network, g *traffic.Generator) []network.SnapshotExtra {
	extras := []network.SnapshotExtra{g}
	if ex, ok := n.FaultInjector().(network.SnapshotExtra); ok {
		extras = append(extras, ex)
	}
	return extras
}

// writeCheckpointTo writes the container for an in-flight run.
func writeCheckpointTo(w io.Writer, canonical []byte, n *network.Network, g *traffic.Generator) error {
	var hdr bytes.Buffer
	hdr.WriteString(checkpointMagic)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(canonical)))
	hdr.Write(lenBuf[:])
	hdr.Write(canonical)
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	return n.WriteSnapshot(w, snapshotExtras(n, g)...)
}

// splitCheckpoint separates a container into its spec and snapshot bytes.
func splitCheckpoint(data []byte) (spec, snapshot []byte, err error) {
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, nil, fmt.Errorf("experiments: not a %s checkpoint", checkpointMagic)
	}
	n := binary.LittleEndian.Uint32(data[len(checkpointMagic):])
	rest := data[len(checkpointMagic)+4:]
	if uint64(len(rest)) < uint64(n) {
		return nil, nil, fmt.Errorf("experiments: checkpoint truncated (spec claims %d bytes, %d remain)", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// WriteCheckpoint serializes a running simulation built by BuildRun into
// a self-describing container: the spec travels with the state, so
// ReadCheckpoint can rebuild the environment without re-supplying flags.
// Only canonicalizable specs (see canonicalSpec) can be checkpointed.
func WriteCheckpoint(w io.Writer, spec RunSpec, n *network.Network, g *traffic.Generator) error {
	_, canonical, ok := canonicalSpec(spec)
	if !ok {
		return fmt.Errorf("experiments: spec is not checkpointable (custom scheme, unregistered pattern or tracing)")
	}
	return writeCheckpointTo(w, canonical, n, g)
}

// ReadCheckpoint rebuilds the environment a checkpoint describes and
// restores its state, returning the network, generator and embedded spec
// positioned at the snapshot cycle.
func ReadCheckpoint(data []byte) (*network.Network, *traffic.Generator, RunSpec, error) {
	canonical, snapBytes, err := splitCheckpoint(data)
	if err != nil {
		return nil, nil, RunSpec{}, err
	}
	var env specEnvelope
	if err := json.Unmarshal(canonical, &env); err != nil {
		return nil, nil, RunSpec{}, fmt.Errorf("experiments: checkpoint spec: %w", err)
	}
	spec, err := env.runSpec()
	if err != nil {
		return nil, nil, RunSpec{}, err
	}
	n, g, err := BuildRun(spec)
	if err != nil {
		return nil, nil, RunSpec{}, err
	}
	if err := n.ReadSnapshot(snapBytes, snapshotExtras(n, g)...); err != nil {
		return nil, nil, RunSpec{}, err
	}
	return n, g, spec, nil
}

// RunCheckpointed is Run with a mid-run checkpoint: when the simulation
// reaches absolute cycle at (warmup and measurement form one timeline
// starting at 0), its state is written to out, and the run then continues
// to completion. The Point is bit-identical to Run's — the checkpoint is
// a pure observation. The result cache is bypassed (a cache hit would
// skip the cycles the checkpoint must observe).
func RunCheckpointed(spec RunSpec, at int64, out io.Writer) (Point, error) {
	_, canonical, ok := canonicalSpec(spec)
	if !ok {
		return Point{}, fmt.Errorf("experiments: spec is not checkpointable (custom scheme, unregistered pattern or tracing)")
	}
	n, g, err := BuildRun(spec)
	if err != nil {
		return Point{}, err
	}
	return finishRun(spec, n, g, at, func() error {
		return writeCheckpointTo(out, canonical, n, g)
	})
}

// RunRestored resumes a checkpoint container and carries the run to the
// end of its embedded schedule, returning the Point and the embedded
// spec. The Point is bit-identical to the uninterrupted run's (the
// checkpoint/restore equivalence tests pin this).
func RunRestored(data []byte) (Point, RunSpec, error) {
	n, g, spec, err := ReadCheckpoint(data)
	if err != nil {
		return Point{}, RunSpec{}, err
	}
	pt, err := finishRun(spec, n, g, 0, nil)
	return pt, spec, err
}

// warmState carries the warm-start checkpoint identity through one cold
// run: the canonical spec with Measure zeroed, so every measurement
// length shares one post-warmup snapshot.
type warmState struct {
	dir       string
	canonical []byte
	hash      string
}

// newWarmState derives the warm key for a cacheable spec; nil when
// warm-starting is disabled.
func newWarmState(dir string, env specEnvelope) *warmState {
	if !warmStartEnabled() {
		return nil
	}
	env.Measure = 0
	canonical, err := json.Marshal(env)
	if err != nil {
		return nil
	}
	return &warmState{dir: dir, canonical: canonical, hash: cacheHash(canonical)}
}

func (ws *warmState) path() string {
	return filepath.Join(ws.dir, "warm", ws.hash+".upws")
}

// load returns the stored snapshot bytes when a matching warm checkpoint
// exists.
func (ws *warmState) load() ([]byte, bool) {
	data, err := os.ReadFile(ws.path())
	if err != nil {
		return nil, false
	}
	spec, snapshot, err := splitCheckpoint(data)
	if err != nil || !bytes.Equal(spec, ws.canonical) {
		return nil, false
	}
	return snapshot, true
}

// store checkpoints the post-warmup state. Failures (e.g. an unwritable
// cache directory) are swallowed; the run proceeds unaffected.
func (ws *warmState) store(n *network.Network, g *traffic.Generator) {
	var buf bytes.Buffer
	if writeCheckpointTo(&buf, ws.canonical, n, g) != nil {
		return
	}
	writeAtomic(ws.path(), buf.Bytes())
}
