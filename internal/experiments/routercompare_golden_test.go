package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uppnoc/internal/network"
)

// TestRouterCompareGolden is the acceptance gate for the router
// microarchitecture comparison: regenerating the router_compare table
// must byte-match the committed results/router_compare.csv under every
// cycle kernel and at one and four sweep workers. Kernel invariance here
// proves the oq and voq Step implementations honor the shard concurrency
// contract the same way the iq pipeline does; a mismatch means either a
// behavior change (regenerate with `make router-golden`) or a
// determinism break (fix the code).
func TestRouterCompareGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	wantBytes, err := os.ReadFile(filepath.Join("..", "..", "results", "router_compare.csv"))
	if err != nil {
		t.Fatalf("committed golden missing (regenerate with `make router-golden`): %v", err)
	}
	want := string(wantBytes)
	for _, kernel := range []string{network.KernelActive, network.KernelNaive, network.KernelParallel} {
		for _, jobs := range []int{1, 4} {
			t.Run(kernel+"_jobs"+string(rune('0'+jobs)), func(t *testing.T) {
				t.Setenv("UPP_KERNEL", kernel)
				tables, err := RouterCompare(PoolOptions{Jobs: jobs})
				if err != nil {
					t.Fatal(err)
				}
				got := tables[0].CSV()
				if got == want {
					return
				}
				gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if gl[i] != wl[i] {
						t.Fatalf("line %d diverges from the committed golden:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
					}
				}
				t.Fatalf("line counts differ: got %d, committed %d", len(gl), len(wl))
			})
		}
	}
}

// TestRouterCompareCompletes pins the qualitative acceptance claim: the
// oq and voq variants complete every router-comparison workload
// deadlock-free under all three schemes (completed=true on every row of
// the table), and the large all-to-all exercises UPP recovery on the oq
// datapath (its staging changes packing enough to need more popups than
// iq, not fewer).
func TestRouterCompareCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	tables, err := RouterCompare(PoolOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var uppOQPopups string
	for _, row := range tables[0].Rows {
		if row[4] != "true" {
			t.Errorf("%s under %s on %s did not complete", row[0], row[1], row[2])
		}
		if row[0] == "all_to_all:flits=10" && row[1] == "upp" && row[2] == "oq" {
			uppOQPopups = row[9]
		}
	}
	if uppOQPopups == "" || uppOQPopups == "0" {
		t.Errorf("large all-to-all under UPP on oq completed %q popups — recovery path untested on the oq datapath", uppOQPopups)
	}
}
