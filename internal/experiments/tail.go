package experiments

import (
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TailLatency compares latency percentiles across schemes at a moderate
// load — recovery frameworks shape the tail: a packet that would wait
// indefinitely in a wedged network is instead rescued by a popup, at the
// cost of the detection timeout plus the protocol round trip.
func TailLatency(dur Durations, progress Progress) ([]Table, error) {
	t := Table{
		ID:     "tail_latency",
		Title:  "Latency percentiles per scheme (uniform random)",
		Header: []string{"scheme", "vcs", "rate", "p50", "p99", "max", "mean"},
		Notes: []string{
			"UPP's mean and p50 lead; its max reflects rescued packets (timeout + popup round trip)",
		},
	}
	for _, vcs := range []int{1, 4} {
		for _, rate := range []float64{0.03, 0.05} {
			for _, sch := range ComparedSchemes() {
				progress.log("tail_latency: %s vcs=%d rate=%.2f", sch, vcs, rate)
				pt, err := Run(RunSpec{
					Topo:           topology.BaselineConfig(),
					SchemeOverride: cachedScheme(topology.BaselineConfig(), sch),
					VCsPerVNet:     vcs,
					Pattern:        traffic.UniformRandom{},
					Rate:           rate,
					Seed:           17,
					Dur:            dur,
				})
				if err != nil {
					return nil, err
				}
				t.AddRowf(string(sch), vcs, rate, pt.LatP50, pt.LatP99, pt.LatMax, pt.TotalLat)
			}
		}
	}
	return []Table{t}, nil
}
