package experiments

import (
	"fmt"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TailLatency compares latency percentiles across schemes at a moderate
// load — recovery frameworks shape the tail: a packet that would wait
// indefinitely in a wedged network is instead rescued by a popup, at the
// cost of the detection timeout plus the protocol round trip.
func TailLatency(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "tail_latency",
		Title:  "Latency percentiles per scheme (uniform random)",
		Header: []string{"scheme", "vcs", "rate", "p50", "p99", "max", "mean"},
		Notes: []string{
			"UPP's mean and p50 lead; its max reflects rescued packets (timeout + popup round trip)",
		},
	}
	type job struct {
		sch  SchemeName
		vcs  int
		rate float64
	}
	var jobs []job
	var specs []RunSpec
	for _, vcs := range []int{1, 4} {
		for _, rate := range []float64{0.03, 0.05} {
			for _, sch := range ComparedSchemes() {
				opts.Progress.log("tail_latency: %s vcs=%d rate=%.2f", sch, vcs, rate)
				jobs = append(jobs, job{sch, vcs, rate})
				specs = append(specs, RunSpec{
					Topo:           topology.BaselineConfig(),
					SchemeOverride: cachedScheme(topology.BaselineConfig(), sch),
					VCsPerVNet:     vcs,
					Pattern:        traffic.UniformRandom{},
					Rate:           rate,
					Seed:           17,
					Dur:            dur,
				})
			}
		}
	}
	pts, err := RunAll(specs, opts)
	if err != nil {
		return nil, fmt.Errorf("tail_latency: %w", err)
	}
	for i, pt := range pts {
		j := jobs[i]
		t.AddRowf(string(j.sch), j.vcs, j.rate, pt.LatP50, pt.LatP99, pt.LatMax, pt.TotalLat)
	}
	return []Table{t}, nil
}
