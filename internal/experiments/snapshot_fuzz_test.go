package experiments

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode feeds corrupted, truncated and mutated snapshot
// bytes to the UPWS decoder. The contract under test: ReadSnapshot on a
// fixed, freshly-built environment returns a structured error (or nil for
// the pristine bytes) and never panics — the decoder's bounds checks plus
// its recover backstop must absorb anything the fuzzer constructs. The
// seed corpus is a real mid-measurement checkpoint of a loaded UPP run.
func FuzzSnapshotDecode(f *testing.F) {
	spec := snapSpec(SchemeUPP, "iq")
	var buf bytes.Buffer
	if _, err := RunCheckpointed(spec, 700, &buf); err != nil {
		f.Fatal(err)
	}
	_, snapshot, err := splitCheckpoint(buf.Bytes())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapshot)
	f.Add(snapshot[:len(snapshot)/2])
	f.Add(snapshot[:8])
	f.Add([]byte{})
	f.Add([]byte("UPWS"))
	flipped := append([]byte(nil), snapshot...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		n, g, err := BuildRun(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Error or nil are both fine; a panic escaping fails the fuzz.
		_ = n.ReadSnapshot(data, g)
	})
}

// FuzzCheckpointSplit fuzzes the UPWR container framing: arbitrary bytes
// must either split cleanly or produce an error, never panic or return a
// spec/snapshot slice that strays outside the input.
func FuzzCheckpointSplit(f *testing.F) {
	spec := snapSpec(SchemeUPP, "iq")
	var buf bytes.Buffer
	if _, err := RunCheckpointed(spec, 500, &buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("UPWR"))
	f.Add([]byte("UPWR\xff\xff\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		specBytes, snapshot, err := splitCheckpoint(data)
		if err != nil {
			return
		}
		if len(specBytes)+len(snapshot) > len(data) {
			t.Fatalf("split returned %d+%d bytes from a %d-byte input",
				len(specBytes), len(snapshot), len(data))
		}
	})
}
