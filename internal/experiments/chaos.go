package experiments

import (
	"errors"
	"fmt"

	"uppnoc/internal/core"
	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
	"uppnoc/internal/workload"
)

// ChaosSpec describes one chaos-soak run: traffic under an active fault
// plan, followed by a drain that must either quiesce cleanly or produce
// a diagnosed stall — never a panic, never a silent hang.
type ChaosSpec struct {
	Scheme SchemeName
	Kernel string
	Plan   faults.Plan
	Rate   float64
	Seed   uint64
	// Workload, when non-empty (workload.ParseSpec syntax), replaces the
	// rate-driven generator with the closed-loop collective engine: the
	// workload loops for LoadCycles, then injection stops mid-collective
	// and the stranded in-flight chunks must drain like any other traffic.
	Workload string
	// LoadCycles of offered traffic, then the generator stops and the
	// network drains for at most DrainMax cycles with StallLimit as the
	// no-ejection watchdog threshold.
	LoadCycles int
	DrainMax   int
	StallLimit int
	// RouterArch selects the router microarchitecture ("iq", "oq",
	// "voq"); empty defers to UPP_ROUTER and then the iq default.
	RouterArch string
}

// ChaosOutcome is the observable result of a chaos run. Two runs of the
// same spec must produce identical outcomes under every kernel — the
// chaos soak asserts it field by field (Stats with struct equality).
type ChaosOutcome struct {
	Quiesced   bool
	Stall      string // the stall diagnostic's rendering, "" when quiesced
	FinalCycle sim.Cycle
	Stats      network.Stats
}

// RunChaos executes one chaos run on a fresh baseline topology (flaps
// mutate link state, so topologies are never shared between runs) and
// validates the outcome's accounting:
//
//   - a quiesced run must pass CheckQuiescent, have consumed every born
//     packet, and (for UPP) hold no stale protocol state;
//   - a stalled run must surface *network.StallDiagnostic — any other
//     drain failure is a harness error.
func RunChaos(spec ChaosSpec) (ChaosOutcome, error) {
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		return ChaosOutcome{}, err
	}
	var scheme network.Scheme
	if spec.Scheme == SchemeUPP {
		scheme = HardenedUPP()
	} else {
		scheme, err = MakeScheme(spec.Scheme, topo)
		if err != nil {
			return ChaosOutcome{}, err
		}
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = spec.Kernel
	cfg.RouterArch = spec.RouterArch
	cfg.Seed = spec.Seed + 1
	cfg.UseUpDown = true // link flaps must not strand XY-routed traffic conceptually; up*/down* tolerates faults
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		return ChaosOutcome{}, err
	}
	if _, err := faults.Attach(n, spec.Plan); err != nil {
		return ChaosOutcome{}, err
	}
	if spec.Workload != "" {
		ws, werr := workload.ParseSpec(spec.Workload)
		if werr != nil {
			return ChaosOutcome{}, werr
		}
		prog, werr := ws.Build(len(topo.Cores()))
		if werr != nil {
			return ChaosOutcome{}, werr
		}
		eng, werr := workload.NewEngine(n, prog)
		if werr != nil {
			return ChaosOutcome{}, werr
		}
		// Loop the collective for the whole load window; stopping the
		// Ticks afterwards strands the current iteration's in-flight
		// chunks, which the drain below must deliver.
		eng.Iterations = 1 << 20
		for i := 0; i < spec.LoadCycles; i++ {
			eng.Tick(n.Cycle())
			n.Step()
		}
	} else {
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, spec.Rate, spec.Seed+7777)
		g.Run(spec.LoadCycles)
		g.SetRate(0)
	}
	out := ChaosOutcome{}
	derr := n.Drain(spec.DrainMax, sim.Cycle(spec.StallLimit))
	out.FinalCycle = n.Cycle()
	out.Stats = n.Stats
	if derr == nil {
		if !n.Quiesced() {
			return out, fmt.Errorf("chaos: Drain returned nil with %d packets in flight (drainmax %d too small?)", n.InFlight(), spec.DrainMax)
		}
		if err := n.CheckQuiescent(); err != nil {
			return out, fmt.Errorf("chaos: quiesced network fails the resource audit: %w", err)
		}
		if n.Stats.BornPackets != n.Stats.ConsumedPackets {
			return out, fmt.Errorf("chaos: packet accounting broken: born %d consumed %d", n.Stats.BornPackets, n.Stats.ConsumedPackets)
		}
		if u, ok := scheme.(*core.UPP); ok {
			if err := u.UPPStateOK(); err != nil {
				return out, fmt.Errorf("chaos: stale UPP state after quiescing: %w", err)
			}
		}
		out.Quiesced = true
		return out, nil
	}
	var diag *network.StallDiagnostic
	if !errors.As(derr, &diag) {
		return out, fmt.Errorf("chaos: drain failed without a stall diagnostic: %w", derr)
	}
	out.Stall = diag.Error()
	return out, nil
}
