package experiments

import (
	"fmt"

	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/workload"
)

// WorkloadSpec describes one closed-loop collective run: a workload
// program (workload.ParseSpec syntax) driven to completion against one
// scheme. Unlike RunSpec there is no offered rate — the workload's
// dependency structure sets the load, and the figure of merit is
// completion time, not saturation throughput.
type WorkloadSpec struct {
	Topo       topology.SystemConfig
	Scheme     SchemeName
	Workload   string
	VCsPerVNet int
	Seed       uint64
	// MaxCycles bounds the run; a workload still unfinished then is
	// reported as Completed=false (under a scheme without recovery a
	// closed loop can genuinely deadlock — that is a result, not an
	// error).
	MaxCycles int
	// Recorder, when non-nil, observes every injected message (the trace
	// record frontend).
	Recorder workload.Recorder
	// RouterArch selects the router microarchitecture ("iq", "oq",
	// "voq"); empty defers to UPP_ROUTER and then the iq default.
	RouterArch string
}

// WorkloadPoint is the measured outcome of one collective run.
type WorkloadPoint struct {
	Workload    string
	Scheme      SchemeName
	Completed   bool
	FinishCycle sim.Cycle
	// Messages counts workload chunks delivered (all iterations).
	Messages uint64
	// Ops progress at the horizon (diagnostic for incomplete runs).
	OpsFired, OpsTotal int
	NetLat             float64
	QueueLat           float64
	TotalLat           float64
	Upward             uint64
	Popups             uint64
	Signals            uint64
	InjectionHolds     uint64
}

// RunWorkload executes one collective run. Workload completion implies
// every injected message was consumed (Program.Validate proves the
// closed loop is closed), so a completed run needs no drain: the network
// is empty at FinishCycle.
func RunWorkload(spec WorkloadSpec) (WorkloadPoint, error) {
	topo, err := topology.Build(spec.Topo)
	if err != nil {
		return WorkloadPoint{}, err
	}
	scheme, err := cachedScheme(spec.Topo, spec.Scheme)(topo)
	if err != nil {
		return WorkloadPoint{}, err
	}
	cfg := network.DefaultConfig()
	if spec.VCsPerVNet > 0 {
		cfg.Router.VCsPerVNet = spec.VCsPerVNet
	}
	cfg.Seed = spec.Seed + 1
	cfg.RouterArch = spec.RouterArch
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		return WorkloadPoint{}, err
	}
	ws, err := workload.ParseSpec(spec.Workload)
	if err != nil {
		return WorkloadPoint{}, err
	}
	prog, err := ws.Build(len(topo.Cores()))
	if err != nil {
		return WorkloadPoint{}, err
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		return WorkloadPoint{}, err
	}
	eng.Iterations = ws.EngineIterations()
	eng.SetRecorder(spec.Recorder)
	maxCycles := spec.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 400000
	}
	for i := 0; i < maxCycles && !eng.Done(); i++ {
		eng.Tick(n.Cycle())
		n.Step()
	}
	pt := WorkloadPoint{
		Workload:       spec.Workload,
		Scheme:         spec.Scheme,
		Completed:      eng.Done(),
		Messages:       eng.MessagesDelivered,
		NetLat:         n.AvgNetLatency(),
		QueueLat:       n.AvgQueueLatency(),
		TotalLat:       n.AvgTotalLatency(),
		Upward:         n.Stats.UpwardPackets,
		Popups:         n.Stats.PopupsCompleted,
		Signals:        n.Stats.SignalsSent,
		InjectionHolds: n.Stats.InjectionHolds,
	}
	pt.OpsFired, pt.OpsTotal = eng.Progress()
	if eng.Done() {
		pt.FinishCycle = eng.FinishCycle()
		if n.InFlight() != 0 {
			return pt, fmt.Errorf("collectives: %s finished with %d packets in flight — the closed loop did not close", spec.Workload, n.InFlight())
		}
	}
	return pt, nil
}

// RunWorkloads executes the specs across the worker pool, results in
// input order, bit-identical at any job count (each run is a fresh
// deterministic simulation).
func RunWorkloads(specs []WorkloadSpec, opts PoolOptions) ([]WorkloadPoint, error) {
	points := make([]WorkloadPoint, len(specs))
	errs := make([]error, len(specs))
	forEachIndex(len(specs), opts.jobs(), func(i int) {
		points[i], errs[i] = RunWorkload(specs[i])
	})
	var failed []*RunError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &RunError{Index: i, Err: err})
		}
	}
	if failed != nil {
		return points, &BatchError{Failed: failed, Total: len(specs)}
	}
	return points, nil
}

// CollectiveWorkloads returns the workload specs of the collectives
// table: every builder at its defaults, ring allreduce and all-to-all
// additionally at a larger chunk size (the two the acceptance comparison
// centers on).
func CollectiveWorkloads() []string {
	ws := workload.Names()
	return append(ws, "ring_allreduce:flits=10", "all_to_all:flits=10")
}

// Collectives runs the collective-communication comparison: every
// workload under the paper's three schemes, reporting completion time
// and the recovery/avoidance work each scheme performed. UPP's
// completion times track the unconstrained baseline while composable
// pays its path restrictions and remote control its injection holds on
// the bursty exchanges.
func Collectives(opts PoolOptions) ([]Table, error) {
	table := Table{
		ID:    "collectives",
		Title: "Collective workload completion: UPP vs remote control vs composable",
		Header: []string{"workload", "scheme", "completed", "finish_cycle", "messages",
			"avg_lat", "net_lat", "queue_lat", "upward", "popups", "signals", "inj_holds"},
		Notes: []string{
			"closed-loop dependency-driven traffic (DESIGN.md sec. 11): completion time is the figure of merit",
			"a workload that cannot finish within the horizon reports completed=false",
		},
	}
	var specs []WorkloadSpec
	for _, wl := range CollectiveWorkloads() {
		for _, sch := range ComparedSchemes() {
			specs = append(specs, WorkloadSpec{
				Topo:     topology.BaselineConfig(),
				Scheme:   sch,
				Workload: wl,
				Seed:     11,
			})
		}
	}
	opts.Progress.log("collectives: %d runs (%d workloads x %d schemes)",
		len(specs), len(CollectiveWorkloads()), len(ComparedSchemes()))
	points, err := RunWorkloads(specs, opts)
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		table.AddRowf(pt.Workload, string(pt.Scheme), pt.Completed, int64(pt.FinishCycle), pt.Messages,
			pt.TotalLat, pt.NetLat, pt.QueueLat, pt.Upward, pt.Popups, pt.Signals, pt.InjectionHolds)
	}
	return []Table{table}, nil
}

// WorkloadBench is the collective analogue of KernelBench: a baseline
// UPP system running a long closed-loop training workload, prepared for
// zero-allocation and kernel benchmarking of the workload engine path.
type WorkloadBench struct {
	eng *workload.Engine
	net *network.Network
}

// NewWorkloadBench builds a training-step workload (many iterations, a
// short compute gap so the network stays busy) on a fresh baseline UPP
// system under the given kernel.
func NewWorkloadBench(kernel string) (*WorkloadBench, error) {
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		return nil, err
	}
	scheme, err := MakeScheme(SchemeUPP, topo)
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		return nil, err
	}
	prog, err := workload.TrainingStep(len(topo.Cores()), 5, 50)
	if err != nil {
		return nil, err
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		return nil, err
	}
	eng.Iterations = 1 << 30 // effectively unbounded: benches never finish
	return &WorkloadBench{eng: eng, net: n}, nil
}

// Network exposes the benched network (pool preallocation).
func (wb *WorkloadBench) Network() *network.Network { return wb.net }

// Run advances the closed loop the given number of cycles.
func (wb *WorkloadBench) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		wb.eng.Tick(wb.net.Cycle())
		wb.net.Step()
	}
}
