package experiments

import (
	"fmt"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// ScaleSystem pairs a label with a scale-out topology configuration. The
// three presets are shared by the `figures -exp scale` runner, the
// cmd/benchjson -scale shard curves and the CI scale-smoke job, so every
// scale artifact talks about the same systems.
type ScaleSystem struct {
	Label  string
	Config topology.ScaleConfig
}

// ScaleSystems returns the benchmark ladder: small (flat 16x16 interposer,
// 512 routers), large (2x2 tiles, 2048 routers), huge (4x4 tiles, 8192
// routers).
func ScaleSystems() []ScaleSystem {
	return []ScaleSystem{
		{"small", topology.ScaleSmallConfig()},
		{"large", topology.ScaleLargeConfig()},
		{"huge", topology.ScaleHugeConfig()},
	}
}

// scaleRates is the offered-load grid of the scale saturation sweep. The
// scale systems saturate far earlier than the 60-node baseline (uniform
// random traffic is limited by the interposer mesh bisection, which grows
// with the perimeter while injection grows with the area), so the grid is
// dense below 0.02; the sweep's stop-past-saturation rule truncates the
// tail per system.
func scaleRates() []float64 {
	return []float64{0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015, 0.02, 0.03, 0.04, 0.06}
}

// Scale compares UPP against remote control on the scale-out systems
// under uniform random traffic: latency-vs-rate curves and a saturation
// summary for the small and large presets (the huge preset is exercised
// by the shard-scaling benchmarks and CI smoke, where a single
// configuration suffices — a full sweep of an 8192-router system is a
// multi-hour run). Run via `figures -exp scale`.
func Scale(dur Durations, opts PoolOptions) ([]Table, error) {
	curves := Table{
		ID:     "scale",
		Title:  "Scale-out systems: latency vs injection rate (uniform random)",
		Header: []string{"system", "routers", "scheme", "rate", "latency", "throughput", "popups", "saturated"},
	}
	summary := Table{
		ID:     "scale_summary",
		Title:  "Scale-out saturation summary",
		Header: []string{"system", "routers", "scheme", "sat_rate", "sat_throughput", "zero_load_latency"},
		Notes: []string{
			"UPP's recovery stays event-driven at scale; remote control polls every boundary it has held",
			"huge (8192 routers) is covered by BENCH_scale.json and the CI scale-smoke job",
		},
	}
	for _, sys := range ScaleSystems() {
		if sys.Label == "huge" {
			continue
		}
		sc := sys.Config
		for _, sch := range []SchemeName{SchemeRemoteControl, SchemeUPP} {
			spec := RunSpec{
				Scale:   &sc,
				Scheme:  sch,
				Pattern: traffic.UniformRandom{},
				Seed:    11,
				Dur:     dur,
			}
			label := fmt.Sprintf("%s-%s", sys.Label, sch)
			opts.Progress.log("scale: sweeping %s (%d routers)", label, sc.NumRouters())
			c, err := SweepRatesWith(spec, scaleRates(), label, opts)
			if err != nil {
				return nil, err
			}
			for _, pt := range c.Points {
				curves.AddRowf(sys.Label, sc.NumRouters(), string(sch),
					pt.Rate, pt.TotalLat, pt.Throughput, pt.Popups, pt.Saturated)
			}
			summary.AddRowf(sys.Label, sc.NumRouters(), string(sch),
				c.SaturationRate, c.SaturationThroughput, c.ZeroLoadLatency)
		}
	}
	return []Table{curves, summary}, nil
}
