package experiments

import (
	"testing"

	"uppnoc/internal/coherence"
	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// checkPoolQuiesced asserts the pool invariants that must hold once a
// network has fully drained: the freelist is structurally sound, every
// packet ever handed out came back, and recycling actually happened (so
// the soak exercised reuse, not just a cold pool).
func checkPoolQuiesced(t *testing.T, n *network.Network) {
	t.Helper()
	pool := n.PacketPool()
	if err := pool.Check(); err != nil {
		t.Fatalf("pool corrupt after drain: %v", err)
	}
	if live := pool.Stats.Live(); live != 0 {
		t.Fatalf("%d packets leaked (gets %d, puts %d)", live, pool.Stats.Gets, pool.Stats.Puts)
	}
	if pool.Stats.Reuses == 0 {
		t.Fatal("pool never recycled a packet — the soak is vacuous")
	}
}

// soakSynthetic runs a synthetic-traffic soak under the given scheme,
// sweeping the in-flight state for released packets every 500 cycles —
// the runtime equivalent of the uppdebug hot asserts, and the check
// that catches a reuse-after-release the moment it happens rather than
// as trace corruption thousands of cycles later.
func soakSynthetic(t *testing.T, sch network.Scheme, rate float64, cycles int) *network.Network {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	n, err := network.New(topo, network.DefaultConfig(), sch)
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, 7)
	for done := 0; done < cycles; done += 500 {
		g.Run(500)
		if err := n.CheckNoReleasedInFlight(); err != nil {
			t.Fatalf("after %d cycles: %v", done+500, err)
		}
	}
	g.SetRate(0)
	if err := n.Drain(60000, 5000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := n.CheckNoReleasedInFlight(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	checkPoolQuiesced(t, n)
	return n
}

// TestPoolSoak is the long-haul generation-safety test: baseline
// synthetic traffic, UPP at an overload rate where the popup protocol
// recycles packets mid-flight, and a full coherence workload — all with
// pooling on, all swept for stale-generation packets. CI runs it under
// -race so the checks double as a data-race probe over the recycled
// storage.
func TestPoolSoak(t *testing.T) {
	cycles := 30000
	scale := 0.1
	if testing.Short() {
		cycles = 6000
		scale = 0.03
	}
	t.Run("baseline", func(t *testing.T) {
		soakSynthetic(t, network.None{}, 0.05, cycles)
	})
	t.Run("upp_overload", func(t *testing.T) {
		upp := core.New(core.DefaultConfig())
		n := soakSynthetic(t, upp, 0.12, cycles)
		if n.Stats.UpwardPackets == 0 {
			t.Fatal("no popups fired; the soak never exercised recycling through the popup protocol")
		}
		if err := upp.UPPStateOK(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("coherence", func(t *testing.T) {
		w, err := coherence.BenchmarkByName("blackscholes")
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.MustBuild(topology.BaselineConfig())
		n, err := network.New(topo, network.DefaultConfig(), core.New(core.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := coherence.New(n, coherence.DefaultConfig(), w.Scale(scale), 99)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckNoReleasedInFlight(); err != nil {
			t.Fatal(err)
		}
		checkPoolQuiesced(t, n)
	})
}
