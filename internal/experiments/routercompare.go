package experiments

import (
	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/topology"
)

// RouterArchs returns the compared router microarchitectures in display
// order: the paper's input-queued pipeline, the output-queued variant,
// and the virtual-output-queued variant with ejection-first allocation.
func RouterArchs() []string {
	return []string{router.ArchIQ, router.ArchOQ, router.ArchVOQ}
}

// routerCompareWorkloads is the workload subset of the router comparison:
// the two collectives the acceptance comparison centers on plus the
// all-reduce at its default chunk size — enough to exercise sustained
// all-to-all pressure and the vertical links without the full table's
// runtime.
func routerCompareWorkloads() []string {
	return []string{"ring_allreduce", "ring_allreduce:flits=10", "all_to_all:flits=10"}
}

// RouterCompare runs the router-microarchitecture comparison: every
// compared scheme on every router variant (iq, oq, voq) at equal total
// buffer budget per port (router.BufferBudget; oq moves half of each
// input VC's depth into output staging, voq re-disciplines allocation
// over the same buffers). Completion time is the figure of merit; the
// budget column pins the equal-resource claim in the emitted table.
func RouterCompare(opts PoolOptions) ([]Table, error) {
	cfg := network.DefaultConfig()
	budget := router.BufferBudget(cfg.Router)
	table := Table{
		ID:    "router_compare",
		Title: "Router microarchitecture comparison at equal buffer budget",
		Header: []string{"workload", "scheme", "router", "budget", "completed",
			"finish_cycle", "messages", "avg_lat", "upward", "popups", "inj_holds"},
		Notes: []string{
			"iq/oq/voq at identical per-port flit-slot budgets (DESIGN.md sec. 12)",
			"closed-loop collectives: completion time is the figure of merit",
		},
	}
	var specs []WorkloadSpec
	for _, wl := range routerCompareWorkloads() {
		for _, sch := range ComparedSchemes() {
			for _, arch := range RouterArchs() {
				specs = append(specs, WorkloadSpec{
					Topo:       topology.BaselineConfig(),
					Scheme:     sch,
					Workload:   wl,
					Seed:       11,
					RouterArch: arch,
				})
			}
		}
	}
	opts.Progress.log("router_compare: %d runs (%d workloads x %d schemes x %d router archs)",
		len(specs), len(routerCompareWorkloads()), len(ComparedSchemes()), len(RouterArchs()))
	points, err := RunWorkloads(specs, opts)
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		table.AddRowf(pt.Workload, string(pt.Scheme), specs[i].RouterArch, budget, pt.Completed,
			int64(pt.FinishCycle), pt.Messages, pt.TotalLat, pt.Upward, pt.Popups, pt.InjectionHolds)
	}
	return []Table{table}, nil
}
