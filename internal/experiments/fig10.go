package experiments

import (
	"fmt"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// Fig10 reproduces the boundary-router sensitivity study: 2/4/8 boundary
// routers per chiplet, normalized latency and saturation throughput
// (normalized to composable routing with 1 VC and 4 boundary routers).
func Fig10(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "fig10",
		Title:  "Sensitivity to boundary routers per chiplet",
		Header: []string{"boundaries", "scheme", "vcs", "latency", "norm_latency", "sat_throughput", "norm_throughput"},
		Notes: []string{
			"normalized to composable routing, 1 VC, 4 boundary routers (the paper's baseline bar)",
			"paper: more boundary routers raise throughput and cut latency for every scheme; UPP stays best",
		},
	}
	type res struct {
		lat  float64
		thpt float64
	}
	results := map[string]res{}
	keyOf := func(b, vcs int, sch SchemeName) string { return fmt.Sprintf("%d/%d/%s", b, vcs, sch) }
	for _, b := range []int{2, 4, 8} {
		cfg := topology.BaselineConfig()
		cfg.BoundaryPerChiplet = b
		for _, vcs := range []int{1, 4} {
			for _, sch := range ComparedSchemes() {
				opts.Progress.log("fig10: boundaries=%d vcs=%d %s", b, vcs, sch)
				spec := RunSpec{
					Topo:           cfg,
					SchemeOverride: cachedScheme(cfg, sch),
					VCsPerVNet:     vcs,
					Pattern:        traffic.UniformRandom{},
					Seed:           23,
					Dur:            dur,
				}
				c, err := SweepRatesWith(spec, DefaultRates(), keyOf(b, vcs, sch), opts)
				if err != nil {
					return nil, err
				}
				// Low-load latency at the first point; saturation from the
				// sweep.
				results[keyOf(b, vcs, sch)] = res{lat: c.ZeroLoadLatency, thpt: c.SaturationThroughput}
			}
		}
	}
	base := results[keyOf(4, 1, SchemeComposable)]
	for _, b := range []int{2, 4, 8} {
		for _, vcs := range []int{1, 4} {
			for _, sch := range ComparedSchemes() {
				r := results[keyOf(b, vcs, sch)]
				t.AddRowf(b, string(sch), vcs, r.lat, r.lat/base.lat, r.thpt, r.thpt/base.thpt)
			}
		}
	}
	return []Table{t}, nil
}

// Fig11 reproduces the faulty-system study: UPP on systems with 0..20
// faulty links (up*/down* local routing), latency curves per VC count.
// The paper omits the baselines here: composable's design-time search
// cannot rerun online and remote control's permission tree is hard-wired.
func Fig11(dur Durations, opts PoolOptions) ([]Table, error) {
	curves := Table{
		ID:     "fig11",
		Title:  "UPP on faulty systems (latency vs injection rate)",
		Header: []string{"faulty_links", "vcs", "rate", "latency", "throughput", "saturated"},
		Notes: []string{
			"paper: saturation throughput degrades gracefully and latency rises slightly with more faults",
		},
	}
	summary := Table{
		ID:     "fig11_summary",
		Title:  "UPP faulty-system saturation summary",
		Header: []string{"faulty_links", "vcs", "sat_throughput", "low_load_latency", "upward_packets_at_sat"},
	}
	for _, vcs := range []int{1, 4} {
		for _, faults := range []int{0, 1, 5, 10, 15, 20} {
			opts.Progress.log("fig11: faults=%d vcs=%d", faults, vcs)
			spec := RunSpec{
				Topo:       topology.BaselineConfig(),
				Scheme:     SchemeUPP,
				VCsPerVNet: vcs,
				Pattern:    traffic.UniformRandom{},
				Seed:       31,
				Dur:        dur,
				Faults:     faults,
				FaultSeed:  1234,
				UseUpDown:  true,
			}
			c, err := SweepRatesWith(spec, DefaultRates(), fmt.Sprintf("faults=%d", faults), opts)
			if err != nil {
				return nil, err
			}
			var upAtSat uint64
			for _, pt := range c.Points {
				curves.AddRowf(faults, vcs, pt.Rate, pt.TotalLat, pt.Throughput, pt.Saturated)
				if !pt.Saturated {
					upAtSat = pt.Upward
				}
			}
			summary.AddRowf(faults, vcs, c.SaturationThroughput, c.ZeroLoadLatency, upAtSat)
		}
	}
	return []Table{curves, summary}, nil
}

// Fig13 reproduces the detection-threshold sensitivity study: thresholds
// of 20/100/1000 cycles barely move the saturation throughput, and the
// fraction of packets selected as upward packets stays tiny.
func Fig13(dur Durations, opts PoolOptions) ([]Table, error) {
	curves := Table{
		ID:     "fig13",
		Title:  "UPP detection-threshold sensitivity",
		Header: []string{"threshold", "vcs", "rate", "latency", "throughput", "upward_pct", "saturated"},
		Notes: []string{
			"paper: the threshold has little impact on saturation throughput",
			"paper: upward packets stay under ~0.4% of packets with 4 VCs, higher but harmless with 1 VC",
		},
	}
	summary := Table{
		ID:     "fig13_summary",
		Title:  "Saturation throughput per threshold",
		Header: []string{"threshold", "vcs", "sat_throughput"},
	}
	for _, vcs := range []int{1, 4} {
		for _, th := range []int{20, 100, 1000} {
			opts.Progress.log("fig13: threshold=%d vcs=%d", th, vcs)
			spec := RunSpec{
				Topo: topology.BaselineConfig(),
				SchemeOverride: func(t *topology.Topology) (network.Scheme, error) {
					return UPPWithThreshold(th), nil
				},
				VCsPerVNet: vcs,
				Pattern:    traffic.UniformRandom{},
				Seed:       47,
				Dur:        dur,
			}
			c, err := SweepRatesWith(spec, DefaultRates(), fmt.Sprintf("th=%d", th), opts)
			if err != nil {
				return nil, err
			}
			for _, pt := range c.Points {
				upPct := 0.0
				if pt.Packets > 0 {
					upPct = 100 * float64(pt.Upward) / float64(pt.Packets)
				}
				curves.AddRowf(th, vcs, pt.Rate, pt.TotalLat, pt.Throughput, fmt.Sprintf("%.3f%%", upPct), pt.Saturated)
			}
			summary.AddRowf(th, vcs, c.SaturationThroughput)
		}
	}
	return []Table{curves, summary}, nil
}
