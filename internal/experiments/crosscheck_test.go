package experiments

import (
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestEverySchemeEveryPatternDrains is the cross-product liveness check:
// all three schemes under all four synthetic patterns, pushed past
// saturation, must deliver every packet and return every resource. This is
// the single strongest guard against a scheme that works only on the
// pattern it was debugged with.
func TestEverySchemeEveryPatternDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product stress")
	}
	for _, sch := range ComparedSchemes() {
		for _, pat := range traffic.Patterns() {
			topo := topology.MustBuild(topology.BaselineConfig())
			scheme, err := cachedScheme(topology.BaselineConfig(), sch)(topo)
			if err != nil {
				t.Fatal(err)
			}
			n := network.MustNew(topo, network.DefaultConfig(), scheme)
			g := traffic.NewGenerator(n, pat, 0.09, 7)
			g.Run(10000)
			g.SetRate(0)
			if err := n.Drain(600000, 60000); err != nil {
				t.Fatalf("%s under %s: %v", sch, pat.Name(), err)
			}
			if err := n.CheckQuiescent(); err != nil {
				t.Fatalf("%s under %s: %v", sch, pat.Name(), err)
			}
		}
	}
}
