package experiments

import (
	"fmt"
	"strings"
)

// AsciiChart renders latency-vs-rate curves as a terminal plot — the
// visual shape of Fig. 7 without leaving the console. Each curve gets a
// symbol; saturated points cap at the top row.
func AsciiChart(title string, curves []Curve, symbols string) string {
	const (
		rows = 16
		maxY = latencyCap
	)
	if len(curves) == 0 {
		return ""
	}
	// X axis: union of all rates, in order.
	rateSet := map[float64]bool{}
	var rates []float64
	for _, c := range curves {
		for _, pt := range c.Points {
			if !rateSet[pt.Rate] {
				rateSet[pt.Rate] = true
				rates = append(rates, pt.Rate)
			}
		}
	}
	sortFloats(rates)
	cols := len(rates)
	colOf := func(rate float64) int {
		for i, r := range rates {
			if r == rate {
				return i
			}
		}
		return -1
	}

	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", cols*2))
	}
	for ci, c := range curves {
		sym := byte('*')
		if ci < len(symbols) {
			sym = symbols[ci]
		}
		for _, pt := range c.Points {
			x := colOf(pt.Rate)
			if x < 0 {
				continue
			}
			lat := pt.TotalLat
			if lat > maxY {
				lat = maxY
			}
			y := rows - 1 - int(lat/maxY*float64(rows-1))
			if y < 0 {
				y = 0
			}
			pos := x * 2
			if grid[y][pos] == ' ' {
				grid[y][pos] = sym
			} else {
				grid[y][pos+1] = sym // overlap: print beside
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (latency cycles vs offered flits/cycle/node)\n", title)
	for y := 0; y < rows; y++ {
		label := "      "
		switch y {
		case 0:
			label = fmt.Sprintf("%5.0f ", maxY)
		case rows / 2:
			label = fmt.Sprintf("%5.0f ", maxY/2)
		case rows - 1:
			label = "    0 "
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(grid[y]))
	}
	b.WriteString("      +" + strings.Repeat("-", cols*2) + "\n")
	fmt.Fprintf(&b, "       %.3f%s%.3f\n", rates[0], strings.Repeat(" ", max(1, cols*2-12)), rates[len(rates)-1])
	var legend []string
	for ci, c := range curves {
		sym := byte('*')
		if ci < len(symbols) {
			sym = symbols[ci]
		}
		legend = append(legend, fmt.Sprintf("%c=%s", sym, c.Label))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Join(legend, "  "))
	return b.String()
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
