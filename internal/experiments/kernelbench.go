package experiments

import (
	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// KernelBench is a warmed-up baseline-system UPP simulation prepared for
// cycle-kernel benchmarking: Run advances whole cycles, so a benchmark
// that maps b.N to cycles reads ns/op directly as ns per simulated cycle.
// cmd/benchjson and the BenchmarkKernel* benchmarks share it so the
// recorded perf trajectory measures exactly what the benchmarks do.
type KernelBench struct {
	g   *traffic.Generator
	net *network.Network
}

// NewKernelBench builds a baseline system under the given cycle kernel
// and offered load, then runs a warmup so the measured window sees
// steady-state occupancy rather than a cold, empty network (which would
// flatter the active-set kernel).
func NewKernelBench(kernel string, rate float64) (*KernelBench, error) {
	return NewKernelBenchPool(kernel, rate, false)
}

// NewKernelBenchPool is NewKernelBench with explicit control over packet
// pooling — the before/after axis of the allocation benchmarks
// (cmd/benchjson's BENCH_alloc.json) and the pooled-vs-unpooled
// equivalence tests.
func NewKernelBenchPool(kernel string, rate float64, disablePool bool) (*KernelBench, error) {
	return newKernelBench(kernel, "", rate, disablePool)
}

// NewKernelBenchArch is NewKernelBench with an explicit router
// microarchitecture ("iq", "oq", "voq") — the router axis of
// cmd/benchjson's BENCH_router.json and the per-arch steady-state
// allocation pins.
func NewKernelBenchArch(kernel, arch string, rate float64) (*KernelBench, error) {
	return newKernelBench(kernel, arch, rate, false)
}

func newKernelBench(kernel, arch string, rate float64, disablePool bool) (*KernelBench, error) {
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	cfg.RouterArch = arch
	cfg.DisablePool = disablePool
	n, err := network.New(topo, cfg, core.New(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	kb := &KernelBench{g: traffic.NewGenerator(n, traffic.UniformRandom{}, rate, 99), net: n}
	kb.g.Run(2000)
	return kb, nil
}

// NewScaleBench builds a scale-out system (topology.BuildScale) under the
// given cycle kernel, shard count and offered load — the measurement
// behind cmd/benchjson's BENCH_scale.json shard-scaling curves. Shards is
// passed straight to network.Config.Shards (0 = UPP_SHARDS, then
// GOMAXPROCS) and is ignored by the non-parallel kernels. The warmup is
// shorter than the baseline bench's (the per-cycle cost of a 2k-8k router
// system makes 2000 warmup cycles dominate the run) but long enough for
// several zero-load traversals of the largest mesh, so the measured
// window still sees steady-state occupancy.
func NewScaleBench(kernel string, sc topology.ScaleConfig, shards int, rate float64) (*KernelBench, error) {
	topo, err := topology.BuildScale(sc)
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	cfg.Shards = shards
	n, err := network.New(topo, cfg, core.New(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	kb := &KernelBench{g: traffic.NewGenerator(n, traffic.UniformRandom{}, rate, 99), net: n}
	kb.g.Run(1000)
	return kb, nil
}

// Network exposes the benched network (pool preallocation and stats for
// the allocation harness).
func (kb *KernelBench) Network() *network.Network { return kb.net }

// Run advances the simulation the given number of cycles.
func (kb *KernelBench) Run(cycles int) { kb.g.Run(cycles) }
