package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// This file is the parallel sweep engine. Every run described by a RunSpec
// is an independent, seed-driven simulation: all randomness derives from
// the spec's Seed/FaultSeed, the topology and network are built fresh per
// run, and the only cross-run state is the mutex-guarded (and immutable
// once built) composable-routing table cache. That independence makes the
// sweep layer embarrassingly parallel, and it is what the determinism
// guarantee below rests on: RunAll over the same specs produces
// bit-identical Points at any worker count, including jobs=1 and the
// plain serial loop (enforced by TestParallelSweepDeterminism).

// Progress receives live status lines from long runners (may be nil).
type Progress func(format string, args ...interface{})

func (p Progress) log(format string, args ...interface{}) {
	if p != nil {
		p(format, args...)
	}
}

// PoolOptions configures RunAll and the runners built on it.
type PoolOptions struct {
	// Jobs is the worker count; <= 0 selects DefaultJobs().
	Jobs int
	// Progress receives the runners' status lines (may be nil). Runners
	// may call it from worker goroutines, so implementations must be safe
	// for concurrent use (a plain fmt.Fprintf to stderr is).
	Progress Progress
	// OnRun, when non-nil, is called after each run completes with the
	// number of finished runs and the batch size. Calls are serialized.
	OnRun func(done, total int)
}

// jobs resolves the effective worker count.
func (o PoolOptions) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return DefaultJobs()
}

// DefaultJobs returns the worker count used when PoolOptions.Jobs is
// unset: the UPP_JOBS environment variable if it parses as a positive
// integer, otherwise GOMAXPROCS.
func DefaultJobs() int {
	if s := os.Getenv("UPP_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// RunError records one failed spec within a batch.
type RunError struct {
	Index int // position in the specs slice passed to RunAll
	Err   error
}

// Error implements error.
func (e *RunError) Error() string { return fmt.Sprintf("spec %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// BatchError aggregates the per-run failures of one RunAll batch. The
// successful runs' Points are still returned; failed indices hold zero
// Points.
type BatchError struct {
	Failed []*RunError
	Total  int
}

// Error implements error.
func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiments: %d of %d runs failed", len(e.Failed), e.Total)
	for i, re := range e.Failed {
		if i == 3 {
			fmt.Fprintf(&b, "; and %d more", len(e.Failed)-i)
			break
		}
		fmt.Fprintf(&b, "; %v", re)
	}
	return b.String()
}

// Unwrap exposes the individual run errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, re := range e.Failed {
		errs[i] = re
	}
	return errs
}

// forEachIndex runs fn(0..n-1) across at most jobs concurrent workers and
// waits for all of them. fn must confine its writes to index-addressed
// slots (no two workers share an index).
func forEachIndex(n, jobs int, fn func(i int)) {
	if n == 0 {
		return
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RunAll executes every spec across a bounded worker pool and returns the
// Points in input order. A failed run does not abort the batch: its slot
// holds a zero Point and the failure is reported in the returned
// *BatchError (nil when every run succeeded). The result is bit-identical
// at any worker count because each run is self-contained.
func RunAll(specs []RunSpec, opts PoolOptions) ([]Point, error) {
	points := make([]Point, len(specs))
	errs := make([]error, len(specs))
	var (
		mu   sync.Mutex
		done int
	)
	forEachIndex(len(specs), opts.jobs(), func(i int) {
		points[i], errs[i] = Run(specs[i])
		if opts.OnRun != nil {
			mu.Lock()
			done++
			opts.OnRun(done, len(specs))
			mu.Unlock()
		}
	})
	var failed []*RunError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &RunError{Index: i, Err: err})
		}
	}
	if failed != nil {
		return points, &BatchError{Failed: failed, Total: len(specs)}
	}
	return points, nil
}
