package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// cacheDelta runs f and returns how much each cache counter moved.
func cacheDelta(f func()) (hits, misses, warmHits, warmMisses uint64) {
	h0, m0, wh0, wm0 := CacheCounters()
	f()
	h1, m1, wh1, wm1 := CacheCounters()
	return h1 - h0, m1 - m0, wh1 - wh0, wm1 - wm0
}

// TestResultCacheBitIdentity is the cache acceptance test: with
// UPP_CACHE_DIR set, a cold sweep populates the cache, a repeat sweep is
// served entirely from it, and a warm-started sweep (results evicted,
// post-warmup checkpoints kept) re-measures from the checkpoints — all
// three producing the exact Curve an uncached sweep produces.
func TestResultCacheBitIdentity(t *testing.T) {
	spec := RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Seed:       11,
		Dur:        Durations{Warmup: 300, Measure: 600},
	}
	rates := []float64{0.02, 0.05, 0.08}
	sweep := func() Curve {
		t.Helper()
		c, err := SweepRates(spec, rates, "cache-test")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	t.Setenv("UPP_CACHE_DIR", "")
	ref := sweep()
	if len(ref.Points) != len(rates) {
		t.Fatalf("reference sweep returned %d points, want %d", len(ref.Points), len(rates))
	}

	dir := t.TempDir()
	t.Setenv("UPP_CACHE_DIR", dir)

	var cold Curve
	_, misses, _, warmMisses := cacheDelta(func() { cold = sweep() })
	if !reflect.DeepEqual(cold, ref) {
		t.Fatalf("cold cached sweep diverged from uncached reference:\nref:  %+v\ncold: %+v", ref, cold)
	}
	if misses != uint64(len(rates)) || warmMisses != uint64(len(rates)) {
		t.Fatalf("cold sweep: %d misses / %d warm misses, want %d of each", misses, warmMisses, len(rates))
	}

	var hit Curve
	hits, misses, _, _ := cacheDelta(func() { hit = sweep() })
	if !reflect.DeepEqual(hit, ref) {
		t.Fatalf("cache-hit sweep diverged from uncached reference:\nref: %+v\nhit: %+v", ref, hit)
	}
	if hits != uint64(len(rates)) || misses != 0 {
		t.Fatalf("repeat sweep: %d hits / %d misses, want %d / 0", hits, misses, len(rates))
	}

	// Evict the results but keep the warm-start checkpoints: the sweep
	// must re-measure from the post-warmup snapshots and still match.
	if err := os.RemoveAll(filepath.Join(dir, "results")); err != nil {
		t.Fatal(err)
	}
	var warm Curve
	_, misses, warmHits, _ := cacheDelta(func() { warm = sweep() })
	if !reflect.DeepEqual(warm, ref) {
		t.Fatalf("warm-started sweep diverged from uncached reference:\nref:  %+v\nwarm: %+v", ref, warm)
	}
	if misses != uint64(len(rates)) || warmHits != uint64(len(rates)) {
		t.Fatalf("warm sweep: %d misses / %d warm hits, want %d of each", misses, warmHits, len(rates))
	}

	// UPP_CACHE_WARM=0 opts out of warm-starting but keeps result caching:
	// evict again and the sweep must run fully cold, still bit-identical.
	if err := os.RemoveAll(filepath.Join(dir, "results")); err != nil {
		t.Fatal(err)
	}
	t.Setenv("UPP_CACHE_WARM", "0")
	var optOut Curve
	_, misses, warmHits, warmMisses = cacheDelta(func() { optOut = sweep() })
	if !reflect.DeepEqual(optOut, ref) {
		t.Fatalf("warm-disabled sweep diverged from uncached reference:\nref: %+v\ngot: %+v", ref, optOut)
	}
	if misses != uint64(len(rates)) || warmHits != 0 || warmMisses != 0 {
		t.Fatalf("warm-disabled sweep: %d misses / %d warm hits / %d warm misses, want %d / 0 / 0",
			misses, warmHits, warmMisses, len(rates))
	}
}

// TestCacheUncacheableSpecs pins the canonicalization refusals: a spec
// with a SchemeOverride closure, a tracer or an unregistered pattern has
// no content address, so Run must simulate and leave the cache untouched.
func TestCacheUncacheableSpecs(t *testing.T) {
	t.Setenv("UPP_CACHE_DIR", t.TempDir())
	spec := RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Rate:       0.02,
		Seed:       11,
		Dur:        Durations{Warmup: 200, Measure: 300},
	}
	spec.SchemeOverride = cachedScheme(spec.Topo, SchemeUPP)
	hits, misses, warmHits, warmMisses := cacheDelta(func() {
		if _, err := Run(spec); err != nil {
			t.Fatal(err)
		}
	})
	if hits != 0 || misses != 0 || warmHits != 0 || warmMisses != 0 {
		t.Fatalf("uncacheable spec touched the cache: hits=%d misses=%d warmHits=%d warmMisses=%d",
			hits, misses, warmHits, warmMisses)
	}
	if _, _, ok := canonicalSpec(spec); ok {
		t.Fatal("canonicalSpec accepted a SchemeOverride spec")
	}
	spec.SchemeOverride = nil
	spec.TraceLimit = 1
	if _, _, ok := canonicalSpec(spec); ok {
		t.Fatal("canonicalSpec accepted a traced spec")
	}
}

// TestCacheRejectsMismatchedEntry pins the exact-spec verification: a
// result file whose stored spec bytes differ from the canonical spec (a
// hash collision, a foreign or hand-edited file) is a miss, never a wrong
// answer.
func TestCacheRejectsMismatchedEntry(t *testing.T) {
	dir := t.TempDir()
	_, canonical, ok := canonicalSpec(RunSpec{
		Topo:    topology.BaselineConfig(),
		Scheme:  SchemeUPP,
		Pattern: traffic.UniformRandom{},
		Rate:    0.02,
		Seed:    11,
		Dur:     Durations{Warmup: 100, Measure: 100},
	})
	if !ok {
		t.Fatal("spec should be canonicalizable")
	}
	hash := cacheHash(canonical)
	storeCachedPoint(dir, hash, []byte(`{"format":1,"tampered":true}`), Point{Rate: 99})
	if _, ok := loadCachedPoint(dir, hash, canonical); ok {
		t.Fatal("cache served a result whose stored spec does not match")
	}
	storeCachedPoint(dir, hash, canonical, Point{Rate: 0.02})
	if pt, ok := loadCachedPoint(dir, hash, canonical); !ok || pt.Rate != 0.02 {
		t.Fatalf("exact-match entry not served back: ok=%v pt=%+v", ok, pt)
	}
}
