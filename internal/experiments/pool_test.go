package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// poolDur keeps the determinism batches fast enough to run unconditionally
// (including under -race in CI) while still moving real traffic.
var poolDur = Durations{Warmup: 200, Measure: 800}

// mixedSpecs is a batch covering every scheme plus the feature corners:
// faults with up*/down* routing, adaptive odd-even routing, and virtual
// cut-through. Determinism must hold across all of them because each run
// derives all randomness from its own Seed/FaultSeed.
func mixedSpecs() []RunSpec {
	base := topology.BaselineConfig()
	return []RunSpec{
		{Topo: base, Scheme: SchemeComposable, VCsPerVNet: 1,
			Pattern: traffic.UniformRandom{}, Rate: 0.03, Seed: 11, Dur: poolDur},
		{Topo: base, Scheme: SchemeRemoteControl, VCsPerVNet: 1,
			Pattern: traffic.Transpose{}, Rate: 0.02, Seed: 12, Dur: poolDur},
		{Topo: base, Scheme: SchemeUPP, VCsPerVNet: 4,
			Pattern: traffic.UniformRandom{}, Rate: 0.05, Seed: 13, Dur: poolDur},
		{Topo: base, Scheme: SchemeNone, VCsPerVNet: 1,
			Pattern: traffic.UniformRandom{}, Rate: 0.005, Seed: 14, Dur: poolDur},
		{Topo: base, Scheme: SchemeUPP, VCsPerVNet: 1,
			Pattern: traffic.UniformRandom{}, Rate: 0.02, Seed: 15, Dur: poolDur,
			Faults: 6, FaultSeed: 9, UseUpDown: true},
		{Topo: base, Scheme: SchemeUPP, VCsPerVNet: 1,
			Pattern: traffic.BitComplement{}, Rate: 0.02, Seed: 16, Dur: poolDur,
			Adaptive: true},
		{Topo: base, Scheme: SchemeUPP, VCsPerVNet: 1,
			Pattern: traffic.UniformRandom{}, Rate: 0.03, Seed: 17, Dur: poolDur,
			VCT: true},
	}
}

// TestParallelSweepDeterminism is the headline guarantee of the sweep
// engine: a serial loop over Run and RunAll at 1, 4 and 16 workers must
// produce bit-identical Points for the same specs. It runs in -short mode
// on purpose — CI's race-detector step runs `go test -race -short ./...`
// and this test is the one that pushes concurrent runs through every
// scheme.
func TestParallelSweepDeterminism(t *testing.T) {
	specs := mixedSpecs()
	serial := make([]Point, len(specs))
	for i, spec := range specs {
		pt, err := Run(spec)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = pt
	}
	for _, jobs := range []int{1, 4, 16} {
		got, err := RunAll(specs, PoolOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(serial, got) {
			for i := range serial {
				if serial[i] != got[i] {
					t.Errorf("jobs=%d spec %d diverges:\nserial   %+v\nparallel %+v",
						jobs, i, serial[i], got[i])
				}
			}
			t.Fatalf("jobs=%d: parallel points differ from serial", jobs)
		}
	}
}

// TestSweepRatesWithMatchesSerial checks that the wave-parallel sweep
// reproduces the serial sweep exactly, including the stop-two-points-past
// -saturation truncation (points a wave computes beyond the serial
// stopping index must be discarded).
func TestSweepRatesWithMatchesSerial(t *testing.T) {
	spec := RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Seed:       1,
		Dur:        Durations{Warmup: 500, Measure: 2000},
	}
	rates := []float64{0.02, 0.03, 0.30, 0.35, 0.40, 0.45}
	want, err := SweepRates(spec, rates, "serial")
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 16} {
		got, err := SweepRatesWith(spec, rates, "serial", PoolOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("jobs=%d sweep differs:\nserial   %+v\nparallel %+v", jobs, want, got)
		}
	}
}

// TestRunAllPartialFailure: one bad spec must not poison the batch — the
// other runs' Points are still returned and the aggregate error names the
// failed index.
func TestRunAllPartialFailure(t *testing.T) {
	base := topology.BaselineConfig()
	good := RunSpec{Topo: base, Scheme: SchemeUPP, VCsPerVNet: 1,
		Pattern: traffic.UniformRandom{}, Rate: 0.02, Seed: 1, Dur: poolDur}
	cases := []struct {
		name    string
		bad     RunSpec
		wantErr string
	}{
		{
			name: "unknown scheme",
			bad: RunSpec{Topo: base, Scheme: "bogus", VCsPerVNet: 1,
				Pattern: traffic.UniformRandom{}, Rate: 0.02, Seed: 1, Dur: poolDur},
			wantErr: "unknown scheme",
		},
		{
			name: "impossible fault count",
			bad: RunSpec{Topo: base, Scheme: SchemeUPP, VCsPerVNet: 1,
				Pattern: traffic.UniformRandom{}, Rate: 0.02, Seed: 1, Dur: poolDur,
				Faults: 100000, FaultSeed: 3},
			wantErr: "could only fault",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			specs := []RunSpec{good, tc.bad, good}
			pts, err := RunAll(specs, PoolOptions{Jobs: 2})
			if err == nil {
				t.Fatal("bad spec did not surface an error")
			}
			var batch *BatchError
			if !errors.As(err, &batch) {
				t.Fatalf("error is %T, want *BatchError: %v", err, err)
			}
			if batch.Total != 3 || len(batch.Failed) != 1 || batch.Failed[0].Index != 1 {
				t.Fatalf("aggregation wrong: %+v", batch)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if pts[1] != (Point{}) {
				t.Fatalf("failed slot holds a non-zero point: %+v", pts[1])
			}
			for _, i := range []int{0, 2} {
				if pts[i].Packets == 0 || pts[i].TotalLat <= 0 {
					t.Fatalf("healthy run %d poisoned by the failure: %+v", i, pts[i])
				}
			}
			if pts[0] != pts[2] {
				t.Fatalf("identical specs diverged within the batch: %+v vs %+v", pts[0], pts[2])
			}
		})
	}
}

// TestSweepRatesWithPartialFailure pins the serial error semantics of the
// wave-parallel sweep: the curve keeps the points before the failing rate
// and the error wraps the failing rate's cause.
func TestSweepRatesWithPartialFailure(t *testing.T) {
	spec := RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Seed:       1,
		Dur:        poolDur,
		// Faults beyond what the mesh can absorb makes every run fail.
		Faults:    100000,
		FaultSeed: 3,
		UseUpDown: true,
	}
	c, err := SweepRatesWith(spec, []float64{0.02, 0.03}, "doomed", PoolOptions{Jobs: 2})
	if err == nil {
		t.Fatal("sweep of failing specs succeeded")
	}
	if !strings.Contains(err.Error(), "sweep doomed rate 0.0200") {
		t.Fatalf("error %q does not name the first failing rate", err)
	}
	if len(c.Points) != 0 {
		t.Fatalf("curve kept %d points from failed runs", len(c.Points))
	}
}

// TestRunAllProgress checks the completion callback: called once per run,
// serialized, with a monotonically increasing done count.
func TestRunAllProgress(t *testing.T) {
	specs := mixedSpecs()[:4]
	var calls []int
	_, err := RunAll(specs, PoolOptions{
		Jobs: 4,
		OnRun: func(done, total int) {
			if total != len(specs) {
				t.Errorf("total = %d, want %d", total, len(specs))
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(specs) {
		t.Fatalf("OnRun called %d times, want %d", len(calls), len(specs))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("done counts not monotone: %v", calls)
		}
	}
}

// TestDefaultJobs covers the UPP_JOBS override and its fallbacks.
func TestDefaultJobs(t *testing.T) {
	t.Setenv("UPP_JOBS", "3")
	if got := DefaultJobs(); got != 3 {
		t.Fatalf("UPP_JOBS=3 -> %d", got)
	}
	for _, bogus := range []string{"0", "-2", "many"} {
		t.Setenv("UPP_JOBS", bogus)
		if got := DefaultJobs(); got < 1 {
			t.Fatalf("UPP_JOBS=%q -> %d, want GOMAXPROCS fallback", bogus, got)
		}
	}
	t.Setenv("UPP_JOBS", "")
	if got := DefaultJobs(); got < 1 {
		t.Fatalf("unset UPP_JOBS -> %d", got)
	}
	if got := (PoolOptions{Jobs: 5}).jobs(); got != 5 {
		t.Fatalf("explicit Jobs ignored: %d", got)
	}
}

// FuzzSeedDeterminism fuzzes RunSpec seeds (the internal/message fuzz
// harness style): any (Seed, FaultSeed) pair must produce the same Point
// when run twice, and fault injection must either fail both times or
// succeed both times.
func FuzzSeedDeterminism(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(0))
	f.Add(uint64(11), uint64(1234), uint8(3))
	f.Add(uint64(0xdeadbeef), uint64(0), uint8(1))
	fuzzDur := Durations{Warmup: 100, Measure: 400}
	f.Fuzz(func(t *testing.T, seed, faultSeed uint64, faults uint8) {
		spec := RunSpec{
			Topo:       topology.BaselineConfig(),
			Scheme:     SchemeUPP,
			VCsPerVNet: 1,
			Pattern:    traffic.UniformRandom{},
			Rate:       0.02,
			Seed:       seed,
			FaultSeed:  faultSeed,
			Faults:     int(faults % 8),
			Dur:        fuzzDur,
		}
		a, errA := Run(spec)
		b, errB := Run(spec)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error nondeterminism: %v vs %v", errA, errB)
		}
		if a != b {
			t.Fatalf("same spec, different points:\n%+v\n%+v", a, b)
		}
	})
}
