package experiments

import (
	"fmt"

	"uppnoc/internal/composable"
	"uppnoc/internal/topology"
)

// Fig2 reproduces the spirit of the paper's Fig. 2(a): the unidirectional
// turn restrictions the composable-routing design-time search places on
// each chiplet's boundary routers. (The exact set differs from the paper's
// illustration — the search is a heuristic — but the character matches:
// a handful of vertical-link turns forbidden per chiplet, which is what
// costs composable routing its path diversity.)
func Fig2(opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "fig2",
		Title:  "Composable routing: boundary-router turn restrictions found by the design-time search",
		Header: []string{"chiplet", "boundary_router", "restricted_turn"},
	}
	topo := topology.MustBuild(topology.BaselineConfig())
	opts.Progress.log("fig2: running the restriction search")
	tb, err := composable.BuildTables(topo)
	if err != nil {
		return nil, err
	}
	for _, turn := range tb.Restrictions {
		n := topo.Node(turn.Node)
		t.AddRow(
			fmt.Sprintf("%d", n.Chiplet),
			fmt.Sprintf("%d (%d,%d)", turn.Node, n.X, n.Y),
			fmt.Sprintf("%s -> %s", n.Ports[turn.In].Dir, n.Ports[turn.Out].Dir),
		)
	}
	t.Notes = []string{
		fmt.Sprintf("%d unidirectional restrictions placed (the paper's illustration shows 8 per chiplet pattern)", len(tb.Restrictions)),
		"every restriction sits on a boundary router — the modularity requirement of composable routing",
	}
	return []Table{t}, nil
}
