package experiments

import (
	"fmt"

	"uppnoc/internal/coherence"
	"uppnoc/internal/network"
	"uppnoc/internal/power"
	"uppnoc/internal/topology"
)

// FullSystemResult is one coherence run's outcome.
type FullSystemResult struct {
	Benchmark string
	Scheme    SchemeName
	VCs       int
	Runtime   int64
	Upward    uint64
	Packets   uint64
	EnergyJ   float64
}

// RunFullSystem executes one benchmark profile under one scheme.
func RunFullSystem(bench coherence.Workload, sch SchemeName, vcs int, seed uint64) (FullSystemResult, error) {
	sysCfg := topology.BaselineConfig()
	topo, err := topology.Build(sysCfg)
	if err != nil {
		return FullSystemResult{}, err
	}
	scheme, err := cachedScheme(sysCfg, sch)(topo)
	if err != nil {
		return FullSystemResult{}, err
	}
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = vcs
	cfg.Seed = seed
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		return FullSystemResult{}, err
	}
	sys, err := coherence.New(n, coherence.DefaultConfig(), bench, seed+13)
	if err != nil {
		return FullSystemResult{}, err
	}
	runtime, err := sys.Run(30_000_000)
	if err != nil {
		return FullSystemResult{}, fmt.Errorf("%s under %s: %w", bench.Name, sch, err)
	}
	nChiplet := len(topo.Cores())
	nInterposer := len(topo.Interposer)
	breakdown := power.Estimate(power.NetworkDescription{
		ChipletRouters:    nChiplet,
		InterposerRouters: nInterposer,
		VCsPerVNet:        vcs,
		Scheme:            string(sch),
	}, int64(runtime), n.RouterStats(), n.Stats.SignalsSent)
	return FullSystemResult{
		Benchmark: bench.Name,
		Scheme:    sch,
		VCs:       vcs,
		Runtime:   int64(runtime),
		Upward:    n.Stats.UpwardPackets,
		Packets:   n.Stats.EjectedPackets,
		EnergyJ:   breakdown.Total(),
	}, nil
}

// FullSystem reproduces Figs. 8, 12 and 15 in one pass: per-benchmark
// runtime (normalized to composable), detected upward packets, and
// normalized energy, for 1 and 4 VCs per VNet.
//
// scale shrinks each benchmark's access quota (1.0 = the calibrated full
// profile); the normalized comparisons are stable across scales.
func FullSystem(scale float64, opts PoolOptions) ([]Table, error) {
	return fullSystemOver(coherence.Benchmarks(), scale, opts)
}

// FullSystemSubset runs the full-system figures over a named subset of
// benchmarks (tests and quick looks).
func FullSystemSubset(names []string, scale float64, opts PoolOptions) ([]Table, error) {
	var benches []coherence.Workload
	for _, name := range names {
		w, err := coherence.BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		benches = append(benches, w)
	}
	return fullSystemOver(benches, scale, opts)
}

func fullSystemOver(benchmarks []coherence.Workload, scale float64, opts PoolOptions) ([]Table, error) {
	fig8 := Table{
		ID:     "fig8",
		Title:  "Normalized full-system runtime (PARSEC + SPLASH-2 profiles)",
		Header: []string{"benchmark", "vcs", "composable", "remote_control", "upp", "upp_vs_composable"},
		Notes: []string{
			"paper: UPP cuts runtime by 5.7%~10.3% (1 VC) and 3.1%~4.6% (4 VCs) on average vs composable",
		},
	}
	fig12 := Table{
		ID:     "fig12",
		Title:  "Detected upward packets per benchmark (UPP)",
		Header: []string{"benchmark", "vcs", "upward_packets", "total_packets", "fraction"},
		Notes: []string{
			"paper: upward packets are <0.01% of packets and drop sharply from 1 VC to 4 VCs",
		},
	}
	fig15 := Table{
		ID:     "fig15",
		Title:  "Normalized energy consumption",
		Header: []string{"benchmark", "vcs", "composable", "remote_control", "upp"},
		Notes: []string{
			"paper: leakage dominates, so normalized energy tracks normalized runtime; UPP lowest on average",
		},
	}
	var geoRuntime, geoEnergy [2]struct {
		logSum map[SchemeName]float64
		n      int
	}
	for i := range geoRuntime {
		geoRuntime[i].logSum = map[SchemeName]float64{}
		geoEnergy[i].logSum = map[SchemeName]float64{}
	}

	// Every (benchmark, vcs, scheme) run is self-contained, so the grid
	// fans across the pool; the tables are then assembled serially in the
	// original order.
	type job struct {
		bench coherence.Workload
		vcs   int
		sch   SchemeName
	}
	var grid []job
	for _, bench := range benchmarks {
		b := bench.Scale(scale)
		for _, vcs := range []int{1, 4} {
			for _, sch := range ComparedSchemes() {
				grid = append(grid, job{b, vcs, sch})
			}
		}
	}
	results := make([]FullSystemResult, len(grid))
	errs := make([]error, len(grid))
	forEachIndex(len(grid), opts.jobs(), func(i int) {
		j := grid[i]
		opts.Progress.log("fullsystem: %s vcs=%d %s", j.bench.Name, j.vcs, j.sch)
		results[i], errs[i] = RunFullSystem(j.bench, j.sch, j.vcs, 71)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// grid and the assembly loops below enumerate (benchmark, vcs, scheme)
	// in the same order, so results are consumed by a running index.
	gi := 0
	for _, bench := range benchmarks {
		b := bench.Scale(scale)
		for vi, vcs := range []int{1, 4} {
			res := map[SchemeName]FullSystemResult{}
			for _, sch := range ComparedSchemes() {
				res[sch] = results[gi]
				gi++
			}
			comp := float64(res[SchemeComposable].Runtime)
			normRC := float64(res[SchemeRemoteControl].Runtime) / comp
			normUPP := float64(res[SchemeUPP].Runtime) / comp
			fig8.AddRowf(b.Name, vcs, 1.0, normRC, normUPP, fmtPct(100*(normUPP-1)))
			up := res[SchemeUPP]
			frac := 0.0
			if up.Packets > 0 {
				frac = float64(up.Upward) / float64(up.Packets)
			}
			fig12.AddRowf(b.Name, vcs, up.Upward, up.Packets, fmt.Sprintf("%.6f%%", 100*frac))
			compE := res[SchemeComposable].EnergyJ
			fig15.AddRowf(b.Name, vcs, 1.0, res[SchemeRemoteControl].EnergyJ/compE, res[SchemeUPP].EnergyJ/compE)

			for _, sch := range ComparedSchemes() {
				geoRuntime[vi].logSum[sch] += ln(float64(res[sch].Runtime) / comp)
				geoEnergy[vi].logSum[sch] += ln(res[sch].EnergyJ / compE)
			}
			geoRuntime[vi].n++
			geoEnergy[vi].n++
		}
	}
	for vi, vcs := range []int{1, 4} {
		rt := geoRuntime[vi]
		en := geoEnergy[vi]
		fig8.AddRowf("geomean", vcs, 1.0,
			exp(rt.logSum[SchemeRemoteControl]/float64(rt.n)),
			exp(rt.logSum[SchemeUPP]/float64(rt.n)), "")
		fig15.AddRowf("geomean", vcs, 1.0,
			exp(en.logSum[SchemeRemoteControl]/float64(en.n)),
			exp(en.logSum[SchemeUPP]/float64(en.n)))
	}
	return []Table{fig8, fig12, fig15}, nil
}
