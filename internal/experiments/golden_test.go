package experiments

import (
	"testing"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestGoldenShapes pins the evaluation's qualitative shapes with loose
// numeric bounds, so a refactor that silently breaks a scheme's relative
// performance fails here rather than in a full figures run.
func TestGoldenShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	dur := Durations{Warmup: 2000, Measure: 10000}
	point := func(sch SchemeName, rate float64) Point {
		t.Helper()
		pt, err := Run(RunSpec{
			Topo:       topology.BaselineConfig(),
			Scheme:     sch,
			VCsPerVNet: 1,
			Pattern:    traffic.UniformRandom{},
			Rate:       rate,
			Seed:       11,
			Dur:        dur,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}

	// Low-load latency ordering: UPP < composable < remote control is not
	// required (composable vs RC order varies), but UPP must be strictly
	// lowest and all three must accept the offered load.
	low := map[SchemeName]Point{}
	for _, sch := range ComparedSchemes() {
		pt := point(sch, 0.02)
		low[sch] = pt
		if pt.Saturated {
			t.Fatalf("%s saturated at 0.02 flits/cycle/node", sch)
		}
		if pt.Throughput < 0.018 {
			t.Fatalf("%s accepted only %.4f of 0.02", sch, pt.Throughput)
		}
	}
	upp := low[SchemeUPP].TotalLat
	for _, sch := range []SchemeName{SchemeComposable, SchemeRemoteControl} {
		if upp >= low[sch].TotalLat {
			t.Fatalf("UPP latency %.1f not below %s's %.1f", upp, sch, low[sch].TotalLat)
		}
	}
	// Sanity window for the absolute zero-load latency (pipeline bug
	// canary): ~8 avg hops x 3 cycles + serialization.
	if upp < 15 || upp > 35 {
		t.Fatalf("UPP low-load latency %.1f outside the plausible window", upp)
	}

	// Mid-load: composable must be past (or near) its knee while UPP is
	// comfortable — the saturation-gap shape of Fig. 7.
	compMid := point(SchemeComposable, 0.07)
	uppMid := point(SchemeUPP, 0.07)
	if uppMid.Saturated {
		t.Fatalf("UPP saturated at 0.07 (lat %.1f)", uppMid.TotalLat)
	}
	if compMid.TotalLat < uppMid.TotalLat*1.3 {
		t.Fatalf("composable@0.07 latency %.1f should be well above UPP's %.1f", compMid.TotalLat, uppMid.TotalLat)
	}

	// UPP must survive far past every scheme's knee (recovery, not
	// avoidance, keeps it live).
	deep := point(SchemeUPP, 0.15)
	if deep.Throughput < 0.05 {
		t.Fatalf("UPP accepted throughput collapsed at overload: %.4f", deep.Throughput)
	}
}
