package experiments

import (
	"reflect"
	"testing"

	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// TestRunReconfigAllToAllSoak is the acceptance soak: persistently kill
// two interposer links under closed-loop all-to-all load; the run must
// complete deadlock-free via reconfiguration, with delivered-path
// assertions (RunReconfig enforces them), and the outcome must be
// bit-identical under every UPP detection kernel.
func TestRunReconfigAllToAllSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	links, err := KillableInterposerLinks(topology.BaselineConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Kills: []faults.LinkKill{
		{Link: links[0], Cycle: 400},
		{Link: links[1], Cycle: 400},
	}}
	kernels := []string{network.KernelNaive, network.KernelActive, network.KernelParallel}
	var ref ReconfigOutcome
	for i, k := range kernels {
		out, err := RunReconfig(ReconfigSpec{
			Kernel:     k,
			Plan:       plan,
			Seed:       11,
			Workload:   "all_to_all:flits=2",
			LoadCycles: 1600,
			DrainMax:   200000,
			StallLimit: 20000,
		})
		if err != nil {
			t.Fatalf("kernel %s: %v", k, err)
		}
		if !out.Quiesced {
			t.Fatalf("kernel %s: soak stalled: %s", k, out.Stall)
		}
		if out.Stats.LinksKilled != 2 {
			t.Fatalf("kernel %s: killed %d links, want 2", k, out.Stats.LinksKilled)
		}
		if len(out.Transitions) != 1 {
			t.Fatalf("kernel %s: %d transitions, want 1 (batched kills)", k, len(out.Transitions))
		}
		if len(out.Cuts) != 2 {
			t.Fatalf("kernel %s: %d cuts, want 2", k, len(out.Cuts))
		}
		if out.RoutesChanged == 0 {
			t.Fatalf("kernel %s: no interposer route changed after 2 kills", k)
		}
		if i == 0 {
			ref = out
			continue
		}
		if !reflect.DeepEqual(out, ref) {
			t.Fatalf("kernel %s diverged from %s:\n%+v\nvs\n%+v", k, kernels[0], out, ref)
		}
	}
}

// TestReconfigRunnerSmoke wires the -exp reconfig figure through the
// standard runner checks.
func TestReconfigRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := Reconfig(microDur, poolOpts)
	requireTables(t, ts, err, "reconfig")
}
