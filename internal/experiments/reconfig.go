package experiments

import (
	"errors"
	"fmt"

	"uppnoc/internal/core"
	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/reconfig"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
	"uppnoc/internal/workload"
)

// ReconfigSpec describes one dynamic-reconfiguration soak: load, a
// persistent fault plan (link kills, hot-adds, chiplet fail-stops)
// driven by the reconfiguration engine, then a drain that must quiesce.
type ReconfigSpec struct {
	Kernel     string
	RouterArch string
	Mode       reconfig.Mode
	Plan       faults.Plan
	Seed       uint64
	// Workload selects the closed-loop collective engine
	// (workload.ParseSpec syntax, e.g. "all_to_all"); empty uses the
	// rate-driven uniform-random generator at Rate.
	Workload string
	Rate     float64
	// LoadCycles of offered traffic, then injection stops and the
	// network drains (DrainMax cycles, StallLimit watchdog).
	LoadCycles int
	DrainMax   int
	StallLimit int
}

// ReconfigOutcome is the observable result of a reconfiguration soak.
// Identical specs must produce identical outcomes under every kernel.
type ReconfigOutcome struct {
	Quiesced    bool
	Stall       string
	FinalCycle  sim.Cycle
	Stats       network.Stats
	Transitions []reconfig.Transition
	Cuts        []reconfig.CutInfo
	// RoutesChanged counts interposer (src, dst) pairs whose route under
	// the final tables differs from the construction-time tables' — the
	// delivered-path evidence that reconfiguration actually rerouted.
	RoutesChanged int
}

// KillableInterposerLinks returns n interposer mesh link IDs whose
// cumulative removal keeps every layer connected — the standard victims
// of the reconfiguration soaks. Selection runs on a scratch topology.
func KillableInterposerLinks(cfg topology.SystemConfig, n int) ([]int, error) {
	topo, err := topology.Build(cfg)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, l := range topo.Links {
		if len(ids) == n {
			break
		}
		if l.Vertical || l.Faulty || topo.Node(l.A).Chiplet != topology.InterposerChiplet {
			continue
		}
		l.Faulty = true
		if _, err := routing.NewUpDown(topo); err == nil {
			ids = append(ids, l.ID)
		} else {
			l.Faulty = false
		}
	}
	if len(ids) < n {
		return nil, fmt.Errorf("reconfig: only %d of %d requested interposer links are killable", len(ids), n)
	}
	return ids, nil
}

// RunReconfig executes one reconfiguration soak on a fresh baseline
// topology and validates the outcome:
//
//   - every planned transition must have finished (no wedged epoch);
//   - a quiesced run must pass the resource audit and packet accounting;
//   - no flit may have crossed a killed link after its cut (checked
//     against the CutInfo sent counters, skipping later-revived links);
//   - surviving routes must avoid every dead link, and at least one
//     route must actually have changed when links were killed.
func RunReconfig(spec ReconfigSpec) (ReconfigOutcome, error) {
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		return ReconfigOutcome{}, err
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = spec.Kernel
	cfg.RouterArch = spec.RouterArch
	cfg.Seed = spec.Seed + 1
	cfg.UseUpDown = true // persistent kills require a fault-indexed local
	n, err := network.New(topo, cfg, HardenedUPP())
	if err != nil {
		return ReconfigOutcome{}, err
	}
	oldLocal := n.Hier().Local
	eng, err := reconfig.Attach(n, reconfig.Config{Plan: spec.Plan, Mode: spec.Mode})
	if err != nil {
		return ReconfigOutcome{}, err
	}
	alive := func(id topology.NodeID) bool {
		return eng.ChipletAlive(topo.Node(id).Chiplet)
	}
	if spec.Workload != "" {
		ws, werr := workload.ParseSpec(spec.Workload)
		if werr != nil {
			return ReconfigOutcome{}, werr
		}
		prog, werr := ws.Build(len(topo.Cores()))
		if werr != nil {
			return ReconfigOutcome{}, werr
		}
		weng, werr := workload.NewEngine(n, prog)
		if werr != nil {
			return ReconfigOutcome{}, werr
		}
		weng.Iterations = 1 << 20
		for i := 0; i < spec.LoadCycles; i++ {
			weng.Tick(n.Cycle())
			n.Step()
		}
	} else {
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, spec.Rate, spec.Seed+7777)
		g.CoreAlive = alive
		g.Run(spec.LoadCycles)
		g.SetRate(0)
	}
	out := ReconfigOutcome{}
	derr := n.Drain(spec.DrainMax, sim.Cycle(spec.StallLimit))
	out.FinalCycle = n.Cycle()
	out.Stats = n.Stats
	out.Transitions = append(out.Transitions, eng.Transitions()...)
	out.Cuts = append(out.Cuts, eng.Cuts()...)
	if derr != nil {
		var diag *network.StallDiagnostic
		if !errors.As(derr, &diag) {
			return out, fmt.Errorf("reconfig: drain failed without a stall diagnostic: %w", derr)
		}
		out.Stall = diag.Error()
		return out, nil
	}
	if !n.Quiesced() {
		return out, fmt.Errorf("reconfig: Drain returned nil with %d packets in flight", n.InFlight())
	}
	if err := n.CheckQuiescent(); err != nil {
		return out, fmt.Errorf("reconfig: quiesced network fails the resource audit: %w", err)
	}
	if !eng.Done() {
		return out, fmt.Errorf("reconfig: engine still mid-plan after drain (cursor or transition stuck)")
	}
	if u, ok := n.Scheme().(*core.UPP); ok {
		if err := u.UPPStateOK(); err != nil {
			return out, fmt.Errorf("reconfig: stale UPP state after quiescing: %w", err)
		}
	}
	for _, c := range out.Cuts {
		l := topo.Links[c.Link]
		if !l.Faulty {
			continue // revived by a later hot-add
		}
		sa := n.Routers[l.A].PortSentOn(l.APort)
		sb := n.Routers[l.B].PortSentOn(l.BPort)
		if sa != c.SentA || sb != c.SentB {
			return out, fmt.Errorf("reconfig: link %d carried traffic after its cut at cycle %d (sent A %d->%d, B %d->%d)",
				c.Link, c.Cycle, c.SentA, sa, c.SentB, sb)
		}
	}
	// Delivered-path evidence: walk every interposer pair under the
	// final tables; no route may cross a dead link, and when links died
	// at least one route must differ from the construction-time tables'.
	newLocal := n.Hier().Local
	dead := map[int]bool{}
	for _, l := range topo.Links {
		if l.Faulty && !l.Vertical {
			dead[l.ID] = true
		}
	}
	nodes := topo.LayerNodes(topology.InterposerChiplet)
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			pa, err := reconfig.WalkRoute(topo, newLocal, topology.InterposerChiplet, src, dst)
			if err != nil {
				return out, fmt.Errorf("reconfig: final tables cannot route %d -> %d: %w", src, dst, err)
			}
			for i := 0; i+1 < len(pa); i++ {
				p := topo.Node(pa[i]).PortToNeighbor(pa[i+1])
				if l := topo.Node(pa[i]).Ports[p].Link; l != nil && dead[l.ID] {
					return out, fmt.Errorf("reconfig: surviving route %d -> %d crosses dead link %d", src, dst, l.ID)
				}
			}
			pb, err := reconfig.WalkRoute(topo, oldLocal, topology.InterposerChiplet, src, dst)
			if err != nil {
				out.RoutesChanged++ // old tables fail across dead links
				continue
			}
			if len(pa) != len(pb) {
				out.RoutesChanged++
				continue
			}
			for i := range pa {
				if pa[i] != pb[i] {
					out.RoutesChanged++
					break
				}
			}
		}
	}
	if len(dead) > 0 && out.RoutesChanged == 0 {
		return out, fmt.Errorf("reconfig: %d links dead yet no interposer route changed", len(dead))
	}
	out.Quiesced = true
	return out, nil
}

// Reconfig is the -exp reconfig figure: the migration cost of killing
// two interposer links under load, drainless vs epoch-fenced, at three
// offered loads. Transition cycles are Begin→Finish wall-clock; cut
// latency is Begin→Cut (the fence-and-drain window).
func Reconfig(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "reconfig",
		Title:  "Dynamic reconfiguration: migration cost of killing 2 interposer links under load",
		Header: []string{"mode", "rate", "compatible", "transition_cycles", "cut_latency", "route_migrations", "heads_migrated", "held_streams", "popups", "quiesced"},
		Notes: []string{
			"modes: auto = CDG compatibility decides, drainless = never hold injection, epoch = always fence",
			"UPP recovers transient mixed-epoch cycles during the overlap (DESIGN.md §15)",
		},
	}
	links, err := KillableInterposerLinks(topology.BaselineConfig(), 2)
	if err != nil {
		return nil, err
	}
	killCycle := sim.Cycle(dur.Warmup)
	if killCycle < 200 {
		killCycle = 200
	}
	plan := faults.Plan{Kills: []faults.LinkKill{
		{Link: links[0], Cycle: killCycle},
		{Link: links[1], Cycle: killCycle},
	}}
	modes := []reconfig.Mode{reconfig.ModeAuto, reconfig.ModeDrainless, reconfig.ModeEpoch}
	rates := []float64{0.05, 0.10, 0.15}
	type cell struct {
		out ReconfigOutcome
		err error
	}
	cells := make([]cell, len(modes)*len(rates))
	forEachIndex(len(cells), opts.jobs(), func(i int) {
		mode := modes[i/len(rates)]
		rate := rates[i%len(rates)]
		opts.Progress.log("reconfig: mode=%s rate=%.2f", mode, rate)
		cells[i].out, cells[i].err = RunReconfig(ReconfigSpec{
			Mode:       mode,
			Plan:       plan,
			Seed:       5,
			Rate:       rate,
			LoadCycles: int(killCycle) + dur.Measure,
			DrainMax:   200000,
			StallLimit: 20000,
		})
	})
	for i, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		mode := modes[i/len(rates)]
		rate := rates[i%len(rates)]
		if len(c.out.Transitions) != 1 {
			return nil, fmt.Errorf("reconfig: mode=%s rate=%.2f ran %d transitions, want 1", mode, rate, len(c.out.Transitions))
		}
		tr := c.out.Transitions[0]
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%t", tr.Compatible),
			fmt.Sprintf("%d", tr.Finish-tr.Begin),
			fmt.Sprintf("%d", tr.Cut-tr.Begin),
			fmt.Sprintf("%d", c.out.Stats.RouteMigrations),
			fmt.Sprintf("%d", c.out.Stats.HeadsMigrated),
			fmt.Sprintf("%d", c.out.Stats.ReconfigHeldStreams),
			fmt.Sprintf("%d", c.out.Stats.PopupsCompleted),
			fmt.Sprintf("%t", c.out.Quiesced),
		})
	}
	return []Table{t}, nil
}
