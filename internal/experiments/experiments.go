// Package experiments reproduces the evaluation of the UPP paper: one
// runner per table and figure, built on parameter sweeps of the simulator.
// The cmd/figures binary and the repository-level benchmarks call into
// this package; DESIGN.md's experiment index maps each paper artifact to
// its runner.
package experiments

import (
	"fmt"

	"uppnoc/internal/composable"
	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/remotectl"
	"uppnoc/internal/topology"
)

// SchemeName identifies one of the compared approaches.
type SchemeName string

// The compared schemes.
const (
	SchemeComposable    SchemeName = "composable"
	SchemeRemoteControl SchemeName = "remote_control"
	SchemeUPP           SchemeName = "upp"
	SchemeNone          SchemeName = "none"
)

// ComparedSchemes returns the paper's three compared approaches in its
// plotting order.
func ComparedSchemes() []SchemeName {
	return []SchemeName{SchemeComposable, SchemeRemoteControl, SchemeUPP}
}

// MakeScheme instantiates a fresh scheme for a topology. Each network
// needs its own instance (schemes carry per-router state).
func MakeScheme(name SchemeName, topo *topology.Topology) (network.Scheme, error) {
	switch name {
	case SchemeComposable:
		return composable.NewScheme(topo)
	case SchemeRemoteControl:
		return remotectl.New(remotectl.DefaultConfig()), nil
	case SchemeUPP:
		return core.New(core.DefaultConfig()), nil
	case SchemeNone:
		return network.None{}, nil
	}
	return nil, fmt.Errorf("experiments: unknown scheme %q", name)
}

// UPPWithThreshold builds a UPP instance with a custom detection threshold
// (Fig. 13's sensitivity study).
func UPPWithThreshold(threshold int) network.Scheme {
	cfg := core.DefaultConfig()
	cfg.Threshold = threshold
	return core.New(cfg)
}

// HardenedUPP builds a UPP instance with the signal-retry machinery armed
// (Sec. "robustness" of DESIGN.md §10): lost or delayed protocol signals
// time out and are re-sent a bounded number of times before the popup is
// force-retired and normal re-detection takes over. Fault-free behavior
// is unchanged, but the chaos runs use this so injected signal loss is a
// counted recovery, not a hang.
func HardenedUPP() network.Scheme {
	cfg := core.DefaultConfig()
	cfg.SignalTimeout = 256
	cfg.MaxSignalRetries = 3
	return core.New(cfg)
}

// Durations controls warmup and measurement lengths. The paper uses 10k
// warmup + 100k measurement cycles; benchmarks scale these down.
type Durations struct {
	Warmup  int
	Measure int
}

// PaperDurations returns the full-length setting of Table II's
// methodology.
func PaperDurations() Durations { return Durations{Warmup: 10000, Measure: 100000} }

// QuickDurations returns a CI-friendly setting that preserves curve
// shapes.
func QuickDurations() Durations { return Durations{Warmup: 3000, Measure: 15000} }
