package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper table or
// figure reports.
type Table struct {
	ID     string // e.g. "fig7", "table2"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the reproduction commentary (what to compare against
	// the paper).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats get %.4g).
func (t *Table) AddRowf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns an aligned text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (quotes are not needed for the
// simple cells the runners emit).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
