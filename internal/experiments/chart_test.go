package experiments

import (
	"strings"
	"testing"
)

func TestAsciiChart(t *testing.T) {
	curves := []Curve{
		{Label: "composable", Points: []Point{{Rate: 0.01, TotalLat: 26}, {Rate: 0.05, TotalLat: 40}, {Rate: 0.08, TotalLat: 300, Saturated: true}}},
		{Label: "upp", Points: []Point{{Rate: 0.01, TotalLat: 23}, {Rate: 0.05, TotalLat: 30}, {Rate: 0.08, TotalLat: 45}}},
	}
	out := AsciiChart("demo", curves, "CU")
	if !strings.Contains(out, "C=composable") || !strings.Contains(out, "U=upp") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "U") {
		t.Fatalf("no data points plotted:\n%s", out)
	}
	if !strings.Contains(out, "0.010") || !strings.Contains(out, "0.080") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if AsciiChart("empty", nil, "") != "" {
		t.Fatal("empty chart should render empty")
	}
	t.Log("\n" + out)
}
