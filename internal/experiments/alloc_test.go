package experiments

import (
	"os"
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/router"
	"uppnoc/internal/topology"
)

// TestSteadyStateZeroAlloc pins the steady-state simulation loop at
// exactly zero heap allocations. The recipe matters: the pool is
// preallocated past the live high-water mark and the warmup is long
// enough that every lazily-grown buffer (injection rings, waiter and
// completion slices, wheel slots, router scratch) has reached its
// steady-state capacity. After that, a measurement window must not
// allocate at all — any regression (a map rebuilt per cycle, a slice
// regrown from zero, a closure capture in the hot path) fails this test
// with a nonzero count.
// The parallel kernel is held to the same bar: its per-shard commit logs
// are reused buffers, so once warmup has established each log's
// high-water mark the compute/commit cycle must not allocate either
// (goroutine handoff through the worker pool's channel is by value).
func TestSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second warmup")
	}
	if os.Getenv("UPP_NOPOOL") != "" {
		t.Skip("pooling disabled via UPP_NOPOOL")
	}
	// Every router microarchitecture is held to the bar, not just the
	// default iq pipeline: oq's staging FIFOs and voq's per-output
	// nomination use preallocated storage only. The oq leg runs at a
	// lower offered load because its saturation throughput is below
	// 0.05 (one drain per output per cycle from half-depth input
	// buffers) — past saturation the injection queues grow without
	// bound and "steady state" does not exist.
	rates := map[string]float64{router.ArchIQ: 0.05, router.ArchOQ: 0.035, router.ArchVOQ: 0.05}
	for _, kernel := range []string{network.KernelActive, network.KernelParallel} {
		for _, arch := range RouterArchs() {
			t.Run(kernel+"_"+arch, func(t *testing.T) {
				kb, err := NewKernelBenchArch(kernel, arch, rates[arch])
				if err != nil {
					t.Fatal(err)
				}
				kb.Network().PacketPool().Preallocate(4096)
				kb.Run(20000) // reach steady-state occupancy and buffer high-water marks
				allocs := testing.AllocsPerRun(10, func() {
					kb.Run(500)
				})
				if allocs != 0 {
					t.Fatalf("steady-state window allocated %.2f objects per 500 cycles; want exactly 0", allocs)
				}
				st := kb.Network().PacketPool().Stats
				if st.Reuses == 0 {
					t.Fatal("pool never recycled a packet — the zero-alloc result is vacuous")
				}
			})
		}
	}
}

// TestSteadyStateZeroAllocScale holds the scale-out systems to the same
// zero-allocation bar: on the hierarchical 2048-router preset, the awake
// lists, the NI wake heap, the parallel kernel's shard partitions and
// commit logs, and the idle-cycle fast-forward must all run out of
// preallocated storage once warmup has established high-water marks. The
// pool preallocation is larger than the baseline test's because the live
// packet population scales with cores x latency. The offered rate sits
// below the scale systems' uniform-random saturation (~0.015 accepted
// flits/cycle/node on the 2048-router preset — the interposer bisection,
// not the paper baseline's knee, is the limit): past it the injection
// queues grow without bound and "steady state" does not exist.
func TestSteadyStateZeroAllocScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second warmup")
	}
	if os.Getenv("UPP_NOPOOL") != "" {
		t.Skip("pooling disabled via UPP_NOPOOL")
	}
	for _, kernel := range []string{network.KernelActive, network.KernelParallel} {
		t.Run(kernel, func(t *testing.T) {
			kb, err := NewScaleBench(kernel, topology.ScaleLargeConfig(), 4, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			kb.Network().PacketPool().Preallocate(32768)
			kb.Run(10000) // reach steady-state occupancy and buffer high-water marks
			allocs := testing.AllocsPerRun(5, func() {
				kb.Run(200)
			})
			if allocs != 0 {
				t.Fatalf("scale steady-state window allocated %.2f objects per 200 cycles; want exactly 0", allocs)
			}
			st := kb.Network().PacketPool().Stats
			if st.Reuses == 0 {
				t.Fatal("pool never recycled a packet — the zero-alloc result is vacuous")
			}
		})
	}
}

// TestSteadyStateZeroAllocCollective holds the closed-loop workload
// engine to the same zero-allocation bar as the rate-driven loop: a
// looping training-step collective (dependency gating, compute gaps,
// iteration rollover, barrier) must not allocate per cycle once the
// engine's one-time buffers (the iteration-cycle log) and the network's
// lazily-grown structures have reached steady state.
func TestSteadyStateZeroAllocCollective(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second warmup")
	}
	if os.Getenv("UPP_NOPOOL") != "" {
		t.Skip("pooling disabled via UPP_NOPOOL")
	}
	for _, kernel := range []string{network.KernelActive, network.KernelParallel} {
		t.Run(kernel, func(t *testing.T) {
			wb, err := NewWorkloadBench(kernel)
			if err != nil {
				t.Fatal(err)
			}
			wb.Network().PacketPool().Preallocate(4096)
			wb.Run(20000) // several training iterations: all buffers at high-water marks
			allocs := testing.AllocsPerRun(10, func() {
				wb.Run(500)
			})
			if allocs != 0 {
				t.Fatalf("collective steady-state window allocated %.2f objects per 500 cycles; want exactly 0", allocs)
			}
			st := wb.Network().PacketPool().Stats
			if st.Reuses == 0 {
				t.Fatal("pool never recycled a packet — the zero-alloc result is vacuous")
			}
		})
	}
}
