package experiments

import (
	"strings"
	"testing"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestPoolCSVGolden: the CSV artifacts of the figure pipeline must be
// byte-identical with packet pooling on and off. This is the
// end-to-end leg of the recycling equivalence proof: Fig2 plus the real
// fig7 latencyFigure path (sweeps, truncation, summary stats) rendered
// under both modes, covering every scheme the figures run — including
// UPP past the knee where popups recycle packets mid-protocol.
func TestPoolCSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	dur := Durations{Warmup: 500, Measure: 2500}
	render := func(nopool string) string {
		t.Setenv("UPP_NOPOOL", nopool)
		tables, err := Fig2(PoolOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		fig7, err := latencyFigure("fig7", topology.BaselineConfig(),
			[]traffic.Pattern{traffic.UniformRandom{}}, dur, PoolOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range append(tables, fig7...) {
			sb.WriteString(tb.CSV())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	pooled := render("")
	plain := render("1")
	if pooled == plain {
		return
	}
	pl, nl := strings.Split(pooled, "\n"), strings.Split(plain, "\n")
	for i := 0; i < len(pl) && i < len(nl); i++ {
		if pl[i] != nl[i] {
			t.Fatalf("CSV output diverges at line %d:\npooled:   %s\nunpooled: %s", i+1, pl[i], nl[i])
		}
	}
	t.Fatalf("CSV lengths differ: pooled %d lines, unpooled %d lines", len(pl), len(nl))
}
