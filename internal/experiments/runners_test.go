package experiments

import (
	"strings"
	"testing"
)

// microDur keeps runner smoke tests fast; the figures binary runs real
// durations. Curve shapes are meaningless at this scale — these tests
// check wiring, not physics.
var microDur = Durations{Warmup: 300, Measure: 1200}

// poolOpts runs the smoke tests through the worker pool with a couple of
// workers, so the runner refactors are exercised in their parallel shape.
var poolOpts = PoolOptions{Jobs: 2}

func requireTables(t *testing.T, ts []Table, err error, want ...string) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tb := range ts {
		got[tb.ID] = true
		if len(tb.Header) == 0 {
			t.Fatalf("table %s has no header", tb.ID)
		}
		if len(tb.Rows) == 0 && !strings.HasSuffix(tb.ID, "_charts") {
			t.Fatalf("table %s has no rows", tb.ID)
		}
		// Render and CSV must not panic and must carry the ID.
		if !strings.Contains(tb.Render(), tb.ID) {
			t.Fatalf("render of %s missing its ID", tb.ID)
		}
		_ = tb.CSV()
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("missing table %s (got %v)", id, keysOf(got))
		}
	}
}

func keysOf(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestFig7RunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := Fig7(microDur, poolOpts)
	requireTables(t, ts, err, "fig7", "fig7_summary", "fig7_charts")
}

func TestFig9RunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := Fig9(microDur, poolOpts)
	requireTables(t, ts, err, "fig9", "fig9_summary")
}

func TestFig10RunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := Fig10(microDur, poolOpts)
	requireTables(t, ts, err, "fig10")
}

func TestFig11RunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := Fig11(microDur, poolOpts)
	requireTables(t, ts, err, "fig11", "fig11_summary")
}

func TestFig13RunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := Fig13(microDur, poolOpts)
	requireTables(t, ts, err, "fig13", "fig13_summary")
}

func TestFig2RunnerSmoke(t *testing.T) {
	ts, err := Fig2(PoolOptions{})
	requireTables(t, ts, err, "fig2")
}

func TestLoadBalanceRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := LoadBalance(microDur, poolOpts)
	requireTables(t, ts, err, "load_balance", "load_balance_detail")
}

func TestTailLatencyRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := TailLatency(microDur, poolOpts)
	requireTables(t, ts, err, "tail_latency")
}

func TestAblationRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := AblationBufferDepth(microDur, poolOpts)
	requireTables(t, ts, err, "ablation_depth")
	ts, err = AblationSignalGap(microDur, poolOpts)
	requireTables(t, ts, err, "ablation_gap")
}

func TestFullSystemRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second smoke")
	}
	ts, err := FullSystemSubset([]string{"blackscholes"}, 0.02, poolOpts)
	requireTables(t, ts, err, "fig8", "fig12", "fig15")
}
