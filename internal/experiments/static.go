package experiments

import (
	"fmt"
	"math"

	"uppnoc/internal/power"
)

func ln(v float64) float64  { return math.Log(v) }
func exp(v float64) float64 { return math.Exp(v) }

// Table1 reproduces the qualitative comparison of deadlock-freedom
// approaches (design modularity / performance / flexibility) — for the
// three approaches this repository actually implements, the properties
// are exhibited by the code itself (see Notes).
func Table1() Table {
	t := Table{
		ID:    "table1",
		Title: "Qualitative comparison (paper Table I, implemented rows)",
		Header: []string{"approach", "topology_modularity", "vc_modularity", "flow_ctrl_modularity",
			"full_path_diversity", "no_injection_control", "topology_independence"},
	}
	t.AddRow("dally_theory", "no", "yes", "yes", "no", "yes", "no")
	t.AddRow("duato_theory", "no", "no", "yes", "no", "yes", "no")
	t.AddRow("bubble_flow_control", "yes", "yes", "no", "yes", "yes", "yes")
	t.AddRow("deflection", "yes", "yes", "no", "yes", "yes", "yes")
	t.AddRow("spin", "yes", "yes", "no", "yes", "yes", "yes")
	t.AddRow("composable", "yes", "yes", "yes", "no", "yes", "no")
	t.AddRow("remote_control", "yes", "yes", "yes", "yes", "no", "no")
	t.AddRow("upp", "yes", "yes", "yes", "yes", "yes", "yes")
	t.Notes = []string{
		"composable: internal/composable restricts boundary turns (no full path diversity) and needs a design-time search (no topology independence)",
		"remote_control: internal/remotectl gates injection (no injection-control freedom) on a fixed permission tree (no topology independence)",
		"upp: internal/core needs no restrictions, no injection control, and works on faulty topologies (Fig. 11)",
	}
	return t
}

// Table2 prints the simulation configuration actually used, mirroring the
// paper's Table II.
func Table2() Table {
	t := Table{
		ID:     "table2",
		Title:  "Simulation configuration (paper Table II)",
		Header: []string{"parameter", "value"},
	}
	rows := [][2]string{
		{"topology (baseline)", "4x4 mesh interposer + 4 chiplets of 4x4 mesh, 4 boundary routers each"},
		{"topology (large, fig9)", "4x8 mesh interposer + 8 chiplets of 4x4 mesh"},
		{"virtual networks", "3 (request / forward / response, MESI)"},
		{"VCs per VNet", "1 or 4"},
		{"VC buffer depth", "4 flits"},
		{"router pipeline", "3 stages (BW+RC, SA+VCS, ST) + 1-cycle link"},
		{"flow control", "wormhole, credit-based"},
		{"packet sizes", "control 1 flit, data 5 flits"},
		{"synthetic traffic", "uniform random, bit complement, bit rotation, transpose"},
		{"full-system substitute", "MESI directory protocol + 18 PARSEC/SPLASH-2 profiles (internal/coherence)"},
		{"coherence", "private L1 per core (128 sets x 4 ways), blocking cores (MSHRs configurable), 8 interposer directories with shared L2 banks (8-cycle hit) and DRAM (60-cycle fill)"},
		{"UPP detection threshold", "20 cycles (fig13 sweeps 20/100/1000)"},
		{"UPP signal gap", "data packet size + 1 = 6 cycles"},
		{"remote control", "4 boundary slots, 2-cycle handshake, +1 cycle boundary crossing"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}

// Fig14 reproduces the hardware-overhead comparison from the area model.
func Fig14() Table {
	t := Table{
		ID:     "fig14",
		Title:  "Hardware overhead per router (area model calibrated to the paper's DC numbers)",
		Header: []string{"router", "vcs", "composable", "remote_control", "upp"},
		Notes: []string{
			"paper: composable ~0%, remote control 4.14%/1.65% (chiplet), UPP 3.77%/1.50% (chiplet) and 2.62%/1.47% (interposer); all <4%",
		},
	}
	for _, kind := range []power.RouterKind{power.ChipletRouter, power.InterposerRouter} {
		name := "chiplet"
		if kind == power.InterposerRouter {
			name = "interposer"
		}
		for _, vcs := range []int{1, 4} {
			t.AddRow(name, fmt.Sprintf("%d", vcs),
				fmt.Sprintf("%.2f%%", power.OverheadPercent("composable", kind, vcs)),
				fmt.Sprintf("%.2f%%", power.OverheadPercent("remote_control", kind, vcs)),
				fmt.Sprintf("%.2f%%", power.OverheadPercent("upp", kind, vcs)))
		}
	}
	return t
}
