package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// TestCollectivesGolden is the acceptance gate for the workload engine:
// regenerating the collectives table must byte-match the committed
// results/collectives.csv under every cycle kernel and at one and four
// sweep workers. A mismatch means either a behavior change (regenerate
// the CSV deliberately with `make collectives-golden`) or a determinism
// break (fix the code).
func TestCollectivesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	wantBytes, err := os.ReadFile(filepath.Join("..", "..", "results", "collectives.csv"))
	if err != nil {
		t.Fatalf("committed golden missing (regenerate with `make collectives-golden`): %v", err)
	}
	want := string(wantBytes)
	for _, kernel := range []string{network.KernelActive, network.KernelNaive, network.KernelParallel} {
		for _, jobs := range []int{1, 4} {
			t.Run(kernel+"_jobs"+string(rune('0'+jobs)), func(t *testing.T) {
				t.Setenv("UPP_KERNEL", kernel)
				tables, err := Collectives(PoolOptions{Jobs: jobs})
				if err != nil {
					t.Fatal(err)
				}
				got := tables[0].CSV()
				if got == want {
					return
				}
				gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if gl[i] != wl[i] {
						t.Fatalf("line %d diverges from the committed golden:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
					}
				}
				t.Fatalf("line counts differ: got %d, committed %d", len(gl), len(wl))
			})
		}
	}
}

// TestCollectivesCompleteUnderAllSchemes pins the table's qualitative
// shape the way TestGoldenShapes does for Fig. 7: every compared scheme
// finishes every workload within the horizon, UPP is never slower than
// composable, and the bursty all-to-all exercises UPP's recovery path
// while remote control pays injection holds.
func TestCollectivesCompleteUnderAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	run := func(wl string, sch SchemeName) WorkloadPoint {
		t.Helper()
		pt, err := RunWorkload(WorkloadSpec{
			Topo:     topology.BaselineConfig(),
			Scheme:   sch,
			Workload: wl,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !pt.Completed {
			t.Fatalf("%s under %s did not complete (%d/%d ops)", wl, sch, pt.OpsFired, pt.OpsTotal)
		}
		return pt
	}
	for _, wl := range []string{"ring_allreduce", "all_to_all"} {
		upp := run(wl, SchemeUPP)
		comp := run(wl, SchemeComposable)
		rc := run(wl, SchemeRemoteControl)
		if upp.FinishCycle > comp.FinishCycle {
			t.Errorf("%s: UPP finishes at %d, after composable's %d", wl, upp.FinishCycle, comp.FinishCycle)
		}
		if rc.InjectionHolds == 0 {
			t.Errorf("%s: remote control reports zero injection holds — the gate is not engaging", wl)
		}
	}
	if a2a := run("all_to_all:flits=10", SchemeUPP); a2a.Upward == 0 {
		t.Error("large all-to-all under UPP never selected an upward packet — the closed loop is not stressing recovery")
	}
}
