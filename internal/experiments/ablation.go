package experiments

import (
	"fmt"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// The ablation experiments quantify the design choices the paper argues
// for qualitatively: the static closest-boundary binding (Sec. V-D), the
// per-VC buffer depth (Table II), and the protocol signal spacing
// (Sec. V-B5). DESIGN.md's experiment index lists them alongside the
// paper's own figures.

// AblationBinding compares UPP under four egress-binding policies. The
// paper's argument: static closest binding is minimal; anything else
// lengthens paths and costs latency and throughput.
func AblationBinding(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "ablation_binding",
		Title:  "Egress boundary binding policies under UPP (Sec. V-D design argument)",
		Header: []string{"policy", "low_load_latency", "sat_throughput", "upward_at_sat"},
		Notes: []string{
			"static closest binding should dominate: lowest latency and highest (or tied) throughput",
		},
	}
	// Each policy is built fresh inside the override so every run owns its
	// policy instance: RandomEgressPolicy carries a mutable RNG, and a
	// shared instance would make runs order-dependent (and race under the
	// parallel pool).
	policies := []struct {
		name   string
		policy func() routing.BoundaryPolicy
	}{
		{"static_closest", func() routing.BoundaryPolicy { return nil }},
		{"random", func() routing.BoundaryPolicy { return routing.NewRandomEgressPolicy(99) }},
		{"farthest", func() routing.BoundaryPolicy { return routing.FarthestEgressPolicy{} }},
		{"single_boundary", func() routing.BoundaryPolicy { return routing.SingleEgressPolicy{} }},
	}
	for _, pc := range policies {
		opts.Progress.log("ablation_binding: %s", pc.name)
		makePolicy := pc.policy
		spec := RunSpec{
			Topo: topology.BaselineConfig(),
			SchemeOverride: func(*topology.Topology) (network.Scheme, error) {
				c := core.DefaultConfig()
				c.Policy = makePolicy()
				return core.New(c), nil
			},
			VCsPerVNet: 1,
			Pattern:    traffic.UniformRandom{},
			Seed:       61,
			Dur:        dur,
		}
		c, err := SweepRatesWith(spec, DefaultRates(), pc.name, opts)
		if err != nil {
			return nil, err
		}
		var upward uint64
		for _, pt := range c.Points {
			if !pt.Saturated {
				upward = pt.Upward
			}
		}
		t.AddRowf(pc.name, c.ZeroLoadLatency, c.SaturationThroughput, upward)
	}
	return []Table{t}, nil
}

// AblationAdaptive compares UPP over XY local routing against UPP over
// minimal-adaptive odd-even routing — the "fully adaptive network" the
// recovery framework enables (Sec. IV-B's full-path-diversity claim).
func AblationAdaptive(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "ablation_adaptive",
		Title:  "UPP with XY vs minimal-adaptive odd-even local routing",
		Header: []string{"pattern", "local_routing", "low_load_latency", "sat_throughput", "upward_at_sat"},
		Notes: []string{
			"UPP recovers correctly under adaptive routing (popup paths chase the packet's own VC chain)",
			"at 1 VC, odd-even's restricted turn set costs saturation throughput vs XY on these patterns — the classic DOR-vs-odd-even result; the point of the ablation is correctness under adaptivity, not a win",
		},
	}
	for _, pat := range traffic.Patterns() {
		for _, adaptive := range []bool{false, true} {
			name := "xy"
			if adaptive {
				name = "odd_even"
			}
			opts.Progress.log("ablation_adaptive: %s %s", pat.Name(), name)
			a := adaptive
			spec := RunSpec{
				Topo: topology.BaselineConfig(),
				SchemeOverride: func(*topology.Topology) (network.Scheme, error) {
					return core.New(core.DefaultConfig()), nil
				},
				VCsPerVNet: 1,
				Pattern:    pat,
				Seed:       83,
				Dur:        dur,
				Adaptive:   a,
			}
			c, err := SweepRatesWith(spec, DefaultRates(), pat.Name()+"/"+name, opts)
			if err != nil {
				return nil, err
			}
			var upward uint64
			for _, pt := range c.Points {
				if !pt.Saturated {
					upward = pt.Upward
				}
			}
			t.AddRowf(pat.Name(), name, c.ZeroLoadLatency, c.SaturationThroughput, upward)
		}
	}
	return []Table{t}, nil
}

// AblationBufferDepth sweeps the per-VC buffer depth.
func AblationBufferDepth(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "ablation_depth",
		Title:  "Per-VC buffer depth under UPP",
		Header: []string{"depth", "low_load_latency", "sat_throughput"},
		Notes:  []string{"deeper buffers raise saturation throughput with diminishing returns"},
	}
	for _, depth := range []int{2, 4, 8} {
		opts.Progress.log("ablation_depth: %d flits", depth)
		spec := RunSpec{
			Topo:        topology.BaselineConfig(),
			Scheme:      SchemeUPP,
			VCsPerVNet:  1,
			BufferDepth: depth,
			Pattern:     traffic.UniformRandom{},
			Seed:        67,
			Dur:         dur,
		}
		c, err := SweepRatesWith(spec, DefaultRates(), fmt.Sprintf("depth=%d", depth), opts)
		if err != nil {
			return nil, err
		}
		t.AddRowf(depth, c.ZeroLoadLatency, c.SaturationThroughput)
	}
	return []Table{t}, nil
}

// AblationSignalGap sweeps the serialization gap between protocol signals
// from one interposer router (Sec. V-B5 prescribes data-packet-size + 1).
func AblationSignalGap(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "ablation_gap",
		Title:  "UPP protocol-signal serialization gap",
		Header: []string{"gap_cycles", "sat_throughput", "upward_at_sat", "signals_at_sat"},
		Notes:  []string{"recovery traffic is tiny, so the gap barely moves throughput — matching the paper's bandwidth-waste analysis"},
	}
	for _, gap := range []int{1, 6, 12} {
		opts.Progress.log("ablation_gap: %d", gap)
		cfg := core.DefaultConfig()
		cfg.SignalGap = gap
		spec := RunSpec{
			Topo: topology.BaselineConfig(),
			SchemeOverride: func(*topology.Topology) (network.Scheme, error) {
				c := cfg
				return core.New(c), nil
			},
			VCsPerVNet: 1,
			Pattern:    traffic.UniformRandom{},
			Seed:       71,
			Dur:        dur,
		}
		c, err := SweepRatesWith(spec, DefaultRates(), fmt.Sprintf("gap=%d", gap), opts)
		if err != nil {
			return nil, err
		}
		var upward, signals uint64
		for _, pt := range c.Points {
			if !pt.Saturated {
				upward, signals = pt.Upward, pt.Signals
			}
		}
		t.AddRowf(gap, c.SaturationThroughput, upward, signals)
	}
	return []Table{t}, nil
}
