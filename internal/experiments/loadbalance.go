package experiments

import (
	"fmt"
	"math"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// LoadBalance measures the vertical-link (chiplet egress) utilization per
// scheme — the quantitative form of Sec. III-B's argument that composable
// routing's turn restrictions unbalance the boundary routers while UPP's
// static binding spreads the load. Imbalance is max/mean flits per
// down-link within each chiplet, averaged over chiplets; 1.0 is perfect
// balance.
func LoadBalance(dur Durations, opts PoolOptions) ([]Table, error) {
	t := Table{
		ID:     "load_balance",
		Title:  "Vertical-link load balance per scheme (uniform random, sub-saturation)",
		Header: []string{"scheme", "vcs", "total_down_flits", "imbalance_max_over_mean", "busiest_link_share"},
		Notes: []string{
			"paper Sec. III-B: composable routing concentrates inter-chiplet traffic on few boundary routers; UPP and remote control balance it",
		},
	}
	detail := Table{
		ID:     "load_balance_detail",
		Title:  "Per-boundary-router down-link flits",
		Header: []string{"scheme", "chiplet", "boundary_router", "down_flits"},
	}
	// One self-contained simulation per scheme; the measurements drive the
	// network directly (per-router counters, not a Point), so they fan out
	// over the pool's index helper and the rows are assembled in scheme
	// order afterwards.
	type result struct {
		summary []interface{}
		detail  [][]interface{}
		err     error
	}
	const vcs = 1
	schemes := ComparedSchemes()
	results := make([]result, len(schemes))
	forEachIndex(len(schemes), opts.jobs(), func(si int) {
		sch := schemes[si]
		opts.Progress.log("load_balance: %s", sch)
		r := &results[si]
		topo, err := topology.Build(topology.BaselineConfig())
		if err != nil {
			r.err = err
			return
		}
		scheme, err := cachedScheme(topology.BaselineConfig(), sch)(topo)
		if err != nil {
			r.err = err
			return
		}
		cfg := network.DefaultConfig()
		cfg.Router.VCsPerVNet = vcs
		cfg.Seed = 5
		n, err := network.New(topo, cfg, scheme)
		if err != nil {
			r.err = err
			return
		}
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.04, 5)
		g.Run(dur.Warmup + dur.Measure)

		var total uint64
		var imbalanceSum float64
		var worstShare float64
		for _, ch := range topo.Chiplets {
			var counts []uint64
			var chTotal, chMax uint64
			for _, b := range ch.Boundary {
				router := n.Router(b)
				down := topo.Node(b).PortTo(topology.Down)
				c := router.PortSentOn(down)
				counts = append(counts, c)
				chTotal += c
				if c > chMax {
					chMax = c
				}
				r.detail = append(r.detail, []interface{}{string(sch), ch.Index, b, c})
			}
			total += chTotal
			if chTotal > 0 {
				mean := float64(chTotal) / float64(len(counts))
				imbalanceSum += float64(chMax) / mean
				if share := float64(chMax) / float64(chTotal); share > worstShare {
					worstShare = share
				}
			}
		}
		imbalance := imbalanceSum / float64(len(topo.Chiplets))
		if math.IsNaN(imbalance) {
			imbalance = 0
		}
		r.summary = []interface{}{string(sch), vcs, total,
			fmt.Sprintf("%.2f", imbalance), fmt.Sprintf("%.0f%%", 100*worstShare)}
	})
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, row := range r.detail {
			detail.AddRowf(row...)
		}
		t.AddRowf(r.summary...)
	}
	return []Table{t, detail}, nil
}
