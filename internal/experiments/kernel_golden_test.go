package experiments

import (
	"strings"
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestKernelCSVGolden: the CSV artifacts of the figure pipeline must be
// byte-identical under the active-set and naive kernels. Fig2 runs in
// full (the design-time search is simulation-free but belongs to the
// artifact set); fig7 runs the real latencyFigure code path trimmed to a
// single traffic pattern with short windows, so every sweep, truncation
// and summary computation executes on both kernels. The CI smoke step
// diffs the untrimmed fig7 quick run the same way.
func TestKernelCSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	dur := Durations{Warmup: 500, Measure: 2500}
	render := func(kernel string) string {
		t.Setenv("UPP_KERNEL", kernel)
		tables, err := Fig2(PoolOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		fig7, err := latencyFigure("fig7", topology.BaselineConfig(),
			[]traffic.Pattern{traffic.UniformRandom{}}, dur, PoolOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range append(tables, fig7...) {
			sb.WriteString(tb.CSV())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	active := render(network.KernelActive)
	naive := render(network.KernelNaive)
	if active == naive {
		return
	}
	al, nl := strings.Split(active, "\n"), strings.Split(naive, "\n")
	for i := 0; i < len(al) && i < len(nl); i++ {
		if al[i] != nl[i] {
			t.Fatalf("CSV output diverges at line %d:\nactive: %s\nnaive:  %s", i+1, al[i], nl[i])
		}
	}
	t.Fatalf("CSV lengths differ: active %d lines, naive %d lines", len(al), len(nl))
}
