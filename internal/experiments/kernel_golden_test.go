package experiments

import (
	"strings"
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestKernelCSVGolden: the CSV artifacts of the figure pipeline must be
// byte-identical under the active-set, naive and parallel kernels. Fig2
// runs in full (the design-time search is simulation-free but belongs to
// the artifact set); fig7 runs the real latencyFigure code path trimmed
// to a single traffic pattern with short windows, so every sweep,
// truncation and summary computation executes on every kernel. The CI
// smoke step diffs the untrimmed fig7 quick run the same way.
func TestKernelCSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	dur := Durations{Warmup: 500, Measure: 2500}
	render := func(kernel string) string {
		t.Setenv("UPP_KERNEL", kernel)
		tables, err := Fig2(PoolOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		fig7, err := latencyFigure("fig7", topology.BaselineConfig(),
			[]traffic.Pattern{traffic.UniformRandom{}}, dur, PoolOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range append(tables, fig7...) {
			sb.WriteString(tb.CSV())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	active := render(network.KernelActive)
	for _, kernel := range []string{network.KernelNaive, network.KernelParallel} {
		other := render(kernel)
		if active == other {
			continue
		}
		al, ol := strings.Split(active, "\n"), strings.Split(other, "\n")
		for i := 0; i < len(al) && i < len(ol); i++ {
			if al[i] != ol[i] {
				t.Fatalf("CSV output diverges at line %d:\nactive: %s\n%s: %s", i+1, al[i], kernel, ol[i])
			}
		}
		t.Fatalf("CSV lengths differ: active %d lines, %s %d lines", len(al), kernel, len(ol))
	}
}
