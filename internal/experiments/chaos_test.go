package experiments

import (
	"testing"

	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// TestChaosSoak is the robustness acceptance gate: fault plans × schemes
// × kernels, each run asserting (a) no panic, (b) full packet accounting
// — the drain either quiesces with every born packet consumed or yields
// a diagnosed stall, never a silent hang — and (c) bit-identical
// outcomes (Stats compared as a struct) across the three kernels at a
// fixed seed.
func TestChaosSoak(t *testing.T) {
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	flapsPlan := faults.Generate(topo, 21, faults.GenConfig{Flaps: 4, FlapEvery: 600, FlapDur: 150})
	lossPlan := faults.Generate(topo, 22, faults.GenConfig{DropReq: 0.25, DropAck: 0.25, DropStop: 0.25, DelayProb: 0.2, DelayMax: 6})
	stallsPlan := faults.Generate(topo, 23, faults.GenConfig{Stalls: 4, StallEvery: 700, StallDur: 200})
	mayhemPlan := faults.Generate(topo, 24, faults.GenConfig{
		Flaps: 3, FlapEvery: 800, FlapDur: 150,
		Stalls: 2, StallEvery: 900, StallDur: 150,
		DropReq: 0.15, DropAck: 0.15, DropStop: 0.15, DelayProb: 0.15, DelayMax: 4,
	})
	// heavyLossPlan loses so many signals that retry exhaustion outpaces
	// the watchdog: the expected outcome is a diagnosed stall, exercising
	// the StallDiagnostic path (which must also be kernel-identical).
	heavyLossPlan := faults.Generate(topo, 22, faults.GenConfig{DropReq: 0.4, DropAck: 0.4, DropStop: 0.4})
	cases := []struct {
		name     string
		scheme   SchemeName
		plan     faults.Plan
		rate     float64
		workload string
		arch     string
	}{
		{"upp_flaps", SchemeUPP, flapsPlan, 0.06, "", ""},
		{"upp_signal_loss", SchemeUPP, lossPlan, 0.06, "", ""},
		{"upp_signal_loss_heavy", SchemeUPP, heavyLossPlan, 0.12, "", ""},
		{"upp_eject_stalls", SchemeUPP, stallsPlan, 0.06, "", ""},
		{"upp_mayhem", SchemeUPP, mayhemPlan, 0.06, "", ""},
		{"remote_control_flaps", SchemeRemoteControl, flapsPlan, 0.06, "", ""},
		{"remote_control_stalls", SchemeRemoteControl, stallsPlan, 0.06, "", ""},
		{"none_flaps", SchemeNone, flapsPlan, 0.06, "", ""},
		// Closed-loop collective legs: the dependency-gated engine keeps
		// injecting while links flap and signals drop; stopping mid-ring
		// strands in-flight chunks the drain must still deliver.
		{"upp_collective_flaps", SchemeUPP, flapsPlan, 0, "ring_allreduce", ""},
		{"upp_collective_mayhem", SchemeUPP, mayhemPlan, 0, "all_to_all", ""},
		// Router-variant legs: port-down masks, drain pausing (oq) and
		// per-output allocation (voq) under flapping links must stay
		// panic-free, fully accounted and kernel-identical too.
		{"upp_flaps_oq", SchemeUPP, flapsPlan, 0.04, "", "oq"},
		{"upp_mayhem_voq", SchemeUPP, mayhemPlan, 0.06, "", "voq"},
	}
	kernels := []string{network.KernelNaive, network.KernelActive, network.KernelParallel}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var ref ChaosOutcome
			for i, kernel := range kernels {
				spec := ChaosSpec{
					Scheme:     tc.scheme,
					Kernel:     kernel,
					Plan:       tc.plan,
					Rate:       tc.rate,
					Workload:   tc.workload,
					RouterArch: tc.arch,
					Seed:       97,
					LoadCycles: 2500,
					DrainMax:   15000,
					StallLimit: 2000,
				}
				out, err := RunChaos(spec)
				if err != nil {
					t.Fatalf("kernel %s: %v", kernel, err)
				}
				if !out.Quiesced && out.Stall == "" {
					t.Fatalf("kernel %s: neither quiesced nor diagnosed", kernel)
				}
				if !out.Quiesced {
					t.Logf("kernel %s: diagnosed stall:\n%s", kernel, out.Stall)
				}
				if i == 0 {
					ref = out
					continue
				}
				if out.Quiesced != ref.Quiesced || out.FinalCycle != ref.FinalCycle {
					t.Fatalf("kernel %s diverges from %s: quiesced %v/%v, final cycle %d/%d",
						kernel, kernels[0], out.Quiesced, ref.Quiesced, out.FinalCycle, ref.FinalCycle)
				}
				if out.Stall != ref.Stall {
					t.Fatalf("kernel %s stall diagnostic diverges from %s:\n--- %s ---\n%s\n--- %s ---\n%s",
						kernel, kernels[0], kernel, out.Stall, kernels[0], ref.Stall)
				}
				if out.Stats != ref.Stats {
					t.Fatalf("kernel %s stats diverge from %s:\n%+v\nvs\n%+v", kernel, kernels[0], out.Stats, ref.Stats)
				}
			}
			if tc.scheme == SchemeUPP && tc.plan.Drop != [network.NumSignalKinds]float64{} {
				if ref.Stats.SignalsDropped == 0 {
					t.Error("signal-loss plan dropped nothing — fault injection not engaged?")
				}
				if ref.Stats.SignalRetries == 0 && ref.Stats.PopupsAborted == 0 && ref.Stats.PopupsStarted > 0 {
					t.Error("signals were dropped but no retry/abort was recorded — recovery not engaged?")
				}
			}
		})
	}
}

// TestChaosRunDeterminismSameKernel: the cheapest determinism property —
// the exact same spec twice on one kernel — catches any hidden RNG or
// map-order dependence in the fault path itself.
func TestChaosRunDeterminismSameKernel(t *testing.T) {
	topo, err := topology.Build(topology.BaselineConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	plan := faults.Generate(topo, 33, faults.GenConfig{
		Flaps: 2, FlapEvery: 700, FlapDur: 120,
		DropReq: 0.2, DropAck: 0.2, DropStop: 0.2,
	})
	spec := ChaosSpec{
		Scheme: SchemeUPP, Kernel: network.KernelActive, Plan: plan,
		Rate: 0.05, Seed: 11, LoadCycles: 1500, DrainMax: 12000, StallLimit: 2000,
	}
	a, err := RunChaos(spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunChaos(spec)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a != b {
		t.Fatalf("same spec, different outcomes:\n%+v\nvs\n%+v", a, b)
	}
}
