package experiments

import (
	"fmt"
	"os"

	"uppnoc/internal/message"

	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/reconfig"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// RunSpec describes one simulation point.
type RunSpec struct {
	Topo topology.SystemConfig
	// Scale, when non-nil, builds the system with topology.BuildScale
	// instead of Topo — the scale-out experiments. Scale runs don't use
	// the composable-scheme cache (keyed on SystemConfig), so pair Scale
	// with Scheme, not SchemeOverride, for upp/remote_control/none.
	Scale     *topology.ScaleConfig
	Faults    int
	FaultSeed uint64
	// FaultsPerLayer faults that many mesh links in every layer
	// (InjectFaultsPerLayer) instead of Faults' global count — the
	// fault-sweep robustness figure.
	FaultsPerLayer int
	// FaultPlan, when non-empty, attaches a runtime fault-injection plan
	// (faults.ParseSpec syntax: "flaps=4,drop=0.2,..."). UPP runs it with
	// the hardened config (signal timeout + retry) so injected signal loss
	// is recovered rather than fatal.
	FaultPlan string
	Scheme    SchemeName
	// SchemeOverride, when non-nil, is used instead of Scheme (threshold
	// sweeps).
	SchemeOverride func(t *topology.Topology) (network.Scheme, error)
	VCsPerVNet     int
	// BufferDepth overrides the per-VC buffer depth when > 0 (ablation).
	BufferDepth int
	Pattern     traffic.Pattern
	Rate        float64 // flits/cycle/node offered
	Seed        uint64
	Dur         Durations
	UseUpDown   bool
	// Adaptive selects odd-even minimal-adaptive local routing.
	Adaptive bool
	// VCT selects virtual cut-through flow control (forces BufferDepth to
	// hold a whole data packet when unset).
	VCT bool
	// TraceLimit, when > 0, prints the first N simulator events to
	// stderr.
	TraceLimit int
	// RouterArch selects the router microarchitecture ("iq", "oq",
	// "voq"); empty defers to UPP_ROUTER and then the iq default.
	RouterArch string
}

// Point is the measured outcome of one run.
type Point struct {
	Rate       float64
	NetLat     float64
	QueueLat   float64
	TotalLat   float64
	Throughput float64 // accepted flits/cycle/node
	// Latency percentiles over the measurement window (total latency).
	LatP50, LatP99, LatMax uint64
	Packets                uint64 // packets delivered in the measurement window
	Upward                 uint64
	Popups                 uint64
	Signals                uint64
	Saturated              bool
}

// latencyCap marks a run as saturated when average total latency exceeds
// it (the paper's Fig. 7 y-axis tops out at 100 cycles).
const latencyCap = 100.0

// Run executes one simulation point. When the result cache is enabled
// (UPP_CACHE_DIR, see cache.go) and the spec is canonicalizable, a cached
// Point is returned without simulating, and a cold run may restore a
// warm-start checkpoint to skip the warmup phase; both reproduce the
// uncached run bit-identically.
func Run(spec RunSpec) (Point, error) {
	dir := CacheDir()
	env, canonical, cacheable := canonicalSpec(spec)
	if dir == "" || !cacheable {
		return runMeasured(spec, nil)
	}
	hash := cacheHash(canonical)
	if pt, ok := loadCachedPoint(dir, hash, canonical); ok {
		cacheHits.Add(1)
		return pt, nil
	}
	cacheMisses.Add(1)
	pt, err := runMeasured(spec, newWarmState(dir, env))
	if err == nil {
		storeCachedPoint(dir, hash, canonical, pt)
	}
	return pt, err
}

// BuildRun constructs the simulation environment for one spec — the
// topology (with any static faults), the scheme, the network (with any
// runtime fault plan attached) and the traffic generator — without
// running a cycle. Run drives this; uppsim's checkpoint flags and the
// warm-start machinery rebuild identical environments from it.
func BuildRun(spec RunSpec) (*network.Network, *traffic.Generator, error) {
	var topo *topology.Topology
	var err error
	if spec.Scale != nil {
		topo, err = topology.BuildScale(*spec.Scale)
	} else {
		topo, err = topology.Build(spec.Topo)
	}
	if err != nil {
		return nil, nil, err
	}
	if spec.Faults > 0 {
		if _, err := topo.InjectFaults(spec.Faults, spec.FaultSeed); err != nil {
			return nil, nil, err
		}
	}
	if spec.FaultsPerLayer > 0 {
		if _, err := topo.InjectFaultsPerLayer(spec.FaultsPerLayer, spec.FaultSeed); err != nil {
			return nil, nil, err
		}
	}
	var scheme network.Scheme
	switch {
	case spec.SchemeOverride != nil:
		scheme, err = spec.SchemeOverride(topo)
	case spec.FaultPlan != "" && spec.Scheme == SchemeUPP:
		// Runtime signal faults need the retry machinery.
		scheme = HardenedUPP()
	case spec.Scale == nil && spec.Faults == 0 && spec.FaultsPerLayer == 0:
		// Cacheable: composable's design-time search is reused across
		// runs of the same configuration. (Scale runs skip the cache —
		// it is keyed on SystemConfig, which a Scale spec leaves zero.)
		scheme, err = cachedScheme(spec.Topo, spec.Scheme)(topo)
	default:
		scheme, err = MakeScheme(spec.Scheme, topo)
	}
	if err != nil {
		return nil, nil, err
	}
	cfg := network.DefaultConfig()
	if spec.VCsPerVNet > 0 {
		cfg.Router.VCsPerVNet = spec.VCsPerVNet
	}
	if spec.BufferDepth > 0 {
		cfg.Router.BufferDepth = spec.BufferDepth
	}
	if spec.VCT {
		cfg.Router.VCT = true
		if cfg.Router.BufferDepth < message.DataPacketFlits {
			cfg.Router.BufferDepth = message.DataPacketFlits
		}
	}
	var plan faults.Plan
	if spec.FaultPlan != "" {
		plan, err = faults.ParseSpec(topo, spec.FaultPlan)
		if err != nil {
			return nil, nil, err
		}
	}
	cfg.Seed = spec.Seed + 1
	cfg.RouterArch = spec.RouterArch
	// Persistent topology events rebuild routing at runtime, which needs
	// the fault-indexed up*/down* local (XY consults Link.Faulty at route
	// time and would wedge on a mid-run kill).
	cfg.UseUpDown = spec.UseUpDown || spec.Faults > 0 || spec.FaultsPerLayer > 0 || plan.Persistent()
	cfg.Adaptive = spec.Adaptive
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		return nil, nil, err
	}
	if spec.FaultPlan != "" {
		if plan.Persistent() {
			if _, perr := reconfig.Attach(n, reconfig.Config{Plan: plan}); perr != nil {
				return nil, nil, perr
			}
		} else if _, perr := faults.Attach(n, plan); perr != nil {
			return nil, nil, perr
		}
	}
	if spec.TraceLimit > 0 {
		n.SetTracer(network.WriteTracer(os.Stderr, spec.TraceLimit))
	}
	g := traffic.NewGenerator(n, spec.Pattern, spec.Rate, spec.Seed+7777)
	return n, g, nil
}

// runMeasured is the cold path of Run: build the environment, warm up
// (or restore a warm-start checkpoint), measure, summarize. warm may be
// nil (warm-start disabled or spec not canonicalizable).
func runMeasured(spec RunSpec, warm *warmState) (Point, error) {
	n, g, err := BuildRun(spec)
	if err != nil {
		return Point{}, err
	}
	at := sim.Cycle(spec.Dur.Warmup)
	var checkpoint func() error
	if warm != nil {
		snapBytes, found := warm.load()
		if found && n.ReadSnapshot(snapBytes, snapshotExtras(n, g)...) == nil && n.Cycle() == at {
			warmHits.Add(1)
		} else {
			if found {
				// A stale or corrupt checkpoint may have partially
				// overwritten the network before failing: rebuild and run
				// the warmup cold.
				n, g, err = BuildRun(spec)
				if err != nil {
					return Point{}, err
				}
			}
			warmMisses.Add(1)
			checkpoint = func() error { warm.store(n, g); return nil }
		}
	}
	return finishRun(spec, n, g, at, checkpoint)
}

// stepTo advances the simulation to the target cycle with injection —
// the same Tick-then-Step loop as Generator.Run, but addressed by
// absolute cycle so it composes with restored starting points.
func stepTo(n *network.Network, g *traffic.Generator, target sim.Cycle) {
	for n.Cycle() < target {
		g.Tick(n.Cycle())
		n.Step()
	}
}

// finishRun advances a simulation from its current cycle (0 for a cold
// run, the checkpoint cycle for a restored one) to the end of the spec's
// warmup+measurement schedule and assembles the Point. checkpoint, when
// non-nil, fires once when the run reaches cycle at; at == Warmup fires
// after the warmup cycles but before the measurement reset, matching the
// warm-start capture point.
func finishRun(spec RunSpec, n *network.Network, g *traffic.Generator, at sim.Cycle, checkpoint func() error) (Point, error) {
	warmEnd := sim.Cycle(spec.Dur.Warmup)
	end := warmEnd + sim.Cycle(spec.Dur.Measure)
	fired := checkpoint == nil
	step := func(target sim.Cycle) error {
		if !fired && at >= n.Cycle() && at <= target {
			stepTo(n, g, at)
			fired = true
			if err := checkpoint(); err != nil {
				return err
			}
		}
		stepTo(n, g, target)
		return nil
	}
	if n.Cycle() <= warmEnd {
		if err := step(warmEnd); err != nil {
			return Point{}, err
		}
		n.ResetMeasurement()
	}
	if err := step(end); err != nil {
		return Point{}, err
	}
	if !fired {
		return Point{}, fmt.Errorf("experiments: checkpoint cycle %d outside the run's schedule (0..%d)", at, end)
	}
	p := Point{
		Rate:       spec.Rate,
		NetLat:     n.AvgNetLatency(),
		QueueLat:   n.AvgQueueLatency(),
		TotalLat:   n.AvgTotalLatency(),
		Throughput: n.Throughput(),
		LatP50:     n.LatencyPercentile(0.50),
		LatP99:     n.LatencyPercentile(0.99),
		LatMax:     n.MaxLatency(),
		Packets:    n.Stats.MeasuredPackets,
		Upward:     n.Stats.UpwardPackets,
		Popups:     n.Stats.PopupsCompleted,
		Signals:    n.Stats.SignalsSent,
	}
	p.Saturated = p.TotalLat > latencyCap || p.TotalLat == 0
	return p, nil
}

// Curve is a latency-vs-injection-rate series for one configuration.
type Curve struct {
	Label  string
	Points []Point
	// SaturationRate is the highest offered rate whose measured latency
	// stayed under the cap; SaturationThroughput is the accepted
	// throughput there.
	SaturationRate       float64
	SaturationThroughput float64
	// ZeroLoadLatency is the latency of the first (lowest-rate) point.
	ZeroLoadLatency float64
}

// SweepRates runs spec across the given offered rates serially and
// summarizes the curve. The sweep stops two points after saturation (the
// paper's plots end shortly past the knee).
func SweepRates(spec RunSpec, rates []float64, label string) (Curve, error) {
	return SweepRatesWith(spec, rates, label, PoolOptions{Jobs: 1})
}

// SweepRatesWith is SweepRates on the worker pool: the rates run through
// RunAll in waves of opts.Jobs, and the serial stopping rule is applied to
// the wave's points in rate order. Because every point is an independent
// deterministic run and the truncation walks points in the same order the
// serial sweep visits them, the resulting Curve is bit-identical at any
// worker count (points a jobs>1 wave computes beyond the serial stopping
// index are discarded, trading some redundant work for wall-clock).
func SweepRatesWith(spec RunSpec, rates []float64, label string, opts PoolOptions) (Curve, error) {
	c := Curve{Label: label}
	wave := opts.jobs()
	if wave < 1 {
		wave = 1
	}
	past := 0
sweep:
	for start := 0; start < len(rates); start += wave {
		end := start + wave
		if end > len(rates) {
			end = len(rates)
		}
		specs := make([]RunSpec, 0, end-start)
		for _, r := range rates[start:end] {
			s := spec
			s.Rate = r
			specs = append(specs, s)
		}
		pts, err := RunAll(specs, opts)
		batch, _ := err.(*BatchError)
		if err != nil && batch == nil {
			return c, err
		}
		failed := map[int]error{}
		if batch != nil {
			for _, re := range batch.Failed {
				failed[re.Index] = re.Err
			}
		}
		for i, pt := range pts {
			if ferr := failed[i]; ferr != nil {
				return c, fmt.Errorf("sweep %s rate %.4f: %w", label, rates[start+i], ferr)
			}
			c.Points = append(c.Points, pt)
			if !pt.Saturated {
				c.SaturationRate = pt.Rate
				c.SaturationThroughput = pt.Throughput
				past = 0
			} else {
				past++
				if past >= 2 {
					break sweep
				}
			}
		}
	}
	if len(c.Points) > 0 {
		c.ZeroLoadLatency = c.Points[0].TotalLat
	}
	return c, nil
}

// DefaultRates returns the offered-load grid used by the latency figures.
func DefaultRates() []float64 {
	return []float64{0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04,
		0.045, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20}
}
