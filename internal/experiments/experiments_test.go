package experiments

import (
	"strings"
	"testing"

	"uppnoc/internal/coherence"
	"uppnoc/internal/core"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func TestTableRender(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRowf("v", 1.23456)
	tb.AddRow("longer-cell", "y")
	out := tb.Render()
	for _, want := range []string{"== x: demo ==", "a", "bb", "1.235", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "v,1.235") {
		t.Fatalf("csv rows wrong: %q", csv)
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 8 {
		t.Fatalf("table1 has %d rows", len(t1.Rows))
	}
	// The UPP row claims every property — the paper's punchline.
	upp := t1.Rows[len(t1.Rows)-1]
	if upp[0] != "upp" {
		t.Fatal("last row should be upp")
	}
	for _, cell := range upp[1:] {
		if cell != "yes" {
			t.Fatalf("upp row not all-yes: %v", upp)
		}
	}
	t2 := Table2()
	if len(t2.Rows) < 10 {
		t.Fatal("table2 too small")
	}
	f14 := Fig14()
	if len(f14.Rows) != 4 {
		t.Fatalf("fig14 has %d rows", len(f14.Rows))
	}
	// Composable column is all zero.
	for _, r := range f14.Rows {
		if r[2] != "0.00%" {
			t.Fatalf("composable overhead nonzero: %v", r)
		}
	}
}

func TestMakeScheme(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cases := []struct {
		name     SchemeName
		wantName string // Name() of the instantiated scheme; "" means error
	}{
		{SchemeComposable, "composable"},
		{SchemeRemoteControl, "remote_control"},
		{SchemeUPP, "upp"},
		{SchemeNone, "none"},
		{"bogus", ""},
		{"", ""},
		{"UPP", ""}, // scheme names are case-sensitive
		{"upp ", ""},
	}
	for _, tc := range cases {
		t.Run(string(tc.name), func(t *testing.T) {
			s, err := MakeScheme(tc.name, topo)
			if tc.wantName == "" {
				if err == nil {
					t.Fatalf("MakeScheme(%q) accepted", tc.name)
				}
				if !strings.Contains(err.Error(), string(tc.name)) {
					t.Fatalf("error %q does not quote the bad name", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if got := s.Name(); got != tc.wantName {
				t.Fatalf("MakeScheme(%q).Name() = %q, want %q", tc.name, got, tc.wantName)
			}
		})
	}
}

func TestUPPWithThresholdPropagation(t *testing.T) {
	defaultGap := core.DefaultConfig().SignalGap
	cases := []struct {
		in, want int
	}{
		{20, 20},
		{100, 100},
		{1000, 1000},
		{0, 20}, // non-positive thresholds fall back to the Table II value
		{-5, 20},
	}
	for _, tc := range cases {
		s := UPPWithThreshold(tc.in)
		u, ok := s.(*core.UPP)
		if !ok {
			t.Fatalf("UPPWithThreshold returned %T, want *core.UPP", s)
		}
		cfg := u.Config()
		if cfg.Threshold != tc.want {
			t.Fatalf("UPPWithThreshold(%d): threshold %d, want %d", tc.in, cfg.Threshold, tc.want)
		}
		if cfg.SignalGap != defaultGap {
			t.Fatalf("UPPWithThreshold(%d) disturbed SignalGap: %d, want %d", tc.in, cfg.SignalGap, defaultGap)
		}
	}
}

func TestRatioAndReduction(t *testing.T) {
	if got := ratioPct(1.2, 1.0); got < 19.9 || got > 20.1 {
		t.Fatalf("ratioPct = %v", got)
	}
	if got := ratioPct(1, 0); got != 0 {
		t.Fatalf("ratioPct div0 = %v", got)
	}
	a := Curve{Points: []Point{{TotalLat: 90}, {TotalLat: 100, Saturated: true}}}
	base := Curve{Points: []Point{{TotalLat: 100}, {TotalLat: 100}}}
	if got := latencyReductionPct(a, base); got < 9.9 || got > 10.1 {
		t.Fatalf("latencyReductionPct = %v", got)
	}
}

func TestRunSmoke(t *testing.T) {
	pt, err := Run(RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Rate:       0.02,
		Seed:       1,
		Dur:        Durations{Warmup: 500, Measure: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.TotalLat <= 0 || pt.Throughput <= 0 || pt.Packets == 0 {
		t.Fatalf("degenerate point: %+v", pt)
	}
}

func TestSweepStopsPastSaturation(t *testing.T) {
	spec := RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Seed:       1,
		Dur:        Durations{Warmup: 1000, Measure: 4000},
	}
	c, err := SweepRates(spec, []float64{0.02, 0.30, 0.35, 0.40, 0.45}, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) > 3 {
		t.Fatalf("sweep ran %d points; should stop two past saturation", len(c.Points))
	}
	if c.SaturationRate != 0.02 {
		t.Fatalf("saturation rate %v", c.SaturationRate)
	}
}

func TestRunFullSystemSmoke(t *testing.T) {
	w, err := coherence.BenchmarkByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(0.03)
	r, err := RunFullSystem(w, SchemeUPP, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Runtime <= 0 || r.Packets == 0 || r.EnergyJ <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

func TestFaultyRunUsesUpDown(t *testing.T) {
	pt, err := Run(RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     SchemeUPP,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Rate:       0.02,
		Seed:       1,
		Dur:        Durations{Warmup: 500, Measure: 2000},
		Faults:     8,
		FaultSeed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.TotalLat <= 0 {
		t.Fatal("no traffic delivered on the faulty system")
	}
}
