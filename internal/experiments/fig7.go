package experiments

import (
	"fmt"
	"strings"
	"sync"

	"uppnoc/internal/composable"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// composableCache reuses the design-time restriction search across runs of
// the same topology configuration (the tables are immutable and the
// structure is identical for equal configs).
var (
	composableMu    sync.Mutex
	composableCache = map[topology.SystemConfig]*composable.Scheme{}
)

// cachedScheme wires caching into RunSpec.
func cachedScheme(cfg topology.SystemConfig, name SchemeName) func(*topology.Topology) (network.Scheme, error) {
	if name != SchemeComposable {
		return func(t *topology.Topology) (network.Scheme, error) { return MakeScheme(name, t) }
	}
	return func(t *topology.Topology) (network.Scheme, error) {
		composableMu.Lock()
		defer composableMu.Unlock()
		if s, ok := composableCache[cfg]; ok {
			return s, nil
		}
		s, err := composable.NewScheme(t)
		if err != nil {
			return nil, err
		}
		composableCache[cfg] = s
		return s, nil
	}
}

// Fig7 reproduces the baseline-system latency/throughput comparison:
// four synthetic patterns x {composable, remote control, UPP} x {1,4} VCs.
// It returns the full curves plus a summary of saturation-throughput
// improvement and latency reduction, the paper's headline numbers
// (+18~72% throughput, -4.5~8.2% latency).
func Fig7(dur Durations, opts PoolOptions) ([]Table, error) {
	return latencyFigure("fig7", topology.BaselineConfig(), traffic.Patterns(), dur, opts)
}

// Fig9 reproduces the 128-core system comparison (4x8 interposer, eight
// chiplets) under uniform random traffic.
func Fig9(dur Durations, opts PoolOptions) ([]Table, error) {
	return latencyFigure("fig9", topology.LargeConfig(), []traffic.Pattern{traffic.UniformRandom{}}, dur, opts)
}

func latencyFigure(id string, sysCfg topology.SystemConfig, patterns []traffic.Pattern, dur Durations, opts PoolOptions) ([]Table, error) {
	curves := Table{
		ID:     id,
		Title:  "Latency vs injection rate",
		Header: []string{"pattern", "scheme", "vcs", "rate", "latency", "net_lat", "queue_lat", "throughput", "saturated"},
	}
	summary := Table{
		ID:     id + "_summary",
		Title:  "Saturation throughput and latency summary",
		Header: []string{"pattern", "vcs", "scheme", "sat_throughput", "vs_composable", "low_load_latency", "lat_vs_composable", "lat_vs_remote_control"},
		Notes: []string{
			"paper: UPP improves saturation throughput by 18%~72% over composable routing",
			"paper: UPP reduces latency by 4.5%~6.6% vs composable and 5.7%~8.2% vs remote control",
		},
	}
	type key struct {
		pattern string
		vcs     int
		scheme  SchemeName
	}
	results := map[key]Curve{}
	for _, vcs := range []int{1, 4} {
		for _, pat := range patterns {
			for _, sch := range ComparedSchemes() {
				// Named scheme, not a SchemeOverride closure: Run's default
				// path reuses the composable routing tables anyway, and a
				// canonicalizable spec lets the result cache serve these
				// sweeps (see cache.go).
				spec := RunSpec{
					Topo:       sysCfg,
					Scheme:     sch,
					VCsPerVNet: vcs,
					Pattern:    pat,
					Seed:       11,
					Dur:        dur,
				}
				label := fmt.Sprintf("%s-%dVC-%s", sch, vcs, pat.Name())
				opts.Progress.log("%s: sweeping %s", id, label)
				c, err := SweepRatesWith(spec, DefaultRates(), label, opts)
				if err != nil {
					return nil, err
				}
				results[key{pat.Name(), vcs, sch}] = c
				for _, pt := range c.Points {
					curves.AddRowf(pat.Name(), string(sch), vcs, pt.Rate, pt.TotalLat, pt.NetLat, pt.QueueLat, pt.Throughput, pt.Saturated)
				}
			}
		}
	}
	charts := Table{
		ID:     id + "_charts",
		Title:  "Latency curves (terminal rendering of the figure)",
		Header: []string{"chart"},
	}
	for _, vcs := range []int{1, 4} {
		for _, pat := range patterns {
			var cs []Curve
			for _, sch := range ComparedSchemes() {
				cs = append(cs, results[key{pat.Name(), vcs, sch}])
			}
			chart := AsciiChart(fmt.Sprintf("%s, %d VC(s)", pat.Name(), vcs), cs, "CRU")
			for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
				charts.AddRow(line)
			}
			charts.AddRow("")
		}
	}
	for _, vcs := range []int{1, 4} {
		for _, pat := range patterns {
			comp := results[key{pat.Name(), vcs, SchemeComposable}]
			rc := results[key{pat.Name(), vcs, SchemeRemoteControl}]
			upp := results[key{pat.Name(), vcs, SchemeUPP}]
			for _, sch := range ComparedSchemes() {
				c := results[key{pat.Name(), vcs, sch}]
				vsComp := ratioPct(c.SaturationThroughput, comp.SaturationThroughput)
				latVsComp := latencyReductionPct(c, comp)
				latVsRC := latencyReductionPct(c, rc)
				summary.AddRowf(pat.Name(), vcs, string(sch),
					c.SaturationThroughput, fmtPct(vsComp), c.ZeroLoadLatency, fmtPct(latVsComp), fmtPct(latVsRC))
			}
			_ = upp
		}
	}
	return []Table{curves, summary, charts}, nil
}

func ratioPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}

// latencyReductionPct averages the latency reduction of c versus base over
// the rates where both are unsaturated.
func latencyReductionPct(c, base Curve) float64 {
	sum, n := 0.0, 0
	for i, pt := range c.Points {
		if pt.Saturated || i >= len(base.Points) || base.Points[i].Saturated {
			continue
		}
		if base.Points[i].TotalLat > 0 {
			sum += 100 * (1 - pt.TotalLat/base.Points[i].TotalLat)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }
