package experiments

import (
	"fmt"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// FaultSweep is the fig11-style robustness runner over per-layer faults:
// UPP saturation throughput with 0/2/4 faulty mesh links in every layer
// (interposer and each chiplet), up*/down* local routing, per VC count.
// Unlike Fig11's global fault budget — which random placement can
// concentrate in one mesh — the per-layer injection puts uniform pressure
// on every layer, the worst case for UPP's up-port timeout detection
// (longer detours raise residence times near the threshold).
func FaultSweep(dur Durations, opts PoolOptions) ([]Table, error) {
	curves := Table{
		ID:     "fault_sweep",
		Title:  "UPP with per-layer faulty links (latency vs injection rate)",
		Header: []string{"faults_per_layer", "vcs", "rate", "latency", "throughput", "popups", "saturated"},
		Notes: []string{
			"faults are injected per layer (InjectFaultsPerLayer): every chiplet mesh and the interposer mesh lose the same number of links",
			"expected: graceful saturation-throughput degradation, mirroring fig11's global-fault trend",
		},
	}
	summary := Table{
		ID:     "fault_sweep_summary",
		Title:  "UPP per-layer-fault saturation summary",
		Header: []string{"faults_per_layer", "vcs", "sat_throughput", "low_load_latency", "popups_at_sat"},
	}
	for _, vcs := range []int{1, 4} {
		for _, perLayer := range []int{0, 2, 4} {
			opts.Progress.log("fault_sweep: faults_per_layer=%d vcs=%d", perLayer, vcs)
			spec := RunSpec{
				Topo:           topology.BaselineConfig(),
				Scheme:         SchemeUPP,
				VCsPerVNet:     vcs,
				Pattern:        traffic.UniformRandom{},
				Seed:           31,
				Dur:            dur,
				FaultsPerLayer: perLayer,
				FaultSeed:      4321,
				UseUpDown:      true,
			}
			c, err := SweepRatesWith(spec, DefaultRates(), fmt.Sprintf("faults_per_layer=%d", perLayer), opts)
			if err != nil {
				return nil, err
			}
			var popupsAtSat uint64
			for _, pt := range c.Points {
				curves.AddRowf(perLayer, vcs, pt.Rate, pt.TotalLat, pt.Throughput, pt.Popups, pt.Saturated)
				if !pt.Saturated {
					popupsAtSat = pt.Popups
				}
			}
			summary.AddRowf(perLayer, vcs, c.SaturationThroughput, c.ZeroLoadLatency, popupsAtSat)
		}
	}
	return []Table{curves, summary}, nil
}
