package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// snapSpec is the shared configuration of the checkpoint/restore
// equivalence tests: small enough to run under -race -short, loaded
// enough (1 VC, near the knee) that popups, signals and queued flits are
// in flight at the checkpoint cycle.
func snapSpec(sch SchemeName, arch string) RunSpec {
	return RunSpec{
		Topo:       topology.BaselineConfig(),
		Scheme:     sch,
		VCsPerVNet: 1,
		Pattern:    traffic.UniformRandom{},
		Rate:       0.16,
		Seed:       11,
		Dur:        Durations{Warmup: 400, Measure: 800},
		RouterArch: arch,
	}
}

// TestCheckpointRestoreEquivalence is the tentpole acceptance test: a run
// checkpointed at cycle C and resumed from the checkpoint must reproduce
// the uninterrupted run bit-identically, across every cycle kernel, shard
// count, router microarchitecture and both popup-style schemes. The
// checkpoint lands mid-measurement (cycle 700 of a 400+800 schedule), so
// the statistics, latency histogram, event wheel and scheme FSMs are all
// mid-flight when serialized. Deliberately not skipped under -short: CI
// runs this matrix under the race detector.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	kernels := []struct {
		name   string
		shards string
	}{
		{"active", ""},
		{"naive", ""},
		{"parallel", "1"},
		{"parallel", "4"},
	}
	var totalPopups uint64
	for _, k := range kernels {
		for _, arch := range []string{"iq", "oq", "voq"} {
			for _, sch := range []SchemeName{SchemeUPP, SchemeRemoteControl} {
				name := fmt.Sprintf("%s/shards%s/%s/%s", k.name, k.shards, arch, sch)
				t.Run(name, func(t *testing.T) {
					t.Setenv("UPP_KERNEL", k.name)
					t.Setenv("UPP_SHARDS", k.shards)
					t.Setenv("UPP_CACHE_DIR", "")
					spec := snapSpec(sch, arch)
					var buf bytes.Buffer
					cold, err := RunCheckpointed(spec, 700, &buf)
					if err != nil {
						t.Fatal(err)
					}
					restored, rspec, err := RunRestored(buf.Bytes())
					if err != nil {
						t.Fatal(err)
					}
					if restored != cold {
						t.Fatalf("restored run diverged from uninterrupted run:\ncold:     %+v\nrestored: %+v", cold, restored)
					}
					if rspec.Scheme != spec.Scheme || rspec.RouterArch != spec.RouterArch {
						t.Fatalf("checkpoint spec round-trip: got scheme=%s arch=%s", rspec.Scheme, rspec.RouterArch)
					}
					totalPopups += cold.Popups
				})
			}
		}
	}
	if totalPopups == 0 {
		t.Fatal("no popups completed anywhere in the matrix — the checkpoint never exercised scheme FSM state")
	}
}

// TestCheckpointIsPureObservation pins that writing a checkpoint does not
// perturb the run: RunCheckpointed's Point equals plain Run's, for both a
// mid-measurement and an end-of-warmup checkpoint cycle (the latter is
// the warm-start capture point, before the measurement reset).
func TestCheckpointIsPureObservation(t *testing.T) {
	t.Setenv("UPP_CACHE_DIR", "")
	for _, sch := range []SchemeName{SchemeUPP, SchemeRemoteControl} {
		spec := snapSpec(sch, "iq")
		plain, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range []int64{400, 700} {
			var buf bytes.Buffer
			pt, err := RunCheckpointed(spec, at, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if pt != plain {
				t.Fatalf("%s: checkpoint at %d perturbed the run:\nplain:        %+v\ncheckpointed: %+v", sch, at, pt, plain)
			}
			restored, _, err := RunRestored(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if restored != plain {
				t.Fatalf("%s: restore from cycle %d diverged:\nplain:    %+v\nrestored: %+v", sch, at, restored, plain)
			}
		}
	}
}

// TestCheckpointRestoreFaulted checkpoints a run with the runtime fault
// engine active — link flaps in progress, signal drops and delays armed —
// in the middle of a flap window, and requires bit-identical resumption.
// The fault engine's signal fates are stateless hashes of the cycle, but
// the retry/timeout state they induce in the hardened UPP scheme is not;
// this pins that that state survives serialization.
func TestCheckpointRestoreFaulted(t *testing.T) {
	t.Setenv("UPP_CACHE_DIR", "")
	spec := snapSpec(SchemeUPP, "iq")
	spec.Rate = 0.05
	spec.FaultPlan = "seed=9,flaps=4,flapevery=200,drop=0.15,delayprob=0.1"
	var buf bytes.Buffer
	cold, err := RunCheckpointed(spec, 700, &buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := RunRestored(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if restored != cold {
		t.Fatalf("faulted restore diverged:\ncold:     %+v\nrestored: %+v", cold, restored)
	}
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain != cold {
		t.Fatalf("faulted checkpoint perturbed the run:\nplain:        %+v\ncheckpointed: %+v", plain, cold)
	}
}
