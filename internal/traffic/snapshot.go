package traffic

import (
	"math"

	"uppnoc/internal/snap"
)

// SnapshotLabel implements network.SnapshotExtra.
func (g *Generator) SnapshotLabel() string { return "traffic" }

// SnapshotState serializes the generator's cursor state: the offered
// load, the control/data mix and every per-core Bernoulli stream, so a
// restored run draws the exact injection sequence the uninterrupted run
// would have (DESIGN.md §14).
func (g *Generator) SnapshotState(w *snap.Writer) {
	w.F64(g.Rate)
	w.F64(g.CtrlFraction)
	w.Uvarint(uint64(len(g.rngs)))
	for _, rng := range g.rngs {
		st := rng.State()
		for _, s := range st {
			w.Uvarint(s)
		}
	}
}

// RestoreState implements network.SnapshotExtra.
func (g *Generator) RestoreState(r *snap.Reader) error {
	rate := r.F64("traffic rate")
	ctrl := r.F64("traffic ctrl fraction")
	if r.Err() == nil && (math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0) {
		r.Fail("traffic rate %v invalid", rate)
	}
	if r.Err() == nil && (math.IsNaN(ctrl) || ctrl < 0 || ctrl > 1) {
		r.Fail("traffic ctrl fraction %v invalid", ctrl)
	}
	n := r.Len("traffic rng count", len(g.rngs))
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(g.rngs) {
		r.Fail("traffic snapshot has %d core streams, generator has %d", n, len(g.rngs))
		return r.Err()
	}
	for i := 0; i < n; i++ {
		var st [4]uint64
		for j := range st {
			st[j] = r.Uvarint("traffic rng word")
		}
		if r.Err() != nil {
			return r.Err()
		}
		g.rngs[i].SetState(st)
	}
	g.Rate = rate
	g.CtrlFraction = ctrl
	g.updateProb()
	return r.Err()
}
