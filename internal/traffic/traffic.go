// Package traffic provides the synthetic workloads of the evaluation
// (Table II): uniform random, bit complement, bit rotation and transpose
// patterns over the system's cores, injected as a Bernoulli process with a
// mix of 1-flit control and 5-flit data packets.
package traffic

import (
	"fmt"
	"math/bits"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Pattern maps a source core index to a destination core index.
type Pattern interface {
	Name() string
	// Dest returns the destination core index for a packet from src among
	// n cores. It may return src, in which case the generator skips the
	// injection (self-traffic does not enter the network).
	Dest(src, n int, rng *sim.RNG) int
}

// UniformRandom sends each packet to a uniformly random core.
type UniformRandom struct{}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform_random" }

// Dest implements Pattern.
func (UniformRandom) Dest(src, n int, rng *sim.RNG) int { return rng.Intn(n) }

// BitComplement sends core s to core ~s (mod n). Requires n to be a power
// of two.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit_complement" }

// Dest implements Pattern.
func (BitComplement) Dest(src, n int, _ *sim.RNG) int { return (n - 1) ^ src }

// BitRotation rotates the source index left by one bit.
type BitRotation struct{}

// Name implements Pattern.
func (BitRotation) Name() string { return "bit_rotation" }

// Dest implements Pattern.
func (BitRotation) Dest(src, n int, _ *sim.RNG) int {
	b := uint(bits.Len(uint(n - 1)))
	return int((uint(src)<<1 | uint(src)>>(b-1)) & uint(n-1))
}

// Transpose swaps the high and low halves of the index bits — the classic
// matrix-transpose pattern.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(src, n int, _ *sim.RNG) int {
	b := uint(bits.Len(uint(n - 1)))
	half := b / 2
	lo := uint(src) & (1<<half - 1)
	hi := uint(src) >> half
	return int((lo<<(b-half) | hi) & uint(n-1))
}

// Patterns returns the four synthetic patterns of Fig. 7 in paper order.
func Patterns() []Pattern {
	return []Pattern{UniformRandom{}, BitComplement{}, BitRotation{}, Transpose{}}
}

// PatternByName looks a pattern up by its Name.
func PatternByName(name string) (Pattern, error) {
	for _, p := range Patterns() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Generator injects synthetic traffic into a network.
type Generator struct {
	net     *network.Network
	pattern Pattern
	cores   []topology.NodeID
	rngs    []*sim.RNG

	// Rate is the offered load in flits/cycle/node.
	Rate float64
	// CtrlFraction is the fraction of packets that are 1-flit control
	// packets; the rest are 5-flit data packets (Table II's mix).
	CtrlFraction float64

	// CoreAlive, when set, gates injection on both endpoints' compute
	// being alive (the reconfiguration engine's chiplet fail-stop): a
	// packet whose source or destination core is dead is not
	// materialized. The RNG draws still happen, so the surviving cores'
	// traffic streams are identical with and without deaths.
	CoreAlive func(topology.NodeID) bool

	pktProb float64
}

// NewGenerator builds a generator for net using pattern at the given
// offered load (flits/cycle/node).
func NewGenerator(net *network.Network, pattern Pattern, rate float64, seed uint64) *Generator {
	g := &Generator{
		net:          net,
		pattern:      pattern,
		cores:        net.Topo.Cores(),
		Rate:         rate,
		CtrlFraction: 0.5,
	}
	master := sim.NewRNG(seed)
	g.rngs = make([]*sim.RNG, len(g.cores))
	for i := range g.rngs {
		g.rngs[i] = master.Split(uint64(i))
	}
	g.updateProb()
	return g
}

func (g *Generator) updateProb() {
	avgFlits := g.CtrlFraction*float64(message.ControlPacketFlits) +
		(1-g.CtrlFraction)*float64(message.DataPacketFlits)
	g.pktProb = g.Rate / avgFlits
}

// SetRate changes the offered load.
func (g *Generator) SetRate(rate float64) {
	g.Rate = rate
	g.updateProb()
}

// Tick injects this cycle's packets. Call once per cycle before
// Network.Step.
func (g *Generator) Tick(cycle sim.Cycle) {
	n := len(g.cores)
	for i, src := range g.cores {
		rng := g.rngs[i]
		if !rng.Bernoulli(g.pktProb) {
			continue
		}
		d := g.pattern.Dest(i, n, rng)
		if d >= n {
			// Bit patterns are defined over power-of-two populations; on
			// other sizes (heterogeneous systems) out-of-range images are
			// folded back rather than crashing the run.
			d %= n
		}
		if d == i {
			continue
		}
		ctrl := rng.Bernoulli(g.CtrlFraction)
		reqVNet := ctrl && rng.Bernoulli(0.5)
		if g.CoreAlive != nil && (!g.CoreAlive(src) || !g.CoreAlive(g.cores[d])) {
			continue
		}
		// Recycled from the network's pool: the destination NI releases
		// the packet once its PE consumes it.
		p := g.net.AllocPacket()
		p.Src = src
		p.Dst = g.cores[d]
		if ctrl {
			p.Size = message.ControlPacketFlits
			p.Class = message.ClassSyntheticCtrl
			// Control packets ride the request or forward VNets.
			if reqVNet {
				p.VNet = message.VNetRequest
			} else {
				p.VNet = message.VNetForward
			}
		} else {
			p.Size = message.DataPacketFlits
			p.Class = message.ClassSyntheticData
			p.VNet = message.VNetResponse
		}
		g.net.NI(src).Enqueue(p, cycle)
	}
}

// Run drives the network for the given number of cycles with injection.
func (g *Generator) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		g.Tick(g.net.Cycle())
		g.net.Step()
	}
}
