package traffic_test

import (
	"math"
	"testing"
	"testing/quick"

	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestBitPatternsArePermutations: the deterministic patterns must be
// bijections over power-of-two core counts, or some cores would be doubly
// loaded.
func TestBitPatternsArePermutations(t *testing.T) {
	for _, pat := range []traffic.Pattern{traffic.BitComplement{}, traffic.BitRotation{}, traffic.Transpose{}} {
		for _, n := range []int{16, 64, 128} {
			seen := make([]bool, n)
			for s := 0; s < n; s++ {
				d := pat.Dest(s, n, nil)
				if d < 0 || d >= n {
					t.Fatalf("%s: dest %d out of range for src %d", pat.Name(), d, s)
				}
				if seen[d] {
					t.Fatalf("%s: dest %d hit twice (n=%d)", pat.Name(), d, n)
				}
				seen[d] = true
			}
		}
	}
}

func TestBitComplementInvolution(t *testing.T) {
	err := quick.Check(func(s16 uint16) bool {
		n := 64
		s := int(s16) % n
		p := traffic.BitComplement{}
		return p.Dest(p.Dest(s, n, nil), n, nil) == s
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformRandomInRange(t *testing.T) {
	rng := sim.NewRNG(3)
	p := traffic.UniformRandom{}
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[p.Dest(0, 16, rng)]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("dest %d drawn %d times of 16000 (expected ~1000)", d, c)
		}
	}
}

func TestPatternByName(t *testing.T) {
	for _, p := range traffic.Patterns() {
		got, err := traffic.PatternByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("lookup %q failed", p.Name())
		}
	}
	if _, err := traffic.PatternByName("nope"); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

// TestOfferedLoadAccuracy: the generator's injected flit rate must track
// the requested rate.
func TestOfferedLoadAccuracy(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	const rate = 0.02
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, 5)
	const cycles = 20000
	g.Run(cycles)
	offered := float64(n.Stats.InjectedFlits+pendingFlits(n)) / float64(cycles) / float64(len(topo.Cores()))
	if math.Abs(offered-rate) > rate*0.15 {
		t.Fatalf("offered %.4f, want ~%.4f", offered, rate)
	}
}

func pendingFlits(n *network.Network) uint64 {
	// Flits of packets still queued count toward offered load.
	var inQ uint64
	for _, ni := range n.NIs {
		inQ += uint64(ni.Pending())
	}
	return inQ // approximation: >=1 flit each; only used with tolerance
}

// TestControlDataMix: roughly half the packets are 1-flit control packets.
func TestControlDataMix(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.02, 5)
	g.Run(20000)
	pkts := n.Stats.InjectedPackets
	flits := n.Stats.InjectedFlits
	if pkts < 100 {
		t.Fatalf("too few packets: %d", pkts)
	}
	avg := float64(flits) / float64(pkts)
	// 50/50 mix of 1- and 5-flit packets has mean 3.
	if avg < 2.6 || avg > 3.4 {
		t.Fatalf("average packet size %.2f, want ~3", avg)
	}
}

// TestDeterministicWorkload: same seed, same injections.
func TestDeterministicWorkload(t *testing.T) {
	run := func() (uint64, uint64) {
		topo := topology.MustBuild(topology.BaselineConfig())
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		g := traffic.NewGenerator(n, traffic.Transpose{}, 0.02, 77)
		g.Run(5000)
		return n.Stats.BornPackets, n.Stats.EjectedFlits
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", b1, e1, b2, e2)
	}
}

// TestPatternDestinationsTable pins concrete src->dst images of every
// deterministic pattern (the definitions from Table II) so a silent
// bit-twiddling regression fails with the exact broken mapping.
func TestPatternDestinationsTable(t *testing.T) {
	cases := []struct {
		pattern traffic.Pattern
		n       int
		src     []int
		want    []int
	}{
		{traffic.BitComplement{}, 16, []int{0, 1, 5, 15}, []int{15, 14, 10, 0}},
		{traffic.BitComplement{}, 64, []int{0, 21, 63}, []int{63, 42, 0}},
		{traffic.BitRotation{}, 16, []int{1, 8, 9}, []int{2, 1, 3}},
		{traffic.BitRotation{}, 64, []int{1, 32, 33}, []int{2, 1, 3}},
		{traffic.Transpose{}, 16, []int{1, 2, 4, 8}, []int{4, 8, 1, 2}},
		{traffic.Transpose{}, 64, []int{1, 8, 9}, []int{8, 1, 9}},
	}
	for _, tc := range cases {
		for i, src := range tc.src {
			if got := tc.pattern.Dest(src, tc.n, nil); got != tc.want[i] {
				t.Errorf("%s(n=%d): Dest(%d) = %d, want %d", tc.pattern.Name(), tc.n, src, got, tc.want[i])
			}
		}
	}
}

// TestPatternDestRangeAllPatterns: every pattern (including the random
// one) stays in range over every source, for power-of-two populations.
func TestPatternDestRangeAllPatterns(t *testing.T) {
	rng := sim.NewRNG(17)
	for _, pat := range traffic.Patterns() {
		for _, n := range []int{2, 16, 64, 128} {
			for s := 0; s < n; s++ {
				for rep := 0; rep < 4; rep++ {
					if d := pat.Dest(s, n, rng); d < 0 || d >= n {
						t.Fatalf("%s: Dest(%d, %d) = %d out of range", pat.Name(), s, n, d)
					}
				}
			}
		}
	}
}

// TestUniformRandomDistributionPerSource: the destination distribution
// must be uniform from every source, not just source 0 (a per-source RNG
// split bug would pass the single-source check).
func TestUniformRandomDistributionPerSource(t *testing.T) {
	p := traffic.UniformRandom{}
	const n, draws = 16, 8000
	for _, src := range []int{0, 7, 15} {
		rng := sim.NewRNG(uint64(100 + src))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[p.Dest(src, n, rng)]++
		}
		for d, c := range counts {
			if c < draws/n/2 || c > draws/n*2 {
				t.Fatalf("src %d: dest %d drawn %d times of %d (expected ~%d)", src, d, c, draws, draws/n)
			}
		}
	}
}

// selfPattern always targets the source — the generator must drop every
// injection.
type selfPattern struct{}

func (selfPattern) Name() string                    { return "self" }
func (selfPattern) Dest(src, n int, _ *sim.RNG) int { return src }

// TestSelfSendExclusion: self-traffic never enters the network, for the
// always-self stub and for the deterministic patterns' fixed points
// (transpose maps 0->0, bit rotation 0->0).
func TestSelfSendExclusion(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, selfPattern{}, 0.5, 5)
	g.Run(2000)
	if n.Stats.BornPackets != 0 {
		t.Fatalf("self-pattern injected %d packets", n.Stats.BornPackets)
	}
	for _, pat := range traffic.Patterns() {
		for _, nn := range []int{16, 64} {
			for s := 0; s < nn; s++ {
				rng := sim.NewRNG(uint64(s))
				if d := pat.Dest(s, nn, rng); d == s {
					// A fixed point is legal — the generator skips it; this
					// loop just documents that Dest may return src and the
					// contract is "skip", not "crash" (verified above).
					_ = d
				}
			}
		}
	}
}

// TestSeedDeterminismAllPatterns: for every pattern, the same seed must
// reproduce the identical run and (for the randomized pattern) a
// different seed must diverge.
func TestSeedDeterminismAllPatterns(t *testing.T) {
	run := func(pat traffic.Pattern, seed uint64) (uint64, uint64, uint64) {
		topo := topology.MustBuild(topology.BaselineConfig())
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		g := traffic.NewGenerator(n, pat, 0.02, seed)
		g.Run(4000)
		return n.Stats.BornPackets, n.Stats.InjectedFlits, n.Stats.EjectedFlits
	}
	for _, pat := range traffic.Patterns() {
		t.Run(pat.Name(), func(t *testing.T) {
			b1, i1, e1 := run(pat, 42)
			b2, i2, e2 := run(pat, 42)
			if b1 != b2 || i1 != i2 || e1 != e2 {
				t.Fatalf("same seed diverges: (%d,%d,%d) vs (%d,%d,%d)", b1, i1, e1, b2, i2, e2)
			}
			if b1 == 0 {
				t.Fatal("run injected nothing — determinism check is vacuous")
			}
		})
	}
	// Different seeds must actually change the random pattern's run.
	b1, i1, _ := run(traffic.UniformRandom{}, 42)
	b2, i2, _ := run(traffic.UniformRandom{}, 43)
	if b1 == b2 && i1 == i2 {
		t.Fatal("seeds 42 and 43 produced identical runs — the seed is ignored")
	}
}

// TestBitPatternsOnNonPowerOfTwo: heterogeneous systems have arbitrary
// core counts; bit patterns must fold out-of-range images instead of
// crashing the generator.
func TestBitPatternsOnNonPowerOfTwo(t *testing.T) {
	topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(topo.Cores()); n&(n-1) == 0 {
		t.Fatalf("example hetero system has %d cores — expected non-power-of-two", n)
	}
	for _, pat := range []traffic.Pattern{traffic.BitComplement{}, traffic.BitRotation{}, traffic.Transpose{}} {
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		g := traffic.NewGenerator(n, pat, 0.02, 9)
		g.Run(3000) // would panic without destination folding
		if n.Stats.BornPackets == 0 {
			t.Fatalf("%s generated nothing", pat.Name())
		}
	}
}
