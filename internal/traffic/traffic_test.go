package traffic_test

import (
	"math"
	"testing"
	"testing/quick"

	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestBitPatternsArePermutations: the deterministic patterns must be
// bijections over power-of-two core counts, or some cores would be doubly
// loaded.
func TestBitPatternsArePermutations(t *testing.T) {
	for _, pat := range []traffic.Pattern{traffic.BitComplement{}, traffic.BitRotation{}, traffic.Transpose{}} {
		for _, n := range []int{16, 64, 128} {
			seen := make([]bool, n)
			for s := 0; s < n; s++ {
				d := pat.Dest(s, n, nil)
				if d < 0 || d >= n {
					t.Fatalf("%s: dest %d out of range for src %d", pat.Name(), d, s)
				}
				if seen[d] {
					t.Fatalf("%s: dest %d hit twice (n=%d)", pat.Name(), d, n)
				}
				seen[d] = true
			}
		}
	}
}

func TestBitComplementInvolution(t *testing.T) {
	err := quick.Check(func(s16 uint16) bool {
		n := 64
		s := int(s16) % n
		p := traffic.BitComplement{}
		return p.Dest(p.Dest(s, n, nil), n, nil) == s
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformRandomInRange(t *testing.T) {
	rng := sim.NewRNG(3)
	p := traffic.UniformRandom{}
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[p.Dest(0, 16, rng)]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("dest %d drawn %d times of 16000 (expected ~1000)", d, c)
		}
	}
}

func TestPatternByName(t *testing.T) {
	for _, p := range traffic.Patterns() {
		got, err := traffic.PatternByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("lookup %q failed", p.Name())
		}
	}
	if _, err := traffic.PatternByName("nope"); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

// TestOfferedLoadAccuracy: the generator's injected flit rate must track
// the requested rate.
func TestOfferedLoadAccuracy(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	const rate = 0.02
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, 5)
	const cycles = 20000
	g.Run(cycles)
	offered := float64(n.Stats.InjectedFlits+pendingFlits(n)) / float64(cycles) / float64(len(topo.Cores()))
	if math.Abs(offered-rate) > rate*0.15 {
		t.Fatalf("offered %.4f, want ~%.4f", offered, rate)
	}
}

func pendingFlits(n *network.Network) uint64 {
	// Flits of packets still queued count toward offered load.
	var inQ uint64
	for _, ni := range n.NIs {
		inQ += uint64(ni.Pending())
	}
	return inQ // approximation: >=1 flit each; only used with tolerance
}

// TestControlDataMix: roughly half the packets are 1-flit control packets.
func TestControlDataMix(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.02, 5)
	g.Run(20000)
	pkts := n.Stats.InjectedPackets
	flits := n.Stats.InjectedFlits
	if pkts < 100 {
		t.Fatalf("too few packets: %d", pkts)
	}
	avg := float64(flits) / float64(pkts)
	// 50/50 mix of 1- and 5-flit packets has mean 3.
	if avg < 2.6 || avg > 3.4 {
		t.Fatalf("average packet size %.2f, want ~3", avg)
	}
}

// TestDeterministicWorkload: same seed, same injections.
func TestDeterministicWorkload(t *testing.T) {
	run := func() (uint64, uint64) {
		topo := topology.MustBuild(topology.BaselineConfig())
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		g := traffic.NewGenerator(n, traffic.Transpose{}, 0.02, 77)
		g.Run(5000)
		return n.Stats.BornPackets, n.Stats.EjectedFlits
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", b1, e1, b2, e2)
	}
}

// TestBitPatternsOnNonPowerOfTwo: heterogeneous systems have arbitrary
// core counts; bit patterns must fold out-of-range images instead of
// crashing the generator.
func TestBitPatternsOnNonPowerOfTwo(t *testing.T) {
	topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(topo.Cores()); n&(n-1) == 0 {
		t.Fatalf("example hetero system has %d cores — expected non-power-of-two", n)
	}
	for _, pat := range []traffic.Pattern{traffic.BitComplement{}, traffic.BitRotation{}, traffic.Transpose{}} {
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		g := traffic.NewGenerator(n, pat, 0.02, 9)
		g.Run(3000) // would panic without destination folding
		if n.Stats.BornPackets == 0 {
			t.Fatalf("%s generated nothing", pat.Name())
		}
	}
}
