// Package snap provides the binary primitives shared by the UPWS
// snapshot format (DESIGN.md §14): a sticky-error Writer/Reader pair
// over varint-encoded scalars, plus a packet table that serializes the
// pointer graph of in-flight (and freelisted) message.Packet values
// while preserving pointer identity across a restore.
//
// The encoding follows the UPWT trace conventions: unsigned values are
// uvarints, signed values are zigzag varints, floats are the IEEE-754
// bit pattern as a fixed 8-byte little-endian word, and every read is
// bounds-validated so corrupted or truncated input yields a structured
// error, never a panic (see FuzzSnapshotDecode).
//
// Packet pointers are encoded as table references: index 0 is nil, and
// index i+1 names the i-th distinct packet encountered by the Writer.
// The table body — every field of every referenced packet — is written
// once, after all sections, by WritePacketTable. The Reader mirrors
// this: a reference materializes a placeholder *message.Packet on first
// sight (so shared pointers restore to shared pointers), and
// ReadPacketTable fills the bodies in at the end.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

func topoNode(r *Reader, what string) topology.NodeID {
	return topology.NodeID(r.Int(what, math.MinInt32, math.MaxInt32))
}

// maxPrealloc caps slice preallocation driven by untrusted length
// prefixes; larger collections grow as records actually arrive.
const maxPrealloc = 4096

// Writer accumulates a snapshot section stream. Errors are sticky but
// the write side is in-memory and cannot fail; the type exists to
// mirror Reader and own the packet table.
type Writer struct {
	buf   []byte
	index map[*message.Packet]uint64
	order []*message.Packet
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer {
	return &Writer{index: make(map[*message.Packet]uint64)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Int appends a signed int (zigzag varint).
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends the IEEE-754 bit pattern as a fixed 8-byte LE word —
// bit-exact round-tripping, independent of formatting.
func (w *Writer) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Packet appends a table reference for p (0 for nil), assigning the
// next index on first encounter. The packet's fields are written later
// by WritePacketTable.
func (w *Writer) Packet(p *message.Packet) {
	if p == nil {
		w.Uvarint(0)
		return
	}
	ref, ok := w.index[p]
	if !ok {
		ref = uint64(len(w.order)) + 1
		w.index[p] = ref
		w.order = append(w.order, p)
	}
	w.Uvarint(ref)
}

// Flit appends a flit: packet reference plus sequence number.
func (w *Writer) Flit(f message.Flit) {
	w.Packet(f.Pkt)
	w.Varint(int64(f.Seq))
}

// WritePacketTable appends the table body: the count of distinct
// packets referenced so far, then every field of each. Call it after
// all sections that reference packets. Packets first referenced after
// this call would be lost, so the container writes it last (before
// packet-free trailing sections).
func (w *Writer) WritePacketTable() {
	w.Uvarint(uint64(len(w.order)))
	// The body may not add new table entries; iterate by index so an
	// (impossible) append during the loop is still safe.
	for i := 0; i < len(w.order); i++ {
		w.writePacketBody(w.order[i])
	}
}

// PacketCount returns the number of distinct packets referenced so far.
func (w *Writer) PacketCount() int { return len(w.order) }

func (w *Writer) writePacketBody(p *message.Packet) {
	w.Uvarint(p.ID)
	w.Varint(int64(p.Src))
	w.Varint(int64(p.Dst))
	w.Varint(int64(p.VNet))
	w.Int(p.Size)
	w.Varint(int64(p.Class))
	w.Varint(p.BirthCycle)
	w.Varint(p.InjectCycle)
	w.Varint(p.EjectCycle)
	w.Varint(int64(p.EgressBoundary))
	w.Varint(int64(p.IngressInterposer))
	w.Uvarint(uint64(p.Epoch))
	w.Bool(p.DownPhase)
	w.Varint(int64(p.RouteLayer))
	w.Varint(int64(p.LayerEntryX))
	w.Bool(p.Popup)
	w.Uvarint(p.PopupID)
	w.Bool(p.PopupResUsed)
	w.Varint(int64(p.DstChiplet))
	w.Uvarint(p.Addr)
	w.Uvarint(p.Txn)
	w.Varint(int64(p.AuxNode))
	w.Varint(int64(p.AuxCount))
	gen, pooled, released := p.SnapMeta()
	w.Uvarint(uint64(gen))
	w.Bool(pooled)
	w.Bool(released)
}

// Reader decodes a snapshot section stream with a sticky error: after
// the first failure every getter returns the zero value and Err()
// reports what went wrong and where.
type Reader struct {
	data []byte
	pos  int
	err  error
	pkts []*message.Packet
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.pos
}

// Fail records a structured decode error (first one wins).
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: offset %d: %s", r.pos, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads an unsigned varint; what names the field in errors.
func (r *Reader) Uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.Fail("truncated or malformed uvarint (%s)", what)
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.Fail("truncated or malformed varint (%s)", what)
		return 0
	}
	r.pos += n
	return v
}

// Int reads a signed int and validates it against [min, max].
func (r *Reader) Int(what string, min, max int64) int {
	v := r.Varint(what)
	if r.err == nil && (v < min || v > max) {
		r.Fail("%s = %d outside [%d, %d]", what, v, min, max)
		return 0
	}
	return int(v)
}

// Len reads a collection length and validates it against max.
func (r *Reader) Len(what string, max int) int {
	v := r.Uvarint(what)
	if r.err == nil && v > uint64(max) {
		r.Fail("%s = %d exceeds limit %d", what, v, max)
		return 0
	}
	return int(v)
}

// Bool reads a boolean byte (must be 0 or 1).
func (r *Reader) Bool(what string) bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.data) {
		r.Fail("truncated bool (%s)", what)
		return false
	}
	b := r.data[r.pos]
	if b > 1 {
		r.Fail("invalid bool byte %d (%s)", b, what)
		return false
	}
	r.pos++
	return b == 1
}

// F64 reads a fixed 8-byte IEEE-754 bit pattern.
func (r *Reader) F64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.Fail("truncated float64 (%s)", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v
}

// String reads a length-prefixed string (capped at max bytes).
func (r *Reader) String(what string, max int) string {
	n := r.Len(what, max)
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.Fail("truncated string body (%s)", what)
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// Packet reads a table reference, materializing a placeholder packet on
// first sight of an index so shared pointers restore to shared
// pointers. ReadPacketTable later fills the bodies in.
func (r *Reader) Packet() *message.Packet {
	ref := r.Uvarint("packet ref")
	if r.err != nil || ref == 0 {
		return nil
	}
	idx := int(ref - 1)
	if uint64(idx) != ref-1 || idx > len(r.data) {
		// A reference can never exceed the number of encoded packets,
		// and the table body needs at least one byte per packet — any
		// index past the input length is corrupt.
		r.Fail("packet ref %d out of range", ref)
		return nil
	}
	for idx >= len(r.pkts) {
		if len(r.pkts) >= maxPrealloc && idx >= 2*len(r.pkts) {
			// Grow geometrically past the prealloc cap, but refuse a
			// single reference to balloon the table.
			r.Fail("packet ref %d grows table too fast (have %d)", ref, len(r.pkts))
			return nil
		}
		r.pkts = append(r.pkts, &message.Packet{})
	}
	return r.pkts[idx]
}

// Flit reads a flit reference.
func (r *Reader) Flit() message.Flit {
	p := r.Packet()
	seq := r.Varint("flit seq")
	if r.err != nil {
		return message.Flit{}
	}
	if seq < 0 || seq > math.MaxInt32 {
		r.Fail("flit seq %d out of range", seq)
		return message.Flit{}
	}
	return message.Flit{Pkt: p, Seq: int32(seq)}
}

// PacketCount returns the number of table entries materialized so far.
func (r *Reader) PacketCount() int { return len(r.pkts) }

// PacketAt returns table entry i (0-based), or nil if out of range.
func (r *Reader) PacketAt(i int) *message.Packet {
	if i < 0 || i >= len(r.pkts) {
		return nil
	}
	return r.pkts[i]
}

// ReadPacketTable decodes the table body into the placeholder packets
// materialized by earlier Packet calls. The encoded count must cover
// every reference seen so far (a reference without a body would leave a
// zero packet in live state).
func (r *Reader) ReadPacketTable() {
	n := r.Len("packet table count", len(r.data))
	if r.err != nil {
		return
	}
	if n < len(r.pkts) {
		r.Fail("packet table has %d entries but %d were referenced", n, len(r.pkts))
		return
	}
	for i := 0; i < n; i++ {
		for i >= len(r.pkts) {
			// Entries only reachable through the freelist or table
			// order still need their identity materialized.
			r.pkts = append(r.pkts, &message.Packet{})
		}
		r.readPacketBody(r.pkts[i])
		if r.err != nil {
			return
		}
	}
}

func (r *Reader) readPacketBody(p *message.Packet) {
	p.ID = r.Uvarint("pkt id")
	p.Src = topoNode(r, "pkt src")
	p.Dst = topoNode(r, "pkt dst")
	p.VNet = message.VNet(r.Int("pkt vnet", -1, message.NumVNets-1))
	p.Size = r.Int("pkt size", 0, 1<<20)
	p.Class = message.Class(r.Int("pkt class", 0, 32))
	p.BirthCycle = r.Varint("pkt birth")
	p.InjectCycle = r.Varint("pkt inject")
	p.EjectCycle = r.Varint("pkt eject")
	p.EgressBoundary = topoNode(r, "pkt egress")
	p.IngressInterposer = topoNode(r, "pkt ingress")
	epoch := r.Uvarint("pkt epoch")
	if r.err == nil && epoch > math.MaxUint32 {
		r.Fail("pkt epoch %d out of range", epoch)
		return
	}
	p.Epoch = uint32(epoch)
	p.DownPhase = r.Bool("pkt downphase")
	p.RouteLayer = int16(r.Int("pkt routelayer", math.MinInt16, math.MaxInt16))
	p.LayerEntryX = int16(r.Int("pkt layerentryx", math.MinInt16, math.MaxInt16))
	p.Popup = r.Bool("pkt popup")
	p.PopupID = r.Uvarint("pkt popup id")
	p.PopupResUsed = r.Bool("pkt popup res")
	p.DstChiplet = int16(r.Int("pkt dstchiplet", math.MinInt16, math.MaxInt16))
	p.Addr = r.Uvarint("pkt addr")
	p.Txn = r.Uvarint("pkt txn")
	p.AuxNode = topoNode(r, "pkt auxnode")
	p.AuxCount = int32(r.Int("pkt auxcount", math.MinInt32, math.MaxInt32))
	gen := r.Uvarint("pkt gen")
	pooled := r.Bool("pkt pooled")
	released := r.Bool("pkt released")
	if r.err != nil {
		return
	}
	if gen > math.MaxUint32 {
		r.Fail("pkt gen %d out of range", gen)
		return
	}
	p.SetSnapMeta(uint32(gen), pooled, released)
}
