// Package composable implements the composable-routing baseline (Yin et
// al., ISCA 2018) the UPP paper compares against: a deadlock *avoidance*
// scheme for modular chiplet systems that places unidirectional turn
// restrictions on chiplet boundary routers at design time.
//
// The implementation mirrors the published approach's structure:
//
//   - a design-time software algorithm searches for a set of turn
//     restrictions at boundary routers such that the channel dependency
//     graph induced by the actual routes is acyclic (deadlock freedom by
//     Dally's criterion) while the network stays fully connected;
//   - at run time, packets follow precomputed channel-indexed routing
//     tables (next hop depends on the input port) that honor the
//     restrictions — often through non-minimal paths concentrated on a
//     subset of boundary routers, which is exactly the path-diversity and
//     load-imbalance cost the UPP paper measures (Sec. III-B).
//
// Within each layer, turns obey the XY turn model (no Y-to-X turns), so
// intra-layer routes match the XY routing used by UPP and remote control.
package composable

import (
	"fmt"
	"sort"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Turn identifies one input-port to output-port connection at a router.
type Turn struct {
	Node topology.NodeID
	In   topology.PortID
	Out  topology.PortID
}

// Tables holds the channel-indexed routing tables and the restriction set
// that makes them deadlock-free.
type Tables struct {
	topo     *topology.Topology
	chanBase []int32
	numChan  int
	// next[channel*numNodes+dst] is the output port, or InvalidPort.
	next []topology.PortID
	// Restrictions lists the placed boundary-router turn restrictions in
	// placement order.
	Restrictions []Turn
}

const maxRestrictions = 512

// BuildTables runs the design-time search for topology t.
func BuildTables(t *topology.Topology) (*Tables, error) {
	restricted := make(map[Turn]bool)
	var placed []Turn
	for iter := 0; iter <= maxRestrictions; iter++ {
		tb, err := computeRoutes(t, restricted)
		if err != nil {
			return nil, fmt.Errorf("composable: routes under current restrictions: %w", err)
		}
		cycle := tb.findCDGCycle()
		if cycle == nil {
			tb.Restrictions = placed
			return tb, nil
		}
		turn, err := chooseRestriction(t, restricted, cycle)
		if err != nil {
			return nil, err
		}
		restricted[turn] = true
		placed = append(placed, turn)
	}
	return nil, fmt.Errorf("composable: no acyclic restriction set within %d restrictions", maxRestrictions)
}

// chooseRestriction picks a boundary-router turn on the cycle whose
// removal keeps the network connected, preferring turns that involve a
// vertical link (the restrictions of the paper's Fig. 2(a)).
func chooseRestriction(t *topology.Topology, restricted map[Turn]bool, cycle []Turn) (Turn, error) {
	var candidates []Turn
	for _, turn := range cycle {
		if t.Node(turn.Node).Kind != topology.BoundaryRouter {
			continue
		}
		candidates = append(candidates, turn)
	}
	// Vertical-involving turns first, then deterministic order.
	sort.SliceStable(candidates, func(i, j int) bool {
		vi := turnVertical(t, candidates[i])
		vj := turnVertical(t, candidates[j])
		if vi != vj {
			return vi
		}
		a, b := candidates[i], candidates[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.In != b.In {
			return a.In < b.In
		}
		return a.Out < b.Out
	})
	for _, turn := range candidates {
		restricted[turn] = true
		if _, err := computeRoutes(t, restricted); err == nil {
			delete(restricted, turn)
			return turn, nil
		}
		delete(restricted, turn)
	}
	return Turn{}, fmt.Errorf("composable: cycle with no restrictable boundary turn (len %d)", len(cycle))
}

func turnVertical(t *topology.Topology, turn Turn) bool {
	n := t.Node(turn.Node)
	return n.Ports[turn.In].Dir == topology.Down || n.Ports[turn.Out].Dir == topology.Down ||
		n.Ports[turn.In].Dir == topology.Up || n.Ports[turn.Out].Dir == topology.Up
}

func isY(d topology.Direction) bool { return d == topology.North || d == topology.South }
func isX(d topology.Direction) bool { return d == topology.East || d == topology.West }

// turnAllowed applies the XY turn model plus the restriction set.
func turnAllowed(t *topology.Topology, restricted map[Turn]bool, node topology.NodeID, in, out topology.PortID) bool {
	if in == out {
		return false
	}
	n := t.Node(node)
	if in != topology.LocalPort {
		inDir := n.Ports[in].Dir
		outDir := n.Ports[out].Dir
		if isY(inDir) && isX(outDir) {
			return false // XY turn model within layers
		}
		_ = outDir
	}
	return !restricted[Turn{node, in, out}]
}

// computeRoutes builds per-destination shortest routes over the allowed
// channel graph (backward BFS per destination). It fails if any
// (injection, destination) pair becomes unreachable.
func computeRoutes(t *topology.Topology, restricted map[Turn]bool) (*Tables, error) {
	tb := &Tables{topo: t}
	tb.chanBase = make([]int32, t.NumNodes()+1)
	for i := range t.Nodes {
		tb.chanBase[i+1] = tb.chanBase[i] + int32(len(t.Nodes[i].Ports))
	}
	tb.numChan = int(tb.chanBase[t.NumNodes()])
	numNodes := t.NumNodes()
	tb.next = make([]topology.PortID, tb.numChan*numNodes)
	for i := range tb.next {
		tb.next[i] = topology.InvalidPort
	}
	dist := make([]int32, tb.numChan)
	queue := make([]int32, 0, tb.numChan)

	for d := 0; d < numNodes; d++ {
		dst := topology.NodeID(d)
		dstChiplet := t.Node(dst).Chiplet
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		// All channels arriving at dst eject with distance 0.
		for pi := range t.Node(dst).Ports {
			c := tb.chanBase[dst] + int32(pi)
			dist[c] = 0
			queue = append(queue, c)
		}
		for qi := 0; qi < len(queue); qi++ {
			c := queue[qi]
			node, in := tb.chanNode(c)
			// Predecessors: channels (m, mi) that can move into (node, in)
			// via the link behind input port `in`.
			if in == topology.LocalPort {
				continue
			}
			n := t.Node(node)
			pt := &n.Ports[in]
			if pt.Link.Faulty {
				continue
			}
			m := pt.Neighbor
			mOut := pt.NeighborPort
			// Moving m -> node must respect chiplet-entry legality.
			if !moveLegal(t, m, node, dst, dstChiplet) {
				continue
			}
			mn := t.Node(m)
			for mi := range mn.Ports {
				if !turnAllowed(t, restricted, m, topology.PortID(mi), mOut) {
					continue
				}
				if mi != int(topology.LocalPort) && mn.Ports[mi].Link.Faulty {
					continue
				}
				pc := tb.chanBase[m] + int32(mi)
				if dist[pc] < 0 {
					dist[pc] = dist[c] + 1
					queue = append(queue, pc)
				}
			}
		}
		// Next hops: best allowed move per channel.
		for c := int32(0); c < int32(tb.numChan); c++ {
			node, in := tb.chanNode(c)
			if node == dst {
				tb.next[int(c)*numNodes+d] = topology.LocalPort
				continue
			}
			if dist[c] < 0 {
				continue
			}
			n := t.Node(node)
			best := topology.InvalidPort
			var bestD int32 = -1
			for pi := 1; pi < len(n.Ports); pi++ {
				out := topology.PortID(pi)
				if !turnAllowed(t, restricted, node, in, out) || n.Ports[pi].Link.Faulty {
					continue
				}
				nb := n.Ports[pi].Neighbor
				if !moveLegal(t, node, nb, dst, dstChiplet) {
					continue
				}
				nc := tb.chanBase[nb] + int32(n.Ports[pi].NeighborPort)
				if dist[nc] < 0 {
					continue
				}
				if bestD < 0 || dist[nc] < bestD {
					bestD = dist[nc]
					best = out
				}
			}
			tb.next[int(c)*numNodes+d] = best
		}
		// Every injection channel must reach every destination.
		for s := 0; s < numNodes; s++ {
			if s == d {
				continue
			}
			c := tb.chanBase[s] + int32(topology.LocalPort)
			if dist[c] < 0 {
				return nil, fmt.Errorf("no route %d -> %d", s, d)
			}
		}
	}
	return tb, nil
}

// moveLegal forbids routes that enter a chiplet other than the
// destination's, or leave the destination's chiplet.
func moveLegal(t *topology.Topology, from, to topology.NodeID, dst topology.NodeID, dstChiplet int) bool {
	fc := t.Node(from).Chiplet
	tc := t.Node(to).Chiplet
	if fc == tc {
		return true
	}
	if tc != topology.InterposerChiplet && tc != dstChiplet {
		return false // ascending into a foreign chiplet
	}
	if fc != topology.InterposerChiplet && fc == dstChiplet {
		return false // descending out of the destination chiplet
	}
	return true
}

func (tb *Tables) chanNode(c int32) (topology.NodeID, topology.PortID) {
	// Binary search over chanBase.
	lo, hi := 0, len(tb.chanBase)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if tb.chanBase[mid] <= c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return topology.NodeID(lo), topology.PortID(c - tb.chanBase[lo])
}

// Route implements the run-time table lookup (a router.RouteFunc).
func (tb *Tables) Route(cur topology.NodeID, inPort topology.PortID, p *message.Packet) (topology.PortID, error) {
	if cur == p.Dst {
		return topology.LocalPort, nil
	}
	out := tb.next[int(tb.chanBase[cur]+int32(inPort))*tb.topo.NumNodes()+int(p.Dst)]
	if out == topology.InvalidPort {
		return topology.InvalidPort, fmt.Errorf("composable: no route at node %d in %d to %d", cur, inPort, p.Dst)
	}
	return out, nil
}

// PathLength returns the hop count from src injection to dst under the
// tables (analysis and tests).
func (tb *Tables) PathLength(src, dst topology.NodeID) (int, error) {
	cur, in := src, topology.LocalPort
	p := &message.Packet{Src: src, Dst: dst}
	hops := 0
	for cur != dst {
		if hops > tb.topo.NumNodes()*2 {
			return 0, fmt.Errorf("composable: loop routing %d -> %d", src, dst)
		}
		out, err := tb.Route(cur, in, p)
		if err != nil {
			return 0, err
		}
		n := tb.topo.Node(cur)
		in = n.Ports[out].NeighborPort
		cur = n.Ports[out].Neighbor
		hops++
	}
	return hops, nil
}

// findCDGCycle builds the channel dependency graph from the turns the
// routes actually use and returns one cycle (as turns), or nil when the
// CDG is acyclic.
func (tb *Tables) findCDGCycle() []Turn {
	t := tb.topo
	numNodes := t.NumNodes()
	// Link channels = non-local (node, inPort) channels; a dependency goes
	// from the arriving channel to the chosen outgoing link's channel on
	// the far side.
	adj := make(map[int32]map[int32]bool)
	for c := int32(0); c < int32(tb.numChan); c++ {
		node, in := tb.chanNode(c)
		n := t.Node(node)
		for d := 0; d < numNodes; d++ {
			out := tb.next[int(c)*numNodes+d]
			if out == topology.InvalidPort || out == topology.LocalPort {
				continue
			}
			// The downstream channel this turn feeds.
			nc := tb.chanBase[n.Ports[out].Neighbor] + int32(n.Ports[out].NeighborPort)
			if in == topology.LocalPort {
				continue // injection edges cannot be part of a cycle
			}
			if adj[c] == nil {
				adj[c] = make(map[int32]bool)
			}
			adj[c][nc] = true
		}
	}
	// Deterministic DFS cycle detection.
	keysOf := func(m map[int32]bool) []int32 {
		ks := make([]int32, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		return ks
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int32]int, len(adj))
	parent := make(map[int32]int32)
	var cycleChans []int32
	var dfs func(c int32) bool
	dfs = func(c int32) bool {
		color[c] = grey
		for _, nc := range keysOf(adj[c]) {
			switch color[nc] {
			case white:
				parent[nc] = c
				if dfs(nc) {
					return true
				}
			case grey:
				// Found a cycle: unwind from c back to nc.
				cycleChans = []int32{nc}
				for x := c; x != nc; x = parent[x] {
					cycleChans = append(cycleChans, x)
				}
				// Reverse into forward order.
				for i, j := 0, len(cycleChans)-1; i < j; i, j = i+1, j-1 {
					cycleChans[i], cycleChans[j] = cycleChans[j], cycleChans[i]
				}
				return true
			}
		}
		color[c] = black
		return false
	}
	roots := make([]int32, 0, len(adj))
	for c := range adj {
		roots = append(roots, c)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, c := range roots {
		if color[c] == white && dfs(c) {
			break
		}
	}
	if cycleChans == nil {
		return nil
	}
	// Convert consecutive channel pairs into the turns connecting them.
	turns := make([]Turn, 0, len(cycleChans))
	for i := range cycleChans {
		c := cycleChans[i]
		nc := cycleChans[(i+1)%len(cycleChans)]
		node, in := tb.chanNode(c)
		// Find the output port at node leading to channel nc.
		n := t.Node(node)
		for pi := 1; pi < len(n.Ports); pi++ {
			dc := tb.chanBase[n.Ports[pi].Neighbor] + int32(n.Ports[pi].NeighborPort)
			if dc == nc {
				turns = append(turns, Turn{node, in, topology.PortID(pi)})
				break
			}
		}
	}
	return turns
}

// Scheme plugs composable routing into the network.
type Scheme struct {
	network.BaseScheme
	tables *Tables
}

// NewScheme builds the restriction set and routing tables for t.
func NewScheme(t *topology.Topology) (*Scheme, error) {
	tb, err := BuildTables(t)
	if err != nil {
		return nil, err
	}
	return &Scheme{tables: tb}, nil
}

// Name implements network.Scheme.
func (s *Scheme) Name() string { return "composable" }

// Policy implements network.Scheme. Routing is table-driven, so the
// boundary policy fields are unused; the static binding keeps packet
// metadata consistent.
func (s *Scheme) Policy() routing.BoundaryPolicy { return routing.DefaultPolicy{} }

// Attach implements network.Scheme.
func (s *Scheme) Attach(n *network.Network) { n.SetRouteOverride(s.tables.Route) }

// OnRouterIdle implements network.Scheme. Composable routing's runtime
// state is the immutable route tables — there is nothing per-router to
// reset when the active-set kernel retires one.
func (s *Scheme) OnRouterIdle(topology.NodeID, sim.Cycle) {}

// Tables exposes the built tables (reports and tests).
func (s *Scheme) Tables() *Tables { return s.tables }
