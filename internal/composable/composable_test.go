package composable_test

import (
	"testing"

	"uppnoc/internal/composable"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func TestBuildTablesBaseline(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	tb, err := composable.BuildTables(topo)
	if err != nil {
		t.Fatalf("BuildTables: %v", err)
	}
	if len(tb.Restrictions) == 0 {
		t.Fatal("no restrictions placed — the unrestricted CDG should be cyclic")
	}
	for _, turn := range tb.Restrictions {
		if topo.Node(turn.Node).Kind != topology.BoundaryRouter {
			t.Fatalf("restriction at non-boundary router %d", turn.Node)
		}
	}
	t.Logf("placed %d boundary turn restrictions", len(tb.Restrictions))
	// Full connectivity and loop-freedom of every pair.
	for _, src := range topo.Cores() {
		for _, dst := range topo.Cores() {
			if src == dst {
				continue
			}
			if _, err := tb.PathLength(src, dst); err != nil {
				t.Fatalf("path %d->%d: %v", src, dst, err)
			}
		}
	}
}

func TestComposableDeadlockFreeUnderLoad(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	s, err := composable.NewScheme(topo)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	n := network.MustNew(topo, network.DefaultConfig(), s)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 42)
	g.Run(20000)
	g.SetRate(0)
	if err := n.Drain(600000, 60000); err != nil {
		t.Fatalf("composable wedged (restriction search is broken): %v", err)
	}
}

func TestComposablePathsLongerOnAverage(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	tb, err := composable.BuildTables(topo)
	if err != nil {
		t.Fatalf("BuildTables: %v", err)
	}
	// Composable's restricted routes must be at least as long as minimal
	// hop distance, and strictly longer for some pairs (the non-minimal
	// routing cost of Sec. III-B).
	longer := 0
	for _, src := range topo.Cores() {
		for _, dst := range topo.Cores() {
			if src == dst {
				continue
			}
			got, err := tb.PathLength(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			min := minimalHops(topo, src, dst)
			if got < min {
				t.Fatalf("path %d->%d shorter than minimal: %d < %d", src, dst, got, min)
			}
			if got > min {
				longer++
			}
		}
	}
	t.Logf("%d pairs routed non-minimally", longer)
	if longer == 0 {
		t.Fatal("expected some non-minimal routes under turn restrictions")
	}
}

// minimalHops is unrestricted BFS hop distance.
func minimalHops(t *topology.Topology, src, dst topology.NodeID) int {
	dist := make(map[topology.NodeID]int)
	queue := []topology.NodeID{src}
	dist[src] = 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if c == dst {
			return dist[c]
		}
		n := t.Node(c)
		for pi := 1; pi < len(n.Ports); pi++ {
			nb := n.Ports[pi].Neighbor
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[c] + 1
				queue = append(queue, nb)
			}
		}
	}
	return -1
}

// TestDeterministicSearch: the design-time search must be reproducible —
// identical topologies give identical restriction sets.
func TestDeterministicSearch(t *testing.T) {
	build := func() []composable.Turn {
		tb, err := composable.BuildTables(topology.MustBuild(topology.BaselineConfig()))
		if err != nil {
			t.Fatal(err)
		}
		return tb.Restrictions
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("restriction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restriction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestHeteroSearch: the search must handle heterogeneous systems too.
func TestHeteroSearch(t *testing.T) {
	topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := composable.BuildTables(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range topo.Cores()[:10] {
		for _, dst := range topo.Cores() {
			if src == dst {
				continue
			}
			if _, err := tb.PathLength(src, dst); err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
		}
	}
}
