package router_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// TestSwitchAllocationFairness: two input ports streaming endless 1-flit
// packets at the same output port must share its bandwidth roughly
// equally under round-robin arbitration.
func TestSwitchAllocationFairness(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	sink := &mockSink{}
	route := func(topology.NodeID, topology.PortID, *message.Packet) (topology.PortID, error) {
		return 1, nil
	}
	r := router.New(topo.Node(0), router.DefaultConfig(), sink, &mockLocal{accept: true}, route, sim.NewRNG(1))

	sent := map[uint64]int{1: 0, 2: 0}
	id := uint64(0)
	refill := func(port topology.PortID, owner uint64, cycle sim.Cycle) {
		// Keep each port's VNet-0 VC topped up with 1-flit packets (the
		// VC holds single packets; refill when empty).
		vc := r.VCAt(port, 0)
		if vc.Empty() && vc.Free() > 0 {
			id++
			p := &message.Packet{ID: id<<8 | owner, Dst: 5, VNet: 0, Size: 1}
			r.ReceiveFlit(port, 0, message.Flit{Pkt: p}, cycle)
		}
	}
	for c := sim.Cycle(0); c < 3000; c++ {
		refill(2, 1, c)
		refill(3, 2, c)
		r.Step(c)
		// Return credits immediately so the output is never the limit.
		for _, f := range sink.flits {
			sent[f.f.Pkt.ID&0xff]++
		}
		sink.flits = sink.flits[:0]
		for range sink.credits {
		}
		sink.credits = sink.credits[:0]
		r.ReceiveCredit(1, 0, 0, false)
		r.Out[1].Credits[0] = 4
		r.Out[1].Busy[0] = false
	}
	a, b := sent[1], sent[2]
	if a == 0 || b == 0 {
		t.Fatalf("starvation: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair allocation: port A %d vs port B %d (ratio %.2f)", a, b, ratio)
	}
}

// TestVNetVCIsolation: traffic of one VNet cannot occupy another VNet's
// VCs (protocol-deadlock separation).
func TestVNetVCIsolation(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	sink := &mockSink{}
	route := func(topology.NodeID, topology.PortID, *message.Packet) (topology.PortID, error) {
		return 1, nil
	}
	cfg := router.DefaultConfig()
	cfg.VCsPerVNet = 4
	r := router.New(topo.Node(0), cfg, sink, &mockLocal{accept: true}, route, sim.NewRNG(1))
	p := &message.Packet{ID: 9, Dst: 5, VNet: message.VNetForward, Size: 1}
	r.ReceiveFlit(2, int8(cfg.VCIndex(message.VNetForward, 1)), message.Flit{Pkt: p}, 10)
	r.Step(11)
	if len(sink.flits) != 1 {
		t.Fatal("flit stuck")
	}
	dv := int(sink.flits[0].vc)
	if got := cfg.VCVNet(dv); got != message.VNetForward {
		t.Fatalf("forward-VNet packet allocated VC %d of vnet %s", dv, got)
	}
}

// TestVCTHeadGating (unit level): under VCT a head may not advance with
// partial downstream space.
func TestVCTHeadGating(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	sink := &mockSink{}
	route := func(topology.NodeID, topology.PortID, *message.Packet) (topology.PortID, error) {
		return 1, nil
	}
	cfg := router.DefaultConfig()
	cfg.VCT = true
	cfg.BufferDepth = 5
	r := router.New(topo.Node(0), cfg, sink, &mockLocal{accept: true}, route, sim.NewRNG(1))
	p := &message.Packet{ID: 1, Dst: 5, VNet: 0, Size: 5}
	for i := int32(0); i < 5; i++ {
		r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: i}, 10)
	}
	r.Out[1].Credits[0] = 4 // space for 4 of 5 flits
	for c := sim.Cycle(10); c < 16; c++ {
		r.Step(c)
	}
	if len(sink.flits) != 0 {
		t.Fatal("VCT head advanced with partial downstream space")
	}
	r.ReceiveCredit(1, 0, 1, false) // now 5
	for c := sim.Cycle(16); c < 24; c++ {
		r.Step(c)
	}
	if len(sink.flits) != 5 {
		t.Fatalf("sent %d of 5 flits after space freed", len(sink.flits))
	}
}
