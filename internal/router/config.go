// Package router models the router microarchitecture of the chiplet NoC:
// per-VNet virtual channels with credit-based wormhole flow control, a
// 3-stage pipeline (buffer write + route computation, switch allocation +
// VC selection, switch traversal) with 1-cycle link traversal, and
// separable round-robin switch allocation (Table II, Fig. 5).
//
// The package deliberately exposes a rich inspection/manipulation API
// (front-flit peeking, forced dequeues, output claiming, out-of-band VC
// sends) because the deadlock-freedom schemes of the paper — UPP's popup
// circuit, remote control's boundary buffers — are implemented as plugins
// layered on this datapath rather than as special cases inside it.
package router

import (
	"fmt"

	"uppnoc/internal/message"
)

// PipelineDepth is the router pipeline length in cycles — buffer write +
// route computation, switch allocation + VC selection, switch traversal
// (Fig. 5). The network's event wheel must cover PipelineDepth plus the
// link latency; network.Config.Validate enforces it.
const PipelineDepth = 3

// maxVCsPerVNet bounds VCsPerVNet so hot-path scratch arrays (the VC
// selection candidate list in grant) can be fixed-size instead of
// heap-allocated per head flit. The paper evaluates 1 and 4.
const maxVCsPerVNet = 16

// Config fixes the microarchitectural parameters shared by every router.
type Config struct {
	// VCsPerVNet is the number of virtual channels per virtual network
	// (Table II: 1 or 4).
	VCsPerVNet int
	// BufferDepth is the flit capacity of each VC buffer (Table II: 4).
	BufferDepth int
	// LinkLatency in cycles (Table II: 1).
	LinkLatency int
	// VCT selects virtual cut-through flow control: a head flit advances
	// only when the downstream VC can hold the whole packet, so a packet
	// never straddles a buffer boundary mid-allocation. The paper's
	// evaluation uses wormhole (Table II); UPP supports both (Table I's
	// flow-control-modularity attribute). VCT requires BufferDepth >=
	// the largest packet size.
	VCT bool
}

// DefaultConfig returns the paper's 1-VC-per-VNet configuration.
func DefaultConfig() Config {
	return Config{VCsPerVNet: 1, BufferDepth: 4, LinkLatency: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VCsPerVNet < 1:
		return fmt.Errorf("router: VCsPerVNet must be >= 1")
	case c.VCsPerVNet > maxVCsPerVNet:
		return fmt.Errorf("router: VCsPerVNet must be <= %d", maxVCsPerVNet)
	case c.BufferDepth < 1:
		return fmt.Errorf("router: BufferDepth must be >= 1")
	case c.LinkLatency < 1:
		return fmt.Errorf("router: LinkLatency must be >= 1")
	case c.VCT && c.BufferDepth < message.DataPacketFlits:
		return fmt.Errorf("router: virtual cut-through needs BufferDepth >= %d (largest packet)", message.DataPacketFlits)
	}
	return nil
}

// NumVCs returns the total VC count per input port.
func (c Config) NumVCs() int { return message.NumVNets * c.VCsPerVNet }

// VCIndex maps (vnet, k) to a dense VC index.
func (c Config) VCIndex(v message.VNet, k int) int { return int(v)*c.VCsPerVNet + k }

// VCVNet recovers the virtual network of a dense VC index.
func (c Config) VCVNet(vc int) message.VNet { return message.VNet(vc / c.VCsPerVNet) }
