package router_test

import (
	"strings"
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// testMicroarch builds the named router variant on the baseline topology's
// node 0 with a fixed route to the given port.
func testMicroarch(t *testing.T, arch string, out topology.PortID) (router.Microarch, *mockSink, *mockLocal) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	sink := &mockSink{}
	local := &mockLocal{accept: true}
	route := func(cur topology.NodeID, in topology.PortID, p *message.Packet) (topology.PortID, error) {
		return out, nil
	}
	m, err := router.NewMicroarch(arch, topo.Node(0), router.DefaultConfig(), sink, local, route, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return m, sink, local
}

func TestNewMicroarchDispatch(t *testing.T) {
	for _, arch := range []string{router.ArchIQ, router.ArchOQ, router.ArchVOQ} {
		m, _, _ := testMicroarch(t, arch, 1)
		if m.Arch() != arch {
			t.Errorf("NewMicroarch(%q).Arch() = %q", arch, m.Arch())
		}
		if m.NodeID() != 0 {
			t.Errorf("%s: NodeID %d, want 0", arch, m.NodeID())
		}
		if m.NumPorts() != len(m.TopoNode().Ports) {
			t.Errorf("%s: NumPorts %d != len(TopoNode().Ports) %d", arch, m.NumPorts(), len(m.TopoNode().Ports))
		}
		// Config() reports the effective (credit-counted) input depth: the
		// full budget depth for iq/voq, the split depth for oq.
		want := router.DefaultConfig().BufferDepth
		if arch == router.ArchOQ {
			want /= 2
		}
		if got := m.Config().BufferDepth; got != want {
			t.Errorf("%s: effective BufferDepth %d, want %d", arch, got, want)
		}
		if !m.Idle() || m.Buffered() != 0 {
			t.Errorf("%s: fresh router not idle", arch)
		}
	}
	topo := topology.MustBuild(topology.BaselineConfig())
	_, err := router.NewMicroarch("banyan", topo.Node(0), router.DefaultConfig(), &mockSink{}, &mockLocal{}, nil, sim.NewRNG(1))
	if err == nil || !strings.Contains(err.Error(), `unknown arch "banyan"`) {
		t.Fatalf("unknown arch error = %v", err)
	}
}

// TestOQStageAndDrainTiming: the output-queued pipeline stages an eligible
// input front one cycle after buffer write (consuming the downstream
// credit at the staging write) and drains it onto the link the following
// cycle, so a single flit arrives one cycle later than under iq.
func TestOQStageAndDrainTiming(t *testing.T) {
	m, sink, _ := testMicroarch(t, router.ArchOQ, 1)
	p := pkt(1)
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10) // BW at cycle 10
	m.Step(10)                                    // not yet eligible
	if len(sink.flits) != 0 || m.StagedCount(1) != 0 {
		t.Fatal("flit moved in its buffer-write cycle")
	}
	m.Step(11) // crossbar: input VC -> output staging FIFO
	if len(sink.flits) != 0 {
		t.Fatal("staged flit reached the link in its staging cycle")
	}
	if m.StagedCount(1) != 1 || m.StagedFor(1, 0) != 1 {
		t.Fatalf("staged accounting: count %d, for-vc0 %d; want 1, 1", m.StagedCount(1), m.StagedFor(1, 0))
	}
	// The staging write is the credit consumption: 1 of the effective
	// depth-2 downstream credits remains.
	if got := m.OutCredits(1, 0); got != 1 {
		t.Fatalf("credits %d after staging, want 1", got)
	}
	if m.Idle() || m.Buffered() != 1 {
		t.Fatal("router with staged output work reported idle")
	}
	seen := 0
	m.ScanStaged(func(message.Flit) { seen++ })
	if seen != 1 {
		t.Fatalf("ScanStaged visited %d flits, want 1", seen)
	}
	m.Step(12) // output drain: ST + LT
	if len(sink.flits) != 1 {
		t.Fatalf("flit not drained at cycle 12: %v", sink.flits)
	}
	if got := sink.flits[0].cycle; got != 14 {
		t.Fatalf("arrival cycle %d, want 14 (drain at 12 + ST + link)", got)
	}
	if m.StagedCount(1) != 0 || !m.Idle() {
		t.Fatal("staging FIFO not drained")
	}
	if m.PortSentOn(1) != 1 {
		t.Fatal("link-side PortSent not counted at drain")
	}
	// Upstream credit flowed at the staging pop (tail flit -> free).
	if len(sink.credits) != 1 || !sink.credits[0].free {
		t.Fatalf("upstream credits: %+v", sink.credits)
	}
}

// TestOQFullSpeedup: two inputs bound for the same output both traverse
// the crossbar in one cycle (the switch-level HoL-blocking elimination),
// then the output serializes them onto the link at one flit per cycle.
func TestOQFullSpeedup(t *testing.T) {
	m, sink, _ := testMicroarch(t, router.ArchOQ, 1)
	cfg := m.Config()
	p1 := &message.Packet{ID: 1, Dst: 5, VNet: 0, Size: 1}
	p2 := &message.Packet{ID: 2, Dst: 5, VNet: 1, Size: 1}
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p1}, 10)
	m.ReceiveFlit(3, int8(cfg.VCIndex(1, 0)), message.Flit{Pkt: p2}, 10)
	m.Step(11)
	if m.StagedCount(1) != 2 {
		t.Fatalf("staged %d flits in one cycle, want 2 (full crossbar speedup)", m.StagedCount(1))
	}
	m.Step(12)
	m.Step(13)
	if len(sink.flits) != 2 {
		t.Fatalf("drained %d flits, want 2", len(sink.flits))
	}
	if sink.flits[0].cycle != 14 || sink.flits[1].cycle != 15 {
		t.Fatalf("link serialization wrong: arrivals %d, %d; want 14, 15", sink.flits[0].cycle, sink.flits[1].cycle)
	}
}

// TestOQWormholeBody: a multi-flit packet streams through the staging
// FIFO one flit per cycle on the same downstream VC, with the body flit
// taking the already-allocated (VCActive) path through the crossbar.
func TestOQWormholeBody(t *testing.T) {
	m, sink, _ := testMicroarch(t, router.ArchOQ, 1)
	p := pkt(2)
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 0}, 10)
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 1}, 10)
	for c := sim.Cycle(10); c < 16; c++ {
		m.Step(c)
	}
	if len(sink.flits) != 2 {
		t.Fatalf("sent %d flits, want 2", len(sink.flits))
	}
	if sink.flits[0].vc != sink.flits[1].vc {
		t.Fatal("packet split across downstream VCs")
	}
	if len(sink.credits) != 2 || sink.credits[0].free || !sink.credits[1].free {
		t.Fatalf("upstream credits wrong: %+v", sink.credits)
	}
}

// TestOQNoCreditNoStage: with no downstream credit the front stays in its
// input VC (where UPP's stall detection can see it) instead of staging.
func TestOQNoCreditNoStage(t *testing.T) {
	m, sink, _ := testMicroarch(t, router.ArchOQ, 1)
	q := m.(*router.OQ)
	q.Out[1].Credits[0] = 0
	p := pkt(1)
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	for c := sim.Cycle(10); c < 20; c++ {
		m.Step(c)
	}
	if m.StagedCount(1) != 0 || len(sink.flits) != 0 {
		t.Fatal("staged a flit without downstream credit")
	}
	m.ReceiveCredit(1, 0, 1, false)
	m.Step(21)
	m.Step(22)
	if len(sink.flits) != 1 {
		t.Fatal("flit stuck after credit arrived")
	}
}

// TestOQLocalEjection: the local port has no staging FIFO — ejection goes
// straight from the input VC to the NI, gated by ejection admission.
func TestOQLocalEjection(t *testing.T) {
	m, _, local := testMicroarch(t, router.ArchOQ, topology.LocalPort)
	local.accept = false
	p := pkt(1)
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	for c := sim.Cycle(10); c < 15; c++ {
		m.Step(c)
	}
	if len(local.got) != 0 {
		t.Fatal("head ejected despite a full ejection queue")
	}
	local.accept = true
	m.Step(16)
	if len(local.got) != 1 {
		t.Fatal("flit not ejected after queue freed")
	}
	if m.PortSentOn(topology.LocalPort) != 1 {
		t.Fatal("ejection not counted on the local port")
	}
}

// TestVOQSingleFlitTiming: with no contention the virtual-output-queued
// pipeline is cycle-identical to iq — BW at 10, SA+ST at 11, arrival at 13.
func TestVOQSingleFlitTiming(t *testing.T) {
	m, sink, _ := testMicroarch(t, router.ArchVOQ, 1)
	p := pkt(1)
	m.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	m.Step(10)
	if len(sink.flits) != 0 {
		t.Fatal("flit moved in its buffer-write cycle")
	}
	m.Step(11)
	if len(sink.flits) != 1 || sink.flits[0].cycle != 13 {
		t.Fatalf("voq timing diverged from iq: %+v", sink.flits)
	}
}

// TestVOQEjectionFirst: outputs are served in ascending port order, local
// ejection first — when one input port holds both an ejecting head and a
// through-traffic head, the ejection wins the input's crossbar slot (the
// consumption-first lever of arXiv 2303.10526).
func TestVOQEjectionFirst(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	sink := &mockSink{}
	local := &mockLocal{accept: true}
	route := func(cur topology.NodeID, in topology.PortID, p *message.Packet) (topology.PortID, error) {
		if p.VNet == message.VNetRequest {
			return 1, nil
		}
		return topology.LocalPort, nil
	}
	m, err := router.NewMicroarch(router.ArchVOQ, topo.Node(0), router.DefaultConfig(), sink, local, route, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	through := &message.Packet{ID: 1, Dst: 5, VNet: message.VNetRequest, Size: 1}
	eject := &message.Packet{ID: 2, Dst: 0, VNet: message.VNetResponse, Size: 1}
	m.ReceiveFlit(2, 0, message.Flit{Pkt: through}, 10)
	m.ReceiveFlit(2, int8(cfg.VCIndex(message.VNetResponse, 0)), message.Flit{Pkt: eject}, 10)
	m.Step(11)
	if len(local.got) != 1 {
		t.Fatalf("ejection not served first: local got %d flits", len(local.got))
	}
	if len(sink.flits) != 0 {
		t.Fatal("one input port granted twice in one cycle")
	}
	m.Step(12)
	if len(sink.flits) != 1 {
		t.Fatal("through-traffic head starved after the ejection drained")
	}
}
