package router

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// Microarchitecture names for NewMicroarch, network.Config.RouterArch and
// the UPP_ROUTER environment variable.
const (
	// ArchIQ is the paper's 3-stage input-queued wormhole router — the
	// default, and the reference the golden tests pin bit-identically.
	ArchIQ = "iq"
	// ArchOQ is the output-queued variant: input VCs are shallower and
	// the freed slots form per-output staging FIFOs that the crossbar
	// fills with full speedup, eliminating switch-level head-of-line
	// blocking (arXiv 2303.10526's OQ router class).
	ArchOQ = "oq"
	// ArchVOQ is the virtual-output-queued variant: buffering is
	// identical to iq, but allocation considers every (input port, VC)
	// head per output — with the ejection port served first, the cheap
	// consumption-first avoidance lever of arXiv 2303.10526 — instead of
	// nominating a single VC per input port.
	ArchVOQ = "voq"
)

// Microarch is the narrow surface the rest of the system consumes from a
// router: the kernels drive ReceiveFlit/ReceiveCredit/Step/Idle, the
// schemes observe and manipulate the datapath through the epoch-stamped
// crossbar claims and the plugin API, the parallel kernel rewires the
// sinks, fault injection toggles ports, and the invariant checkers and
// debug renders read through the inspection accessors. Every concrete
// pipeline (iq, oq, voq) implements it; network construction goes through
// NewMicroarch.
type Microarch interface {
	// NodeID returns the topology node this router sits on.
	NodeID() topology.NodeID
	// TopoNode returns the full topology node (ports, coordinates).
	TopoNode() *topology.Node
	// Config returns the effective input-side configuration: BufferDepth
	// is the per-input-VC depth credits are counted against, which for
	// buffer-splitting variants (oq) is smaller than the configured
	// budget depth (see BufferBudget).
	Config() Config
	// Arch names the concrete microarchitecture (ArchIQ, ArchOQ, ArchVOQ).
	Arch() string

	// ReceiveFlit performs the buffer write of a flit arriving on
	// (port, vc); the flit becomes pipeline-eligible the following cycle.
	ReceiveFlit(port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle)
	// ReceiveCredit applies a credit arriving at output port port.
	ReceiveCredit(port topology.PortID, vc int8, delta int, free bool)
	// Step runs one cycle of the pipeline. It must honor the Step
	// concurrency contract (see Router.Step): mutate only this router's
	// own state and emit every cross-component effect through the sinks.
	Step(cycle sim.Cycle)
	// Idle reports that stepping would be a no-op; the active-set kernel
	// retires idle routers until an arrival wakes them.
	Idle() bool
	// Buffered returns the number of flits currently held anywhere in the
	// router (input VCs plus any output staging).
	Buffered() int

	// ClaimOutput reserves output port p for an out-of-band transfer
	// during the given cycle; claims are epoch-stamped and expire with
	// the cycle.
	ClaimOutput(p topology.PortID, cycle sim.Cycle) bool
	// ClaimInput reserves input port p's crossbar slot for the cycle.
	ClaimInput(p topology.PortID, cycle sim.Cycle) bool
	// OutputClaimed reports whether output p is claimed during the cycle.
	OutputClaimed(p topology.PortID, cycle sim.Cycle) bool
	// UpSentMask returns the bitmask of VNets that sent a flit through an
	// Up output during the given cycle (UPP detection resets on it).
	UpSentMask(cycle sim.Cycle) uint8
	// MarkUpSent records an out-of-band up-port transmission.
	MarkUpSent(v message.VNet, cycle sim.Cycle)

	// VCAt returns an input VC for inspection by plugins and tests.
	VCAt(port topology.PortID, vc int) *VC
	// PopFront forcibly dequeues the front flit of (port, vc) on behalf
	// of a scheme plugin; upstream credit bookkeeping matches a normal
	// send.
	PopFront(port topology.PortID, vcIdx int, cycle sim.Cycle) message.Flit
	// ForceReleaseVC resets an empty VC whose packet was diverted away
	// from it, freeing the upstream allocation via a zero-delta credit.
	ForceReleaseVC(port topology.PortID, vcIdx int, cycle sim.Cycle)
	// AllocateOutputVC grabs a free downstream VC of vnet on output out
	// for an out-of-band sender; -1 when none is free.
	AllocateOutputVC(out topology.PortID, vnet message.VNet) int8
	// CreditsAvailable reports whether output out has a credit for
	// downstream VC outVC.
	CreditsAvailable(out topology.PortID, outVC int8) bool
	// SendOnOutput sends f through output out into downstream VC outVC,
	// consuming one credit (bypassing any output staging).
	SendOnOutput(out topology.PortID, outVC int8, f message.Flit, cycle sim.Cycle)
	// SendDirect performs circuit-switched switch traversal for popup
	// flits and protocol signals (no buffers, credits or allocation).
	SendDirect(out topology.PortID)
	// EjectDirect hands a flit straight to the NI.
	EjectDirect(f message.Flit, cycle sim.Cycle)
	// Neighbor returns the (node, port) on the far side of output p.
	Neighbor(p topology.PortID) (topology.NodeID, topology.PortID)

	// SetSink replaces the event sink (the parallel kernel installs
	// per-shard recording sinks).
	SetSink(s EventSink)
	// SetLocal attaches the NI-facing sink.
	SetLocal(l LocalSink)
	// SetPortDown marks output p as crossing a transiently-down link.
	SetPortDown(p topology.PortID, down bool)
	// PortDown reports whether output p crosses a down link.
	PortDown(p topology.PortID) bool
	// SetPortFenced marks output p as draining toward a permanent link
	// removal: Waiting heads are never granted it, Active packets finish
	// crossing (dynamic reconfiguration's fence-then-cut protocol).
	SetPortFenced(p topology.PortID, fenced bool)
	// PortFenced reports whether output p is fenced for draining.
	PortFenced(p topology.PortID) bool
	// UnrouteFencedHeads sends every Waiting head aimed at a fenced port
	// back to route computation (the route function migrates it onto the
	// current routing epoch); returns the number of heads unrouted.
	UnrouteFencedHeads() int
	// PortQuiet reports that no allocation is in flight through output p
	// (no Waiting or Active input VC targets it and nothing is staged for
	// it) — the fence-then-cut protocol's cut condition.
	PortQuiet(p topology.PortID) bool

	// StatsSnapshot returns the datapath event counters.
	StatsSnapshot() Stats
	// NumPorts returns the router radix.
	NumPorts() int
	// PortSentOn returns the flits sent through output p.
	PortSentOn(p topology.PortID) uint64
	// OutCredits returns the credit count of output p toward downstream
	// VC vc.
	OutCredits(p topology.PortID, vc int) int16
	// OutBusy reports whether downstream VC vc of output p is allocated.
	OutBusy(p topology.PortID, vc int) bool
	// StagedFor counts flits staged at output p bound for downstream VC
	// vc — their credit is already consumed, so conservation checks add
	// this term. Zero for variants without output staging.
	StagedFor(p topology.PortID, vc int) int
	// StagedCount counts all flits staged at output p.
	StagedCount(p topology.PortID) int
	// ScanStaged calls fn for every staged flit (debug audits).
	ScanStaged(fn func(message.Flit))

	// Snapshot serializes the router's full mutable state into a UPWS
	// section; Restore overwrites it from one written by the same
	// microarchitecture on an identically-configured router (DESIGN.md
	// §14). Variants with extra storage (oq staging) extend the base
	// encoding.
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader) error
}

// Compile-time interface checks for all three variants.
var (
	_ Microarch = (*Router)(nil)
	_ Microarch = (*OQ)(nil)
	_ Microarch = (*VOQ)(nil)
)

// --- Router (iq) accessors --------------------------------------------------
//
// The input-queued pipeline predates the interface; these adapters expose
// its fields without touching the pipeline itself, keeping the default
// arch bit-identical to the pre-interface router.

// NodeID implements Microarch.
func (r *Router) NodeID() topology.NodeID { return r.ID }

// TopoNode implements Microarch.
func (r *Router) TopoNode() *topology.Node { return r.Node }

// Config implements Microarch.
func (r *Router) Config() Config { return r.Cfg }

// Arch implements Microarch.
func (r *Router) Arch() string { return ArchIQ }

// StatsSnapshot implements Microarch.
func (r *Router) StatsSnapshot() Stats { return r.Stats }

// NumPorts implements Microarch.
func (r *Router) NumPorts() int { return len(r.In) }

// PortSentOn implements Microarch.
func (r *Router) PortSentOn(p topology.PortID) uint64 { return r.PortSent[p] }

// OutCredits implements Microarch.
func (r *Router) OutCredits(p topology.PortID, vc int) int16 { return r.Out[p].Credits[vc] }

// OutBusy implements Microarch.
func (r *Router) OutBusy(p topology.PortID, vc int) bool { return r.Out[p].Busy[vc] }

// StagedFor implements Microarch; the input-queued router stages nothing.
func (r *Router) StagedFor(topology.PortID, int) int { return 0 }

// StagedCount implements Microarch.
func (r *Router) StagedCount(topology.PortID) int { return 0 }

// ScanStaged implements Microarch.
func (r *Router) ScanStaged(func(message.Flit)) {}

// --- Equal buffer budget ----------------------------------------------------

// BufferBudget returns the total flit-slot budget per router port that
// every microarchitecture must hit: NumVCs input VCs of BufferDepth flits
// each. Variants that buffer at outputs carve their staging capacity out
// of this same budget (LayoutFor), so scheme × arch comparisons are never
// apples-to-oranges on storage.
func BufferBudget(cfg Config) int { return cfg.NumVCs() * cfg.BufferDepth }

// BufferLayout describes how one microarchitecture splits BufferBudget
// between input VCs and output staging.
type BufferLayout struct {
	Arch string
	// InputDepth is the per-input-VC buffer depth (what credits count).
	InputDepth int
	// StageSlots is the per-output-port staging FIFO capacity; zero for
	// variants without output queues.
	StageSlots int
}

// TotalPerPort returns the layout's flit slots per port; equal to
// BufferBudget(cfg) for every valid layout.
func (l BufferLayout) TotalPerPort(cfg Config) int {
	return cfg.NumVCs()*l.InputDepth + l.StageSlots
}

// LayoutFor returns arch's split of the equal buffer budget, or an error
// for unknown or unsupportable combinations.
func LayoutFor(arch string, cfg Config) (BufferLayout, error) {
	switch arch {
	case ArchIQ, ArchVOQ:
		// Both keep the full budget at the inputs; voq differs only in
		// allocation.
		return BufferLayout{Arch: arch, InputDepth: cfg.BufferDepth}, nil
	case ArchOQ:
		if cfg.VCT {
			return BufferLayout{}, fmt.Errorf("router: arch %q does not support virtual cut-through (whole-packet staging would double-buffer)", arch)
		}
		if cfg.BufferDepth < 2 {
			return BufferLayout{}, fmt.Errorf("router: arch %q needs BufferDepth >= 2 to split buffering between inputs and outputs", arch)
		}
		// Half of each input VC's depth moves to the output side; the
		// staging FIFO is shared across the port's VCs.
		h := cfg.BufferDepth / 2
		return BufferLayout{Arch: arch, InputDepth: cfg.BufferDepth - h, StageSlots: cfg.NumVCs() * h}, nil
	default:
		return BufferLayout{}, fmt.Errorf("router: unknown arch %q (want %q, %q or %q)", arch, ArchIQ, ArchOQ, ArchVOQ)
	}
}

// NewMicroarch constructs the router variant named by arch for node n.
// Every variant receives the same Config; buffer-splitting variants derive
// their effective per-VC depth via LayoutFor so the total budget matches
// BufferBudget(cfg) exactly.
func NewMicroarch(arch string, n *topology.Node, cfg Config, sink EventSink, local LocalSink, route RouteFunc, rng *sim.RNG) (Microarch, error) {
	lay, err := LayoutFor(arch, cfg)
	if err != nil {
		return nil, err
	}
	switch arch {
	case ArchVOQ:
		return NewVOQ(n, cfg, sink, local, route, rng), nil
	case ArchOQ:
		return NewOQ(n, cfg, lay, sink, local, route, rng), nil
	default:
		return New(n, cfg, sink, local, route, rng), nil
	}
}
