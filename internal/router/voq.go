package router

import (
	"fmt"

	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// VOQ is the virtual-output-queued router variant. Physical buffering is
// identical to the input-queued design (same VCs, same depths, same
// credits — LayoutFor gives it the full budget at the inputs), but switch
// allocation is virtual-output-queued: instead of each input port
// nominating a single VC and head-of-line losers blocking the whole port,
// every output port searches all input (port, VC) heads bound for it and
// grants one. Outputs are served in ascending port order, which puts the
// local ejection port first — the cheap consumption-first avoidance lever
// of arXiv 2303.10526: when ejection can proceed it is never starved by
// through-traffic contending for the same input port.
//
// Everything else — route computation, randomized downstream VC
// selection, credit flow, the plugin API, the Step concurrency contract —
// is inherited from the embedded input-queued router.
type VOQ struct {
	*Router
}

// NewVOQ constructs a virtual-output-queued router for node n.
func NewVOQ(n *topology.Node, cfg Config, sink EventSink, local LocalSink, route RouteFunc, rng *sim.RNG) *VOQ {
	return &VOQ{Router: New(n, cfg, sink, local, route, rng)}
}

// Arch implements Microarch.
func (q *VOQ) Arch() string { return ArchVOQ }

// Step runs one cycle of virtual-output-queued allocation: per output
// port (ascending, local ejection first), round-robin over input ports,
// searching each port's VCs for a head bound for that output. One grant
// per output and per input port per cycle keeps the crossbar model
// identical to the input-queued router; only the matching differs.
func (q *VOQ) Step(cycle sim.Cycle) {
	if q.buffered == 0 {
		return
	}
	nports := len(q.In)
	var inputUsed uint32
	for oi := 0; oi < nports; oi++ {
		if q.outClaimedAt[oi] > cycle || q.downOut&(1<<uint(oi)) != 0 {
			continue
		}
		out := &q.Out[oi]
		for k := 1; k <= nports; k++ {
			pi := (out.rr + k) % nports
			if inputUsed&(1<<uint(pi)) != 0 || q.inClaimedAt[pi] > cycle || q.In[pi].buffered == 0 {
				continue
			}
			vi := q.pickVCFor(topology.PortID(pi), topology.PortID(oi), cycle)
			if vi < 0 {
				continue
			}
			q.Stats.SARequests++
			q.grant(topology.PortID(pi), vi, cycle)
			out.rr = pi
			inputUsed |= 1 << uint(pi)
			break
		}
	}
}

// pickVCFor selects, round-robin, one VC of input port pi whose packet is
// bound for output oi and can use the crossbar this cycle. Eligibility
// rules match the input-queued pickInputVC (holds, popup bypass, route
// computation for fresh heads, credit checks); only the output filter is
// new.
func (q *VOQ) pickVCFor(pi, oi topology.PortID, cycle sim.Cycle) int {
	vcs := q.In[pi].VCs
	n := len(vcs)
	start := q.inRR[pi]
	for k := 1; k <= n; k++ {
		vi := (start + k) % n
		vc := &vcs[vi]
		if vc.Hold {
			// A scheme plugin owns this VC's draining.
			continue
		}
		f, ok := vc.FrontReady(cycle)
		if !ok {
			continue
		}
		if f.Pkt.Popup && int16(q.Node.Chiplet) == f.Pkt.DstChiplet {
			// Popup flits drain through the circuit inside the destination
			// chiplet (Sec. V-C), exactly as in the input-queued router.
			continue
		}
		if f.IsHead() && !vc.routed {
			op, err := q.route(q.ID, pi, f.Pkt)
			if err != nil {
				panic(fmt.Sprintf("router %d (x=%d y=%d chiplet %d) cycle %d: route computation failed for pkt %d (%s %d->%d) at input port %d: %v",
					q.ID, q.Node.X, q.Node.Y, q.Node.Chiplet, cycle, f.Pkt.ID, f.Pkt.VNet, f.Pkt.Src, f.Pkt.Dst, pi, err))
			}
			vc.OutPort = op
			vc.State = VCWaiting
			vc.routed = true
		}
		if vc.OutPort != oi {
			continue
		}
		switch vc.State {
		case VCWaiting:
			if q.fencedOut&(1<<uint(vc.OutPort)) != 0 {
				// The port is draining toward a permanent cut: no new
				// wormhole may start crossing (the head is migrated onto
				// the new routing by UnrouteFencedHeads).
				continue
			}
			if !q.headCanAdvance(vc, f, cycle) {
				continue
			}
		case VCActive:
			if vc.OutPort != topology.LocalPort && q.Out[vc.OutPort].Credits[vc.OutVC] <= 0 {
				continue
			}
		default:
			continue
		}
		q.inRR[pi] = vi
		return vi
	}
	return -1
}
