package router

import (
	"math"

	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// Snapshot serializes the router's full mutable state (DESIGN.md §14):
// every input VC's buffered flits and wormhole allocation, output
// credits and busy bits, the epoch-stamped crossbar claims, round-robin
// pointers, datapath counters and the router's split RNG stream. The
// immutable parts — topology node, config, route function, sinks — are
// rebuilt by network construction before Restore runs.
func (r *Router) Snapshot(w *snap.Writer) {
	for pi := range r.In {
		in := &r.In[pi]
		for vi := range in.VCs {
			vc := &in.VCs[vi]
			w.Uvarint(uint64(vc.count))
			for i := 0; i < vc.count; i++ {
				b := &vc.buf[(vc.head+i)%len(vc.buf)]
				w.Flit(b.flit)
				w.Varint(b.ready)
			}
			w.Uvarint(uint64(vc.State))
			w.Varint(int64(vc.OutPort))
			w.Varint(int64(vc.OutVC))
			w.Bool(vc.routed)
			w.Bool(vc.Hold)
		}
		out := &r.Out[pi]
		for vi := range out.Credits {
			w.Varint(int64(out.Credits[vi]))
			w.Bool(out.Busy[vi])
		}
		w.Int(out.rr)
		w.Varint(r.outClaimedAt[pi])
		w.Varint(r.inClaimedAt[pi])
		w.Int(r.inRR[pi])
		w.Uvarint(r.PortSent[pi])
	}
	w.Uvarint(uint64(r.upSent))
	w.Varint(r.upSentAt)
	w.Uvarint(uint64(r.downOut))
	w.Uvarint(uint64(r.fencedOut))
	w.Uvarint(r.Stats.BufferWrites)
	w.Uvarint(r.Stats.BufferReads)
	w.Uvarint(r.Stats.CrossbarTravs)
	w.Uvarint(r.Stats.LinkTravs)
	w.Uvarint(r.Stats.SARequests)
	w.Uvarint(r.Stats.SAGrants)
	w.Uvarint(r.Stats.UpFlits)
	st := r.rng.State()
	for _, s := range st {
		w.Uvarint(s)
	}
}

// Restore overwrites the router's mutable state from a snapshot written
// by Snapshot on an identically-configured router. Flits are re-pushed
// into freshly reset VCs — the ring's head position is unobservable, so
// only FIFO order matters.
func (r *Router) Restore(rd *snap.Reader) error {
	nports := len(r.In)
	r.buffered = 0
	for pi := 0; pi < nports; pi++ {
		in := &r.In[pi]
		in.buffered = 0
		for vi := range in.VCs {
			vc := &in.VCs[vi]
			vc.reset()
			n := rd.Len("vc flit count", len(vc.buf))
			if rd.Err() != nil {
				return rd.Err()
			}
			for i := 0; i < n; i++ {
				f := rd.Flit()
				ready := rd.Varint("vc flit ready")
				if rd.Err() != nil {
					return rd.Err()
				}
				vc.buf[(vc.head+vc.count)%len(vc.buf)] = bufFlit{flit: f, ready: ready}
				vc.count++
			}
			in.buffered += n
			r.buffered += n
			st := rd.Uvarint("vc state")
			if rd.Err() == nil && st > uint64(VCActive) {
				rd.Fail("vc state %d out of range", st)
			}
			vc.State = VCState(st)
			vc.OutPort = topology.PortID(rd.Int("vc outport", -1, int64(nports)-1))
			vc.OutVC = int8(rd.Int("vc outvc", -1, int64(len(r.Out[pi].Credits))-1))
			vc.routed = rd.Bool("vc routed")
			vc.Hold = rd.Bool("vc hold")
		}
		out := &r.Out[pi]
		for vi := range out.Credits {
			out.Credits[vi] = int16(rd.Int("out credits", 0, int64(r.Cfg.BufferDepth)))
			out.Busy[vi] = rd.Bool("out busy")
		}
		out.rr = rd.Int("out rr", 0, int64(nports))
		r.outClaimedAt[pi] = rd.Varint("out claim")
		r.inClaimedAt[pi] = rd.Varint("in claim")
		r.inRR[pi] = rd.Int("in rr", 0, int64(len(in.VCs)))
		r.PortSent[pi] = rd.Uvarint("port sent")
	}
	up := rd.Uvarint("upsent mask")
	if rd.Err() == nil && up > math.MaxUint8 {
		rd.Fail("upsent mask %d out of range", up)
	}
	r.upSent = uint8(up)
	r.upSentAt = rd.Varint("upsent at")
	down := rd.Uvarint("down mask")
	if rd.Err() == nil && down > math.MaxUint32 {
		rd.Fail("down mask %d out of range", down)
	}
	r.downOut = uint32(down)
	fenced := rd.Uvarint("fenced mask")
	if rd.Err() == nil && fenced > math.MaxUint32 {
		rd.Fail("fenced mask %d out of range", fenced)
	}
	r.fencedOut = uint32(fenced)
	r.Stats.BufferWrites = rd.Uvarint("stats bufw")
	r.Stats.BufferReads = rd.Uvarint("stats bufr")
	r.Stats.CrossbarTravs = rd.Uvarint("stats xbar")
	r.Stats.LinkTravs = rd.Uvarint("stats link")
	r.Stats.SARequests = rd.Uvarint("stats sareq")
	r.Stats.SAGrants = rd.Uvarint("stats sagrant")
	r.Stats.UpFlits = rd.Uvarint("stats upflits")
	var st [4]uint64
	for i := range st {
		st[i] = rd.Uvarint("router rng")
	}
	if rd.Err() != nil {
		return rd.Err()
	}
	r.rng.SetState(st)
	return nil
}

// Snapshot appends the output staging FIFOs to the base router state.
func (q *OQ) Snapshot(w *snap.Writer) {
	q.Router.Snapshot(w)
	for pi := range q.stage {
		s := &q.stage[pi]
		w.Uvarint(uint64(s.count))
		for i := 0; i < s.count; i++ {
			sf := &s.buf[(s.head+i)%len(s.buf)]
			w.Flit(sf.f)
			w.Varint(int64(sf.outVC))
		}
	}
}

// Restore mirrors Snapshot for the output-queued variant.
func (q *OQ) Restore(rd *snap.Reader) error {
	if err := q.Router.Restore(rd); err != nil {
		return err
	}
	q.staged = 0
	for pi := range q.stage {
		s := &q.stage[pi]
		s.head, s.count = 0, 0
		for i := range s.buf {
			s.buf[i] = stagedFlit{}
		}
		n := rd.Len("stage flit count", len(s.buf))
		if rd.Err() != nil {
			return rd.Err()
		}
		for i := 0; i < n; i++ {
			f := rd.Flit()
			outVC := int8(rd.Int("stage outvc", 0, int64(q.Cfg.NumVCs())-1))
			if rd.Err() != nil {
				return rd.Err()
			}
			s.push(stagedFlit{f: f, outVC: outVC})
		}
		q.staged += n
	}
	return rd.Err()
}
