package router_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

type sentFlit struct {
	to    topology.NodeID
	port  topology.PortID
	vc    int8
	f     message.Flit
	cycle sim.Cycle
}

type sentCredit struct {
	to    topology.NodeID
	port  topology.PortID
	vc    int8
	delta int
	free  bool
	cycle sim.Cycle
}

type mockSink struct {
	flits   []sentFlit
	credits []sentCredit
}

func (m *mockSink) DeliverFlit(to topology.NodeID, port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle) {
	m.flits = append(m.flits, sentFlit{to, port, vc, f, cycle})
}

func (m *mockSink) DeliverCredit(to topology.NodeID, port topology.PortID, vc int8, delta int, free bool, cycle sim.Cycle) {
	m.credits = append(m.credits, sentCredit{to, port, vc, delta, free, cycle})
}

type mockLocal struct {
	accept bool
	got    []message.Flit
}

func (m *mockLocal) CanAcceptHead(*message.Packet, sim.Cycle) bool { return m.accept }
func (m *mockLocal) AcceptFlit(f message.Flit, _ sim.Cycle)        { m.got = append(m.got, f) }

// testRouter builds a router on the baseline topology's node 0 (an
// interposer corner router: local + east + north + up ports) with a fixed
// route to the given port.
func testRouter(t *testing.T, out topology.PortID) (*router.Router, *mockSink, *mockLocal) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	sink := &mockSink{}
	local := &mockLocal{accept: true}
	route := func(cur topology.NodeID, in topology.PortID, p *message.Packet) (topology.PortID, error) {
		return out, nil
	}
	r := router.New(topo.Node(0), router.DefaultConfig(), sink, local, route, sim.NewRNG(1))
	return r, sink, local
}

func pkt(size int) *message.Packet {
	return &message.Packet{ID: 1, Src: 0, Dst: 5, VNet: message.VNetRequest, Size: size}
}

func TestPipelineTiming(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	p := pkt(1)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10) // BW at cycle 10
	r.Step(10)                                    // not yet eligible
	if len(sink.flits) != 0 {
		t.Fatal("flit moved in its buffer-write cycle")
	}
	r.Step(11) // SA+VCS, ST
	if len(sink.flits) != 1 {
		t.Fatalf("flit not sent at cycle 11: %v", sink.flits)
	}
	// ST at 11, LT, arrival at 11+1+linkLatency.
	if got := sink.flits[0].cycle; got != 13 {
		t.Fatalf("arrival cycle %d, want 13", got)
	}
	if r.Buffered() != 0 {
		t.Fatal("buffer not drained")
	}
}

func TestCreditAndVCLifecycle(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	p := pkt(2)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 0}, 10)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 1}, 11)
	for c := sim.Cycle(10); c < 16; c++ {
		r.Step(c)
	}
	if len(sink.flits) != 2 {
		t.Fatalf("sent %d flits, want 2", len(sink.flits))
	}
	// Downstream VC allocation: both flits into the same VC.
	if sink.flits[0].vc != sink.flits[1].vc {
		t.Fatal("packet split across downstream VCs")
	}
	// Credits consumed: 2 of 4.
	if got := r.Out[1].Credits[sink.flits[0].vc]; got != 2 {
		t.Fatalf("credits %d, want 2", got)
	}
	// Downstream VC still allocated until its free credit returns.
	if !r.Out[1].Busy[sink.flits[0].vc] {
		t.Fatal("downstream VC not held")
	}
	r.ReceiveCredit(1, sink.flits[0].vc, 1, false)
	r.ReceiveCredit(1, sink.flits[0].vc, 1, true)
	if r.Out[1].Busy[sink.flits[0].vc] {
		t.Fatal("free credit did not release the VC")
	}
	if got := r.Out[1].Credits[sink.flits[0].vc]; got != 4 {
		t.Fatalf("credits %d after return, want 4", got)
	}
	// Upstream credits: one per flit, free on the tail.
	if len(sink.credits) != 2 {
		t.Fatalf("%d upstream credits, want 2", len(sink.credits))
	}
	if sink.credits[0].free || !sink.credits[1].free {
		t.Fatalf("free flags wrong: %+v", sink.credits)
	}
}

func TestNoCreditNoSend(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	// Exhaust all VNet-0 credits on output 1.
	r.Out[1].Credits[0] = 0
	p := pkt(1)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	for c := sim.Cycle(10); c < 20; c++ {
		r.Step(c)
	}
	if len(sink.flits) != 0 {
		t.Fatal("sent a flit without credit")
	}
	r.ReceiveCredit(1, 0, 1, false)
	// Still Busy=false so a head can allocate... it was never busy.
	r.Step(21)
	if len(sink.flits) != 1 {
		t.Fatal("flit stuck after credit arrived")
	}
}

func TestBusyVCBlocksNewHead(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	r.Out[1].Busy[0] = true // vnet0's only VC taken downstream
	p := pkt(1)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	for c := sim.Cycle(10); c < 15; c++ {
		r.Step(c)
	}
	if len(sink.flits) != 0 {
		t.Fatal("head advanced into a busy downstream VC")
	}
	r.ReceiveCredit(1, 0, 0, true)
	r.Step(16)
	if len(sink.flits) != 1 {
		t.Fatal("head stuck after VC freed")
	}
}

func TestClaimedOutputBlocksSA(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	p := pkt(1)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	if !r.ClaimOutput(1, 11) {
		t.Fatal("claim failed")
	}
	r.Step(11)
	if len(sink.flits) != 0 {
		t.Fatal("SA used a claimed output")
	}
	r.Step(12) // the claim expired with cycle 11
	if len(sink.flits) != 1 {
		t.Fatal("flit stuck after claim expired")
	}
}

func TestHoldBlocksSA(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	p := pkt(1)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	r.VCAt(2, 0).Hold = true
	for c := sim.Cycle(10); c < 15; c++ {
		r.Step(c)
	}
	if len(sink.flits) != 0 {
		t.Fatal("held VC moved through SA")
	}
	r.VCAt(2, 0).Hold = false
	r.Step(16)
	if len(sink.flits) != 1 {
		t.Fatal("flit stuck after hold cleared")
	}
}

func TestOneFlitPerOutputPerCycle(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	// Two packets on different input ports, same output, different vnets
	// (so both could allocate a VC).
	p1 := &message.Packet{ID: 1, Dst: 5, VNet: 0, Size: 1}
	p2 := &message.Packet{ID: 2, Dst: 5, VNet: 1, Size: 1}
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p1}, 10)
	r.ReceiveFlit(3, int8(r.Cfg.VCIndex(1, 0)) /* vnet1 vc */, message.Flit{Pkt: p2}, 10)
	r.Step(11)
	if len(sink.flits) != 1 {
		t.Fatalf("output port carried %d flits in one cycle", len(sink.flits))
	}
	r.Step(12)
	if len(sink.flits) != 2 {
		t.Fatal("second flit never granted")
	}
}

func TestEjectionAdmission(t *testing.T) {
	r, _, local := testRouter(t, topology.LocalPort)
	local.accept = false
	p := pkt(1)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p}, 10)
	for c := sim.Cycle(10); c < 15; c++ {
		r.Step(c)
	}
	if len(local.got) != 0 {
		t.Fatal("head ejected despite a full ejection queue")
	}
	local.accept = true
	r.Step(16)
	if len(local.got) != 1 {
		t.Fatal("flit not ejected after queue freed")
	}
}

func TestPopFrontSemantics(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	p := pkt(2)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 0}, 10)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 1}, 10)
	f := r.PopFront(2, 0, 12)
	if f.Seq != 0 {
		t.Fatal("PopFront order")
	}
	if len(sink.credits) != 1 || sink.credits[0].free {
		t.Fatalf("non-tail pop credit wrong: %+v", sink.credits)
	}
	f = r.PopFront(2, 0, 13)
	if !f.IsTail() {
		t.Fatal("expected tail")
	}
	if len(sink.credits) != 2 || !sink.credits[1].free {
		t.Fatalf("tail pop must send a free credit: %+v", sink.credits)
	}
	if got := r.VCAt(2, 0).State; got != router.VCIdle {
		t.Fatalf("VC state %v after tail pop", got)
	}
}

func TestForceReleaseVC(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	p := pkt(5)
	r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: 0}, 10)
	_ = r.PopFront(2, 0, 12) // head diverted; VC empty but mid-packet
	r.ForceReleaseVC(2, 0, 13)
	last := sink.credits[len(sink.credits)-1]
	if !last.free || last.delta != 0 {
		t.Fatalf("force release credit wrong: %+v", last)
	}
	if r.VCAt(2, 0).State != router.VCIdle {
		t.Fatal("VC not reset")
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	r, _, _ := testRouter(t, 1)
	p := pkt(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	for i := int32(0); i < 5; i++ {
		r.ReceiveFlit(2, 0, message.Flit{Pkt: p, Seq: i}, 10)
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	r, _, _ := testRouter(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected credit overflow panic")
		}
	}()
	r.ReceiveCredit(1, 0, 1, false) // already at full depth
}

func TestAllocateOutputVC(t *testing.T) {
	r, _, _ := testRouter(t, 1)
	vc := r.AllocateOutputVC(1, message.VNetRequest)
	if vc < 0 {
		t.Fatal("allocation failed on idle output")
	}
	if !r.Out[1].Busy[vc] {
		t.Fatal("allocation did not mark busy")
	}
	if again := r.AllocateOutputVC(1, message.VNetRequest); again >= 0 {
		t.Fatal("double allocation of the single VNet-0 VC")
	}
	if other := r.AllocateOutputVC(1, message.VNetResponse); other < 0 {
		t.Fatal("other VNet should still allocate")
	}
}

func TestUpSentMask(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	// Node 0 is an interposer router; find its Up port.
	up := topo.Node(0).PortTo(topology.Up)
	if up == topology.InvalidPort {
		t.Fatal("node 0 has no up port")
	}
	sink := &mockSink{}
	route := func(topology.NodeID, topology.PortID, *message.Packet) (topology.PortID, error) {
		return up, nil
	}
	r := router.New(topo.Node(0), router.DefaultConfig(), sink, &mockLocal{accept: true}, route, sim.NewRNG(1))
	p := &message.Packet{ID: 1, Dst: 20, VNet: message.VNetResponse, Size: 1}
	r.ReceiveFlit(1, int8(r.Cfg.VCIndex(message.VNetResponse, 0)), message.Flit{Pkt: p}, 10)
	r.Step(11)
	if r.UpSentMask(11) != 1<<uint(message.VNetResponse) {
		t.Fatalf("up mask %b", r.UpSentMask(11))
	}
	if r.UpSentMask(12) != 0 {
		t.Fatal("mask must expire with the cycle it was recorded for")
	}
}

func TestSendOnOutput(t *testing.T) {
	r, sink, _ := testRouter(t, 1)
	vc := r.AllocateOutputVC(1, message.VNetRequest)
	if vc < 0 {
		t.Fatal("allocation failed")
	}
	if !r.CreditsAvailable(1, vc) {
		t.Fatal("no credits on idle output")
	}
	p := pkt(1)
	r.SendOnOutput(1, vc, message.Flit{Pkt: p}, 20)
	if len(sink.flits) != 1 || sink.flits[0].vc != vc {
		t.Fatalf("send wrong: %+v", sink.flits)
	}
	if got := r.Out[1].Credits[vc]; got != 3 {
		t.Fatalf("credits %d after send", got)
	}
	if sink.flits[0].cycle != 22 {
		t.Fatalf("arrival %d, want 22", sink.flits[0].cycle)
	}
}

func TestEjectDirect(t *testing.T) {
	r, _, local := testRouter(t, topology.LocalPort)
	p := pkt(1)
	r.EjectDirect(message.Flit{Pkt: p}, 30)
	if len(local.got) != 1 {
		t.Fatal("EjectDirect did not reach the local sink")
	}
}

func TestClaimsAreExclusive(t *testing.T) {
	r, _, _ := testRouter(t, 1)
	if !r.ClaimOutput(1, 20) || r.ClaimOutput(1, 20) {
		t.Fatal("output claim not exclusive")
	}
	if !r.ClaimInput(2, 20) || r.ClaimInput(2, 20) {
		t.Fatal("input claim not exclusive")
	}
	if !r.OutputClaimed(1, 20) {
		t.Fatal("claim not visible")
	}
	if r.OutputClaimed(1, 21) {
		t.Fatal("claim survived into the next cycle")
	}
	if !r.ClaimOutput(1, 21) {
		t.Fatal("expired claim blocks re-claiming")
	}
}

func TestNeighborLookup(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	r := router.New(topo.Node(0), router.DefaultConfig(), &mockSink{}, &mockLocal{}, nil, sim.NewRNG(1))
	nb, port := r.Neighbor(1)
	back := topo.Node(nb)
	if back.Ports[port].Neighbor != 0 {
		t.Fatal("neighbor wiring asymmetric")
	}
}
