package router

import "testing"

// TestBufferBudgetEqualAcrossArchs pins the equal-resource rule the
// router comparison depends on: for every configuration the figures run,
// the three microarchitectures get exactly the same total flit-slot
// budget per port — iq and voq spend it all on input VC depth, oq splits
// it between shallower input VCs and the per-output staging FIFO.
func TestBufferBudgetEqualAcrossArchs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"paper_1vc", Config{VCsPerVNet: 1, BufferDepth: 4, LinkLatency: 1}},
		{"paper_4vc", Config{VCsPerVNet: 4, BufferDepth: 4, LinkLatency: 1}},
		{"deep_buffers", Config{VCsPerVNet: 1, BufferDepth: 8, LinkLatency: 1}},
		{"ablation_depth2", Config{VCsPerVNet: 1, BufferDepth: 2, LinkLatency: 1}},
		{"ablation_depth6", Config{VCsPerVNet: 2, BufferDepth: 6, LinkLatency: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			budget := BufferBudget(tc.cfg)
			if want := tc.cfg.NumVCs() * tc.cfg.BufferDepth; budget != want {
				t.Fatalf("BufferBudget = %d, want %d", budget, want)
			}
			for _, arch := range []string{ArchIQ, ArchOQ, ArchVOQ} {
				lay, err := LayoutFor(arch, tc.cfg)
				if err != nil {
					t.Fatalf("LayoutFor(%s): %v", arch, err)
				}
				if got := lay.TotalPerPort(tc.cfg); got != budget {
					t.Errorf("%s: TotalPerPort = %d (input depth %d, staged %d), want budget %d",
						arch, got, lay.InputDepth, lay.StageSlots, budget)
				}
				if lay.InputDepth < 1 {
					t.Errorf("%s: input depth %d leaves no input buffering", arch, lay.InputDepth)
				}
			}
		})
	}
}

// TestLayoutForRejections pins the error surface: unknown arch names get
// a kernel-style "want ..." error, and oq refuses configurations whose
// split would be degenerate.
func TestLayoutForRejections(t *testing.T) {
	if _, err := LayoutFor("banyan", DefaultConfig()); err == nil {
		t.Error("unknown arch accepted")
	} else if want := `router: unknown arch "banyan" (want "iq", "oq" or "voq")`; err.Error() != want {
		t.Errorf("unknown-arch error = %q, want %q", err, want)
	}
	shallow := DefaultConfig()
	shallow.BufferDepth = 1
	if _, err := LayoutFor(ArchOQ, shallow); err == nil {
		t.Error("oq accepted BufferDepth=1 (cannot split the budget)")
	}
	vct := DefaultConfig()
	vct.VCT = true
	vct.BufferDepth = 8
	if _, err := LayoutFor(ArchOQ, vct); err == nil {
		t.Error("oq accepted virtual cut-through")
	}
	for _, arch := range []string{ArchIQ, ArchVOQ} {
		if _, err := LayoutFor(arch, vct); err != nil {
			t.Errorf("%s rejected VCT: %v", arch, err)
		}
	}
}
