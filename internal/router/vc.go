package router

import (
	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// VCState tracks the wormhole allocation state of an input VC.
type VCState uint8

// VC states.
const (
	// VCIdle: no packet owns the VC.
	VCIdle VCState = iota
	// VCWaiting: a head flit is at the front, its route is computed, and
	// the VC is requesting switch allocation + downstream VC selection.
	VCWaiting
	// VCActive: the packet holds a downstream VC; remaining flits stream
	// through as credits allow.
	VCActive
)

// bufFlit is one buffered flit plus the cycle it becomes pipeline-eligible
// (buffer write takes the arrival cycle; SA may fire the next cycle).
type bufFlit struct {
	flit  message.Flit
	ready sim.Cycle
}

// VC is one virtual channel of an input port: a fixed-depth FIFO plus
// wormhole state.
type VC struct {
	buf   []bufFlit
	head  int
	count int

	State   VCState
	OutPort topology.PortID
	OutVC   int8
	// routed marks that route computation already ran for the packet at
	// the front (RC happens once per packet per router).
	routed bool
	// Hold excludes the VC from normal switch allocation; a scheme plugin
	// owns its draining (UPP holds the tracked upward packet's VC at the
	// interposer router once its popup starts).
	Hold bool
}

func (v *VC) init(depth int) {
	v.buf = make([]bufFlit, depth)
	v.reset()
}

func (v *VC) reset() {
	v.head, v.count = 0, 0
	v.State = VCIdle
	v.OutPort = topology.InvalidPort
	v.OutVC = -1
	v.routed = false
	v.Hold = false
}

// Len returns the number of buffered flits.
func (v *VC) Len() int { return v.count }

// Free returns the remaining buffer capacity.
func (v *VC) Free() int { return len(v.buf) - v.count }

// Empty reports whether the buffer holds no flits.
func (v *VC) Empty() bool { return v.count == 0 }

// Front returns the flit at the head of the FIFO and its readiness, without
// removing it. ok is false when empty.
func (v *VC) Front() (f message.Flit, ready sim.Cycle, ok bool) {
	if v.count == 0 {
		return message.Flit{}, 0, false
	}
	b := v.buf[v.head]
	return b.flit, b.ready, true
}

// FrontReady reports whether a flit is at the front and pipeline-eligible
// at the given cycle.
func (v *VC) FrontReady(cycle sim.Cycle) (message.Flit, bool) {
	f, ready, ok := v.Front()
	if !ok || ready > cycle {
		return message.Flit{}, false
	}
	return f, true
}

// Scan calls fn for each buffered flit in FIFO order. Debug walkers
// (Network.CheckNoReleasedInFlight) use it to audit buffer contents
// without exposing the ring internals.
func (v *VC) Scan(fn func(message.Flit)) {
	for i := 0; i < v.count; i++ {
		fn(v.buf[(v.head+i)%len(v.buf)].flit)
	}
}

// push appends a flit. It panics on overflow — arrivals are credit-
// controlled, so overflow is a flow-control bug worth failing loudly on.
func (v *VC) push(f message.Flit, ready sim.Cycle) {
	if message.PoolDebug && f.Pkt.Released() {
		panic("router: buffering flit of released packet (stale-generation access)")
	}
	if v.count == len(v.buf) {
		panic("router: VC buffer overflow (credit protocol violated)")
	}
	v.buf[(v.head+v.count)%len(v.buf)] = bufFlit{flit: f, ready: ready}
	v.count++
}

// pop removes and returns the front flit.
func (v *VC) pop() message.Flit {
	if v.count == 0 {
		panic("router: pop from empty VC")
	}
	f := v.buf[v.head].flit
	v.buf[v.head] = bufFlit{}
	v.head = (v.head + 1) % len(v.buf)
	v.count--
	return f
}
