package router

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// OQ is the output-queued router variant. Half of every input VC's depth
// (LayoutFor) moves to a per-output staging FIFO that the crossbar fills
// with full speedup: every input VC whose front flit is eligible advances
// in the same cycle, so a flit bound for a free output is never blocked
// behind one bound for a congested output (the switch-level HoL-blocking
// elimination of arXiv 2303.10526's OQ router class). Each output then
// drains its FIFO onto the link at one flit per cycle.
//
// Flow control: a downstream credit is consumed when the flit is staged
// (the staging write is the crossbar traversal), so conservation checks
// count staged flits against the link's credit pool (StagedFor). The
// link-side transmission — PortSent, LinkTravs, UpFlits, the UPP
// up-sent mask — happens at drain, when the flit actually leaves.
//
// Backpressured packets stall in the input VCs with their route computed,
// exactly like the input-queued router, so UPP's stalled-upward-packet
// detection, popup circuit (PopFront/ForceReleaseVC) and remote control's
// boundary absorption operate unchanged. Out-of-band plugin sends
// (SendOnOutput, SendDirect) bypass the staging FIFO by design.
type OQ struct {
	*Router
	stage []stageFIFO
	// staged counts flits across all staging FIFOs; Idle/Buffered fold it
	// in so the kernels keep stepping a router that only has output work.
	staged int
}

// stagedFlit is one output-queued flit plus the downstream VC whose
// credit it already holds.
type stagedFlit struct {
	f     message.Flit
	outVC int8
}

// stageFIFO is a fixed-capacity ring of staged flits, preallocated so the
// steady-state loop stays allocation-free.
type stageFIFO struct {
	buf   []stagedFlit
	head  int
	count int
}

func (s *stageFIFO) push(sf stagedFlit) {
	if s.count == len(s.buf) {
		panic("router: staging FIFO overflow (oq space check bypassed)")
	}
	s.buf[(s.head+s.count)%len(s.buf)] = sf
	s.count++
}

func (s *stageFIFO) pop() stagedFlit {
	sf := s.buf[s.head]
	s.buf[s.head] = stagedFlit{}
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	return sf
}

// NewOQ constructs an output-queued router for node n. cfg is the budget
// configuration; lay (from LayoutFor) gives the reduced input depth and
// the per-output staging capacity carved out of the same budget.
func NewOQ(n *topology.Node, cfg Config, lay BufferLayout, sink EventSink, local LocalSink, route RouteFunc, rng *sim.RNG) *OQ {
	eff := cfg
	eff.BufferDepth = lay.InputDepth
	q := &OQ{
		Router: New(n, eff, sink, local, route, rng),
		stage:  make([]stageFIFO, len(n.Ports)),
	}
	// The local port ejects directly to the NI (no link to drain onto),
	// so only real outputs get staging storage.
	for pi := 1; pi < len(n.Ports); pi++ {
		q.stage[pi].buf = make([]stagedFlit, lay.StageSlots)
	}
	return q
}

// Arch implements Microarch.
func (q *OQ) Arch() string { return ArchOQ }

// Idle implements Microarch: output staging counts as pending work.
func (q *OQ) Idle() bool { return q.buffered == 0 && q.staged == 0 }

// Buffered implements Microarch: flits in input VCs plus staged flits.
func (q *OQ) Buffered() int { return q.buffered + q.staged }

// StagedFor implements Microarch.
func (q *OQ) StagedFor(p topology.PortID, vc int) int {
	s := &q.stage[p]
	cnt := 0
	for i := 0; i < s.count; i++ {
		if int(s.buf[(s.head+i)%len(s.buf)].outVC) == vc {
			cnt++
		}
	}
	return cnt
}

// StagedCount implements Microarch.
func (q *OQ) StagedCount(p topology.PortID) int { return q.stage[p].count }

// PortQuiet implements Microarch: staged flits still need the link, so a
// fenced output is only quiet once its staging FIFO drained too.
func (q *OQ) PortQuiet(p topology.PortID) bool {
	return q.stage[p].count == 0 && q.Router.PortQuiet(p)
}

// ScanStaged implements Microarch.
func (q *OQ) ScanStaged(fn func(message.Flit)) {
	for pi := range q.stage {
		s := &q.stage[pi]
		for i := 0; i < s.count; i++ {
			fn(s.buf[(s.head+i)%len(s.buf)].f)
		}
	}
}

// Step runs one output-queued cycle: drain one staged flit per output
// onto its link, then move every eligible input-VC front through the
// crossbar into its output's FIFO (full speedup; local ejections go
// straight to the NI).
func (q *OQ) Step(cycle sim.Cycle) {
	if q.buffered == 0 && q.staged == 0 {
		return
	}
	nports := len(q.In)
	// Output drain. Plugin claims (UPP popup circuits, signal hops) and
	// down links pause the port; claiming it ourselves keeps the link at
	// one flit per cycle against same-cycle out-of-band senders.
	if q.staged > 0 {
		for oi := 1; oi < nports; oi++ {
			st := &q.stage[oi]
			if st.count == 0 || q.outClaimedAt[oi] > cycle || q.downOut&(1<<uint(oi)) != 0 {
				continue
			}
			q.outClaimedAt[oi] = cycle + 1
			sf := st.pop()
			q.staged--
			q.Stats.BufferReads++
			q.Stats.LinkTravs++
			q.PortSent[oi]++
			if q.Node.Ports[oi].Dir == topology.Up {
				q.Stats.UpFlits++
				q.MarkUpSent(sf.f.Pkt.VNet, cycle)
			}
			nb, nbPort := q.Neighbor(topology.PortID(oi))
			q.sink.DeliverFlit(nb, nbPort, sf.outVC, sf.f, cycle+1+sim.Cycle(q.Cfg.LinkLatency))
		}
	}
	if q.buffered == 0 {
		return
	}
	// Input stage: full crossbar speedup — every eligible VC front moves.
	for pi := 0; pi < nports; pi++ {
		if q.inClaimedAt[pi] > cycle || q.In[pi].buffered == 0 {
			continue
		}
		vcs := q.In[pi].VCs
		for vi := range vcs {
			vc := &vcs[vi]
			if vc.Hold {
				// A scheme plugin owns this VC's draining.
				continue
			}
			f, ok := vc.FrontReady(cycle)
			if !ok {
				continue
			}
			if f.Pkt.Popup && int16(q.Node.Chiplet) == f.Pkt.DstChiplet {
				// Popup flits drain through the circuit inside the
				// destination chiplet (Sec. V-C).
				continue
			}
			if f.IsHead() && !vc.routed {
				op, err := q.route(q.ID, topology.PortID(pi), f.Pkt)
				if err != nil {
					panic(fmt.Sprintf("router %d (x=%d y=%d chiplet %d) cycle %d: route computation failed for pkt %d (%s %d->%d) at input port %d: %v",
						q.ID, q.Node.X, q.Node.Y, q.Node.Chiplet, cycle, f.Pkt.ID, f.Pkt.VNet, f.Pkt.Src, f.Pkt.Dst, pi, err))
				}
				vc.OutPort = op
				vc.State = VCWaiting
				vc.routed = true
			}
			if vc.OutPort == topology.InvalidPort {
				continue
			}
			q.Stats.SARequests++
			if vc.OutPort == topology.LocalPort {
				if vc.State == VCWaiting {
					if !q.local.CanAcceptHead(f.Pkt, cycle) {
						continue
					}
					vc.State = VCActive
				}
				q.Stats.SAGrants++
				q.ejectFront(topology.PortID(pi), vi, cycle)
				continue
			}
			st := &q.stage[vc.OutPort]
			if st.count == len(st.buf) {
				continue
			}
			if vc.State == VCWaiting && q.fencedOut&(1<<uint(vc.OutPort)) != 0 {
				// The port is draining toward a permanent cut: no new
				// wormhole may start crossing (UnrouteFencedHeads migrates
				// the head onto the new routing).
				continue
			}
			if vc.State == VCWaiting {
				// Deterministic VC selection: the first free downstream
				// VC of the packet's VNet with a credit.
				dv := q.firstFreeOutVC(vc.OutPort, f.Pkt.VNet)
				if dv < 0 {
					continue
				}
				vc.OutVC = int8(dv)
				q.Out[vc.OutPort].Busy[dv] = true
				vc.State = VCActive
			} else if q.Out[vc.OutPort].Credits[vc.OutVC] <= 0 {
				continue
			}
			q.Stats.SAGrants++
			q.stageFront(topology.PortID(pi), vi, cycle)
		}
	}
}

// firstFreeOutVC returns the first unallocated downstream VC of vnet on
// output out that holds a credit, or -1.
func (q *OQ) firstFreeOutVC(out topology.PortID, vnet message.VNet) int {
	o := &q.Out[out]
	for k := 0; k < q.Cfg.VCsPerVNet; k++ {
		dv := q.Cfg.VCIndex(vnet, k)
		if !o.Busy[dv] && o.Credits[dv] > 0 {
			return dv
		}
	}
	return -1
}

// ejectFront pops the front flit of (pi, vi) and hands it to the NI —
// the local port has no staging FIFO.
func (q *OQ) ejectFront(pi topology.PortID, vi int, cycle sim.Cycle) {
	vc := &q.In[pi].VCs[vi]
	f := vc.pop()
	q.In[pi].buffered--
	q.buffered--
	q.Stats.BufferReads++
	q.Stats.CrossbarTravs++
	tail := f.IsTail()
	if tail {
		vc.reset()
	}
	q.creditUpstream(pi, int8(vi), 1, tail, cycle)
	q.PortSent[topology.LocalPort]++
	q.local.AcceptFlit(f, cycle+1)
}

// stageFront pops the front flit of (pi, vi), consumes its downstream
// credit and writes it into the output's staging FIFO.
func (q *OQ) stageFront(pi topology.PortID, vi int, cycle sim.Cycle) {
	vc := &q.In[pi].VCs[vi]
	f := vc.pop()
	q.In[pi].buffered--
	q.buffered--
	q.Stats.BufferReads++
	q.Stats.CrossbarTravs++
	out, outVC := vc.OutPort, vc.OutVC
	tail := f.IsTail()
	if tail {
		vc.reset()
	}
	q.creditUpstream(pi, int8(vi), 1, tail, cycle)
	o := &q.Out[out]
	o.Credits[outVC]--
	if o.Credits[outVC] < 0 {
		panic("router: staged flit without credit")
	}
	q.stage[out].push(stagedFlit{f: f, outVC: outVC})
	q.staged++
	q.Stats.BufferWrites++
}
