package router

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// EventSink is how a router hands flits and credits to the network fabric
// for time-delayed delivery. The network implements it.
type EventSink interface {
	// DeliverFlit schedules f's buffer write into VC vc of input port port
	// of router to at the given cycle.
	DeliverFlit(to topology.NodeID, port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle)
	// DeliverCredit schedules a credit arrival at router to's output port
	// port for downstream VC vc: delta buffer slots (0 or 1) and, when
	// free is set, the downstream VC has fully drained and may be
	// reallocated. Credits addressed to the local port reach the NI.
	DeliverCredit(to topology.NodeID, port topology.PortID, vc int8, delta int, free bool, cycle sim.Cycle)
}

// LocalSink is the NI side of a router's local port.
type LocalSink interface {
	// CanAcceptHead reports whether a new packet may start ejecting: a
	// free, unreserved ejection-queue entry exists for its VNet.
	CanAcceptHead(p *message.Packet, cycle sim.Cycle) bool
	// AcceptFlit delivers an ejecting flit; arrival is when the NI sees
	// it.
	AcceptFlit(f message.Flit, arrival sim.Cycle)
}

// RouteFunc computes the output port for a packet whose head flit is at
// router cur, having arrived through input port inPort (route computation
// stage). Table-routed schemes (composable routing) are channel-indexed
// and need the input port; algorithmic routing ignores it.
type RouteFunc func(cur topology.NodeID, inPort topology.PortID, p *message.Packet) (topology.PortID, error)

// Stats counts datapath events for the throughput and energy models.
type Stats struct {
	BufferWrites  uint64
	BufferReads   uint64
	CrossbarTravs uint64
	LinkTravs     uint64
	SARequests    uint64
	SAGrants      uint64
	// UpFlits counts flits sent through Up output ports (vertical
	// utilization; UPP detection resets hang off it).
	UpFlits uint64
}

// InPort is one input port: a set of virtual channels.
type InPort struct {
	VCs []VC
	// buffered counts flits across the port's VCs so allocation can skip
	// empty ports.
	buffered int
}

// OutPort tracks the credit and allocation state of the downstream input
// port this output feeds.
type OutPort struct {
	// Credits per downstream VC.
	Credits []int16
	// Busy marks downstream VCs currently allocated to a packet.
	Busy []bool
	rr   int // round-robin pointer over input ports for switch allocation
}

// Router is one router instance.
type Router struct {
	ID   topology.NodeID
	Node *topology.Node
	Cfg  Config

	In  []InPort
	Out []OutPort

	sink  EventSink
	local LocalSink
	route RouteFunc
	rng   *sim.RNG

	// Per-cycle crossbar claims are epoch-stamped (cycle+1 = "claimed
	// through that cycle") rather than cleared by a start-of-cycle reset,
	// so a router the active-set kernel skips for thousands of idle cycles
	// needs no per-cycle bookkeeping to keep its claim state consistent.
	outClaimedAt []sim.Cycle
	inClaimedAt  []sim.Cycle
	inRR         []int // per input port: round-robin pointer over VCs

	// PortSent counts flits sent through each output port (link
	// utilization and load-balance analysis).
	PortSent []uint64

	// upSent records which VNets sent a flit through an Up output port
	// during cycle upSentAt-1 (UPP's timeout counters reset on it); the
	// epoch stamp expires it without a per-cycle reset.
	upSent   uint8
	upSentAt sim.Cycle

	// buffered counts flits currently held in this router's VCs; idle
	// routers are skipped by the simulation loop.
	buffered int

	// downOut is a bitmask of output ports whose link is transiently down
	// (runtime fault injection). Switch allocation skips them; the mask is
	// zero in fault-free runs, so the hot-path check never fires.
	downOut uint32

	// fencedOut is a bitmask of output ports being drained ahead of a
	// permanent link removal (dynamic reconfiguration). Unlike downOut it
	// blocks only new wormholes: Waiting heads are never granted a fenced
	// port (and are migrated onto the new routing by UnrouteFencedHeads),
	// while Active packets finish crossing so the cut never splits a worm.
	fencedOut uint32

	Stats Stats
}

// New constructs a router for node n.
func New(n *topology.Node, cfg Config, sink EventSink, local LocalSink, route RouteFunc, rng *sim.RNG) *Router {
	r := &Router{
		ID:   n.ID,
		Node: n,
		Cfg:  cfg,
		In:   make([]InPort, len(n.Ports)),
		Out:  make([]OutPort, len(n.Ports)),

		sink:  sink,
		local: local,
		route: route,
		rng:   rng,

		outClaimedAt: make([]sim.Cycle, len(n.Ports)),
		inClaimedAt:  make([]sim.Cycle, len(n.Ports)),
		inRR:         make([]int, len(n.Ports)),
		PortSent:     make([]uint64, len(n.Ports)),
	}
	nvc := cfg.NumVCs()
	for pi := range r.In {
		r.In[pi].VCs = make([]VC, nvc)
		for vi := range r.In[pi].VCs {
			r.In[pi].VCs[vi].init(cfg.BufferDepth)
		}
		out := &r.Out[pi]
		out.Credits = make([]int16, nvc)
		out.Busy = make([]bool, nvc)
		for vi := range out.Credits {
			out.Credits[vi] = int16(cfg.BufferDepth)
		}
	}
	return r
}

// SetLocal attaches the NI-facing sink. The router and its NI reference
// each other, so the sink is wired after construction.
func (r *Router) SetLocal(l LocalSink) { r.local = l }

// SetSink replaces the event sink. The parallel cycle kernel installs a
// per-shard recording sink here so that Step's cross-component effects
// (scheduled flits and credits) can be buffered during the concurrent
// compute phase and replayed in NodeID order by the commit phase.
func (r *Router) SetSink(s EventSink) { r.sink = s }

// Buffered returns the number of flits currently buffered in the router.
func (r *Router) Buffered() int { return r.buffered }

// VCAt returns the VC for inspection by plugins and tests.
func (r *Router) VCAt(port topology.PortID, vc int) *VC { return &r.In[port].VCs[vc] }

// ReceiveFlit performs the buffer write of a flit arriving on (port, vc).
// The flit becomes pipeline-eligible the following cycle.
func (r *Router) ReceiveFlit(port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle) {
	r.In[port].VCs[vc].push(f, cycle+1)
	r.In[port].buffered++
	r.buffered++
	r.Stats.BufferWrites++
}

// ReceiveCredit applies a credit arriving at output port port.
func (r *Router) ReceiveCredit(port topology.PortID, vc int8, delta int, free bool) {
	out := &r.Out[port]
	out.Credits[vc] += int16(delta)
	if out.Credits[vc] > int16(r.Cfg.BufferDepth) {
		panic("router: credit overflow (flow control bug)")
	}
	if free {
		out.Busy[vc] = false
	}
}

// Idle reports whether the router has no buffered flits — nothing for
// Step to do. The active-set kernel retires idle routers from its
// per-cycle walk until a flit arrival wakes them again.
func (r *Router) Idle() bool { return r.buffered == 0 }

// UpSentMask returns the bitmask of VNets that sent a flit through an Up
// output during the given cycle; the mask expires with the cycle.
func (r *Router) UpSentMask(cycle sim.Cycle) uint8 {
	if r.upSentAt != cycle+1 {
		return 0
	}
	return r.upSent
}

// MarkUpSent records an out-of-band up-port transmission (popup flits)
// during the given cycle.
func (r *Router) MarkUpSent(v message.VNet, cycle sim.Cycle) {
	if r.upSentAt != cycle+1 {
		r.upSent = 0
		r.upSentAt = cycle + 1
	}
	r.upSent |= 1 << uint(v)
}

// ClaimOutput reserves output port p for an out-of-band transfer (popup
// flit or protocol signal) during the given cycle. It reports whether the
// claim succeeded; claims expire with the cycle.
func (r *Router) ClaimOutput(p topology.PortID, cycle sim.Cycle) bool {
	if r.outClaimedAt[p] > cycle {
		return false
	}
	r.outClaimedAt[p] = cycle + 1
	return true
}

// ClaimInput reserves input port p's crossbar slot for the given cycle.
func (r *Router) ClaimInput(p topology.PortID, cycle sim.Cycle) bool {
	if r.inClaimedAt[p] > cycle {
		return false
	}
	r.inClaimedAt[p] = cycle + 1
	return true
}

// OutputClaimed reports whether output p is claimed during the given cycle.
func (r *Router) OutputClaimed(p topology.PortID, cycle sim.Cycle) bool {
	return r.outClaimedAt[p] > cycle
}

// SetPortDown marks output port p as crossing a transiently-down link
// (runtime fault injection). While set, switch allocation never grants
// the port; plugin senders (UPP signals and popup flits) must check
// PortDown before SendDirect. The network toggles it from a fault plan's
// link-flap schedule on both endpoints of the link.
func (r *Router) SetPortDown(p topology.PortID, down bool) {
	if down {
		r.downOut |= 1 << uint(p)
	} else {
		r.downOut &^= 1 << uint(p)
	}
}

// PortDown reports whether output port p crosses a transiently-down link.
func (r *Router) PortDown(p topology.PortID) bool {
	return r.downOut&(1<<uint(p)) != 0
}

// SetPortFenced marks output port p as draining toward a permanent link
// removal. While fenced, switch allocation grants the port to Active
// packets only — no new wormhole may start crossing. The reconfiguration
// engine fences both endpoints of a dying link, migrates the Waiting
// heads, waits for the Active worms to finish, then cuts the link.
func (r *Router) SetPortFenced(p topology.PortID, fenced bool) {
	if fenced {
		r.fencedOut |= 1 << uint(p)
	} else {
		r.fencedOut &^= 1 << uint(p)
	}
}

// PortFenced reports whether output port p is fenced for draining.
func (r *Router) PortFenced(p topology.PortID) bool {
	return r.fencedOut&(1<<uint(p)) != 0
}

// UnrouteFencedHeads clears the route of every Waiting head whose computed
// output port is fenced, returning it to the route-computation stage: the
// next Step re-routes the packet, and the network's route function
// migrates it onto the current routing epoch (away from the dying link).
// Active packets (downstream VC already allocated) are left alone — they
// must finish crossing. Held VCs belong to a scheme plugin and are
// skipped. Returns the number of heads unrouted.
func (r *Router) UnrouteFencedHeads() int {
	if r.fencedOut == 0 {
		return 0
	}
	n := 0
	for pi := range r.In {
		for vi := range r.In[pi].VCs {
			vc := &r.In[pi].VCs[vi]
			if vc.Hold || vc.State != VCWaiting || vc.OutPort == topology.InvalidPort {
				continue
			}
			if r.fencedOut&(1<<uint(vc.OutPort)) == 0 {
				continue
			}
			vc.State = VCIdle
			vc.OutPort = topology.InvalidPort
			vc.routed = false
			n++
		}
	}
	return n
}

// PortQuiet reports whether output port p has no allocation in flight:
// no input VC is Waiting on or Actively streaming through it, and (in
// staged microarchitectures) nothing staged for it. The reconfiguration
// engine polls it on a fenced port to learn when the link may be cut
// without splitting a wormhole.
func (r *Router) PortQuiet(p topology.PortID) bool {
	for pi := range r.In {
		for vi := range r.In[pi].VCs {
			vc := &r.In[pi].VCs[vi]
			if vc.State != VCIdle && vc.OutPort == p {
				return false
			}
		}
	}
	return true
}

// Neighbor returns the (node, port) on the far side of output port p.
func (r *Router) Neighbor(p topology.PortID) (topology.NodeID, topology.PortID) {
	pt := &r.Node.Ports[p]
	return pt.Neighbor, pt.NeighborPort
}

// Step runs one cycle of the router pipeline: route computation for fresh
// head flits, separable (input-first then output) round-robin switch
// allocation with VC selection, and switch traversal for the winners.
//
// Concurrency contract (the parallel cycle kernel depends on it): Step
// mutates only this router's own state (VCs, claims, credits, stats, its
// split RNG) and emits every cross-component effect through r.sink
// (DeliverFlit/DeliverCredit) or r.local (AcceptFlit). Its only reads of
// other components are the attached NI's ejection occupancy
// (CanAcceptHead) and immutable topology/route tables — it never reads
// another router. Any new datapath feature that needs cross-router state
// during Step must instead be staged through the sinks or moved into the
// scheme's StartOfCycle/EndOfCycle hooks, which run on the coordinator.
func (r *Router) Step(cycle sim.Cycle) {
	if r.buffered == 0 {
		return
	}
	nports := len(r.In)

	// Input arbitration: each unclaimed input port nominates one VC.
	type nominee struct {
		port topology.PortID
		vc   int
	}
	var nominees [16]nominee // radix is small; avoid allocation
	nn := 0
	for pi := 0; pi < nports; pi++ {
		if r.inClaimedAt[pi] > cycle || r.In[pi].buffered == 0 {
			continue
		}
		if vi := r.pickInputVC(topology.PortID(pi), cycle); vi >= 0 {
			nominees[nn] = nominee{topology.PortID(pi), vi}
			nn++
			r.Stats.SARequests++
		}
	}
	if nn == 0 {
		return
	}
	// Output arbitration: for each output port, grant one nominee.
	for oi := 0; oi < nports; oi++ {
		if r.outClaimedAt[oi] > cycle {
			continue
		}
		out := &r.Out[oi]
		granted := -1
		// Round-robin over input ports starting after the last grant.
		for k := 1; k <= nports; k++ {
			pi := (out.rr + k) % nports
			for ni := 0; ni < nn; ni++ {
				if int(nominees[ni].port) == pi &&
					r.In[pi].VCs[nominees[ni].vc].OutPort == topology.PortID(oi) {
					granted = ni
					break
				}
			}
			if granted >= 0 {
				out.rr = pi
				break
			}
		}
		if granted < 0 {
			continue
		}
		nom := nominees[granted]
		r.grant(nom.port, nom.vc, cycle)
		// The winning input port leaves the race for other outputs.
		nominees[granted] = nominees[nn-1]
		nn--
		if nn == 0 {
			break
		}
	}
}

// pickInputVC selects, round-robin, one VC of input port pi that can use
// the crossbar this cycle; it also runs route computation for fresh heads.
// Returns -1 when no VC is eligible.
func (r *Router) pickInputVC(pi topology.PortID, cycle sim.Cycle) int {
	vcs := r.In[pi].VCs
	n := len(vcs)
	start := r.inRR[pi]
	chosen := -1
	for k := 1; k <= n; k++ {
		vi := (start + k) % n
		vc := &vcs[vi]
		if vc.Hold {
			// A scheme plugin owns this VC's draining.
			continue
		}
		f, ok := vc.FrontReady(cycle)
		if !ok {
			continue
		}
		if f.Pkt.Popup && int16(r.Node.Chiplet) == f.Pkt.DstChiplet {
			// Inside the destination chiplet, popup flits bypass switch
			// allocation and drain through the circuit (Sec. V-C).
			// Upstream — the interposer mesh and the source chiplet — the
			// packet's trailing flits still flow normally toward the
			// origin interposer router.
			continue
		}
		// Route computation once per packet per router.
		if f.IsHead() && !vc.routed {
			op, err := r.route(r.ID, pi, f.Pkt)
			if err != nil {
				panic(fmt.Sprintf("router %d (x=%d y=%d chiplet %d) cycle %d: route computation failed for pkt %d (%s %d->%d) at input port %d: %v",
					r.ID, r.Node.X, r.Node.Y, r.Node.Chiplet, cycle, f.Pkt.ID, f.Pkt.VNet, f.Pkt.Src, f.Pkt.Dst, pi, err))
			}
			vc.OutPort = op
			vc.State = VCWaiting
			vc.routed = true
		}
		if vc.OutPort == topology.InvalidPort || r.outClaimedAt[vc.OutPort] > cycle ||
			r.downOut&(1<<uint(vc.OutPort)) != 0 {
			continue
		}
		switch vc.State {
		case VCWaiting:
			if r.fencedOut&(1<<uint(vc.OutPort)) != 0 {
				// The port is draining toward a permanent cut: no new
				// wormhole may start crossing (the head is migrated onto
				// the new routing by UnrouteFencedHeads).
				continue
			}
			if !r.headCanAdvance(vc, f, cycle) {
				continue
			}
		case VCActive:
			if vc.OutPort != topology.LocalPort && r.Out[vc.OutPort].Credits[vc.OutVC] <= 0 {
				continue
			}
		default:
			continue
		}
		chosen = vi
		r.inRR[pi] = vi
		break
	}
	return chosen
}

// headCanAdvance reports whether a Waiting head flit could be granted:
// the local sink accepts it, or a free downstream VC with credit exists.
func (r *Router) headCanAdvance(vc *VC, f message.Flit, cycle sim.Cycle) bool {
	if vc.OutPort == topology.LocalPort {
		return r.local.CanAcceptHead(f.Pkt, cycle)
	}
	out := &r.Out[vc.OutPort]
	vnet := f.Pkt.VNet
	need := int16(1)
	if r.Cfg.VCT {
		// Virtual cut-through: the downstream buffer must hold the whole
		// packet before the head moves.
		need = int16(f.Pkt.Size)
	}
	for k := 0; k < r.Cfg.VCsPerVNet; k++ {
		dv := r.Cfg.VCIndex(vnet, k)
		if !out.Busy[dv] && out.Credits[dv] >= need {
			return true
		}
	}
	return false
}

// grant performs VC selection (heads) and switch traversal for the winner.
func (r *Router) grant(pi topology.PortID, vi int, cycle sim.Cycle) {
	vc := &r.In[pi].VCs[vi]
	f, _, _ := vc.Front()
	if vc.State == VCWaiting {
		if vc.OutPort != topology.LocalPort {
			// VC selection: pick a random free downstream VC of the
			// packet's VNet (the paper's randomized VCS stage).
			out := &r.Out[vc.OutPort]
			vnet := f.Pkt.VNet
			need := int16(1)
			if r.Cfg.VCT {
				need = int16(f.Pkt.Size)
			}
			// Fixed-size candidate array (VCsPerVNet is bounded by
			// Config.Validate): a make() here would allocate on every
			// head grant.
			var free [maxVCsPerVNet]int8
			nf := 0
			for k := 0; k < r.Cfg.VCsPerVNet; k++ {
				dv := int8(r.Cfg.VCIndex(vnet, k))
				if !out.Busy[dv] && out.Credits[dv] >= need {
					free[nf] = dv
					nf++
				}
			}
			vc.OutVC = free[r.rng.Intn(nf)]
			out.Busy[vc.OutVC] = true
		}
		vc.State = VCActive
	}
	r.Stats.SAGrants++
	r.sendFront(pi, vi, cycle)
}

// sendFront dequeues the front flit of (pi, vi) and sends it through the
// crossbar to the VC's allocated output. Credits flow upstream; tail flits
// release the VC.
func (r *Router) sendFront(pi topology.PortID, vi int, cycle sim.Cycle) {
	vc := &r.In[pi].VCs[vi]
	f := vc.pop()
	r.In[pi].buffered--
	r.buffered--
	r.Stats.BufferReads++
	r.Stats.CrossbarTravs++
	out := vc.OutPort
	outVC := vc.OutVC
	tail := f.IsTail()
	if tail {
		// All flits of the packet passed through; the VC is reusable. The
		// downstream allocation is freed by the downstream router's own
		// tail departure (free credit), not here.
		vc.reset()
	}
	r.creditUpstream(pi, int8(vi), 1, tail, cycle)
	r.PortSent[out]++
	if out == topology.LocalPort {
		r.local.AcceptFlit(f, cycle+1)
		return
	}
	r.Stats.LinkTravs++
	if r.Node.Ports[out].Dir == topology.Up {
		r.Stats.UpFlits++
		r.MarkUpSent(f.Pkt.VNet, cycle)
	}
	o := &r.Out[out]
	o.Credits[outVC]--
	if o.Credits[outVC] < 0 {
		panic("router: sent flit without credit")
	}
	nb, nbPort := r.Neighbor(out)
	r.sink.DeliverFlit(nb, nbPort, outVC, f, cycle+1+sim.Cycle(r.Cfg.LinkLatency))
}

// creditUpstream returns a buffer slot (and optionally the whole VC) to
// whoever feeds input port pi — the upstream router, or the NI for the
// local port.
func (r *Router) creditUpstream(pi topology.PortID, vc int8, delta int, free bool, cycle sim.Cycle) {
	pt := &r.Node.Ports[pi]
	if pi == topology.LocalPort {
		r.sink.DeliverCredit(r.ID, topology.LocalPort, vc, delta, free, cycle+1)
		return
	}
	r.sink.DeliverCredit(pt.Neighbor, pt.NeighborPort, vc, delta, free, cycle+1)
}

// --- Plugin API ------------------------------------------------------------

// PopFront forcibly dequeues the front flit of (port, vc) on behalf of a
// scheme plugin (popup circuit drain, boundary-buffer absorption). Credit
// bookkeeping toward upstream is identical to a normal send; if the flit
// is the tail the VC resets.
func (r *Router) PopFront(port topology.PortID, vcIdx int, cycle sim.Cycle) message.Flit {
	vc := &r.In[port].VCs[vcIdx]
	f := vc.pop()
	r.In[port].buffered--
	r.buffered--
	r.Stats.BufferReads++
	tail := f.IsTail()
	if tail {
		vc.reset()
	}
	r.creditUpstream(port, int8(vcIdx), 1, tail, cycle)
	return f
}

// ForceReleaseVC resets an empty VC whose packet was diverted away from it
// (popup drain of a partly-transmitted packet: the remaining flits bypass
// this VC, so its tail will never arrive to free the upstream allocation).
// Upstream learns the VC is free through a zero-delta free credit. The VC
// may still be in the Idle state — a drained head that never reached route
// computation leaves it Idle while the upstream allocation stands — so the
// free credit is sent unconditionally; the caller asserts the upstream
// allocation exists.
func (r *Router) ForceReleaseVC(port topology.PortID, vcIdx int, cycle sim.Cycle) {
	vc := &r.In[port].VCs[vcIdx]
	if !vc.Empty() {
		panic("router: ForceReleaseVC on non-empty VC")
	}
	vc.reset()
	r.creditUpstream(port, int8(vcIdx), 0, true, cycle)
}

// AllocateOutputVC grabs a free downstream VC (with full credit) of vnet on
// output out for an out-of-band sender (e.g. remote control's boundary
// buffer). Returns -1 if none is free.
func (r *Router) AllocateOutputVC(out topology.PortID, vnet message.VNet) int8 {
	o := &r.Out[out]
	for k := 0; k < r.Cfg.VCsPerVNet; k++ {
		dv := int8(r.Cfg.VCIndex(vnet, k))
		if !o.Busy[dv] && o.Credits[dv] > 0 {
			o.Busy[dv] = true
			return dv
		}
	}
	return -1
}

// CreditsAvailable reports whether output out has a credit for downstream
// VC outVC.
func (r *Router) CreditsAvailable(out topology.PortID, outVC int8) bool {
	return r.Out[out].Credits[outVC] > 0
}

// SendOnOutput sends f through output out into downstream VC outVC,
// consuming one credit. The caller must have claimed the output and hold
// the allocation from AllocateOutputVC.
func (r *Router) SendOnOutput(out topology.PortID, outVC int8, f message.Flit, cycle sim.Cycle) {
	o := &r.Out[out]
	o.Credits[outVC]--
	if o.Credits[outVC] < 0 {
		panic("router: SendOnOutput without credit")
	}
	r.Stats.CrossbarTravs++
	r.Stats.LinkTravs++
	r.PortSent[out]++
	if r.Node.Ports[out].Dir == topology.Up {
		r.Stats.UpFlits++
		r.MarkUpSent(f.Pkt.VNet, cycle)
	}
	nb, nbPort := r.Neighbor(out)
	r.sink.DeliverFlit(nb, nbPort, outVC, f, cycle+1+sim.Cycle(r.Cfg.LinkLatency))
}

// SendDirect sends f through output out bypassing buffers, credits and
// allocation — circuit-switched switch traversal for popup flits and
// protocol signals. The caller must have claimed the output and is
// responsible for delivering the flit on the far side (plugins keep their
// own latches).
func (r *Router) SendDirect(out topology.PortID) {
	r.Stats.CrossbarTravs++
	if out != topology.LocalPort {
		r.Stats.LinkTravs++
		if r.Node.Ports[out].Dir == topology.Up {
			r.Stats.UpFlits++
		}
	}
}

// EjectDirect hands a flit straight to the NI (popup ejection into a
// reserved entry). The caller must have claimed the local output.
func (r *Router) EjectDirect(f message.Flit, cycle sim.Cycle) {
	r.Stats.CrossbarTravs++
	r.local.AcceptFlit(f, cycle+1)
}
