package reconfig_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/reconfig"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// pickKillable returns n interposer mesh link IDs that can all be
// persistently killed (cumulatively) without partitioning any layer. It
// works on a scratch topology so the caller's is untouched.
func pickKillable(t *testing.T, n int) []int {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	var ids []int
	for _, l := range topo.Links {
		if len(ids) == n {
			break
		}
		if l.Vertical || l.Faulty || topo.Node(l.A).Chiplet != topology.InterposerChiplet {
			continue
		}
		l.Faulty = true
		if _, err := routing.NewUpDown(topo); err == nil {
			ids = append(ids, l.ID)
		} else {
			l.Faulty = false
		}
	}
	if len(ids) < n {
		t.Fatalf("found only %d killable interposer links, want %d", len(ids), n)
	}
	return ids
}

// reconfigRun is one soak: load under a persistent fault plan, then
// drain. When snapshotAt > 0 a checkpoint (network + engine + generator)
// is captured at that cycle boundary.
type reconfigRun struct {
	stats       network.Stats
	finalCycle  sim.Cycle
	transitions []reconfig.Transition
	cuts        []reconfig.CutInfo
	checkpoint  []byte
}

func buildReconfigNet(t *testing.T, kernel string, plan faults.Plan, mode reconfig.Mode, seed uint64) (*network.Network, *reconfig.Engine, *traffic.Generator) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	cfg.UseUpDown = true
	cfg.Seed = seed
	n, err := network.New(topo, cfg, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := reconfig.Attach(n, reconfig.Config{Plan: plan, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, seed+7777)
	g.CoreAlive = func(id topology.NodeID) bool {
		return eng.ChipletAlive(n.Topo.Node(id).Chiplet)
	}
	return n, eng, g
}

func runReconfigSoak(t *testing.T, kernel string, plan faults.Plan, mode reconfig.Mode, loadCycles int, snapshotAt sim.Cycle) reconfigRun {
	t.Helper()
	n, eng, g := buildReconfigNet(t, kernel, plan, mode, 5)
	out := reconfigRun{}
	for i := 0; i < loadCycles; i++ {
		g.Tick(n.Cycle())
		n.Step()
		if snapshotAt > 0 && n.Cycle() == snapshotAt {
			var buf bytes.Buffer
			if err := n.WriteSnapshot(&buf, g, eng); err != nil {
				t.Fatalf("WriteSnapshot at %d: %v", snapshotAt, err)
			}
			out.checkpoint = buf.Bytes()
		}
	}
	g.SetRate(0)
	if err := n.Drain(40000, 4000); err != nil {
		t.Fatalf("%s: drain: %v", kernel, err)
	}
	if !n.Quiesced() {
		t.Fatalf("%s: drain returned with %d packets in flight", kernel, n.InFlight())
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatalf("%s: quiescent audit: %v", kernel, err)
	}
	if !eng.Done() {
		t.Fatalf("%s: engine not done after drain (cursor mid-plan or transition stuck)", kernel)
	}
	// Zero post-cut dead-link traffic: the endpoints' sent counters must
	// not have moved since the cut was applied. Links revived by a later
	// hot-add legitimately carry traffic again and are skipped.
	for _, c := range eng.Cuts() {
		l := n.Topo.Links[c.Link]
		if !l.Faulty {
			continue
		}
		sa := n.Routers[l.A].PortSentOn(l.APort)
		sb := n.Routers[l.B].PortSentOn(l.BPort)
		if sa != c.SentA || sb != c.SentB {
			t.Fatalf("%s: link %d carried traffic after its cut at cycle %d: sent A %d->%d, B %d->%d",
				kernel, c.Link, c.Cycle, c.SentA, sa, c.SentB, sb)
		}
	}
	out.stats = n.Stats
	out.finalCycle = n.Cycle()
	out.transitions = append(out.transitions, eng.Transitions()...)
	out.cuts = append(out.cuts, eng.Cuts()...)
	return out
}

// TestReconfigKillSoak is the acceptance soak: two interposer mesh links
// die persistently under uniform-random load; the run must reconfigure,
// migrate in-flight traffic, finish the transition, quiesce, and be
// bit-identical across all three cycle kernels.
func TestReconfigKillSoak(t *testing.T) {
	links := pickKillable(t, 2)
	plan := faults.Plan{
		Kills: []faults.LinkKill{
			{Link: links[0], Cycle: 400},
			{Link: links[1], Cycle: 400},
		},
	}
	var base reconfigRun
	for i, kernel := range []string{network.KernelNaive, network.KernelActive, network.KernelParallel} {
		out := runReconfigSoak(t, kernel, plan, reconfig.ModeAuto, 1500, 0)
		if out.stats.Reconfigs != 1 {
			t.Fatalf("%s: Reconfigs = %d, want 1 (one batch)", kernel, out.stats.Reconfigs)
		}
		if out.stats.LinksKilled != 2 || len(out.cuts) != 2 {
			t.Fatalf("%s: LinksKilled=%d cuts=%d, want 2/2", kernel, out.stats.LinksKilled, len(out.cuts))
		}
		if len(out.transitions) != 1 || out.transitions[0].Finish < 0 {
			t.Fatalf("%s: transition did not finish: %+v", kernel, out.transitions)
		}
		if i == 0 {
			base = out
			continue
		}
		if out.stats != base.stats {
			t.Fatalf("%s diverged from %s:\n%+v\nvs\n%+v", kernel, network.KernelNaive, out.stats, base.stats)
		}
		if out.finalCycle != base.finalCycle {
			t.Fatalf("%s final cycle %d != %d", kernel, out.finalCycle, base.finalCycle)
		}
	}
	// Routes actually changed: rebuild the post-kill tables and require
	// (a) at least one interposer pair's path to differ from the
	// pre-kill tables' and (b) no new path to cross a killed link.
	topo := topology.MustBuild(topology.BaselineConfig())
	before, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range links {
		topo.Links[id].Faulty = true
	}
	after, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	nodes := topo.LayerNodes(topology.InterposerChiplet)
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			pb, err := reconfig.WalkRoute(topo, before, topology.InterposerChiplet, src, dst)
			if err != nil {
				// The old tables may legitimately fail across dead links.
				diverged++
				continue
			}
			pa, err := reconfig.WalkRoute(topo, after, topology.InterposerChiplet, src, dst)
			if err != nil {
				t.Fatalf("new tables cannot route %d -> %d: %v", src, dst, err)
			}
			for i := 0; i+1 < len(pa); i++ {
				for _, id := range links {
					l := topo.Links[id]
					if (pa[i] == l.A && pa[i+1] == l.B) || (pa[i] == l.B && pa[i+1] == l.A) {
						t.Fatalf("new route %v crosses killed link %d", pa, id)
					}
				}
			}
			if len(pa) != len(pb) {
				diverged++
				continue
			}
			for i := range pa {
				if pa[i] != pb[i] {
					diverged++
					break
				}
			}
		}
	}
	if diverged == 0 {
		t.Fatal("no interposer route changed across the reconfiguration")
	}
}

// TestReconfigModeForcing pins the Mode overrides: the same plan runs as
// an epoch transition under ModeEpoch (injection held, heads migrated
// accounting possible) and drainlessly under ModeDrainless.
func TestReconfigModeForcing(t *testing.T) {
	links := pickKillable(t, 2)
	plan := faults.Plan{
		Kills: []faults.LinkKill{
			{Link: links[0], Cycle: 300},
			{Link: links[1], Cycle: 300},
		},
	}
	epoch := runReconfigSoak(t, network.KernelActive, plan, reconfig.ModeEpoch, 1200, 0)
	if epoch.stats.ReconfigsEpoch != 1 || epoch.stats.ReconfigsDrainless != 0 {
		t.Fatalf("ModeEpoch: epoch=%d drainless=%d", epoch.stats.ReconfigsEpoch, epoch.stats.ReconfigsDrainless)
	}
	if !epoch.transitions[0].Hold {
		t.Fatal("ModeEpoch transition did not hold injection")
	}
	drainless := runReconfigSoak(t, network.KernelActive, plan, reconfig.ModeDrainless, 1200, 0)
	if drainless.stats.ReconfigsDrainless != 1 || drainless.stats.ReconfigsEpoch != 0 {
		t.Fatalf("ModeDrainless: epoch=%d drainless=%d", drainless.stats.ReconfigsEpoch, drainless.stats.ReconfigsDrainless)
	}
	if drainless.transitions[0].Hold {
		t.Fatal("ModeDrainless transition held injection")
	}
	if drainless.stats.ReconfigHeldStreams != 0 {
		t.Fatalf("ModeDrainless held %d streams", drainless.stats.ReconfigHeldStreams)
	}
}

// TestReconfigHotAdd kills a link and later revives it; the second
// transition must put it back into service.
func TestReconfigHotAdd(t *testing.T) {
	links := pickKillable(t, 1)
	plan := faults.Plan{
		Kills: []faults.LinkKill{{Link: links[0], Cycle: 300}},
		Adds:  []faults.LinkAdd{{Link: links[0], Cycle: 1200}},
	}
	out := runReconfigSoak(t, network.KernelActive, plan, reconfig.ModeAuto, 2400, 0)
	if out.stats.Reconfigs != 2 {
		t.Fatalf("Reconfigs = %d, want 2 (kill batch + add batch)", out.stats.Reconfigs)
	}
	if out.stats.LinksKilled != 1 || out.stats.LinksRevived != 1 {
		t.Fatalf("killed=%d revived=%d, want 1/1", out.stats.LinksKilled, out.stats.LinksRevived)
	}
}

// TestReconfigChipletKill: a chiplet fail-stop is a compute event, not a
// routing event — no transition runs, the surviving cores keep going,
// and the network quiesces.
func TestReconfigChipletKill(t *testing.T) {
	plan := faults.Plan{
		ChipletKills: []faults.ChipletKill{{Chiplet: 1, Cycle: 250}},
	}
	n, eng, g := buildReconfigNet(t, network.KernelActive, plan, reconfig.ModeAuto, 5)
	for i := 0; i < 1000; i++ {
		g.Tick(n.Cycle())
		n.Step()
	}
	if eng.ChipletAlive(1) {
		t.Fatal("chiplet 1 still alive after its kill event")
	}
	if !eng.ChipletAlive(0) {
		t.Fatal("chiplet 0 died collaterally")
	}
	g.SetRate(0)
	if err := n.Drain(20000, 4000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n.Stats.Reconfigs != 0 {
		t.Fatalf("chiplet fail-stop triggered %d routing transitions", n.Stats.Reconfigs)
	}
	if !eng.Done() {
		t.Fatal("engine not done")
	}
}

// TestReconfigAttachRejects pins Attach's structured validation: plans
// that target vertical links, out-of-range IDs, or would partition a
// layer must fail at attach time, before any cycle runs.
func TestReconfigAttachRejects(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.UseUpDown = true
	n, err := network.New(topo, cfg, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	vertical := -1
	for _, l := range topo.Links {
		if l.Vertical {
			vertical = l.ID
			break
		}
	}
	if vertical < 0 {
		t.Fatal("no vertical link in baseline topology")
	}
	cases := []struct {
		name string
		plan faults.Plan
		want string
	}{
		{"vertical kill", faults.Plan{Kills: []faults.LinkKill{{Link: vertical, Cycle: 10}}}, "vertical"},
		{"out of range", faults.Plan{Kills: []faults.LinkKill{{Link: len(topo.Links), Cycle: 10}}}, "topology has"},
		{"bad chiplet", faults.Plan{ChipletKills: []faults.ChipletKill{{Chiplet: 99, Cycle: 10}}}, "chiplet"},
	}
	for _, tc := range cases {
		if _, err := reconfig.Attach(n, reconfig.Config{Plan: tc.plan}); err == nil {
			t.Fatalf("%s: Attach accepted the plan", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Partitioning plan: kill every mesh link at one interposer node.
	victim := topo.LayerNodes(topology.InterposerChiplet)[0]
	var part faults.Plan
	for _, p := range topo.Node(victim).Ports {
		if p.Link != nil && !p.Link.Vertical {
			part.Kills = append(part.Kills, faults.LinkKill{Link: p.Link.ID, Cycle: 50})
		}
	}
	if len(part.Kills) == 0 {
		t.Fatal("victim has no mesh links")
	}
	_, err = reconfig.Attach(n, reconfig.Config{Plan: part})
	if err == nil {
		t.Fatal("Attach accepted a partitioning plan")
	}
	var de *routing.DisconnectedError
	if !errors.As(err, &de) {
		t.Fatalf("partition error %v (%T) lacks a *routing.DisconnectedError", err, err)
	}
	// The dry run must have restored the construction-time Faulty set.
	for _, k := range part.Kills {
		if topo.Links[k.Link].Faulty {
			t.Fatalf("dry run leaked Faulty flag on link %d", k.Link)
		}
	}
}

// TestReconfigSnapshotMidTransition: a checkpoint captured while the
// epoch transition is in flight (fences up, mixed-epoch traffic) must
// restore into a run that finishes bit-identically to the uninterrupted
// one.
func TestReconfigSnapshotMidTransition(t *testing.T) {
	links := pickKillable(t, 2)
	plan := faults.Plan{
		Kills: []faults.LinkKill{
			{Link: links[0], Cycle: 400},
			{Link: links[1], Cycle: 400},
		},
	}
	for _, kernel := range []string{network.KernelNaive, network.KernelActive, network.KernelParallel} {
		t.Run(kernel, func(t *testing.T) {
			// ModeEpoch maximizes mid-transition state: injection hold,
			// fences, and an old epoch still draining at the checkpoint.
			cold := runReconfigSoak(t, kernel, plan, reconfig.ModeEpoch, 1500, 410)
			if cold.checkpoint == nil {
				t.Fatal("no checkpoint captured")
			}
			if len(cold.transitions) != 1 || cold.transitions[0].Begin != 400 {
				t.Fatalf("transition did not begin at the kill cycle: %+v", cold.transitions)
			}

			n2, eng2, g2 := buildReconfigNet(t, kernel, plan, reconfig.ModeEpoch, 5)
			if err := n2.ReadSnapshot(cold.checkpoint, g2, eng2); err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if !n2.TransitionActive() {
				t.Fatal("restored network has no active transition — checkpoint missed the window")
			}
			for i := int(n2.Cycle()); i < 1500; i++ {
				g2.Tick(n2.Cycle())
				n2.Step()
			}
			g2.SetRate(0)
			if err := n2.Drain(40000, 4000); err != nil {
				t.Fatalf("restored drain: %v", err)
			}
			if n2.Stats != cold.stats {
				t.Fatalf("restored run diverged:\ncold:     %+v\nrestored: %+v", cold.stats, n2.Stats)
			}
			if n2.Cycle() != cold.finalCycle {
				t.Fatalf("restored final cycle %d != %d", n2.Cycle(), cold.finalCycle)
			}
			if got, want := eng2.Transitions(), cold.transitions; len(got) != len(want) || got[0] != want[0] {
				t.Fatalf("restored transitions %+v != %+v", got, want)
			}
			if len(eng2.Cuts()) != len(cold.cuts) {
				t.Fatalf("restored cuts %+v != %+v", eng2.Cuts(), cold.cuts)
			}
			for i, c := range eng2.Cuts() {
				if c != cold.cuts[i] {
					t.Fatalf("restored cut %d: %+v != %+v", i, c, cold.cuts[i])
				}
			}
		})
	}
}
