package reconfig_test

import (
	"fmt"
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/reconfig"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

// yxLocal routes Y-first then X — the classic counterexample to XY.
// Individually it is deadlock-free (dimension order), but its union with
// XY contains all four turn types and therefore a dependency cycle on
// any 2×2 mesh patch: the known-incompatible pair of the checker's
// contract.
type yxLocal struct{ topo *topology.Topology }

func (r yxLocal) NextPort(cur, dst topology.NodeID, _ *message.Packet) (topology.PortID, error) {
	cn := r.topo.Node(cur)
	dn := r.topo.Node(dst)
	var dir topology.Direction
	switch {
	case dn.Y > cn.Y:
		dir = topology.North
	case dn.Y < cn.Y:
		dir = topology.South
	case dn.X > cn.X:
		dir = topology.East
	case dn.X < cn.X:
		dir = topology.West
	default:
		return topology.LocalPort, nil
	}
	p := cn.PortTo(dir)
	if p == topology.InvalidPort {
		return topology.InvalidPort, fmt.Errorf("yx: no %s port at node %d", dir, cur)
	}
	return p, nil
}

// wfLocal is west-first minimal routing: move west first when the
// destination lies west, otherwise Y before east. Its routes avoid the
// N→W and S→W turns, as do XY's, so the XY∪wf union stays inside the
// west-first turn model and is provably acyclic: the known-compatible
// (but genuinely different) pair of the checker's contract.
type wfLocal struct{ topo *topology.Topology }

func (r wfLocal) NextPort(cur, dst topology.NodeID, _ *message.Packet) (topology.PortID, error) {
	cn := r.topo.Node(cur)
	dn := r.topo.Node(dst)
	var dir topology.Direction
	switch {
	case dn.X < cn.X:
		dir = topology.West
	case dn.Y > cn.Y:
		dir = topology.North
	case dn.Y < cn.Y:
		dir = topology.South
	case dn.X > cn.X:
		dir = topology.East
	default:
		return topology.LocalPort, nil
	}
	p := cn.PortTo(dir)
	if p == topology.InvalidPort {
		return topology.InvalidPort, fmt.Errorf("wf: no %s port at node %d", dir, cur)
	}
	return p, nil
}

// TestBuildCDGAcyclicBaseline pins that the deadlock-free locals the
// simulator ships produce acyclic per-layer CDGs on the baseline system.
func TestBuildCDGAcyclicBaseline(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	ud, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		local routing.Local
	}{
		{"xy", routing.NewXY(topo)},
		{"updown", ud},
		{"yx", yxLocal{topo}},
		{"westfirst", wfLocal{topo}},
	} {
		g, err := reconfig.BuildCDG(topo, tc.local)
		if err != nil {
			t.Fatalf("%s: BuildCDG: %v", tc.name, err)
		}
		if g.Edges() == 0 {
			t.Fatalf("%s: CDG has no edges — the walk found no multi-hop routes", tc.name)
		}
		if cyc := g.FindCycle(); cyc != nil {
			t.Fatalf("%s: individually cyclic CDG: %v", tc.name, cyc)
		}
	}
}

// TestCompatibleUnionKnownCompatible: XY and west-first are different
// routing functions whose union stays within the west-first turn model —
// the checker must prove them compatible (drainless transition legal).
func TestCompatibleUnionKnownCompatible(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	xy, err := reconfig.BuildCDG(topo, routing.NewXY(topo))
	if err != nil {
		t.Fatal(err)
	}
	wf, err := reconfig.BuildCDG(topo, wfLocal{topo})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Edges() == xy.Edges() && reconfig.Union(xy, wf).Edges() == xy.Edges() {
		t.Fatal("west-first collapsed to XY — the compatible pair is not a real test")
	}
	ok, cyc := reconfig.CompatibleUnion(xy, wf)
	if !ok {
		t.Fatalf("XY ∪ west-first reported incompatible, witness %v", cyc)
	}
	if cyc != nil {
		t.Fatalf("compatible verdict with a witness cycle %v", cyc)
	}
}

// TestCompatibleUnionKnownIncompatible: XY and YX individually are
// acyclic but their union has all four turn types — the checker must
// find a cycle and return it as a witness.
func TestCompatibleUnionKnownIncompatible(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	xy, err := reconfig.BuildCDG(topo, routing.NewXY(topo))
	if err != nil {
		t.Fatal(err)
	}
	yx, err := reconfig.BuildCDG(topo, yxLocal{topo})
	if err != nil {
		t.Fatal(err)
	}
	ok, cyc := reconfig.CompatibleUnion(xy, yx)
	if ok {
		t.Fatal("XY ∪ YX reported compatible — the checker missed the turn-model cycle")
	}
	if len(cyc) < 3 {
		t.Fatalf("witness cycle too short: %v", cyc)
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("witness %v does not close (first != last)", cyc)
	}
	seen := map[reconfig.ChannelID]bool{}
	for _, c := range cyc[:len(cyc)-1] {
		if seen[c] {
			t.Fatalf("witness %v revisits channel %d before closing", cyc, c)
		}
		seen[c] = true
	}
}

// TestCDGUpDownSurvivesKill pins the reconfiguration path's actual
// check: up*/down* rebuilt after a persistent mesh-link failure must
// still produce a walkable, individually-acyclic CDG.
func TestCDGUpDownSurvivesKill(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	before, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	gBefore, err := reconfig.BuildCDG(topo, before)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the first interposer mesh link whose removal keeps the layer
	// connected.
	var killed *topology.Link
	for _, l := range topo.Links {
		if l.Vertical || l.Faulty || topo.Node(l.A).Chiplet != topology.InterposerChiplet {
			continue
		}
		l.Faulty = true
		if _, err := routing.NewUpDown(topo); err == nil {
			killed = l
			break
		}
		l.Faulty = false
	}
	if killed == nil {
		t.Fatal("no killable interposer mesh link found")
	}
	after, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	gAfter, err := reconfig.BuildCDG(topo, after)
	if err != nil {
		t.Fatal(err)
	}
	if cyc := gAfter.FindCycle(); cyc != nil {
		t.Fatalf("post-kill up*/down* CDG cyclic: %v", cyc)
	}
	// The dead link's channels must have vanished from the new graph.
	a, b := reconfig.Channel(killed, killed.A), reconfig.Channel(killed, killed.B)
	if !gBefore.UsesChannel(a) && !gBefore.UsesChannel(b) {
		t.Fatalf("pre-kill CDG never used link %d — kill is not a real routing change", killed.ID)
	}
	if gAfter.UsesChannel(a) || gAfter.UsesChannel(b) {
		t.Fatalf("post-kill CDG still depends on killed link %d", killed.ID)
	}
	routes := 0
	nodes := topo.LayerNodes(topology.InterposerChiplet)
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			path, err := reconfig.WalkRoute(topo, after, topology.InterposerChiplet, src, dst)
			if err != nil {
				t.Fatalf("WalkRoute %d->%d: %v", src, dst, err)
			}
			for i := 0; i+1 < len(path); i++ {
				if (path[i] == killed.A && path[i+1] == killed.B) || (path[i] == killed.B && path[i+1] == killed.A) {
					t.Fatalf("route %v crosses killed link %d", path, killed.ID)
				}
			}
			routes++
		}
	}
	if routes == 0 {
		t.Fatal("walked no interposer routes")
	}
}
