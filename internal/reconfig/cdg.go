// Package reconfig implements deadlock-free dynamic reconfiguration for
// the chiplet system (DESIGN.md §15): persistent link failures and
// hot-adds change the topology at run time; routing is recomputed on the
// surviving graph; and the transition between the old and the new routing
// function is driven either drainlessly (when the union of their channel
// dependency graphs is provably acyclic, the UPR condition of arXiv
// 2006.02332) or through an epoch fence with UPP as the recovery net for
// the transient cycles a mixed-epoch network can form.
package reconfig

import (
	"fmt"
	"sort"

	"uppnoc/internal/message"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

// ChannelID identifies a directed intra-layer mesh channel: twice the
// link ID, plus one for the B→A direction.
type ChannelID int32

// Channel returns the directed channel crossed when leaving `from` over
// link l.
func Channel(l *topology.Link, from topology.NodeID) ChannelID {
	id := ChannelID(2 * l.ID)
	if from == l.B {
		id++
	}
	return id
}

// CDG is a channel-dependency graph: nodes are directed mesh channels,
// and an edge a→b records that some legal route holds channel a while
// requesting channel b. Only intra-layer (mesh) channels appear — the
// vertical layer-crossing channels are deliberately excluded, because
// the global CDG of the hierarchical routing is cyclic by design and UPP
// recovers those cycles (the paper's Sec. III argument); the per-layer
// graphs are what a routing function must keep acyclic on its own.
type CDG struct {
	adj map[ChannelID]map[ChannelID]struct{}
}

// NewCDG returns an empty graph.
func NewCDG() *CDG { return &CDG{adj: map[ChannelID]map[ChannelID]struct{}{}} }

func (g *CDG) addEdge(a, b ChannelID) {
	s := g.adj[a]
	if s == nil {
		s = map[ChannelID]struct{}{}
		g.adj[a] = s
	}
	s[b] = struct{}{}
}

// Edges returns the number of distinct dependency edges.
func (g *CDG) Edges() int {
	n := 0
	for _, s := range g.adj {
		n += len(s)
	}
	return n
}

// UsesChannel reports whether channel c appears in any dependency edge.
func (g *CDG) UsesChannel(c ChannelID) bool {
	if len(g.adj[c]) > 0 {
		return true
	}
	for _, s := range g.adj {
		if _, ok := s[c]; ok {
			return true
		}
	}
	return false
}

// Union returns a new graph holding every edge of a and b.
func Union(a, b *CDG) *CDG {
	u := NewCDG()
	for from, s := range a.adj {
		for to := range s {
			u.addEdge(from, to)
		}
	}
	for from, s := range b.adj {
		for to := range s {
			u.addEdge(from, to)
		}
	}
	return u
}

// FindCycle returns one dependency cycle as a channel sequence (first
// element repeated at the end), or nil when the graph is acyclic. The
// search is deterministic: nodes and successors are visited in ascending
// ChannelID order.
func (g *CDG) FindCycle() []ChannelID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[ChannelID]int{}
	nodes := make([]ChannelID, 0, len(g.adj))
	for c := range g.adj {
		nodes = append(nodes, c)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sortedSucc := func(c ChannelID) []ChannelID {
		s := g.adj[c]
		out := make([]ChannelID, 0, len(s))
		for t := range s {
			out = append(out, t)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var stack []ChannelID
	var dfs func(c ChannelID) []ChannelID
	dfs = func(c ChannelID) []ChannelID {
		color[c] = grey
		stack = append(stack, c)
		for _, t := range sortedSucc(c) {
			switch color[t] {
			case grey:
				// Extract the cycle from the stack.
				i := len(stack) - 1
				for i >= 0 && stack[i] != t {
					i--
				}
				cyc := append([]ChannelID{}, stack[i:]...)
				return append(cyc, t)
			case white:
				if cyc := dfs(t); cyc != nil {
					return cyc
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
		return nil
	}
	for _, c := range nodes {
		if color[c] == white {
			if cyc := dfs(c); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// BuildCDG walks every ordered same-layer (src, dst) pair of every layer
// under local and collects the channel-dependency edges of the resulting
// routes. The walk uses a scratch packet initialized exactly as an
// injection at src would be (layer, entry column, up*/down* phase), so
// phase-dependent routing functions contribute their true edge sets. It
// fails if any walk errors or loops — an unroutable pair means the
// routing function itself is broken on this topology, which callers
// treat as "not provably compatible".
func BuildCDG(t *topology.Topology, local routing.Local) (*CDG, error) {
	g := NewCDG()
	layers := make([]int, 0, len(t.Chiplets)+1)
	layers = append(layers, topology.InterposerChiplet)
	for ci := range t.Chiplets {
		layers = append(layers, ci)
	}
	for _, layer := range layers {
		nodes := t.LayerNodes(layer)
		for _, src := range nodes {
			for _, dst := range nodes {
				if src == dst {
					continue
				}
				if err := walkPair(t, local, layer, src, dst, g); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// walkPair follows local from src to dst, recording consecutive channel
// pairs as dependency edges.
func walkPair(t *topology.Topology, local routing.Local, layer int, src, dst topology.NodeID, g *CDG) error {
	p := &message.Packet{
		Src:         src,
		Dst:         dst,
		RouteLayer:  int16(layer),
		LayerEntryX: int16(t.Node(src).X),
		DstChiplet:  int16(layer),
	}
	cur := src
	prev := ChannelID(-1)
	for steps := 0; cur != dst; steps++ {
		if steps > 2*t.NumNodes() {
			return fmt.Errorf("reconfig: routing loop %d -> %d in layer %d", src, dst, layer)
		}
		port, err := local.NextPort(cur, dst, p)
		if err != nil {
			return fmt.Errorf("reconfig: cdg walk %d -> %d in layer %d: %w", src, dst, layer, err)
		}
		if port == topology.LocalPort || port == topology.InvalidPort {
			return fmt.Errorf("reconfig: cdg walk %d -> %d in layer %d ejects early at %d", src, dst, layer, cur)
		}
		n := t.Node(cur)
		pt := &n.Ports[port]
		ch := Channel(pt.Link, cur)
		if prev >= 0 {
			g.addEdge(prev, ch)
		}
		prev = ch
		cur = pt.Neighbor
	}
	return nil
}

// WalkRoute returns the node sequence (src first, dst last) a packet
// injected at src takes to dst within layer under local. Experiments use
// it to prove that routes actually changed after a reconfiguration and
// that no surviving route crosses a killed link.
func WalkRoute(t *topology.Topology, local routing.Local, layer int, src, dst topology.NodeID) ([]topology.NodeID, error) {
	p := &message.Packet{
		Src:         src,
		Dst:         dst,
		RouteLayer:  int16(layer),
		LayerEntryX: int16(t.Node(src).X),
		DstChiplet:  int16(layer),
	}
	path := []topology.NodeID{src}
	cur := src
	for steps := 0; cur != dst; steps++ {
		if steps > 2*t.NumNodes() {
			return nil, fmt.Errorf("reconfig: routing loop %d -> %d in layer %d", src, dst, layer)
		}
		port, err := local.NextPort(cur, dst, p)
		if err != nil {
			return nil, err
		}
		if port == topology.LocalPort || port == topology.InvalidPort {
			return nil, fmt.Errorf("reconfig: route %d -> %d in layer %d ejects early at %d", src, dst, layer, cur)
		}
		cur = t.Node(cur).Ports[port].Neighbor
		path = append(path, cur)
	}
	return path, nil
}

// CompatibleUnion reports whether old and new may coexist under load:
// their union CDG must be acyclic (the UPR safety condition — a packet
// routed partly under the old and partly under the new function can only
// wait along union edges, so an acyclic union rules out deadlock during
// the overlap). It returns the witness cycle when they cannot.
func CompatibleUnion(old, new *CDG) (bool, []ChannelID) {
	cyc := Union(old, new).FindCycle()
	return cyc == nil, cyc
}
