package reconfig

import (
	"fmt"
	"sort"

	"uppnoc/internal/faults"
	"uppnoc/internal/network"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// Mode selects how the engine transitions between routing functions.
type Mode uint8

const (
	// ModeAuto picks drainless when the old∪new CDG is acyclic
	// (CompatibleUnion), epoch-based otherwise. The default.
	ModeAuto Mode = iota
	// ModeDrainless forces the drainless switch even for incompatible
	// pairs — injection never stops, and UPP is the only thing standing
	// between a transient mixed-epoch cycle and a wedge. Useful for
	// measuring what the compatibility check buys.
	ModeDrainless
	// ModeEpoch forces the conservative epoch fence even for provably
	// compatible pairs.
	ModeEpoch
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeDrainless:
		return "drainless"
	case ModeEpoch:
		return "epoch"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// EventKind classifies a persistent topology event.
type EventKind uint8

const (
	// EvKillLink permanently fails a mesh link.
	EvKillLink EventKind = iota
	// EvAddLink heals a faulty mesh link (hot-add).
	EvAddLink
	// EvKillChiplet fail-stops a chiplet's compute: its cores neither
	// source nor sink traffic, but its routers keep forwarding — a
	// compute failure is not a routing change, so no transition runs.
	EvKillChiplet
)

// Event is one persistent topology event, normalized from the fault
// plan. Events sharing a cycle form one batch: a single transition
// covers all of them.
type Event struct {
	Cycle   sim.Cycle
	Kind    EventKind
	Link    int // EvKillLink, EvAddLink
	Chiplet int // EvKillChiplet
}

// CutInfo records a permanent link cut: the cycle it was applied and the
// endpoints' cumulative sent-flit counters at that moment. A post-run
// assertion that PortSentOn still equals SentA/SentB proves no flit
// crossed the link after the cut.
type CutInfo struct {
	Link         int
	Cycle        sim.Cycle
	SentA, SentB uint64
}

// Transition records one routing-epoch transition for assertions and
// reporting. Cut and Finish stay -1 until the respective step runs.
type Transition struct {
	Epoch      uint32
	Begin      sim.Cycle
	Cut        sim.Cycle
	Finish     sim.Cycle
	Compatible bool // CDG verdict (old∪new acyclic)
	Hold       bool // epoch fence used (injection stopped)
}

// Config parameterizes Attach.
type Config struct {
	// Plan supplies both the persistent events (Kills, Adds,
	// ChipletKills) and any transient faults (flaps, stalls, signal
	// drops), which the engine delegates to an embedded faults.Injector.
	Plan faults.Plan
	// Mode selects the transition strategy (default ModeAuto).
	Mode Mode
	// Rebuild computes a fresh per-layer routing function for the
	// surviving topology after each batch. Defaults to routing.NewUpDown
	// (an up*/down* search on the surviving graph). The function must
	// not consult Link.Faulty dynamically at route time the way XY does:
	// old-epoch packets keep routing under pre-kill tables after the
	// flags flip, which only a precomputed local supports.
	Rebuild func(*topology.Topology) (routing.Local, error)
}

// Engine drives deadlock-free dynamic reconfiguration. It implements
// network.FaultInjector so it is consulted at the top of every cycle on
// the coordinating goroutine of every kernel — all decisions are
// sequential and kernel bit-identical. Protocol per batch:
//
//  1. Walk the CDG of the old routing function (before any flag flips),
//     apply the batch's Faulty flips, rebuild routing on the surviving
//     graph, walk the new CDG, and check old∪new acyclicity.
//  2. BeginRouteTransition: packets already in flight keep the old
//     epoch's tables; compatible pairs switch drainlessly (injection
//     never stops), incompatible pairs raise the injection hold.
//  3. Fence the links being killed: no new wormholes enter, waiting
//     heads are unrouted and migrate onto the new tables, and once both
//     endpoints are quiet and no UPP popup path crosses the link, the
//     cut is applied (KillLink) and recorded with the endpoints' sent
//     counters.
//  4. The transition finishes when the old epoch drains to zero live
//     packets. During the overlap UPP remains armed: an incompatible
//     pair can form transient cycles, and popup recovery — not the
//     compatibility proof — is what guarantees forward progress.
type Engine struct {
	net     *network.Network
	inner   *faults.Injector // transient faults (flaps, stalls, drops)
	mode    Mode
	rebuild func(*topology.Topology) (routing.Local, error)
	events  []Event

	cursor     int   // first event not yet applied
	phase      uint8 // phaseIdle, phaseFencing, phaseDraining
	batchStart int   // active batch: events[batchStart:batchEnd]
	batchEnd   int
	dead       []bool // per-chiplet fail-stop state

	cuts        []CutInfo
	transitions []Transition
}

const (
	phaseIdle uint8 = iota
	phaseFencing
	phaseDraining
)

// popupPather is implemented by UPP: it reports that no active popup's
// drain path crosses the link, so cutting it cannot sever a wedged
// packet's escape route.
type popupPather interface {
	PopupPathsAvoid(l *topology.Link) bool
}

// Attach builds a reconfiguration engine for n from cfg and installs it
// as n's fault injector. It validates the plan up front: event targets
// must exist, killed links must be non-vertical mesh links (vertical
// links are UPP's drain path and may not be reconfigured away), and —
// by dry-running every batch's Faulty flips against Rebuild — no batch
// may partition a layer. A partitioning plan fails here with the
// routing package's structured *DisconnectedError in the chain, never
// at cycle N of a soak.
func Attach(n *network.Network, cfg Config) (*Engine, error) {
	inner, err := faults.NewInjector(n, cfg.Plan)
	if err != nil {
		return nil, err
	}
	rebuild := cfg.Rebuild
	if rebuild == nil {
		rebuild = func(t *topology.Topology) (routing.Local, error) {
			return routing.NewUpDown(t)
		}
	}
	e := &Engine{
		net:     n,
		inner:   inner,
		mode:    cfg.Mode,
		rebuild: rebuild,
		dead:    make([]bool, len(n.Topo.Chiplets)),
	}
	t := n.Topo
	// Only interposer mesh links are reconfigurable: vertical links are
	// UPP's drain path, and chiplet-internal links are fixed, verified
	// silicon in the modular-integration model. The restriction is also
	// what scopes the transition's safety net — mixed-epoch dependency
	// cycles can only form in layers whose local routing changed, and
	// UPP's transition-time mesh detection covers the interposer.
	checkLink := func(what string, id int) error {
		if id < 0 || id >= len(t.Links) {
			return fmt.Errorf("reconfig: %s of link %d, topology has %d", what, id, len(t.Links))
		}
		l := t.Links[id]
		if l.Vertical {
			return fmt.Errorf("reconfig: %s of vertical link %d (vertical links are the UPP drain path)", what, id)
		}
		if t.Node(l.A).Chiplet != topology.InterposerChiplet {
			return fmt.Errorf("reconfig: %s of chiplet-internal link %d (only the interposer fabric is reconfigurable)", what, id)
		}
		return nil
	}
	for _, k := range cfg.Plan.Kills {
		if err := checkLink("kill", k.Link); err != nil {
			return nil, err
		}
		e.events = append(e.events, Event{Cycle: k.Cycle, Kind: EvKillLink, Link: k.Link})
	}
	for _, a := range cfg.Plan.Adds {
		if err := checkLink("add", a.Link); err != nil {
			return nil, err
		}
		e.events = append(e.events, Event{Cycle: a.Cycle, Kind: EvAddLink, Link: a.Link})
	}
	for _, c := range cfg.Plan.ChipletKills {
		if c.Chiplet < 0 || c.Chiplet >= len(t.Chiplets) {
			return nil, fmt.Errorf("reconfig: kill of chiplet %d, topology has %d", c.Chiplet, len(t.Chiplets))
		}
		e.events = append(e.events, Event{Cycle: c.Cycle, Kind: EvKillChiplet, Chiplet: c.Chiplet})
	}
	// Deterministic batch order: by cycle, then kills before adds before
	// chiplet kills, then by target.
	sort.SliceStable(e.events, func(i, j int) bool {
		a, b := e.events[i], e.events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Kind == EvKillChiplet {
			return a.Chiplet < b.Chiplet
		}
		return a.Link < b.Link
	})
	if err := e.dryRun(); err != nil {
		return nil, err
	}
	n.SetFaultInjector(e)
	return e, nil
}

// dryRun applies every batch's Faulty flips in order and rebuilds
// routing after each, proving no batch leaves a partitioned layer, then
// restores the construction-time Faulty set.
func (e *Engine) dryRun() error {
	t := e.net.Topo
	saved := make([]bool, len(t.Links))
	for i, l := range t.Links {
		saved[i] = l.Faulty
	}
	defer func() {
		for i, l := range t.Links {
			l.Faulty = saved[i]
		}
	}()
	for s := 0; s < len(e.events); {
		end := s
		for end < len(e.events) && e.events[end].Cycle == e.events[s].Cycle {
			end++
		}
		topoChange := false
		for _, ev := range e.events[s:end] {
			switch ev.Kind {
			case EvKillLink:
				t.Links[ev.Link].Faulty = true
				topoChange = true
			case EvAddLink:
				t.Links[ev.Link].Faulty = false
				topoChange = true
			}
		}
		if topoChange {
			if _, err := e.rebuild(t); err != nil {
				return fmt.Errorf("reconfig: batch at cycle %d leaves no valid routing: %w",
					e.events[s].Cycle, err)
			}
		}
		s = end
	}
	return nil
}

// ChipletAlive reports whether chiplet c's compute is still running.
// Workloads consult it to stop sourcing from and targeting dead cores.
func (e *Engine) ChipletAlive(c int) bool { return c >= 0 && c < len(e.dead) && !e.dead[c] }

// Cuts returns the applied permanent link cuts.
func (e *Engine) Cuts() []CutInfo { return e.cuts }

// Transitions returns the routing-epoch transitions run so far.
func (e *Engine) Transitions() []Transition { return e.transitions }

// Done reports that every event has been applied and no transition is
// still in flight.
func (e *Engine) Done() bool { return e.cursor == len(e.events) && e.phase == phaseIdle }

// Inner returns the embedded transient-fault injector.
func (e *Engine) Inner() *faults.Injector { return e.inner }

// BeginCycle implements network.FaultInjector: transient faults are
// delegated to the embedded injector, then the reconfiguration state
// machine advances. During a snapshot restore's cursor resync the state
// machine is skipped — RestoreState rebuilds it exactly.
func (e *Engine) BeginCycle(cycle sim.Cycle) {
	e.inner.BeginCycle(cycle)
	if e.net.Restoring() {
		return
	}
	e.step(cycle)
}

// SignalFate implements network.FaultInjector.
func (e *Engine) SignalFate(kind network.SignalKind, popupID uint64, hop int, cycle sim.Cycle) network.Fate {
	return e.inner.SignalFate(kind, popupID, hop, cycle)
}

// EjectionStalled implements network.FaultInjector.
func (e *Engine) EjectionStalled(node topology.NodeID, cycle sim.Cycle) bool {
	return e.inner.EjectionStalled(node, cycle)
}

// step advances the reconfiguration state machine one cycle.
func (e *Engine) step(cycle sim.Cycle) {
	switch e.phase {
	case phaseIdle:
		// A batch whose cycle arrives while an earlier transition is
		// still draining starts late, once the machine is idle again —
		// at most one transition is ever active.
		if e.cursor < len(e.events) && e.events[e.cursor].Cycle <= cycle {
			e.beginBatch(cycle)
		}
	case phaseFencing:
		e.stepFencing(cycle)
	case phaseDraining:
		e.stepDraining(cycle)
	}
}

// beginBatch runs the CDG compatibility check and starts the transition
// for the batch of events due at (or before) this cycle.
func (e *Engine) beginBatch(cycle sim.Cycle) {
	t := e.net.Topo
	e.batchStart = e.cursor
	for e.cursor < len(e.events) && e.events[e.cursor].Cycle == e.events[e.batchStart].Cycle {
		e.cursor++
	}
	e.batchEnd = e.cursor

	topoChange := false
	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		if ev.Kind == EvKillChiplet {
			// Fail-stop of compute only: applied immediately, no
			// routing change, no transition.
			e.dead[ev.Chiplet] = true
		} else {
			topoChange = true
		}
	}
	if !topoChange {
		return
	}

	// Old CDG must be walked before the Faulty flips: it describes the
	// routing function the in-flight packets will keep using.
	oldCDG, oldErr := BuildCDG(t, e.net.Hier().Local)

	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		switch ev.Kind {
		case EvKillLink:
			t.Links[ev.Link].Faulty = true
		case EvAddLink:
			e.net.ReviveLink(t.Links[ev.Link])
		}
	}

	newLocal, err := e.rebuild(t)
	if err != nil {
		// Unreachable: Attach dry-ran every batch. A failure here means
		// something else mutated the topology mid-run.
		panic(fmt.Sprintf("reconfig: rebuild at cycle %d: %v", cycle, err))
	}
	compatible := false
	if oldErr == nil {
		if newCDG, newErr := BuildCDG(t, newLocal); newErr == nil {
			compatible, _ = CompatibleUnion(oldCDG, newCDG)
		}
	}
	// Any walk failure ⇒ not provably compatible ⇒ the conservative
	// epoch transition.
	hold := !compatible
	switch e.mode {
	case ModeDrainless:
		hold = false
	case ModeEpoch:
		hold = true
	}

	// The transition must begin before any fence goes up: migration of a
	// head off a fenced port needs the new epoch's tables installed.
	e.net.BeginRouteTransition(newLocal, hold)
	e.transitions = append(e.transitions, Transition{
		Epoch: e.net.RouteEpoch(), Begin: cycle, Cut: -1, Finish: -1,
		Compatible: compatible, Hold: hold,
	})

	fencing := false
	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		if ev.Kind == EvKillLink {
			e.net.SetLinkFenced(t.Links[ev.Link], true)
			fencing = true
		}
	}
	if fencing {
		e.phase = phaseFencing
		e.stepFencing(cycle)
	} else {
		e.phase = phaseDraining
		e.stepDraining(cycle)
	}
}

// stepFencing migrates waiting heads off the fenced links and applies
// the cut once every fenced link is quiet and clear of popup paths.
func (e *Engine) stepFencing(cycle sim.Cycle) {
	t := e.net.Topo
	migrated := 0
	quiet := true
	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		if ev.Kind != EvKillLink {
			continue
		}
		l := t.Links[ev.Link]
		migrated += e.net.UnrouteFencedHeads(l)
		if !e.net.LinkQuiet(l) {
			quiet = false
		} else if pp, ok := e.net.Scheme().(popupPather); ok && !pp.PopupPathsAvoid(l) {
			// A popup circuit still drains a wedged packet across this
			// link; cutting now would strand it. Wait the popup out.
			quiet = false
		}
	}
	if migrated > 0 {
		e.net.AddHeadsMigrated(migrated)
	}
	if !quiet {
		return
	}
	ti := len(e.transitions) - 1
	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		if ev.Kind != EvKillLink {
			continue
		}
		l := t.Links[ev.Link]
		e.cuts = append(e.cuts, CutInfo{
			Link:  ev.Link,
			Cycle: cycle,
			SentA: e.net.Routers[l.A].PortSentOn(l.APort),
			SentB: e.net.Routers[l.B].PortSentOn(l.BPort),
		})
		// The fence stays up past the cut: stale old-epoch lookups must
		// keep migrating off the dead port instead of wedging on it.
		e.net.KillLink(l)
	}
	e.transitions[ti].Cut = cycle
	e.phase = phaseDraining
	e.stepDraining(cycle)
}

// stepDraining finishes the transition once the old epoch has no live
// packets, then lifts the fences.
func (e *Engine) stepDraining(cycle sim.Cycle) {
	if e.net.OldEpochLive() != 0 {
		return
	}
	e.net.FinishRouteTransition()
	t := e.net.Topo
	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		if ev.Kind == EvKillLink {
			e.net.SetLinkFenced(t.Links[ev.Link], false)
		}
	}
	e.transitions[len(e.transitions)-1].Finish = cycle
	e.phase = phaseIdle
}

// SnapshotLabel implements network.SnapshotExtra.
func (e *Engine) SnapshotLabel() string { return "reconfig" }

// SnapshotState implements network.SnapshotExtra. Only cursor state is
// serialized: the routing tables of both epochs are pure functions of
// the topology's Faulty set at the replayed cursor, and RestoreState
// re-derives them (so a snapshot stays compact and a restore is
// bit-identical by construction).
func (e *Engine) SnapshotState(w *snap.Writer) {
	w.Int(e.cursor)
	w.Uvarint(uint64(e.phase))
	w.Int(e.batchStart)
	w.Int(e.batchEnd)
	w.Uvarint(uint64(len(e.cuts)))
	for _, c := range e.cuts {
		w.Int(c.Link)
		w.Varint(c.Cycle)
		w.Uvarint(c.SentA)
		w.Uvarint(c.SentB)
	}
	w.Uvarint(uint64(len(e.transitions)))
	for _, tr := range e.transitions {
		w.Uvarint(uint64(tr.Epoch))
		w.Varint(tr.Begin)
		w.Varint(tr.Cut)
		w.Varint(tr.Finish)
		w.Bool(tr.Compatible)
		w.Bool(tr.Hold)
	}
}

// RestoreState implements network.SnapshotExtra: it reads the cursor
// state, replays every applied event's Faulty/Down flips onto the fresh
// topology, re-derives the routing tables of the current epoch (and of
// the previous epoch when a transition is mid-flight) and installs them
// in the network. Router port masks and the network's epoch scalars were
// already restored from their own snapshot sections.
func (e *Engine) RestoreState(r *snap.Reader) error {
	ne := int64(len(e.events))
	e.cursor = r.Int("reconfig cursor", 0, ne)
	e.phase = uint8(r.Uvarint("reconfig phase"))
	e.batchStart = r.Int("reconfig batch start", 0, ne)
	e.batchEnd = r.Int("reconfig batch end", 0, ne)
	nc := r.Len("reconfig cuts", len(e.events))
	e.cuts = e.cuts[:0]
	for i := 0; i < nc; i++ {
		c := CutInfo{
			Link:  r.Int("cut link", 0, int64(len(e.net.Topo.Links)-1)),
			Cycle: r.Varint("cut cycle"),
			SentA: r.Uvarint("cut sent A"),
			SentB: r.Uvarint("cut sent B"),
		}
		e.cuts = append(e.cuts, c)
	}
	nt := r.Len("reconfig transitions", len(e.events)+1)
	e.transitions = e.transitions[:0]
	for i := 0; i < nt; i++ {
		tr := Transition{
			Epoch:      uint32(r.Uvarint("transition epoch")),
			Begin:      r.Varint("transition begin"),
			Cut:        r.Varint("transition cut"),
			Finish:     r.Varint("transition finish"),
			Compatible: r.Bool("transition compatible"),
			Hold:       r.Bool("transition hold"),
		}
		e.transitions = append(e.transitions, tr)
	}
	if r.Err() != nil {
		return r.Err()
	}
	if e.phase > phaseDraining {
		return fmt.Errorf("reconfig: snapshot phase %d out of range", e.phase)
	}
	if e.phase != phaseIdle && (e.batchEnd != e.cursor || e.batchStart >= e.batchEnd) {
		return fmt.Errorf("reconfig: snapshot batch [%d,%d) inconsistent with cursor %d",
			e.batchStart, e.batchEnd, e.cursor)
	}

	// Replay: every event with index < cursor has had its flips applied
	// (the cursor advances past a batch the moment it begins).
	t := e.net.Topo
	for i := range e.dead {
		e.dead[i] = false
	}
	cutSet := map[int]bool{}
	for _, c := range e.cuts {
		cutSet[c.Link] = true
	}
	topoApplied := false
	for i := 0; i < e.cursor; i++ {
		ev := e.events[i]
		switch ev.Kind {
		case EvKillLink:
			l := t.Links[ev.Link]
			l.Faulty = true
			// The Down flag follows the cut, not the batch: a kill
			// mid-fencing is Faulty (tables exclude it) but not yet cut.
			if cutSet[ev.Link] {
				l.Down = true
			}
			topoApplied = true
		case EvAddLink:
			l := t.Links[ev.Link]
			l.Faulty = false
			l.Down = false
			topoApplied = true
		case EvKillChiplet:
			e.dead[ev.Chiplet] = true
		}
	}

	if !topoApplied {
		// No transition has run: the construction-time tables (which
		// need not come from Rebuild at all) are still installed.
		return nil
	}
	cur, err := e.rebuild(t)
	if err != nil {
		return fmt.Errorf("reconfig: restore rebuild: %w", err)
	}
	var prevH *routing.Hierarchical
	if e.phase != phaseIdle {
		// The previous epoch's tables are the ones built before the
		// active batch: un-flip it, rebuild, re-flip.
		e.flipBatch(true)
		prev, err := e.rebuild(t)
		e.flipBatch(false)
		if err != nil {
			return fmt.Errorf("reconfig: restore prev-epoch rebuild: %w", err)
		}
		prevH = routing.NewHierarchical(t, prev)
	}
	e.net.RestoreRouteTables(routing.NewHierarchical(t, cur), prevH)
	return nil
}

// flipBatch toggles the active batch's Faulty flips (invert=true undoes
// them, invert=false reapplies them).
func (e *Engine) flipBatch(invert bool) {
	t := e.net.Topo
	for _, ev := range e.events[e.batchStart:e.batchEnd] {
		switch ev.Kind {
		case EvKillLink:
			t.Links[ev.Link].Faulty = !invert
		case EvAddLink:
			t.Links[ev.Link].Faulty = invert
		}
	}
}
