package routing_test

import (
	"errors"
	"testing"

	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

// isolateNode marks every mesh link at node faulty, partitioning its
// layer (unless the layer has a single router). Returns the number of
// links cut.
func isolateNode(topo *topology.Topology, node topology.NodeID) int {
	cut := 0
	for _, p := range topo.Node(node).Ports {
		if p.Link != nil && !p.Link.Vertical && !p.Link.Faulty {
			p.Link.Faulty = true
			cut++
		}
	}
	return cut
}

// TestUpDownDisconnectedLayer: when persistent failures partition a
// layer, NewUpDown must return a structured *DisconnectedError naming the
// layer and an unreachable node — never panic, and never a bare string
// the reconfiguration engine cannot classify.
func TestUpDownDisconnectedLayer(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	// Pick a chiplet-0 router that is not the layer's spanning-tree root
	// (the root is LayerNodes[0]; an isolated root would also partition,
	// but then the unreachable node reported is some other one).
	nodes := topo.LayerNodes(0)
	if len(nodes) < 2 {
		t.Skip("layer too small to partition")
	}
	victim := nodes[len(nodes)-1]
	if cut := isolateNode(topo, victim); cut == 0 {
		t.Fatalf("node %d has no mesh links to cut", victim)
	}
	_, err := routing.NewUpDown(topo)
	if err == nil {
		t.Fatalf("NewUpDown succeeded on a partitioned layer")
	}
	var de *routing.DisconnectedError
	if !errors.As(err, &de) {
		t.Fatalf("error %v (%T) is not a *DisconnectedError", err, err)
	}
	if de.Layer != 0 {
		t.Fatalf("DisconnectedError.Layer = %d, want 0", de.Layer)
	}
	if de.Node != victim {
		t.Fatalf("DisconnectedError.Node = %d, want %d", de.Node, victim)
	}
}

// TestUpDownDisconnectedInterposer: same contract for the interposer
// layer (its key is topology.InterposerChiplet, not a chiplet index).
func TestUpDownDisconnectedInterposer(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	nodes := topo.LayerNodes(topology.InterposerChiplet)
	if len(nodes) < 2 {
		t.Skip("interposer too small to partition")
	}
	victim := nodes[len(nodes)-1]
	if cut := isolateNode(topo, victim); cut == 0 {
		t.Fatalf("node %d has no mesh links to cut", victim)
	}
	_, err := routing.NewUpDown(topo)
	var de *routing.DisconnectedError
	if !errors.As(err, &de) {
		t.Fatalf("error %v (%T) is not a *DisconnectedError", err, err)
	}
	if de.Layer != topology.InterposerChiplet || de.Node != victim {
		t.Fatalf("DisconnectedError = %+v, want layer %d node %d", de, topology.InterposerChiplet, victim)
	}
}

// FuzzUpDownDisconnected isolates an arbitrary router (cutting all its
// mesh links) plus a few random extra faults, then requires NewUpDown to
// either succeed or fail with a *DisconnectedError — never panic, never
// an unclassifiable error. The first seed is the known partition case.
func FuzzUpDownDisconnected(f *testing.F) {
	f.Add(uint16(15), uint8(0))
	f.Add(uint16(0), uint8(4))
	f.Add(uint16(200), uint8(9))
	f.Fuzz(func(t *testing.T, a uint16, extra uint8) {
		topo := topology.MustBuild(topology.BaselineConfig())
		if n := int(extra % 8); n > 0 {
			if _, err := topo.InjectFaults(n, uint64(extra)); err != nil {
				t.Skip()
			}
		}
		victim := topology.NodeID(int(a) % topo.NumNodes())
		isolateNode(topo, victim)
		ud, err := routing.NewUpDown(topo)
		if err == nil {
			if ud == nil {
				t.Fatal("nil UpDown without error")
			}
			return
		}
		var de *routing.DisconnectedError
		if !errors.As(err, &de) {
			t.Fatalf("error %v (%T) is not a *DisconnectedError", err, err)
		}
		if de.Error() == "" {
			t.Fatal("empty DisconnectedError message")
		}
	})
}
