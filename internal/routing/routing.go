// Package routing computes output ports for packets in a chiplet-based
// system. It implements the paper's Sec. V-D scheme:
//
//  1. packets moving within one layer (a chiplet or the interposer) use a
//     locally deadlock-free algorithm — XY on regular meshes, up*/down* on
//     faulty/irregular meshes;
//  2. packets moving from a chiplet to the interposer descend through the
//     boundary router chosen at injection (static binding: the boundary
//     router closest to the source, or the composable baseline's
//     restricted choice);
//  3. packets moving from the interposer into a chiplet ascend through the
//     interposer router under the boundary router statically bound to the
//     destination chiplet router.
//
// Route computation is per-hop: the head flit carries the small amount of
// routing state (egress boundary, ingress interposer router, up*/down*
// phase) that real head flits would carry.
package routing

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

// Local routes a packet one hop within a single layer mesh toward dst
// (which must be in the same layer as cur).
type Local interface {
	// NextPort returns the output port at cur toward dst. It may read and
	// update per-packet routing state (e.g. the up*/down* phase bit).
	NextPort(cur, dst topology.NodeID, p *message.Packet) (topology.PortID, error)
}

// BoundaryPolicy selects the vertical crossing points for inter-chiplet
// packets. UPP and remote control use the static binding (Default);
// the composable baseline restricts the choice.
type BoundaryPolicy interface {
	// EgressBoundary picks the boundary router through which a packet
	// injected at src and destined to dst leaves src's chiplet. src must
	// be a chiplet-layer node and the packet must leave the chiplet.
	EgressBoundary(t *topology.Topology, src, dst topology.NodeID) topology.NodeID
}

// DefaultPolicy is the paper's static binding: packets leave through the
// boundary router bound to their source router, and enter through the
// interposer router under the boundary router bound to their destination.
type DefaultPolicy struct{}

// EgressBoundary returns the boundary router statically bound to src.
func (DefaultPolicy) EgressBoundary(t *topology.Topology, src, dst topology.NodeID) topology.NodeID {
	return t.Node(src).BoundBoundary
}

// IngressInterposer returns the interposer router from which packets to
// dst ascend: the router under dst's bound boundary router. It is shared
// by every policy — the paper's Sec. V-D fixes ingress to the destination
// binding so that all flits (and UPP signals) for one destination enter
// the chiplet through one boundary router.
func IngressInterposer(t *topology.Topology, dst topology.NodeID) topology.NodeID {
	n := t.Node(dst)
	if n.Chiplet == topology.InterposerChiplet {
		return topology.InvalidNode
	}
	return t.InterposerUnder(n.BoundBoundary)
}

// Prepare stamps the per-packet routing state at injection time: the
// egress boundary (via policy) and the ingress interposer router.
func Prepare(t *topology.Topology, p *message.Packet, policy BoundaryPolicy) {
	p.EgressBoundary = topology.InvalidNode
	p.IngressInterposer = IngressInterposer(t, p.Dst)
	p.DownPhase = false
	p.RouteLayer = int16(t.Node(p.Src).Chiplet)
	p.LayerEntryX = int16(t.Node(p.Src).X)
	p.DstChiplet = int16(t.Node(p.Dst).Chiplet)
	src := t.Node(p.Src)
	dst := t.Node(p.Dst)
	if src.Chiplet != topology.InterposerChiplet &&
		(dst.Chiplet == topology.InterposerChiplet || dst.Chiplet != src.Chiplet) {
		p.EgressBoundary = policy.EgressBoundary(t, p.Src, p.Dst)
	}
}

// Hierarchical is the full system router: it composes a Local per-layer
// algorithm with the vertical crossing rules.
type Hierarchical struct {
	Topo  *topology.Topology
	Local Local
}

// NewHierarchical builds the system routing function.
func NewHierarchical(t *topology.Topology, local Local) *Hierarchical {
	return &Hierarchical{Topo: t, Local: local}
}

// NextPort computes the output port for packet p at router cur.
func (h *Hierarchical) NextPort(cur topology.NodeID, p *message.Packet) (topology.PortID, error) {
	t := h.Topo
	if cur == p.Dst {
		return topology.LocalPort, nil
	}
	n := t.Node(cur)
	dn := t.Node(p.Dst)

	if n.Chiplet == dn.Chiplet && n.Chiplet != topology.InterposerChiplet {
		// Case 1a: inside the destination chiplet.
		return h.Local.NextPort(cur, p.Dst, p)
	}
	if n.Chiplet == topology.InterposerChiplet {
		if dn.Chiplet == topology.InterposerChiplet {
			// Case 1b: interposer to interposer.
			return h.Local.NextPort(cur, p.Dst, p)
		}
		// Case 3: heading to a chiplet — reach the ingress interposer
		// router, then ascend to the destination's bound boundary router.
		ii := p.IngressInterposer
		if ii == topology.InvalidNode {
			return topology.InvalidPort, fmt.Errorf("routing: packet %d to %d has no ingress interposer", p.ID, p.Dst)
		}
		if cur == ii {
			up := n.PortToNeighbor(dn.BoundBoundary)
			if up == topology.InvalidPort {
				return topology.InvalidPort, fmt.Errorf("routing: interposer %d has no up link to boundary %d", cur, dn.BoundBoundary)
			}
			return up, nil
		}
		return h.Local.NextPort(cur, ii, p)
	}
	// Case 2: in a chiplet that is not the destination's — descend through
	// the egress boundary chosen at injection.
	eb := p.EgressBoundary
	if eb == topology.InvalidNode || t.Node(eb).Chiplet != n.Chiplet {
		return topology.InvalidPort, fmt.Errorf("routing: packet %d at %d (chiplet %d) has no egress boundary here", p.ID, cur, n.Chiplet)
	}
	if cur == eb {
		down := n.PortTo(topology.Down)
		if down == topology.InvalidPort {
			return topology.InvalidPort, fmt.Errorf("routing: boundary %d has no down link", cur)
		}
		return down, nil
	}
	return h.Local.NextPort(cur, eb, p)
}
