package routing_test

import (
	"testing"
	"testing/quick"

	"uppnoc/internal/message"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

// walk follows a routing function from src to dst, returning the visited
// nodes (including both endpoints). It fails the test on loops or errors.
func walk(t *testing.T, topo *topology.Topology, h *routing.Hierarchical, src, dst topology.NodeID) []topology.NodeID {
	t.Helper()
	p := &message.Packet{Src: src, Dst: dst, VNet: 0, Size: 1}
	routing.Prepare(topo, p, routing.DefaultPolicy{})
	cur := src
	path := []topology.NodeID{cur}
	for cur != dst {
		if len(path) > topo.NumNodes()*2 {
			t.Fatalf("routing loop %d->%d: %v", src, dst, path)
		}
		out, err := h.NextPort(cur, p)
		if err != nil {
			t.Fatalf("route %d->%d at %d: %v", src, dst, cur, err)
		}
		if out == topology.LocalPort {
			if cur != dst {
				t.Fatalf("route %d->%d ejects early at %d", src, dst, cur)
			}
			break
		}
		n := topo.Node(cur)
		cur = n.Ports[out].Neighbor
		path = append(path, cur)
	}
	return path
}

func TestXYAllPairsHealthy(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	h := routing.NewHierarchical(topo, routing.NewXY(topo))
	for i := 0; i < topo.NumNodes(); i++ {
		for j := 0; j < topo.NumNodes(); j++ {
			if i == j {
				continue
			}
			walk(t, topo, h, topology.NodeID(i), topology.NodeID(j))
		}
	}
}

// TestHierarchicalCrossingPoints: inter-chiplet routes descend exactly at
// the source-bound boundary and ascend at the destination-bound boundary
// (the Sec. V-D static binding).
func TestHierarchicalCrossingPoints(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	h := routing.NewHierarchical(topo, routing.NewXY(topo))
	cores := topo.Cores()
	for _, src := range cores[:16] { // chiplet 0
		for _, dst := range cores[48:] { // chiplet 3
			path := walk(t, topo, h, src, dst)
			// Find the descent and ascent.
			var down, up topology.NodeID = topology.InvalidNode, topology.InvalidNode
			for k := 0; k+1 < len(path); k++ {
				a, b := topo.Node(path[k]), topo.Node(path[k+1])
				if a.Chiplet != topology.InterposerChiplet && b.Chiplet == topology.InterposerChiplet {
					down = path[k]
				}
				if a.Chiplet == topology.InterposerChiplet && b.Chiplet != topology.InterposerChiplet {
					up = path[k+1]
				}
			}
			if down != topo.Node(src).BoundBoundary {
				t.Fatalf("%d->%d descended at %d, bound %d", src, dst, down, topo.Node(src).BoundBoundary)
			}
			if up != topo.Node(dst).BoundBoundary {
				t.Fatalf("%d->%d ascended at %d, bound %d", src, dst, up, topo.Node(dst).BoundBoundary)
			}
		}
	}
}

// TestHierarchicalMinimalWithinLayers: XY segments are minimal, so the
// total path length equals the sum of the three segment distances.
func TestHierarchicalMinimalWithinLayers(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	h := routing.NewHierarchical(topo, routing.NewXY(topo))
	cores := topo.Cores()
	src, dst := cores[0], cores[63]
	path := walk(t, topo, h, src, dst)
	sn, dn := topo.Node(src), topo.Node(dst)
	eb := topo.Node(sn.BoundBoundary)
	ib := topo.Node(topo.InterposerUnder(dn.BoundBoundary))
	egress := topo.Node(topo.InterposerUnder(sn.BoundBoundary))
	want := manhattan(sn, eb) + 1 + manhattan(egress, ib) + 1 + manhattan(topo.Node(dn.BoundBoundary), dn)
	if got := len(path) - 1; got != want {
		t.Fatalf("path length %d, want %d (%v)", got, want, path)
	}
}

func manhattan(a, b *topology.Node) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestXYRejectsFaultyLink(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	if _, err := topo.InjectFaults(1, 5); err != nil {
		t.Fatal(err)
	}
	var faulty *topology.Link
	for _, l := range topo.Links {
		if l.Faulty {
			faulty = l
		}
	}
	xy := routing.NewXY(topo)
	// Routing straight across the faulty link must error.
	p := &message.Packet{Src: faulty.A, Dst: faulty.B}
	if _, err := xy.NextPort(faulty.A, faulty.B, p); err == nil {
		t.Fatal("XY crossed a faulty link")
	}
}

func TestUpDownAllPairsOnFaultySystems(t *testing.T) {
	for _, faults := range []int{0, 5, 20} {
		topo := topology.MustBuild(topology.BaselineConfig())
		if faults > 0 {
			if _, err := topo.InjectFaults(faults, uint64(faults)); err != nil {
				t.Fatal(err)
			}
		}
		ud, err := routing.NewUpDown(topo)
		if err != nil {
			t.Fatalf("faults=%d: %v", faults, err)
		}
		h := routing.NewHierarchical(topo, ud)
		// All core pairs (sampled stride for speed) and all dirs.
		cores := topo.Cores()
		for i := 0; i < len(cores); i += 3 {
			for j := 0; j < len(cores); j += 5 {
				if i == j {
					continue
				}
				path := walk(t, topo, h, cores[i], cores[j])
				checkNoFaultyHop(t, topo, path)
			}
			path := walk(t, topo, h, cores[i], topo.Interposer[5])
			checkNoFaultyHop(t, topo, path)
		}
	}
}

func checkNoFaultyHop(t *testing.T, topo *topology.Topology, path []topology.NodeID) {
	t.Helper()
	for k := 0; k+1 < len(path); k++ {
		n := topo.Node(path[k])
		pt := n.PortToNeighbor(path[k+1])
		if pt == topology.InvalidPort {
			t.Fatalf("path hop %d->%d has no link", path[k], path[k+1])
		}
		if n.Ports[pt].Link.Faulty {
			t.Fatalf("path crosses faulty link %d->%d", path[k], path[k+1])
		}
	}
}

// TestUpDownPhaseLegality: within each layer segment, no "up" tree move
// may follow a "down" move — the property that makes up*/down* deadlock
// free.
func TestUpDownPhaseLegality(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	if _, err := topo.InjectFaults(10, 3); err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Walk all intra-layer pairs in chiplet 0 and verify phase
	// monotonicity via the packet's DownPhase bit.
	nodes := topo.Chiplets[0].Routers
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			p := &message.Packet{Src: src, Dst: dst}
			routing.Prepare(topo, p, routing.DefaultPolicy{})
			cur := src
			wasDown := false
			for steps := 0; cur != dst; steps++ {
				if steps > 64 {
					t.Fatalf("loop %d->%d", src, dst)
				}
				out, err := ud.NextPort(cur, dst, p)
				if err != nil {
					t.Fatalf("%d->%d at %d: %v", src, dst, cur, err)
				}
				if wasDown && !p.DownPhase {
					t.Fatalf("%d->%d: phase reset mid-layer", src, dst)
				}
				wasDown = p.DownPhase
				cur = topo.Node(cur).Ports[out].Neighbor
			}
		}
	}
}

// TestPrepareFields: Prepare stamps egress/ingress correctly for the three
// packet categories of Sec. V-D.
func TestPrepareFields(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cores := topo.Cores()
	intra := &message.Packet{Src: cores[0], Dst: cores[5]}
	routing.Prepare(topo, intra, routing.DefaultPolicy{})
	if intra.EgressBoundary != topology.InvalidNode {
		t.Fatal("intra-chiplet packet has an egress boundary")
	}
	cross := &message.Packet{Src: cores[0], Dst: cores[63]}
	routing.Prepare(topo, cross, routing.DefaultPolicy{})
	if cross.EgressBoundary != topo.Node(cores[0]).BoundBoundary {
		t.Fatal("wrong egress boundary")
	}
	if cross.IngressInterposer != topo.InterposerUnder(topo.Node(cores[63]).BoundBoundary) {
		t.Fatal("wrong ingress interposer")
	}
	toDir := &message.Packet{Src: cores[0], Dst: topo.Interposer[3]}
	routing.Prepare(topo, toDir, routing.DefaultPolicy{})
	if toDir.EgressBoundary == topology.InvalidNode {
		t.Fatal("core-to-directory packet needs an egress boundary")
	}
	if toDir.IngressInterposer != topology.InvalidNode {
		t.Fatal("interposer-destined packet must not have an ingress interposer")
	}
	fromDir := &message.Packet{Src: topo.Interposer[3], Dst: cores[10]}
	routing.Prepare(topo, fromDir, routing.DefaultPolicy{})
	if fromDir.EgressBoundary != topology.InvalidNode {
		t.Fatal("interposer-sourced packet must not have an egress boundary")
	}
}

// TestRandomPairsQuick property-checks hierarchical XY routing.
func TestRandomPairsQuick(t *testing.T) {
	topo := topology.MustBuild(topology.LargeConfig())
	h := routing.NewHierarchical(topo, routing.NewXY(topo))
	err := quick.Check(func(a, b uint16) bool {
		cores := topo.Cores()
		src := cores[int(a)%len(cores)]
		dst := cores[int(b)%len(cores)]
		if src == dst {
			return true
		}
		walk(t, topo, h, src, dst)
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUpDownOnHeterogeneousSystem: the spanning-tree tables must build
// and route on mixed-size chiplets too.
func TestUpDownOnHeterogeneousSystem(t *testing.T) {
	topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	h := routing.NewHierarchical(topo, ud)
	cores := topo.Cores()
	for i := 0; i < len(cores); i += 4 {
		for j := 1; j < len(cores); j += 9 {
			if i == j {
				continue
			}
			walk(t, topo, h, cores[i], cores[j])
		}
	}
}
