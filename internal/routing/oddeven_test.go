package routing_test

import (
	"testing"
	"testing/quick"

	"uppnoc/internal/message"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

func TestOddEvenAllPairsMinimal(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	oe := routing.NewOddEven(topo, nil)
	h := routing.NewHierarchical(topo, oe)
	// All intra-chiplet pairs: odd-even minimal routing must deliver in
	// exactly the Manhattan distance.
	for _, ch := range topo.Chiplets[:1] {
		for _, src := range ch.Routers {
			for _, dst := range ch.Routers {
				if src == dst {
					continue
				}
				path := walk(t, topo, h, src, dst)
				sn, dn := topo.Node(src), topo.Node(dst)
				want := abs(sn.X-dn.X) + abs(sn.Y-dn.Y)
				if got := len(path) - 1; got != want {
					t.Fatalf("%d->%d: %d hops, minimal %d", src, dst, got, want)
				}
			}
		}
	}
}

func TestOddEvenCrossChiplet(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	h := routing.NewHierarchical(topo, routing.NewOddEven(topo, nil))
	cores := topo.Cores()
	for i := 0; i < len(cores); i += 5 {
		for j := 0; j < len(cores); j += 7 {
			if i == j {
				continue
			}
			walk(t, topo, h, cores[i], cores[j])
		}
	}
}

// TestOddEvenTurnLegality walks every pair and asserts no forbidden turn
// is taken — the property that makes odd-even deadlock-free.
func TestOddEvenTurnLegality(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	oe := routing.NewOddEven(topo, nil)
	ch := topo.Chiplets[0]
	for _, src := range ch.Routers {
		for _, dst := range ch.Routers {
			if src == dst {
				continue
			}
			p := &message.Packet{Src: src, Dst: dst}
			routing.Prepare(topo, p, routing.DefaultPolicy{})
			cur := src
			prev := topology.Local
			for steps := 0; cur != dst; steps++ {
				if steps > 32 {
					t.Fatalf("loop %d->%d", src, dst)
				}
				out, err := oe.NextPort(cur, dst, p)
				if err != nil {
					t.Fatalf("%d->%d at %d: %v", src, dst, cur, err)
				}
				n := topo.Node(cur)
				dir := n.Ports[out].Dir
				even := n.X%2 == 0
				switch {
				case prev == topology.East && (dir == topology.North || dir == topology.South) && even:
					t.Fatalf("%d->%d: E->%s turn at even column (%d,%d)", src, dst, dir, n.X, n.Y)
				case (prev == topology.North || prev == topology.South) && dir == topology.West && !even:
					t.Fatalf("%d->%d: %s->W turn at odd column (%d,%d)", src, dst, prev, n.X, n.Y)
				}
				prev = dir
				cur = n.Ports[out].Neighbor
			}
		}
	}
}

// TestOddEvenSelectorInvoked: with multiple candidates the selector picks.
func TestOddEvenSelectorInvoked(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	calls := 0
	oe := routing.NewOddEven(topo, func(cur topology.NodeID, cands []topology.PortID, p *message.Packet) topology.PortID {
		calls++
		if len(cands) < 2 {
			t.Fatalf("selector called with %d candidates", len(cands))
		}
		return cands[len(cands)-1]
	})
	ch := topo.Chiplets[0]
	// A diagonal route has path diversity.
	src, dst := ch.RouterAt(0, 0), ch.RouterAt(3, 3)
	p := &message.Packet{Src: src, Dst: dst}
	routing.Prepare(topo, p, routing.DefaultPolicy{})
	cur := src
	for steps := 0; cur != dst && steps < 16; steps++ {
		out, err := oe.NextPort(cur, dst, p)
		if err != nil {
			t.Fatal(err)
		}
		cur = topo.Node(cur).Ports[out].Neighbor
	}
	if calls == 0 {
		t.Fatal("selector never invoked on a diagonal route")
	}
}

// TestOddEvenDirsQuick property-checks that the ROUTE function always
// offers at least one direction for distinct positions.
func TestOddEvenDirsQuick(t *testing.T) {
	topo := topology.MustBuild(topology.LargeConfig())
	oe := routing.NewOddEven(topo, nil)
	ch := topo.Chiplets[0]
	err := quick.Check(func(a, b, c uint8) bool {
		src := ch.Routers[int(a)%len(ch.Routers)]
		dst := ch.Routers[int(b)%len(ch.Routers)]
		if src == dst {
			return true
		}
		p := &message.Packet{Src: src, Dst: dst}
		routing.Prepare(topo, p, routing.DefaultPolicy{})
		_, err := oe.NextPort(src, dst, p)
		return err == nil
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
