package routing

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

// UpDown is up*/down* routing (Autonet-style, as used by ARIADNE-class
// reconfiguration schemes) for irregular or faulty layers. Each layer gets
// a BFS spanning tree rooted at its first router; every healthy link is
// oriented "up" toward the root (lower BFS level, ties by lower ID). A
// legal route traverses zero or more up links followed by zero or more
// down links, which makes the layer's channel dependency graph acyclic —
// deadlock-free within the layer regardless of which links are faulty.
//
// Routes are precomputed as shortest legal paths, so UpDown degrades to
// near-minimal routing when few links are faulty (Fig. 11's graceful
// degradation).
type UpDown struct {
	topo *topology.Topology
	// next[layerKey][cur][phase][dst] = port, with per-layer dense node
	// indexes. phase 0 = may still go up, 1 = committed to down.
	layers map[int]*updownLayer
}

type updownLayer struct {
	index map[topology.NodeID]int
	nodes []topology.NodeID
	// next[phase][cur*len+dst] holds the output port and the phase after
	// taking it.
	next [2][]updownHop
}

type updownHop struct {
	port      topology.PortID
	nextPhase uint8
}

// DisconnectedError reports that a layer's healthy links no longer form a
// connected mesh: Node cannot be reached from the layer's spanning-tree
// root. Reconfiguration engines match it with errors.As to distinguish "a
// persistent failure partitioned the layer" (a plan/topology problem)
// from internal routing bugs.
type DisconnectedError struct {
	// Layer is the partitioned layer (a chiplet index or
	// topology.InterposerChiplet).
	Layer int
	// Node is the first unreachable node found.
	Node topology.NodeID
}

func (e *DisconnectedError) Error() string {
	return fmt.Sprintf("layer %d disconnected: node %d unreachable from layer root", e.Layer, e.Node)
}

// NewUpDown builds up*/down* tables for every layer of t using only the
// healthy links. It fails with a wrapped *DisconnectedError if a layer is
// disconnected, or a plain error if some pair has no legal route (cannot
// happen on a connected layer: root paths are always legal).
func NewUpDown(t *topology.Topology) (*UpDown, error) {
	u := &UpDown{topo: t, layers: map[int]*updownLayer{}}
	build := func(layer int) error {
		l, err := buildUpDownLayer(t, layer, t.LayerNodes(layer))
		if err != nil {
			return fmt.Errorf("routing: %w", err)
		}
		u.layers[layer] = l
		return nil
	}
	if err := build(topology.InterposerChiplet); err != nil {
		return nil, err
	}
	for ci := range t.Chiplets {
		if err := build(ci); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// NextPort implements Local.
func (u *UpDown) NextPort(cur, dst topology.NodeID, p *message.Packet) (topology.PortID, error) {
	cn := u.topo.Node(cur)
	layer := cn.Chiplet
	if u.topo.Node(dst).Chiplet != layer {
		return topology.InvalidPort, fmt.Errorf("routing: up*/down* across layers (%d -> %d)", cur, dst)
	}
	l := u.layers[layer]
	if l == nil {
		return topology.InvalidPort, fmt.Errorf("routing: no up*/down* table for layer %d", layer)
	}
	if p != nil && p.RouteLayer != int16(layer) {
		// First hop in a new layer: the packet may go up again.
		p.DownPhase = false
		p.RouteLayer = int16(layer)
	}
	phase := 0
	if p != nil && p.DownPhase {
		phase = 1
	}
	ci, di := l.index[cur], l.index[dst]
	hop := l.next[phase][ci*len(l.nodes)+di]
	if hop.port == topology.InvalidPort {
		return topology.InvalidPort, fmt.Errorf("routing: no legal up*/down* route %d -> %d (phase %d)", cur, dst, phase)
	}
	if p != nil && hop.nextPhase == 1 {
		p.DownPhase = true
	}
	return hop.port, nil
}

// buildUpDownLayer computes the spanning-tree orientation and shortest
// legal next hops for one layer.
func buildUpDownLayer(t *topology.Topology, layer int, nodes []topology.NodeID) (*updownLayer, error) {
	l := &updownLayer{index: make(map[topology.NodeID]int, len(nodes)), nodes: nodes}
	for i, id := range nodes {
		l.index[id] = i
	}
	n := len(nodes)

	// BFS levels from the root over healthy intra-layer links.
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		cn := t.Node(nodes[ci])
		for pi := 1; pi < len(cn.Ports); pi++ {
			pt := &cn.Ports[pi]
			if pt.Link.Faulty || pt.Link.Vertical {
				continue
			}
			ni, ok := l.index[pt.Neighbor]
			if !ok {
				continue
			}
			if level[ni] < 0 {
				level[ni] = level[ci] + 1
				queue = append(queue, ni)
			}
		}
	}
	for i, lv := range level {
		if lv < 0 {
			return nil, &DisconnectedError{Layer: layer, Node: nodes[i]}
		}
	}

	// isUp reports whether moving cur->nb traverses the link in the "up"
	// direction (toward the root).
	isUp := func(ci, ni int) bool {
		if level[ni] != level[ci] {
			return level[ni] < level[ci]
		}
		return nodes[ni] < nodes[ci]
	}

	for phase := 0; phase < 2; phase++ {
		l.next[phase] = make([]updownHop, n*n)
		for i := range l.next[phase] {
			l.next[phase][i] = updownHop{port: topology.InvalidPort}
		}
	}

	// For each destination, BFS over the reversed legality graph of
	// states (node, phase) to get distances, then pick the best forward
	// move per state.
	type state struct{ node, phase int }
	dist := make([]int, 2*n)
	for di := 0; di < n; di++ {
		for i := range dist {
			dist[i] = -1
		}
		// Arriving at the destination is legal in either phase.
		q := []state{{di, 0}, {di, 1}}
		dist[di*2+0], dist[di*2+1] = 0, 0
		for len(q) > 0 {
			s := q[0]
			q = q[1:]
			cn := t.Node(nodes[s.node])
			// Find predecessors v such that v --move--> s is legal.
			for pi := 1; pi < len(cn.Ports); pi++ {
				pt := &cn.Ports[pi]
				if pt.Link.Faulty || pt.Link.Vertical {
					continue
				}
				vi, ok := l.index[pt.Neighbor]
				if !ok {
					continue
				}
				// Move v -> s.node. It is an up move iff s.node is the
				// up end relative to v.
				up := isUp(vi, s.node)
				var prevPhases []int
				if up {
					// Up moves keep phase 0 and require phase 0.
					if s.phase == 0 {
						prevPhases = []int{0}
					}
				} else {
					// Down moves land in phase 1 from either phase.
					if s.phase == 1 {
						prevPhases = []int{0, 1}
					}
				}
				for _, pp := range prevPhases {
					if dist[vi*2+pp] < 0 {
						dist[vi*2+pp] = dist[s.node*2+s.phase] + 1
						q = append(q, state{vi, pp})
					}
				}
			}
		}
		// Forward next-hop selection.
		for ci := 0; ci < n; ci++ {
			if ci == di {
				for phase := 0; phase < 2; phase++ {
					l.next[phase][ci*n+di] = updownHop{port: topology.LocalPort, nextPhase: uint8(phase)}
				}
				continue
			}
			cn := t.Node(nodes[ci])
			for phase := 0; phase < 2; phase++ {
				best := updownHop{port: topology.InvalidPort}
				bestD := -1
				for pi := 1; pi < len(cn.Ports); pi++ {
					pt := &cn.Ports[pi]
					if pt.Link.Faulty || pt.Link.Vertical {
						continue
					}
					ni, ok := l.index[pt.Neighbor]
					if !ok {
						continue
					}
					up := isUp(ci, ni)
					if up && phase == 1 {
						continue // committed to down
					}
					nextPhase := phase
					if !up {
						nextPhase = 1
					}
					d := dist[ni*2+nextPhase]
					if d < 0 {
						continue
					}
					if bestD < 0 || d < bestD {
						bestD = d
						best = updownHop{port: topology.PortID(pi), nextPhase: uint8(nextPhase)}
					}
				}
				l.next[phase][ci*n+di] = best
			}
		}
	}
	// Every (cur, dst) pair must be routable from phase 0.
	for ci := 0; ci < n; ci++ {
		for di := 0; di < n; di++ {
			if l.next[0][ci*n+di].port == topology.InvalidPort {
				return nil, fmt.Errorf("no legal route %d -> %d", nodes[ci], nodes[di])
			}
		}
	}
	return l, nil
}
