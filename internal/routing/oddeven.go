package routing

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

// Selector picks one output port among legal minimal candidates — the
// adaptive selection stage. The network supplies a credit-aware selector;
// nil falls back to the first candidate (deterministic).
type Selector func(cur topology.NodeID, candidates []topology.PortID, p *message.Packet) topology.PortID

// OddEven is minimal-adaptive odd-even routing (Chiu's turn model) for
// regular mesh layers: deadlock-free within each layer with a single VC,
// no global restrictions, and real path diversity — the "fully adaptive
// network" UPP's recovery framework permits. Turns are restricted by
// column parity:
//
//	rule 1: no east-to-north turn at even columns, no north-to-west turn
//	        at odd columns;
//	rule 2: no east-to-south turn at even columns, no south-to-west turn
//	        at odd columns.
//
// The route computation below is the canonical minimal formulation of
// those rules; at every hop one or more minimal outputs are legal and the
// Selector chooses among them by downstream credit occupancy.
type OddEven struct {
	topo *topology.Topology
	sel  Selector
}

// NewOddEven returns odd-even routing over t with the given selector.
func NewOddEven(t *topology.Topology, sel Selector) *OddEven {
	return &OddEven{topo: t, sel: sel}
}

// NextPort implements Local.
func (r *OddEven) NextPort(cur, dst topology.NodeID, p *message.Packet) (topology.PortID, error) {
	cn := r.topo.Node(cur)
	dn := r.topo.Node(dst)
	if cn.Chiplet != dn.Chiplet {
		return topology.InvalidPort, fmt.Errorf("routing: odd-even across layers (%d -> %d)", cur, dst)
	}
	if cur == dst {
		return topology.LocalPort, nil
	}
	// Track the column where the packet entered this layer (the "source
	// column" of the odd-even formulation).
	if p != nil && p.RouteLayer != int16(cn.Chiplet) {
		p.RouteLayer = int16(cn.Chiplet)
		p.LayerEntryX = int16(cn.X)
	}
	srcX := cn.X
	if p != nil {
		srcX = int(p.LayerEntryX)
	}

	dirs := oddEvenDirs(cn.X, cn.Y, dn.X, dn.Y, srcX)
	candidates := make([]topology.PortID, 0, 2)
	for _, d := range dirs {
		pt := cn.PortTo(d)
		if pt == topology.InvalidPort {
			continue
		}
		if cn.Ports[pt].Link.Faulty {
			continue
		}
		candidates = append(candidates, pt)
	}
	if len(candidates) == 0 {
		return topology.InvalidPort, fmt.Errorf("routing: odd-even has no legal output at %d toward %d (faulty mesh? use up*/down*)", cur, dst)
	}
	if len(candidates) == 1 || r.sel == nil || p == nil {
		return candidates[0], nil
	}
	return r.sel(cur, candidates, p), nil
}

// oddEvenDirs returns the legal minimal directions per Chiu's ROUTE
// algorithm. Coordinates: East = +x, North = +y.
func oddEvenDirs(curX, curY, dstX, dstY, srcX int) []topology.Direction {
	var dirs []topology.Direction
	dx := dstX - curX
	dy := dstY - curY
	vertical := topology.North
	if dy < 0 {
		vertical = topology.South
	}
	switch {
	case dx == 0:
		dirs = append(dirs, vertical)
	case dx > 0: // eastbound
		if dy == 0 {
			dirs = append(dirs, topology.East)
			break
		}
		if curX%2 == 1 || curX == srcX {
			dirs = append(dirs, vertical)
		}
		if dstX%2 == 1 || dx != 1 {
			dirs = append(dirs, topology.East)
		}
	default: // westbound
		dirs = append(dirs, topology.West)
		if curX%2 == 0 && dy != 0 {
			dirs = append(dirs, vertical)
		}
	}
	return dirs
}
