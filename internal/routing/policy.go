package routing

import (
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// This file provides alternative egress-boundary policies used by the
// ablation experiments. The paper argues (Sec. V-D) that the static
// closest-boundary binding beats dynamic or arbitrary choices: any other
// selection sends packets through more distant boundary routers,
// lengthening paths and reducing throughput. The ablations quantify that
// argument by swapping only this policy while keeping everything else
// fixed.

// RandomEgressPolicy picks a uniformly random boundary router of the
// source chiplet per packet — the "dynamic binding" strawman of Sec. V-D.
// It preserves deadlock-recovery correctness (ingress stays statically
// bound, so UPP's signal-contention argument still holds) but routes many
// packets through distant boundaries.
type RandomEgressPolicy struct {
	rng *sim.RNG
}

// NewRandomEgressPolicy builds the policy with its own random stream.
func NewRandomEgressPolicy(seed uint64) *RandomEgressPolicy {
	return &RandomEgressPolicy{rng: sim.NewRNG(seed)}
}

// EgressBoundary implements BoundaryPolicy.
func (p *RandomEgressPolicy) EgressBoundary(t *topology.Topology, src, dst topology.NodeID) topology.NodeID {
	ch := &t.Chiplets[t.Node(src).Chiplet]
	return ch.Boundary[p.rng.Intn(len(ch.Boundary))]
}

// FarthestEgressPolicy picks the boundary router farthest from the source
// — the adversarial bound on binding quality.
type FarthestEgressPolicy struct{}

// EgressBoundary implements BoundaryPolicy.
func (FarthestEgressPolicy) EgressBoundary(t *topology.Topology, src, dst topology.NodeID) topology.NodeID {
	n := t.Node(src)
	ch := &t.Chiplets[n.Chiplet]
	best := ch.Boundary[0]
	bestD := -1
	for _, b := range ch.Boundary {
		bn := t.Node(b)
		d := absInt(n.X-bn.X) + absInt(n.Y-bn.Y)
		if d > bestD {
			bestD = d
			best = b
		}
	}
	return best
}

// SingleEgressPolicy funnels all inter-chiplet traffic of a chiplet
// through its first boundary router — the extreme concentration the
// composable baseline tends toward (Sec. III-B's "all packets via
// boundary router 2" observation).
type SingleEgressPolicy struct{}

// EgressBoundary implements BoundaryPolicy.
func (SingleEgressPolicy) EgressBoundary(t *topology.Topology, src, dst topology.NodeID) topology.NodeID {
	return t.Chiplets[t.Node(src).Chiplet].Boundary[0]
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
