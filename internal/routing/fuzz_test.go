package routing_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

// FuzzHierarchicalWalk drives the hierarchical router with arbitrary
// (src, dst, faults) combinations and asserts the walk terminates at the
// destination without loops, under both XY (healthy) and up*/down*
// (faulty) local routing.
func FuzzHierarchicalWalk(f *testing.F) {
	f.Add(uint16(0), uint16(63), uint8(0))
	f.Add(uint16(5), uint16(70), uint8(3))
	f.Add(uint16(79), uint16(0), uint8(10))
	f.Fuzz(func(t *testing.T, a, b uint16, faults uint8) {
		topo := topology.MustBuild(topology.BaselineConfig())
		nf := int(faults % 12)
		if nf > 0 {
			if _, err := topo.InjectFaults(nf, uint64(faults)); err != nil {
				t.Skip()
			}
		}
		var local routing.Local
		if nf > 0 {
			ud, err := routing.NewUpDown(topo)
			if err != nil {
				t.Fatalf("up*/down* on %d faults: %v", nf, err)
			}
			local = ud
		} else {
			local = routing.NewXY(topo)
		}
		h := routing.NewHierarchical(topo, local)
		src := topology.NodeID(int(a) % topo.NumNodes())
		dst := topology.NodeID(int(b) % topo.NumNodes())
		if src == dst {
			return
		}
		p := &message.Packet{Src: src, Dst: dst, Size: 1}
		routing.Prepare(topo, p, routing.DefaultPolicy{})
		cur := src
		for steps := 0; cur != dst; steps++ {
			if steps > topo.NumNodes()*2 {
				t.Fatalf("loop routing %d->%d (faults %d)", src, dst, nf)
			}
			out, err := h.NextPort(cur, p)
			if err != nil {
				t.Fatalf("route %d->%d at %d: %v", src, dst, cur, err)
			}
			if out == topology.LocalPort {
				if cur != dst {
					t.Fatalf("early ejection at %d routing %d->%d", cur, src, dst)
				}
				break
			}
			n := topo.Node(cur)
			if n.Ports[out].Link.Faulty {
				t.Fatalf("route crosses faulty link at %d", cur)
			}
			cur = n.Ports[out].Neighbor
		}
	})
}
