package routing

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

// XY is dimension-ordered routing for regular mesh layers: first move
// along X, then along Y. It is deadlock-free within each layer and is the
// paper's local algorithm for all healthy systems (Sec. VI).
type XY struct {
	Topo *topology.Topology
}

// NewXY returns XY routing over t.
func NewXY(t *topology.Topology) *XY { return &XY{Topo: t} }

// NextPort implements Local.
func (r *XY) NextPort(cur, dst topology.NodeID, _ *message.Packet) (topology.PortID, error) {
	cn := r.Topo.Node(cur)
	dn := r.Topo.Node(dst)
	if cn.Chiplet != dn.Chiplet {
		return topology.InvalidPort, fmt.Errorf("routing: XY across layers (%d -> %d)", cur, dst)
	}
	var dir topology.Direction
	switch {
	case dn.X > cn.X:
		dir = topology.East
	case dn.X < cn.X:
		dir = topology.West
	case dn.Y > cn.Y:
		dir = topology.North
	case dn.Y < cn.Y:
		dir = topology.South
	default:
		return topology.LocalPort, nil
	}
	p := cn.PortTo(dir)
	if p == topology.InvalidPort {
		return topology.InvalidPort, fmt.Errorf("routing: XY needs %s port at node %d", dir, cur)
	}
	if cn.Ports[p].Link.Faulty {
		return topology.InvalidPort, fmt.Errorf("routing: XY hit faulty link at node %d dir %s (use up*/down* on faulty systems)", cur, dir)
	}
	return p, nil
}
