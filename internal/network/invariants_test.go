package network_test

import (
	"testing"
	"testing/quick"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// checkQuiescentInvariants asserts that a drained network is pristine.
func checkQuiescentInvariants(t *testing.T, n *network.Network) {
	t.Helper()
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestCreditConservationAfterLoad: run a burst through the recovery-free
// network at a safe load, drain, and check every resource came back.
func TestCreditConservationAfterLoad(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.03, 12)
	g.Run(8000)
	g.SetRate(0)
	if err := n.Drain(100000, 20000); err != nil {
		t.Fatal(err)
	}
	checkQuiescentInvariants(t, n)
}

// TestEjectionBackpressure: a consumer that refuses to consume fills the
// ejection queue; heads wait in the network instead of overflowing the NI.
func TestEjectionBackpressure(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	cores := n.Topo.Cores()
	dst := cores[10]
	blocked := true
	n.NI(dst).Consume = func(p *message.Packet, _ int64) bool { return !blocked }
	// Send more packets than the ejection queue holds.
	for i := 0; i < 10; i++ {
		p := &message.Packet{Src: cores[i*2+20], Dst: dst, VNet: message.VNetRequest, Size: 1}
		n.NI(p.Src).Enqueue(p, 0)
	}
	n.Run(3000)
	if consumed := n.Stats.ConsumedPackets; consumed != 0 {
		t.Fatalf("consumed %d packets while blocked", consumed)
	}
	if free := n.NI(dst).FreeEjectionEntries(message.VNetRequest); free != 0 {
		t.Fatalf("ejection queue should be full, %d free", free)
	}
	blocked = false
	if err := n.Drain(50000, 10000); err != nil {
		t.Fatal(err)
	}
	if n.Stats.ConsumedPackets != 10 {
		t.Fatalf("consumed %d of 10", n.Stats.ConsumedPackets)
	}
	checkQuiescentInvariants(t, n)
}

// TestPerPacketFlitOrdering: NIs reassemble exactly Size flits per packet
// (the assembly map would diverge on duplication or loss). Exercised via
// a mixed-size burst between fixed endpoints.
func TestPerPacketFlitOrdering(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = 4
	n := network.MustNew(topo, cfg, network.None{})
	cores := n.Topo.Cores()
	want := 0
	for i := 0; i < 40; i++ {
		p := &message.Packet{
			Src:  cores[i%8],
			Dst:  cores[63-(i%5)],
			VNet: message.VNet(i % message.NumVNets),
			Size: 1 + 4*(i%2),
		}
		n.NI(p.Src).Enqueue(p, 0)
		want++
	}
	if err := n.Drain(100000, 20000); err != nil {
		t.Fatal(err)
	}
	if int(n.Stats.ConsumedPackets) != want {
		t.Fatalf("consumed %d of %d", n.Stats.ConsumedPackets, want)
	}
	checkQuiescentInvariants(t, n)
}

// TestMeasurementWindow: latency statistics cover only packets born after
// ResetMeasurement.
func TestMeasurementWindow(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	cores := n.Topo.Cores()
	p1 := &message.Packet{Src: cores[0], Dst: cores[3], VNet: 0, Size: 1}
	n.NI(cores[0]).Enqueue(p1, 0)
	if err := n.Drain(5000, 1000); err != nil {
		t.Fatal(err)
	}
	n.ResetMeasurement()
	if n.Stats.MeasuredPackets != 0 {
		t.Fatal("reset did not clear measured packets")
	}
	p2 := &message.Packet{Src: cores[0], Dst: cores[3], VNet: 0, Size: 1}
	n.NI(cores[0]).Enqueue(p2, n.Cycle())
	if err := n.Drain(5000, 1000); err != nil {
		t.Fatal(err)
	}
	if n.Stats.MeasuredPackets != 1 {
		t.Fatalf("measured %d packets, want 1", n.Stats.MeasuredPackets)
	}
	if n.AvgNetLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
}

// TestRandomBurstsDrain property-checks that arbitrary small bursts drain
// cleanly with all invariants intact (4 VCs avoids deadlock in the
// recovery-free scheme at these sizes).
func TestRandomBurstsDrain(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	err := quick.Check(func(seed uint64, count uint8) bool {
		cfg := network.DefaultConfig()
		cfg.Router.VCsPerVNet = 4
		cfg.Seed = seed
		n := network.MustNew(topo, cfg, network.None{})
		cores := n.Topo.Cores()
		k := int(count%32) + 1
		for i := 0; i < k; i++ {
			s := int(seed>>uint(i%32)) % len(cores)
			if s < 0 {
				s = -s
			}
			d := (s + i + 1) % len(cores)
			p := &message.Packet{Src: cores[s], Dst: cores[d], VNet: message.VNet(i % 3), Size: 1 + 4*(i%2)}
			n.NI(p.Src).Enqueue(p, 0)
		}
		if err := n.Drain(100000, 20000); err != nil {
			return false
		}
		return int(n.Stats.ConsumedPackets) == k
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchemeValidation rejects broken configurations.
func TestConfigValidation(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.EjectionDepth = 0
	if _, err := network.New(topo, cfg, network.None{}); err == nil {
		t.Fatal("accepted zero ejection depth")
	}
	cfg = network.DefaultConfig()
	cfg.Router.BufferDepth = 0
	if _, err := network.New(topo, cfg, network.None{}); err == nil {
		t.Fatal("accepted zero buffer depth")
	}
}

// TestScheduleHorizon: scheduling past the event wheel must fail loudly
// rather than wrap silently.
func TestScheduleHorizon(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-horizon schedule")
		}
	}()
	n.Schedule(n.Cycle()+10_000, func(int64) {})
}

// TestSchedulePast: scheduling in the past must also panic.
func TestSchedulePast(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	n.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past schedule")
		}
	}()
	n.Schedule(n.Cycle(), func(int64) {})
}
