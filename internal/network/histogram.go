package network

// latHistBuckets x latHistWidth covers latencies up to 4096 cycles at
// 4-cycle resolution; everything beyond lands in the overflow bucket.
const (
	latHistBuckets = 1024
	latHistWidth   = 4
)

// LatencyHistogram collects packet latencies for percentile reporting —
// tail latency matters for recovery schemes (a popup rescues a packet that
// would otherwise wait forever, but the rescue itself takes time).
type LatencyHistogram struct {
	buckets  [latHistBuckets + 1]uint64
	count    uint64
	maxValue uint64
}

// Add records one latency sample.
func (h *LatencyHistogram) Add(v uint64) {
	idx := v / latHistWidth
	if idx >= latHistBuckets {
		idx = latHistBuckets
	}
	h.buckets[idx]++
	h.count++
	if v > h.maxValue {
		h.maxValue = v
	}
}

// Count returns the sample count.
func (h *LatencyHistogram) Count() uint64 { return h.count }

// Max returns the largest sample.
func (h *LatencyHistogram) Max() uint64 { return h.maxValue }

// Percentile returns the p-quantile (0 < p <= 1) in cycles, with
// bucket-width resolution.
func (h *LatencyHistogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == latHistBuckets {
				return h.maxValue
			}
			return uint64(i)*latHistWidth + latHistWidth/2
		}
	}
	return h.maxValue
}

// Reset clears the histogram.
func (h *LatencyHistogram) Reset() { *h = LatencyHistogram{} }

// LatencyPercentile reports the p-quantile of measured packets' total
// latency (queueing + network).
func (n *Network) LatencyPercentile(p float64) uint64 { return n.latHist.Percentile(p) }

// MaxLatency reports the worst measured packet latency.
func (n *Network) MaxLatency() uint64 { return n.latHist.Max() }
