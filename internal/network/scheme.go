package network

import (
	"uppnoc/internal/message"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// SchemeCall is a deferred scheme action in the event wheel — the
// serializable replacement for closure-based Network.Schedule calls.
// The scheme defines its own Kind space and decodes the payload in
// OnScheduledCall; the network only stores and redelivers the struct,
// which is what lets a snapshot capture pending protocol timing (a
// closure cannot be serialized; this can).
type SchemeCall struct {
	// Kind is scheme-private (see core's uppCall* constants).
	Kind uint8
	// Node is the landing node, when the action targets one.
	Node topology.NodeID
	// A and B are scheme-defined scalar payloads (popup ID, signal
	// kind, VNet...).
	A, B uint64
	// Hop is a scheme-defined small index (signal hop position).
	Hop int32
	// Flit is an optional flit payload (popup latch fills); HasFlit
	// distinguishes "no flit" from a genuine zero value.
	Flit    message.Flit
	HasFlit bool
}

// Scheme is a deadlock-freedom approach plugged into the network: UPP
// (internal/core), composable routing (internal/composable), remote
// control (internal/remotectl), or None (fully adaptive with no recovery —
// used to demonstrate that integration-induced deadlocks really form).
//
// A scheme observes and manipulates the datapath through the routers'
// plugin API and the hooks below; the base datapath itself is identical
// across schemes, which is what makes the paper's comparisons meaningful.
//
// Concurrency contract (parallel kernel): every hook runs on the
// coordinating goroutine, never during the concurrent compute phase —
// StartOfCycle/EndOfCycle/OnRouterIdle bracket or follow the router
// walk, OnFlitArrived fires at event delivery, CanStartPacket during
// the sequential NI walk, and OnPacketEjected from the commit-phase
// replay of deferred ejections. Hooks may therefore freely touch global
// state, but a future scheme must not add router-initiated scheme calls
// to Router.Step without routing them through the commit log (see
// parallel.go and DESIGN.md §9).
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Policy selects egress boundary routers at injection time.
	Policy() routing.BoundaryPolicy
	// Attach wires the scheme to the network before simulation starts.
	Attach(n *Network)
	// StartOfCycle runs after event delivery and before router allocation:
	// schemes move protocol signals and popup flits here and claim
	// crossbar ports, which normal allocation then respects.
	StartOfCycle(cycle sim.Cycle)
	// EndOfCycle runs after routers and NIs: detection counters and
	// timeout logic live here.
	EndOfCycle(cycle sim.Cycle)
	// CanStartPacket gates the injection of a packet's head flit (remote
	// control's injection control). Called once per cycle for the packet
	// at the front of an injection queue until it returns true.
	CanStartPacket(ni *NI, p *message.Packet, cycle sim.Cycle) bool
	// OnFlitArrived observes every flit delivery at a router input and
	// returns extra buffer-write delay in cycles (remote control charges
	// +1 at boundary crossings).
	OnFlitArrived(node topology.NodeID, port topology.PortID, f message.Flit, cycle sim.Cycle) sim.Cycle
	// OnPacketEjected observes complete packet reassembly at an NI.
	OnPacketEjected(ni *NI, p *message.Packet, cycle sim.Cycle)
	// OnRouterIdle fires when the active-set kernel retires a router from
	// its per-cycle walk (no buffered flits remain). Schemes that keep
	// per-router state the naive kernel re-derives every cycle — UPP's
	// timeout counters — reset it here once instead of polling; the router
	// will not be observed again until a flit arrival wakes it. The naive
	// kernel never calls this hook.
	OnRouterIdle(node topology.NodeID, cycle sim.Cycle)
	// Diagnostic returns a human-readable snapshot of the scheme's live
	// protocol state (popup FSMs, tokens, control-plane buffers) for the
	// deadlock watchdog's stall report. Empty means nothing to report.
	Diagnostic() string
	// Inert reports that the scheme's StartOfCycle and EndOfCycle hooks
	// are provably no-ops right now AND will stay no-ops until some
	// network event re-engages the scheme — no live popup, outstanding
	// handshake, armed timeout or any other state that advances with the
	// clock. When everything else is idle too, the kernel uses this to
	// skip whole cycles in one jump (Network.Run/Drain), so a wrong true
	// here breaks bit-identity with the naive kernel: stateful schemes
	// must override it and err towards false. The BaseScheme default
	// (true) is only correct for schemes whose hooks are no-ops.
	Inert() bool
	// OnScheduledCall delivers a SchemeCall the scheme previously passed
	// to Network.ScheduleCall, at its scheduled cycle. Schemes that never
	// call ScheduleCall keep the no-op default.
	OnScheduledCall(c SchemeCall, cycle sim.Cycle)
	// Snapshot serializes the scheme's live protocol state (popup FSMs,
	// tokens, control-plane buffers) into a UPWS section; Restore
	// overwrites it from one written by the same scheme attached to an
	// identically-configured network. Stateless schemes keep the no-op
	// defaults. See DESIGN.md §14.
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader) error
}

// BaseScheme is a no-op Scheme for embedding; concrete schemes override
// the hooks they need.
type BaseScheme struct{}

// Policy returns the paper's static binding.
func (BaseScheme) Policy() routing.BoundaryPolicy { return routing.DefaultPolicy{} }

// Attach is a no-op.
func (BaseScheme) Attach(*Network) {}

// StartOfCycle is a no-op.
func (BaseScheme) StartOfCycle(sim.Cycle) {}

// EndOfCycle is a no-op.
func (BaseScheme) EndOfCycle(sim.Cycle) {}

// CanStartPacket admits every packet.
func (BaseScheme) CanStartPacket(*NI, *message.Packet, sim.Cycle) bool { return true }

// OnFlitArrived adds no delay.
func (BaseScheme) OnFlitArrived(topology.NodeID, topology.PortID, message.Flit, sim.Cycle) sim.Cycle {
	return 0
}

// OnPacketEjected is a no-op.
func (BaseScheme) OnPacketEjected(*NI, *message.Packet, sim.Cycle) {}

// OnRouterIdle is a no-op.
func (BaseScheme) OnRouterIdle(topology.NodeID, sim.Cycle) {}

// Diagnostic reports nothing.
func (BaseScheme) Diagnostic() string { return "" }

// Inert is always true for the no-op hooks: a scheme that overrides
// StartOfCycle or EndOfCycle with per-cycle state machines must override
// Inert too (see the interface comment).
func (BaseScheme) Inert() bool { return true }

// OnScheduledCall is a no-op (only schemes that use ScheduleCall see it).
func (BaseScheme) OnScheduledCall(SchemeCall, sim.Cycle) {}

// Snapshot writes nothing: the base scheme carries no mutable state.
func (BaseScheme) Snapshot(*snap.Writer) {}

// Restore reads nothing, mirroring Snapshot.
func (BaseScheme) Restore(*snap.Reader) error { return nil }

// None is the recovery-free fully-adaptive configuration: static-binding
// routing with no deadlock handling at all. Integration-induced deadlocks
// form and persist — it exists to demonstrate the problem UPP solves and
// to validate the deadlock watchdog.
type None struct{ BaseScheme }

// Name implements Scheme.
func (None) Name() string { return "none" }
