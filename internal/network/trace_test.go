package network_test

import (
	"strings"
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

func TestTracerCapturesLifecycle(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	var b strings.Builder
	n.SetTracer(network.WriteTracer(&b, 0))
	cores := topo.Cores()
	p := &message.Packet{Src: cores[0], Dst: cores[40], VNet: message.VNetRequest, Size: 1}
	n.NI(cores[0]).Enqueue(p, 0)
	if err := n.Drain(5000, 1000); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "inject") || !strings.Contains(out, "eject") {
		t.Fatalf("trace missing lifecycle events:\n%s", out)
	}
	if !strings.Contains(out, "pkt1") {
		t.Fatalf("trace missing packet id:\n%s", out)
	}
}

func TestTracerLimit(t *testing.T) {
	var b strings.Builder
	tr := network.WriteTracer(&b, 2)
	for i := 0; i < 5; i++ {
		tr(network.TraceEvent{Cycle: int64(i), Kind: "x", Detail: "d"})
	}
	if got := strings.Count(b.String(), "\n"); got != 2 {
		t.Fatalf("limit ignored: %d lines", got)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	if n.Tracing() {
		t.Fatal("tracing on by default")
	}
	// Trace with no tracer must be a no-op (and not panic).
	n.Trace("x", 0, "detail %d", 1)
}
