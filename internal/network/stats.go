package network

import (
	"uppnoc/internal/router"
	"uppnoc/internal/sim"
)

// Stats aggregates network-level counters. Latency sums cover packets born
// at or after MeasureStart (set by ResetMeasurement after warmup), matching
// the paper's warmup-then-measure methodology.
type Stats struct {
	MeasureStart sim.Cycle

	BornPackets     uint64
	InjectedPackets uint64
	InjectedFlits   uint64
	EjectedFlits    uint64
	EjectedPackets  uint64
	ConsumedPackets uint64

	MeasuredPackets uint64
	NetLatencySum   uint64
	QueueLatencySum uint64

	// measureFlits0 snapshots EjectedFlits at measurement start for the
	// throughput window.
	measureFlits0 uint64

	// Scheme counters (UPP fills these; baselines leave them zero).
	UpwardPackets   uint64 // packets selected for popup (Fig. 12/13)
	PopupsStarted   uint64 // popups that received an ack and drained
	PopupsCancelled uint64 // false positives resolved by UPP_stop
	PopupsCompleted uint64 // popup packets fully ejected
	SignalsSent     uint64 // UPP_req/ack/stop hop transmissions
	// ReservationsGranted counts successful ejection-entry reservations.
	ReservationsGranted uint64
	// InjectionHolds counts cycles packets spent gated by injection
	// control (remote control).
	InjectionHolds uint64

	// Robustness counters (runtime fault injection and UPP signal retry;
	// all stay zero in fault-free runs).
	SignalRetries  uint64 // req/stop re-sends after a signal timeout
	PopupsAborted  uint64 // popups force-retired (retry exhaustion or a lost post-stop ack)
	SignalsDropped uint64 // protocol-signal transmissions lost to fault injection
	SignalsDelayed uint64 // protocol-signal transmissions delayed by fault injection
	LateSignals    uint64 // arrivals for already-retired popups, discarded
	LinkFlaps      uint64 // transient link-outage windows applied
	EjectionStalls uint64 // NI consume passes suppressed by an injected PE stall

	// Dynamic-reconfiguration counters (internal/reconfig; all stay zero
	// without a reconfiguration engine attached).
	Reconfigs           uint64 // routing-epoch transitions begun
	ReconfigsDrainless  uint64 // transitions run without an injection hold (CDG-compatible)
	ReconfigsEpoch      uint64 // transitions run with the injection fence (CDG-incompatible)
	RouteMigrations     uint64 // old-epoch packets migrated onto new tables at route computation
	HeadsMigrated       uint64 // waiting wormhole heads unrouted off fenced ports
	LinksKilled         uint64 // persistent link failures applied
	LinksRevived        uint64 // persistent links healed (hot-add)
	ReconfigHeldStreams uint64 // stream starts deferred by the injection fence
}

// ResetMeasurement starts a fresh measurement window at the given cycle.
func (n *Network) ResetMeasurement() {
	s := &n.Stats
	s.MeasureStart = n.cycle
	s.MeasuredPackets = 0
	s.NetLatencySum = 0
	s.QueueLatencySum = 0
	s.measureFlits0 = s.EjectedFlits
	n.latHist.Reset()
}

// AvgNetLatency returns the mean network latency (inject to eject) of
// measured packets, in cycles.
func (n *Network) AvgNetLatency() float64 {
	if n.Stats.MeasuredPackets == 0 {
		return 0
	}
	return float64(n.Stats.NetLatencySum) / float64(n.Stats.MeasuredPackets)
}

// AvgQueueLatency returns the mean injection-queue latency of measured
// packets, in cycles.
func (n *Network) AvgQueueLatency() float64 {
	if n.Stats.MeasuredPackets == 0 {
		return 0
	}
	return float64(n.Stats.QueueLatencySum) / float64(n.Stats.MeasuredPackets)
}

// AvgTotalLatency is queueing plus network latency.
func (n *Network) AvgTotalLatency() float64 { return n.AvgNetLatency() + n.AvgQueueLatency() }

// Throughput returns ejected flits per cycle per core over the
// measurement window.
func (n *Network) Throughput() float64 {
	window := n.cycle - n.Stats.MeasureStart
	if window <= 0 {
		return 0
	}
	flits := n.Stats.EjectedFlits - n.Stats.measureFlits0
	return float64(flits) / float64(window) / float64(len(n.Topo.Cores()))
}

// RouterStats sums the per-router datapath counters (energy model input).
func (n *Network) RouterStats() router.Stats {
	var s router.Stats
	for _, r := range n.Routers {
		rs := r.StatsSnapshot()
		s.BufferWrites += rs.BufferWrites
		s.BufferReads += rs.BufferReads
		s.CrossbarTravs += rs.CrossbarTravs
		s.LinkTravs += rs.LinkTravs
		s.SARequests += rs.SARequests
		s.SAGrants += rs.SAGrants
		s.UpFlits += rs.UpFlits
	}
	return s
}
