package network

import (
	"fmt"

	"uppnoc/internal/routing"
	"uppnoc/internal/topology"
)

// This file is the network half of dynamic reconfiguration (DESIGN.md
// §15): routing-epoch transitions, link fencing toward a permanent cut,
// and the persistent kill/revive primitives. The orchestration — when to
// fence, when a link is quiet, whether the old and new routing functions
// may coexist under load — lives in internal/reconfig; the network only
// provides mechanism, keeping every step deterministic and kernel
// bit-identical.

// RouteEpoch returns the current routing epoch. Packets are stamped with
// it at head injection and keep routing under their stamped epoch's
// tables until delivery or migration.
func (n *Network) RouteEpoch() uint32 { return n.routeEpoch }

// TransitionActive reports whether a routing-epoch transition is in
// progress (the previous epoch's tables are still installed).
func (n *Network) TransitionActive() bool { return n.prevHier != nil }

// InjectHold reports whether new packet streams are currently held (the
// epoch-based transition's injection fence).
func (n *Network) InjectHold() bool { return n.injectHold }

// OldEpochLive returns the number of live packets still stamped with the
// previous routing epoch. Zero means the old epoch has drained and
// FinishRouteTransition may run. Only meaningful while TransitionActive.
func (n *Network) OldEpochLive() int64 {
	return n.epochLive[(n.routeEpoch-1)&1].Load()
}

// EpochLive returns the live-packet count of the current routing epoch.
func (n *Network) EpochLive() int64 {
	return n.epochLive[n.routeEpoch&1].Load()
}

// BeginRouteTransition installs local as the new per-layer routing
// function under a fresh routing epoch, keeping the previous epoch's
// tables live for packets already in flight. With hold set, new packet
// streams are fenced until FinishRouteTransition (the epoch-based
// transition for CDG-incompatible routing pairs); without it, injection
// continues under the new tables immediately (the drainless transition
// for proven-compatible pairs). At most one transition may be active.
func (n *Network) BeginRouteTransition(local routing.Local, hold bool) {
	if n.prevHier != nil {
		panic("network: BeginRouteTransition with a transition already active")
	}
	n.routeEpoch++
	n.prevHier = n.hier
	n.hier = routing.NewHierarchical(n.Topo, local)
	n.injectHold = hold
	n.Stats.Reconfigs++
	if hold {
		n.Stats.ReconfigsEpoch++
	} else {
		n.Stats.ReconfigsDrainless++
	}
}

// FinishRouteTransition retires the previous epoch's tables and lifts the
// injection hold. The caller (the reconfiguration engine) must have
// observed OldEpochLive() == 0: a surviving old-epoch packet would route
// with no tables to consult.
func (n *Network) FinishRouteTransition() {
	if n.prevHier == nil {
		panic("network: FinishRouteTransition without an active transition")
	}
	if live := n.OldEpochLive(); live != 0 {
		panic(fmt.Sprintf("network: FinishRouteTransition with %d old-epoch packets live", live))
	}
	n.prevHier = nil
	n.injectHold = false
}

// PrevHier returns the previous routing epoch's hierarchical tables while
// a transition is active (nil otherwise). The reconfiguration engine and
// path-divergence assertions consult it.
func (n *Network) PrevHier() *routing.Hierarchical { return n.prevHier }

// SetLinkFenced raises or clears the fence on l: both endpoint output
// ports stop granting new wormholes (in-flight worms finish — wormhole
// atomicity), and route computations that would cross the fence migrate
// their packet onto the current epoch instead (see Route). Fencing is the
// drain step between announcing a permanent cut and applying it.
func (n *Network) SetLinkFenced(l *topology.Link, fenced bool) {
	if n.Routers[l.A].PortFenced(l.APort) == fenced {
		return
	}
	n.Routers[l.A].SetPortFenced(l.APort, fenced)
	n.Routers[l.B].SetPortFenced(l.BPort, fenced)
	if fenced {
		n.fencedLinks++
	} else {
		n.fencedLinks--
	}
}

// UnrouteFencedHeads rescinds the routes of waiting wormhole heads bound
// for a fenced port at both endpoints of l, so their next route
// computation migrates them onto the current epoch's tables. Returns the
// number of heads migrated; the count is folded into Stats by the caller
// (the engine), keeping it kernel-identical.
func (n *Network) UnrouteFencedHeads(l *topology.Link) int {
	return n.Routers[l.A].UnrouteFencedHeads() + n.Routers[l.B].UnrouteFencedHeads()
}

// LinkQuiet reports that no buffered flit at either endpoint still needs
// l: no input VC holds an allocation onto the fenced ports and (for the
// output-queued router) the staging FIFOs behind them are empty. Flits
// already on the wire are unaffected by a cut — delivery was scheduled at
// send time — so quiet endpoints make the cut safe.
func (n *Network) LinkQuiet(l *topology.Link) bool {
	return n.Routers[l.A].PortQuiet(l.APort) && n.Routers[l.B].PortQuiet(l.BPort)
}

// KillLink applies a persistent link failure: the link goes Faulty (a
// routing-level property — rebuilt tables exclude it) and both endpoint
// ports close permanently. Unlike SetLinkDown this is not a transient
// flap: it does not count toward LinkFlaps and is never cleared by a
// fault plan. The caller is responsible for having fenced and drained the
// link first; any fence stays up so stale old-epoch lookups keep
// migrating instead of wedging against the closed port.
func (n *Network) KillLink(l *topology.Link) {
	l.Faulty = true
	l.Down = true
	n.Routers[l.A].SetPortDown(l.APort, true)
	n.Routers[l.B].SetPortDown(l.BPort, true)
	n.Stats.LinksKilled++
}

// ReviveLink heals a Faulty link (the hot-add event): the link carries
// traffic again once a routing transition installs tables that use it.
func (n *Network) ReviveLink(l *topology.Link) {
	l.Faulty = false
	l.Down = false
	n.Routers[l.A].SetPortDown(l.APort, false)
	n.Routers[l.B].SetPortDown(l.BPort, false)
	n.Stats.LinksRevived++
}

// AddHeadsMigrated folds an UnrouteFencedHeads count into Stats.
func (n *Network) AddHeadsMigrated(count int) {
	n.Stats.HeadsMigrated += uint64(count)
}

// RestoreRouteTables installs the current and previous routing tables
// during a snapshot restore. The epoch scalars were restored from the
// snapshot body; the tables themselves are re-derived by the
// reconfiguration engine (a SnapshotExtra) from its replayed event
// cursor, because routing tables are pure functions of the topology's
// Faulty set at each epoch.
func (n *Network) RestoreRouteTables(cur, prev *routing.Hierarchical) {
	if cur != nil {
		n.hier = cur
	}
	n.prevHier = prev
}

// Restoring reports that the network is mid-ReadSnapshot: the attached
// fault injector's BeginCycle is being replayed purely to resync cursors,
// so state-changing engines must not re-apply events.
func (n *Network) Restoring() bool { return n.restoring }
