package network

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/topology"
)

// CheckQuiescent verifies that an idle network is pristine: every buffer
// empty, every VC idle and unheld, every credit returned, every
// allocation released, every NI queue empty and every ejection
// reservation recycled. Any violation after a drain is a resource leak in
// the datapath or a scheme — tests and the verification tooling call this
// after every workload.
//
// Scaling: up to diagDeepMaxNodes nodes (or always under -tags uppdebug)
// every port and VC is inspected. Above that the per-VC interior checks
// (idle state, hold bits, credit counts, allocation leaks) are skipped and
// the check relies on the O(1)-per-node aggregates — buffered-flit counts,
// staged counts, NI queue depths, ejection bookkeeping and global flit
// conservation — which still catch any leaked flit or queue entry, though
// not a silently miscounted credit. uppdebug restores the exhaustive walk.
func (n *Network) CheckQuiescent() error {
	deep := diagDeepAlways || len(n.Topo.Nodes) <= diagDeepMaxNodes
	for i := range n.Topo.Nodes {
		node := &n.Topo.Nodes[i]
		r := n.Routers[node.ID]
		// The effective per-VC depth is what credits count against —
		// smaller than the budget depth for buffer-splitting variants.
		depth := int16(r.Config().BufferDepth)
		if r.Buffered() != 0 {
			return fmt.Errorf("network: node %d still buffers %d flits", node.ID, r.Buffered())
		}
		for pi := range node.Ports {
			if staged := r.StagedCount(topology.PortID(pi)); staged != 0 {
				return fmt.Errorf("network: node %d out[%d] still stages %d flits", node.ID, pi, staged)
			}
			if !deep {
				continue
			}
			for vi := 0; vi < n.Cfg.Router.NumVCs(); vi++ {
				vc := r.VCAt(topology.PortID(pi), vi)
				if vc.State != router.VCIdle || !vc.Empty() {
					return fmt.Errorf("network: node %d in[%d] vc%d not idle", node.ID, pi, vi)
				}
				if vc.Hold {
					return fmt.Errorf("network: node %d in[%d] vc%d held", node.ID, pi, vi)
				}
				if pi == 0 {
					continue
				}
				if c := r.OutCredits(topology.PortID(pi), vi); c != depth {
					return fmt.Errorf("network: node %d out[%d] vc%d credits %d != %d", node.ID, pi, vi, c, depth)
				}
				if r.OutBusy(topology.PortID(pi), vi) {
					return fmt.Errorf("network: node %d out[%d] vc%d allocation leaked", node.ID, pi, vi)
				}
			}
		}
		ni := n.NIs[node.ID]
		if ni.Pending() != 0 {
			return fmt.Errorf("network: NI %d has %d pending items", node.ID, ni.Pending())
		}
		for v := 0; v < message.NumVNets; v++ {
			if got := ni.FreeEjectionEntries(message.VNet(v)); got != n.Cfg.EjectionDepth {
				return fmt.Errorf("network: NI %d vnet %d has %d free ejection entries, want %d", node.ID, v, got, n.Cfg.EjectionDepth)
			}
			if ni.ReservedEntries(message.VNet(v)) != 0 {
				return fmt.Errorf("network: NI %d vnet %d leaked a reservation", node.ID, v)
			}
		}
	}
	if n.Stats.InjectedFlits != n.Stats.EjectedFlits {
		return fmt.Errorf("network: flit conservation violated: injected %d, ejected %d", n.Stats.InjectedFlits, n.Stats.EjectedFlits)
	}
	return nil
}
