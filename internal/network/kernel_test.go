package network

import (
	"strings"
	"testing"

	"uppnoc/internal/router"
	"uppnoc/internal/topology"
)

// TestValidateWheelHorizon: link latency + pipeline depth combinations the
// event wheel cannot cover must be rejected at config time, not by
// Schedule's runtime panic mid-simulation.
func TestValidateWheelHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Router.LinkLatency = wheelSize - router.PipelineDepth - 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("latency just inside the horizon rejected: %v", err)
	}
	cfg.Router.LinkLatency = wheelSize - router.PipelineDepth
	err := cfg.Validate()
	if err == nil {
		t.Fatalf("latency %d reaching the %d-cycle wheel horizon accepted", cfg.Router.LinkLatency, wheelSize)
	}
	if !strings.Contains(err.Error(), "wheel") {
		t.Fatalf("horizon error does not name the wheel: %v", err)
	}
}

// TestValidateKernelName: only the three kernel names (or empty) pass.
func TestValidateKernelName(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range []string{"", KernelActive, KernelNaive, KernelParallel} {
		cfg.Kernel = k
		if err := cfg.Validate(); err != nil {
			t.Fatalf("kernel %q rejected: %v", k, err)
		}
	}
	cfg.Kernel = "turbo"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown kernel name accepted")
	}
}

// TestValidateShards: negative shard counts are a config error; zero means
// "resolve at New" and any positive count is legal (clamped later).
func TestValidateShards(t *testing.T) {
	cfg := DefaultConfig()
	for _, s := range []int{0, 1, 7, 1024} {
		cfg.Shards = s
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Shards=%d rejected: %v", s, err)
		}
	}
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
}

// TestKernelResolution covers the Config.Kernel -> UPP_KERNEL -> default
// resolution chain in New.
func TestKernelResolution(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	build := func(cfgKernel string) (*Network, error) {
		cfg := DefaultConfig()
		cfg.Kernel = cfgKernel
		return New(topo, cfg, None{})
	}

	t.Run("default", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", "")
		n, err := build("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelActive {
			t.Fatalf("default kernel %q, want %q", n.Kernel(), KernelActive)
		}
	})
	t.Run("env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", KernelNaive)
		n, err := build("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelNaive {
			t.Fatalf("kernel %q, want %q from UPP_KERNEL", n.Kernel(), KernelNaive)
		}
	})
	t.Run("config beats env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", KernelNaive)
		n, err := build(KernelActive)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelActive {
			t.Fatalf("kernel %q, want explicit config to win over env", n.Kernel())
		}
	})
	t.Run("bad env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", "turbo")
		if _, err := build(""); err == nil {
			t.Fatal("invalid UPP_KERNEL accepted")
		}
	})
	t.Run("parallel env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", KernelParallel)
		n, err := build("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelParallel {
			t.Fatalf("kernel %q, want %q from UPP_KERNEL", n.Kernel(), KernelParallel)
		}
	})
}

// TestShardResolution covers the Config.Shards -> UPP_SHARDS -> GOMAXPROCS
// resolution chain of the parallel kernel, including the clamp to the node
// count and rejection of malformed env values.
func TestShardResolution(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	build := func(shards int) (*Network, error) {
		cfg := DefaultConfig()
		cfg.Kernel = KernelParallel
		cfg.Shards = shards
		return New(topo, cfg, None{})
	}

	t.Run("config wins", func(t *testing.T) {
		t.Setenv("UPP_SHARDS", "2")
		n, err := build(3)
		if err != nil {
			t.Fatal(err)
		}
		if n.Shards() != 3 {
			t.Fatalf("got %d shards, want explicit config value 3", n.Shards())
		}
	})
	t.Run("env", func(t *testing.T) {
		t.Setenv("UPP_SHARDS", "5")
		n, err := build(0)
		if err != nil {
			t.Fatal(err)
		}
		if n.Shards() != 5 {
			t.Fatalf("got %d shards, want 5 from UPP_SHARDS", n.Shards())
		}
	})
	t.Run("clamped to node count", func(t *testing.T) {
		t.Setenv("UPP_SHARDS", "")
		n, err := build(10_000)
		if err != nil {
			t.Fatal(err)
		}
		if n.Shards() != topo.NumNodes() {
			t.Fatalf("got %d shards, want clamp to %d nodes", n.Shards(), topo.NumNodes())
		}
	})
	t.Run("bad env", func(t *testing.T) {
		for _, bad := range []string{"zero", "0", "-3"} {
			t.Setenv("UPP_SHARDS", bad)
			if _, err := build(0); err == nil {
				t.Fatalf("UPP_SHARDS=%q accepted", bad)
			}
		}
	})
	t.Run("other kernels ignore shards", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Kernel = KernelActive
		cfg.Shards = 4
		n, err := New(topo, cfg, None{})
		if err != nil {
			t.Fatal(err)
		}
		if n.Shards() != 0 {
			t.Fatalf("active kernel reports %d shards, want 0", n.Shards())
		}
	})
}
