package network

import (
	"strings"
	"testing"

	"uppnoc/internal/router"
	"uppnoc/internal/topology"
)

// TestValidateWheelHorizon: link latency + pipeline depth combinations the
// event wheel cannot cover must be rejected at config time, not by
// Schedule's runtime panic mid-simulation.
func TestValidateWheelHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Router.LinkLatency = wheelSize - router.PipelineDepth - 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("latency just inside the horizon rejected: %v", err)
	}
	cfg.Router.LinkLatency = wheelSize - router.PipelineDepth
	err := cfg.Validate()
	if err == nil {
		t.Fatalf("latency %d reaching the %d-cycle wheel horizon accepted", cfg.Router.LinkLatency, wheelSize)
	}
	if !strings.Contains(err.Error(), "wheel") {
		t.Fatalf("horizon error does not name the wheel: %v", err)
	}
}

// TestValidateKernelName: only the two kernel names (or empty) pass.
func TestValidateKernelName(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range []string{"", KernelActive, KernelNaive} {
		cfg.Kernel = k
		if err := cfg.Validate(); err != nil {
			t.Fatalf("kernel %q rejected: %v", k, err)
		}
	}
	cfg.Kernel = "turbo"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown kernel name accepted")
	}
}

// TestKernelResolution covers the Config.Kernel -> UPP_KERNEL -> default
// resolution chain in New.
func TestKernelResolution(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	build := func(cfgKernel string) (*Network, error) {
		cfg := DefaultConfig()
		cfg.Kernel = cfgKernel
		return New(topo, cfg, None{})
	}

	t.Run("default", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", "")
		n, err := build("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelActive {
			t.Fatalf("default kernel %q, want %q", n.Kernel(), KernelActive)
		}
	})
	t.Run("env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", KernelNaive)
		n, err := build("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelNaive {
			t.Fatalf("kernel %q, want %q from UPP_KERNEL", n.Kernel(), KernelNaive)
		}
	})
	t.Run("config beats env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", KernelNaive)
		n, err := build(KernelActive)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kernel() != KernelActive {
			t.Fatalf("kernel %q, want explicit config to win over env", n.Kernel())
		}
	})
	t.Run("bad env", func(t *testing.T) {
		t.Setenv("UPP_KERNEL", "turbo")
		if _, err := build(""); err == nil {
			t.Fatal("invalid UPP_KERNEL accepted")
		}
	})
}
