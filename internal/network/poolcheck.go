package network

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

// CheckNoReleasedInFlight walks all live simulation state that can hold
// a packet pointer — router input VCs, NI injection/stream/reassembly/
// consumption structures, and undelivered event-wheel entries — and
// reports an error if any of it references a released (freelisted)
// packet. A hit means some component kept a pointer across the pool's
// single release point (NI consumption) — a reuse-after-release bug.
//
// The walk is O(system size) and intended for soak tests and the
// uppdebug build, not the per-cycle hot path.
func (n *Network) CheckNoReleasedInFlight() error {
	bad := func(where string, p *message.Packet) error {
		return fmt.Errorf("network: released packet %d (gen %d) still referenced by %s",
			p.ID, p.Generation(), where)
	}
	for _, r := range n.Routers {
		for port := range r.TopoNode().Ports {
			for vcIdx := 0; vcIdx < n.Cfg.Router.NumVCs(); vcIdx++ {
				var err error
				r.VCAt(topology.PortID(port), vcIdx).Scan(func(f message.Flit) {
					if err == nil && f.Pkt.Released() {
						err = bad(fmt.Sprintf("router %d port %d vc %d", r.NodeID(), port, vcIdx), f.Pkt)
					}
				})
				if err != nil {
					return err
				}
			}
		}
		var err error
		r.ScanStaged(func(f message.Flit) {
			if err == nil && f.Pkt.Released() {
				err = bad(fmt.Sprintf("router %d staging", r.NodeID()), f.Pkt)
			}
		})
		if err != nil {
			return err
		}
	}
	for _, ni := range n.NIs {
		for v := range ni.injQ {
			q := &ni.injQ[v]
			for i := 0; i < q.n; i++ {
				if p := q.buf[(q.head+i)%len(q.buf)]; p.Released() {
					return bad(fmt.Sprintf("ni %d injQ[%d]", ni.Node, v), p)
				}
			}
			if ni.active[v] && ni.streams[v].pkt.Released() {
				return bad(fmt.Sprintf("ni %d stream[%d]", ni.Node, v), ni.streams[v].pkt)
			}
		}
		for i := range ni.asm {
			if p := ni.asm[i].pkt; p != nil && p.Released() {
				return bad(fmt.Sprintf("ni %d reassembly slot %d", ni.Node, i), p)
			}
		}
		for i := range ni.complete {
			if p := ni.complete[i].pkt; p.Released() {
				return bad(fmt.Sprintf("ni %d completion queue entry %d", ni.Node, i), p)
			}
		}
	}
	for s := range n.wheel {
		for i := range n.wheel[s] {
			e := &n.wheel[s][i]
			if e.kind == evFlit && e.flit.Pkt.Released() {
				return bad(fmt.Sprintf("wheel slot %d entry %d", s, i), e.flit.Pkt)
			}
		}
	}
	return nil
}
