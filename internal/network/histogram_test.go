package network_test

import (
	"testing"
	"testing/quick"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func TestHistogramBasics(t *testing.T) {
	var h network.LatencyHistogram
	if h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile nonzero")
	}
	for v := uint64(1); v <= 100; v++ {
		h.Add(v)
	}
	if h.Count() != 100 || h.Max() != 100 {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
	p50 := h.Percentile(0.5)
	if p50 < 44 || p50 > 56 {
		t.Fatalf("p50 = %d, want ~50", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 92 || p99 > 104 {
		t.Fatalf("p99 = %d, want ~99", p99)
	}
	h.Add(1 << 20) // overflow bucket
	if got := h.Percentile(1.0); got != 1<<20 {
		t.Fatalf("p100 with overflow = %d", got)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramMonotonePercentiles(t *testing.T) {
	err := quick.Check(func(vals []uint16) bool {
		var h network.LatencyHistogram
		for _, v := range vals {
			h.Add(uint64(v))
		}
		last := uint64(0)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			q := h.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNetworkPercentiles(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.02, 5)
	g.Run(2000)
	n.ResetMeasurement()
	g.Run(10000)
	p50, p99 := n.LatencyPercentile(0.5), n.LatencyPercentile(0.99)
	if p50 == 0 || p99 < p50 {
		t.Fatalf("p50=%d p99=%d", p50, p99)
	}
	if n.MaxLatency() < p99 {
		t.Fatalf("max %d < p99 %d", n.MaxLatency(), p99)
	}
}
