package network

import (
	"fmt"
	"strings"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// StallDiagnostic is the deadlock watchdog's structured report, returned
// by Drain when no packet ejects for the stall limit. It captures
// everything needed to understand the wedge without re-running: where the
// flits sit (per-VNet counts and the occupancy render), what the vertical
// links see (the quantity UPP's detection watches), and the attached
// scheme's live protocol state via the Diagnostic hook. All fields derive
// purely from simulation state, so fixed-seed runs produce bit-identical
// diagnostics across the three cycle kernels.
type StallDiagnostic struct {
	Cycle      sim.Cycle
	StallLimit sim.Cycle
	InFlight   int
	// BufferedFlits counts flits held in router VC buffers, per VNet.
	BufferedFlits [message.NumVNets]int
	// NIPending sums in-flight work at the NIs (queued, streaming,
	// reassembling, awaiting consumption).
	NIPending int
	// Occupancy and UpPorts are the render.go snapshots.
	Occupancy string
	UpPorts   string
	// SchemeName/SchemeState are the attached scheme and its Diagnostic
	// output (live popup FSMs for UPP; empty for schemes with no
	// protocol state).
	SchemeName  string
	SchemeState string
	// RouteEpoch is the current routing epoch; ReconfigPending marks a
	// stall with a reconfiguration transition in progress (old tables
	// still installed, injection held, or links fenced), with
	// OldEpochLive the packets still pinning the old tables — the first
	// things to check when a stall coincides with a reconfiguration.
	RouteEpoch      uint32
	ReconfigPending bool
	OldEpochLive    int64
}

// Error implements error. The first line keeps the historical message
// (tests and callers match on "no ejection"); the rest is the dump.
func (d *StallDiagnostic) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network: no ejection for %d cycles with %d packets in flight (deadlock?)",
		d.StallLimit, d.InFlight)
	if d.ReconfigPending {
		fmt.Fprintf(&b, " [reconfig pending: epoch %d, old-epoch live %d]", d.RouteEpoch, d.OldEpochLive)
	}
	fmt.Fprintf(&b, "\nstalled at cycle %d; NI pending %d; buffered flits per vnet:", d.Cycle, d.NIPending)
	for v := 0; v < message.NumVNets; v++ {
		fmt.Fprintf(&b, " %s=%d", message.VNet(v), d.BufferedFlits[v])
	}
	b.WriteByte('\n')
	b.WriteString(d.Occupancy)
	b.WriteString(d.UpPorts)
	if d.SchemeState != "" {
		fmt.Fprintf(&b, "scheme %s:\n%s", d.SchemeName, d.SchemeState)
	}
	return b.String()
}

// stallDiagnostic assembles the watchdog report for the current state.
func (n *Network) stallDiagnostic(stallLimit sim.Cycle) *StallDiagnostic {
	d := &StallDiagnostic{
		Cycle:           n.cycle,
		StallLimit:      stallLimit,
		InFlight:        n.InFlight(),
		Occupancy:       n.RenderOccupancy(),
		UpPorts:         n.RenderUpPorts(),
		SchemeName:      n.scheme.Name(),
		SchemeState:     n.scheme.Diagnostic(),
		RouteEpoch:      n.routeEpoch,
		ReconfigPending: n.prevHier != nil || n.injectHold || n.fencedLinks > 0,
		OldEpochLive:    n.OldEpochLive(),
	}
	nvc := n.Cfg.Router.NumVCs()
	for _, r := range n.Routers {
		for pi := range r.TopoNode().Ports {
			for vi := 0; vi < nvc; vi++ {
				vc := r.VCAt(topology.PortID(pi), vi)
				if l := vc.Len(); l > 0 {
					d.BufferedFlits[n.Cfg.Router.VCVNet(vi)] += l
				}
			}
		}
	}
	for _, ni := range n.NIs {
		d.NIPending += ni.Pending()
	}
	return d
}
