package network

import "uppnoc/internal/message"

// pktRing is a growable ring buffer of packet pointers — the NI
// injection queue. The previous representation (`q = append(q, p)` +
// `q = q[1:]` to dequeue) marched through its backing array and
// reallocated once per wraparound, a steady-state allocation per queue;
// the ring reuses its slots and zeroes vacated ones so dequeued packets
// are not retained.
type pktRing struct {
	buf  []*message.Packet
	head int
	n    int
}

// Len returns the queue depth.
func (q *pktRing) Len() int { return q.n }

// Front returns the oldest packet without removing it; nil when empty.
func (q *pktRing) Front() *message.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Push appends a packet, growing the ring geometrically when full (an
// amortized warm-up cost; a warmed queue never grows again).
func (q *pktRing) Push(p *message.Packet) {
	if q.n == len(q.buf) {
		grown := make([]*message.Packet, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

// Pop removes and returns the oldest packet, zeroing its slot.
func (q *pktRing) Pop() *message.Packet {
	if q.n == 0 {
		panic("network: pop from empty injection queue")
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}
