//go:build uppdebug

package network

// diagDeepAlways: uppdebug builds run the exhaustive diagnostic walks on
// every network regardless of size; see diagdebug_off.go for the default.
const diagDeepAlways = true
