package network

import (
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// SignalKind classifies a UPP protocol signal transmission for fault
// injection (internal/faults keys its per-kind drop probabilities on it).
type SignalKind uint8

// The three UPP protocol signals.
const (
	SignalReq SignalKind = iota
	SignalAck
	SignalStop
	// NumSignalKinds sizes per-kind probability tables.
	NumSignalKinds = 3
)

// Fate is a fault injector's verdict on one signal transmission: lose it
// on the wire, or deliver it Delay extra cycles late. The zero value is a
// healthy delivery.
type Fate struct {
	Drop  bool
	Delay sim.Cycle
}

// FaultInjector is the runtime fault-injection hook. An implementation
// (internal/faults) must be deterministic in its own seed and stateless
// with respect to call order, so that the three cycle kernels — which may
// consult it a different number of times — stay bit-identical:
//
//   - BeginCycle runs coordinator-side at the top of every Step, before
//     event delivery, and applies scheduled state changes (link flaps).
//   - SignalFate decides drop/delay for one protocol-signal transmission,
//     keyed purely on (kind, popup, hop, cycle).
//   - EjectionStalled reports whether an NI's PE consumption is frozen
//     this cycle, keyed purely on (node, cycle).
type FaultInjector interface {
	BeginCycle(cycle sim.Cycle)
	SignalFate(kind SignalKind, popupID uint64, hop int, cycle sim.Cycle) Fate
	EjectionStalled(node topology.NodeID, cycle sim.Cycle) bool
}

// SetFaultInjector attaches a runtime fault injector. Pass nil to detach.
func (n *Network) SetFaultInjector(fi FaultInjector) { n.faults = fi }

// FaultInjector returns the attached runtime fault injector, or nil.
// Checkpoint code uses it to include stateful injectors (the
// reconfiguration engine implements SnapshotExtra) in UPWS snapshots.
func (n *Network) FaultInjector() FaultInjector { return n.faults }

// SignalFate consults the attached injector for one protocol-signal
// transmission; without an injector every signal is delivered healthy.
// Drops and delays are counted, and delays are clamped below the event
// wheel horizon so the scheduled arrival always fits.
func (n *Network) SignalFate(kind SignalKind, popupID uint64, hop int, cycle sim.Cycle) Fate {
	if n.faults == nil {
		return Fate{}
	}
	f := n.faults.SignalFate(kind, popupID, hop, cycle)
	if f.Drop {
		f.Delay = 0
		n.Stats.SignalsDropped++
		return f
	}
	if f.Delay > 0 {
		if max := sim.Cycle(wheelSize - 2 - n.Cfg.Router.LinkLatency); f.Delay > max {
			f.Delay = max
		}
		n.Stats.SignalsDelayed++
	}
	return f
}

// ejectionStalled reports an injected PE stall at node for this cycle.
func (n *Network) ejectionStalled(node topology.NodeID, cycle sim.Cycle) bool {
	return n.faults != nil && n.faults.EjectionStalled(node, cycle)
}

// beginCycleFaults lets the injector apply scheduled transitions. Called
// at the top of every kernel's step, on the coordinating goroutine.
func (n *Network) beginCycleFaults(cycle sim.Cycle) {
	if n.faults != nil {
		n.faults.BeginCycle(cycle)
	}
}

// SetLinkDown applies or clears a transient outage on l, updating the
// down-port masks of both endpoint routers. Injectors call it from
// BeginCycle; it is idempotent per state.
func (n *Network) SetLinkDown(l *topology.Link, down bool) {
	if l.Down == down {
		return
	}
	l.Down = down
	n.Routers[l.A].SetPortDown(l.APort, down)
	n.Routers[l.B].SetPortDown(l.BPort, down)
	if down {
		n.Stats.LinkFlaps++
	}
}
