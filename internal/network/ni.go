package network

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Consumer is the processing element behind an NI. It receives complete
// messages; returning false means the PE cannot consume the message yet
// (e.g. a directory waiting for response-injection space — the second case
// of the Sec. V-B4 proof) and the NI retries every cycle, holding the
// ejection-queue entry meanwhile.
type Consumer func(p *message.Packet, cycle sim.Cycle) bool

// stream tracks a packet currently being flit-injected into the router.
type stream struct {
	pkt  *message.Packet
	vc   int8
	next int32
}

// reservationWaiter is a pending UPP_req waiting for a free ejection entry.
type reservationWaiter struct {
	vnet    message.VNet
	popupID uint64
	grant   func(cycle sim.Cycle)
}

// NI is a network interface: per-VNet injection queues that segment
// messages into flits, and per-VNet bounded ejection queues that
// reassemble flits into messages for the PE (the model of Sec. V-B4).
type NI struct {
	Node topology.NodeID
	net  *Network
	r    router.Microarch
	cfg  router.Config

	// Injection side.
	injQ    [message.NumVNets]pktRing
	streams [message.NumVNets]stream
	active  [message.NumVNets]bool
	credits []int16
	busy    []bool
	vnetRR  int

	// Ejection side.
	ejCap      int
	ejOccupied [message.NumVNets]int
	ejReserved [message.NumVNets]int
	waiters    []reservationWaiter
	// asm tracks packets mid-reassembly in reusable slots (at most one
	// per ejection entry, so the scan is short). It replaced a
	// map[uint64]int32 keyed by packet ID whose insert/delete churn
	// allocated in steady state.
	asm      []asmSlot
	asmLive  int
	complete []completed

	// Consume delivers reassembled messages to the PE. Defaults to
	// consume-immediately.
	Consume Consumer
}

// asmSlot is one in-progress reassembly: the packet and how many of its
// flits have arrived. A nil pkt marks a free slot.
type asmSlot struct {
	pkt *message.Packet
	got int32
}

type completed struct {
	pkt   *message.Packet
	ready sim.Cycle
}

func newNI(net *Network, node topology.NodeID, r router.Microarch, cfg router.Config, ejCap int) *NI {
	ni := &NI{
		Node:    node,
		net:     net,
		r:       r,
		cfg:     cfg,
		ejCap:   ejCap,
		credits: make([]int16, cfg.NumVCs()),
		busy:    make([]bool, cfg.NumVCs()),
		// Reassembly and completion backlogs are bounded by ejCap packets
		// per VNet (an ejection entry is held until the PE consumes the
		// message), so both lists are carved at their maximum up front: on
		// systems with thousands of NIs the lazy growth would otherwise
		// trickle steady-state allocations for as long as some NI
		// somewhere has yet to see its worst case.
		asm:      make([]asmSlot, 0, ejCap*message.NumVNets),
		complete: make([]completed, 0, ejCap*message.NumVNets),
	}
	for i := range ni.credits {
		ni.credits[i] = int16(cfg.BufferDepth)
	}
	ni.Consume = func(*message.Packet, sim.Cycle) bool { return true }
	return ni
}

// Enqueue places a message in the injection queue of its VNet. The
// injection queue models the PE-side message queue; its occupancy shows up
// as queueing latency.
func (ni *NI) Enqueue(p *message.Packet, cycle sim.Cycle) {
	p.BirthCycle = cycle
	ni.net.prepare(p)
	ni.injQ[p.VNet].Push(p)
	ni.net.Stats.BornPackets++
	ni.net.wakeNI(ni.Node)
}

// InjQueueLen returns the injection queue depth of a VNet (coherence PEs
// use it to decide whether a request can be processed — proof case 2).
func (ni *NI) InjQueueLen(v message.VNet) int { return ni.injQ[v].Len() }

// InjSpace reports whether the injection queue of v has room under cap
// (<=0 means unbounded).
func (ni *NI) InjSpace(v message.VNet, cap int) bool {
	return cap <= 0 || ni.injQ[v].Len() < cap
}

// receiveCredit handles credits returned by the router's local input port.
func (ni *NI) receiveCredit(vc int8, delta int, free bool) {
	ni.credits[vc] += int16(delta)
	if free {
		ni.busy[vc] = false
	}
}

// Idle reports that stepping this NI would be a no-op: nothing to
// consume, no reservation waiters, no queued or streaming injections.
// Reassembly-in-progress (ni.asm) does not require stepping — flits
// arrive through AcceptFlit, which wakes the NI when a packet completes.
func (ni *NI) Idle() bool {
	if len(ni.complete) > 0 || len(ni.waiters) > 0 {
		return false
	}
	for v := 0; v < message.NumVNets; v++ {
		if ni.active[v] || ni.injQ[v].Len() > 0 {
			return false
		}
	}
	return true
}

// step advances the NI one cycle: consume completed messages, grant
// pending UPP reservations, start and continue flit injection.
func (ni *NI) step(cycle sim.Cycle) {
	ni.consumeStep(cycle)
	ni.grantWaiters(cycle)
	ni.injectStep(cycle)
}

func (ni *NI) consumeStep(cycle sim.Cycle) {
	if len(ni.complete) == 0 {
		return
	}
	if ni.net.ejectionStalled(ni.Node, cycle) {
		// Injected PE stall: completed messages wait, holding their
		// ejection entries — the same backpressure a slow Consumer exerts,
		// so no protocol invariant is disturbed. Counted only when there
		// was something to consume, which is exactly when the NI is awake
		// under every kernel — keeping Stats kernel-identical.
		ni.net.Stats.EjectionStalls++
		return
	}
	kept := ni.complete[:0]
	for _, c := range ni.complete {
		if c.ready > cycle || !ni.Consume(c.pkt, cycle) {
			kept = append(kept, c)
			continue
		}
		ni.ejOccupied[c.pkt.VNet]--
		ni.net.Stats.ConsumedPackets++
		// The PE consumed the message: ownership ends here. Stats were
		// recorded at tail ejection and scheme hooks (UPP popup
		// completion) already ran, so this is the protocol's single
		// release point.
		ni.net.releasePacket(c.pkt)
	}
	// Zero the vacated tail: the in-place filter leaves the removed
	// entries in the slack capacity, where their packet pointers would
	// pin released packets until the slice regrows.
	for i := len(kept); i < len(ni.complete); i++ {
		ni.complete[i] = completed{}
	}
	ni.complete = kept
}

func (ni *NI) grantWaiters(cycle sim.Cycle) {
	if len(ni.waiters) == 0 {
		return
	}
	kept := ni.waiters[:0]
	for _, w := range ni.waiters {
		if ni.freeEj(w.vnet) > 0 {
			ni.ejReserved[w.vnet]++
			w.grant(cycle)
		} else {
			kept = append(kept, w)
		}
	}
	// Same tail hygiene as consumeStep: a granted waiter left in the
	// slack capacity retains its grant closure and everything it
	// captured.
	for i := len(kept); i < len(ni.waiters); i++ {
		ni.waiters[i] = reservationWaiter{}
	}
	ni.waiters = kept
}

func (ni *NI) injectStep(cycle sim.Cycle) {
	// Start new streams: one attempt per VNet per cycle. During an
	// epoch-based reconfiguration transition injection is held: no new
	// stream may start until the old routing epoch drains (streams
	// already mid-flight finish — wormhole atomicity).
	for v := 0; v < message.NumVNets; v++ {
		if ni.active[v] || ni.injQ[v].Len() == 0 {
			continue
		}
		if ni.net.injectHold {
			ni.net.Stats.ReconfigHeldStreams++
			continue
		}
		p := ni.injQ[v].Front()
		if !ni.net.scheme.CanStartPacket(ni, p, cycle) {
			continue
		}
		vc := ni.pickFreeVC(message.VNet(v))
		if vc < 0 {
			continue
		}
		ni.busy[vc] = true
		ni.streams[v] = stream{pkt: p, vc: vc}
		ni.active[v] = true
		ni.injQ[v].Pop()
	}
	// The local port is one physical channel: one flit per cycle,
	// round-robin over VNets with an active stream and credit.
	for k := 0; k < message.NumVNets; k++ {
		v := (ni.vnetRR + 1 + k) % message.NumVNets
		if !ni.active[v] {
			continue
		}
		st := &ni.streams[v]
		if ni.credits[st.vc] <= 0 {
			continue
		}
		ni.vnetRR = v
		ni.credits[st.vc]--
		f := message.Flit{Pkt: st.pkt, Seq: st.next}
		if f.IsHead() {
			st.pkt.InjectCycle = cycle
			// Stamp the packet's routing epoch at the moment its head
			// enters the network: route lookups stay pinned to this
			// epoch's tables until delivery or migration (see Route).
			st.pkt.Epoch = ni.net.routeEpoch
			ni.net.epochLive[st.pkt.Epoch&1].Add(1)
			ni.net.Stats.InjectedPackets++
			if ni.net.Tracing() {
				// Guarded: the variadic argument boxing would allocate
				// per injection even with tracing off.
				ni.net.Trace("inject", ni.Node, "pkt%d %s %d->%d (%d flits, queued %d cycles)",
					st.pkt.ID, st.pkt.VNet, st.pkt.Src, st.pkt.Dst, st.pkt.Size, cycle-st.pkt.BirthCycle)
			}
		}
		ni.net.Stats.InjectedFlits++
		st.next++
		ni.net.deliverLocalFlit(ni.Node, st.vc, f, cycle+1)
		if f.IsTail() {
			ni.active[v] = false
			ni.streams[v] = stream{}
		}
		break
	}
}

func (ni *NI) pickFreeVC(v message.VNet) int8 {
	for k := 0; k < ni.cfg.VCsPerVNet; k++ {
		vc := int8(ni.cfg.VCIndex(v, k))
		if !ni.busy[vc] && ni.credits[vc] == int16(ni.cfg.BufferDepth) {
			return vc
		}
	}
	return -1
}

// --- Ejection side ---------------------------------------------------------

func (ni *NI) freeEj(v message.VNet) int {
	return ni.ejCap - ni.ejOccupied[v] - ni.ejReserved[v]
}

// FreeEjectionEntries reports the unreserved free ejection entries of v.
func (ni *NI) FreeEjectionEntries(v message.VNet) int { return ni.freeEj(v) }

// ReservedEntries returns the UPP-reserved entry count for v.
func (ni *NI) ReservedEntries(v message.VNet) int { return ni.ejReserved[v] }

// CanAcceptHead implements router.LocalSink: a normal packet may begin
// ejecting only into a free, unreserved entry.
func (ni *NI) CanAcceptHead(p *message.Packet, _ sim.Cycle) bool {
	return ni.freeEj(p.VNet) > 0
}

// AcceptFlit implements router.LocalSink. Head flits claim their ejection
// entry (popup heads consume the UPP reservation); tail flits complete
// reassembly and hand the message to the PE.
func (ni *NI) AcceptFlit(f message.Flit, arrival sim.Cycle) {
	p := f.Pkt
	if p.Released() {
		// A flit of a released packet reached an NI: some holder kept a
		// stale pointer across the pool release. Always-on — ejection is
		// once per flit, so the check is one bit test.
		panic(fmt.Sprintf("ni %d: flit of released packet %d (stale-generation access)", ni.Node, p.ID))
	}
	if p.Popup && !p.PopupResUsed {
		// The first popup-mode flit consumes the reserved entry — usually
		// the head, but a body flit when the head already ejected normally
		// before the popup began (late false positive).
		if ni.ejReserved[p.VNet] <= 0 {
			panic(fmt.Sprintf("ni %d: popup flit without reservation (pkt %d)", ni.Node, p.ID))
		}
		ni.ejReserved[p.VNet]--
		p.PopupResUsed = true
	}
	if f.IsHead() {
		ni.ejOccupied[p.VNet]++
	}
	ni.net.Stats.EjectedFlits++
	if int(ni.asmAdd(p)) != p.Size {
		return
	}
	ni.asmRemove(p)
	p.EjectCycle = arrival
	if ni.net.Tracing() {
		ni.net.Trace("eject", ni.Node, "pkt%d %s %d->%d latency=%d popup=%v",
			p.ID, p.VNet, p.Src, p.Dst, p.EjectCycle-p.InjectCycle, p.Popup)
	}
	ni.complete = append(ni.complete, completed{pkt: p, ready: arrival})
	ni.net.wakeNI(ni.Node)
	ni.net.recordEjected(p, arrival)
	ni.net.scheme.OnPacketEjected(ni, p, arrival)
}

// asmAdd records one arrived flit of p, claiming a reassembly slot on
// the first, and returns the new flit count. Slots are found by linear
// scan: at most ejCap packets per VNet reassemble concurrently, so the
// list stays a handful of entries.
func (ni *NI) asmAdd(p *message.Packet) int32 {
	freeIdx := -1
	for i := range ni.asm {
		switch ni.asm[i].pkt {
		case p:
			ni.asm[i].got++
			return ni.asm[i].got
		case nil:
			if freeIdx < 0 {
				freeIdx = i
			}
		}
	}
	if freeIdx < 0 {
		ni.asm = append(ni.asm, asmSlot{})
		freeIdx = len(ni.asm) - 1
	}
	ni.asm[freeIdx] = asmSlot{pkt: p, got: 1}
	ni.asmLive++
	return 1
}

// asmRemove frees p's reassembly slot (zeroing it so the slot does not
// retain the packet).
func (ni *NI) asmRemove(p *message.Packet) {
	for i := range ni.asm {
		if ni.asm[i].pkt == p {
			ni.asm[i] = asmSlot{}
			ni.asmLive--
			return
		}
	}
	panic(fmt.Sprintf("ni %d: reassembly slot for pkt %d not found", ni.Node, p.ID))
}

// RequestReservation implements the NI side of UPP_req (Sec. V-B): reserve
// an ejection entry for vnet, calling grant when done — immediately if an
// entry is free, otherwise as soon as one frees up (guaranteed to happen;
// see the Sec. V-B4 proof cases enforced by Consumer semantics).
func (ni *NI) RequestReservation(vnet message.VNet, popupID uint64, cycle sim.Cycle, grant func(cycle sim.Cycle)) {
	if ni.freeEj(vnet) > 0 {
		ni.ejReserved[vnet]++
		grant(cycle)
		return
	}
	ni.waiters = append(ni.waiters, reservationWaiter{vnet: vnet, popupID: popupID, grant: grant})
	ni.net.wakeNI(ni.Node)
}

// CancelReservation implements UPP_stop: recycle a reservation (or drop the
// pending request) for the given popup.
func (ni *NI) CancelReservation(vnet message.VNet, popupID uint64) {
	for i, w := range ni.waiters {
		if w.popupID == popupID {
			// Splice i out, then zero the vacated tail slot: the plain
			// append-splice leaves the last element duplicated in the
			// slack capacity, retaining its grant closure (and whatever
			// popup state it captured) until the slice regrows.
			last := len(ni.waiters) - 1
			copy(ni.waiters[i:], ni.waiters[i+1:])
			ni.waiters[last] = reservationWaiter{}
			ni.waiters = ni.waiters[:last]
			return
		}
	}
	if ni.ejReserved[vnet] <= 0 {
		panic(fmt.Sprintf("ni %d: cancel of non-existent reservation (vnet %s popup %d)", ni.Node, vnet, popupID))
	}
	ni.ejReserved[vnet]--
}

// Router returns the router this NI is attached to.
func (ni *NI) Router() router.Microarch { return ni.r }

// Pending reports in-flight work at this NI: queued, streaming or
// reassembling packets (used by drain loops and the watchdog).
func (ni *NI) Pending() int {
	n := ni.asmLive + len(ni.complete) + len(ni.waiters)
	for v := 0; v < message.NumVNets; v++ {
		n += ni.injQ[v].Len()
		if ni.active[v] {
			n++
		}
	}
	return n
}
