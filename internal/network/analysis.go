package network

import (
	"fmt"
	"strings"

	"uppnoc/internal/router"
	"uppnoc/internal/topology"
)

// VCRef names one virtual channel in the system.
type VCRef struct {
	Node topology.NodeID
	Port topology.PortID
	VC   int
}

// String formats the reference with its router role.
func (v VCRef) String() string {
	return fmt.Sprintf("node%d.in[%d].vc%d", v.Node, v.Port, v.VC)
}

// DependencyCycle is a closed buffer wait-for chain — a routing deadlock
// certificate (the chain of Fig. 1).
type DependencyCycle struct {
	VCs []VCRef
	net *Network
}

// SpansLayers reports whether the cycle crosses between the interposer and
// at least one chiplet — the definition of an integration-induced deadlock.
func (c *DependencyCycle) SpansLayers() bool {
	hasInterposer, hasChiplet := false, false
	for _, v := range c.VCs {
		if c.net.Topo.Node(v.Node).Chiplet == topology.InterposerChiplet {
			hasInterposer = true
		} else {
			hasChiplet = true
		}
	}
	return hasInterposer && hasChiplet
}

// InvolvesUpwardPacket reports whether some VC on the cycle holds a packet
// stalled toward an Up output port — the paper's key claim is that every
// integration-induced deadlock has one.
func (c *DependencyCycle) InvolvesUpwardPacket() bool {
	for _, v := range c.VCs {
		r := c.net.Routers[v.Node]
		vc := r.VCAt(v.Port, v.VC)
		if vc.OutPort == topology.InvalidPort {
			continue
		}
		if r.TopoNode().Ports[vc.OutPort].Dir == topology.Up {
			return true
		}
	}
	return false
}

// Chiplets lists the distinct chiplet indexes the cycle touches
// (InterposerChiplet included when it passes through the interposer).
func (c *DependencyCycle) Chiplets() []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range c.VCs {
		ch := c.net.Topo.Node(v.Node).Chiplet
		if !seen[ch] {
			seen[ch] = true
			out = append(out, ch)
		}
	}
	return out
}

// String renders the chain with the blocked packets.
func (c *DependencyCycle) String() string {
	var b strings.Builder
	for i, v := range c.VCs {
		r := c.net.Routers[v.Node]
		vc := r.VCAt(v.Port, v.VC)
		desc := "?"
		if f, _, ok := vc.Front(); ok {
			dir := "?"
			if vc.OutPort != topology.InvalidPort {
				dir = r.TopoNode().Ports[vc.OutPort].Dir.String()
			}
			desc = fmt.Sprintf("pkt%d(%s)->%s", f.Pkt.ID, f.Pkt.VNet, dir)
		}
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s[%s]", v.String(), desc)
	}
	return b.String()
}

// FindDependencyCycle searches the current wait-for graph over blocked VCs
// for a cycle. A blocked VC waits on the downstream VC(s) whose buffer
// space or allocation it needs:
//
//   - an Active VC without credit waits on its allocated downstream VC;
//   - a Waiting head waits on every busy (or credit-less) downstream VC of
//     its VNet at the routed output port.
//
// It returns nil when no cycle exists (e.g. transient congestion). Call it
// on a wedged network to extract the deadlock certificate.
//
// Under the active-set kernels only the awake routers are scanned: a
// retired router has no buffered flits, so none of its VCs can hold a
// blocked packet or appear in a wait-for edge. On a wedged multi-thousand-
// router system the graph construction therefore costs O(blocked routers),
// not O(total nodes). The naive kernel keeps no awake list and scans
// everything.
func (n *Network) FindDependencyCycle() *DependencyCycle {
	type key = VCRef
	adj := map[key][]key{}
	nvc := n.Cfg.Router.NumVCs()
	scan := func(node *topology.Node) {
		r := n.Routers[node.ID]
		for pi := range node.Ports {
			for vi := 0; vi < nvc; vi++ {
				vc := r.VCAt(topology.PortID(pi), vi)
				f, _, ok := vc.Front()
				if !ok || vc.OutPort == topology.InvalidPort || vc.OutPort == topology.LocalPort {
					continue
				}
				from := key{node.ID, topology.PortID(pi), vi}
				nb, nbPort := r.Neighbor(vc.OutPort)
				switch vc.State {
				case router.VCActive:
					if r.OutCredits(vc.OutPort, int(vc.OutVC)) <= 0 {
						adj[from] = append(adj[from], key{nb, nbPort, int(vc.OutVC)})
					}
				case router.VCWaiting:
					for k := 0; k < n.Cfg.Router.VCsPerVNet; k++ {
						dv := n.Cfg.Router.VCIndex(f.Pkt.VNet, k)
						if r.OutBusy(vc.OutPort, dv) || r.OutCredits(vc.OutPort, dv) <= 0 {
							adj[from] = append(adj[from], key{nb, nbPort, dv})
						}
					}
				}
			}
		}
	}
	if n.kernel == KernelNaive {
		for i := range n.Topo.Nodes {
			scan(&n.Topo.Nodes[i])
		}
	} else {
		for _, id := range n.routerList {
			scan(&n.Topo.Nodes[id])
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[key]int{}
	parent := map[key]key{}
	var cycle []key
	var dfs func(u key) bool
	dfs = func(u key) bool {
		color[u] = grey
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				cycle = []key{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := range adj {
		if color[u] == white && dfs(u) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	return &DependencyCycle{VCs: cycle, net: n}
}
