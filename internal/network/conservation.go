package network

import (
	"fmt"

	"uppnoc/internal/topology"
)

// CheckConservation verifies the credit/buffer conservation law on every
// link at any instant, not just at quiescence:
//
//	upstream credits + credit events in flight
//	  + upstream staged flits (output-queued variants)
//	  + downstream buffered flits + flit events in flight  == buffer depth
//
// for every (output port, VC). A violation means a flit or credit was
// duplicated or dropped — the class of bug that silently corrupts
// throughput results long before anything visibly breaks. Stress tests
// call this every few hundred cycles.
//
// Output-queued routers consume the downstream credit when they stage a
// flit, so flits sitting in a staging FIFO hold credits the same way
// flits in flight do — StagedFor supplies that term (zero for iq/voq).
//
// Flits moved out-of-band by schemes (popup latches, boundary buffers)
// have already returned their buffer slot via PopFront's credit, so they
// do not appear in the equation.
func (n *Network) CheckConservation() error {
	nvc := n.Cfg.Router.NumVCs()

	// Tally in-flight events by destination.
	type key struct {
		node topology.NodeID
		port topology.PortID
		vc   int8
	}
	flitsInFlight := map[key]int{}
	creditsInFlight := map[key]int{}
	for s := range n.wheel {
		for i := range n.wheel[s] {
			e := &n.wheel[s][i]
			switch e.kind {
			case evFlit:
				flitsInFlight[key{e.to, e.port, e.vc}]++
			case evCredit:
				creditsInFlight[key{e.to, e.port, e.vc}] += int(e.delta)
			}
		}
	}

	for i := range n.Topo.Nodes {
		node := &n.Topo.Nodes[i]
		r := n.Routers[node.ID]
		for pi := 1; pi < len(node.Ports); pi++ {
			pt := &node.Ports[pi]
			down := n.Routers[pt.Neighbor]
			// The law balances against the downstream input VC's actual
			// depth (the effective config, not the budget config).
			depth := down.Config().BufferDepth
			for vi := 0; vi < nvc; vi++ {
				credits := int(r.OutCredits(topology.PortID(pi), vi))
				staged := r.StagedFor(topology.PortID(pi), vi)
				buffered := down.VCAt(pt.NeighborPort, vi).Len()
				inFlight := flitsInFlight[key{pt.Neighbor, pt.NeighborPort, int8(vi)}]
				creditBack := creditsInFlight[key{node.ID, topology.PortID(pi), int8(vi)}]
				total := credits + staged + buffered + inFlight + creditBack
				if total != depth {
					return fmt.Errorf(
						"network: conservation violated on node%d.out[%d].vc%d -> node%d.in[%d]: credits %d + staged %d + buffered %d + flits-in-flight %d + credits-in-flight %d = %d, want %d",
						node.ID, pi, vi, pt.Neighbor, pt.NeighborPort,
						credits, staged, buffered, inFlight, creditBack, total, depth)
				}
			}
		}
	}
	return nil
}
