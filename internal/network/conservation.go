package network

import (
	"fmt"

	"uppnoc/internal/topology"
)

// CheckConservation verifies the credit/buffer conservation law on every
// link at any instant, not just at quiescence:
//
//	upstream credits + credit events in flight
//	  + upstream staged flits (output-queued variants)
//	  + downstream buffered flits + flit events in flight  == buffer depth
//
// for every (output port, VC). A violation means a flit or credit was
// duplicated or dropped — the class of bug that silently corrupts
// throughput results long before anything visibly breaks. Stress tests
// call this every few hundred cycles.
//
// Output-queued routers consume the downstream credit when they stage a
// flit, so flits sitting in a staging FIFO hold credits the same way
// flits in flight do — StagedFor supplies that term (zero for iq/voq).
//
// Flits moved out-of-band by schemes (popup latches, boundary buffers)
// have already returned their buffer slot via PopFront's credit, so they
// do not appear in the equation.
//
// Scaling: up to diagDeepMaxNodes nodes (or always under -tags uppdebug,
// or under the naive kernel, which keeps no awake list) every link is
// checked. Above that the scan is scoped to links with at least one
// engaged endpoint — an awake router or an in-flight event destination.
// The scoped scan still catches every violation involving live traffic,
// but can miss a stale imbalance parked between two long-retired routers
// (e.g. a credit dropped many cycles ago on a now-idle link); uppdebug
// restores the exhaustive walk at any size.
// diagDeepMaxNodes is the system-size threshold above which the state
// diagnostics (CheckConservation, CheckQuiescent) drop their exhaustive
// every-port-every-VC walks in favour of scoped or reduced scans. The
// uppdebug build tag (diagDeepAlways) forces the exhaustive walks at any
// size; see each check's doc comment for what the reduced mode still
// guarantees.
const diagDeepMaxNodes = 1024

func (n *Network) CheckConservation() error {
	nvc := n.Cfg.Router.NumVCs()

	// Tally in-flight events by destination.
	type key struct {
		node topology.NodeID
		port topology.PortID
		vc   int8
	}
	flitsInFlight := map[key]int{}
	creditsInFlight := map[key]int{}
	for s := range n.wheel {
		for i := range n.wheel[s] {
			e := &n.wheel[s][i]
			switch e.kind {
			case evFlit:
				flitsInFlight[key{e.to, e.port, e.vc}]++
			case evCredit:
				creditsInFlight[key{e.to, e.port, e.vc}] += int(e.delta)
			}
		}
	}

	full := diagDeepAlways || n.kernel == KernelNaive || len(n.Topo.Nodes) <= diagDeepMaxNodes
	var engaged map[topology.NodeID]bool
	if !full {
		engaged = make(map[topology.NodeID]bool, 2*len(n.routerList))
		for _, id := range n.routerList {
			engaged[topology.NodeID(id)] = true
		}
		for s := range n.wheel {
			for i := range n.wheel[s] {
				engaged[n.wheel[s][i].to] = true
			}
		}
	}

	// checkNode verifies the law on every out-link of one node; in the
	// scoped mode a link is skipped only when both endpoints are retired
	// with nothing in flight toward either.
	checkNode := func(node *topology.Node) error {
		r := n.Routers[node.ID]
		for pi := 1; pi < len(node.Ports); pi++ {
			pt := &node.Ports[pi]
			if engaged != nil && !engaged[node.ID] && !engaged[pt.Neighbor] {
				continue
			}
			down := n.Routers[pt.Neighbor]
			// The law balances against the downstream input VC's actual
			// depth (the effective config, not the budget config).
			depth := down.Config().BufferDepth
			for vi := 0; vi < nvc; vi++ {
				credits := int(r.OutCredits(topology.PortID(pi), vi))
				staged := r.StagedFor(topology.PortID(pi), vi)
				buffered := down.VCAt(pt.NeighborPort, vi).Len()
				inFlight := flitsInFlight[key{pt.Neighbor, pt.NeighborPort, int8(vi)}]
				creditBack := creditsInFlight[key{node.ID, topology.PortID(pi), int8(vi)}]
				total := credits + staged + buffered + inFlight + creditBack
				if total != depth {
					return fmt.Errorf(
						"network: conservation violated on node%d.out[%d].vc%d -> node%d.in[%d]: credits %d + staged %d + buffered %d + flits-in-flight %d + credits-in-flight %d = %d, want %d",
						node.ID, pi, vi, pt.Neighbor, pt.NeighborPort,
						credits, staged, buffered, inFlight, creditBack, total, depth)
				}
			}
		}
		return nil
	}

	if full {
		for i := range n.Topo.Nodes {
			if err := checkNode(&n.Topo.Nodes[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for id := range engaged {
		node := n.Topo.Node(id)
		if err := checkNode(node); err != nil {
			return err
		}
		// A retired upstream of an engaged node owns the credits for the
		// link into it — walk it too so inbound links are covered.
		for pi := 1; pi < len(node.Ports); pi++ {
			nb := node.Ports[pi].Neighbor
			if !engaged[nb] {
				if err := checkNode(n.Topo.Node(nb)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
