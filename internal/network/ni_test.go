package network_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

func newIdleNet(t *testing.T) *network.Network {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	return network.MustNew(topo, network.DefaultConfig(), network.None{})
}

// TestReservationImmediateGrant: with free entries the reservation grants
// in the same call (the NI side of UPP_req, Sec. V-B).
func TestReservationImmediateGrant(t *testing.T) {
	n := newIdleNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	granted := false
	ni.RequestReservation(message.VNetResponse, 1, 0, func(int64) { granted = true })
	if !granted {
		t.Fatal("reservation not granted immediately with a free queue")
	}
	if got := ni.ReservedEntries(message.VNetResponse); got != 1 {
		t.Fatalf("reserved entries %d", got)
	}
	if got := ni.FreeEjectionEntries(message.VNetResponse); got != n.Cfg.EjectionDepth-1 {
		t.Fatalf("free entries %d", got)
	}
	ni.CancelReservation(message.VNetResponse, 1)
	if got := ni.ReservedEntries(message.VNetResponse); got != 0 {
		t.Fatalf("reserved entries after cancel %d", got)
	}
}

// TestReservationWaitsOnFullQueue: with the queue full the grant waits
// until a consume frees an entry — the waiter path the Sec. V-B4 proof
// guarantees terminates.
func TestReservationWaitsOnFullQueue(t *testing.T) {
	n := newIdleNet(t)
	dst := n.Topo.Cores()[5]
	ni := n.NI(dst)
	// Fill the response ejection queue with unconsumed packets.
	blocked := true
	ni.Consume = func(*message.Packet, int64) bool { return !blocked }
	for i := 0; i < n.Cfg.EjectionDepth; i++ {
		p := &message.Packet{ID: uint64(100 + i), Src: n.Topo.Cores()[10+i], Dst: dst,
			VNet: message.VNetResponse, Size: 1}
		n.NI(p.Src).Enqueue(p, n.Cycle())
	}
	n.Run(2000)
	if ni.FreeEjectionEntries(message.VNetResponse) != 0 {
		t.Fatal("queue not full")
	}
	granted := false
	ni.RequestReservation(message.VNetResponse, 9, n.Cycle(), func(int64) { granted = true })
	n.Run(50)
	if granted {
		t.Fatal("granted against a full queue")
	}
	blocked = false
	n.Run(50)
	if !granted {
		t.Fatal("reservation never granted after the queue drained")
	}
}

// TestCancelPendingWaiter: cancelling a reservation that is still waiting
// removes the waiter without touching the reserved count.
func TestCancelPendingWaiter(t *testing.T) {
	n := newIdleNet(t)
	dst := n.Topo.Cores()[5]
	ni := n.NI(dst)
	ni.Consume = func(*message.Packet, int64) bool { return false }
	for i := 0; i < n.Cfg.EjectionDepth; i++ {
		p := &message.Packet{Src: n.Topo.Cores()[10+i], Dst: dst, VNet: message.VNetRequest, Size: 1}
		n.NI(p.Src).Enqueue(p, n.Cycle())
	}
	n.Run(2000)
	granted := false
	ni.RequestReservation(message.VNetRequest, 77, n.Cycle(), func(int64) { granted = true })
	ni.CancelReservation(message.VNetRequest, 77)
	ni.Consume = func(*message.Packet, int64) bool { return true }
	n.Run(200)
	if granted {
		t.Fatal("cancelled waiter was granted")
	}
	if got := ni.ReservedEntries(message.VNetRequest); got != 0 {
		t.Fatalf("reserved entries %d after cancelled waiter", got)
	}
}

// TestCanAcceptHeadRespectsReservations: a reserved entry is invisible to
// normal head admission.
func TestCanAcceptHeadRespectsReservations(t *testing.T) {
	n := newIdleNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	pkt := &message.Packet{VNet: message.VNetForward, Size: 1}
	for i := 0; i < n.Cfg.EjectionDepth; i++ {
		ni.RequestReservation(message.VNetForward, uint64(i+1), 0, func(int64) {})
	}
	if ni.CanAcceptHead(pkt, 0) {
		t.Fatal("head admitted into a fully reserved queue")
	}
	ni.CancelReservation(message.VNetForward, 1)
	if !ni.CanAcceptHead(pkt, 0) {
		t.Fatal("head rejected with a free entry")
	}
}

// TestPopupFlitConsumesReservation: a popup-mode flit uses the reserved
// entry exactly once.
func TestPopupFlitConsumesReservation(t *testing.T) {
	n := newIdleNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	ni.RequestReservation(message.VNetResponse, 5, 0, func(int64) {})
	pkt := &message.Packet{ID: 1, VNet: message.VNetResponse, Size: 2, Popup: true, PopupID: 5}
	ni.AcceptFlit(message.Flit{Pkt: pkt, Seq: 0}, 1)
	if got := ni.ReservedEntries(message.VNetResponse); got != 0 {
		t.Fatalf("reservation not consumed: %d", got)
	}
	// The second flit must not consume anything else.
	before := ni.FreeEjectionEntries(message.VNetResponse)
	ni.AcceptFlit(message.Flit{Pkt: pkt, Seq: 1}, 2)
	if got := ni.FreeEjectionEntries(message.VNetResponse); got != before {
		t.Fatalf("tail flit changed free entries: %d -> %d", before, got)
	}
}

// TestInjSpaceBounds: InjSpace obeys caps, including the unbounded case.
func TestInjSpaceBounds(t *testing.T) {
	n := newIdleNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	if !ni.InjSpace(message.VNetRequest, 0) {
		t.Fatal("cap 0 should mean unbounded")
	}
	for i := 0; i < 3; i++ {
		p := &message.Packet{Src: n.Topo.Cores()[0], Dst: n.Topo.Cores()[1], VNet: message.VNetRequest, Size: 1}
		ni.Enqueue(p, 0)
	}
	if ni.InjSpace(message.VNetRequest, 3) {
		t.Fatal("cap 3 with 3 queued should be full")
	}
	if !ni.InjSpace(message.VNetRequest, 4) {
		t.Fatal("cap 4 with 3 queued should have space")
	}
}
