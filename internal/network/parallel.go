// Parallel cycle kernel (KernelParallel): a two-phase compute/commit step
// that shards the active-set router walk across a bounded worker pool
// while staying bit-identical to the sequential kernels.
//
// Phase 1 (compute, concurrent): awake routers are partitioned into
// static NodeID-range shards; each shard steps its routers in ascending
// NodeID order. Router.Step's concurrency contract (see its doc comment)
// guarantees a step mutates only the router's own state; every
// cross-component effect — scheduled flit and credit events, local
// ejections and the scheme/stat/wake work AcceptFlit triggers — is
// captured in the shard's ordered commit log by the recording sinks
// installed at construction.
//
// Phase 2 (commit, coordinator): the logs are replayed in ascending shard
// order, which is ascending NodeID order — exactly the order in which the
// sequential walk would have produced the same effects. Event-wheel
// contents, NI ejection state, scheme callbacks (OnPacketEjected), stats
// and wakes therefore end up byte-identical to the active-set kernel.
// The NI walk, scheme hooks, event delivery and retirement all stay on
// the coordinator: PE Consume callbacks allocate packet IDs, release
// packets to the pool and may enqueue replies — inherently order-
// dependent global effects that the commit phase is the right place for.
//
// Determinism does not depend on the shard count, GOMAXPROCS or OS
// scheduling: the compute phase is pure per-router work and the commit
// order is fixed. TestParallelShardDeterminism proves it.
package network

import (
	"fmt"
	"os"
	"runtime"
	"slices"
	"strconv"
	"sync"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// parallelMinAwake is the engagement threshold: below it the kernel steps
// the awake routers inline on the coordinator (still bit-identical — the
// recording sinks forward directly outside the compute phase), because
// waking workers costs more than a handful of router steps. The decision
// depends only on the deterministic awake count, so it is identical at
// every shard count.
const parallelMinAwake = 16

// commit-op kinds of a shard's log.
const (
	opFlit   = iota // DeliverFlit to the event wheel
	opCredit        // DeliverCredit to the event wheel
	opEject         // AcceptFlit at the emitting router's own NI
)

// commitOp is one deferred cross-component effect, replayed by the commit
// phase in emission order.
type commitOp struct {
	kind  uint8
	vc    int8
	delta int8
	free  bool
	to    topology.NodeID
	port  topology.PortID
	at    sim.Cycle
	flit  message.Flit
}

// shard is one static NodeID range [lo, hi) plus its reusable commit log.
// It implements router.EventSink for its routers: during the compute
// phase emissions are buffered; outside it (scheme plugin API, inline
// fallback) they forward straight to the network.
type shard struct {
	n      *Network
	lo, hi int
	log    []commitOp
	// ids is this cycle's segment of the sorted awake-router list falling
	// in [lo, hi) — sliced out by computeShards on the coordinator before
	// dispatch, so compute is O(awake in shard), not O(shard width).
	ids []int32
}

// DeliverFlit implements router.EventSink for the shard's routers.
func (sh *shard) DeliverFlit(to topology.NodeID, port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle) {
	if !sh.n.inCompute {
		sh.n.DeliverFlit(to, port, vc, f, cycle)
		return
	}
	sh.log = append(sh.log, commitOp{kind: opFlit, to: to, port: port, vc: vc, flit: f, at: cycle})
}

// DeliverCredit implements router.EventSink for the shard's routers.
func (sh *shard) DeliverCredit(to topology.NodeID, port topology.PortID, vc int8, delta int, free bool, cycle sim.Cycle) {
	if !sh.n.inCompute {
		sh.n.DeliverCredit(to, port, vc, delta, free, cycle)
		return
	}
	sh.log = append(sh.log, commitOp{kind: opCredit, to: to, port: port, vc: vc, delta: int8(delta), free: free, at: cycle})
}

// compute steps the shard's awake routers in ascending NodeID order —
// the same relative order the sequential walk visits them in.
func (sh *shard) compute(cycle sim.Cycle) {
	routers := sh.n.Routers
	for _, id := range sh.ids {
		routers[id].Step(cycle)
	}
}

// shardLocal wraps an NI as its router's LocalSink. CanAcceptHead always
// reads through (NI ejection state is only written on the coordinator or
// by this router's own later AcceptFlit, which sequential order also puts
// after the reads); AcceptFlit is deferred during the compute phase so
// its global effects — n.Stats, the latency histogram, the trace, the
// scheme's OnPacketEjected and the NI wake — run on the coordinator in
// NodeID order.
type shardLocal struct {
	sh *shard
	ni *NI
}

// CanAcceptHead implements router.LocalSink.
func (l *shardLocal) CanAcceptHead(p *message.Packet, cycle sim.Cycle) bool {
	return l.ni.CanAcceptHead(p, cycle)
}

// AcceptFlit implements router.LocalSink.
func (l *shardLocal) AcceptFlit(f message.Flit, arrival sim.Cycle) {
	if !l.sh.n.inCompute {
		l.ni.AcceptFlit(f, arrival)
		return
	}
	l.sh.log = append(l.sh.log, commitOp{kind: opEject, to: l.ni.Node, flit: f, at: arrival})
}

// initParallel resolves the shard count, partitions the nodes into static
// contiguous NodeID ranges and installs the recording sinks.
func (n *Network) initParallel(shardCount int) error {
	if shardCount == 0 {
		if env := os.Getenv("UPP_SHARDS"); env != "" {
			v, err := strconv.Atoi(env)
			if err != nil || v < 1 {
				return fmt.Errorf("network: invalid UPP_SHARDS %q (want a positive integer)", env)
			}
			shardCount = v
		} else {
			shardCount = runtime.GOMAXPROCS(0)
		}
	}
	nodes := n.Topo.NumNodes()
	if shardCount > nodes {
		shardCount = nodes
	}
	if shardCount < 1 {
		shardCount = 1
	}
	n.shards = make([]shard, shardCount)
	base, rem := nodes/shardCount, nodes%shardCount
	lo := 0
	for i := range n.shards {
		size := base
		if i < rem {
			size++
		}
		sh := &n.shards[i]
		sh.n = n
		sh.lo, sh.hi = lo, lo+size
		// Pre-size the log: steady state truncates and reuses it, so the
		// per-emission append stays allocation-free once the high-water
		// mark is reached.
		sh.log = make([]commitOp, 0, 64)
		lo = sh.hi
		for id := sh.lo; id < sh.hi; id++ {
			n.Routers[id].SetSink(sh)
			n.Routers[id].SetLocal(&shardLocal{sh: sh, ni: n.NIs[id]})
		}
	}
	startComputePool()
	return nil
}

// Shards returns the resolved shard count of the parallel kernel (0 for
// the other kernels).
func (n *Network) Shards() int { return len(n.shards) }

// ParallelPhases reports how many cycles engaged the concurrent compute
// path versus fell back to the inline walk (engagement telemetry for
// tests and benchmarks; deliberately not part of Stats, which is compared
// bit-for-bit across kernels).
func (n *Network) ParallelPhases() (compute, inline uint64) {
	return n.computePhases, n.inlinePhases
}

// stepParallel advances one cycle under the parallel kernel. Everything
// except the shard compute phase runs on the coordinating goroutine and
// is code-identical to stepActive.
func (n *Network) stepParallel() {
	cycle := n.cycle
	n.beginCycleFaults(cycle)
	n.deliverEvents(cycle, true)
	n.scheme.StartOfCycle(cycle)
	if len(n.routerList) >= parallelMinAwake {
		n.computePhases++
		slices.Sort(n.routerList)
		n.computeShards(cycle)
		n.commitShards()
	} else if len(n.routerList) > 0 {
		n.inlinePhases++
		n.walkRouters(cycle)
	}
	n.walkNIs(cycle)
	n.retireRouters(cycle)
	n.retireNIs()
	n.scheme.EndOfCycle(cycle)
	n.foldReconfigStats()
	n.cycle++
}

// computeShards runs phase 1: shard 0 on the coordinator (saves one
// handoff and keeps single-shard configurations pool-free), the rest on
// the shared compute pool. Each shard receives its contiguous segment of
// the sorted awake-router list (so per-cycle work is proportional to the
// awake count, not the node count); the WaitGroup join is the
// happens-before edge that publishes every worker's router mutations and
// log appends back to the coordinator.
func (n *Network) computeShards(cycle sim.Cycle) {
	list := n.routerList // sorted by stepParallel
	start := 0
	for i := range n.shards {
		sh := &n.shards[i]
		end := start
		for end < len(list) && int(list[end]) < sh.hi {
			end++
		}
		sh.ids = list[start:end]
		start = end
	}
	n.inCompute = true
	if len(n.shards) > 1 {
		n.computeWG.Add(len(n.shards) - 1)
		for i := 1; i < len(n.shards); i++ {
			computeQueue <- shardTask{sh: &n.shards[i], cycle: cycle, wg: &n.computeWG}
		}
	}
	n.shards[0].compute(cycle)
	if len(n.shards) > 1 {
		n.computeWG.Wait()
	}
	n.inCompute = false
}

// commitShards runs phase 2: replay every shard's log in ascending shard
// order — ascending NodeID order — reproducing the exact interleaving of
// wheel appends, ejections, scheme callbacks and wakes the sequential
// walk would have produced. Entries are zeroed as they are applied so the
// reused log array does not pin packet pointers past release.
func (n *Network) commitShards() {
	for i := range n.shards {
		sh := &n.shards[i]
		log := sh.log
		for j := range log {
			op := &log[j]
			switch op.kind {
			case opFlit:
				n.DeliverFlit(op.to, op.port, op.vc, op.flit, op.at)
			case opCredit:
				n.DeliverCredit(op.to, op.port, op.vc, int(op.delta), op.free, op.at)
			case opEject:
				n.NIs[op.to].AcceptFlit(op.flit, op.at)
			}
			*op = commitOp{}
		}
		sh.log = log[:0]
	}
}

// --- Shared compute pool ----------------------------------------------------

// shardTask is one shard's compute-phase work order.
type shardTask struct {
	sh    *shard
	cycle sim.Cycle
	wg    *sync.WaitGroup
}

var (
	computeOnce  sync.Once
	computeQueue chan shardTask
)

// startComputePool lazily starts the package-level worker pool all
// parallel-kernel networks share. A shared pool keeps the goroutine count
// bounded at GOMAXPROCS regardless of how many networks a sweep creates,
// and — unlike per-network workers — owns no network references, so
// finished networks remain collectable. Tasks never block on other tasks
// (compute does not submit), so the pool cannot deadlock; when sweeps
// oversubscribe it (UPP_JOBS × shards > workers) tasks simply queue,
// which costs speed, never correctness (see EXPERIMENTS.md on combining
// the two parallelism levels).
func startComputePool() {
	computeOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		computeQueue = make(chan shardTask, 8*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for t := range computeQueue {
					t.sh.compute(t.cycle)
					t.wg.Done()
				}
			}()
		}
	})
}
