package network

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	return MustNew(topology.MustBuild(topology.BaselineConfig()), DefaultConfig(), None{})
}

// TestCancelReservationZerosVacatedTail: the CancelReservation splice
// must not leave a stale duplicate of the last waiter in the slice's
// slack capacity — the duplicate retains the grant closure and whatever
// popup state it captured.
func TestCancelReservationZerosVacatedTail(t *testing.T) {
	n := testNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	const vnet = message.VNetRequest
	ni.ejOccupied[vnet] = ni.ejCap // no free entries: reservations must wait
	grant := func(sim.Cycle) {}
	for id := uint64(1); id <= 3; id++ {
		ni.RequestReservation(vnet, id, 0, grant)
	}
	if len(ni.waiters) != 3 {
		t.Fatalf("expected 3 queued waiters, got %d", len(ni.waiters))
	}
	ni.CancelReservation(vnet, 2)
	if len(ni.waiters) != 2 {
		t.Fatalf("expected 2 waiters after cancel, got %d", len(ni.waiters))
	}
	if ni.waiters[0].popupID != 1 || ni.waiters[1].popupID != 3 {
		t.Fatalf("wrong waiters survived: %d, %d", ni.waiters[0].popupID, ni.waiters[1].popupID)
	}
	// Inspect the vacated slot beyond len: it must be zeroed.
	tail := ni.waiters[:3][2]
	if tail.grant != nil || tail.popupID != 0 {
		t.Fatalf("vacated waiter slot retains state: popupID=%d grant=%p", tail.popupID, tail.grant)
	}
}

// TestConsumeStepZerosVacatedTail: the in-place completion filter must
// zero the slack region, or consumed (and pool-released) packets stay
// referenced until the slice regrows.
func TestConsumeStepZerosVacatedTail(t *testing.T) {
	n := testNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	p1, p2 := &message.Packet{ID: 1}, &message.Packet{ID: 2}
	ni.ejOccupied[p1.VNet] = 2
	ni.complete = append(ni.complete, completed{pkt: p1}, completed{pkt: p2})
	ni.consumeStep(5)
	if len(ni.complete) != 0 {
		t.Fatalf("expected all completions consumed, %d left", len(ni.complete))
	}
	for i, c := range ni.complete[:2] {
		if c.pkt != nil {
			t.Fatalf("slack slot %d retains packet %d", i, c.pkt.ID)
		}
	}
}

// TestGrantWaitersZerosVacatedTail: granting waiters filters the slice
// in place; granted entries must not survive in the slack capacity.
func TestGrantWaitersZerosVacatedTail(t *testing.T) {
	n := testNet(t)
	ni := n.NI(n.Topo.Cores()[0])
	const vnet = message.VNetRequest
	ni.ejOccupied[vnet] = ni.ejCap
	granted := 0
	for id := uint64(1); id <= 2; id++ {
		ni.RequestReservation(vnet, id, 0, func(sim.Cycle) { granted++ })
	}
	ni.ejOccupied[vnet] = 0 // room appears: both waiters grant this step
	ni.grantWaiters(1)
	if granted != 2 || len(ni.waiters) != 0 {
		t.Fatalf("granted=%d waiters=%d; want 2 and 0", granted, len(ni.waiters))
	}
	for i, w := range ni.waiters[:2] {
		if w.grant != nil || w.popupID != 0 {
			t.Fatalf("slack slot %d retains granted waiter %d", i, w.popupID)
		}
	}
	ni.ejReserved[vnet] = 0 // undo the test grants for any later checks
}

func TestPktRing(t *testing.T) {
	var q pktRing
	mk := func(id uint64) *message.Packet { return &message.Packet{ID: id} }
	// Interleave pushes and pops to force wraparound, then growth.
	for id := uint64(1); id <= 4; id++ {
		q.Push(mk(id))
	}
	if q.Pop().ID != 1 || q.Pop().ID != 2 {
		t.Fatal("FIFO order violated")
	}
	for id := uint64(5); id <= 12; id++ { // crosses the initial capacity
		q.Push(mk(id))
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d; want 10", q.Len())
	}
	for want := uint64(3); want <= 12; want++ {
		if got := q.Pop().ID; got != want {
			t.Fatalf("Pop = %d; want %d", got, want)
		}
	}
	if q.Len() != 0 || q.Front() != nil {
		t.Fatal("queue not empty after draining")
	}
	// Every slot must be zeroed — no retained packets.
	for i, p := range q.buf {
		if p != nil {
			t.Fatalf("drained ring retains packet %d at slot %d", p.ID, i)
		}
	}
}

func TestPoolingConfigResolution(t *testing.T) {
	t.Run("default_on", func(t *testing.T) {
		t.Setenv("UPP_NOPOOL", "")
		n := testNet(t)
		if !n.Pooling() {
			t.Fatal("pooling off by default")
		}
		if p := n.AllocPacket(); !p.Pooled() {
			t.Fatal("AllocPacket returned a foreign packet with pooling on")
		}
	})
	t.Run("config_off", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.DisablePool = true
		n := MustNew(topology.MustBuild(topology.BaselineConfig()), cfg, None{})
		if n.Pooling() {
			t.Fatal("DisablePool ignored")
		}
		if p := n.AllocPacket(); p.Pooled() {
			t.Fatal("AllocPacket returned a pooled packet with pooling off")
		}
	})
	t.Run("env_off", func(t *testing.T) {
		t.Setenv("UPP_NOPOOL", "1")
		n := testNet(t)
		if n.Pooling() {
			t.Fatal("UPP_NOPOOL ignored")
		}
	})
}

// TestReleasedPacketCaughtInFlight: the debug walker and the NI's
// always-on ejection assert must both notice a packet that was released
// while still queued — the canonical reuse-after-release bug.
func TestReleasedPacketCaughtInFlight(t *testing.T) {
	n := testNet(t)
	src := n.Topo.Cores()[0]
	p := n.AllocPacket()
	p.Src = src
	p.Dst = n.Topo.Cores()[1]
	p.Size = 1
	p.Class = message.ClassSyntheticCtrl
	n.NI(src).Enqueue(p, n.Cycle())
	if err := n.CheckNoReleasedInFlight(); err != nil {
		t.Fatalf("clean network reported: %v", err)
	}
	n.releasePacket(p) // simulate a premature release
	if err := n.CheckNoReleasedInFlight(); err == nil {
		t.Fatal("walker missed a released packet in an injection queue")
	}
}
