package network

import (
	"fmt"
	"io"

	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// TraceEvent is one observable simulator event. Tracing is off by default
// and costs one nil check per event when off.
type TraceEvent struct {
	Cycle  sim.Cycle
	Kind   string // "inject", "eject", "consume", "flit", "popup", ...
	Node   topology.NodeID
	Detail string
}

// String formats the event as one log line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("[%8d] %-8s node%-3d %s", e.Cycle, e.Kind, e.Node, e.Detail)
}

// Tracer receives events as they happen.
type Tracer func(TraceEvent)

// SetTracer installs (or, with nil, removes) an event tracer.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// Trace emits an event if a tracer is installed. Scheme plugins use it to
// narrate protocol activity (UPP popups, remote-control reservations).
func (n *Network) Trace(kind string, node topology.NodeID, format string, args ...interface{}) {
	if n.tracer == nil {
		return
	}
	n.tracer(TraceEvent{Cycle: n.cycle, Kind: kind, Node: node, Detail: fmt.Sprintf(format, args...)})
}

// Tracing reports whether a tracer is installed (callers can skip
// expensive detail formatting when not).
func (n *Network) Tracing() bool { return n.tracer != nil }

// WriteTracer returns a Tracer that writes one line per event to w,
// keeping at most limit events (0 = unlimited).
func WriteTracer(w io.Writer, limit int) Tracer {
	count := 0
	return func(e TraceEvent) {
		if limit > 0 && count >= limit {
			return
		}
		count++
		fmt.Fprintln(w, e.String())
	}
}
