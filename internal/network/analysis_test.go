package network_test

import (
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestDeadlockCertificate extracts the buffer dependency cycle from a
// wedged network and validates the paper's theory (Sec. IV-A): the cycle
// is integration-induced — it spans the interposer and chiplets — and it
// contains a stalled upward packet.
func TestDeadlockCertificate(t *testing.T) {
	found := 0
	for seed := uint64(40); seed < 48 && found < 3; seed++ {
		topo := topology.MustBuild(topology.BaselineConfig())
		n := network.MustNew(topo, network.DefaultConfig(), network.None{})
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.12, seed)
		g.Run(20000)
		g.SetRate(0)
		if err := n.Drain(30000, 3000); err == nil {
			continue // no wedge with this seed
		}
		c := n.FindDependencyCycle()
		if c == nil {
			t.Fatalf("seed %d: wedged but no dependency cycle found", seed)
		}
		found++
		if !c.SpansLayers() {
			t.Fatalf("seed %d: deadlock cycle confined to one layer: %s", seed, c)
		}
		if !c.InvolvesUpwardPacket() {
			t.Fatalf("seed %d: integration-induced cycle without an upward packet — the paper's key observation would be violated: %s", seed, c)
		}
		if len(c.Chiplets()) < 2 {
			t.Logf("seed %d: cycle touches %v (single chiplet + interposer)", seed, c.Chiplets())
		}
		t.Logf("seed %d certificate: %s", seed, c)
	}
	if found == 0 {
		t.Fatal("no deadlock formed across seeds; raise the load")
	}
}

// TestNoCycleAtLowLoad: the analyzer reports nil on a healthy network.
func TestNoCycleAtLowLoad(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.01, 1)
	g.Run(3000)
	g.SetRate(0)
	if err := n.Drain(50000, 10000); err != nil {
		t.Fatal(err)
	}
	if c := n.FindDependencyCycle(); c != nil {
		t.Fatalf("cycle on an empty network: %s", c)
	}
}
