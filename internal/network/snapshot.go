package network

import (
	"fmt"
	"io"
	"math"

	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// UPWS is the versioned binary snapshot format of a running simulation
// (DESIGN.md §14). A snapshot taken between cycles captures every bit
// of mutable state that influences future behavior — router pipelines,
// NIs, the event wheel, the scheme's protocol FSMs, the packet pool and
// all RNG streams — so that a restored network replays the uninterrupted
// run bit-identically (flit traces, stats, popups) under every kernel,
// shard count and router arch.
const (
	snapMagic = "UPWS"
	// Version 2 added the routing-epoch scalars (routeEpoch, injectHold,
	// epochLive) and the per-packet Epoch field for dynamic
	// reconfiguration.
	snapVersion = 2
	// snapTrailer closes the stream; ReadSnapshot additionally requires
	// zero trailing bytes.
	snapTrailer = 0x5eed
)

// SnapshotExtra is a component outside the Network whose cursor state
// rides along in a snapshot — the traffic generator's per-core RNGs,
// the collective workload engine's op cursors. Extras are serialized
// after the network sections, labeled so a restore with mismatched
// extras fails structurally instead of misparsing.
type SnapshotExtra interface {
	// SnapshotLabel names the extra ("traffic", "workload"); write and
	// read sides must agree.
	SnapshotLabel() string
	// SnapshotState appends the extra's state.
	SnapshotState(w *snap.Writer)
	// RestoreState overwrites the extra's state from a snapshot.
	RestoreState(r *snap.Reader) error
}

// WriteSnapshot serializes the network's full state to w, between
// cycles (call it after Step/Run returns, never from inside a hook).
// It fails if any closure-based Schedule event is pending — schemes
// must use ScheduleCall for anything that can be in flight at a
// checkpoint.
func (n *Network) WriteSnapshot(out io.Writer, extras ...SnapshotExtra) error {
	if n.inCompute || n.inNIWalk {
		return fmt.Errorf("network: snapshot mid-cycle (call between Steps)")
	}
	for si := range n.wheel {
		for ei := range n.wheel[si] {
			if n.wheel[si][ei].kind == evCall {
				return fmt.Errorf("network: snapshot with a pending closure event (scheme must use ScheduleCall)")
			}
		}
	}
	w := snap.NewWriter()
	// Header: magic, version, and a configuration fingerprint so a
	// restore into a differently-shaped network fails up front.
	w.String(snapMagic)
	w.Uvarint(snapVersion)
	w.Int(n.Topo.NumNodes())
	w.String(n.arch)
	w.Bool(n.pooling)
	w.Int(n.Cfg.Router.NumVCs())
	w.Int(n.Cfg.Router.BufferDepth)
	w.Int(n.Cfg.EjectionDepth)
	w.Varint(n.cycle)

	// Routers and NIs in node order.
	for _, r := range n.Routers {
		r.Snapshot(w)
	}
	for _, ni := range n.NIs {
		ni.snapshot(w)
	}

	// Event wheel: slot indices are cycle%wheelSize, and the cycle is
	// restored verbatim, so slots map 1:1.
	for si := range n.wheel {
		events := n.wheel[si]
		w.Uvarint(uint64(len(events)))
		for ei := range events {
			e := &events[ei]
			w.Uvarint(uint64(e.kind))
			w.Varint(int64(e.to))
			w.Varint(int64(e.port))
			w.Varint(int64(e.vc))
			w.Varint(int64(e.delta))
			w.Bool(e.free)
			w.Flit(e.flit)
			if e.kind == evSchemeCall {
				c := &n.callWheel[si][e.callIdx]
				w.Uvarint(uint64(c.Kind))
				w.Varint(int64(c.Node))
				w.Uvarint(c.A)
				w.Uvarint(c.B)
				w.Varint(int64(c.Hop))
				w.Bool(c.HasFlit)
				if c.HasFlit {
					w.Flit(c.Flit)
				}
			}
		}
	}

	// Scheme protocol state (UPP popup machines, remotectl holds...).
	n.scheme.Snapshot(w)

	// Packet pool: freelist in order (through the table, so stale
	// pointers held elsewhere keep their identity) plus counters.
	w.Uvarint(uint64(n.pool.FreeLen()))
	n.pool.ForEachFree(func(p *message.Packet) { w.Packet(p) })
	ps := n.pool.Stats
	w.Uvarint(ps.Gets)
	w.Uvarint(ps.Reuses)
	w.Uvarint(ps.Puts)

	// Network scalars and active sets. The lists are serialized verbatim
	// (routerList is a sorted prefix; niList may carry an unsorted tail
	// of mid-cycle wakes) because the next walk's sort must see the same
	// input; the membership flags are rebuilt from them.
	w.Uvarint(n.nextID)
	w.Varint(n.lastEject)
	w.Uvarint(uint64(len(n.routerList)))
	for _, id := range n.routerList {
		w.Varint(int64(id))
	}
	w.Uvarint(uint64(len(n.niList)))
	for _, id := range n.niList {
		w.Varint(int64(id))
	}
	w.Uvarint(n.rng.State()[0])
	w.Uvarint(n.rng.State()[1])
	w.Uvarint(n.rng.State()[2])
	w.Uvarint(n.rng.State()[3])

	// Reconfiguration scalars. prevHier is not serialized — the attached
	// reconfiguration engine re-derives and reinstalls both routing tables
	// from its own (serialized) event cursor during its RestoreState.
	w.Uvarint(uint64(n.routeEpoch))
	w.Bool(n.injectHold)
	w.Varint(n.epochLive[0].Load())
	w.Varint(n.epochLive[1].Load())
	w.Int(n.fencedLinks)

	// The packet table closes every pointer-bearing section; sections
	// after it must not reference packets.
	w.WritePacketTable()

	// Stats and the latency histogram (restored after any fault-resync
	// side effects on the read side, so the counters land last).
	n.Stats.snapshot(w)
	n.latHist.snapshot(w)

	for _, ex := range extras {
		w.String(ex.SnapshotLabel())
		ex.SnapshotState(w)
	}
	w.Uvarint(snapTrailer)

	_, err := out.Write(w.Bytes())
	return err
}

// ReadSnapshot overwrites the state of a freshly constructed network —
// same topology, config, scheme type and pooling setting as the writer
// — from snapshot bytes. Corrupt or truncated input yields a structured
// error, never a panic. If a fault injector is attached, its flap state
// is resynced to the restored cycle.
func (n *Network) ReadSnapshot(data []byte, extras ...SnapshotExtra) (err error) {
	defer func() {
		// Backstop: the readers bounds-check everything, but a decode
		// path that trips a simulator invariant (e.g. a freelist check)
		// must still surface as an error for the fuzz contract.
		if r := recover(); r != nil {
			err = fmt.Errorf("network: snapshot decode panicked: %v", r)
		}
	}()
	r := snap.NewReader(data)
	if m := r.String("magic", 8); r.Err() == nil && m != snapMagic {
		return fmt.Errorf("network: bad snapshot magic %q", m)
	}
	if v := r.Uvarint("version"); r.Err() == nil && v != snapVersion {
		return fmt.Errorf("network: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	if nn := r.Int("num nodes", 0, math.MaxInt32); r.Err() == nil && nn != n.Topo.NumNodes() {
		return fmt.Errorf("network: snapshot is for %d nodes, network has %d", nn, n.Topo.NumNodes())
	}
	if a := r.String("arch", 8); r.Err() == nil && a != n.arch {
		return fmt.Errorf("network: snapshot router arch %q, network has %q", a, n.arch)
	}
	if p := r.Bool("pooling"); r.Err() == nil && p != n.pooling {
		return fmt.Errorf("network: snapshot pooling=%v, network has %v", p, n.pooling)
	}
	if v := r.Int("num vcs", 0, 1024); r.Err() == nil && v != n.Cfg.Router.NumVCs() {
		return fmt.Errorf("network: snapshot has %d VCs, network has %d", v, n.Cfg.Router.NumVCs())
	}
	if d := r.Int("buffer depth", 0, 1<<20); r.Err() == nil && d != n.Cfg.Router.BufferDepth {
		return fmt.Errorf("network: snapshot buffer depth %d, network has %d", d, n.Cfg.Router.BufferDepth)
	}
	if d := r.Int("ejection depth", 0, 1<<20); r.Err() == nil && d != n.Cfg.EjectionDepth {
		return fmt.Errorf("network: snapshot ejection depth %d, network has %d", d, n.Cfg.EjectionDepth)
	}
	cycle := r.Varint("cycle")
	if r.Err() != nil {
		return r.Err()
	}

	for _, rt := range n.Routers {
		if err := rt.Restore(r); err != nil {
			return err
		}
	}
	for _, ni := range n.NIs {
		if err := ni.restore(r); err != nil {
			return err
		}
	}

	n.wheelPending = 0
	for si := range n.wheel {
		n.wheel[si] = n.wheel[si][:0]
		n.callWheel[si] = n.callWheel[si][:0]
		cnt := r.Len("wheel slot count", len(data))
		if r.Err() != nil {
			return r.Err()
		}
		for ei := 0; ei < cnt; ei++ {
			var e event
			k := r.Uvarint("event kind")
			if r.Err() == nil && (k > evSchemeCall || k == evCall) {
				r.Fail("event kind %d invalid in a snapshot", k)
			}
			e.kind = uint8(k)
			e.to = topology.NodeID(r.Int("event to", -1, int64(n.Topo.NumNodes())-1))
			e.port = topology.PortID(r.Int("event port", -1, 127))
			e.vc = int8(r.Int("event vc", -128, 127))
			e.delta = int8(r.Int("event delta", -128, 127))
			e.free = r.Bool("event free")
			e.flit = r.Flit()
			if e.kind == evSchemeCall {
				var c SchemeCall
				ck := r.Uvarint("call kind")
				if r.Err() == nil && ck > math.MaxUint8 {
					r.Fail("call kind %d out of range", ck)
				}
				c.Kind = uint8(ck)
				c.Node = topology.NodeID(r.Int("call node", -1, int64(n.Topo.NumNodes())-1))
				c.A = r.Uvarint("call a")
				c.B = r.Uvarint("call b")
				c.Hop = int32(r.Int("call hop", 0, 4*int64(n.Topo.NumNodes())))
				c.HasFlit = r.Bool("call hasflit")
				if c.HasFlit {
					c.Flit = r.Flit()
				}
				n.callWheel[si] = append(n.callWheel[si], c)
				e.callIdx = int32(len(n.callWheel[si]) - 1)
			}
			if r.Err() != nil {
				return r.Err()
			}
			n.wheel[si] = append(n.wheel[si], e)
			n.wheelPending++
		}
	}

	if err := n.scheme.Restore(r); err != nil {
		return err
	}

	nfree := r.Len("pool free count", len(data))
	if r.Err() != nil {
		return r.Err()
	}
	free := make([]*message.Packet, 0, min(nfree, 4096))
	for i := 0; i < nfree; i++ {
		p := r.Packet()
		if r.Err() != nil {
			return r.Err()
		}
		if p == nil {
			return fmt.Errorf("network: nil packet in snapshot freelist")
		}
		free = append(free, p)
	}
	pool := n.PacketPool()
	pool.SetFree(free)
	pool.Stats.Gets = r.Uvarint("pool gets")
	pool.Stats.Reuses = r.Uvarint("pool reuses")
	pool.Stats.Puts = r.Uvarint("pool puts")

	n.nextID = r.Uvarint("next packet id")
	n.lastEject = r.Varint("last eject")
	nr := r.Len("router awake count", n.Topo.NumNodes())
	if r.Err() != nil {
		return r.Err()
	}
	n.routerList = n.routerList[:0]
	for i := range n.routerAwake {
		n.routerAwake[i] = false
		n.niAwake[i] = false
	}
	for i := 0; i < nr; i++ {
		id := int32(r.Int("awake router id", 0, int64(n.Topo.NumNodes())-1))
		if r.Err() != nil {
			return r.Err()
		}
		if n.routerAwake[id] {
			return fmt.Errorf("network: duplicate awake router %d in snapshot", id)
		}
		n.routerAwake[id] = true
		n.routerList = append(n.routerList, id)
	}
	nni := r.Len("ni awake count", n.Topo.NumNodes())
	if r.Err() != nil {
		return r.Err()
	}
	n.niList = n.niList[:0]
	for i := 0; i < nni; i++ {
		id := int32(r.Int("awake ni id", 0, int64(n.Topo.NumNodes())-1))
		if r.Err() != nil {
			return r.Err()
		}
		if n.niAwake[id] {
			return fmt.Errorf("network: duplicate awake NI %d in snapshot", id)
		}
		n.niAwake[id] = true
		n.niList = append(n.niList, id)
	}
	var st [4]uint64
	for i := range st {
		st[i] = r.Uvarint("network rng")
	}
	if r.Err() != nil {
		return r.Err()
	}
	n.rng.SetState(st)

	epoch := r.Uvarint("route epoch")
	if r.Err() == nil && epoch > math.MaxUint32 {
		return fmt.Errorf("network: route epoch %d out of range", epoch)
	}
	n.routeEpoch = uint32(epoch)
	n.injectHold = r.Bool("inject hold")
	n.epochLive[0].Store(r.Varint("epoch live 0"))
	n.epochLive[1].Store(r.Varint("epoch live 1"))
	n.fencedLinks = r.Int("fenced links", 0, int64(len(n.Topo.Links)))

	r.ReadPacketTable()
	if r.Err() != nil {
		return r.Err()
	}
	if perr := pool.Check(); perr != nil {
		return fmt.Errorf("network: restored freelist invalid: %w", perr)
	}

	n.cycle = cycle
	// Resync an attached fault injector's flap windows to the restored
	// clock before the counters land: SetLinkDown edges during resync
	// bump Stats.LinkFlaps, which the Stats section below overwrites
	// with the writer's true counts. The restoring flag tells a
	// state-machine injector (reconfig.Engine) this BeginCycle is a
	// cursor resync, not live simulation — its own RestoreState (an
	// extra below) rebuilds the authoritative state afterwards.
	n.restoring = true
	if n.faults != nil && cycle > 0 {
		n.faults.BeginCycle(cycle - 1)
	}
	n.restoring = false

	if err := n.Stats.restore(r); err != nil {
		return err
	}
	// The worker-side migration counter mirrors the folded Stats value
	// (snapshots are taken between cycles, right after a fold).
	n.routeMigrations.Store(n.Stats.RouteMigrations)
	if err := n.latHist.restore(r); err != nil {
		return err
	}

	for _, ex := range extras {
		label := r.String("extra label", 64)
		if r.Err() != nil {
			return r.Err()
		}
		if label != ex.SnapshotLabel() {
			return fmt.Errorf("network: snapshot extra %q, expected %q", label, ex.SnapshotLabel())
		}
		if err := ex.RestoreState(r); err != nil {
			return err
		}
	}
	if t := r.Uvarint("trailer"); r.Err() == nil && t != snapTrailer {
		return fmt.Errorf("network: bad snapshot trailer %#x", t)
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("network: %d trailing bytes after snapshot", r.Remaining())
	}
	return nil
}

// snapshot serializes the NI's injection and ejection state. Reservation
// waiters are serialized as (vnet, popupID) pairs; the owning scheme
// re-installs the grant callbacks during its own Restore via
// RebindReservation.
func (ni *NI) snapshot(w *snap.Writer) {
	for v := 0; v < message.NumVNets; v++ {
		q := &ni.injQ[v]
		w.Uvarint(uint64(q.Len()))
		for i := 0; i < q.n; i++ {
			w.Packet(q.buf[(q.head+i)%len(q.buf)])
		}
		st := &ni.streams[v]
		w.Packet(st.pkt)
		w.Varint(int64(st.vc))
		w.Varint(int64(st.next))
		w.Bool(ni.active[v])
		w.Int(ni.ejOccupied[v])
		w.Int(ni.ejReserved[v])
	}
	for i := range ni.credits {
		w.Varint(int64(ni.credits[i]))
		w.Bool(ni.busy[i])
	}
	w.Int(ni.vnetRR)
	w.Uvarint(uint64(len(ni.waiters)))
	for i := range ni.waiters {
		w.Varint(int64(ni.waiters[i].vnet))
		w.Uvarint(ni.waiters[i].popupID)
	}
	// Reassembly slots keep their exact layout (free slots included):
	// slot selection in asmAdd depends on it.
	w.Uvarint(uint64(len(ni.asm)))
	for i := range ni.asm {
		w.Packet(ni.asm[i].pkt)
		w.Varint(int64(ni.asm[i].got))
	}
	w.Uvarint(uint64(len(ni.complete)))
	for i := range ni.complete {
		w.Packet(ni.complete[i].pkt)
		w.Varint(ni.complete[i].ready)
	}
}

func (ni *NI) restore(r *snap.Reader) error {
	for v := 0; v < message.NumVNets; v++ {
		q := &ni.injQ[v]
		for q.Len() > 0 {
			q.Pop()
		}
		cnt := r.Len("inj queue len", 1<<24)
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < cnt; i++ {
			p := r.Packet()
			if r.Err() != nil {
				return r.Err()
			}
			q.Push(p)
		}
		st := &ni.streams[v]
		st.pkt = r.Packet()
		st.vc = int8(r.Int("stream vc", -128, 127))
		next := r.Int("stream next", 0, math.MaxInt32)
		st.next = int32(next)
		ni.active[v] = r.Bool("stream active")
		ni.ejOccupied[v] = r.Int("ej occupied", 0, int64(ni.ejCap))
		ni.ejReserved[v] = r.Int("ej reserved", 0, int64(ni.ejCap))
	}
	for i := range ni.credits {
		ni.credits[i] = int16(r.Int("ni credits", 0, int64(ni.cfg.BufferDepth)))
		ni.busy[i] = r.Bool("ni busy")
	}
	ni.vnetRR = r.Int("ni vnet rr", 0, message.NumVNets-1)
	nw := r.Len("ni waiter count", 1<<20)
	if r.Err() != nil {
		return r.Err()
	}
	ni.waiters = ni.waiters[:0]
	for i := 0; i < nw; i++ {
		vnet := message.VNet(r.Int("waiter vnet", 0, message.NumVNets-1))
		id := r.Uvarint("waiter popup id")
		if r.Err() != nil {
			return r.Err()
		}
		ni.waiters = append(ni.waiters, reservationWaiter{vnet: vnet, popupID: id})
	}
	na := r.Len("asm slot count", 1<<20)
	if r.Err() != nil {
		return r.Err()
	}
	ni.asm = ni.asm[:0]
	ni.asmLive = 0
	for i := 0; i < na; i++ {
		p := r.Packet()
		got := r.Int("asm got", 0, math.MaxInt32)
		if r.Err() != nil {
			return r.Err()
		}
		ni.asm = append(ni.asm, asmSlot{pkt: p, got: int32(got)})
		if p != nil {
			ni.asmLive++
		}
	}
	nc := r.Len("complete count", 1<<20)
	if r.Err() != nil {
		return r.Err()
	}
	ni.complete = ni.complete[:0]
	for i := 0; i < nc; i++ {
		p := r.Packet()
		ready := r.Varint("complete ready")
		if r.Err() != nil {
			return r.Err()
		}
		ni.complete = append(ni.complete, completed{pkt: p, ready: ready})
	}
	return nil
}

// RebindReservation re-installs the grant callback of a restored
// reservation waiter (identified by its popup ID). The owning scheme
// calls it from Restore for every waiter it serialized; it reports
// whether a matching unbound waiter existed.
func (ni *NI) RebindReservation(popupID uint64, grant func(cycle sim.Cycle)) bool {
	for i := range ni.waiters {
		if ni.waiters[i].popupID == popupID && ni.waiters[i].grant == nil {
			ni.waiters[i].grant = grant
			return true
		}
	}
	return false
}

// ReservationWaiters visits the NI's pending reservation waiters in
// grant order (vnet, popupID) — schemes use it during Restore to know
// which waiters need rebinding.
func (ni *NI) ReservationWaiters(fn func(vnet message.VNet, popupID uint64)) {
	for i := range ni.waiters {
		fn(ni.waiters[i].vnet, ni.waiters[i].popupID)
	}
}

func (s *Stats) snapshot(w *snap.Writer) {
	w.Varint(s.MeasureStart)
	w.Uvarint(s.BornPackets)
	w.Uvarint(s.InjectedPackets)
	w.Uvarint(s.InjectedFlits)
	w.Uvarint(s.EjectedFlits)
	w.Uvarint(s.EjectedPackets)
	w.Uvarint(s.ConsumedPackets)
	w.Uvarint(s.MeasuredPackets)
	w.Uvarint(s.NetLatencySum)
	w.Uvarint(s.QueueLatencySum)
	w.Uvarint(s.measureFlits0)
	w.Uvarint(s.UpwardPackets)
	w.Uvarint(s.PopupsStarted)
	w.Uvarint(s.PopupsCancelled)
	w.Uvarint(s.PopupsCompleted)
	w.Uvarint(s.SignalsSent)
	w.Uvarint(s.ReservationsGranted)
	w.Uvarint(s.InjectionHolds)
	w.Uvarint(s.SignalRetries)
	w.Uvarint(s.PopupsAborted)
	w.Uvarint(s.SignalsDropped)
	w.Uvarint(s.SignalsDelayed)
	w.Uvarint(s.LateSignals)
	w.Uvarint(s.LinkFlaps)
	w.Uvarint(s.EjectionStalls)
	w.Uvarint(s.Reconfigs)
	w.Uvarint(s.ReconfigsDrainless)
	w.Uvarint(s.ReconfigsEpoch)
	w.Uvarint(s.RouteMigrations)
	w.Uvarint(s.HeadsMigrated)
	w.Uvarint(s.LinksKilled)
	w.Uvarint(s.LinksRevived)
	w.Uvarint(s.ReconfigHeldStreams)
}

func (s *Stats) restore(r *snap.Reader) error {
	s.MeasureStart = r.Varint("stats measure start")
	s.BornPackets = r.Uvarint("stats born")
	s.InjectedPackets = r.Uvarint("stats injected pkts")
	s.InjectedFlits = r.Uvarint("stats injected flits")
	s.EjectedFlits = r.Uvarint("stats ejected flits")
	s.EjectedPackets = r.Uvarint("stats ejected pkts")
	s.ConsumedPackets = r.Uvarint("stats consumed")
	s.MeasuredPackets = r.Uvarint("stats measured")
	s.NetLatencySum = r.Uvarint("stats net lat")
	s.QueueLatencySum = r.Uvarint("stats queue lat")
	s.measureFlits0 = r.Uvarint("stats measure flits0")
	s.UpwardPackets = r.Uvarint("stats upward")
	s.PopupsStarted = r.Uvarint("stats popups started")
	s.PopupsCancelled = r.Uvarint("stats popups cancelled")
	s.PopupsCompleted = r.Uvarint("stats popups completed")
	s.SignalsSent = r.Uvarint("stats signals sent")
	s.ReservationsGranted = r.Uvarint("stats reservations")
	s.InjectionHolds = r.Uvarint("stats injection holds")
	s.SignalRetries = r.Uvarint("stats signal retries")
	s.PopupsAborted = r.Uvarint("stats popups aborted")
	s.SignalsDropped = r.Uvarint("stats signals dropped")
	s.SignalsDelayed = r.Uvarint("stats signals delayed")
	s.LateSignals = r.Uvarint("stats late signals")
	s.LinkFlaps = r.Uvarint("stats link flaps")
	s.EjectionStalls = r.Uvarint("stats ejection stalls")
	s.Reconfigs = r.Uvarint("stats reconfigs")
	s.ReconfigsDrainless = r.Uvarint("stats reconfigs drainless")
	s.ReconfigsEpoch = r.Uvarint("stats reconfigs epoch")
	s.RouteMigrations = r.Uvarint("stats route migrations")
	s.HeadsMigrated = r.Uvarint("stats heads migrated")
	s.LinksKilled = r.Uvarint("stats links killed")
	s.LinksRevived = r.Uvarint("stats links revived")
	s.ReconfigHeldStreams = r.Uvarint("stats reconfig held streams")
	return r.Err()
}

func (h *LatencyHistogram) snapshot(w *snap.Writer) {
	for i := range h.buckets {
		w.Uvarint(h.buckets[i])
	}
	w.Uvarint(h.count)
	w.Uvarint(h.maxValue)
}

func (h *LatencyHistogram) restore(r *snap.Reader) error {
	for i := range h.buckets {
		h.buckets[i] = r.Uvarint("hist bucket")
	}
	h.count = r.Uvarint("hist count")
	h.maxValue = r.Uvarint("hist max")
	return r.Err()
}
