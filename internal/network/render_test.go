package network_test

import (
	"strings"
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func TestRenderOccupancy(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	out := n.RenderOccupancy()
	if !strings.Contains(out, "interposer:") {
		t.Fatalf("missing interposer grid:\n%s", out)
	}
	for _, ch := range []string{"chiplet 0:", "chiplet 1:", "chiplet 2:", "chiplet 3:"} {
		if !strings.Contains(out, ch) {
			t.Fatalf("missing %s grid", ch)
		}
	}
	// Idle network: all dots, boundary routers starred.
	if !strings.Contains(out, ".*") {
		t.Fatal("no boundary-router markers")
	}
	if strings.ContainsAny(gridOnly(out), "123456789#") {
		t.Fatalf("idle network shows occupancy:\n%s", out)
	}
	// Load it and confirm occupancy appears.
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 5)
	g.Run(2000)
	out = n.RenderOccupancy()
	if !strings.ContainsAny(gridOnly(out), "123456789#") {
		t.Fatalf("loaded network renders empty:\n%s", out)
	}
}

// gridOnly strips label lines, keeping the occupancy rows (indented).
func gridOnly(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  ") {
			b.WriteString(line)
		}
	}
	return b.String()
}

func TestRenderUpPorts(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	out := n.RenderUpPorts()
	if got := strings.Count(out, "stalled\n"); got != 16 {
		t.Fatalf("%d vertical links rendered, want 16:\n%s", got, out)
	}
}
