package network

import (
	"fmt"
	"strings"

	"uppnoc/internal/topology"
)

// RenderOccupancy draws the system's buffer occupancy as ASCII grids —
// one per layer — with each router shown as its buffered flit count
// (".", digits, then "#" beyond 9). Wedged networks render the deadlock's
// footprint directly; the cmd/deadlock tool prints this next to the
// dependency-cycle certificate.
func (n *Network) RenderOccupancy() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d — buffer occupancy (flits per router)\n", n.cycle)
	b.WriteString(n.renderLayer("interposer", n.Topo.Interposer, n.Topo.InterposerW))
	for i := range n.Topo.Chiplets {
		ch := &n.Topo.Chiplets[i]
		b.WriteString(n.renderLayer(fmt.Sprintf("chiplet %d", ch.Index), ch.Routers, ch.Width))
	}
	return b.String()
}

func (n *Network) renderLayer(label string, nodes []topology.NodeID, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	height := len(nodes) / width
	// Render top row (largest y) first so north is up.
	for y := height - 1; y >= 0; y-- {
		b.WriteString("  ")
		for x := 0; x < width; x++ {
			id := nodes[y*width+x]
			r := n.Routers[id]
			cell := occupancyGlyph(r.Buffered())
			mark := " "
			if n.Topo.Node(id).Kind == topology.BoundaryRouter {
				mark = "*" // boundary routers carry the vertical links
			}
			fmt.Fprintf(&b, "%s%s ", cell, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func occupancyGlyph(buffered int) string {
	switch {
	case buffered == 0:
		return "."
	case buffered <= 9:
		return fmt.Sprintf("%d", buffered)
	default:
		return "#"
	}
}

// RenderUpPorts summarizes the vertical links: per interposer router with
// an up link, whether a packet is stalled toward it — the quantity UPP's
// detection counters watch.
func (n *Network) RenderUpPorts() string {
	var b strings.Builder
	b.WriteString("vertical links (interposer router -> boundary router, stalled upward fronts):\n")
	for _, id := range n.Topo.Interposer {
		node := n.Topo.Node(id)
		r := n.Routers[id]
		for pi := 1; pi < len(node.Ports); pi++ {
			if node.Ports[pi].Dir != topology.Up {
				continue
			}
			stalled := 0
			for ipi := range node.Ports {
				for vi := 0; vi < n.Cfg.Router.NumVCs(); vi++ {
					vc := r.VCAt(topology.PortID(ipi), vi)
					if vc.OutPort == topology.PortID(pi) && !vc.Empty() {
						stalled++
					}
				}
			}
			fmt.Fprintf(&b, "  %2d -> %2d : %d stalled\n", id, node.Ports[pi].Neighbor, stalled)
		}
	}
	return b.String()
}
