// Package network assembles routers, links and network interfaces into a
// runnable chiplet-system NoC and advances it cycle by cycle. Deadlock
// freedom schemes (UPP, composable routing, remote control) plug in via
// the Scheme interface.
package network

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Config parameterizes a network instance.
type Config struct {
	Router router.Config
	// EjectionDepth is the per-VNet ejection queue capacity in packets.
	EjectionDepth int
	// Seed drives all randomized decisions (VC selection, traffic).
	Seed uint64
	// UseUpDown selects up*/down* local routing instead of XY (needed on
	// faulty systems).
	UseUpDown bool
	// Adaptive selects minimal-adaptive odd-even local routing with
	// credit-aware output selection — the "fully adaptive network" UPP's
	// recovery framework enables (deadlock-free within each layer by the
	// odd-even turn model; integration-induced deadlocks recovered by the
	// scheme). Mutually exclusive with UseUpDown.
	Adaptive bool
}

// DefaultConfig mirrors Table II with 1 VC per VNet.
func DefaultConfig() Config {
	return Config{Router: router.DefaultConfig(), EjectionDepth: 4, Seed: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Router.Validate(); err != nil {
		return err
	}
	if c.EjectionDepth < 1 {
		return fmt.Errorf("network: EjectionDepth must be >= 1")
	}
	if c.UseUpDown && c.Adaptive {
		return fmt.Errorf("network: UseUpDown and Adaptive are mutually exclusive")
	}
	return nil
}

// event kinds in the delivery wheel.
const (
	evFlit = iota
	evCredit
	evCall
)

type event struct {
	kind  uint8
	to    topology.NodeID
	port  topology.PortID
	vc    int8
	delta int8
	free  bool
	flit  message.Flit
	fn    func(cycle sim.Cycle)
}

// wheelSize bounds the maximum event latency (link latency + pipeline).
const wheelSize = 128

// Network is a complete simulated system.
type Network struct {
	Topo    *topology.Topology
	Cfg     Config
	Routers []*router.Router
	NIs     []*NI

	scheme        Scheme
	hier          *routing.Hierarchical
	routeOverride router.RouteFunc
	rng           *sim.RNG

	cycle  sim.Cycle
	wheel  [wheelSize][]event
	nextID uint64
	tracer Tracer

	Stats   Stats
	latHist LatencyHistogram

	// lastEject supports deadlock detection in tests and the drain loop.
	lastEject sim.Cycle
}

// New builds a network over t with the given scheme. The scheme's boundary
// policy governs egress selection; its hooks are wired into the cycle loop.
func New(t *topology.Topology, cfg Config, scheme Scheme) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Topo:   t,
		Cfg:    cfg,
		scheme: scheme,
		rng:    sim.NewRNG(cfg.Seed),
	}
	var local routing.Local
	switch {
	case cfg.UseUpDown:
		ud, err := routing.NewUpDown(t)
		if err != nil {
			return nil, err
		}
		local = ud
	case cfg.Adaptive:
		// Minimal-adaptive odd-even routing with credit-aware selection:
		// prefer the candidate output whose downstream VCs have the most
		// free credits for the packet's VNet.
		local = routing.NewOddEven(t, func(cur topology.NodeID, candidates []topology.PortID, p *message.Packet) topology.PortID {
			best := candidates[0]
			bestCredits := -1
			r := n.Routers[cur]
			for _, cand := range candidates {
				credits := 0
				for k := 0; k < cfg.Router.VCsPerVNet; k++ {
					dv := cfg.Router.VCIndex(p.VNet, k)
					if !r.Out[cand].Busy[dv] {
						credits += int(r.Out[cand].Credits[dv])
					}
				}
				if credits > bestCredits {
					bestCredits = credits
					best = cand
				}
			}
			return best
		})
	default:
		local = routing.NewXY(t)
	}
	n.hier = routing.NewHierarchical(t, local)
	route := func(cur topology.NodeID, inPort topology.PortID, p *message.Packet) (topology.PortID, error) {
		return n.Route(cur, inPort, p)
	}
	n.Routers = make([]*router.Router, t.NumNodes())
	n.NIs = make([]*NI, t.NumNodes())
	for i := range t.Nodes {
		node := &t.Nodes[i]
		r := router.New(node, cfg.Router, n, nil, route, n.rng.Split(uint64(i)))
		ni := newNI(n, node.ID, r, cfg.Router, cfg.EjectionDepth)
		r.SetLocal(ni)
		n.Routers[i] = r
		n.NIs[i] = ni
	}
	scheme.Attach(n)
	return n, nil
}

// MustNew is New for known-good configurations.
func MustNew(t *topology.Topology, cfg Config, scheme Scheme) *Network {
	n, err := New(t, cfg, scheme)
	if err != nil {
		panic(err)
	}
	return n
}

// Scheme returns the attached deadlock-freedom scheme.
func (n *Network) Scheme() Scheme { return n.scheme }

// Hier returns the hierarchical routing function (plugins route protocol
// signals with it).
func (n *Network) Hier() *routing.Hierarchical { return n.hier }

// SetRouteOverride replaces the default hierarchical routing with a
// scheme-provided route function (composable routing's turn-restricted
// tables). Schemes call it from Attach.
func (n *Network) SetRouteOverride(f router.RouteFunc) { n.routeOverride = f }

// SetLocalRouting swaps the per-layer routing algorithm at run time — the
// dynamic-reconfiguration scenario of Sec. III-C (hardware faults or power
// gating change the topology; a topology-independent scheme rebuilds its
// routing and carries on). Call it on a quiesced network: in-flight
// packets routed under the old algorithm would otherwise mix turn rules.
func (n *Network) SetLocalRouting(local routing.Local) {
	n.hier = routing.NewHierarchical(n.Topo, local)
}

// Route computes the output port for p at router cur with input port
// inPort — the same function the routers' route-computation stage uses.
// Scheme plugins route protocol signals and popup paths with it.
func (n *Network) Route(cur topology.NodeID, inPort topology.PortID, p *message.Packet) (topology.PortID, error) {
	if n.routeOverride != nil {
		return n.routeOverride(cur, inPort, p)
	}
	return n.hier.NextPort(cur, p)
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() sim.Cycle { return n.cycle }

// RNG exposes the network's deterministic generator for components that
// need auxiliary randomness.
func (n *Network) RNG() *sim.RNG { return n.rng }

// NewPacketID allocates a unique packet ID.
func (n *Network) NewPacketID() uint64 {
	n.nextID++
	return n.nextID
}

// prepare stamps routing state on a freshly enqueued packet.
func (n *Network) prepare(p *message.Packet) {
	if p.ID == 0 {
		p.ID = n.NewPacketID()
	}
	routing.Prepare(n.Topo, p, n.scheme.Policy())
}

// Schedule runs fn at the given future cycle (plugins use this for signal
// and popup-flit timing).
func (n *Network) Schedule(cycle sim.Cycle, fn func(cycle sim.Cycle)) {
	if cycle <= n.cycle {
		panic("network: Schedule in the past or present")
	}
	if cycle-n.cycle >= wheelSize {
		panic("network: Schedule beyond event wheel horizon")
	}
	slot := cycle % wheelSize
	n.wheel[slot] = append(n.wheel[slot], event{kind: evCall, fn: fn})
}

// DeliverFlit implements router.EventSink.
func (n *Network) DeliverFlit(to topology.NodeID, port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle) {
	slot := cycle % wheelSize
	n.wheel[slot] = append(n.wheel[slot], event{kind: evFlit, to: to, port: port, vc: vc, flit: f})
}

// DeliverCredit implements router.EventSink.
func (n *Network) DeliverCredit(to topology.NodeID, port topology.PortID, vc int8, delta int, free bool, cycle sim.Cycle) {
	slot := cycle % wheelSize
	n.wheel[slot] = append(n.wheel[slot], event{kind: evCredit, to: to, port: port, vc: vc, delta: int8(delta), free: free})
}

// deliverLocalFlit carries an NI-injected flit to its router's local input
// port.
func (n *Network) deliverLocalFlit(node topology.NodeID, vc int8, f message.Flit, cycle sim.Cycle) {
	n.DeliverFlit(node, topology.LocalPort, vc, f, cycle)
}

// NI returns the network interface at node id.
func (n *Network) NI(id topology.NodeID) *NI { return n.NIs[id] }

// Router returns the router at node id.
func (n *Network) Router(id topology.NodeID) *router.Router { return n.Routers[id] }

// Step advances the system by one cycle.
func (n *Network) Step() {
	cycle := n.cycle
	for _, r := range n.Routers {
		r.ResetClaims()
	}
	// Deliver due events.
	slot := cycle % wheelSize
	events := n.wheel[slot]
	n.wheel[slot] = events[:0]
	for i := range events {
		e := &events[i]
		switch e.kind {
		case evFlit:
			delay := n.scheme.OnFlitArrived(e.to, e.port, e.flit, cycle)
			r := n.Routers[e.to]
			r.ReceiveFlit(e.port, e.vc, e.flit, cycle+delay)
		case evCredit:
			if e.port == topology.LocalPort {
				n.NIs[e.to].receiveCredit(e.vc, int(e.delta), e.free)
			} else {
				n.Routers[e.to].ReceiveCredit(e.port, e.vc, int(e.delta), e.free)
			}
		case evCall:
			e.fn(cycle)
		}
	}
	n.scheme.StartOfCycle(cycle)
	for _, r := range n.Routers {
		r.Step(cycle)
	}
	for _, ni := range n.NIs {
		ni.step(cycle)
	}
	n.scheme.EndOfCycle(cycle)
	n.cycle++
}

// Run advances the network by cycles steps.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

// recordEjected updates latency statistics when a packet fully ejects.
func (n *Network) recordEjected(p *message.Packet, cycle sim.Cycle) {
	n.lastEject = cycle
	n.Stats.EjectedPackets++
	if p.BirthCycle >= n.Stats.MeasureStart {
		n.Stats.MeasuredPackets++
		n.Stats.NetLatencySum += uint64(p.EjectCycle - p.InjectCycle)
		n.Stats.QueueLatencySum += uint64(p.InjectCycle - p.BirthCycle)
		n.latHist.Add(uint64(p.EjectCycle - p.BirthCycle))
	}
}

// InFlight counts packets born but not yet consumed by their destination
// PE, including injection-queue occupancy and packets awaiting
// consumption in ejection queues.
func (n *Network) InFlight() int {
	return int(n.Stats.BornPackets - n.Stats.ConsumedPackets)
}

// Quiesced reports whether nothing is in flight.
func (n *Network) Quiesced() bool { return n.InFlight() == 0 }

// Drain runs until the network quiesces or maxCycles elapse; it returns an
// error when progress stops for stallLimit cycles (a real deadlock under
// schemes without recovery, or a bug elsewhere).
func (n *Network) Drain(maxCycles int, stallLimit sim.Cycle) error {
	deadline := n.cycle + sim.Cycle(maxCycles)
	n.lastEject = n.cycle
	for n.cycle < deadline {
		if n.Quiesced() {
			return nil
		}
		if n.cycle-n.lastEject > stallLimit {
			return fmt.Errorf("network: no ejection for %d cycles with %d packets in flight (deadlock?)", stallLimit, n.InFlight())
		}
		n.Step()
	}
	if !n.Quiesced() {
		return fmt.Errorf("network: %d packets still in flight after %d cycles", n.InFlight(), maxCycles)
	}
	return nil
}
