// Package network assembles routers, links and network interfaces into a
// runnable chiplet-system NoC and advances it cycle by cycle. Deadlock
// freedom schemes (UPP, composable routing, remote control) plug in via
// the Scheme interface.
package network

import (
	"fmt"
	"os"
	"slices"
	"sync"
	"sync/atomic"

	"uppnoc/internal/message"
	"uppnoc/internal/router"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Kernel names for Config.Kernel and the UPP_KERNEL environment variable.
const (
	// KernelActive is the active-set scheduler: only routers and NIs with
	// pending work are stepped each cycle. The default.
	KernelActive = "active"
	// KernelNaive is the exhaustive every-component-every-cycle walk, kept
	// as a debug escape hatch (UPP_KERNEL=naive). Both kernels produce
	// bit-identical simulations.
	KernelNaive = "naive"
	// KernelParallel shards the active-set router walk across a bounded
	// worker pool with a two-phase compute/commit cycle (see parallel.go
	// and DESIGN.md §9). Bit-identical to the other kernels at any shard
	// count and GOMAXPROCS.
	KernelParallel = "parallel"
)

// Config parameterizes a network instance.
type Config struct {
	Router router.Config
	// RouterArch selects the router microarchitecture: router.ArchIQ (the
	// default when empty), router.ArchOQ or router.ArchVOQ. When empty,
	// the UPP_ROUTER environment variable is consulted before falling
	// back to the input-queued router. All variants are normalized to the
	// same per-port buffer budget (router.BufferBudget).
	RouterArch string
	// EjectionDepth is the per-VNet ejection queue capacity in packets.
	EjectionDepth int
	// Seed drives all randomized decisions (VC selection, traffic).
	Seed uint64
	// UseUpDown selects up*/down* local routing instead of XY (needed on
	// faulty systems).
	UseUpDown bool
	// Adaptive selects minimal-adaptive odd-even local routing with
	// credit-aware output selection — the "fully adaptive network" UPP's
	// recovery framework enables (deadlock-free within each layer by the
	// odd-even turn model; integration-induced deadlocks recovered by the
	// scheme). Mutually exclusive with UseUpDown.
	Adaptive bool
	// Kernel selects the cycle kernel: KernelActive (the default when
	// empty), KernelNaive or KernelParallel. When empty, the UPP_KERNEL
	// environment variable is consulted before falling back to the
	// active-set kernel.
	Kernel string
	// Shards is the static NodeID-range shard count of the parallel
	// kernel. 0 consults UPP_SHARDS and then defaults to GOMAXPROCS;
	// the value is clamped to the node count. The simulation is
	// bit-identical at every shard count — shards only trade sync
	// overhead against compute overlap. Ignored by the other kernels.
	Shards int
	// DisablePool turns off packet recycling: AllocPacket falls back to
	// plain heap allocation and nothing is released. The simulation is
	// bit-identical either way (the golden equivalence tests prove it);
	// the switch exists as a debug escape hatch and for before/after
	// allocation measurements. The UPP_NOPOOL environment variable (any
	// non-empty value) disables pooling the same way.
	DisablePool bool
}

// DefaultConfig mirrors Table II with 1 VC per VNet.
func DefaultConfig() Config {
	return Config{Router: router.DefaultConfig(), EjectionDepth: 4, Seed: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Router.Validate(); err != nil {
		return err
	}
	if c.EjectionDepth < 1 {
		return fmt.Errorf("network: EjectionDepth must be >= 1")
	}
	if c.UseUpDown && c.Adaptive {
		return fmt.Errorf("network: UseUpDown and Adaptive are mutually exclusive")
	}
	switch c.Kernel {
	case "", KernelActive, KernelNaive, KernelParallel:
	default:
		return fmt.Errorf("network: unknown kernel %q (want %q, %q or %q)", c.Kernel, KernelActive, KernelNaive, KernelParallel)
	}
	switch c.RouterArch {
	case "", router.ArchIQ, router.ArchOQ, router.ArchVOQ:
		if c.RouterArch != "" {
			// Arch-specific feasibility (oq needs a splittable depth and
			// no VCT) surfaces here rather than mid-construction.
			if _, err := router.LayoutFor(c.RouterArch, c.Router); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("network: unknown router arch %q (want %q, %q or %q)", c.RouterArch, router.ArchIQ, router.ArchOQ, router.ArchVOQ)
	}
	if c.Shards < 0 {
		return fmt.Errorf("network: Shards must be >= 0")
	}
	// The event wheel must cover the longest schedulable delay: a flit's
	// pipeline traversal plus its link flight. Surfacing the bound here
	// turns Schedule's runtime panic into a configuration error.
	if c.Router.LinkLatency+router.PipelineDepth >= wheelSize {
		return fmt.Errorf("network: LinkLatency %d + pipeline depth %d reaches the %d-cycle event wheel horizon",
			c.Router.LinkLatency, router.PipelineDepth, wheelSize)
	}
	return nil
}

// event kinds in the delivery wheel.
const (
	evFlit = iota
	evCredit
	evCall
	evSchemeCall
)

type event struct {
	kind  uint8
	to    topology.NodeID
	port  topology.PortID
	vc    int8
	delta int8
	free  bool
	flit  message.Flit
	fn    func(cycle sim.Cycle)
	// callIdx indexes callWheel[slot] for evSchemeCall events. Keeping the
	// SchemeCall payload out of event keeps the struct small so wheel slot
	// capacities stabilise (see TestSteadyStateZeroAlloc).
	callIdx int32
}

// wheelSize bounds the maximum event latency (link latency + pipeline).
const wheelSize = 128

// Network is a complete simulated system.
type Network struct {
	Topo    *topology.Topology
	Cfg     Config
	Routers []router.Microarch
	NIs     []*NI

	scheme        Scheme
	hier          *routing.Hierarchical
	routeOverride router.RouteFunc
	rng           *sim.RNG

	cycle sim.Cycle
	wheel [wheelSize][]event
	// callWheel carries the SchemeCall payloads for evSchemeCall events in
	// the matching wheel slot; event.callIdx points into it.
	callWheel [wheelSize][]SchemeCall
	nextID    uint64
	tracer    Tracer

	// pool recycles packets (see internal/message.Pool for the ownership
	// protocol); pooling caches the resolved DisablePool/UPP_NOPOOL
	// switch.
	pool    message.Pool
	pooling bool

	// Active-set scheduling state (KernelActive): a component is awake
	// from the wake event that gave it work until the retirement pass
	// finds it idle. The per-cycle walk visits awake components in
	// ascending NodeID order — the naive kernel's order — so the two
	// kernels are bit-identical.
	//
	// The awake sets are held as explicit ID lists next to the membership
	// flags, so the per-cycle walk is O(awake) instead of an O(total-nodes)
	// flag scan — on a 8k-router scale system at low load that is the
	// difference between touching 16 KiB of bools four times a cycle and
	// touching a handful of list entries. routerList is sorted ascending at
	// walk time (router wakes only happen at event delivery, before the
	// walk); niList is a sorted prefix plus a tail of mid-cycle wakes, and
	// the NI walk merges same-pass wakes in through niHeap (see walkNIs).
	kernel      string
	arch        string
	routerAwake []bool
	niAwake     []bool
	routerList  []int32
	niList      []int32
	niHeap      []int32
	niWalkPos   int32
	inNIWalk    bool

	// wheelPending counts events resident in the wheel; when it is zero and
	// nothing is awake, whole cycles are provably no-ops and Run/Drain skip
	// them in one jump (see skipIdleCycles).
	wheelPending int

	// Parallel-kernel state (KernelParallel, see parallel.go): static
	// NodeID-range shards with reusable commit logs, the in-compute flag
	// the recording sinks branch on, and engagement counters for tests.
	shards        []shard
	inCompute     bool
	computeWG     sync.WaitGroup
	computePhases uint64
	inlinePhases  uint64

	Stats   Stats
	latHist LatencyHistogram

	// lastEject supports deadlock detection in tests and the drain loop.
	lastEject sim.Cycle

	// faults is the optional runtime fault injector (nil in healthy runs;
	// see faultinject.go and internal/faults).
	faults FaultInjector

	// Dynamic-reconfiguration state (reconfigctl.go, internal/reconfig).
	// routeEpoch is the current routing epoch; prevHier holds the previous
	// epoch's tables while packets stamped with the old epoch are still in
	// flight. epochLive counts live packets per epoch parity (at most two
	// epochs coexist — the engine serializes transitions); routeMigrations
	// counts lazy old→new migrations. Both are atomics because Route runs
	// on compute workers under the parallel kernel; they are folded into
	// Stats coordinator-side at the end of every cycle (foldReconfigStats)
	// so Stats stay bit-identical across kernels.
	routeEpoch      uint32
	prevHier        *routing.Hierarchical
	injectHold      bool
	fencedLinks     int
	epochLive       [2]atomic.Int64
	routeMigrations atomic.Uint64
	// restoring suppresses fault-injector side effects while ReadSnapshot
	// resyncs the injector's cursor (see snapshot.go and reconfig.Engine).
	restoring bool
}

// New builds a network over t with the given scheme. The scheme's boundary
// policy governs egress selection; its hooks are wired into the cycle loop.
func New(t *topology.Topology, cfg Config, scheme Scheme) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Topo:   t,
		Cfg:    cfg,
		scheme: scheme,
		rng:    sim.NewRNG(cfg.Seed),
	}
	n.kernel = cfg.Kernel
	if n.kernel == "" {
		n.kernel = os.Getenv("UPP_KERNEL")
	}
	switch n.kernel {
	case "":
		n.kernel = KernelActive
	case KernelActive, KernelNaive, KernelParallel:
	default:
		return nil, fmt.Errorf("network: unknown kernel %q (from UPP_KERNEL; want %q, %q or %q)",
			n.kernel, KernelActive, KernelNaive, KernelParallel)
	}
	n.arch = cfg.RouterArch
	if n.arch == "" {
		n.arch = os.Getenv("UPP_ROUTER")
	}
	switch n.arch {
	case "":
		n.arch = router.ArchIQ
	case router.ArchIQ, router.ArchOQ, router.ArchVOQ:
		if _, err := router.LayoutFor(n.arch, cfg.Router); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("network: unknown router arch %q (from UPP_ROUTER; want %q, %q or %q)",
			n.arch, router.ArchIQ, router.ArchOQ, router.ArchVOQ)
	}
	n.pooling = !cfg.DisablePool && os.Getenv("UPP_NOPOOL") == ""
	n.routerAwake = make([]bool, t.NumNodes())
	n.niAwake = make([]bool, t.NumNodes())
	// Full-capacity awake lists: the flag arrays bound their length, so
	// appends in the wake paths never allocate.
	n.routerList = make([]int32, 0, t.NumNodes())
	n.niList = make([]int32, 0, t.NumNodes())
	n.niHeap = make([]int32, 0, t.NumNodes())
	// Pre-size the event wheel slots: steady state never grows them, so
	// the per-cycle append in DeliverFlit/DeliverCredit stays in place.
	// Capacity beyond the initial guess is grown once and then reused —
	// deliverEvents truncates to length 0 without freeing the array.
	for i := range n.wheel {
		n.wheel[i] = make([]event, 0, 16)
		n.callWheel[i] = make([]SchemeCall, 0, 4)
	}
	var local routing.Local
	switch {
	case cfg.UseUpDown:
		ud, err := routing.NewUpDown(t)
		if err != nil {
			return nil, err
		}
		local = ud
	case cfg.Adaptive:
		// Minimal-adaptive odd-even routing with credit-aware selection:
		// prefer the candidate output whose downstream VCs have the most
		// free credits for the packet's VNet.
		local = routing.NewOddEven(t, func(cur topology.NodeID, candidates []topology.PortID, p *message.Packet) topology.PortID {
			best := candidates[0]
			bestCredits := -1
			r := n.Routers[cur]
			for _, cand := range candidates {
				credits := 0
				for k := 0; k < cfg.Router.VCsPerVNet; k++ {
					dv := cfg.Router.VCIndex(p.VNet, k)
					if !r.OutBusy(cand, dv) {
						credits += int(r.OutCredits(cand, dv))
					}
				}
				if credits > bestCredits {
					bestCredits = credits
					best = cand
				}
			}
			return best
		})
	default:
		local = routing.NewXY(t)
	}
	n.hier = routing.NewHierarchical(t, local)
	route := func(cur topology.NodeID, inPort topology.PortID, p *message.Packet) (topology.PortID, error) {
		return n.Route(cur, inPort, p)
	}
	n.Routers = make([]router.Microarch, t.NumNodes())
	n.NIs = make([]*NI, t.NumNodes())
	for i := range t.Nodes {
		node := &t.Nodes[i]
		r, err := router.NewMicroarch(n.arch, node, cfg.Router, n, nil, route, n.rng.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		// The NI mirrors the router's effective input-side config: its
		// credit counters must match the local port's actual VC depth,
		// which buffer-splitting variants reduce below the budget depth.
		ni := newNI(n, node.ID, r, r.Config(), cfg.EjectionDepth)
		r.SetLocal(ni)
		n.Routers[i] = r
		n.NIs[i] = ni
	}
	if n.kernel == KernelParallel {
		if err := n.initParallel(cfg.Shards); err != nil {
			return nil, err
		}
	}
	scheme.Attach(n)
	return n, nil
}

// MustNew is New for known-good configurations.
func MustNew(t *topology.Topology, cfg Config, scheme Scheme) *Network {
	n, err := New(t, cfg, scheme)
	if err != nil {
		panic(fmt.Sprintf("network: MustNew(%d-node topology, scheme %q, kernel %q): %v",
			t.NumNodes(), scheme.Name(), cfg.Kernel, err))
	}
	return n
}

// Scheme returns the attached deadlock-freedom scheme.
func (n *Network) Scheme() Scheme { return n.scheme }

// Hier returns the hierarchical routing function (plugins route protocol
// signals with it).
func (n *Network) Hier() *routing.Hierarchical { return n.hier }

// SetRouteOverride replaces the default hierarchical routing with a
// scheme-provided route function (composable routing's turn-restricted
// tables). Schemes call it from Attach.
func (n *Network) SetRouteOverride(f router.RouteFunc) { n.routeOverride = f }

// SetLocalRouting swaps the per-layer routing algorithm at run time — the
// dynamic-reconfiguration scenario of Sec. III-C (hardware faults or power
// gating change the topology; a topology-independent scheme rebuilds its
// routing and carries on). Call it on a quiesced network: in-flight
// packets routed under the old algorithm would otherwise mix turn rules.
func (n *Network) SetLocalRouting(local routing.Local) {
	n.hier = routing.NewHierarchical(n.Topo, local)
}

// Route computes the output port for p at router cur with input port
// inPort — the same function the routers' route-computation stage uses.
// Scheme plugins route protocol signals and popup paths with it.
func (n *Network) Route(cur topology.NodeID, inPort topology.PortID, p *message.Packet) (topology.PortID, error) {
	if n.routeOverride != nil {
		return n.routeOverride(cur, inPort, p)
	}
	if n.prevHier != nil && p.Epoch != n.routeEpoch {
		// The packet was injected under the previous routing epoch: keep
		// routing it with the old tables (UPR-style coexistence — the
		// engine proved, or UPP nets, old∪new CDG safety). If the old
		// route would cross a fenced port (a link about to be cut), the
		// packet migrates onto the current epoch's tables instead.
		port, err := n.prevHier.NextPort(cur, p)
		if err == nil && port != topology.LocalPort && n.Routers[cur].PortFenced(port) {
			n.migratePacket(p)
			return n.hier.NextPort(cur, p)
		}
		return port, err
	}
	return n.hier.NextPort(cur, p)
}

// migratePacket moves a live packet from the previous routing epoch onto
// the current one. DownPhase resets: the new tables may legally route the
// packet back up through the interposer, and the up*/down* invariant only
// has to hold per routing function, not across the splice (transient
// cross-epoch cycles are exactly what UPP recovers during a transition).
func (n *Network) migratePacket(p *message.Packet) {
	old := p.Epoch
	p.Epoch = n.routeEpoch
	p.DownPhase = false
	n.epochLive[old&1].Add(-1)
	n.epochLive[p.Epoch&1].Add(1)
	n.routeMigrations.Add(1)
}

// foldReconfigStats publishes the worker-side migration counter into
// Stats. Called coordinator-side at the end of every cycle under all
// three kernels, so Stats remain bit-identical across them.
func (n *Network) foldReconfigStats() {
	n.Stats.RouteMigrations = n.routeMigrations.Load()
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() sim.Cycle { return n.cycle }

// RNG exposes the network's deterministic generator for components that
// need auxiliary randomness.
func (n *Network) RNG() *sim.RNG { return n.rng }

// NewPacketID allocates a unique packet ID.
func (n *Network) NewPacketID() uint64 {
	n.nextID++
	return n.nextID
}

// AllocPacket returns a zeroed packet for injection into this network —
// recycled from the pool when pooling is enabled, freshly allocated
// otherwise. Packet producers (the traffic generator, the coherence
// PEs) allocate through it; the destination NI releases the packet
// after the PE consumes the reassembled message. Callers that keep a
// packet pointer past consumption must snapshot what they need or hold
// a generation-stamped message.PacketRef.
func (n *Network) AllocPacket() *message.Packet {
	if !n.pooling {
		return &message.Packet{}
	}
	return n.pool.Get()
}

// releasePacket returns a consumed packet to the pool. The only caller
// is NI.consumeStep — the single release point of the ownership
// protocol.
func (n *Network) releasePacket(p *message.Packet) {
	if !n.pooling {
		return
	}
	n.pool.Put(p)
}

// PacketPool exposes the network's pool for preallocation and stats
// (benchmarks, soak tests).
func (n *Network) PacketPool() *message.Pool { return &n.pool }

// Pooling reports whether packet recycling is enabled (Config.DisablePool
// and the UPP_NOPOOL environment variable both turn it off).
func (n *Network) Pooling() bool { return n.pooling }

// prepare stamps routing state on a freshly enqueued packet.
func (n *Network) prepare(p *message.Packet) {
	if p.ID == 0 {
		p.ID = n.NewPacketID()
	}
	routing.Prepare(n.Topo, p, n.scheme.Policy())
}

// Schedule runs fn at the given future cycle (plugins use this for signal
// and popup-flit timing). Prefer ScheduleCall: a pending closure cannot
// be serialized, so WriteSnapshot refuses to checkpoint while any
// Schedule-scheduled event is in the wheel.
func (n *Network) Schedule(cycle sim.Cycle, fn func(cycle sim.Cycle)) {
	if cycle <= n.cycle {
		panic("network: Schedule in the past or present")
	}
	if cycle-n.cycle >= wheelSize {
		panic("network: Schedule beyond event wheel horizon")
	}
	slot := cycle % wheelSize
	n.wheel[slot] = append(n.wheel[slot], event{kind: evCall, fn: fn})
	n.wheelPending++
}

// ScheduleCall delivers c to the scheme's OnScheduledCall hook at the
// given future cycle — the serializable form of Schedule. Delivery
// order within a cycle matches Schedule exactly (one wheel slot, append
// order), so a scheme migrating from closures to calls stays
// bit-identical.
func (n *Network) ScheduleCall(cycle sim.Cycle, c SchemeCall) {
	if cycle <= n.cycle {
		panic("network: ScheduleCall in the past or present")
	}
	if cycle-n.cycle >= wheelSize {
		panic("network: ScheduleCall beyond event wheel horizon")
	}
	slot := cycle % wheelSize
	n.callWheel[slot] = append(n.callWheel[slot], c)
	n.wheel[slot] = append(n.wheel[slot], event{kind: evSchemeCall, callIdx: int32(len(n.callWheel[slot]) - 1)})
	n.wheelPending++
}

// DeliverFlit implements router.EventSink.
func (n *Network) DeliverFlit(to topology.NodeID, port topology.PortID, vc int8, f message.Flit, cycle sim.Cycle) {
	slot := cycle % wheelSize
	n.wheel[slot] = append(n.wheel[slot], event{kind: evFlit, to: to, port: port, vc: vc, flit: f})
	n.wheelPending++
}

// DeliverCredit implements router.EventSink.
func (n *Network) DeliverCredit(to topology.NodeID, port topology.PortID, vc int8, delta int, free bool, cycle sim.Cycle) {
	slot := cycle % wheelSize
	n.wheel[slot] = append(n.wheel[slot], event{kind: evCredit, to: to, port: port, vc: vc, delta: int8(delta), free: free})
	n.wheelPending++
}

// deliverLocalFlit carries an NI-injected flit to its router's local input
// port.
func (n *Network) deliverLocalFlit(node topology.NodeID, vc int8, f message.Flit, cycle sim.Cycle) {
	n.DeliverFlit(node, topology.LocalPort, vc, f, cycle)
}

// NI returns the network interface at node id.
func (n *Network) NI(id topology.NodeID) *NI { return n.NIs[id] }

// Router returns the router at node id.
func (n *Network) Router(id topology.NodeID) router.Microarch { return n.Routers[id] }

// Kernel returns the resolved cycle-kernel name (KernelActive,
// KernelNaive or KernelParallel).
func (n *Network) Kernel() string { return n.kernel }

// RouterArch returns the resolved router microarchitecture name
// (router.ArchIQ, router.ArchOQ or router.ArchVOQ).
func (n *Network) RouterArch() string { return n.arch }

// RouterActive reports whether the router at id is in the active set this
// cycle (always true under the naive kernel). Schemes use it to skip
// detection work at provably idle routers: a router outside the set holds
// no buffered flits, and its scheme-side per-router state was reset by the
// OnRouterIdle hook when it retired.
func (n *Network) RouterActive(id topology.NodeID) bool {
	return n.kernel == KernelNaive || n.routerAwake[id]
}

// wakeRouter puts a router into the active set. Routers are only woken at
// event delivery — before the router walk of the same cycle — so the list
// needs sorting once per cycle and never mid-walk maintenance.
func (n *Network) wakeRouter(id topology.NodeID) {
	if !n.routerAwake[id] {
		n.routerAwake[id] = true
		n.routerList = append(n.routerList, int32(id))
	}
}

// wakeNI puts an NI into the active set. NIs can be woken mid-NI-walk (a
// PE Consume callback enqueueing a reply); a wake at an ID past the walk
// cursor joins the current pass through the merge heap, matching the flag
// scan's semantics of visiting every awake ID in ascending order.
func (n *Network) wakeNI(id topology.NodeID) {
	if n.niAwake[id] {
		return
	}
	n.niAwake[id] = true
	n.niList = append(n.niList, int32(id))
	if n.inNIWalk && int32(id) > n.niWalkPos {
		n.niHeapPush(int32(id))
	}
}

// AwakeRouterIDs returns the ascending IDs of the routers left awake after
// this cycle's retirement pass, or nil under the naive kernel (where every
// router is implicitly active). It is valid during the scheme's EndOfCycle
// hook only — schemes drive detection walks with it so a mostly-idle
// large system costs O(awake), not O(total-nodes), per cycle. Callers must
// not modify the slice.
func (n *Network) AwakeRouterIDs() []int32 {
	if n.kernel == KernelNaive {
		return nil
	}
	return n.routerList
}

// niHeapPush adds id to the mid-walk wake heap (a plain binary min-heap
// over a reused slice; no container/heap interface boxing).
func (n *Network) niHeapPush(id int32) {
	h := append(n.niHeap, id)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	n.niHeap = h
}

// niHeapPop removes and returns the smallest pending mid-walk wake.
func (n *Network) niHeapPop() int32 {
	h := n.niHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	n.niHeap = h
	return top
}

// walkRouters sorts the awake-router list and steps each router in
// ascending NodeID order — the naive kernel's visit order. The list is a
// sorted prefix (last cycle's survivors, order-preserved by retirement)
// plus this cycle's wake tail, so the sort is near-linear.
func (n *Network) walkRouters(cycle sim.Cycle) {
	if len(n.routerList) == 0 {
		return
	}
	slices.Sort(n.routerList)
	for _, id := range n.routerList {
		n.Routers[id].Step(cycle)
	}
}

// walkNIs steps the awake NIs in ascending NodeID order, merging in NIs
// woken mid-pass at IDs beyond the cursor (they are visited in their
// sorted position, exactly as the flag scan would visit them); wakes at or
// before the cursor stay on the list for next cycle, again matching the
// scan. The prefix length is captured before stepping because same-pass
// wakes also append to the list for retirement bookkeeping.
func (n *Network) walkNIs(cycle sim.Cycle) {
	if len(n.niList) == 0 {
		return
	}
	slices.Sort(n.niList)
	prefix := len(n.niList)
	n.inNIWalk = true
	i := 0
	for i < prefix || len(n.niHeap) > 0 {
		var id int32
		if i < prefix && (len(n.niHeap) == 0 || n.niList[i] < n.niHeap[0]) {
			id = n.niList[i]
			i++
		} else {
			id = n.niHeapPop()
		}
		n.niWalkPos = id
		n.NIs[id].step(cycle)
	}
	n.inNIWalk = false
	n.niWalkPos = 0
}

// retireRouters removes routers with no remaining work from the active
// set, notifying the scheme in ascending NodeID order — identical to the
// flag scan's retirement order, which OnRouterIdle consumers observe. The
// in-place filter keeps the survivor list sorted.
func (n *Network) retireRouters(cycle sim.Cycle) {
	kept := n.routerList[:0]
	for _, id := range n.routerList {
		if n.Routers[id].Idle() {
			n.routerAwake[id] = false
			n.scheme.OnRouterIdle(topology.NodeID(id), cycle)
		} else {
			kept = append(kept, id)
		}
	}
	n.routerList = kept
}

// retireNIs removes idle NIs from the active set. NI retirement has no
// scheme callback, so only the surviving set matters, not the visit order;
// the list may end with an unsorted tail of mid-cycle wakes, which the
// next walk's sort folds in.
func (n *Network) retireNIs() {
	kept := n.niList[:0]
	for _, id := range n.niList {
		if n.NIs[id].Idle() {
			n.niAwake[id] = false
		} else {
			kept = append(kept, id)
		}
	}
	n.niList = kept
}

// deliverEvents drains the current wheel slot, waking the component each
// event lands on. Waking on credits as well as flits is conservative — a
// component with nothing buffered re-retires the same cycle — and keeps the
// wake rule a property of delivery, not of component internals.
func (n *Network) deliverEvents(cycle sim.Cycle, wake bool) {
	slot := cycle % wheelSize
	events := n.wheel[slot]
	n.wheel[slot] = events[:0]
	calls := n.callWheel[slot]
	n.callWheel[slot] = calls[:0]
	n.wheelPending -= len(events)
	for i := range events {
		e := &events[i]
		switch e.kind {
		case evFlit:
			delay := n.scheme.OnFlitArrived(e.to, e.port, e.flit, cycle)
			if wake {
				n.wakeRouter(e.to)
			}
			n.Routers[e.to].ReceiveFlit(e.port, e.vc, e.flit, cycle+delay)
		case evCredit:
			if e.port == topology.LocalPort {
				if wake {
					n.wakeNI(e.to)
				}
				n.NIs[e.to].receiveCredit(e.vc, int(e.delta), e.free)
			} else {
				if wake {
					n.wakeRouter(e.to)
				}
				n.Routers[e.to].ReceiveCredit(e.port, e.vc, int(e.delta), e.free)
			}
		case evCall:
			e.fn(cycle)
		case evSchemeCall:
			n.scheme.OnScheduledCall(calls[e.callIdx], cycle)
		}
		// Drop the processed event's references (flit packet pointer,
		// call closure): the slot array is reused at its grown capacity,
		// and a retained entry would pin a released packet until the
		// slot next overwrites it. Safe to clear in place — Schedule and
		// the Deliver* sinks bound deltas to [1, wheelSize), so nothing
		// appends to the slot being drained.
		*e = event{}
	}
	// Clear the drained call payloads too — they carry flit packet refs.
	for i := range calls {
		calls[i] = SchemeCall{}
	}
}

// Step advances the system by one cycle.
func (n *Network) Step() {
	switch n.kernel {
	case KernelNaive:
		n.stepNaive()
	case KernelParallel:
		n.stepParallel()
	default:
		n.stepActive()
	}
}

// stepNaive is the exhaustive walk: every router and NI steps every cycle.
// Idle components no-op (Step early-returns on an empty router), so the
// walk is wasted work at low load — which is what the active-set kernel
// removes — but its simplicity makes it the reference the golden tests
// compare against.
func (n *Network) stepNaive() {
	cycle := n.cycle
	n.beginCycleFaults(cycle)
	n.deliverEvents(cycle, false)
	n.scheme.StartOfCycle(cycle)
	for _, r := range n.Routers {
		r.Step(cycle)
	}
	for _, ni := range n.NIs {
		ni.step(cycle)
	}
	n.scheme.EndOfCycle(cycle)
	n.foldReconfigStats()
	n.cycle++
}

// stepActive advances one cycle stepping only awake components. Event
// delivery wakes the receiver; the walk visits awake components in
// ascending NodeID order — identical to the naive kernel's order — and a
// component woken mid-walk by an earlier one (an NI consuming a message
// and enqueueing a reply at a higher ID) is picked up in the same pass,
// exactly as the naive walk would. Components woken at an ID the pass
// already visited keep their wake flag and step next cycle, again matching
// naive semantics. After the walk, components with no remaining work
// retire; a retiring router notifies the scheme through OnRouterIdle so
// per-router timeout state resets once instead of being re-polled every
// cycle.
func (n *Network) stepActive() {
	cycle := n.cycle
	n.beginCycleFaults(cycle)
	n.deliverEvents(cycle, true)
	n.scheme.StartOfCycle(cycle)
	n.walkRouters(cycle)
	n.walkNIs(cycle)
	// Retirement pass: afterwards the awake sets hold exactly the
	// components with pending work, which EndOfCycle detection (UPP's
	// RouterActive check and AwakeRouterIDs walk) relies on.
	n.retireRouters(cycle)
	n.retireNIs()
	n.scheme.EndOfCycle(cycle)
	n.foldReconfigStats()
	n.cycle++
}

// Run advances the network by cycles steps, batching event-wheel
// advancement across provably empty cycles (see skipIdleCycles).
func (n *Network) Run(cycles int) {
	end := n.cycle + sim.Cycle(cycles)
	for n.cycle < end {
		if n.canSkipIdleCycles() {
			n.skipIdleCycles(end)
			if n.cycle >= end {
				return
			}
		}
		n.Step()
	}
}

// canSkipIdleCycles reports whether the next cycle is provably a complete
// no-op that the clock can jump over: no component awake (so the walks and
// retirement passes would do nothing), the scheme inert (so its per-cycle
// hooks are no-ops — the scheme certifies this itself via Inert), no fault
// injector (fault plans fire on absolute cycles regardless of activity),
// and not the naive kernel (which by definition steps everything every
// cycle and is the golden reference for that behavior). Events already in
// the wheel don't block skipping — skipIdleCycles stops at the first
// non-empty slot.
func (n *Network) canSkipIdleCycles() bool {
	return n.kernel != KernelNaive && n.faults == nil &&
		len(n.routerList) == 0 && len(n.niList) == 0 && n.scheme.Inert()
}

// skipIdleCycles advances the clock to the next cycle with a pending wheel
// event, or to limit when the wheel is empty. Skipped cycles are exactly
// the cycles Step would have spent draining an empty slot and running
// no-op hooks: nothing observable changes, so traces, stats and drain
// outcomes stay bit-identical to stepping through them one by one.
func (n *Network) skipIdleCycles(limit sim.Cycle) {
	if n.wheelPending == 0 {
		n.cycle = limit
		return
	}
	for c := n.cycle; c < limit; c++ {
		if len(n.wheel[c%wheelSize]) > 0 {
			n.cycle = c
			return
		}
	}
	n.cycle = limit
}

// recordEjected updates latency statistics when a packet fully ejects.
func (n *Network) recordEjected(p *message.Packet, cycle sim.Cycle) {
	n.lastEject = cycle
	n.epochLive[p.Epoch&1].Add(-1)
	n.Stats.EjectedPackets++
	if p.BirthCycle >= n.Stats.MeasureStart {
		n.Stats.MeasuredPackets++
		n.Stats.NetLatencySum += uint64(p.EjectCycle - p.InjectCycle)
		n.Stats.QueueLatencySum += uint64(p.InjectCycle - p.BirthCycle)
		n.latHist.Add(uint64(p.EjectCycle - p.BirthCycle))
	}
}

// InFlight counts packets born but not yet consumed by their destination
// PE, including injection-queue occupancy and packets awaiting
// consumption in ejection queues.
func (n *Network) InFlight() int {
	return int(n.Stats.BornPackets - n.Stats.ConsumedPackets)
}

// Quiesced reports whether nothing is in flight.
func (n *Network) Quiesced() bool { return n.InFlight() == 0 }

// Drain runs until the network quiesces or maxCycles elapse; it returns an
// error when progress stops for stallLimit cycles (a real deadlock under
// schemes without recovery, or a bug elsewhere).
func (n *Network) Drain(maxCycles int, stallLimit sim.Cycle) error {
	deadline := n.cycle + sim.Cycle(maxCycles)
	n.lastEject = n.cycle
	for n.cycle < deadline {
		if n.Quiesced() {
			return nil
		}
		if n.cycle-n.lastEject > stallLimit {
			// The watchdog: a structured diagnostic (diag.go) whose first
			// line keeps the historical message.
			return n.stallDiagnostic(stallLimit)
		}
		if n.canSkipIdleCycles() {
			// Jump over empty cycles, but never past the point where the
			// loop's own checks (deadline, stall watchdog) would fire — the
			// continue re-runs them at the new cycle, so the drain outcome
			// and the watchdog's trigger cycle are unchanged.
			limit := deadline
			if s := n.lastEject + stallLimit + 1; s < limit {
				limit = s
			}
			if before := n.cycle; limit > before {
				n.skipIdleCycles(limit)
				if n.cycle != before {
					continue
				}
			}
		}
		n.Step()
	}
	if !n.Quiesced() {
		return fmt.Errorf("network: %d packets still in flight after %d cycles", n.InFlight(), maxCycles)
	}
	return nil
}
