package network_test

import (
	"bytes"
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// poolRun drives one fixed workload with pooling on or off and returns
// the full flit-level trace plus the final statistics.
func poolRun(t *testing.T, scheme string, disablePool bool, rate float64, cycles int, seed uint64) (string, network.Stats) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	var sch network.Scheme
	switch scheme {
	case "upp":
		sch = core.New(core.DefaultConfig())
	case "none":
		sch = network.None{}
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	cfg := network.DefaultConfig()
	cfg.DisablePool = disablePool
	n, err := network.New(topo, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n.SetTracer(network.WriteTracer(&buf, 0))
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, seed)
	g.Run(cycles)
	return buf.String(), n.Stats
}

// TestPoolTraceEquality: packet recycling must be behaviorally invisible
// — the flit-level event trace and every statistic must be bit-identical
// with pooling on and off. The UPP run uses an overload rate so the full
// popup protocol (detection, signals, circuit drain, release) executes
// over recycled packets.
func TestPoolTraceEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cases := []struct {
		scheme string
		rate   float64
		cycles int
	}{
		{"none", 0.05, 6000},
		{"upp", 0.12, 10000}, // past the knee: popups fire
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			pooledTrace, pooledStats := poolRun(t, tc.scheme, false, tc.rate, tc.cycles, 42)
			plainTrace, plainStats := poolRun(t, tc.scheme, true, tc.rate, tc.cycles, 42)
			if pooledStats != plainStats {
				t.Errorf("stats diverge:\npooled:   %+v\nunpooled: %+v", pooledStats, plainStats)
			}
			if tc.scheme == "upp" && pooledStats.UpwardPackets == 0 {
				t.Error("UPP case never detected an upward packet; raise the rate so the popup path is exercised")
			}
			if pooledTrace != plainTrace {
				i := 0
				for i < len(pooledTrace) && i < len(plainTrace) && pooledTrace[i] == plainTrace[i] {
					i++
				}
				lo := i - 200
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("flit traces diverge at byte %d:\npooled:   ...%.300s\nunpooled: ...%.300s",
					i, pooledTrace[lo:], plainTrace[lo:])
			}
		})
	}
}
