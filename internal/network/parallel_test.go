package network_test

import (
	"bytes"
	"runtime"
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// parallelRun drives the fixed UPP overload workload under the parallel
// kernel at the given shard count and returns the trace, the stats and
// the network (for engagement telemetry).
func parallelRun(t *testing.T, kernel string, shards, cycles int) (string, network.Stats, *network.Network) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	cfg.Shards = shards
	n, err := network.New(topo, cfg, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n.SetTracer(network.WriteTracer(&buf, 0))
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.12, 42)
	g.Run(cycles)
	return buf.String(), n.Stats, n
}

// TestParallelShardDeterminism: the parallel kernel's output must not
// depend on the shard count or on GOMAXPROCS — only the commit order
// (ascending NodeID) determines the result. The workload is UPP past the
// saturation knee so the popup protocol (detection, signals, circuit
// drain, OnPacketEjected completions) runs inside every configuration.
// Deliberately not skipped in -short mode: this is the core safety net
// for the concurrent compute phase and CI runs it under -race.
func TestParallelShardDeterminism(t *testing.T) {
	const cycles = 4000
	refTrace, refStats, _ := parallelRun(t, network.KernelActive, 0, cycles)
	if refStats.UpwardPackets == 0 {
		t.Fatal("reference run never detected an upward packet; raise the rate so the popup path is exercised")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 4, 7} {
			trace, stats, n := parallelRun(t, network.KernelParallel, shards, cycles)
			if n.Shards() != shards {
				t.Fatalf("procs=%d: got %d shards, want %d", procs, n.Shards(), shards)
			}
			if compute, _ := n.ParallelPhases(); compute == 0 {
				t.Errorf("procs=%d shards=%d: compute phase never engaged (all cycles fell back inline)", procs, shards)
			}
			if stats != refStats {
				t.Errorf("procs=%d shards=%d: stats diverge from active kernel:\nactive:   %+v\nparallel: %+v",
					procs, shards, refStats, stats)
			}
			if stats.UpwardPackets != refStats.UpwardPackets {
				t.Errorf("procs=%d shards=%d: popup count %d, want %d",
					procs, shards, stats.UpwardPackets, refStats.UpwardPackets)
			}
			if trace != refTrace {
				i := 0
				for i < len(refTrace) && i < len(trace) && refTrace[i] == trace[i] {
					i++
				}
				lo := i - 200
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("procs=%d shards=%d: flit traces diverge at byte %d:\nactive:   ...%.300s\nparallel: ...%.300s",
					procs, shards, i, refTrace[lo:], trace[lo:])
			}
		}
	}
}
