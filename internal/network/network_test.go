package network_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func baselineNet(t *testing.T, vcs int) *network.Network {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = vcs
	n, err := network.New(topo, cfg, network.None{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestSinglePacketCrossesChiplets(t *testing.T) {
	n := baselineNet(t, 1)
	cores := n.Topo.Cores()
	src, dst := cores[0], cores[len(cores)-1] // opposite corner chiplets
	p := &message.Packet{Src: src, Dst: dst, VNet: message.VNetRequest, Size: 5}
	n.NI(src).Enqueue(p, 0)
	if err := n.Drain(2000, 500); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if p.EjectCycle <= p.InjectCycle {
		t.Fatalf("bad timestamps: inject %d eject %d", p.InjectCycle, p.EjectCycle)
	}
	lat := p.EjectCycle - p.InjectCycle
	// Roughly: ~10 hops x 3 cycles + serialization; sanity bounds only.
	if lat < 10 || lat > 200 {
		t.Fatalf("implausible network latency %d", lat)
	}
	if n.Stats.EjectedPackets != 1 || n.Stats.ConsumedPackets != 1 {
		t.Fatalf("stats: %+v", n.Stats)
	}
}

func TestLowLoadUniformRandomDrains(t *testing.T) {
	for _, vcs := range []int{1, 4} {
		n := baselineNet(t, vcs)
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.02, 7)
		g.Run(3000)
		g.SetRate(0)
		if err := n.Drain(20000, 2000); err != nil {
			t.Fatalf("vcs=%d: %v", vcs, err)
		}
		if n.Stats.EjectedPackets == 0 {
			t.Fatalf("vcs=%d: nothing ejected", vcs)
		}
		if n.Stats.EjectedPackets != n.Stats.BornPackets {
			t.Fatalf("vcs=%d: born %d != ejected %d", vcs, n.Stats.BornPackets, n.Stats.EjectedPackets)
		}
		if lat := n.AvgNetLatency(); lat < 5 || lat > 120 {
			t.Fatalf("vcs=%d: implausible avg latency %f", vcs, lat)
		}
	}
}

func TestAllPairsDeliver(t *testing.T) {
	n := baselineNet(t, 1)
	cores := n.Topo.Cores()
	want := 0
	for i, src := range cores {
		// A spread of destinations per source keeps the test fast while
		// still covering intra-chiplet, inter-chiplet and corner cases.
		for j := 0; j < len(cores); j += 7 {
			if i == j {
				continue
			}
			p := &message.Packet{Src: src, Dst: cores[j], VNet: message.VNet(want % message.NumVNets), Size: 1 + 4*(want%2)}
			n.NI(src).Enqueue(p, 0)
			want++
		}
	}
	if err := n.Drain(200000, 20000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if int(n.Stats.EjectedPackets) != want {
		t.Fatalf("ejected %d of %d", n.Stats.EjectedPackets, want)
	}
}
