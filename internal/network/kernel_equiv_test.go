package network_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"uppnoc/internal/composable"
	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/remotectl"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
	"uppnoc/internal/workload"
)

// kernelRun drives one fixed workload under the given kernel and router
// arch ("" = default iq) and returns the full flit-level trace plus the
// final statistics.
func kernelRun(t *testing.T, kernel, arch, scheme string, rate float64, cycles int, seed uint64) (string, network.Stats) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	var (
		sch network.Scheme
		err error
	)
	switch scheme {
	case "upp":
		sch = core.New(core.DefaultConfig())
	case "remote_control":
		sch = remotectl.New(remotectl.DefaultConfig())
	case "composable":
		sch, err = composable.NewScheme(topo)
	case "none":
		sch = network.None{}
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	cfg.RouterArch = arch
	n, err := network.New(topo, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n.SetTracer(network.WriteTracer(&buf, 0))
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, seed)
	g.Run(cycles)
	return buf.String(), n.Stats
}

// TestKernelTraceEquality: the active-set and parallel kernels must be
// pure optimizations — the flit-level event trace and every statistic
// must be bit-identical to the naive exhaustive walk, for every scheme.
// The UPP run uses an overload rate so deadlocks form and the full popup
// protocol (detection, signals, circuit drain) executes under all
// kernels.
func TestKernelTraceEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cases := []struct {
		scheme string
		arch   string
		rate   float64
		cycles int
	}{
		{"none", "", 0.05, 6000},
		{"composable", "", 0.05, 6000},
		{"remote_control", "", 0.05, 6000},
		{"upp", "", 0.12, 10000}, // past the knee: popups fire
		// The oq and voq router variants must honor the same shard
		// concurrency contract; the UPP overload case exercises their
		// Step, drain and popup interplay under all kernels.
		{"upp", "oq", 0.12, 10000},
		{"upp", "voq", 0.12, 10000},
		{"none", "oq", 0.05, 6000},
		{"none", "voq", 0.05, 6000},
	}
	for _, tc := range cases {
		name := tc.scheme
		if tc.arch != "" {
			name += "_" + tc.arch
		}
		t.Run(name, func(t *testing.T) {
			activeTrace, activeStats := kernelRun(t, network.KernelActive, tc.arch, tc.scheme, tc.rate, tc.cycles, 42)
			if tc.scheme == "upp" && activeStats.UpwardPackets == 0 {
				t.Error("UPP case never detected an upward packet; raise the rate so the popup path is exercised")
			}
			for _, kernel := range []string{network.KernelNaive, network.KernelParallel} {
				trace, stats := kernelRun(t, kernel, tc.arch, tc.scheme, tc.rate, tc.cycles, 42)
				if activeStats != stats {
					t.Errorf("stats diverge:\nactive:   %+v\n%-8s: %+v", activeStats, kernel, stats)
				}
				if activeTrace != trace {
					i := 0
					for i < len(activeTrace) && i < len(trace) && activeTrace[i] == trace[i] {
						i++
					}
					lo := i - 200
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("flit traces diverge at byte %d:\nactive:   ...%.300s\n%-8s: ...%.300s",
						i, activeTrace[lo:], kernel, trace[lo:])
				}
			}
		})
	}
}

// kernelScaleRun is kernelRun on a scale-out system (topology.BuildScale)
// with an explicit parallel-kernel shard count.
func kernelScaleRun(t *testing.T, kernel string, shards int, scheme string, rate float64, cycles int, seed uint64) (string, network.Stats) {
	t.Helper()
	topo, err := topology.BuildScale(topology.ScaleLargeConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sch network.Scheme
	switch scheme {
	case "upp":
		sch = core.New(core.DefaultConfig())
	case "none":
		sch = network.None{}
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	cfg.Shards = shards
	n, err := network.New(topo, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n.SetTracer(network.WriteTracer(&buf, 0))
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, rate, seed)
	g.Run(cycles)
	return buf.String(), n.Stats
}

// TestKernelTraceEqualityScale extends the bit-identity contract to a
// scale-out system (the hierarchical 2x2-tile, 2048-router preset): the
// active-set and parallel kernels — the latter at several shard counts,
// since shard boundaries move with the node count — must reproduce the
// naive walk's flit trace exactly on a topology 30x the paper baseline.
func TestKernelTraceEqualityScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cases := []struct {
		scheme string
		rate   float64
		cycles int
	}{
		{"none", 0.03, 2000},
		{"upp", 0.06, 2500},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			activeTrace, activeStats := kernelScaleRun(t, network.KernelActive, 0, tc.scheme, tc.rate, tc.cycles, 42)
			type leg struct {
				kernel string
				shards int
			}
			for _, l := range []leg{{network.KernelNaive, 0}, {network.KernelParallel, 1}, {network.KernelParallel, 4}} {
				trace, stats := kernelScaleRun(t, l.kernel, l.shards, tc.scheme, tc.rate, tc.cycles, 42)
				name := l.kernel
				if l.shards > 0 {
					name = fmt.Sprintf("%s/shards=%d", l.kernel, l.shards)
				}
				if activeStats != stats {
					t.Errorf("stats diverge:\nactive: %+v\n%s: %+v", activeStats, name, stats)
				}
				if activeTrace != trace {
					i := 0
					for i < len(activeTrace) && i < len(trace) && activeTrace[i] == trace[i] {
						i++
					}
					lo := i - 200
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("flit traces diverge at byte %d:\nactive: ...%.300s\n%s: ...%.300s",
						i, activeTrace[lo:], name, trace[lo:])
				}
			}
		})
	}
}

// kernelCollectiveRun drives one closed-loop ring allreduce under UPP to
// completion and returns the full flit-level trace plus stats and the
// completion cycle.
func kernelCollectiveRun(t *testing.T, kernel string) (string, network.Stats, sim.Cycle) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	n := network.MustNew(topo, cfg, core.New(core.DefaultConfig()))
	var buf bytes.Buffer
	n.SetTracer(network.WriteTracer(&buf, 0))
	prog, err := workload.RingAllReduce(len(topo.Cores()), 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		t.Fatal(err)
	}
	eng.Iterations = 2
	if err := eng.Run(200000); err != nil {
		t.Fatalf("kernel %s: %v", kernel, err)
	}
	return buf.String(), n.Stats, eng.FinishCycle()
}

// TestKernelTraceEqualityCollective is the collective-workload leg of
// the kernel bit-identity contract: the closed-loop engine reads
// consumption events (NI Consume hooks), which the parallel kernel
// defers to its commit phase — this test proves that deferral is
// invisible at flit granularity, under dependency-gated traffic whose
// injection times are themselves functions of earlier deliveries.
func TestKernelTraceEqualityCollective(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	activeTrace, activeStats, activeFinish := kernelCollectiveRun(t, network.KernelActive)
	for _, kernel := range []string{network.KernelNaive, network.KernelParallel} {
		trace, stats, finish := kernelCollectiveRun(t, kernel)
		if finish != activeFinish {
			t.Errorf("completion cycle diverges: active %d, %s %d", activeFinish, kernel, finish)
		}
		if activeStats != stats {
			t.Errorf("stats diverge:\nactive:   %+v\n%-8s: %+v", activeStats, kernel, stats)
		}
		if activeTrace != trace {
			i := 0
			for i < len(activeTrace) && i < len(trace) && activeTrace[i] == trace[i] {
				i++
			}
			lo := i - 200
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("flit traces diverge at byte %d:\nactive:   ...%.300s\n%-8s: ...%.300s",
				i, activeTrace[lo:], kernel, trace[lo:])
		}
	}
}

// TestDrainStallDetectionActiveKernel: a genuinely wedged network must
// still trip Drain's stallLimit under the active-set kernel, where almost
// every component has been idle-retired — deadlocked routers hold buffered
// flits forever, so they stay in the active set and the no-ejection
// watchdog fires exactly as it does under the naive walk.
func TestDrainStallDetectionActiveKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	wedge := func(kernel string, seed uint64) error {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Kernel = kernel
		n := network.MustNew(topo, cfg, network.None{})
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.12, seed)
		g.Run(20000)
		g.SetRate(0)
		return n.Drain(30000, 3000)
	}
	for seed := uint64(40); seed < 48; seed++ {
		err := wedge(network.KernelActive, seed)
		if err == nil {
			continue // no deadlock with this seed
		}
		if !strings.Contains(err.Error(), "no ejection") {
			t.Fatalf("seed %d: unexpected drain failure: %v", seed, err)
		}
		// The naive kernel must report the identical wedge.
		nerr := wedge(network.KernelNaive, seed)
		if nerr == nil || nerr.Error() != err.Error() {
			t.Fatalf("seed %d: kernels disagree on the wedge:\nactive: %v\nnaive:  %v", seed, err, nerr)
		}
		return
	}
	t.Fatal("no deadlock formed across seeds; raise the load")
}
