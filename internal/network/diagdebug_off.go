//go:build !uppdebug

package network

// diagDeepAlways gates the exhaustive every-node-every-VC variants of the
// state diagnostics (CheckConservation, CheckQuiescent). Off by default so
// the checks stay affordable on multi-thousand-router scale systems; build
// with -tags uppdebug to force the exhaustive walks at every size (see
// diagdebug_on.go).
const diagDeepAlways = false
