package network_test

import (
	"testing"

	"uppnoc/internal/network"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

// TestConservationUnderLoad checks the credit/buffer conservation law
// every 200 cycles through a loaded run.
func TestConservationUnderLoad(t *testing.T) {
	for _, vcs := range []int{1, 4} {
		topo := topology.MustBuild(topology.BaselineConfig())
		cfg := network.DefaultConfig()
		cfg.Router.VCsPerVNet = vcs
		n := network.MustNew(topo, cfg, network.None{})
		g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.05, 3)
		for i := 0; i < 8000; i++ {
			g.Tick(n.Cycle())
			n.Step()
			if i%200 == 0 {
				if err := n.CheckConservation(); err != nil {
					t.Fatalf("vcs=%d cycle %d: %v", vcs, i, err)
				}
			}
		}
	}
}
