package message

import (
	"fmt"

	"uppnoc/internal/topology"
)

// SignalType is one of the three UPP protocol signal kinds (Sec. V-B1).
type SignalType int8

// UPP protocol signals.
const (
	// UPPReq asks the destination NI to reserve an ejection queue entry
	// and installs circuit entries along its path.
	UPPReq SignalType = iota
	// UPPAck confirms the reservation; it retraces the req's path in
	// reverse and starts the popup.
	UPPAck
	// UPPStop cancels a reservation after a false positive resolved
	// itself (the stalled packet moved on normally).
	UPPStop
)

// String names the signal type.
func (s SignalType) String() string {
	switch s {
	case UPPReq:
		return "UPP_req"
	case UPPAck:
		return "UPP_ack"
	case UPPStop:
		return "UPP_stop"
	}
	return fmt.Sprintf("signal(%d)", int8(s))
}

// Signal is a UPP protocol signal in flight. Signals travel through the
// normal router datapath like head flits, in two dedicated 32-bit buffers
// per chiplet router (one for req/stop, one for ack), with priority over
// normal flits during switch allocation (Sec. V-B2).
type Signal struct {
	Type SignalType
	VNet VNet
	// Dst is the destination router/NI (req and stop only; acks follow the
	// reverse circuit path instead of route computation).
	Dst topology.NodeID
	// Origin is the interposer router that started the popup; acks
	// terminate there.
	Origin topology.NodeID
	// PopupID matches reqs, acks and stops of one popup instance.
	PopupID uint64
	// StartMask is the ack's one-hot "popup started" field: bit v set
	// means the popup of VNet v already started inside the chiplet
	// (wormhole partly-transmitted case, Sec. V-B3).
	StartMask uint8
	// InputVC is the req's 4-bit field locating the upward packet's input
	// VC under wormhole flow control (Fig. 4).
	InputVC int8
}

// Bit widths of the Fig. 4 encodings.
const (
	signalTypeBits = 3
	destBits       = 8
	vnetBits       = 3 // one-hot over NumVNets
	inputVCBits    = 4
	startBits      = 3

	// ReqStopEncodedBits is the encoded width of UPP_req/UPP_stop
	// (3+8+3+4 = 18 bits under wormhole).
	ReqStopEncodedBits = signalTypeBits + destBits + vnetBits + inputVCBits
	// AckEncodedBits is the encoded width of UPP_ack (3+3+3 = 9 bits
	// under wormhole).
	AckEncodedBits = signalTypeBits + vnetBits + startBits
	// SignalBufferBits is the conservative buffer width the paper
	// provisions per signal buffer.
	SignalBufferBits = 32
)

// Encode packs the signal into the Fig. 4 wire format and returns it in
// the low bits of a uint32. The layout (LSB first) is:
//
//	req/stop: type[3] | dest[8] | vnetOneHot[3] | inputVC[4]
//	ack:      type[3] | vnetOneHot[3] | start[3]
//
// Encode exists to demonstrate that the protocol state fits the paper's
// 18-/9-bit budgets; the simulator moves Signal structs around.
func (s *Signal) Encode() (uint32, error) {
	if s.VNet < 0 || int(s.VNet) >= NumVNets {
		return 0, fmt.Errorf("message: encode signal with invalid vnet %d", s.VNet)
	}
	oneHot := uint32(1) << uint(s.VNet)
	switch s.Type {
	case UPPReq, UPPStop:
		if s.Dst < 0 || s.Dst > 255 {
			return 0, fmt.Errorf("message: destination %d does not fit the 8-bit field", s.Dst)
		}
		if s.InputVC < 0 || s.InputVC > 15 {
			return 0, fmt.Errorf("message: input VC %d does not fit the 4-bit field", s.InputVC)
		}
		v := uint32(s.Type)
		v |= uint32(s.Dst) << signalTypeBits
		v |= oneHot << (signalTypeBits + destBits)
		v |= uint32(s.InputVC) << (signalTypeBits + destBits + vnetBits)
		return v, nil
	case UPPAck:
		if s.StartMask>>startBits != 0 {
			return 0, fmt.Errorf("message: start mask %#x does not fit 3 bits", s.StartMask)
		}
		v := uint32(s.Type)
		v |= oneHot << signalTypeBits
		v |= uint32(s.StartMask) << (signalTypeBits + vnetBits)
		return v, nil
	}
	return 0, fmt.Errorf("message: encode unknown signal type %d", s.Type)
}

// DecodeSignal reverses Encode. PopupID and Origin are simulator-side
// bookkeeping and are not part of the wire format.
func DecodeSignal(v uint32) (Signal, error) {
	var s Signal
	s.Type = SignalType(v & ((1 << signalTypeBits) - 1))
	oneHotToVNet := func(oh uint32) (VNet, error) {
		for i := 0; i < NumVNets; i++ {
			if oh == 1<<uint(i) {
				return VNet(i), nil
			}
		}
		return 0, fmt.Errorf("message: invalid one-hot vnet field %#x", oh)
	}
	switch s.Type {
	case UPPReq, UPPStop:
		s.Dst = topology.NodeID((v >> signalTypeBits) & ((1 << destBits) - 1))
		vn, err := oneHotToVNet((v >> (signalTypeBits + destBits)) & ((1 << vnetBits) - 1))
		if err != nil {
			return s, err
		}
		s.VNet = vn
		s.InputVC = int8((v >> (signalTypeBits + destBits + vnetBits)) & ((1 << inputVCBits) - 1))
	case UPPAck:
		vn, err := oneHotToVNet((v >> signalTypeBits) & ((1 << vnetBits) - 1))
		if err != nil {
			return s, err
		}
		s.VNet = vn
		s.StartMask = uint8((v >> (signalTypeBits + vnetBits)) & ((1 << startBits) - 1))
	default:
		return s, fmt.Errorf("message: decode unknown signal type %d", s.Type)
	}
	return s, nil
}

// String formats the signal for debugging.
func (s *Signal) String() string {
	return fmt.Sprintf("%s vnet=%s dst=%d origin=%d popup=%d", s.Type, s.VNet, s.Dst, s.Origin, s.PopupID)
}
