package message

import (
	"fmt"
	"math/bits"

	"uppnoc/internal/topology"
)

// SignalType is one of the three UPP protocol signal kinds (Sec. V-B1).
type SignalType int8

// UPP protocol signals.
const (
	// UPPReq asks the destination NI to reserve an ejection queue entry
	// and installs circuit entries along its path.
	UPPReq SignalType = iota
	// UPPAck confirms the reservation; it retraces the req's path in
	// reverse and starts the popup.
	UPPAck
	// UPPStop cancels a reservation after a false positive resolved
	// itself (the stalled packet moved on normally).
	UPPStop
)

// String names the signal type.
func (s SignalType) String() string {
	switch s {
	case UPPReq:
		return "UPP_req"
	case UPPAck:
		return "UPP_ack"
	case UPPStop:
		return "UPP_stop"
	}
	return fmt.Sprintf("signal(%d)", int8(s))
}

// Signal is a UPP protocol signal in flight. Signals travel through the
// normal router datapath like head flits, in two dedicated 32-bit buffers
// per chiplet router (one for req/stop, one for ack), with priority over
// normal flits during switch allocation (Sec. V-B2).
type Signal struct {
	Type SignalType
	VNet VNet
	// Dst is the destination router/NI (req and stop only; acks follow the
	// reverse circuit path instead of route computation).
	Dst topology.NodeID
	// Origin is the interposer router that started the popup; acks
	// terminate there.
	Origin topology.NodeID
	// PopupID matches reqs, acks and stops of one popup instance.
	PopupID uint64
	// StartMask is the ack's one-hot "popup started" field: bit v set
	// means the popup of VNet v already started inside the chiplet
	// (wormhole partly-transmitted case, Sec. V-B3).
	StartMask uint8
	// InputVC is the req's 4-bit field locating the upward packet's input
	// VC under wormhole flow control (Fig. 4).
	InputVC int8
}

// Bit widths of the Fig. 4 encodings.
const (
	signalTypeBits = 3
	destBits       = 8
	vnetBits       = 3 // one-hot over NumVNets
	inputVCBits    = 4
	startBits      = 3

	// ReqStopEncodedBits is the encoded width of UPP_req/UPP_stop
	// (3+8+3+4 = 18 bits under wormhole).
	ReqStopEncodedBits = signalTypeBits + destBits + vnetBits + inputVCBits
	// AckEncodedBits is the encoded width of UPP_ack (3+3+3 = 9 bits
	// under wormhole).
	AckEncodedBits = signalTypeBits + vnetBits + startBits
	// SignalBufferBits is the conservative buffer width the paper
	// provisions per signal buffer.
	SignalBufferBits = 32
)

// DestBits returns the destination-field width a system of numNodes
// components needs. The paper's Fig. 4 provisions 8 bits, which addresses
// its ~60-node evaluation system; the scale-out topologies widen the
// field to ceil(log2(numNodes)) while the rest of the encoding is
// unchanged. The widened req/stop must still fit the 32-bit signal
// buffer, which bounds addressable systems at 2^22 nodes — far above the
// 8192-router huge preset.
func DestBits(numNodes int) int {
	b := bits.Len(uint(numNodes - 1))
	if b < destBits {
		return destBits
	}
	return b
}

// Encode packs the signal into the Fig. 4 wire format and returns it in
// the low bits of a uint32. The layout (LSB first) is:
//
//	req/stop: type[3] | dest[8] | vnetOneHot[3] | inputVC[4]
//	ack:      type[3] | vnetOneHot[3] | start[3]
//
// Encode exists to demonstrate that the protocol state fits the paper's
// 18-/9-bit budgets; the simulator moves Signal structs around.
func (s *Signal) Encode() (uint32, error) {
	return s.EncodeSized(destBits)
}

// EncodeSized is Encode with an explicit destination-field width
// (DestBits of the system's node count): the layout is the paper's, only
// the dest field stretches. The widened req/stop encoding must still fit
// the 32-bit signal buffer; a system too large for that fails here rather
// than silently truncating addresses.
func (s *Signal) EncodeSized(dBits int) (uint32, error) {
	if s.VNet < 0 || int(s.VNet) >= NumVNets {
		return 0, fmt.Errorf("message: encode signal with invalid vnet %d", s.VNet)
	}
	oneHot := uint32(1) << uint(s.VNet)
	switch s.Type {
	case UPPReq, UPPStop:
		if signalTypeBits+dBits+vnetBits+inputVCBits > SignalBufferBits {
			return 0, fmt.Errorf("message: %d-bit destination field overflows the %d-bit signal buffer", dBits, SignalBufferBits)
		}
		if s.Dst < 0 || uint64(s.Dst) >= 1<<uint(dBits) {
			return 0, fmt.Errorf("message: destination %d does not fit the %d-bit field", s.Dst, dBits)
		}
		if s.InputVC < 0 || s.InputVC > 15 {
			return 0, fmt.Errorf("message: input VC %d does not fit the 4-bit field", s.InputVC)
		}
		v := uint32(s.Type)
		v |= uint32(s.Dst) << signalTypeBits
		v |= oneHot << uint(signalTypeBits+dBits)
		v |= uint32(s.InputVC) << uint(signalTypeBits+dBits+vnetBits)
		return v, nil
	case UPPAck:
		if s.StartMask>>startBits != 0 {
			return 0, fmt.Errorf("message: start mask %#x does not fit 3 bits", s.StartMask)
		}
		v := uint32(s.Type)
		v |= oneHot << signalTypeBits
		v |= uint32(s.StartMask) << (signalTypeBits + vnetBits)
		return v, nil
	}
	return 0, fmt.Errorf("message: encode unknown signal type %d", s.Type)
}

// DecodeSignal reverses Encode. PopupID and Origin are simulator-side
// bookkeeping and are not part of the wire format.
func DecodeSignal(v uint32) (Signal, error) {
	return DecodeSignalSized(v, destBits)
}

// DecodeSignalSized reverses EncodeSized at the given destination-field
// width.
func DecodeSignalSized(v uint32, dBits int) (Signal, error) {
	var s Signal
	s.Type = SignalType(v & ((1 << signalTypeBits) - 1))
	oneHotToVNet := func(oh uint32) (VNet, error) {
		for i := 0; i < NumVNets; i++ {
			if oh == 1<<uint(i) {
				return VNet(i), nil
			}
		}
		return 0, fmt.Errorf("message: invalid one-hot vnet field %#x", oh)
	}
	switch s.Type {
	case UPPReq, UPPStop:
		if signalTypeBits+dBits+vnetBits+inputVCBits > SignalBufferBits {
			return s, fmt.Errorf("message: %d-bit destination field overflows the %d-bit signal buffer", dBits, SignalBufferBits)
		}
		s.Dst = topology.NodeID((v >> signalTypeBits) & ((1 << uint(dBits)) - 1))
		vn, err := oneHotToVNet((v >> uint(signalTypeBits+dBits)) & ((1 << vnetBits) - 1))
		if err != nil {
			return s, err
		}
		s.VNet = vn
		s.InputVC = int8((v >> uint(signalTypeBits+dBits+vnetBits)) & ((1 << inputVCBits) - 1))
	case UPPAck:
		vn, err := oneHotToVNet((v >> signalTypeBits) & ((1 << vnetBits) - 1))
		if err != nil {
			return s, err
		}
		s.VNet = vn
		s.StartMask = uint8((v >> (signalTypeBits + vnetBits)) & ((1 << startBits) - 1))
	default:
		return s, fmt.Errorf("message: decode unknown signal type %d", s.Type)
	}
	return s, nil
}

// String formats the signal for debugging.
func (s *Signal) String() string {
	return fmt.Sprintf("%s vnet=%s dst=%d origin=%d popup=%d", s.Type, s.VNet, s.Dst, s.Origin, s.PopupID)
}
