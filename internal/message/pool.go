package message

// Pool is a packet freelist. The steady-state simulation loop allocates
// one Packet per injected message; recycling them through a per-Network
// pool removes that allocation (and the GC pressure it creates exactly
// where saturation sweeps spend their time).
//
// Ownership protocol:
//   - Get hands out a packet zeroed except for its generation counter.
//   - exactly one component releases it — the destination NI, after the
//     PE consumed the reassembled message (stats were already recorded
//     at tail ejection).
//   - Put bumps the generation, so any holder that kept a pointer past
//     the release can detect staleness by comparing a snapshotted
//     Generation() (see PacketRef).
//
// Put ignores packets the pool does not own (built with &Packet{}), so
// tests and tools that hand-construct packets and inspect them after a
// run are unaffected by pooling. Double release panics.
//
// A Pool is not safe for concurrent use; each Network owns one, and
// parallel sweeps build one Network per goroutine.
type Pool struct {
	free []*Packet

	// Stats counts pool traffic: Gets is total Get calls, Reuses the
	// subset served from the freelist, Puts total releases. Live
	// outstanding packets = Gets - Puts (after Preallocate'd spares are
	// excluded, which never count in either).
	Stats PoolStats
}

// PoolStats are allocation counters for observability and invariant
// checks.
type PoolStats struct {
	Gets   uint64
	Reuses uint64
	Puts   uint64
}

// Live returns the number of pool-owned packets currently handed out.
func (s PoolStats) Live() uint64 { return s.Gets - s.Puts }

// Get returns a zeroed pool-owned packet, reusing a released one when
// available. The generation counter survives reuse (it is the staleness
// signal); every other field is zero, exactly like a fresh &Packet{}.
func (pl *Pool) Get() *Packet {
	pl.Stats.Gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.Stats.Reuses++
		*p = Packet{gen: p.gen, pooled: true}
		return p
	}
	return &Packet{pooled: true}
}

// Put releases a packet back to the freelist. Foreign (non-pooled)
// packets are ignored; releasing the same packet twice panics.
func (pl *Pool) Put(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.released {
		panic("message: double release of pooled packet")
	}
	p.released = true
	p.gen++
	pl.Stats.Puts++
	pl.free = append(pl.free, p)
}

// Preallocate grows the freelist by n spare packets so a measurement
// window never observes a fresh heap allocation. Spares do not count in
// Stats (they were never handed out).
func (pl *Pool) Preallocate(n int) {
	if cap(pl.free)-len(pl.free) < n {
		grown := make([]*Packet, len(pl.free), len(pl.free)+n)
		copy(grown, pl.free)
		pl.free = grown
	}
	for i := 0; i < n; i++ {
		pl.free = append(pl.free, &Packet{pooled: true, released: true})
	}
}

// FreeLen returns the current freelist depth.
func (pl *Pool) FreeLen() int { return len(pl.free) }

// Check validates freelist invariants: every entry is non-nil, pooled,
// flagged released, and appears exactly once. Soak tests call it after
// drains.
func (pl *Pool) Check() error {
	seen := make(map[*Packet]bool, len(pl.free))
	for i, p := range pl.free {
		switch {
		case p == nil:
			return errPool("nil entry", i)
		case !p.pooled:
			return errPool("foreign packet in freelist", i)
		case !p.released:
			return errPool("freelist entry not flagged released", i)
		case seen[p]:
			return errPool("duplicate freelist entry", i)
		}
		seen[p] = true
	}
	return nil
}

type poolError struct {
	msg string
	idx int
}

func (e poolError) Error() string { return "message: pool: " + e.msg }

func errPool(msg string, idx int) error { return poolError{msg: msg, idx: idx} }

// PacketRef is a generation-stamped weak reference: it remembers the
// generation at capture time so Alive detects the packet being released
// (and possibly recycled) afterwards. Long-lived holders that may
// outlast the packet — UPP popup bookkeeping is the canonical case —
// snapshot what they need and keep a PacketRef only for identity
// checks.
type PacketRef struct {
	p   *Packet
	gen uint32
}

// MakeRef captures a reference to p at its current generation.
func MakeRef(p *Packet) PacketRef {
	if p == nil {
		return PacketRef{}
	}
	return PacketRef{p: p, gen: p.gen}
}

// Ptr returns the referenced packet without a liveness check (callers
// must have established Alive, or accept a possibly-recycled packet).
func (r PacketRef) Ptr() *Packet { return r.p }

// Alive reports whether the referenced packet still is the incarnation
// captured by MakeRef.
func (r PacketRef) Alive() bool { return r.p != nil && !r.p.released && r.p.gen == r.gen }

// Holds reports whether q is exactly the captured incarnation: same
// pointer, same generation, not released. This is the pooling-safe form
// of the pointer comparison `q == r.p` — pointer equality alone is
// ABA-unsafe once packets recycle.
func (r PacketRef) Holds(q *Packet) bool { return q != nil && q == r.p && r.Alive() }
