// Package message defines the units that travel through the network:
// packets, the flits they are segmented into, virtual networks, and the
// three UPP protocol signals (UPP_req, UPP_ack, UPP_stop) with the compact
// encodings of the paper's Fig. 4.
package message

import (
	"fmt"

	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// VNet is a virtual network. The MESI directory protocol used for
// evaluation needs three (Table II): requests, forwards, responses.
// Protocol deadlocks are handled by this separation, exactly as the paper
// assumes; UPP targets routing deadlocks.
type VNet int8

// The three virtual networks of the MESI protocol.
const (
	VNetRequest  VNet = 0
	VNetForward  VNet = 1
	VNetResponse VNet = 2
	// NumVNets is the virtual network count (Table II).
	NumVNets = 3
)

// String names the virtual network.
func (v VNet) String() string {
	switch v {
	case VNetRequest:
		return "req"
	case VNetForward:
		return "fwd"
	case VNetResponse:
		return "resp"
	}
	return fmt.Sprintf("vnet(%d)", int8(v))
}

// Packet sizes used throughout the evaluation (Table II).
const (
	// ControlPacketFlits is the size of a control packet.
	ControlPacketFlits = 1
	// DataPacketFlits is the size of a data packet (cache line).
	DataPacketFlits = 5
)

// Class tags the protocol-level meaning of a packet. Synthetic traffic
// uses ClassSyntheticCtrl/Data; the coherence substrate uses the MESI
// message classes.
type Class int8

// Packet classes.
const (
	ClassSyntheticCtrl Class = iota
	ClassSyntheticData
	ClassGetS    // read request (core -> directory), VNet 0, control
	ClassGetM    // write request (core -> directory), VNet 0, control
	ClassPutM    // writeback (core -> directory), VNet 0, data
	ClassFwdGetS // forward to owner, VNet 1, control
	ClassFwdGetM // forward/invalidate to owner or sharers, VNet 1, control
	ClassInv     // invalidation to a sharer, VNet 1, control
	ClassData    // data response, VNet 2, data
	ClassDataAck // control response (ack/grant), VNet 2, control
)

// IsTerminating reports whether a class is a terminating message type of
// the request-response protocol (consumed unconditionally by the PE —
// the first case of the Sec. V-B4 correctness proof).
func (c Class) IsTerminating() bool {
	return c == ClassData || c == ClassDataAck || c == ClassSyntheticCtrl || c == ClassSyntheticData
}

// Packet is a multi-flit message in flight. Routers and NIs share one
// Packet value per message; flits carry a pointer to it.
type Packet struct {
	ID   uint64
	Src  topology.NodeID
	Dst  topology.NodeID
	VNet VNet
	// Size is the packet length in flits (>= 1).
	Size  int
	Class Class

	// BirthCycle is when the message entered the NI injection queue;
	// InjectCycle when its head flit entered the network; EjectCycle when
	// its tail flit was ejected at the destination NI. Queueing latency =
	// Inject-Birth, network latency = Eject-Inject (the split of Fig. 7's
	// source data).
	BirthCycle  sim.Cycle
	InjectCycle sim.Cycle
	EjectCycle  sim.Cycle

	// EgressBoundary is the boundary router through which this packet
	// leaves its source chiplet (chosen at injection; Sec. V-D static
	// binding, or the composable baseline's restricted choice).
	// InvalidNode for intra-chiplet and interposer-sourced packets.
	EgressBoundary topology.NodeID
	// IngressInterposer is the interposer router whose up link leads to
	// the boundary router bound to the destination chiplet router.
	// InvalidNode if the destination is on the interposer.
	IngressInterposer topology.NodeID

	// Epoch is the routing epoch the packet's route lookups are pinned
	// to. During a dynamic reconfiguration the network keeps both the old
	// and the new routing tables live; packets stamped with an older epoch
	// keep using the table they were injected under until they deliver or
	// are migrated onto the current table (see internal/reconfig).
	Epoch uint32

	// DownPhase and RouteLayer carry per-layer up*/down* routing state in
	// the head flit: once a packet takes a "down" tree link it may not go
	// "up" again within the same layer. RouteLayer tracks the layer the
	// packet was last routed in so the phase resets after a vertical hop.
	// LayerEntryX records the column where the packet entered its current
	// layer (odd-even adaptive routing's source-column rule).
	DownPhase   bool
	RouteLayer  int16
	LayerEntryX int16

	// Popup is set while the packet is being popped up by UPP: its flits
	// bypass buffers via the circuit installed by the UPP_req and take
	// absolute switch priority (Sec. V-C).
	Popup bool
	// PopupID identifies the popup instance that claimed this packet.
	PopupID uint64
	// PopupResUsed marks that the packet consumed its UPP ejection-queue
	// reservation (set by the NI on the first popup-mode flit it accepts;
	// the head may already have ejected normally before the popup began).
	PopupResUsed bool
	// DstChiplet caches the destination's chiplet index (or
	// topology.InterposerChiplet); routers use it to tell whether a popup
	// flit is inside the destination chiplet (circuit territory) or still
	// upstream flowing normally.
	DstChiplet int16

	// Coherence bookkeeping (zero for synthetic traffic).
	Addr uint64
	Txn  uint64
	// AuxNode carries the protocol-level third party (e.g. the original
	// requester inside a forward); AuxCount carries small counts (e.g.
	// expected invalidation acks).
	AuxNode  topology.NodeID
	AuxCount int32

	// gen counts this packet's pool incarnations. Pool.Put bumps it, so a
	// holder that snapshotted Generation() can later detect that its
	// pointer now names a recycled packet (the ABA guard for pooled
	// reuse). pooled marks packets owned by a Pool — foreign packets
	// (tests and examples build them with &Packet{}) pass through Put
	// untouched and are never recycled. released marks a packet currently
	// sitting in the freelist; any simulator component seeing a released
	// packet in flight is a use-after-free.
	gen      uint32
	pooled   bool
	released bool
}

// Generation returns the packet's pool incarnation counter. It changes
// every time the packet is released, so comparing a snapshot against the
// current value detects reuse-after-release.
func (p *Packet) Generation() uint32 { return p.gen }

// Pooled reports whether the packet is owned by a Pool.
func (p *Packet) Pooled() bool { return p.pooled }

// Released reports whether the packet is currently in a freelist. A
// released packet must not be referenced by live simulation state.
func (p *Packet) Released() bool { return p.released }

// IsInterChiplet reports whether the packet must cross the interposer:
// source and destination are on different chiplets, or either endpoint is
// an interposer router.
func (p *Packet) IsInterChiplet(t *topology.Topology) bool {
	sc := t.Node(p.Src).Chiplet
	dc := t.Node(p.Dst).Chiplet
	return sc != dc || sc == topology.InterposerChiplet
}

// Flit is one link-width unit of a packet. Seq 0 is the head flit (it
// carries the routing information); Seq Size-1 is the tail.
type Flit struct {
	Pkt *Packet
	Seq int32
}

// IsHead reports whether f is the packet's head flit.
func (f Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether f is the packet's tail flit. A single-flit packet
// is both head and tail.
func (f Flit) IsTail() bool { return int(f.Seq) == f.Pkt.Size-1 }

// String formats the flit for debugging.
func (f Flit) String() string {
	kind := "body"
	switch {
	case f.IsHead() && f.IsTail():
		kind = "head+tail"
	case f.IsHead():
		kind = "head"
	case f.IsTail():
		kind = "tail"
	}
	return fmt.Sprintf("pkt%d[%d/%d] %s %s %d->%d", f.Pkt.ID, f.Seq, f.Pkt.Size, kind, f.Pkt.VNet, f.Pkt.Src, f.Pkt.Dst)
}
