//go:build !uppdebug

package message

// PoolDebug gates hot-path stale-generation assertions (released packets
// observed in router pipelines, NI queues or wheel slots). Off by
// default so the checks compile away; build with -tags uppdebug to
// enable them. Cold-path assertions (UPP popup ownership, double
// release) are always on.
const PoolDebug = false
