//go:build uppdebug

package message

// PoolDebug gates hot-path stale-generation assertions. This build has
// them enabled (-tags uppdebug); see pooldebug_off.go for the default.
const PoolDebug = true
