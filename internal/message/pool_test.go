package message

import "testing"

func TestPoolGetZeroedAndPooled(t *testing.T) {
	var pl Pool
	p := pl.Get()
	if !p.Pooled() || p.Released() {
		t.Fatalf("fresh Get: pooled=%v released=%v; want pooled, not released", p.Pooled(), p.Released())
	}
	p.ID = 7
	p.Size = 5
	p.DownPhase = true
	gen := p.Generation()
	pl.Put(p)
	if !p.Released() {
		t.Fatal("Put did not flag the packet released")
	}
	if p.Generation() != gen+1 {
		t.Fatalf("Put bumped generation to %d; want %d", p.Generation(), gen+1)
	}
	q := pl.Get()
	if q != p {
		t.Fatal("Get did not reuse the released packet")
	}
	if q.ID != 0 || q.Size != 0 || q.DownPhase {
		t.Fatalf("reused packet not zeroed: %+v", q)
	}
	if q.Generation() != gen+1 {
		t.Fatalf("reuse reset the generation to %d; want it preserved at %d", q.Generation(), gen+1)
	}
	if q.Released() || !q.Pooled() {
		t.Fatalf("reused packet flags wrong: released=%v pooled=%v", q.Released(), q.Pooled())
	}
}

func TestPoolIgnoresForeignPackets(t *testing.T) {
	var pl Pool
	p := &Packet{ID: 1} // hand-built, as tests and examples do
	pl.Put(p)
	if pl.FreeLen() != 0 || pl.Stats.Puts != 0 {
		t.Fatalf("foreign packet entered the freelist (len %d, puts %d)", pl.FreeLen(), pl.Stats.Puts)
	}
	if p.Released() {
		t.Fatal("foreign packet flagged released")
	}
	pl.Put(nil) // must be a no-op, not a crash
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	var pl Pool
	p := pl.Get()
	pl.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	pl.Put(p)
}

func TestPoolStatsAndPreallocate(t *testing.T) {
	var pl Pool
	pl.Preallocate(8)
	if pl.FreeLen() != 8 {
		t.Fatalf("Preallocate(8): freelist %d", pl.FreeLen())
	}
	if pl.Stats.Gets != 0 || pl.Stats.Puts != 0 {
		t.Fatalf("Preallocate counted in stats: %+v", pl.Stats)
	}
	a, b := pl.Get(), pl.Get()
	if pl.Stats.Gets != 2 || pl.Stats.Reuses != 2 {
		t.Fatalf("preallocated packets not reused: %+v", pl.Stats)
	}
	pl.Put(a)
	if got := pl.Stats.Live(); got != 1 {
		t.Fatalf("Live() = %d; want 1", got)
	}
	pl.Put(b)
	if err := pl.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestPacketRefDetectsRecycling(t *testing.T) {
	var pl Pool
	p := pl.Get()
	ref := MakeRef(p)
	if !ref.Alive() || !ref.Holds(p) {
		t.Fatal("fresh ref not alive")
	}
	pl.Put(p)
	if ref.Alive() {
		t.Fatal("ref alive after release")
	}
	q := pl.Get() // same pointer, next generation
	if q != p {
		t.Fatal("expected pointer reuse")
	}
	if ref.Holds(q) {
		t.Fatal("ref claims to hold the recycled incarnation (ABA)")
	}
	if (PacketRef{}).Alive() {
		t.Fatal("zero ref alive")
	}
}
