package message

// SnapMeta exposes the pool-ownership fields for checkpointing: the
// generation counter, pool ownership, and the released flag. Only the
// snapshot encoder should need these together; everything else uses
// Generation/Pooled/Released.
func (p *Packet) SnapMeta() (gen uint32, pooled, released bool) {
	return p.gen, p.pooled, p.released
}

// SetSnapMeta overwrites the pool-ownership fields during a restore.
// It exists solely for snapshot decoding — ordinary code must never
// forge generation counters or released flags.
func (p *Packet) SetSnapMeta(gen uint32, pooled, released bool) {
	p.gen, p.pooled, p.released = gen, pooled, released
}

// ForEachFree visits the freelist in order, oldest release first — the
// order Get consumes from the tail, so a snapshot that replays the list
// verbatim reproduces the exact reuse sequence.
func (pl *Pool) ForEachFree(fn func(*Packet)) {
	for _, p := range pl.free {
		fn(p)
	}
}

// SetFree replaces the freelist wholesale during a restore. The entries
// must already carry released/pooled flags (restored via SetSnapMeta);
// Check validates the result in debug builds.
func (pl *Pool) SetFree(ps []*Packet) {
	pl.free = ps
}
