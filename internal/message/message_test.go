package message_test

import (
	"strings"
	"testing"
	"testing/quick"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

func TestFlitHeadTail(t *testing.T) {
	p := &message.Packet{Size: 5}
	for seq := int32(0); seq < 5; seq++ {
		f := message.Flit{Pkt: p, Seq: seq}
		if f.IsHead() != (seq == 0) {
			t.Fatalf("seq %d head", seq)
		}
		if f.IsTail() != (seq == 4) {
			t.Fatalf("seq %d tail", seq)
		}
	}
	single := message.Flit{Pkt: &message.Packet{Size: 1}}
	if !single.IsHead() || !single.IsTail() {
		t.Fatal("single-flit packet must be head and tail")
	}
}

func TestSignalEncodeDecodeRoundTrip(t *testing.T) {
	err := quick.Check(func(typRaw uint8, vnetRaw uint8, dst uint8, inputVC uint8, start uint8) bool {
		s := message.Signal{
			Type:      message.SignalType(typRaw % 3),
			VNet:      message.VNet(vnetRaw % message.NumVNets),
			Dst:       topology.NodeID(dst),
			InputVC:   int8(inputVC % 16),
			StartMask: start % 8,
		}
		enc, err := s.Encode()
		if err != nil {
			return false
		}
		dec, err := message.DecodeSignal(enc)
		if err != nil {
			return false
		}
		if dec.Type != s.Type || dec.VNet != s.VNet {
			return false
		}
		switch s.Type {
		case message.UPPReq, message.UPPStop:
			return dec.Dst == s.Dst && dec.InputVC == s.InputVC
		default:
			return dec.StartMask == s.StartMask
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSignalEncodingFitsPaperBudget(t *testing.T) {
	// Fig. 4: req/stop fit in 18 bits, ack in 9, both within the 32-bit
	// buffers.
	if message.ReqStopEncodedBits != 18 {
		t.Fatalf("req/stop width %d, paper 18", message.ReqStopEncodedBits)
	}
	if message.AckEncodedBits != 9 {
		t.Fatalf("ack width %d, paper 9", message.AckEncodedBits)
	}
	s := message.Signal{Type: message.UPPReq, VNet: 2, Dst: 255, InputVC: 15}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if enc>>message.ReqStopEncodedBits != 0 {
		t.Fatalf("req encoding %#x spills past %d bits", enc, message.ReqStopEncodedBits)
	}
	a := message.Signal{Type: message.UPPAck, VNet: 1, StartMask: 7}
	enc, err = a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if enc>>message.AckEncodedBits != 0 {
		t.Fatalf("ack encoding %#x spills past %d bits", enc, message.AckEncodedBits)
	}
}

func TestSignalEncodeSized(t *testing.T) {
	// DestBits never shrinks below the paper's 8-bit field, widens as
	// ceil(log2(N)) past 256 nodes, and covers the scale presets.
	for _, tc := range []struct{ nodes, want int }{
		{60, 8}, {256, 8}, {257, 9}, {3072, 12}, {12288, 14},
	} {
		if got := message.DestBits(tc.nodes); got != tc.want {
			t.Errorf("DestBits(%d) = %d, want %d", tc.nodes, got, tc.want)
		}
	}
	// A widened req round-trips at the matching width and rejects a
	// destination past it.
	s := message.Signal{Type: message.UPPReq, VNet: 2, Dst: 3000, InputVC: 15}
	if _, err := s.Encode(); err == nil {
		t.Fatal("destination 3000 must not fit the paper's 8-bit field")
	}
	enc, err := s.EncodeSized(12)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := message.DecodeSignalSized(enc, 12)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Dst != s.Dst || dec.VNet != s.VNet || dec.InputVC != s.InputVC {
		t.Fatalf("sized round trip mangled the signal: %+v -> %+v", s, dec)
	}
	if _, err := s.EncodeSized(11); err == nil {
		t.Fatal("destination 3000 must not fit an 11-bit field")
	}
	// The widened encoding still lives inside the 32-bit signal buffer; a
	// width that would overflow it is rejected outright.
	if _, err := s.EncodeSized(23); err == nil {
		t.Fatal("a 23-bit destination field must overflow the 32-bit buffer")
	}
}

func TestSignalEncodeRejectsBadFields(t *testing.T) {
	cases := []message.Signal{
		{Type: message.UPPReq, VNet: -1},
		{Type: message.UPPReq, VNet: 0, Dst: 300},
		{Type: message.UPPReq, VNet: 0, Dst: 1, InputVC: 16},
		{Type: message.UPPAck, VNet: 0, StartMask: 8},
		{Type: message.SignalType(9), VNet: 0},
	}
	for i, s := range cases {
		if _, err := s.Encode(); err == nil {
			t.Errorf("case %d: expected encode error", i)
		}
	}
}

func TestIsInterChiplet(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	cores := topo.Cores()
	sameChiplet := &message.Packet{Src: cores[0], Dst: cores[1]}
	if sameChiplet.IsInterChiplet(topo) {
		t.Fatal("same-chiplet packet flagged inter-chiplet")
	}
	cross := &message.Packet{Src: cores[0], Dst: cores[len(cores)-1]}
	if !cross.IsInterChiplet(topo) {
		t.Fatal("cross-chiplet packet not flagged")
	}
	toDir := &message.Packet{Src: cores[0], Dst: topo.Interposer[0]}
	if !toDir.IsInterChiplet(topo) {
		t.Fatal("core-to-interposer packet not flagged")
	}
}

func TestTerminatingClasses(t *testing.T) {
	// The Sec. V-B4 proof depends on response classes terminating.
	for _, c := range []message.Class{message.ClassData, message.ClassDataAck} {
		if !c.IsTerminating() {
			t.Fatalf("response class %d must terminate", c)
		}
	}
	for _, c := range []message.Class{message.ClassGetS, message.ClassGetM, message.ClassFwdGetS, message.ClassInv} {
		if c.IsTerminating() {
			t.Fatalf("request/forward class %d must not terminate", c)
		}
	}
}

// TestStringMethods pins the human-readable formats used in traces and
// deadlock certificates.
func TestStringMethods(t *testing.T) {
	if got := message.VNetRequest.String(); got != "req" {
		t.Fatalf("VNet string %q", got)
	}
	if got := message.VNet(9).String(); got != "vnet(9)" {
		t.Fatalf("unknown VNet string %q", got)
	}
	p := &message.Packet{ID: 7, Size: 5, VNet: message.VNetResponse, Src: 1, Dst: 2}
	head := message.Flit{Pkt: p, Seq: 0}
	if s := head.String(); !containsAll(s, "pkt7", "head", "resp", "1->2") {
		t.Fatalf("head flit string %q", s)
	}
	tail := message.Flit{Pkt: p, Seq: 4}
	if s := tail.String(); !containsAll(s, "tail") {
		t.Fatalf("tail flit string %q", s)
	}
	sig := message.Signal{Type: message.UPPAck, VNet: 1, PopupID: 3}
	if s := sig.String(); !containsAll(s, "UPP_ack", "fwd", "popup=3") {
		t.Fatalf("signal string %q", s)
	}
	if got := message.SignalType(9).String(); !containsAll(got, "signal(9)") {
		t.Fatalf("unknown signal type string %q", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
