package message_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/topology"
)

// FuzzDecodeSignal: arbitrary 32-bit patterns either fail to decode or
// round-trip through Encode to an equivalent wire word.
func FuzzDecodeSignal(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	// Valid encodings as seeds.
	req := message.Signal{Type: message.UPPReq, VNet: 1, Dst: 42, InputVC: 3}
	if v, err := req.Encode(); err == nil {
		f.Add(v)
	}
	ack := message.Signal{Type: message.UPPAck, VNet: 2, StartMask: 5}
	if v, err := ack.Encode(); err == nil {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, raw uint32) {
		s, err := message.DecodeSignal(raw)
		if err != nil {
			return // invalid patterns are rejected, never mis-decoded
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("decoded signal %+v does not re-encode: %v", s, err)
		}
		s2, err := message.DecodeSignal(enc)
		if err != nil {
			t.Fatalf("re-encoded signal does not decode: %v", err)
		}
		if s2.Type != s.Type || s2.VNet != s.VNet || s2.Dst != s.Dst ||
			s2.InputVC != s.InputVC || s2.StartMask != s.StartMask {
			t.Fatalf("round trip mismatch: %+v vs %+v", s, s2)
		}
	})
}

// FuzzEncodeSignal: any field combination either encodes within the
// Fig. 4 budget or errors — it never panics or overflows silently.
func FuzzEncodeSignal(f *testing.F) {
	f.Add(uint8(0), int8(0), int16(0), uint8(0), uint8(0))
	f.Add(uint8(1), int8(2), int16(255), uint8(15), uint8(7))
	f.Fuzz(func(t *testing.T, typ uint8, vnet int8, dst int16, inputVC, start uint8) {
		s := message.Signal{
			Type:      message.SignalType(typ % 4),
			VNet:      message.VNet(vnet),
			Dst:       topology.NodeID(dst),
			InputVC:   int8(inputVC),
			StartMask: start,
		}
		enc, err := s.Encode()
		if err != nil {
			return
		}
		switch s.Type {
		case message.UPPReq, message.UPPStop:
			if enc>>message.ReqStopEncodedBits != 0 {
				t.Fatalf("req/stop encoding %#x overflows %d bits", enc, message.ReqStopEncodedBits)
			}
		case message.UPPAck:
			if enc>>message.AckEncodedBits != 0 {
				t.Fatalf("ack encoding %#x overflows %d bits", enc, message.AckEncodedBits)
			}
		}
	})
}
