// Package remotectl implements the remote-control baseline (Majumder et
// al., IEEE TC 2021) the UPP paper compares against: a deadlock *avoidance*
// scheme that isolates inter-chiplet packets from intra-chiplet packets
// with injection control.
//
// Mechanics reproduced from the paper's description (Secs. III-B/VI):
//
//   - every boundary router owns four data-packet-sized boundary buffers
//     ("slots"); an inter-chiplet packet may only be injected after it has
//     reserved a slot at its egress boundary router;
//   - the reservation handshake costs a minimum 2-cycle round trip on the
//     permission subnetwork, plus queueing when slots are contended;
//   - at the egress boundary router, inter-chiplet flits are absorbed into
//     the reserved slot instead of competing for mesh buffers, so an
//     inter-chiplet packet can never block an intra-chiplet packet — the
//     isolation that makes integration-induced deadlocks impossible;
//   - inter-chiplet packets crossing a boundary router pay one extra
//     pipeline cycle (VC allocation runs as a separate stage there).
//
// Routing is identical to UPP's (static binding, full path diversity), so
// the performance difference against UPP is purely the injection-control
// latency — matching the paper's analysis.
package remotectl

import (
	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/routing"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Config parameterizes remote control.
type Config struct {
	// SlotsPerBoundary is the number of data-packet-sized boundary buffers
	// per boundary router (the paper evaluates 4).
	SlotsPerBoundary int
	// HandshakeRTT is the minimum reservation round-trip in cycles (>= 2).
	// The actual round trip is 2 x the source's depth in the boundary
	// router's hard-wired permission tree (Fig. 2(b)), floored at this.
	HandshakeRTT int
	// BoundaryCrossingDelay is the extra pipeline latency charged to
	// inter-chiplet flits at boundary routers.
	BoundaryCrossingDelay int
}

// DefaultConfig matches the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{SlotsPerBoundary: 4, HandshakeRTT: 2, BoundaryCrossingDelay: 1}
}

// slot buffers one absorbed inter-chiplet packet at a boundary router.
type slot struct {
	pkt   *message.Packet
	flits []message.Flit
	next  int // next flit index to send down
	outVC int8
}

// request is a pending slot reservation.
type request struct {
	pkt   *message.Packet
	ready sim.Cycle // earliest grant completion (request time + RTT)
}

// boundary is the per-boundary-router state.
type boundary struct {
	node topology.NodeID
	// treeDepth is each chiplet router's hop depth in this boundary's
	// hard-wired permission tree (BFS over the chiplet mesh, Fig. 2(b));
	// the reservation round trip is 2 x depth.
	treeDepth map[topology.NodeID]int
	free      int
	reqQ      []request
	granted   map[uint64]bool
	// absorbing maps packet ID to its slot once flits start arriving.
	absorbing map[uint64]*slot
	// sendQ holds slots in absorption order per VNet (wormhole ordering on
	// the down link).
	sendQ  [message.NumVNets][]*slot
	vnetRR int
	// held tracks the VCs we put on Hold last cycle so they can be
	// recomputed.
	held []heldVC
}

type heldVC struct {
	port topology.PortID
	vc   int
}

// Scheme plugs remote control into the network.
type Scheme struct {
	network.BaseScheme
	cfg Config
	net *network.Network

	boundaries map[topology.NodeID]*boundary
	// requested remembers packets whose reservation request is queued.
	requested map[uint64]bool
}

// New returns a remote-control scheme.
func New(cfg Config) *Scheme {
	if cfg.SlotsPerBoundary <= 0 {
		cfg.SlotsPerBoundary = 4
	}
	if cfg.HandshakeRTT < 2 {
		cfg.HandshakeRTT = 2
	}
	return &Scheme{cfg: cfg, requested: make(map[uint64]bool)}
}

// Name implements network.Scheme.
func (s *Scheme) Name() string { return "remote_control" }

// Policy implements network.Scheme — the same static binding as UPP.
func (s *Scheme) Policy() routing.BoundaryPolicy { return routing.DefaultPolicy{} }

// Attach implements network.Scheme.
func (s *Scheme) Attach(n *network.Network) {
	s.net = n
	s.boundaries = make(map[topology.NodeID]*boundary)
	for _, ch := range n.Topo.Chiplets {
		for _, b := range ch.Boundary {
			s.boundaries[b] = &boundary{
				node:      b,
				treeDepth: permissionTree(n.Topo, b, ch.Routers),
				free:      s.cfg.SlotsPerBoundary,
				granted:   make(map[uint64]bool),
				absorbing: make(map[uint64]*slot),
			}
		}
	}
}

// permissionTree computes each chiplet router's depth in the BFS tree the
// permission subnetwork is hard-wired as, rooted at the boundary router.
func permissionTree(t *topology.Topology, root topology.NodeID, routers []topology.NodeID) map[topology.NodeID]int {
	inLayer := make(map[topology.NodeID]bool, len(routers))
	for _, r := range routers {
		inLayer[r] = true
	}
	depth := map[topology.NodeID]int{root: 0}
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := t.Node(cur)
		for pi := 1; pi < len(n.Ports); pi++ {
			nb := n.Ports[pi].Neighbor
			if !inLayer[nb] || n.Ports[pi].Link.Vertical {
				continue
			}
			if _, ok := depth[nb]; !ok {
				depth[nb] = depth[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return depth
}

// interChiplet reports whether p leaves its source chiplet (and therefore
// needs a boundary slot).
func (s *Scheme) interChiplet(p *message.Packet) bool {
	return p.EgressBoundary != topology.InvalidNode
}

// CanStartPacket implements the injection control.
func (s *Scheme) CanStartPacket(_ *network.NI, p *message.Packet, cycle sim.Cycle) bool {
	if !s.interChiplet(p) {
		return true
	}
	b := s.boundaries[p.EgressBoundary]
	if b.granted[p.ID] {
		return true
	}
	if !s.requested[p.ID] {
		s.requested[p.ID] = true
		rtt := 2 * b.treeDepth[p.Src]
		if rtt < s.cfg.HandshakeRTT {
			rtt = s.cfg.HandshakeRTT
		}
		b.reqQ = append(b.reqQ, request{pkt: p, ready: cycle + sim.Cycle(rtt)})
	}
	s.net.Stats.InjectionHolds++
	return false
}

// OnFlitArrived charges the extra boundary-crossing cycle to inter-chiplet
// flits.
func (s *Scheme) OnFlitArrived(node topology.NodeID, _ topology.PortID, f message.Flit, _ sim.Cycle) sim.Cycle {
	if s.cfg.BoundaryCrossingDelay == 0 {
		return 0
	}
	if s.net.Topo.Node(node).Kind == topology.BoundaryRouter && s.interChiplet(f.Pkt) {
		return sim.Cycle(s.cfg.BoundaryCrossingDelay)
	}
	return 0
}

// StartOfCycle implements network.Scheme: grant reservations, hold and
// absorb egress packets, and stream slots down the vertical links.
func (s *Scheme) StartOfCycle(cycle sim.Cycle) {
	for _, ch := range s.net.Topo.Chiplets {
		for _, bn := range ch.Boundary {
			b := s.boundaries[bn]
			if len(b.reqQ) == 0 && len(b.held) == 0 && len(b.absorbing) == 0 &&
				s.net.Router(bn).Buffered() == 0 {
				// Fully quiescent boundary: nothing to grant (reqQ empty),
				// no holds to refresh, nothing absorbed to stream down
				// (sendQ is non-empty only while absorbing is), and an
				// empty router can hold no egress flit to hold or absorb.
				continue
			}
			s.grantRequests(b, cycle)
			s.refreshHolds(b, cycle)
			s.absorb(b, cycle)
			s.sendDown(b, cycle)
		}
	}
}

func (s *Scheme) grantRequests(b *boundary, cycle sim.Cycle) {
	for len(b.reqQ) > 0 && b.free > 0 && b.reqQ[0].ready <= cycle {
		req := b.reqQ[0]
		b.reqQ = b.reqQ[1:]
		b.free--
		b.granted[req.pkt.ID] = true
		delete(s.requested, req.pkt.ID)
	}
}

// refreshHolds marks every VC whose front flit belongs to an egress packet
// of this boundary: those packets leave through the boundary buffer, never
// through switch allocation.
func (s *Scheme) refreshHolds(b *boundary, _ sim.Cycle) {
	r := s.net.Router(b.node)
	for _, h := range b.held {
		r.VCAt(h.port, h.vc).Hold = false
	}
	b.held = b.held[:0]
	nvc := s.net.Cfg.Router.NumVCs()
	for pi := 0; pi < r.NumPorts(); pi++ {
		for vi := 0; vi < nvc; vi++ {
			vc := r.VCAt(topology.PortID(pi), vi)
			f, _, ok := vc.Front()
			if !ok || !s.isEgressHere(b, f.Pkt) {
				continue
			}
			vc.Hold = true
			b.held = append(b.held, heldVC{topology.PortID(pi), vi})
		}
	}
}

func (s *Scheme) isEgressHere(b *boundary, p *message.Packet) bool {
	return p.EgressBoundary == b.node
}

// absorb moves egress flits from input VCs into their boundary slots —
// one flit per input port per cycle, claiming the input like a crossbar
// pass-through.
func (s *Scheme) absorb(b *boundary, cycle sim.Cycle) {
	r := s.net.Router(b.node)
	nvc := s.net.Cfg.Router.NumVCs()
	for pi := 0; pi < r.NumPorts(); pi++ {
		port := topology.PortID(pi)
		for vi := 0; vi < nvc; vi++ {
			vc := r.VCAt(port, vi)
			f, ok := vc.FrontReady(cycle)
			if !ok || !s.isEgressHere(b, f.Pkt) {
				continue
			}
			if !r.ClaimInput(port, cycle) {
				break
			}
			f = r.PopFront(port, vi, cycle)
			sl := b.absorbing[f.Pkt.ID]
			if sl == nil {
				sl = &slot{pkt: f.Pkt, outVC: -1}
				b.absorbing[f.Pkt.ID] = sl
				b.sendQ[f.Pkt.VNet] = append(b.sendQ[f.Pkt.VNet], sl)
			}
			sl.flits = append(sl.flits, f)
			break // one flit per input port per cycle
		}
	}
}

// sendDown streams one flit per cycle from the boundary buffers onto the
// down vertical link, keeping wormhole ordering per VNet.
func (s *Scheme) sendDown(b *boundary, cycle sim.Cycle) {
	r := s.net.Router(b.node)
	down := r.TopoNode().PortTo(topology.Down)
	if down == topology.InvalidPort || r.OutputClaimed(down, cycle) {
		return
	}
	for k := 0; k < message.NumVNets; k++ {
		v := (b.vnetRR + 1 + k) % message.NumVNets
		if len(b.sendQ[v]) == 0 {
			continue
		}
		sl := b.sendQ[v][0]
		if sl.next >= len(sl.flits) {
			continue // waiting for more flits to be absorbed
		}
		if sl.outVC < 0 {
			sl.outVC = r.AllocateOutputVC(down, message.VNet(v))
			if sl.outVC < 0 {
				continue
			}
		}
		if !r.CreditsAvailable(down, sl.outVC) {
			continue
		}
		f := sl.flits[sl.next]
		sl.next++
		r.ClaimOutput(down, cycle)
		r.SendOnOutput(down, sl.outVC, f, cycle)
		b.vnetRR = v
		if f.IsTail() {
			b.sendQ[v] = b.sendQ[v][1:]
			delete(b.absorbing, sl.pkt.ID)
			delete(b.granted, sl.pkt.ID)
			b.free++
		}
		return
	}
}

// OnRouterIdle implements network.Scheme. Remote control keeps no
// per-cycle counters: boundary state (reqQ, slots, holds) is event-driven
// and the StartOfCycle quiescence skip re-derives it from queue lengths,
// so retirement needs no reset here.
func (s *Scheme) OnRouterIdle(topology.NodeID, sim.Cycle) {}

// Inert implements network.Scheme. StartOfCycle does work only at a
// boundary with a non-empty request queue, live holds, slots still
// absorbing/streaming, or buffered flits — and the kernel's idle-skip
// precondition (empty awake sets) already rules out buffered flits. The
// granted map alone never matters: a granted-but-unstarted packet sits at
// the front of an NI injection queue, which keeps that NI awake. Checking
// the per-boundary queues directly (rather than just the requested map)
// errs toward false: a slot can still be streaming flits down after every
// router has retired, and skipping those cycles would stall the stream.
func (s *Scheme) Inert() bool {
	if len(s.requested) != 0 {
		return false
	}
	for _, b := range s.boundaries {
		if len(b.reqQ) != 0 || len(b.held) != 0 || len(b.absorbing) != 0 {
			return false
		}
	}
	return true
}

// SlotsFree reports the free slot count at boundary b (tests).
func (s *Scheme) SlotsFree(b topology.NodeID) int { return s.boundaries[b].free }
