package remotectl

import (
	"math"
	"slices"

	"uppnoc/internal/message"
	"uppnoc/internal/snap"
	"uppnoc/internal/topology"
)

// Snapshot serializes the scheme's injection-control state (DESIGN.md
// §14): per-boundary slot occupancy, pending reservation requests,
// grants, absorbed packets mid-stream and VC holds, plus the global
// requested set. Boundaries are visited in Attach's construction order
// (chiplet order, then boundary order), which both sides share; the
// permission trees are immutable and rebuilt by Attach.
func (s *Scheme) Snapshot(w *snap.Writer) {
	ids := make([]uint64, 0, len(s.requested))
	for id := range s.requested {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Uvarint(id)
	}
	for _, ch := range s.net.Topo.Chiplets {
		for _, bn := range ch.Boundary {
			b := s.boundaries[bn]
			w.Int(b.free)
			w.Uvarint(uint64(len(b.reqQ)))
			for _, req := range b.reqQ {
				w.Packet(req.pkt)
				w.Varint(req.ready)
			}
			ids = ids[:0]
			for id := range b.granted {
				ids = append(ids, id)
			}
			slices.Sort(ids)
			w.Uvarint(uint64(len(ids)))
			for _, id := range ids {
				w.Uvarint(id)
			}
			// The absorbing map's entries are exactly the slots queued in
			// sendQ (created and retired together), so only sendQ is
			// serialized and Restore rebuilds the map from it.
			for v := 0; v < message.NumVNets; v++ {
				w.Uvarint(uint64(len(b.sendQ[v])))
				for _, sl := range b.sendQ[v] {
					w.Packet(sl.pkt)
					// The packet's ID rides along explicitly: at restore
					// time the reference is still an unfilled placeholder
					// (the packet table decodes last), but the absorbing
					// map needs its key now.
					w.Uvarint(sl.pkt.ID)
					w.Uvarint(uint64(len(sl.flits)))
					for _, f := range sl.flits {
						w.Flit(f)
					}
					w.Int(sl.next)
					w.Varint(int64(sl.outVC))
				}
			}
			w.Int(b.vnetRR)
			w.Uvarint(uint64(len(b.held)))
			for _, h := range b.held {
				w.Varint(int64(h.port))
				w.Int(h.vc)
			}
		}
	}
}

// Restore overwrites the scheme's state from a snapshot written by
// Snapshot on an identically-configured system.
func (s *Scheme) Restore(r *snap.Reader) error {
	nvc := s.net.Cfg.Router.NumVCs()
	s.requested = make(map[uint64]bool)
	nr := r.Len("rc requested count", 1<<20)
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nr; i++ {
		s.requested[r.Uvarint("rc requested id")] = true
	}
	for _, ch := range s.net.Topo.Chiplets {
		for _, bn := range ch.Boundary {
			b := s.boundaries[bn]
			b.free = r.Int("rc free slots", 0, int64(s.cfg.SlotsPerBoundary))
			nq := r.Len("rc req queue len", 1<<20)
			if r.Err() != nil {
				return r.Err()
			}
			b.reqQ = nil
			for i := 0; i < nq; i++ {
				p := r.Packet()
				ready := r.Varint("rc req ready")
				if r.Err() != nil {
					return r.Err()
				}
				if p == nil {
					r.Fail("rc request without a packet")
					return r.Err()
				}
				b.reqQ = append(b.reqQ, request{pkt: p, ready: ready})
			}
			b.granted = make(map[uint64]bool)
			ng := r.Len("rc granted count", 1<<20)
			if r.Err() != nil {
				return r.Err()
			}
			for i := 0; i < ng; i++ {
				b.granted[r.Uvarint("rc granted id")] = true
			}
			b.absorbing = make(map[uint64]*slot)
			for v := 0; v < message.NumVNets; v++ {
				b.sendQ[v] = nil
				ns := r.Len("rc send queue len", s.cfg.SlotsPerBoundary)
				if r.Err() != nil {
					return r.Err()
				}
				for i := 0; i < ns; i++ {
					sl := &slot{}
					sl.pkt = r.Packet()
					pktID := r.Uvarint("rc slot pkt id")
					nf := r.Len("rc slot flit count", 1<<20)
					if r.Err() != nil {
						return r.Err()
					}
					for j := 0; j < nf; j++ {
						sl.flits = append(sl.flits, r.Flit())
					}
					sl.next = r.Int("rc slot next", 0, math.MaxInt32)
					sl.outVC = int8(r.Int("rc slot outvc", -1, int64(nvc)-1))
					if r.Err() != nil {
						return r.Err()
					}
					if sl.pkt == nil {
						r.Fail("rc slot without a packet")
						return r.Err()
					}
					if sl.next > len(sl.flits) {
						r.Fail("rc slot next %d past %d absorbed flits", sl.next, len(sl.flits))
						return r.Err()
					}
					b.sendQ[v] = append(b.sendQ[v], sl)
					b.absorbing[pktID] = sl
				}
			}
			b.vnetRR = r.Int("rc vnet rr", 0, message.NumVNets-1)
			nh := r.Len("rc held count", 1<<20)
			if r.Err() != nil {
				return r.Err()
			}
			b.held = b.held[:0]
			for i := 0; i < nh; i++ {
				port := topology.PortID(r.Int("rc held port", 0, 127))
				vc := r.Int("rc held vc", 0, int64(nvc)-1)
				if r.Err() != nil {
					return r.Err()
				}
				b.held = append(b.held, heldVC{port: port, vc: vc})
			}
		}
	}
	return r.Err()
}
