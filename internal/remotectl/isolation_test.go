package remotectl_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/remotectl"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// TestIsolationOfIntraChipletTraffic exercises remote control's core
// claim: inter-chiplet packets, parked in boundary buffers, cannot block
// intra-chiplet packets. We flood chiplet 0 with cross-chiplet traffic
// (throttled by injection control) and verify sparse intra-chiplet probes
// still flow with bounded latency.
func TestIsolationOfIntraChipletTraffic(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	s := remotectl.New(remotectl.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), s)
	ch0 := topo.Chiplets[0].Routers
	ch3 := topo.Chiplets[3].Routers
	rng := sim.NewRNG(7)

	var probes []*message.Packet
	for cycle := 0; cycle < 30000; cycle++ {
		// Heavy cross-chiplet flood from chiplet 0.
		for i := 0; i < 4; i++ {
			src := ch0[rng.Intn(len(ch0))]
			dst := ch3[rng.Intn(len(ch3))]
			if n.NI(src).InjQueueLen(message.VNetResponse) < 4 {
				p := &message.Packet{Src: src, Dst: dst, VNet: message.VNetResponse, Size: 5}
				n.NI(src).Enqueue(p, n.Cycle())
			}
		}
		// A sparse intra-chiplet probe every 100 cycles.
		if cycle%100 == 0 {
			src := ch0[rng.Intn(len(ch0))]
			dst := ch0[rng.Intn(len(ch0))]
			if src != dst {
				p := &message.Packet{Src: src, Dst: dst, VNet: message.VNetRequest, Size: 1}
				n.NI(src).Enqueue(p, n.Cycle())
				probes = append(probes, p)
			}
		}
		n.Step()
	}
	if err := n.Drain(2_000_000, 100000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	delivered := 0
	var worst sim.Cycle
	for _, p := range probes {
		if p.EjectCycle == 0 {
			continue
		}
		delivered++
		if lat := p.EjectCycle - p.InjectCycle; lat > worst {
			worst = lat
		}
	}
	if delivered != len(probes) {
		t.Fatalf("only %d of %d probes delivered", delivered, len(probes))
	}
	// Intra-chiplet paths are <= 6 hops; even with local contention a
	// probe must never wait behind the parked inter-chiplet flood.
	if worst > 300 {
		t.Fatalf("intra-chiplet probe network latency reached %d cycles — isolation broken", worst)
	}
	t.Logf("%d probes, worst network latency %d cycles, injection holds %d",
		delivered, worst, n.Stats.InjectionHolds)
}
