package remotectl_test

import (
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/remotectl"
	"uppnoc/internal/topology"
	"uppnoc/internal/traffic"
)

func rcNet(t *testing.T, vcs int) (*network.Network, *remotectl.Scheme) {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = vcs
	s := remotectl.New(remotectl.DefaultConfig())
	n, err := network.New(topo, cfg, s)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n, s
}

// TestRemoteControlDeadlockFree: the workload that wedges the
// recovery-free network drains under remote control's injection isolation.
func TestRemoteControlDeadlockFree(t *testing.T) {
	n, _ := rcNet(t, 1)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.10, 42)
	g.Run(20000)
	g.SetRate(0)
	if err := n.Drain(600000, 60000); err != nil {
		t.Fatalf("remote control wedged: %v", err)
	}
	if n.Stats.InjectionHolds == 0 {
		t.Fatal("expected injection-control holds under load")
	}
}

// TestHandshakeLatency: a single inter-chiplet packet pays at least the
// 2-cycle reservation round trip before injecting.
func TestHandshakeLatency(t *testing.T) {
	n, _ := rcNet(t, 1)
	cores := n.Topo.Cores()
	src, dst := cores[0], cores[len(cores)-1]
	p := &message.Packet{Src: src, Dst: dst, VNet: message.VNetRequest, Size: 1}
	n.NI(src).Enqueue(p, 0)
	if err := n.Drain(2000, 500); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if hold := p.InjectCycle - p.BirthCycle; hold < 2 {
		t.Fatalf("expected >=2 cycles of injection hold, got %d", hold)
	}
	// An intra-chiplet packet is not held.
	p2 := &message.Packet{Src: cores[0], Dst: cores[1], VNet: message.VNetRequest, Size: 1}
	n.NI(cores[0]).Enqueue(p2, n.Cycle())
	if err := n.Drain(2000, 500); err != nil {
		t.Fatalf("drain2: %v", err)
	}
	if hold := p2.InjectCycle - p2.BirthCycle; hold > 1 {
		t.Fatalf("intra-chiplet packet held %d cycles", hold)
	}
}

// TestSlotsReturn: all boundary slots are free after the network drains.
func TestSlotsReturn(t *testing.T) {
	n, s := rcNet(t, 4)
	g := traffic.NewGenerator(n, traffic.UniformRandom{}, 0.08, 3)
	g.Run(5000)
	g.SetRate(0)
	if err := n.Drain(100000, 20000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, ch := range n.Topo.Chiplets {
		for _, b := range ch.Boundary {
			if got := s.SlotsFree(b); got != remotectl.DefaultConfig().SlotsPerBoundary {
				t.Fatalf("boundary %d: %d slots free after drain", b, got)
			}
		}
	}
}

// TestPermissionTreeRTT: the reservation round trip scales with the
// source's distance from its egress boundary in the hard-wired tree.
func TestPermissionTreeRTT(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	s := remotectl.New(remotectl.DefaultConfig())
	n := network.MustNew(topo, network.DefaultConfig(), s)
	// Two sources in chiplet 0 bound to the same boundary at different
	// distances; same destination in chiplet 3.
	ch0 := topo.Chiplets[0]
	var near, far topology.NodeID = topology.InvalidNode, topology.InvalidNode
	b := ch0.Boundary[0]
	bn := topo.Node(b)
	for _, id := range ch0.Routers {
		nd := topo.Node(id)
		if nd.BoundBoundary != b || id == b {
			continue
		}
		d := abs(nd.X-bn.X) + abs(nd.Y-bn.Y)
		if d == 1 && near == topology.InvalidNode {
			near = id
		}
		if d >= 2 {
			far = id
		}
	}
	if near == topology.InvalidNode || far == topology.InvalidNode {
		t.Skip("binding layout lacks near/far pair for this seed")
	}
	dst := topo.Chiplets[3].Routers[5]
	pNear := &message.Packet{Src: near, Dst: dst, VNet: message.VNetRequest, Size: 1}
	pFar := &message.Packet{Src: far, Dst: dst, VNet: message.VNetRequest, Size: 1}
	n.NI(near).Enqueue(pNear, 0)
	n.NI(far).Enqueue(pFar, 0)
	if err := n.Drain(5000, 1000); err != nil {
		t.Fatal(err)
	}
	holdNear := pNear.InjectCycle - pNear.BirthCycle
	holdFar := pFar.InjectCycle - pFar.BirthCycle
	if holdFar <= holdNear {
		t.Fatalf("far source held %d cycles, near %d — tree RTT not applied", holdFar, holdNear)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
