// Package sim provides small deterministic simulation primitives shared by
// the NoC model: a fast seedable random number generator and cycle types.
//
// Determinism matters for a simulator: two runs with the same seed must
// produce identical cycle-by-cycle behaviour so that experiments are
// reproducible and regressions are bisectable. We therefore avoid math/rand
// global state and give every component its own RNG stream derived from a
// master seed.
package sim

// Cycle is a simulation timestamp in clock cycles.
type Cycle = int64

// RNG is a splitmix64-seeded xoshiro256** generator. It is not safe for
// concurrent use; each component owns its own instance.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed internal state even for small or similar seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream from r, keyed by id. Components that
// must not perturb each other's random sequences (e.g. per-node traffic
// generators) each take a split stream. Split streams are also the unit
// of RNG ownership under the parallel cycle kernel: each router draws
// only from its own pre-split stream during the concurrent compute
// phase, so no generator is ever shared across goroutines and the
// consumed sequence is independent of scheduling.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

// State returns the generator's internal state, for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state, for restore. The
// caller is responsible for passing a state captured by State; an
// all-zero state would make the generator emit zeros forever.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
