package sim_test

import (
	"sync"
	"testing"
	"testing/quick"

	"uppnoc/internal/sim"
)

func TestDeterminism(t *testing.T) {
	a := sim.NewRNG(42)
	b := sim.NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverge at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := sim.NewRNG(1)
	b := sim.NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := sim.NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := sim.NewRNG(7)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean %.3f far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := sim.NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) missed")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := sim.NewRNG(11)
	hits := 0
	const n, p = 100000, 0.3
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < p-0.02 || got > p+0.02 {
		t.Fatalf("Bernoulli(%v) rate %.4f", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := sim.NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	sim.NewRNG(3).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

// TestSameSeedAcrossGoroutines: distinct RNG instances with the same seed
// must produce the same stream no matter which goroutine drives them —
// the property the parallel sweep engine's determinism guarantee rests on
// (each simulation run owns its own instances, seeded from its RunSpec).
func TestSameSeedAcrossGoroutines(t *testing.T) {
	const seed, draws, workers = 42, 2000, 8
	ref := make([]uint64, draws)
	r := sim.NewRNG(seed)
	for i := range ref {
		ref[i] = r.Uint64()
	}
	streams := make([][]uint64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			r := sim.NewRNG(seed)
			out := make([]uint64, draws)
			for i := range out {
				out[i] = r.Uint64()
			}
			streams[w] = out
		}(w)
	}
	wg.Wait()
	for w, s := range streams {
		for i := range s {
			if s[i] != ref[i] {
				t.Fatalf("goroutine %d diverges from the reference stream at draw %d", w, i)
			}
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	base := sim.NewRNG(5)
	a := base.Split(1)
	b := base.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide %d times", same)
	}
}
