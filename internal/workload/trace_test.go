package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/workload"
)

// TestTraceRoundTrip: Write then Read reproduces the trace exactly.
func TestTraceRoundTrip(t *testing.T) {
	rec := workload.NewTraceRecorder(8)
	rec.Record(3, 0, 1, message.VNetResponse, message.ClassSyntheticData, 5)
	rec.Record(3, 2, 5, message.VNetRequest, message.ClassSyntheticCtrl, 1)
	rec.Record(900, 7, 0, message.VNetForward, message.ClassSyntheticCtrl, 1)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Trace()
	if got.Ranks != want.Ranks || len(got.Records) != len(want.Records) {
		t.Fatalf("shape mismatch: %+v vs %+v", got, want)
	}
	for i := range got.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got.Records[i], want.Records[i])
		}
	}
}

// TestWriteTraceRejects: the writer refuses traces the reader would
// refuse, so a recorded file is always loadable.
func TestWriteTraceRejects(t *testing.T) {
	rec := func(c sim.Cycle, src, dst, flits int) workload.TraceRecord {
		return workload.TraceRecord{Cycle: c, Src: src, Dst: dst,
			VNet: message.VNetResponse, Class: message.ClassSyntheticData, Flits: flits}
	}
	cases := []struct {
		name  string
		trace workload.Trace
		want  string
	}{
		{"one_rank", workload.Trace{Ranks: 1}, "rank count"},
		{"decreasing_cycles", workload.Trace{Ranks: 4,
			Records: []workload.TraceRecord{rec(10, 0, 1, 5), rec(9, 1, 2, 5)}}, "precedes"},
		{"src_range", workload.Trace{Ranks: 4,
			Records: []workload.TraceRecord{rec(0, 4, 1, 5)}}, "src rank"},
		{"self_send", workload.Trace{Ranks: 4,
			Records: []workload.TraceRecord{rec(0, 2, 2, 5)}}, "self-send"},
		{"flit_range", workload.Trace{Ranks: 4,
			Records: []workload.TraceRecord{rec(0, 0, 1, 0)}}, "flit count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := workload.WriteTrace(&buf, &tc.trace)
			if err == nil {
				t.Fatal("invalid trace written")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadTraceRejects: hand-built malformed byte streams error with a
// diagnostic (the fuzz target covers the long tail; these pin the
// messages).
func TestReadTraceRejects(t *testing.T) {
	valid := func() []byte {
		rec := workload.NewTraceRecorder(4)
		rec.Record(1, 0, 1, message.VNetResponse, message.ClassSyntheticData, 5)
		var buf bytes.Buffer
		if err := rec.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "short header"},
		{"bad_magic", []byte("NOPE\x01"), "bad magic"},
		{"bad_version", []byte("UPWT\x07"), "unsupported version"},
		{"no_ranks", []byte("UPWT\x01"), "truncated rank count"},
		{"one_rank", append([]byte("UPWT\x01\x01"), 0), "below 2"},
		{"truncated_record", valid[:len(valid)-2], "truncated"},
		{"trailing_bytes", append(append([]byte{}, valid...), 0xFF), "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := workload.ReadTrace(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("malformed trace parsed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReplayMatchesLiveRun is the acceptance criterion for the trace
// frontend: record a live closed-loop collective run, then replay the
// trace open-loop on a fresh identical network for the same number of
// cycles — Stats and the final cycle must be bit-identical, because the
// network sees the identical Enqueue sequence.
func TestReplayMatchesLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	// Live run, recorded.
	live := newNet(t, network.KernelActive)
	spec, err := workload.ParseSpec("training_step:gap=100,iters=2")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(len(live.Topo.Cores()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(live, prog)
	if err != nil {
		t.Fatal(err)
	}
	eng.Iterations = spec.EngineIterations()
	rec := workload.NewTraceRecorder(len(live.Topo.Cores()))
	eng.SetRecorder(rec)
	if err := eng.Run(400000); err != nil {
		t.Fatal(err)
	}
	// Run the live network to a fixed horizon past completion so the
	// replay can be driven to exactly the same cycle.
	horizon := int(eng.FinishCycle()) + 2000
	for int(live.Cycle()) < horizon {
		live.Step()
	}

	// Serialize, reload, replay on a fresh network.
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) != 2*prog.Messages() {
		t.Fatalf("trace has %d records, want %d", len(trace.Records), 2*prog.Messages())
	}
	replay := newNet(t, network.KernelActive)
	rp, err := workload.NewReplayer(replay, trace)
	if err != nil {
		t.Fatal(err)
	}
	rp.Run(horizon)
	if !rp.Done() {
		t.Fatal("replay did not inject every record")
	}
	if replay.Cycle() != live.Cycle() {
		t.Fatalf("final cycle %d != live %d", replay.Cycle(), live.Cycle())
	}
	if replay.Stats != live.Stats {
		t.Fatalf("stats diverge:\nlive:   %+v\nreplay: %+v", live.Stats, replay.Stats)
	}
}

// TestReplayerRankMismatch: a trace recorded over a different system
// size is rejected up front.
func TestReplayerRankMismatch(t *testing.T) {
	n := newNet(t, network.KernelActive)
	if _, err := workload.NewReplayer(n, &workload.Trace{Ranks: 8}); err == nil {
		t.Fatal("8-rank trace accepted on a 64-core system")
	}
}
