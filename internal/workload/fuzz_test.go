package workload_test

import (
	"bytes"
	"testing"

	"uppnoc/internal/message"
	"uppnoc/internal/workload"
)

// FuzzTraceReplay holds ReadTrace to its contract on arbitrary input:
// malformed headers, truncated records, out-of-range node IDs and sizes
// must all return errors — never panic and never hang — and any trace
// that does parse must survive a write/re-read round trip unchanged
// (so replaying a fuzzer-found file can never feed the network an
// unvalidated record).
func FuzzTraceReplay(f *testing.F) {
	// Seed corpus: one valid trace, plus targeted corruptions of it.
	valid := func() []byte {
		rec := workload.NewTraceRecorder(4)
		rec.Record(0, 0, 1, message.VNetResponse, message.ClassSyntheticData, 5)
		rec.Record(2, 1, 2, message.VNetRequest, message.ClassSyntheticCtrl, 1)
		rec.Record(2, 3, 0, message.VNetForward, message.ClassSyntheticCtrl, 1)
		var buf bytes.Buffer
		if err := rec.Write(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("UPWT"))
	f.Add([]byte("UPWT\x01"))
	f.Add([]byte("UPWT\x02\x04\x01"))
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0x00))
	// Declared record count far beyond the payload.
	f.Add([]byte("UPWT\x01\x04\xff\xff\xff\xff\x0f"))
	// Out-of-range src rank inside an otherwise valid stream.
	f.Add([]byte("UPWT\x01\x04\x01\x00\x09\x01\x02\x01\x05"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := workload.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected is always acceptable; panics/hangs are not
		}
		// Accepted traces must be internally valid: re-serialize and
		// re-parse losslessly.
		var buf bytes.Buffer
		if werr := workload.WriteTrace(&buf, tr); werr != nil {
			t.Fatalf("parsed trace fails to re-serialize: %v", werr)
		}
		tr2, rerr := workload.ReadTrace(&buf)
		if rerr != nil {
			t.Fatalf("round trip fails to re-parse: %v", rerr)
		}
		if tr2.Ranks != tr.Ranks || len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip changed shape: %d/%d ranks, %d/%d records",
				tr.Ranks, tr2.Ranks, len(tr.Records), len(tr2.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, tr.Records[i], tr2.Records[i])
			}
		}
	})
}
