// Package workload provides closed-loop collective-communication and
// ML-training traffic: per-node dependency state machines in which a node
// injects its next chunk only after the chunks it depends on have been
// ejected, reassembled and consumed at their destinations. This is the
// traffic that stresses integration-induced deadlock cycles — cyclic
// *message dependencies*, not raw offered load — and it is where
// deadlock-avoidance and deadlock-recovery schemes actually diverge.
//
// A workload is a Program: one ordered op list per core rank, each op
// gated on a set of message tags (chunks this rank must have received)
// and an optional local compute delay before it fires its sends. The
// Engine advances every rank's state machine once per cycle, before
// Network.Step, exactly like the open-loop traffic generator — so a
// workload run is deterministic under every cycle kernel and shard count
// (message consumption happens on the coordinating goroutine in NodeID
// order under all three kernels).
package workload

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Send is one message a program op injects: a chunk of Flits flits to
// core rank To, identified by the program-global Tag the receiver's ops
// wait on.
type Send struct {
	To    int
	Tag   int
	Flits int
	VNet  message.VNet
	Class message.Class
}

// Op is one step of a rank's program. The op becomes ready when the
// rank's previous op has fired and every tag in Wait has been consumed at
// this rank; after Compute further cycles of local delay its Sends are
// enqueued. Any of the three parts may be empty: a wait-only op models a
// final receive, a compute-only op models the gap between training
// phases, a send-only op a dependency-free initial burst.
type Op struct {
	Wait    []int
	Compute int
	Sends   []Send
}

// Program is a complete workload: Ops[rank] is the op list of core rank
// `rank`, and tags 0..NumTags-1 identify every message exactly once.
// TagDst[tag] is the receiving rank (the engine uses it to route receipt
// notifications and Validate uses it to prove the closed loop is closed:
// every message is waited on by its destination).
type Program struct {
	Name    string
	Ops     [][]Op
	NumTags int
	TagDst  []int
}

// Ranks returns the number of participating core ranks.
func (p *Program) Ranks() int { return len(p.Ops) }

// Messages returns the total message count per iteration.
func (p *Program) Messages() int { return p.NumTags }

// Validate proves the program is well-formed and can always make
// progress: every send stays in range and off the self-loop, every tag is
// sent exactly once to TagDst and waited on exactly once at TagDst (so a
// completed program implies every injected message was consumed — the
// property that makes iteration restart and the zero-alloc steady state
// safe), and the dependency graph (op sequencing edges plus
// send-before-wait edges) is acyclic, so a stuck run indicts the network,
// never the workload.
func (p *Program) Validate() error {
	n := len(p.Ops)
	if n < 2 {
		return fmt.Errorf("workload %s: need at least 2 ranks, have %d", p.Name, n)
	}
	if len(p.TagDst) != p.NumTags {
		return fmt.Errorf("workload %s: TagDst has %d entries for %d tags", p.Name, len(p.TagDst), p.NumTags)
	}
	sent := make([]int, p.NumTags)
	waited := make([]int, p.NumTags)
	// Global op index of each rank's op i is opBase[rank]+i.
	opBase := make([]int, n)
	total := 0
	for r := range p.Ops {
		opBase[r] = total
		total += len(p.Ops[r])
	}
	producer := make([]int, p.NumTags) // global op index sending each tag
	for r, ops := range p.Ops {
		for i, op := range ops {
			if op.Compute < 0 {
				return fmt.Errorf("workload %s: rank %d op %d: negative compute %d", p.Name, r, i, op.Compute)
			}
			for _, s := range op.Sends {
				if s.To < 0 || s.To >= n {
					return fmt.Errorf("workload %s: rank %d op %d: send to rank %d of %d", p.Name, r, i, s.To, n)
				}
				if s.To == r {
					return fmt.Errorf("workload %s: rank %d op %d: self-send (tag %d)", p.Name, r, i, s.Tag)
				}
				if s.Tag < 0 || s.Tag >= p.NumTags {
					return fmt.Errorf("workload %s: rank %d op %d: tag %d out of range", p.Name, r, i, s.Tag)
				}
				if s.Flits < 1 {
					return fmt.Errorf("workload %s: rank %d op %d: tag %d has %d flits", p.Name, r, i, s.Tag, s.Flits)
				}
				if s.VNet < 0 || s.VNet >= message.NumVNets {
					return fmt.Errorf("workload %s: rank %d op %d: tag %d on invalid vnet %d", p.Name, r, i, s.Tag, s.VNet)
				}
				if p.TagDst[s.Tag] != s.To {
					return fmt.Errorf("workload %s: tag %d sent to rank %d but TagDst says %d", p.Name, s.Tag, s.To, p.TagDst[s.Tag])
				}
				sent[s.Tag]++
				producer[s.Tag] = opBase[r] + i
			}
			for _, t := range op.Wait {
				if t < 0 || t >= p.NumTags {
					return fmt.Errorf("workload %s: rank %d op %d: waits on tag %d out of range", p.Name, r, i, t)
				}
				if p.TagDst[t] != r {
					return fmt.Errorf("workload %s: rank %d op %d: waits on tag %d destined for rank %d", p.Name, r, i, t, p.TagDst[t])
				}
				waited[t]++
			}
		}
	}
	for t := 0; t < p.NumTags; t++ {
		if sent[t] != 1 {
			return fmt.Errorf("workload %s: tag %d sent %d times (want exactly 1)", p.Name, t, sent[t])
		}
		if waited[t] != 1 {
			return fmt.Errorf("workload %s: tag %d waited on %d times (want exactly 1 — every message must gate its receiver)", p.Name, t, waited[t])
		}
	}
	// Acyclicity by Kahn's algorithm over sequencing + tag edges.
	indeg := make([]int, total)
	succ := make([][]int, total)
	edge := func(from, to int) {
		succ[from] = append(succ[from], to)
		indeg[to]++
	}
	for r, ops := range p.Ops {
		for i, op := range ops {
			g := opBase[r] + i
			if i+1 < len(ops) {
				edge(g, g+1)
			}
			for _, t := range op.Wait {
				edge(producer[t], g)
			}
		}
	}
	queue := make([]int, 0, total)
	for g, d := range indeg {
		if d == 0 {
			queue = append(queue, g)
		}
	}
	done := 0
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, s := range succ[g] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if done != total {
		return fmt.Errorf("workload %s: dependency cycle among %d of %d ops — the program could deadlock on its own", p.Name, total-done, total)
	}
	return nil
}

// Recorder observes every injected workload message (the trace-recording
// frontend implements it; see trace.go).
type Recorder interface {
	Record(cycle sim.Cycle, srcRank, dstRank int, vnet message.VNet, class message.Class, flits int)
}

// Engine drives a Program against a network. Create one per network with
// NewEngine; it wraps the core NIs' Consume hooks to observe chunk
// receipt, so it must not share a network with the coherence substrate.
type Engine struct {
	net   *network.Network
	prog  Program
	cores []topology.NodeID

	// Iterations repeats the program (training steps). The engine
	// restarts only once every rank has finished, and Validate guarantees
	// every message was consumed by then, so tag reuse across iterations
	// is race-free. Set before the first Tick; defaults to 1.
	Iterations int

	// Per-rank state machine.
	pc          []int32
	computeLeft []int32
	computeSet  []bool
	received    []bool
	doneRanks   int

	iter        int
	finished    bool
	finishCycle sim.Cycle
	iterCycles  []sim.Cycle

	// MessagesDelivered counts workload chunks consumed at their
	// destination across all iterations.
	MessagesDelivered uint64

	rec Recorder
}

// NewEngine validates prog against net (rank count must equal the core
// count) and installs the receipt hooks.
func NewEngine(net *network.Network, prog Program) (*Engine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	cores := net.Topo.Cores()
	if len(cores) != prog.Ranks() {
		return nil, fmt.Errorf("workload %s: program has %d ranks but the system has %d cores", prog.Name, prog.Ranks(), len(cores))
	}
	e := &Engine{
		net:         net,
		prog:        prog,
		cores:       cores,
		Iterations:  1,
		pc:          make([]int32, prog.Ranks()),
		computeLeft: make([]int32, prog.Ranks()),
		computeSet:  make([]bool, prog.Ranks()),
		received:    make([]bool, prog.NumTags),
	}
	// One shared hook: the tag in Packet.Addr already identifies the
	// receipt, and Consume runs on the coordinating goroutine under every
	// kernel, so a plain field write is deterministic.
	consume := func(p *message.Packet, cycle sim.Cycle) bool {
		if t := p.Addr; t >= 1 && t <= uint64(len(e.received)) {
			e.received[t-1] = true
			e.MessagesDelivered++
		}
		return true
	}
	for _, id := range cores {
		net.NI(id).Consume = consume
	}
	return e, nil
}

// SetRecorder attaches a message recorder (nil detaches). Attach before
// the first Tick so the trace covers the whole run.
func (e *Engine) SetRecorder(r Recorder) { e.rec = r }

// Done reports whether every rank has finished every iteration.
func (e *Engine) Done() bool { return e.finished }

// FinishCycle returns the cycle at which the final iteration completed
// (valid once Done).
func (e *Engine) FinishCycle() sim.Cycle { return e.finishCycle }

// IterationsDone returns how many whole iterations have completed, and
// the completion cycle of each.
func (e *Engine) IterationsDone() []sim.Cycle { return e.iterCycles }

// Progress returns completed and total op counts across ranks of the
// current iteration (drain diagnostics).
func (e *Engine) Progress() (done, total int) {
	for r := range e.prog.Ops {
		done += int(e.pc[r])
		total += len(e.prog.Ops[r])
	}
	return done, total
}

// Tick advances every rank's state machine one cycle. Call once per cycle
// before Network.Step, like traffic.Generator.Tick. Ranks are visited in
// ascending order and consecutive ready ops fire in the same cycle (an op
// chain with satisfied waits and no compute is one burst).
func (e *Engine) Tick(cycle sim.Cycle) {
	if e.finished {
		return
	}
	if e.iterCycles == nil {
		// Sized once up front so iteration rollover never allocates in
		// the steady-state loop (the zero-alloc gate covers this path).
		// Capped so an effectively-unbounded Iterations (benchmarks) does
		// not reserve gigabytes; runs past the cap regrow amortized.
		capHint := e.Iterations
		if capHint > 4096 {
			capHint = 4096
		}
		e.iterCycles = make([]sim.Cycle, 0, capHint)
	}
	for r := range e.prog.Ops {
		e.tickRank(r, cycle)
	}
	if e.doneRanks == e.prog.Ranks() {
		// All ranks finished this iteration; Validate guarantees every
		// tag was consumed, so the tag table can be reset and reused.
		e.iterCycles = append(e.iterCycles, cycle)
		e.iter++
		if e.iter >= e.Iterations {
			e.finished = true
			e.finishCycle = cycle
			return
		}
		for t := range e.received {
			e.received[t] = false
		}
		for r := range e.pc {
			e.pc[r] = 0
		}
		e.doneRanks = 0
	}
}

func (e *Engine) tickRank(r int, cycle sim.Cycle) {
	ops := e.prog.Ops[r]
	for int(e.pc[r]) < len(ops) {
		op := &ops[e.pc[r]]
		ready := true
		for _, t := range op.Wait {
			if !e.received[t] {
				ready = false
				break
			}
		}
		if !ready {
			return
		}
		if op.Compute > 0 {
			if !e.computeSet[r] {
				e.computeSet[r] = true
				e.computeLeft[r] = int32(op.Compute)
			}
			if e.computeLeft[r] > 0 {
				e.computeLeft[r]--
				return
			}
			e.computeSet[r] = false
		}
		for i := range op.Sends {
			e.inject(r, &op.Sends[i], cycle)
		}
		e.pc[r]++
		if int(e.pc[r]) == len(ops) {
			e.doneRanks++
			return
		}
	}
}

func (e *Engine) inject(rank int, s *Send, cycle sim.Cycle) {
	p := e.net.AllocPacket()
	p.Src = e.cores[rank]
	p.Dst = e.cores[s.To]
	p.VNet = s.VNet
	p.Size = s.Flits
	p.Class = s.Class
	p.Addr = uint64(s.Tag) + 1
	e.net.NI(p.Src).Enqueue(p, cycle)
	if e.rec != nil {
		e.rec.Record(cycle, rank, s.To, s.VNet, s.Class, s.Flits)
	}
}

// Run ticks the engine and steps the network until the program completes,
// returning an error when it has not finished within maxCycles (the
// error includes op progress — under a scheme without recovery a closed
// loop can genuinely deadlock, which is the point of the comparison).
func (e *Engine) Run(maxCycles int) error {
	for i := 0; i < maxCycles && !e.finished; i++ {
		e.Tick(e.net.Cycle())
		e.net.Step()
	}
	if !e.finished {
		done, total := e.Progress()
		return fmt.Errorf("workload %s: %d/%d ops fired after %d cycles (iteration %d of %d, %d packets in flight)",
			e.prog.Name, done, total, maxCycles, e.iter+1, e.Iterations, e.net.InFlight())
	}
	return nil
}
