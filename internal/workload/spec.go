package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a parsed workload description (the `uppsim -workload` /
// `RunSpec.Workload` syntax): a collective name plus its knobs.
//
//	name[:key=val,key=val,...]
//
// Names: ring_allreduce, tree_allreduce, broadcast, reduce_scatter,
// all_to_all, param_server, training_step.
// Keys: flits (chunk size, default 5), root (broadcast, default 0),
// servers (param_server, default 4), iters (param_server inner
// iterations / Engine.Iterations for the others, default 1; training_step
// default 2), gap (training_step compute gap in cycles, default 200).
type Spec struct {
	Name    string
	Flits   int
	Root    int
	Servers int
	Iters   int
	Gap     int
}

// Names lists the buildable workloads in presentation order.
func Names() []string {
	return []string{"ring_allreduce", "tree_allreduce", "broadcast",
		"reduce_scatter", "all_to_all", "param_server", "training_step"}
}

// ParseSpec parses the workload spec syntax above.
func ParseSpec(s string) (Spec, error) {
	name, rest, hasOpts := strings.Cut(strings.TrimSpace(s), ":")
	spec := Spec{Name: name, Flits: 5, Root: 0, Servers: 4, Iters: 1, Gap: 200}
	if spec.Name == "training_step" {
		spec.Iters = 2
	}
	known := false
	for _, n := range Names() {
		if n == spec.Name {
			known = true
		}
	}
	if !known {
		return Spec{}, fmt.Errorf("workload: unknown workload %q (want one of %s)", name, strings.Join(Names(), " "))
	}
	if !hasOpts {
		return spec, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("workload: malformed option %q in %q (want key=value)", kv, s)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: option %s=%q is not an integer", key, val)
		}
		switch key {
		case "flits":
			spec.Flits = v
		case "root":
			spec.Root = v
		case "servers":
			spec.Servers = v
		case "iters":
			spec.Iters = v
		case "gap":
			spec.Gap = v
		default:
			return Spec{}, fmt.Errorf("workload: unknown option %q in %q", key, s)
		}
	}
	if spec.Flits < 1 || spec.Flits > MaxTraceFlits {
		return Spec{}, fmt.Errorf("workload: flits=%d out of range [1, %d]", spec.Flits, MaxTraceFlits)
	}
	if spec.Iters < 1 {
		return Spec{}, fmt.Errorf("workload: iters=%d out of range (>= 1)", spec.Iters)
	}
	return spec, nil
}

// Build constructs the program for n core ranks. For param_server the
// iters knob is built into the program (the server fan-in differs per
// iteration); for every other workload the caller repeats the program
// via Engine.Iterations.
func (s Spec) Build(n int) (Program, error) {
	switch s.Name {
	case "ring_allreduce":
		return RingAllReduce(n, s.Flits)
	case "tree_allreduce":
		return TreeAllReduce(n, s.Flits)
	case "broadcast":
		return Broadcast(n, s.Flits, s.Root)
	case "reduce_scatter":
		return ReduceScatter(n, s.Flits)
	case "all_to_all":
		return AllToAll(n, s.Flits)
	case "param_server":
		return ParamServer(n, s.Flits, s.Servers, s.Iters)
	case "training_step":
		return TrainingStep(n, s.Flits, s.Gap)
	}
	return Program{}, fmt.Errorf("workload: unknown workload %q", s.Name)
}

// EngineIterations returns the Engine.Iterations value for this spec:
// param_server repeats inside the program, everything else outside.
func (s Spec) EngineIterations() int {
	if s.Name == "param_server" {
		return 1
	}
	return s.Iters
}
