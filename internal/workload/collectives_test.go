package workload

import (
	"testing"

	"uppnoc/internal/message"
)

// TestCollectiveMessageCounts pins each builder's per-iteration message
// count to its closed form — a builder that silently drops or duplicates
// an edge changes completion semantics without failing Validate's
// structural checks alone.
func TestCollectiveMessageCounts(t *testing.T) {
	const n = 16
	bcast := n - 1 // binomial tree has exactly n-1 edges
	cases := []struct {
		name  string
		build func() (Program, error)
		want  int
	}{
		{"ring_allreduce", func() (Program, error) { return RingAllReduce(n, 5) }, 2 * (n - 1) * n},
		{"reduce_scatter", func() (Program, error) { return ReduceScatter(n, 5) }, (n - 1) * n},
		{"broadcast", func() (Program, error) { return Broadcast(n, 5, 3) }, bcast},
		{"tree_allreduce", func() (Program, error) { return TreeAllReduce(n, 5) }, (n - 1) + bcast},
		{"all_to_all", func() (Program, error) { return AllToAll(n, 5) }, (n - 1) * n},
		{"param_server", func() (Program, error) { return ParamServer(n, 5, 4, 2) }, 2 * 2 * (n - 4)},
		// ring + barrier: ring messages + n-1 arrivals + n-1 releases.
		{"training_step", func() (Program, error) { return TrainingStep(n, 5, 100) }, 2*(n-1)*n + 2*(n-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if prog.Messages() != tc.want {
				t.Fatalf("%d messages, want %d", prog.Messages(), tc.want)
			}
			if prog.Ranks() != n {
				t.Fatalf("%d ranks, want %d", prog.Ranks(), n)
			}
		})
	}
}

// TestCollectivesValidateAcrossSizes: every builder must produce a
// Validate-clean program at awkward rank counts (non-powers of two, the
// 2-rank minimum, the baseline 64).
func TestCollectivesValidateAcrossSizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 16, 63, 64} {
		for _, name := range Names() {
			if name == "param_server" && n < 3 {
				continue // needs at least 1 server + 2 workers to be interesting
			}
			spec, err := ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			if name == "param_server" {
				spec.Servers = 1
			}
			if _, err := spec.Build(n); err != nil {
				t.Errorf("%s at n=%d: %v", name, n, err)
			}
		}
	}
}

// TestBroadcastRootRotation: the tree must be rooted where asked — the
// root rank has no waits, and every other rank's first op is a wait.
func TestBroadcastRootRotation(t *testing.T) {
	const n, root = 16, 5
	prog, err := Broadcast(n, 5, root)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		ops := prog.Ops[r]
		if r == root {
			for _, op := range ops {
				if len(op.Wait) != 0 {
					t.Fatalf("root rank %d has a wait", r)
				}
			}
			continue
		}
		if len(ops) == 0 || len(ops[0].Wait) != 1 {
			t.Fatalf("rank %d does not start by waiting for its chunk", r)
		}
	}
}

// TestVNetDiscipline: data chunks ride the response VNet, barrier
// arrivals the request VNet, and barrier releases the forward VNet —
// the class/VNet split that keeps workload traffic off protocol-level
// dependency cycles.
func TestVNetDiscipline(t *testing.T) {
	prog, err := TrainingStep(8, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	var data, req, fwd int
	for _, ops := range prog.Ops {
		for _, op := range ops {
			for _, s := range op.Sends {
				switch {
				case s.Class == message.ClassSyntheticData && s.VNet == message.VNetResponse:
					data++
				case s.Class == message.ClassSyntheticCtrl && s.VNet == message.VNetRequest:
					req++
				case s.Class == message.ClassSyntheticCtrl && s.VNet == message.VNetForward:
					fwd++
				default:
					t.Fatalf("send %+v violates the VNet discipline", s)
				}
			}
		}
	}
	if data != 2*(8-1)*8 || req != 7 || fwd != 7 {
		t.Fatalf("data=%d req=%d fwd=%d; want 112/7/7", data, req, fwd)
	}
}

// TestParamServerHotspot: every gradient converges on the server ranks.
func TestParamServerHotspot(t *testing.T) {
	const n, servers = 16, 2
	prog, err := ParamServer(n, 5, servers, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Workers send only to their assigned server; servers send only to
	// their own workers.
	for r, ops := range prog.Ops {
		for _, op := range ops {
			for _, s := range op.Sends {
				if r >= servers && s.To != r%servers {
					t.Fatalf("worker %d sends to rank %d, not its server %d", r, s.To, r%servers)
				}
				if r < servers && s.To%servers != r {
					t.Fatalf("server %d replies to foreign worker %d", r, s.To)
				}
			}
		}
	}
	// Each server sees (n-servers)/servers gradients.
	perServer := (n - servers) / servers
	for s := 0; s < servers; s++ {
		seen := 0
		for _, dst := range prog.TagDst {
			if dst == s {
				seen++
			}
		}
		if seen != perServer {
			t.Fatalf("server %d receives %d gradients, want %d", s, seen, perServer)
		}
	}
}

// TestBuilderDeterminism: building the same program twice yields
// identical structures (tag allocation is construction-ordered, no map
// iteration anywhere).
func TestBuilderDeterminism(t *testing.T) {
	for _, name := range Names() {
		spec, _ := ParseSpec(name)
		a, err := spec.Build(32)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := spec.Build(32)
		if a.NumTags != b.NumTags || len(a.TagDst) != len(b.TagDst) {
			t.Fatalf("%s: tag allocation differs between builds", name)
		}
		for i := range a.TagDst {
			if a.TagDst[i] != b.TagDst[i] {
				t.Fatalf("%s: TagDst[%d] differs", name, i)
			}
		}
		for r := range a.Ops {
			if len(a.Ops[r]) != len(b.Ops[r]) {
				t.Fatalf("%s: rank %d op count differs", name, r)
			}
		}
	}
}
