package workload

import (
	"fmt"
	"math/bits"

	"uppnoc/internal/message"
)

// Data chunks ride the response VNet as data-class packets; coordination
// messages (barrier arrivals/releases, parameter-server requests) ride
// the request and forward VNets as control packets — the same VNet
// discipline the MESI evaluation uses, so workload traffic can never
// create a protocol-level dependency cycle (every message is consumed
// unconditionally on arrival; only *injection* is dependency-gated).
const (
	// CtlFlits is the size of coordination messages.
	CtlFlits = 1
)

// builder accumulates a Program: tags are allocated in construction
// order, which makes programs deterministic by construction.
type builder struct {
	prog Program
}

func newBuilder(name string, ranks int) *builder {
	return &builder{prog: Program{Name: name, Ops: make([][]Op, ranks)}}
}

// tag allocates the next message tag, destined for rank dst.
func (b *builder) tag(dst int) int {
	t := b.prog.NumTags
	b.prog.NumTags++
	b.prog.TagDst = append(b.prog.TagDst, dst)
	return t
}

// op appends an op to rank r's program.
func (b *builder) op(r int, op Op) {
	b.prog.Ops[r] = append(b.prog.Ops[r], op)
}

func (b *builder) build() (Program, error) {
	if err := b.prog.Validate(); err != nil {
		return Program{}, err
	}
	return b.prog, nil
}

func dataSend(to, tag, flits int) Send {
	return Send{To: to, Tag: tag, Flits: flits, VNet: message.VNetResponse, Class: message.ClassSyntheticData}
}

func ctlSend(to, tag int, vnet message.VNet) Send {
	return Send{To: to, Tag: tag, Flits: CtlFlits, VNet: vnet, Class: message.ClassSyntheticCtrl}
}

// RingAllReduce is the classic two-phase ring: n-1 reduce-scatter steps
// followed by n-1 allgather steps. At step s rank i sends one chunk of
// `flits` flits to rank (i+1) mod n, gated on the chunk it received from
// rank (i-1) mod n at step s-1 — the canonical closed loop: exactly one
// chunk per rank is in flight, and a single stalled link stalls the whole
// ring behind it.
func RingAllReduce(n, flits int) (Program, error) {
	return ringPhases(n, flits, "ring_allreduce", 2*(n-1))
}

// ReduceScatter is the first phase of the ring on its own.
func ReduceScatter(n, flits int) (Program, error) {
	return ringPhases(n, flits, "reduce_scatter", n-1)
}

func ringPhases(n, flits int, name string, steps int) (Program, error) {
	b := newBuilder(name, n)
	// tags[s][i] is the chunk rank i sends at step s.
	tags := make([][]int, steps)
	for s := range tags {
		tags[s] = make([]int, n)
		for i := 0; i < n; i++ {
			tags[s][i] = b.tag((i + 1) % n)
		}
	}
	for i := 0; i < n; i++ {
		prev := (i - 1 + n) % n
		for s := 0; s < steps; s++ {
			op := Op{Sends: []Send{dataSend((i+1)%n, tags[s][i], flits)}}
			if s > 0 {
				op.Wait = []int{tags[s-1][prev]}
			}
			b.op(i, op)
		}
		// Final receive: the last chunk from the predecessor completes
		// this rank's result (and closes the loop on every message).
		b.op(i, Op{Wait: []int{tags[steps-1][prev]}})
	}
	return b.build()
}

// bcastEdges lists the binomial broadcast tree rooted at relative rank 0:
// in round r every covered rank v < 2^r sends to v + 2^r. The returned
// edges are in (round, sender) order.
type bcastEdge struct{ round, from, to int }

func bcastEdges(n int) []bcastEdge {
	var edges []bcastEdge
	for r := 0; 1<<r < n; r++ {
		for v := 0; v < 1<<r; v++ {
			if w := v + 1<<r; w < n {
				edges = append(edges, bcastEdge{round: r, from: v, to: w})
			}
		}
	}
	return edges
}

// addBroadcast appends a binomial-tree broadcast from root over relative
// ranks (relative rank v = absolute (root+v) mod n): every non-root rank
// first waits for its inbound chunk, then forwards down its subtree.
// Returns the tag each rank receives on (indexed by relative rank; -1
// for the root).
func addBroadcast(b *builder, n, root, flits int, data bool) []int {
	abs := func(v int) int { return (root + v) % n }
	inTag := make([]int, n)
	for v := range inTag {
		inTag[v] = -1
	}
	type pending struct {
		round int
		send  Send
	}
	outs := make([][]pending, n)
	for _, e := range bcastEdges(n) {
		t := b.tag(abs(e.to))
		inTag[e.to] = t
		var s Send
		if data {
			s = dataSend(abs(e.to), t, flits)
		} else {
			s = ctlSend(abs(e.to), t, message.VNetForward)
		}
		outs[e.from] = append(outs[e.from], pending{round: e.round, send: s})
	}
	for v := 0; v < n; v++ {
		if v != 0 {
			b.op(abs(v), Op{Wait: []int{inTag[v]}})
		}
		for _, p := range outs[v] {
			b.op(abs(v), Op{Sends: []Send{p.send}})
		}
	}
	return inTag
}

// Broadcast distributes root's chunk down a binomial tree: log2(n)
// rounds, each receiver forwarding only after its own copy arrived.
func Broadcast(n, flits, root int) (Program, error) {
	if root < 0 || root >= n {
		return Program{}, fmt.Errorf("workload broadcast: root %d out of %d ranks", root, n)
	}
	b := newBuilder("broadcast", n)
	addBroadcast(b, n, root, flits, true)
	return b.build()
}

// TreeAllReduce reduces up a binomial tree to rank 0 and broadcasts the
// result back down: rank v sends its partial to v - 2^lsb(v) after
// receiving every child's partial, then the reverse tree distributes the
// result.
func TreeAllReduce(n, flits int) (Program, error) {
	b := newBuilder("tree_allreduce", n)
	// Reduce phase: every rank v != 0 sends its partial upward once, at
	// round lsb(v), to parent v - 2^lsb(v); childTags[v] lists the tags v
	// must gather before its own upward send.
	childTags := make([][]int, n)
	upTag := make([]int, n)
	for v := 1; v < n; v++ {
		parent := v - 1<<lsb(v)
		t := b.tag(parent)
		upTag[v] = t
		childTags[parent] = append(childTags[parent], t)
	}
	for v := 0; v < n; v++ {
		if len(childTags[v]) > 0 {
			b.op(v, Op{Wait: childTags[v]})
		}
		if v != 0 {
			b.op(v, Op{Sends: []Send{dataSend(v-1<<lsb(v), upTag[v], flits)}})
		}
	}
	addBroadcast(b, n, 0, flits, true)
	return b.build()
}

func lsb(v int) int { return bits.TrailingZeros(uint(v)) }

// AllToAll is the bursty personalized exchange: n-1 rounds, rank i
// sending its chunk for rank (i+r) mod n in round r, gated on the chunk
// it received in round r-1 (from rank (i-(r-1)) mod n). Every round is a
// full permutation in flight at once — the workload where
// integration-induced cycles bite hardest.
func AllToAll(n, flits int) (Program, error) {
	b := newBuilder("all_to_all", n)
	// tags[r][i]: the chunk rank i sends in round r (1-based rounds).
	tags := make([][]int, n)
	for r := 1; r < n; r++ {
		tags[r] = make([]int, n)
		for i := 0; i < n; i++ {
			tags[r][i] = b.tag((i + r) % n)
		}
	}
	for i := 0; i < n; i++ {
		for r := 1; r < n; r++ {
			op := Op{Sends: []Send{dataSend((i+r)%n, tags[r][i], flits)}}
			if r > 1 {
				op.Wait = []int{tags[r-1][(i-(r-1)+n)%n]}
			}
			b.op(i, op)
		}
		b.op(i, Op{Wait: []int{tags[n-1][(i-(n-1)+n)%n]}})
	}
	return b.build()
}

// ParamServer is the hotspot pattern: ranks 0..servers-1 are parameter
// servers, the rest are workers. Each iteration a worker pushes its
// gradient (data) to its server and waits for the updated parameters
// (data) before pushing again; a server waits for every assigned
// worker's gradient before answering any of them — the fan-in/fan-out
// hotspot that concentrates load on a few ejection queues.
func ParamServer(n, flits, servers, iters int) (Program, error) {
	if servers < 1 || servers >= n {
		return Program{}, fmt.Errorf("workload param_server: %d servers of %d ranks", servers, n)
	}
	if iters < 1 {
		return Program{}, fmt.Errorf("workload param_server: %d iterations", iters)
	}
	b := newBuilder("param_server", n)
	for it := 0; it < iters; it++ {
		grad := make([]int, n)  // worker w's gradient tag
		reply := make([]int, n) // worker w's reply tag
		for w := servers; w < n; w++ {
			s := w % servers
			grad[w] = b.tag(s)
			reply[w] = b.tag(w)
		}
		for w := servers; w < n; w++ {
			s := w % servers
			b.op(w, Op{Sends: []Send{dataSend(s, grad[w], flits)}})
			b.op(w, Op{Wait: []int{reply[w]}})
		}
		for s := 0; s < servers; s++ {
			var gather []int
			var replies []Send
			for w := servers; w < n; w++ {
				if w%servers == s {
					gather = append(gather, grad[w])
					replies = append(replies, dataSend(w, reply[w], flits))
				}
			}
			b.op(s, Op{Wait: gather})
			b.op(s, Op{Sends: replies})
		}
	}
	return b.build()
}

// addBarrier appends a centralized-gather/tree-release barrier: every
// rank reports to rank 0 on the request VNet; once all arrivals are in,
// rank 0 releases everyone down the binomial tree on the forward VNet.
func addBarrier(b *builder) {
	n := b.prog.Ranks()
	arrive := make([]int, 0, n-1)
	for r := 1; r < n; r++ {
		t := b.tag(0)
		arrive = append(arrive, t)
		b.op(r, Op{Sends: []Send{ctlSend(0, t, message.VNetRequest)}})
	}
	b.op(0, Op{Wait: arrive})
	addBroadcast(b, n, 0, CtlFlits, false)
}

// TrainingStep is one phase-structured ML training iteration: a local
// compute gap (forward/backward pass), a gradient-exchange burst (ring
// allreduce of `flits`-flit chunks), and a barrier before the next step.
// Run it with Engine.Iterations > 1 for a full training loop; the
// barrier makes iteration boundaries network-visible, so successive
// bursts stay as bursty as real training traffic.
func TrainingStep(n, flits, gap int) (Program, error) {
	if gap < 0 {
		return Program{}, fmt.Errorf("workload training_step: negative gap %d", gap)
	}
	ring, err := ringPhases(n, flits, "training_step", 2*(n-1))
	if err != nil {
		return Program{}, err
	}
	b := &builder{prog: ring}
	// Prepend the compute gap to every rank (splice: gap op first).
	for r := range b.prog.Ops {
		ops := make([]Op, 0, len(b.prog.Ops[r])+1)
		ops = append(ops, Op{Compute: gap})
		ops = append(ops, b.prog.Ops[r]...)
		b.prog.Ops[r] = ops
	}
	addBarrier(b)
	return b.build()
}
