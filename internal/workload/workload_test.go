package workload_test

import (
	"strings"
	"testing"

	"uppnoc/internal/core"
	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
	"uppnoc/internal/workload"
)

func newNet(t *testing.T, kernel string) *network.Network {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Kernel = kernel
	return network.MustNew(topo, cfg, core.New(core.DefaultConfig()))
}

// runSpec builds and runs one workload to completion under UPP.
func runSpec(t *testing.T, kernel, spec string, maxCycles int) (*workload.Engine, *network.Network) {
	t.Helper()
	n := newNet(t, kernel)
	ws, err := workload.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ws.Build(len(n.Topo.Cores()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		t.Fatal(err)
	}
	eng.Iterations = ws.EngineIterations()
	if err := eng.Run(maxCycles); err != nil {
		t.Fatalf("%s under kernel %s: %v", spec, kernel, err)
	}
	return eng, n
}

// TestEveryWorkloadCompletes: each collective runs to completion under
// UPP on the baseline system, delivers exactly its program's message
// count, and leaves the network drainable and clean.
func TestEveryWorkloadCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			eng, n := runSpec(t, network.KernelActive, name, 400000)
			ws, _ := workload.ParseSpec(name)
			prog, _ := ws.Build(len(n.Topo.Cores()))
			want := uint64(prog.Messages()) * uint64(ws.EngineIterations())
			if eng.MessagesDelivered != want {
				t.Fatalf("delivered %d messages, want %d", eng.MessagesDelivered, want)
			}
			if err := n.Drain(50000, 5000); err != nil {
				t.Fatalf("post-completion drain: %v", err)
			}
			if n.Stats.BornPackets != n.Stats.ConsumedPackets {
				t.Fatalf("born %d != consumed %d", n.Stats.BornPackets, n.Stats.ConsumedPackets)
			}
			if err := n.CheckQuiescent(); err != nil {
				t.Fatalf("resource audit: %v", err)
			}
		})
	}
}

// TestClosedLoopGating: the engine must not run open-loop. In a ring
// allreduce only the dependency-free step-0 sends may be born before any
// message is consumed, so at every instant the in-flight packet count is
// bounded by the rank count (plus barrier-free: step s>0 needs step s-1
// consumed at the sender).
func TestClosedLoopGating(t *testing.T) {
	n := newNet(t, network.KernelActive)
	ranks := len(n.Topo.Cores())
	prog, err := workload.RingAllReduce(ranks, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && !eng.Done(); i++ {
		eng.Tick(n.Cycle())
		if got := n.InFlight(); got > ranks {
			t.Fatalf("cycle %d: %d packets in flight exceeds the closed-loop bound %d", n.Cycle(), got, ranks)
		}
		n.Step()
	}
}

// TestComputeGapDelaysInjection: a training step's compute phase must
// keep the network silent for the gap length.
func TestComputeGapDelaysInjection(t *testing.T) {
	n := newNet(t, network.KernelActive)
	prog, err := workload.TrainingStep(len(n.Topo.Cores()), 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		eng.Tick(n.Cycle())
		n.Step()
	}
	if n.Stats.BornPackets != 0 {
		t.Fatalf("%d packets born during the 300-cycle compute gap", n.Stats.BornPackets)
	}
	for i := 0; i < 50; i++ {
		eng.Tick(n.Cycle())
		n.Step()
	}
	if n.Stats.BornPackets == 0 {
		t.Fatal("no packets born after the compute gap elapsed")
	}
}

// TestIterationRestart: Iterations > 1 repeats the program; each
// iteration delivers the full message count and completion cycles are
// strictly increasing.
func TestIterationRestart(t *testing.T) {
	n := newNet(t, network.KernelActive)
	prog, err := workload.TrainingStep(len(n.Topo.Cores()), 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		t.Fatal(err)
	}
	eng.Iterations = 3
	if err := eng.Run(400000); err != nil {
		t.Fatal(err)
	}
	iters := eng.IterationsDone()
	if len(iters) != 3 {
		t.Fatalf("%d iterations recorded, want 3", len(iters))
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] <= iters[i-1] {
			t.Fatalf("iteration %d completed at %d, not after %d", i, iters[i], iters[i-1])
		}
	}
	if eng.MessagesDelivered != 3*uint64(prog.Messages()) {
		t.Fatalf("delivered %d, want %d", eng.MessagesDelivered, 3*prog.Messages())
	}
}

// TestEngineKernelDeterminism: a closed-loop run must finish at the same
// cycle with the same stats under all three kernels — the workload layer
// must not break the kernels' bit-identity contract.
func TestEngineKernelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	type outcome struct {
		finish    sim.Cycle
		delivered uint64
		stats     network.Stats
	}
	run := func(kernel string) outcome {
		eng, n := runSpec(t, kernel, "ring_allreduce", 400000)
		return outcome{finish: eng.FinishCycle(), delivered: eng.MessagesDelivered, stats: n.Stats}
	}
	ref := run(network.KernelActive)
	for _, kernel := range []string{network.KernelNaive, network.KernelParallel} {
		got := run(kernel)
		if got != ref {
			t.Fatalf("kernel %s diverges from active:\n%+v\nvs\n%+v", kernel, got, ref)
		}
	}
}

// TestEngineRankMismatch: a program built for the wrong rank count must
// be rejected, not mis-mapped onto the cores.
func TestEngineRankMismatch(t *testing.T) {
	n := newNet(t, network.KernelActive)
	prog, err := workload.RingAllReduce(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.NewEngine(n, prog); err == nil {
		t.Fatal("8-rank program accepted on a 64-core system")
	}
}

// TestRunTimeoutDiagnostic: an unfinished run reports progress, not a
// bare failure.
func TestRunTimeoutDiagnostic(t *testing.T) {
	n := newNet(t, network.KernelActive)
	prog, err := workload.RingAllReduce(len(n.Topo.Cores()), 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := workload.NewEngine(n, prog)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Run(20) // far too few cycles
	if err == nil {
		t.Fatal("a 20-cycle budget cannot complete a 64-rank allreduce")
	}
	if !strings.Contains(err.Error(), "ops fired") {
		t.Fatalf("error lacks op progress: %v", err)
	}
}

// TestValidateRejects: table-driven malformed programs.
func TestValidateRejects(t *testing.T) {
	data := func(to, tag int) workload.Send {
		return workload.Send{To: to, Tag: tag, Flits: 5, VNet: message.VNetResponse, Class: message.ClassSyntheticData}
	}
	cases := []struct {
		name string
		prog workload.Program
		want string
	}{
		{"too_few_ranks", workload.Program{Name: "x", Ops: make([][]workload.Op, 1)}, "at least 2 ranks"},
		{"self_send", workload.Program{Name: "x", NumTags: 1, TagDst: []int{0},
			Ops: [][]workload.Op{{{Sends: []workload.Send{data(0, 0)}}}, {}}}, "self-send"},
		{"unsent_tag", workload.Program{Name: "x", NumTags: 1, TagDst: []int{1},
			Ops: [][]workload.Op{{}, {{Wait: []int{0}}}}}, "sent 0 times"},
		{"unwaited_tag", workload.Program{Name: "x", NumTags: 1, TagDst: []int{1},
			Ops: [][]workload.Op{{{Sends: []workload.Send{data(1, 0)}}}, {}}}, "waited on 0 times"},
		{"wrong_waiter", workload.Program{Name: "x", NumTags: 1, TagDst: []int{1},
			Ops: [][]workload.Op{{{Sends: []workload.Send{data(1, 0)}}, {Wait: []int{0}}}, {}}}, "destined for rank"},
		{"zero_flits", workload.Program{Name: "x", NumTags: 1, TagDst: []int{1},
			Ops: [][]workload.Op{{{Sends: []workload.Send{{To: 1, Tag: 0, Flits: 0, VNet: message.VNetResponse}}}},
				{{Wait: []int{0}}}}}, "flits"},
		{"dependency_cycle", workload.Program{Name: "x", NumTags: 2, TagDst: []int{1, 0},
			Ops: [][]workload.Op{
				{{Wait: []int{1}, Sends: []workload.Send{data(1, 0)}}},
				{{Wait: []int{0}, Sends: []workload.Send{data(0, 1)}}},
			}}, "dependency cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.prog.Validate()
			if err == nil {
				t.Fatal("malformed program validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSpec: syntax acceptance and rejection.
func TestParseSpec(t *testing.T) {
	for _, name := range workload.Names() {
		if _, err := workload.ParseSpec(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	s, err := workload.ParseSpec("param_server:servers=8,iters=3,flits=2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Servers != 8 || s.Iters != 3 || s.Flits != 2 {
		t.Fatalf("options not applied: %+v", s)
	}
	for _, bad := range []string{
		"nope", "ring_allreduce:wat=1", "ring_allreduce:flits", "ring_allreduce:flits=x",
		"ring_allreduce:flits=0", "ring_allreduce:flits=99999", "ring_allreduce:iters=0",
		"param_server:servers=0", "broadcast:root=-1",
	} {
		s, err := workload.ParseSpec(bad)
		if err == nil {
			// Knob errors that depend on rank count surface at Build.
			if _, berr := s.Build(64); berr == nil {
				t.Fatalf("spec %q accepted", bad)
			}
		}
	}
}
