package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Binary trace format ("UPWT"), the record/replay frontend that makes
// third-party workload traces loadable:
//
//	magic   [4]byte "UPWT"
//	version byte    (1)
//	ranks   uvarint (core count the trace was recorded over)
//	records uvarint (exact record count; trailing bytes are an error)
//	record* :
//	    dcycle uvarint (cycle delta vs the previous record; cycles are
//	                    non-decreasing by construction)
//	    src    uvarint (core rank)
//	    dst    uvarint (core rank, != src)
//	    vnet   byte
//	    class  byte
//	    flits  uvarint (1..MaxTraceFlits)
//
// ReadTrace validates every field and returns an error — never panics —
// on malformed headers, truncated records, out-of-range node IDs or
// sizes (FuzzTraceReplay holds it to that).
const (
	traceMagic   = "UPWT"
	traceVersion = 1
	// MaxTraceRanks bounds the rank count a trace may declare.
	MaxTraceRanks = 1 << 20
	// MaxTraceFlits bounds a single message's flit count.
	MaxTraceFlits = 1 << 10
)

// TraceRecord is one injected message of a recorded run.
type TraceRecord struct {
	Cycle sim.Cycle
	Src   int
	Dst   int
	VNet  message.VNet
	Class message.Class
	Flits int
}

// Trace is a parsed workload trace.
type Trace struct {
	Ranks   int
	Records []TraceRecord
}

// TraceRecorder implements Recorder by accumulating records in memory
// (injection order — ascending cycle, ranks ascending within a cycle —
// which WriteTrace's delta encoding requires).
type TraceRecorder struct {
	trace Trace
}

// NewTraceRecorder returns a recorder for a system with the given core
// count. Attach with Engine.SetRecorder.
func NewTraceRecorder(ranks int) *TraceRecorder {
	return &TraceRecorder{trace: Trace{Ranks: ranks}}
}

// Record implements Recorder.
func (r *TraceRecorder) Record(cycle sim.Cycle, srcRank, dstRank int, vnet message.VNet, class message.Class, flits int) {
	r.trace.Records = append(r.trace.Records, TraceRecord{
		Cycle: cycle, Src: srcRank, Dst: dstRank, VNet: vnet, Class: class, Flits: flits,
	})
}

// Trace returns the accumulated trace.
func (r *TraceRecorder) Trace() *Trace { return &r.trace }

// Write writes the trace in the binary format.
func (r *TraceRecorder) Write(w io.Writer) error { return WriteTrace(w, &r.trace) }

// WriteTrace serializes t. Records must be in non-decreasing cycle order
// (the order the engine injects in).
func WriteTrace(w io.Writer, t *Trace) error {
	if t.Ranks < 2 || t.Ranks > MaxTraceRanks {
		return fmt.Errorf("workload trace: rank count %d out of range [2, %d]", t.Ranks, MaxTraceRanks)
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(traceMagic)
	bw.WriteByte(traceVersion)
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		bw.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	put(uint64(t.Ranks))
	put(uint64(len(t.Records)))
	prev := sim.Cycle(0)
	for i, rec := range t.Records {
		if rec.Cycle < prev {
			return fmt.Errorf("workload trace: record %d cycle %d precedes record %d cycle %d", i, rec.Cycle, i-1, prev)
		}
		if err := validateRecord(rec, t.Ranks); err != nil {
			return fmt.Errorf("workload trace: record %d: %w", i, err)
		}
		put(uint64(rec.Cycle - prev))
		prev = rec.Cycle
		put(uint64(rec.Src))
		put(uint64(rec.Dst))
		bw.WriteByte(byte(rec.VNet))
		bw.WriteByte(byte(rec.Class))
		put(uint64(rec.Flits))
	}
	return bw.Flush()
}

func validateRecord(rec TraceRecord, ranks int) error {
	switch {
	case rec.Src < 0 || rec.Src >= ranks:
		return fmt.Errorf("src rank %d out of %d", rec.Src, ranks)
	case rec.Dst < 0 || rec.Dst >= ranks:
		return fmt.Errorf("dst rank %d out of %d", rec.Dst, ranks)
	case rec.Src == rec.Dst:
		return fmt.Errorf("self-send at rank %d", rec.Src)
	case rec.VNet < 0 || rec.VNet >= message.NumVNets:
		return fmt.Errorf("invalid vnet %d", rec.VNet)
	case rec.Class < message.ClassSyntheticCtrl || rec.Class > message.ClassDataAck:
		return fmt.Errorf("invalid class %d", rec.Class)
	case rec.Flits < 1 || rec.Flits > MaxTraceFlits:
		return fmt.Errorf("flit count %d out of range [1, %d]", rec.Flits, MaxTraceFlits)
	}
	return nil
}

// ReadTrace parses and validates a binary trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload trace: short header: %w", err)
	}
	if string(magic[:4]) != traceMagic {
		return nil, fmt.Errorf("workload trace: bad magic %q", magic[:4])
	}
	if magic[4] != traceVersion {
		return nil, fmt.Errorf("workload trace: unsupported version %d (want %d)", magic[4], traceVersion)
	}
	get := func(what string, max uint64) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("workload trace: truncated %s: %w", what, err)
		}
		if v > max {
			return 0, fmt.Errorf("workload trace: %s %d exceeds %d", what, v, max)
		}
		return v, nil
	}
	ranks, err := get("rank count", MaxTraceRanks)
	if err != nil {
		return nil, err
	}
	if ranks < 2 {
		return nil, fmt.Errorf("workload trace: rank count %d below 2", ranks)
	}
	count, err := get("record count", 1<<32)
	if err != nil {
		return nil, err
	}
	cap64 := count
	if cap64 > 4096 {
		cap64 = 4096 // grow as records actually arrive; the count is untrusted
	}
	t := &Trace{Ranks: int(ranks), Records: make([]TraceRecord, 0, cap64)}
	cycle := sim.Cycle(0)
	for i := uint64(0); i < count; i++ {
		d, err := get("cycle delta", 1<<40)
		if err != nil {
			return nil, err
		}
		cycle += sim.Cycle(d)
		src, err := get("src rank", uint64(ranks))
		if err != nil {
			return nil, err
		}
		dst, err := get("dst rank", uint64(ranks))
		if err != nil {
			return nil, err
		}
		vnet, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("workload trace: truncated vnet: %w", err)
		}
		class, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("workload trace: truncated class: %w", err)
		}
		flits, err := get("flit count", MaxTraceFlits)
		if err != nil {
			return nil, err
		}
		rec := TraceRecord{
			Cycle: cycle, Src: int(src), Dst: int(dst),
			VNet: message.VNet(vnet), Class: message.Class(class), Flits: int(flits),
		}
		if err := validateRecord(rec, t.Ranks); err != nil {
			return nil, fmt.Errorf("workload trace: record %d: %w", i, err)
		}
		t.Records = append(t.Records, rec)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("workload trace: trailing bytes after %d records", count)
	}
	return t, nil
}

// Replayer injects a recorded trace into a network open-loop: each
// record's packet is enqueued at exactly its recorded cycle, in record
// order. Replaying a trace against the configuration that produced it
// reproduces the live run bit-for-bit — the network sees the identical
// Enqueue sequence, so Stats and the final cycle match (the golden
// replay test enforces this).
type Replayer struct {
	net   *network.Network
	trace *Trace
	cores []topology.NodeID
	next  int
}

// NewReplayer builds a replayer; the trace's rank count must match the
// network's core count.
func NewReplayer(net *network.Network, t *Trace) (*Replayer, error) {
	cores := net.Topo.Cores()
	if t.Ranks != len(cores) {
		return nil, fmt.Errorf("workload trace: recorded over %d ranks but the system has %d cores", t.Ranks, len(cores))
	}
	return &Replayer{net: net, trace: t, cores: cores}, nil
}

// Done reports whether every record has been injected.
func (rp *Replayer) Done() bool { return rp.next >= len(rp.trace.Records) }

// Tick injects the records scheduled for this cycle. Call once per cycle
// before Network.Step.
func (rp *Replayer) Tick(cycle sim.Cycle) {
	for rp.next < len(rp.trace.Records) {
		rec := &rp.trace.Records[rp.next]
		if rec.Cycle > cycle {
			return
		}
		p := rp.net.AllocPacket()
		p.Src = rp.cores[rec.Src]
		p.Dst = rp.cores[rec.Dst]
		p.VNet = rec.VNet
		p.Size = rec.Flits
		p.Class = rec.Class
		rp.net.NI(p.Src).Enqueue(p, cycle)
		rp.next++
	}
}

// Run ticks and steps for exactly the given number of cycles (drive it
// to the live run's final cycle to compare Stats).
func (rp *Replayer) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		rp.Tick(rp.net.Cycle())
		rp.net.Step()
	}
}
