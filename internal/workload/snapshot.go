package workload

import (
	"math"

	"uppnoc/internal/sim"
	"uppnoc/internal/snap"
)

// SnapshotLabel implements network.SnapshotExtra.
func (e *Engine) SnapshotLabel() string { return "workload" }

// SnapshotState serializes the engine's per-rank state machines and
// iteration cursors so a restored closed-loop run resumes mid-program
// (DESIGN.md §14). The program itself is immutable and must match on
// both sides (rank count and op shapes are validated structurally).
func (e *Engine) SnapshotState(w *snap.Writer) {
	w.Int(e.Iterations)
	w.Uvarint(uint64(len(e.pc)))
	for r := range e.pc {
		w.Varint(int64(e.pc[r]))
		w.Varint(int64(e.computeLeft[r]))
		w.Bool(e.computeSet[r])
	}
	w.Uvarint(uint64(len(e.received)))
	for _, got := range e.received {
		w.Bool(got)
	}
	w.Int(e.doneRanks)
	w.Int(e.iter)
	w.Bool(e.finished)
	w.Varint(e.finishCycle)
	w.Uvarint(uint64(len(e.iterCycles)))
	for _, c := range e.iterCycles {
		w.Varint(c)
	}
	w.Uvarint(e.MessagesDelivered)
}

// RestoreState implements network.SnapshotExtra.
func (e *Engine) RestoreState(r *snap.Reader) error {
	e.Iterations = r.Int("workload iterations", 1, math.MaxInt32)
	nr := r.Len("workload rank count", len(e.pc))
	if r.Err() != nil {
		return r.Err()
	}
	if nr != len(e.pc) {
		r.Fail("workload snapshot has %d ranks, program has %d", nr, len(e.pc))
		return r.Err()
	}
	for i := 0; i < nr; i++ {
		e.pc[i] = int32(r.Int("workload pc", 0, int64(len(e.prog.Ops[i]))))
		e.computeLeft[i] = int32(r.Int("workload compute left", 0, math.MaxInt32))
		e.computeSet[i] = r.Bool("workload compute set")
	}
	nt := r.Len("workload tag count", len(e.received))
	if r.Err() != nil {
		return r.Err()
	}
	if nt != len(e.received) {
		r.Fail("workload snapshot has %d tags, program has %d", nt, len(e.received))
		return r.Err()
	}
	for i := 0; i < nt; i++ {
		e.received[i] = r.Bool("workload received")
	}
	e.doneRanks = r.Int("workload done ranks", 0, int64(nr))
	e.iter = r.Int("workload iter", 0, math.MaxInt32)
	e.finished = r.Bool("workload finished")
	e.finishCycle = r.Varint("workload finish cycle")
	ni := r.Len("workload iter cycles", math.MaxInt32)
	if r.Err() != nil {
		return r.Err()
	}
	e.iterCycles = make([]sim.Cycle, 0, min(ni, 4096))
	for i := 0; i < ni; i++ {
		e.iterCycles = append(e.iterCycles, r.Varint("workload iter cycle"))
		if r.Err() != nil {
			return r.Err()
		}
	}
	e.MessagesDelivered = r.Uvarint("workload delivered")
	return r.Err()
}
