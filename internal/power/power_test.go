package power_test

import (
	"math"
	"testing"

	"uppnoc/internal/power"
	"uppnoc/internal/router"
)

// TestBaselineAreasMatchPaper pins the calibration to the paper's
// published Synopsys DC numbers.
func TestBaselineAreasMatchPaper(t *testing.T) {
	if got := power.BaselineRouterArea(1); math.Abs(got-135083) > 1500 {
		t.Fatalf("1-VC baseline area %f, paper 135083", got)
	}
	if got := power.BaselineRouterArea(4); math.Abs(got-339371) > 3500 {
		t.Fatalf("4-VC baseline area %f, paper 339371", got)
	}
}

// TestOverheadPercentagesMatchFig14 checks the Fig. 14 bars within a
// tolerance.
func TestOverheadPercentagesMatchFig14(t *testing.T) {
	cases := []struct {
		scheme string
		kind   power.RouterKind
		vcs    int
		want   float64
	}{
		{"upp", power.ChipletRouter, 1, 3.77},
		{"upp", power.ChipletRouter, 4, 1.50},
		{"upp", power.InterposerRouter, 1, 2.62},
		{"upp", power.InterposerRouter, 4, 1.47},
		{"remote_control", power.ChipletRouter, 1, 4.14},
		{"remote_control", power.ChipletRouter, 4, 1.65},
		{"remote_control", power.InterposerRouter, 1, 0},
		{"composable", power.ChipletRouter, 1, 0},
		{"composable", power.InterposerRouter, 4, 0},
	}
	for _, c := range cases {
		got := power.OverheadPercent(c.scheme, c.kind, c.vcs)
		if math.Abs(got-c.want) > 0.15 {
			t.Errorf("%s %v %dVC: got %.2f%%, paper %.2f%%", c.scheme, c.kind, c.vcs, got, c.want)
		}
		if got > 5.0 {
			t.Errorf("%s overhead %.2f%% exceeds the paper's <4%% headline by a wide margin", c.scheme, got)
		}
	}
}

// TestStaticDominatesAtBenchmarkLoads reproduces the paper's observation
// that network energy on real benchmarks is leakage-dominated.
func TestStaticDominatesAtBenchmarkLoads(t *testing.T) {
	d := power.NetworkDescription{ChipletRouters: 64, InterposerRouters: 16, VCsPerVNet: 1, Scheme: "upp"}
	// A light realistic load: ~0.02 flits/cycle/node over 100k cycles.
	var s router.Stats
	flits := uint64(0.02 * 80 * 100000)
	s.BufferWrites, s.BufferReads = flits*6, flits*6 // ~6 hops average
	s.CrossbarTravs, s.LinkTravs = flits*6, flits*6
	s.SAGrants = flits * 6
	b := power.Estimate(d, 100000, s, 100)
	if b.StaticJ < 4*b.DynamicJ {
		t.Fatalf("static %.3e J should dominate dynamic %.3e J at benchmark loads", b.StaticJ, b.DynamicJ)
	}
}

// TestEnergyMonotonicInRuntime: longer runtime means more static energy.
func TestEnergyMonotonicInRuntime(t *testing.T) {
	d := power.NetworkDescription{ChipletRouters: 64, InterposerRouters: 16, VCsPerVNet: 1, Scheme: "composable"}
	var s router.Stats
	a := power.Estimate(d, 50000, s, 0)
	b := power.Estimate(d, 100000, s, 0)
	if b.Total() <= a.Total() {
		t.Fatal("energy not monotonic in runtime")
	}
}

// TestDetailedBreakdownConsistent: the component split must sum to the
// aggregate estimate's static part, with buffers dominating leakage (the
// paper's DSENT observation).
func TestDetailedBreakdownConsistent(t *testing.T) {
	d := power.NetworkDescription{ChipletRouters: 64, InterposerRouters: 16, VCsPerVNet: 1, Scheme: "upp"}
	var s router.Stats
	s.BufferWrites, s.BufferReads = 1e6, 1e6
	s.CrossbarTravs, s.LinkTravs, s.SAGrants = 1e6, 1e6, 1e6
	parts := power.EstimateDetailed(d, 100000, s, 500)
	if len(parts) != 5 {
		t.Fatalf("%d components", len(parts))
	}
	sum := power.TotalOf(parts)
	agg := power.Estimate(d, 100000, s, 500)
	if math.Abs(sum.StaticJ-agg.StaticJ) > agg.StaticJ*1e-9 {
		t.Fatalf("static mismatch: %v vs %v", sum.StaticJ, agg.StaticJ)
	}
	var buf, rest float64
	for _, p := range parts {
		if p.Component == "buffer" {
			buf = p.StaticJ
		} else {
			rest += p.StaticJ
		}
	}
	if buf <= rest {
		t.Fatalf("buffer leakage %.3e should dominate the rest %.3e", buf, rest)
	}
}
