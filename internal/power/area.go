// Package power models router area (Fig. 14) and network energy
// (Fig. 15). The paper synthesizes routers with Synopsys DC at 45nm for
// area and uses DSENT at 22nm for energy; we use component-level
// parametric models calibrated against the paper's published baselines
// (135,083 um^2 for the 1-VC router, 339,371 um^2 for the 4-VC router).
// Both figures report *relative* numbers (percent overhead, normalized
// energy), which is what the model reproduces.
package power

import (
	"uppnoc/internal/message"
)

// Calibration constants (45nm, derived from the paper's two published
// baseline router areas; see package comment).
const (
	// vcBufferArea is the area of one VC buffer (4 flits x 128 bits),
	// per input port.
	vcBufferArea = 4540.0 // um^2
	// routerFixedArea covers crossbar, allocators, pipeline registers and
	// the NI share that do not scale with VC count.
	routerFixedArea = 66987.0 // um^2
	// basePorts is the router radix the calibration assumed.
	basePorts = 5
)

// UPP microarchitecture adders (Fig. 6): two 32-bit signal buffers plus
// the circuit-connection table and multiplexers in every chiplet router;
// per-VNet timeout counters, round-robin arbiters and the popup-state
// table in every interposer router.
const (
	uppSignalBufferArea = 2080.0 // two 32-bit buffers + muxes
	uppCircuitTableArea = 1910.0 // per-VNet connection records
	uppNITableArea      = 1100.0 // reservation table + req/ack/stop units

	uppCounterArea  = 620.0  // one timeout counter per VNet
	uppStateArea    = 1196.0 // popup-state table + req/ack/stop units
	uppArbiterPerVC = 161.0  // round-robin arbiter grows with VC count
)

// Remote-control adders: four data-packet-sized boundary buffers plus the
// permission-subnetwork endpoint at every chiplet router (the paper's
// reported overhead is charged to chiplet routers; the hard-wired
// permission tree is wiring-dominated).
const (
	rcBoundaryBufferArea = 5100.0
	rcPermissionArea     = 495.0
)

// RouterKind selects chiplet vs interposer router.
type RouterKind int

// Router kinds for the area model.
const (
	ChipletRouter RouterKind = iota
	InterposerRouter
)

// BaselineRouterArea returns the baseline router area in um^2 for the
// given VCs per VNet.
func BaselineRouterArea(vcsPerVNet int) float64 {
	vcs := message.NumVNets * vcsPerVNet
	return float64(vcs)*vcBufferArea*basePorts + routerFixedArea
}

// SchemeOverheadArea returns the additional area a scheme adds to one
// router of the given kind, in um^2.
func SchemeOverheadArea(scheme string, kind RouterKind, vcsPerVNet int) float64 {
	switch scheme {
	case "composable":
		// Turn restrictions are routing-table configuration: ~zero area.
		return 0
	case "remote_control":
		if kind == ChipletRouter {
			return rcBoundaryBufferArea + rcPermissionArea
		}
		return 0
	case "upp":
		if kind == ChipletRouter {
			return uppSignalBufferArea + uppCircuitTableArea + uppNITableArea
		}
		vcs := message.NumVNets * vcsPerVNet
		return uppStateArea + message.NumVNets*uppCounterArea + uppArbiterPerVC*float64(vcs)
	}
	return 0
}

// OverheadPercent returns the Fig. 14 metric: a scheme's router area
// overhead relative to the baseline router.
func OverheadPercent(scheme string, kind RouterKind, vcsPerVNet int) float64 {
	return 100 * SchemeOverheadArea(scheme, kind, vcsPerVNet) / BaselineRouterArea(vcsPerVNet)
}
