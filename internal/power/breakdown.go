package power

import (
	"uppnoc/internal/router"
)

// ComponentEnergy is the per-component split the paper's DSENT tables use
// (buffer / crossbar / allocator / clock / link, dynamic and static).
type ComponentEnergy struct {
	Component string
	DynamicJ  float64
	StaticJ   float64
}

// Static power shares per component, calibrated to the paper's embedded
// DSENT data where buffers dominate leakage and the clock tree dominates
// dynamic baseline power.
var staticShare = map[string]float64{
	"buffer":    0.78,
	"crossbar":  0.09,
	"allocator": 0.05,
	"clock":     0.03,
	"link":      0.05,
}

// EstimateDetailed splits a run's energy by component, mirroring the
// paper's Fig. 15 source structure.
func EstimateDetailed(d NetworkDescription, cycles int64, s router.Stats, signalHops uint64) []ComponentEnergy {
	staticTotal := StaticPower(d) * float64(cycles) * cycleSeconds
	pj := func(v float64) float64 { return v * 1e-12 }
	signalPJ := float64(signalHops) * (EnergyCrossbar + EnergyLink) * 32.0 / 128.0
	return []ComponentEnergy{
		{
			Component: "buffer",
			DynamicJ:  pj(float64(s.BufferWrites)*EnergyBufferWrite + float64(s.BufferReads)*EnergyBufferRead),
			StaticJ:   staticTotal * staticShare["buffer"],
		},
		{
			Component: "crossbar",
			DynamicJ:  pj(float64(s.CrossbarTravs)*EnergyCrossbar + signalPJ/2),
			StaticJ:   staticTotal * staticShare["crossbar"],
		},
		{
			Component: "allocator",
			DynamicJ:  pj(float64(s.SAGrants) * EnergyArbitration),
			StaticJ:   staticTotal * staticShare["allocator"],
		},
		{
			Component: "clock",
			DynamicJ:  pj(float64(s.CrossbarTravs) * 0.3), // clocked pipeline registers per traversal
			StaticJ:   staticTotal * staticShare["clock"],
		},
		{
			Component: "link",
			DynamicJ:  pj(float64(s.LinkTravs)*EnergyLink + signalPJ/2),
			StaticJ:   staticTotal * staticShare["link"],
		},
	}
}

// TotalOf sums a detailed breakdown.
func TotalOf(parts []ComponentEnergy) Breakdown {
	var b Breakdown
	for _, p := range parts {
		b.DynamicJ += p.DynamicJ
		b.StaticJ += p.StaticJ
	}
	return b
}
