package power

import (
	"uppnoc/internal/message"
	"uppnoc/internal/router"
)

// Energy model (DSENT-style, 22nm, 1 GHz): per-event dynamic energies plus
// per-cycle leakage proportional to router area. The paper observes that
// real-benchmark traffic is light enough that static power dominates, so
// normalized energy tracks normalized runtime (Fig. 15); the model
// reproduces exactly that structure.
const (
	// Dynamic energy per event, picojoules.
	EnergyBufferWrite = 1.20
	EnergyBufferRead  = 1.00
	EnergyCrossbar    = 1.50
	EnergyLink        = 2.00
	EnergyArbitration = 0.10

	// Leakage power density: watts per um^2 of router area (22nm).
	leakageDensity = 45e-9
	// cycleSeconds at the 1 GHz network clock (Table II).
	cycleSeconds = 1e-9
)

// Breakdown reports the energy split of one run.
type Breakdown struct {
	DynamicJ float64
	StaticJ  float64
}

// Total returns dynamic + static energy in joules.
func (b Breakdown) Total() float64 { return b.DynamicJ + b.StaticJ }

// NetworkDescription summarizes the routers of a system for the static
// model.
type NetworkDescription struct {
	ChipletRouters    int
	InterposerRouters int
	VCsPerVNet        int
	Scheme            string
}

// StaticPower returns the network's total leakage in watts, including the
// scheme's area overhead (extra hardware leaks too).
func StaticPower(d NetworkDescription) float64 {
	base := BaselineRouterArea(d.VCsPerVNet)
	area := float64(d.ChipletRouters)*(base+SchemeOverheadArea(d.Scheme, ChipletRouter, d.VCsPerVNet)) +
		float64(d.InterposerRouters)*(base+SchemeOverheadArea(d.Scheme, InterposerRouter, d.VCsPerVNet))
	return area * leakageDensity
}

// Estimate computes the energy of a run from its duration and datapath
// event counters.
func Estimate(d NetworkDescription, cycles int64, s router.Stats, signalHops uint64) Breakdown {
	dynamicPJ := float64(s.BufferWrites)*EnergyBufferWrite +
		float64(s.BufferReads)*EnergyBufferRead +
		float64(s.CrossbarTravs)*EnergyCrossbar +
		float64(s.LinkTravs)*EnergyLink +
		float64(s.SAGrants)*EnergyArbitration +
		// UPP protocol signals are narrow (<=18 of 128 bits, Fig. 4);
		// charge them a proportional slice of a link+crossbar event.
		float64(signalHops)*(EnergyCrossbar+EnergyLink)*
			float64(message.SignalBufferBits)/128.0
	return Breakdown{
		DynamicJ: dynamicPJ * 1e-12,
		StaticJ:  StaticPower(d) * float64(cycles) * cycleSeconds,
	}
}
