package coherence

import (
	"fmt"

	"uppnoc/internal/message"
	"uppnoc/internal/network"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Config parameterizes the coherence substrate.
type Config struct {
	// L1Sets and L1Ways fix the private cache geometry (Table II's 32KB
	// L1 at 64B lines ~ 512 blocks; we default to 128x4 = 512).
	L1Sets, L1Ways int
	// Directories is the number of interposer-resident directories
	// (Table II: 8).
	Directories int
	// InjQueueCap bounds NI injection queues; PEs hold messages in their
	// internal output queues when full.
	InjQueueCap int
	// OutQueueGate defers request processing while a PE's output queue is
	// this long (the proof-case-2 back-pressure).
	OutQueueGate int
	// L2Sets/L2Ways size the shared L2 bank co-located with each directory
	// (Table II: 1MB shared L2; modeled as the directory-side cache that
	// decides between L2-hit and DRAM-miss response latency).
	L2Sets, L2Ways int
	// L2HitLatency and DRAMLatency delay the directory's data responses
	// (cycles) depending on whether the block hits the L2 bank.
	L2HitLatency, DRAMLatency int
	// MSHRs is the number of outstanding misses each core sustains.
	// The evaluation default is 1 (a blocking core): the synthetic
	// profiles' miss rates are far above real PARSEC's, and deeper MSHRs
	// would push the NoC into saturation — a regime the paper's
	// full-system runs never enter. Raise it (e.g. to 8) to study
	// memory-level parallelism; correctness is MSHR-independent.
	MSHRs int
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{
		L1Sets: 128, L1Ways: 4,
		Directories: 8, InjQueueCap: 8, OutQueueGate: 12,
		L2Sets: 1024, L2Ways: 8,
		L2HitLatency: 8, DRAMLatency: 60,
		MSHRs: 1,
	}
}

// System couples a network with cores and directories running the MESI
// protocol under a workload profile.
type System struct {
	Net  *network.Network
	Cfg  Config
	Work Workload

	cores []*Core
	dirs  map[topology.NodeID]*Directory
	// dirNodes maps address slices to directory nodes.
	dirNodes []topology.NodeID

	txnSeq uint64

	// Stats.
	Requests   uint64
	Forwards   uint64
	Responses  uint64
	L1Hits     uint64
	L1Misses   uint64
	L2Hits     uint64
	L2Misses   uint64
	Writebacks uint64
}

// New builds a coherence system over net. The workload's RNG streams are
// seeded from seed.
func New(net *network.Network, cfg Config, work Workload, seed uint64) (*System, error) {
	if cfg.L1Sets&(cfg.L1Sets-1) != 0 {
		return nil, fmt.Errorf("coherence: L1Sets must be a power of two")
	}
	s := &System{Net: net, Cfg: cfg, Work: work, dirs: make(map[topology.NodeID]*Directory)}

	// Directories live on the interposer, spread evenly (Table II: 8
	// directories on the interposer).
	interposer := net.Topo.Interposer
	if cfg.Directories > len(interposer) {
		return nil, fmt.Errorf("coherence: %d directories exceed %d interposer routers", cfg.Directories, len(interposer))
	}
	for i := 0; i < cfg.Directories; i++ {
		node := interposer[i*len(interposer)/cfg.Directories]
		d := &Directory{sys: s, node: node, blocks: make(map[uint64]*dirEntry), l2: newL1(cfg.L2Sets, cfg.L2Ways)}
		s.dirs[node] = d
		s.dirNodes = append(s.dirNodes, node)
		ni := net.NI(node)
		ni.Consume = d.consume
	}

	master := sim.NewRNG(seed)
	for i, cn := range net.Topo.Cores() {
		c := &Core{
			sys:   s,
			node:  cn,
			index: i,
			l1:    newL1(cfg.L1Sets, cfg.L1Ways),
			rng:   master.Split(uint64(i)),
		}
		s.cores = append(s.cores, c)
		net.NI(cn).Consume = c.consume
	}
	return s, nil
}

// homeDir returns the directory node for a block address.
func (s *System) homeDir(addr uint64) topology.NodeID {
	return s.dirNodes[addr%uint64(len(s.dirNodes))]
}

// send queues a protocol message from a PE's output queue logic; callers
// go through Core.send / Directory.send which manage their queues.
func (s *System) newPacket(src, dst topology.NodeID, class message.Class, addr uint64) *message.Packet {
	s.txnSeq++
	// Recycled from the network's pool; released by the destination NI
	// after consume. PEs snapshot the fields they need inside consume and
	// never retain the packet pointer afterwards.
	p := s.Net.AllocPacket()
	p.Src = src
	p.Dst = dst
	p.Class = class
	p.Addr = addr
	p.Txn = s.txnSeq
	switch class {
	case message.ClassGetS, message.ClassGetM:
		p.VNet = message.VNetRequest
		p.Size = message.ControlPacketFlits
	case message.ClassPutM:
		p.VNet = message.VNetRequest
		p.Size = message.DataPacketFlits
	case message.ClassFwdGetS, message.ClassFwdGetM, message.ClassInv:
		p.VNet = message.VNetForward
		p.Size = message.ControlPacketFlits
	case message.ClassData:
		p.VNet = message.VNetResponse
		p.Size = message.DataPacketFlits
	case message.ClassDataAck:
		p.VNet = message.VNetResponse
		p.Size = message.ControlPacketFlits
	default:
		panic("coherence: unknown class")
	}
	switch p.VNet {
	case message.VNetRequest:
		s.Requests++
	case message.VNetForward:
		s.Forwards++
	default:
		s.Responses++
	}
	return p
}

// Done reports whether every core has completed its access quota and all
// protocol traffic — including writebacks still queued inside PEs — has
// drained.
func (s *System) Done() bool {
	for _, c := range s.cores {
		if !c.done() {
			return false
		}
	}
	for _, dn := range s.dirNodes {
		if len(s.dirs[dn].outQ) != 0 {
			return false
		}
	}
	return s.Net.Quiesced()
}

// Step advances cores, PEs' output queues and the network by one cycle.
func (s *System) Step() {
	cycle := s.Net.Cycle()
	for _, c := range s.cores {
		c.tick(cycle)
		c.drainOut(cycle)
	}
	for _, node := range s.dirNodes {
		s.dirs[node].drainOut(cycle)
	}
	s.Net.Step()
}

// Run executes the workload to completion, returning the runtime in
// cycles. It fails if the system stops making progress (a deadlock under
// a scheme without recovery) or exceeds maxCycles.
func (s *System) Run(maxCycles int) (sim.Cycle, error) {
	start := s.Net.Cycle()
	lastProgress := start
	var lastConsumed uint64
	for {
		if s.Done() {
			return s.Net.Cycle() - start, nil
		}
		if s.Net.Cycle()-start > sim.Cycle(maxCycles) {
			return 0, fmt.Errorf("coherence: workload %s exceeded %d cycles (%d/%d cores done)",
				s.Work.Name, maxCycles, s.doneCores(), len(s.cores))
		}
		if c := s.Net.Stats.ConsumedPackets + s.coreProgress(); c != lastConsumed {
			lastConsumed = c
			lastProgress = s.Net.Cycle()
		}
		if s.Net.Cycle()-lastProgress > 50000 {
			return 0, fmt.Errorf("coherence: workload %s deadlocked (%d/%d cores done)",
				s.Work.Name, s.doneCores(), len(s.cores))
		}
		s.Step()
	}
}

func (s *System) doneCores() int {
	n := 0
	for _, c := range s.cores {
		if c.done() {
			n++
		}
	}
	return n
}

func (s *System) coreProgress() uint64 {
	var n uint64
	for _, c := range s.cores {
		n += uint64(c.completed)
	}
	return n
}

// Cores exposes core handles (tests).
func (s *System) Cores() []*Core { return s.cores }
