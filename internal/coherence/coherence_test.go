package coherence_test

import (
	"testing"

	"uppnoc/internal/coherence"
	"uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

func cohSystem(t *testing.T, scheme network.Scheme, w coherence.Workload, vcs int) *coherence.System {
	t.Helper()
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = vcs
	n, err := network.New(topo, cfg, scheme)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	s, err := coherence.New(n, coherence.DefaultConfig(), w, 99)
	if err != nil {
		t.Fatalf("coherence: %v", err)
	}
	return s
}

func TestSmallWorkloadCompletes(t *testing.T) {
	w, err := coherence.BenchmarkByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(0.1)
	s := cohSystem(t, core.New(core.DefaultConfig()), w, 1)
	cycles, err := s.Run(3_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("runtime=%d cycles, reqs=%d fwds=%d resps=%d hits=%d misses=%d wb=%d",
		cycles, s.Requests, s.Forwards, s.Responses, s.L1Hits, s.L1Misses, s.Writebacks)
	if s.Requests == 0 || s.Responses == 0 {
		t.Fatal("no protocol traffic generated")
	}
	if s.L1Hits == 0 {
		t.Fatal("no cache hits — working set model broken")
	}
}

func TestShareHeavyWorkloadAllSchemes(t *testing.T) {
	w, err := coherence.BenchmarkByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(0.06)
	schemes := map[string]func(*topology.Topology) network.Scheme{
		"upp": func(*topology.Topology) network.Scheme { return core.New(core.DefaultConfig()) },
	}
	for name, mk := range schemes {
		s := cohSystem(t, mk(nil), w, 1)
		cycles, err := s.Run(5_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Forwards == 0 {
			t.Fatalf("%s: sharing workload produced no forwards", name)
		}
		t.Logf("%s: runtime=%d fwds=%d", name, cycles, s.Forwards)
	}
}
