package coherence

import (
	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// mshrEntry tracks one outstanding miss.
type mshrEntry struct {
	write bool
	// invalidated: an Inv for this address overtook the (read) fill; the
	// returning data is already stale and must not be cached.
	invalidated bool
}

// Core models one processing element: a core with a private L1 sustaining
// up to Config.MSHRs outstanding misses (Table II's cores are 8-wide
// out-of-order with a 192-entry reorder buffer — memory-level parallelism,
// not a single blocking miss, is what loads the NoC).
type Core struct {
	sys   *System
	node  topology.NodeID
	index int
	l1    *l1Cache
	rng   *sim.RNG

	completed int
	mshr      map[uint64]*mshrEntry

	// outQ holds generated messages until NI injection space frees up.
	outQ []*message.Packet
}

func (c *Core) done() bool {
	return c.completed >= c.sys.Work.AccessesPerCore && len(c.mshr) == 0 && len(c.outQ) == 0
}

// tick issues at most one memory access per cycle according to the
// workload profile, as long as an MSHR is free.
func (c *Core) tick(cycle sim.Cycle) {
	if c.completed+len(c.mshr) >= c.sys.Work.AccessesPerCore {
		return // quota covered by completed + in-flight accesses
	}
	if len(c.mshr) >= c.sys.Cfg.MSHRs {
		return
	}
	if len(c.outQ) >= c.sys.Cfg.OutQueueGate {
		return // eviction backlog; let it drain first
	}
	if !c.rng.Bernoulli(c.sys.Work.AccessProb) {
		return
	}
	addr := c.sys.Work.address(c.index, c.rng)
	write := c.rng.Bernoulli(c.sys.Work.WriteFrac)
	if e, inflight := c.mshr[addr]; inflight {
		// Access to a line already being fetched: merge into the MSHR
		// (write-upgrades of read misses are folded — a modeling
		// simplification; real MSHRs reissue a GetM on the fill).
		_ = e
		c.sys.L1Hits++
		c.completed++
		return
	}
	l := c.l1.lookup(addr)
	switch {
	case l != nil && (!write || l.state == modified || l.state == exclusive):
		// Hit (reads in any valid state; writes in M/E upgrade silently).
		if write {
			l.state = modified
		}
		c.sys.L1Hits++
		c.completed++
	case l != nil && write:
		// Write to a Shared line: upgrade miss.
		c.sys.L1Misses++
		c.miss(addr, true)
	default:
		c.sys.L1Misses++
		c.miss(addr, write)
	}
}

// miss allocates an MSHR and sends the coherence request for addr.
func (c *Core) miss(addr uint64, write bool) {
	class := message.ClassGetS
	if write {
		class = message.ClassGetM
	}
	c.send(c.sys.newPacket(c.node, c.sys.homeDir(addr), class, addr))
	if c.mshr == nil {
		c.mshr = make(map[uint64]*mshrEntry)
	}
	c.mshr[addr] = &mshrEntry{write: write}
}

// send queues a message for injection.
func (c *Core) send(p *message.Packet) { c.outQ = append(c.outQ, p) }

// drainOut moves queued messages into the NI while it has space.
func (c *Core) drainOut(cycle sim.Cycle) {
	ni := c.sys.Net.NI(c.node)
	kept := c.outQ[:0]
	for _, p := range c.outQ {
		if ni.InjSpace(p.VNet, c.sys.Cfg.InjQueueCap) {
			ni.Enqueue(p, cycle)
		} else {
			kept = append(kept, p)
		}
	}
	c.outQ = kept
}

// consume is the NI Consumer: it implements the PE side of the protocol
// and the consumption rules of the Sec. V-B4 proof — responses are always
// consumed; forward processing is deferred while the output queue is
// congested (it must generate a writeback).
func (c *Core) consume(p *message.Packet, cycle sim.Cycle) bool {
	switch p.Class {
	case message.ClassData:
		c.fill(p)
		return true
	case message.ClassDataAck:
		return true // writeback acknowledged
	case message.ClassInv:
		// Invalidation: ack to the directory. Cheap, but it generates a
		// message — defer under backlog (still consumed eventually). An
		// Inv must never wait on our own outstanding miss: the miss may be
		// queued at the directory behind the very transaction this Inv
		// serves (deferring would deadlock the protocol). Instead, note
		// the race and drop the stale line at fill time.
		if len(c.outQ) >= c.sys.Cfg.OutQueueGate {
			return false
		}
		if e, ok := c.mshr[p.Addr]; ok && !e.write {
			e.invalidated = true
		}
		c.l1.invalidate(p.Addr)
		c.send(c.sys.newPacket(c.node, p.Src, message.ClassDataAck, p.Addr))
		return true
	case message.ClassFwdGetS:
		if _, ok := c.mshr[p.Addr]; ok {
			// The forward raced ahead of our fill on another VNet: we are
			// about to become the owner the directory is forwarding to.
			// Defer until the Data lands (responses are never blocked by
			// forwards, so this cannot deadlock).
			return false
		}
		if len(c.outQ) >= c.sys.Cfg.OutQueueGate {
			return false
		}
		if l := c.l1.lookup(p.Addr); l != nil && (l.state == modified || l.state == exclusive) {
			l.state = shared
			c.sys.Writebacks++
			c.send(c.sys.newPacket(c.node, p.Src, message.ClassData, p.Addr))
		}
		// Absent line: our PutM is in flight and will serve as the
		// writeback at the directory.
		return true
	case message.ClassFwdGetM:
		if _, ok := c.mshr[p.Addr]; ok {
			return false // raced ahead of our fill; see FwdGetS
		}
		if len(c.outQ) >= c.sys.Cfg.OutQueueGate {
			return false
		}
		if l := c.l1.lookup(p.Addr); l != nil && (l.state == modified || l.state == exclusive) {
			c.l1.invalidate(p.Addr)
			c.sys.Writebacks++
			c.send(c.sys.newPacket(c.node, p.Src, message.ClassData, p.Addr))
		}
		return true
	}
	panic("coherence: core received unexpected class")
}

// fill completes one outstanding miss.
func (c *Core) fill(p *message.Packet) {
	e, ok := c.mshr[p.Addr]
	if !ok {
		panic("coherence: unexpected data response")
	}
	delete(c.mshr, p.Addr)
	st := shared
	switch {
	case e.write:
		st = modified
	case p.AuxCount == 1:
		st = exclusive
	}
	if l := c.l1.lookup(p.Addr); l != nil {
		// Upgrade completion: the line is already resident (S -> M).
		l.state = st
		c.completed++
		return
	}
	if e.invalidated {
		// An invalidation overtook this (read) fill: count the access but
		// do not keep the stale line.
		c.completed++
		return
	}
	// Evicting a dirty or exclusive victim requires a writeback so the
	// directory's owner view stays exact (silent E evictions would wedge
	// a later forward). A victim with an outstanding miss of its own
	// cannot occur: MSHR lines are absent from the cache by definition.
	v := c.l1.victim(p.Addr)
	if v.state == modified || v.state == exclusive {
		c.sys.Writebacks++
		c.send(c.sys.newPacket(c.node, c.sys.homeDir(v.addr), message.ClassPutM, v.addr))
		v.state = invalid
	}
	c.l1.install(p.Addr, st)
	c.completed++
}
