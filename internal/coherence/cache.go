// Package coherence is the full-system substitute substrate: a directory
// MESI protocol over the chiplet NoC, driven by per-benchmark synthetic
// memory profiles. The paper evaluates UPP with gem5 full-system
// simulations of PARSEC and SPLASH-2; we cannot run an x86 full system, so
// this package generates the same *kind* of NoC load — request / forward /
// response messages over three virtual networks, with closed-loop
// dependencies between ejection and injection queues (the exact structure
// the Sec. V-B4 ejection-reservation proof reasons about) — from
// per-benchmark profiles of intensity, write fraction, sharing and
// working-set size.
//
// Protocol summary (directory-serialized MESI):
//
//	GetS/GetM/PutM ride VNet 0 (requests), FwdGetS/FwdGetM/Inv ride VNet 1
//	(forwards), Data/WBData/InvAck/Ack ride VNet 2 (responses). Data
//	always flows through the home directory; owners write back to the
//	directory on forwards. The directory serializes transactions per
//	block. Responses are terminating messages consumed unconditionally;
//	request processing is gated on output-queue space — the two proof
//	cases of Sec. V-B4.
package coherence

import "uppnoc/internal/topology"

// MESI line states in an L1 cache.
type lineState uint8

const (
	invalid lineState = iota
	shared
	exclusive
	modified
)

// line is one cache block.
type line struct {
	addr  uint64
	state lineState
	lru   uint64
}

// l1Cache is a set-associative private cache.
type l1Cache struct {
	sets    [][]line
	setMask uint64
	tick    uint64
}

// newL1 builds a cache with the given geometry.
func newL1(sets, ways int) *l1Cache {
	c := &l1Cache{sets: make([][]line, sets), setMask: uint64(sets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c
}

func (c *l1Cache) set(addr uint64) []line { return c.sets[addr&c.setMask] }

// lookup returns the line holding addr, or nil.
func (c *l1Cache) lookup(addr uint64) *line {
	s := c.set(addr)
	for i := range s {
		if s[i].state != invalid && s[i].addr == addr {
			c.tick++
			s[i].lru = c.tick
			return &s[i]
		}
	}
	return nil
}

// victim returns the line to fill addr into, preferring invalid lines,
// then non-modified LRU lines, then modified LRU lines (modified victims
// force a writeback).
func (c *l1Cache) victim(addr uint64) *line {
	s := c.set(addr)
	var bestClean, bestAny *line
	for i := range s {
		l := &s[i]
		if l.state == invalid {
			return l
		}
		if l.state != modified && (bestClean == nil || l.lru < bestClean.lru) {
			bestClean = l
		}
		if bestAny == nil || l.lru < bestAny.lru {
			bestAny = l
		}
	}
	if bestClean != nil {
		return bestClean
	}
	return bestAny
}

// install fills addr with the given state.
func (c *l1Cache) install(addr uint64, st lineState) *line {
	l := c.victim(addr)
	c.tick++
	*l = line{addr: addr, state: st, lru: c.tick}
	return l
}

// invalidate drops addr if present, returning its previous state.
func (c *l1Cache) invalidate(addr uint64) lineState {
	if l := c.lookup(addr); l != nil {
		st := l.state
		l.state = invalid
		return st
	}
	return invalid
}

// occupancy counts valid lines (tests).
func (c *l1Cache) occupancy() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].state != invalid {
				n++
			}
		}
	}
	return n
}

// dirState is the directory's view of a block.
type dirState uint8

const (
	dirInvalid dirState = iota
	dirShared
	dirModified
	// dirTransient: a transaction is in flight (waiting for a writeback
	// or invalidation acks); further requests queue behind it.
	dirTransient
)

// dirEntry is the directory record for one block.
type dirEntry struct {
	state   dirState
	owner   topology.NodeID
	sharers map[topology.NodeID]bool
	// transient bookkeeping
	waitAcks int32
	pendReq  []pendingReq // queued requests while transient
	cur      pendingReq   // the transaction being served
}

// pendingReq is a queued coherence request at the directory.
type pendingReq struct {
	requester topology.NodeID
	write     bool
}
