package coherence

import (
	"testing"
	"testing/quick"

	"uppnoc/internal/sim"
)

func TestCacheLookupInstall(t *testing.T) {
	c := newL1(4, 2)
	if c.lookup(0x10) != nil {
		t.Fatal("hit in empty cache")
	}
	c.install(0x10, shared)
	l := c.lookup(0x10)
	if l == nil || l.state != shared {
		t.Fatal("install/lookup broken")
	}
	if c.occupancy() != 1 {
		t.Fatalf("occupancy %d", c.occupancy())
	}
}

func TestCacheVictimPreference(t *testing.T) {
	c := newL1(1, 3) // one set, three ways
	c.install(1, shared)
	c.install(2, modified)
	c.install(3, exclusive)
	// The set is full; a clean (non-modified) line must be preferred.
	v := c.victim(4)
	if v.state == modified {
		t.Fatal("victim picked a modified line while clean lines exist")
	}
}

func TestCacheVictimLRU(t *testing.T) {
	c := newL1(1, 2)
	c.install(1, shared)
	c.install(2, shared)
	c.lookup(1) // touch 1 so 2 becomes LRU
	v := c.victim(3)
	if v.addr != 2 {
		t.Fatalf("victim %d, want LRU line 2", v.addr)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newL1(2, 2)
	c.install(5, modified)
	if st := c.invalidate(5); st != modified {
		t.Fatalf("invalidate returned %d", st)
	}
	if c.lookup(5) != nil {
		t.Fatal("line survives invalidate")
	}
	if st := c.invalidate(5); st != invalid {
		t.Fatal("double invalidate should report invalid")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		c := newL1(8, 2)
		c.install(uint64(a), shared)
		c.install(uint64(b), exclusive)
		if a == b {
			return true
		}
		la := c.lookup(uint64(a))
		lb := c.lookup(uint64(b))
		// Same set with 2 ways can hold both unless a third eviction
		// occurred (it did not); different sets always hold both.
		return la != nil || lb != nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadAddressRegions(t *testing.T) {
	w, err := BenchmarkByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	sharedSeen, privSeen := 0, 0
	for i := 0; i < 10000; i++ {
		addr := w.address(3, rng)
		switch addr >> 40 {
		case 2:
			sharedSeen++
		case 1:
			privSeen++
			if core := (addr >> 20) & 0xFFFFF; core != 3 {
				t.Fatalf("private address %x belongs to core %d", addr, core)
			}
		default:
			t.Fatalf("address %x outside both regions", addr)
		}
	}
	frac := float64(sharedSeen) / 10000
	if frac < w.SharedFrac-0.05 || frac > w.SharedFrac+0.05 {
		t.Fatalf("shared fraction %.3f, profile %.3f", frac, w.SharedFrac)
	}
	_ = privSeen
}

func TestBenchmarkProfiles(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 18 {
		t.Fatalf("%d benchmark profiles, want 18 (Fig. 8)", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Fatalf("duplicate profile %s", b.Name)
		}
		seen[b.Name] = true
		if b.AccessProb <= 0 || b.AccessProb > 1 || b.WriteFrac < 0 || b.WriteFrac > 1 ||
			b.SharedFrac < 0 || b.SharedFrac > 1 || b.PrivateBlocks == 0 || b.SharedBlocks == 0 ||
			b.AccessesPerCore <= 0 {
			t.Fatalf("profile %s has invalid parameters: %+v", b.Name, b)
		}
	}
	if _, err := BenchmarkByName("not_a_benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	scaled := bs[0].Scale(0.001)
	if scaled.AccessesPerCore < 50 {
		t.Fatal("scale floor violated")
	}
}
