package coherence

import (
	"uppnoc/internal/message"
	"uppnoc/internal/sim"
	"uppnoc/internal/topology"
)

// Directory is one interposer-resident MESI directory slice. It serializes
// transactions per block: while a block is transient (waiting for a
// writeback or invalidation acks), further requests for it queue inside
// the directory.
type Directory struct {
	sys    *System
	node   topology.NodeID
	blocks map[uint64]*dirEntry
	// l2 is the shared L2 bank co-located with this directory slice; it
	// decides whether a data response pays L2-hit or DRAM latency.
	l2   *l1Cache
	outQ []delayedPkt
}

// delayedPkt is an outgoing message plus the cycle its memory access
// completes (L2 hit or DRAM fill).
type delayedPkt struct {
	pkt   *message.Packet
	ready sim.Cycle
}

func (d *Directory) entry(addr uint64) *dirEntry {
	e := d.blocks[addr]
	if e == nil {
		e = &dirEntry{state: dirInvalid, sharers: make(map[topology.NodeID]bool)}
		d.blocks[addr] = e
	}
	return e
}

func (d *Directory) send(p *message.Packet) {
	d.outQ = append(d.outQ, delayedPkt{pkt: p})
}

// sendAfter queues a message that becomes injectable after a memory-access
// delay.
func (d *Directory) sendAfter(p *message.Packet, cycle sim.Cycle, delay int) {
	d.outQ = append(d.outQ, delayedPkt{pkt: p, ready: cycle + sim.Cycle(delay)})
}

func (d *Directory) drainOut(cycle sim.Cycle) {
	ni := d.sys.Net.NI(d.node)
	kept := d.outQ[:0]
	for _, dp := range d.outQ {
		if dp.ready <= cycle && ni.InjSpace(dp.pkt.VNet, d.sys.Cfg.InjQueueCap) {
			ni.Enqueue(dp.pkt, cycle)
		} else {
			kept = append(kept, dp)
		}
	}
	d.outQ = kept
}

// consume is the NI Consumer for the directory. Requests are deferred
// while the output queue is congested (they generate responses — the
// Sec. V-B4 proof's second case); responses (writebacks, invalidation
// acks) are consumed unconditionally (first case).
func (d *Directory) consume(p *message.Packet, cycle sim.Cycle) bool {
	switch p.Class {
	case message.ClassGetS, message.ClassGetM:
		if len(d.outQ) >= d.sys.Cfg.OutQueueGate {
			return false
		}
		d.request(p.Addr, pendingReq{requester: p.Src, write: p.Class == message.ClassGetM}, cycle)
		return true
	case message.ClassPutM:
		if len(d.outQ) >= d.sys.Cfg.OutQueueGate {
			return false
		}
		d.putM(p.Addr, p.Src, cycle)
		return true
	case message.ClassData:
		// Owner writeback for an in-flight forward.
		d.writebackArrived(p.Addr, cycle)
		return true
	case message.ClassDataAck:
		// Invalidation ack.
		d.ackArrived(p.Addr, cycle)
		return true
	}
	panic("coherence: directory received unexpected class")
}

// request starts or queues a transaction for addr.
func (d *Directory) request(addr uint64, req pendingReq, cycle sim.Cycle) {
	e := d.entry(addr)
	if e.state == dirTransient {
		e.pendReq = append(e.pendReq, req)
		return
	}
	d.serve(addr, e, req, cycle)
}

// serve executes one request against a stable entry.
func (d *Directory) serve(addr uint64, e *dirEntry, req pendingReq, cycle sim.Cycle) {
	switch e.state {
	case dirInvalid:
		// Grant Exclusive on reads (the E of MESI), Modified on writes.
		d.grant(addr, req, 1, cycle)
		e.state = dirModified
		e.owner = req.requester
	case dirShared:
		if !req.write {
			e.sharers[req.requester] = true
			d.grant(addr, req, 0, cycle)
			return
		}
		// Invalidate all other sharers, then grant M. Sharers are
		// invalidated in node order so runs are deterministic.
		var targets []topology.NodeID
		for s := range e.sharers {
			if s != req.requester {
				targets = append(targets, s)
			}
		}
		sortNodes(targets)
		n := int32(len(targets))
		for _, s := range targets {
			d.send(d.sys.newPacket(d.node, s, message.ClassInv, addr))
		}
		if n == 0 {
			d.grant(addr, req, 0, cycle)
			e.state = dirModified
			e.owner = req.requester
			clear(e.sharers)
			return
		}
		e.state = dirTransient
		e.cur = req
		e.waitAcks = n
	case dirModified:
		if e.owner == req.requester {
			// The owner re-requesting means it evicted the line and its
			// PutM is still in flight (the only way an owner loses a line
			// under explicit writebacks). Wait for that writeback, then
			// serve — granting immediately would race the PutM into
			// wrongly invalidating the fresh ownership.
			e.state = dirTransient
			e.cur = req
			e.waitAcks = 1
			return
		}
		class := message.ClassFwdGetS
		if req.write {
			class = message.ClassFwdGetM
		}
		fwd := d.sys.newPacket(d.node, e.owner, class, addr)
		fwd.AuxNode = req.requester
		d.send(fwd)
		e.state = dirTransient
		e.cur = req
		e.waitAcks = 1
	default:
		panic("coherence: serve on transient entry")
	}
}

// grant sends Data to the requester after the memory access completes:
// L2-hit latency when the block is resident in this directory slice's L2
// bank, DRAM latency otherwise (the block is installed on the fill).
// exclusive=1 marks an E grant for reads.
func (d *Directory) grant(addr uint64, req pendingReq, exclusive int32, cycle sim.Cycle) {
	data := d.sys.newPacket(d.node, req.requester, message.ClassData, addr)
	if !req.write {
		data.AuxCount = exclusive
	}
	delay := d.sys.Cfg.L2HitLatency
	if d.l2.lookup(addr) == nil {
		delay = d.sys.Cfg.DRAMLatency
		d.l2.install(addr, shared)
		d.sys.L2Misses++
	} else {
		d.sys.L2Hits++
	}
	d.sendAfter(data, cycle, delay)
}

// putM handles an owner writeback request.
func (d *Directory) putM(addr uint64, from topology.NodeID, cycle sim.Cycle) {
	e := d.entry(addr)
	// Always ack so the sender's transaction retires.
	d.send(d.sys.newPacket(d.node, from, message.ClassDataAck, addr))
	switch e.state {
	case dirModified:
		if e.owner == from {
			e.state = dirInvalid
			e.owner = topology.InvalidNode
			// The writeback lands in the L2 bank.
			d.l2.install(addr, modified)
		}
		// Stale PutM from a previous owner: drop.
	case dirTransient:
		if e.owner == from && e.waitAcks > 0 && len(e.sharers) == 0 {
			// The PutM crossed our forward: it carries the data the
			// forward would have written back. The owner will ignore the
			// forward (line absent).
			d.writebackArrived(addr, cycle)
		}
	}
}

// writebackArrived completes a forward-based transaction.
func (d *Directory) writebackArrived(addr uint64, cycle sim.Cycle) {
	e := d.entry(addr)
	if e.state != dirTransient || e.waitAcks <= 0 {
		return // duplicate (PutM raced the forward's writeback): drop
	}
	e.waitAcks--
	if e.waitAcks > 0 {
		return
	}
	req := e.cur
	d.l2.install(addr, modified) // the owner's writeback refreshes the L2 bank
	d.grant(addr, req, 0, cycle)
	if req.write {
		e.state = dirModified
		e.owner = req.requester
		clear(e.sharers)
	} else {
		e.state = dirShared
		e.sharers[e.owner] = true
		e.sharers[req.requester] = true
		e.owner = topology.InvalidNode
	}
	d.completePending(addr, e, cycle)
}

// ackArrived counts one invalidation ack.
func (d *Directory) ackArrived(addr uint64, cycle sim.Cycle) {
	e := d.entry(addr)
	if e.state != dirTransient || e.waitAcks <= 0 {
		return
	}
	e.waitAcks--
	if e.waitAcks > 0 {
		return
	}
	req := e.cur
	d.grant(addr, req, 0, cycle)
	e.state = dirModified
	e.owner = req.requester
	clear(e.sharers)
	d.completePending(addr, e, cycle)
}

// completePending replays requests queued while the block was transient.
func (d *Directory) completePending(addr uint64, e *dirEntry, cycle sim.Cycle) {
	for len(e.pendReq) > 0 && e.state != dirTransient {
		req := e.pendReq[0]
		e.pendReq = e.pendReq[1:]
		d.serve(addr, e, req, cycle)
	}
}

// sortNodes orders node IDs ascending (insertion sort; the slices are
// tiny).
func sortNodes(ns []topology.NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j-1] > ns[j]; j-- {
			ns[j-1], ns[j] = ns[j], ns[j-1]
		}
	}
}
