package coherence

import (
	"testing"

	"uppnoc/internal/message"

	"uppnoc/internal/composable"
	upp "uppnoc/internal/core"
	"uppnoc/internal/network"
	"uppnoc/internal/topology"
)

// runWorkload executes a scaled benchmark under UPP and returns the
// system for white-box inspection.
func runWorkload(t *testing.T, name string, scale float64, vcs int) (*System, int64) {
	t.Helper()
	w, err := BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(scale)
	topo := topology.MustBuild(topology.BaselineConfig())
	cfg := network.DefaultConfig()
	cfg.Router.VCsPerVNet = vcs
	n := network.MustNew(topo, cfg, upp.New(upp.DefaultConfig()))
	s, err := New(n, DefaultConfig(), w, 5)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := s.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s, int64(cycles)
}

// TestCoherenceInvariantAfterRun: after quiescing, the directory's view
// must exactly match the caches — the single-writer/multi-reader MESI
// invariant over every block either side remembers.
func TestCoherenceInvariantAfterRun(t *testing.T) {
	s, _ := runWorkload(t, "barnes", 0.1, 1)

	// Collect each core's view per block.
	type holder struct {
		node topology.NodeID
		st   lineState
	}
	holders := map[uint64][]holder{}
	for _, c := range s.cores {
		for _, set := range c.l1.sets {
			for _, l := range set {
				if l.state != invalid {
					holders[l.addr] = append(holders[l.addr], holder{c.node, l.state})
				}
			}
		}
	}
	for addr, hs := range holders {
		owners := 0
		for _, h := range hs {
			if h.st == modified || h.st == exclusive {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("block %x has %d M/E owners", addr, owners)
		}
		if owners == 1 && len(hs) > 1 {
			t.Fatalf("block %x has an owner plus %d other copies", addr, len(hs)-1)
		}
	}
	// Directory agreement.
	for _, dn := range s.dirNodes {
		d := s.dirs[dn]
		for addr, e := range d.blocks {
			switch e.state {
			case dirTransient:
				t.Fatalf("block %x still transient after quiesce", addr)
			case dirModified:
				hs := holders[addr]
				if len(hs) != 1 || hs[0].node != e.owner {
					t.Fatalf("block %x: directory says owner %d, caches say %v", addr, e.owner, hs)
				}
			case dirShared:
				for _, h := range holders[addr] {
					if h.st == modified || h.st == exclusive {
						t.Fatalf("block %x: dir Shared but core %d holds %d", addr, h.node, h.st)
					}
					if !e.sharers[h.node] {
						t.Fatalf("block %x: core %d holds a copy the directory does not track", addr, h.node)
					}
				}
			case dirInvalid:
				if len(holders[addr]) != 0 {
					t.Fatalf("block %x: dir Invalid but cached at %v", addr, holders[addr])
				}
			}
			if len(e.pendReq) != 0 {
				t.Fatalf("block %x has %d queued requests after quiesce", addr, len(e.pendReq))
			}
		}
	}
}

// TestAllCoresComplete: every core finishes its quota exactly.
func TestAllCoresComplete(t *testing.T) {
	s, _ := runWorkload(t, "fluidanimate", 0.08, 1)
	for _, c := range s.cores {
		if c.completed != s.Work.AccessesPerCore {
			t.Fatalf("core %d completed %d of %d", c.index, c.completed, s.Work.AccessesPerCore)
		}
		if len(c.outQ) != 0 || len(c.mshr) != 0 {
			t.Fatalf("core %d left residual state", c.index)
		}
	}
	if err := s.Net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeDeterminism: identical seeds give identical runtimes.
func TestRuntimeDeterminism(t *testing.T) {
	_, a := runWorkload(t, "water_nsquared", 0.05, 1)
	_, b := runWorkload(t, "water_nsquared", 0.05, 1)
	if a != b {
		t.Fatalf("runtimes differ: %d vs %d", a, b)
	}
}

// TestMoreVCsNotSlower: adding VCs must not hurt a network-bound workload.
func TestMoreVCsNotSlower(t *testing.T) {
	_, r1 := runWorkload(t, "fft", 0.06, 1)
	_, r4 := runWorkload(t, "fft", 0.06, 4)
	if float64(r4) > float64(r1)*1.10 {
		t.Fatalf("4 VCs slower than 1 VC: %d vs %d", r4, r1)
	}
}

// TestVNetClassMapping: the protocol's classes ride the VNets Table II
// assigns (requests 0, forwards 1, responses 2) — checked via the packet
// constructor.
func TestVNetClassMapping(t *testing.T) {
	topo := topology.MustBuild(topology.BaselineConfig())
	n := network.MustNew(topo, network.DefaultConfig(), network.None{})
	w, _ := BenchmarkByName("blackscholes")
	s, err := New(n, DefaultConfig(), w, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		class  message.Class
		vnet   int8
		isData bool
	}{
		{message.ClassGetS, 0, false},
		{message.ClassGetM, 0, false},
		{message.ClassPutM, 0, true},
		{message.ClassFwdGetS, 1, false},
		{message.ClassFwdGetM, 1, false},
		{message.ClassInv, 1, false},
		{message.ClassData, 2, true},
		{message.ClassDataAck, 2, false},
	}
	for _, c := range cases {
		p := s.newPacket(topo.Cores()[0], topo.Interposer[0], c.class, 0x99)
		if int8(p.VNet) != c.vnet {
			t.Fatalf("class %v on vnet %d, want %d", c.class, p.VNet, c.vnet)
		}
		if (p.Size == 5) != c.isData {
			t.Fatalf("class %v size %d", c.class, p.Size)
		}
	}
}

// TestCoherenceOnHeterogeneousSystem: the MESI substrate must run on
// mixed-size chiplet systems too (directories stay on the interposer).
func TestCoherenceOnHeterogeneousSystem(t *testing.T) {
	topo, err := topology.BuildHetero(topology.HeteroExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := network.MustNew(topo, network.DefaultConfig(), upp.New(upp.DefaultConfig()))
	w, err := BenchmarkByName("bodytrack")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(n, DefaultConfig(), w.Scale(0.05), 3)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := s.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	t.Logf("hetero runtime %d cycles, %d requests", cycles, s.Requests)
}

// TestSchemeRuntimeOrdering: composable's restricted routing must cost
// runtime on a network-bound workload relative to UPP.
func TestSchemeRuntimeOrdering(t *testing.T) {
	run := func(mk func(*topology.Topology) network.Scheme) int64 {
		topo := topology.MustBuild(topology.BaselineConfig())
		n := network.MustNew(topo, network.DefaultConfig(), mk(topo))
		w, err := BenchmarkByName("fft")
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(n, DefaultConfig(), w.Scale(0.08), 3)
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := s.Run(20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return int64(cycles)
	}
	uppRT := run(func(*topology.Topology) network.Scheme { return upp.New(upp.DefaultConfig()) })
	compRT := run(func(tp *topology.Topology) network.Scheme {
		s, err := composable.NewScheme(tp)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	t.Logf("fft runtime: upp %d, composable %d", uppRT, compRT)
	if compRT <= uppRT {
		t.Fatalf("composable (%d) should be slower than UPP (%d) on a network-bound workload", compRT, uppRT)
	}
}

// TestL2AndDRAMLatency: the first access to a block pays DRAM latency at
// the directory; re-access after eviction from L1 (but resident in the L2
// bank) pays only L2-hit latency. Verified via the hit/miss counters.
func TestL2AndDRAMLatency(t *testing.T) {
	s, _ := runWorkload(t, "water_nsquared", 0.1, 1)
	if s.L2Misses == 0 {
		t.Fatal("no DRAM fills recorded")
	}
	if s.L2Hits == 0 {
		t.Fatal("no L2-bank hits recorded — re-references should hit the shared L2")
	}
	t.Logf("L2 hits %d, DRAM fills %d", s.L2Hits, s.L2Misses)
}

// TestMSHRParallelismHelps: memory-level parallelism must overlap misses —
// a core with 8 MSHRs finishes measurably faster than a blocking core
// (this is what makes the coherence load resemble the paper's
// out-of-order cores).
func TestMSHRParallelismHelps(t *testing.T) {
	run := func(mshrs int) int64 {
		w, err := BenchmarkByName("blackscholes")
		if err != nil {
			t.Fatal(err)
		}
		w = w.Scale(0.05)
		topo := topology.MustBuild(topology.BaselineConfig())
		n := network.MustNew(topo, network.DefaultConfig(), upp.New(upp.DefaultConfig()))
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		s, err := New(n, cfg, w, 5)
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := s.Run(20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return int64(cycles)
	}
	blocking, mlp := run(1), run(8)
	t.Logf("blackscholes runtime: 1 MSHR %d cycles, 8 MSHRs %d cycles", blocking, mlp)
	// The shared directories' injection bandwidth caps the benefit on
	// miss-heavy profiles; a >10% speedup still proves misses overlap.
	if float64(mlp) > float64(blocking)*0.9 {
		t.Fatalf("8 MSHRs (%d) should be at least 10%% under blocking (%d)", mlp, blocking)
	}
}
