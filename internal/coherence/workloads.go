package coherence

import (
	"fmt"

	"uppnoc/internal/sim"
)

// Workload is a per-benchmark synthetic memory profile. The paper runs
// PARSEC and SPLASH-2 under gem5 full-system simulation; we reproduce the
// NoC-visible behaviour of each benchmark with a profile of access
// intensity, write fraction, sharing and working-set size. The parameters
// are calibrated from the benchmarks' published cache/sharing
// characterizations: network-intensive benchmarks (canneal, fft, radix)
// have large working sets and high sharing; compute-bound ones
// (blackscholes, swaptions) barely touch the NoC — mirroring the spread of
// runtime gains in the paper's Fig. 8.
type Workload struct {
	Name string
	// AccessProb is the per-cycle probability a core issues a memory
	// access when not blocked on a miss.
	AccessProb float64
	// WriteFrac is the store fraction of accesses.
	WriteFrac float64
	// SharedFrac is the fraction of accesses targeting the globally
	// shared region.
	SharedFrac float64
	// PrivateBlocks and SharedBlocks size the two address regions (cache
	// blocks); the private region's ratio to the 512-block L1 sets the
	// miss rate.
	PrivateBlocks uint64
	SharedBlocks  uint64
	// AccessesPerCore is the per-core access quota; runtime is the cycle
	// count until every core completes it.
	AccessesPerCore int
}

// address draws one block address for a core.
func (w Workload) address(core int, rng *sim.RNG) uint64 {
	if rng.Bernoulli(w.SharedFrac) {
		return (2 << 40) | uint64(rng.Intn(int(w.SharedBlocks)))
	}
	return (1 << 40) | uint64(core)<<20 | uint64(rng.Intn(int(w.PrivateBlocks)))
}

// Scale returns a copy with the access quota scaled by f (benchmarks use
// scaled-down runs).
func (w Workload) Scale(f float64) Workload {
	w.AccessesPerCore = int(float64(w.AccessesPerCore) * f)
	if w.AccessesPerCore < 50 {
		w.AccessesPerCore = 50
	}
	return w
}

// Benchmarks returns the 18 PARSEC + SPLASH-2 profiles of Figs. 8/12/15,
// in the paper's plotting order.
func Benchmarks() []Workload {
	return []Workload{
		// PARSEC
		{Name: "blackscholes", AccessProb: 0.10, WriteFrac: 0.15, SharedFrac: 0.02, PrivateBlocks: 320, SharedBlocks: 256, AccessesPerCore: 3000},
		{Name: "bodytrack", AccessProb: 0.20, WriteFrac: 0.20, SharedFrac: 0.10, PrivateBlocks: 640, SharedBlocks: 512, AccessesPerCore: 3000},
		{Name: "canneal", AccessProb: 0.35, WriteFrac: 0.25, SharedFrac: 0.35, PrivateBlocks: 4096, SharedBlocks: 2048, AccessesPerCore: 2500},
		{Name: "dedup", AccessProb: 0.25, WriteFrac: 0.30, SharedFrac: 0.15, PrivateBlocks: 1024, SharedBlocks: 512, AccessesPerCore: 3000},
		{Name: "facesim", AccessProb: 0.18, WriteFrac: 0.25, SharedFrac: 0.08, PrivateBlocks: 768, SharedBlocks: 384, AccessesPerCore: 3000},
		{Name: "fluidanimate", AccessProb: 0.25, WriteFrac: 0.30, SharedFrac: 0.18, PrivateBlocks: 1280, SharedBlocks: 640, AccessesPerCore: 2800},
		{Name: "swaptions", AccessProb: 0.12, WriteFrac: 0.15, SharedFrac: 0.03, PrivateBlocks: 384, SharedBlocks: 256, AccessesPerCore: 3200},
		{Name: "vips", AccessProb: 0.18, WriteFrac: 0.22, SharedFrac: 0.08, PrivateBlocks: 704, SharedBlocks: 384, AccessesPerCore: 3000},
		// SPLASH-2
		{Name: "barnes", AccessProb: 0.22, WriteFrac: 0.25, SharedFrac: 0.25, PrivateBlocks: 896, SharedBlocks: 768, AccessesPerCore: 2800},
		{Name: "cholesky", AccessProb: 0.20, WriteFrac: 0.22, SharedFrac: 0.12, PrivateBlocks: 832, SharedBlocks: 512, AccessesPerCore: 3000},
		{Name: "fft", AccessProb: 0.35, WriteFrac: 0.30, SharedFrac: 0.30, PrivateBlocks: 4096, SharedBlocks: 1536, AccessesPerCore: 2500},
		{Name: "lu_cb", AccessProb: 0.22, WriteFrac: 0.25, SharedFrac: 0.15, PrivateBlocks: 768, SharedBlocks: 512, AccessesPerCore: 3000},
		{Name: "lu_ncb", AccessProb: 0.25, WriteFrac: 0.25, SharedFrac: 0.20, PrivateBlocks: 1024, SharedBlocks: 640, AccessesPerCore: 2800},
		{Name: "radiosity", AccessProb: 0.18, WriteFrac: 0.22, SharedFrac: 0.15, PrivateBlocks: 768, SharedBlocks: 512, AccessesPerCore: 3000},
		{Name: "radix", AccessProb: 0.38, WriteFrac: 0.35, SharedFrac: 0.30, PrivateBlocks: 4608, SharedBlocks: 1792, AccessesPerCore: 2500},
		{Name: "raytrace", AccessProb: 0.16, WriteFrac: 0.15, SharedFrac: 0.20, PrivateBlocks: 704, SharedBlocks: 640, AccessesPerCore: 3000},
		{Name: "water_nsquared", AccessProb: 0.15, WriteFrac: 0.20, SharedFrac: 0.10, PrivateBlocks: 576, SharedBlocks: 384, AccessesPerCore: 3000},
		{Name: "water_spatial", AccessProb: 0.15, WriteFrac: 0.20, SharedFrac: 0.12, PrivateBlocks: 640, SharedBlocks: 384, AccessesPerCore: 3000},
	}
}

// BenchmarkByName finds a profile.
func BenchmarkByName(name string) (Workload, error) {
	for _, w := range Benchmarks() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("coherence: unknown benchmark %q", name)
}
