//go:build !uppdebug

package topology

// validateDeepAlways gates the quadratic duplicate-link scan in Validate.
// Off by default so large scale topologies validate in linear time; build
// with -tags uppdebug to run the deep scan at every size (see
// validatedebug_on.go).
const validateDeepAlways = false
