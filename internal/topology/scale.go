package topology

import (
	"fmt"

	"uppnoc/internal/sim"
)

// ScaleConfig parameterizes the scale-out system builder: a grid of
// interposer tiles, each an independent TileW x TileH active-interposer
// mesh carrying its own grid of chiplets, with neighbouring tiles bridged
// edge-to-edge by inter-tile links. A 1x1 tile grid degenerates to a flat
// (but arbitrarily large) single-interposer system, which is how the
// 16x16+ meshes of the scale benchmarks are expressed.
//
// The bridged tiles form one global interposer mesh with global
// coordinates, so the existing XY layer routing applies unchanged; the
// hierarchy shows up only as the longer InterTileLatency on the bridging
// links (a 2.5D-of-2.5D package crossing) and in how chiplet regions are
// laid out (regions never straddle a tile border).
type ScaleConfig struct {
	// Tile grid dimensions (interposer tiles).
	TilesX, TilesY int
	// Interposer mesh dimensions per tile (routers).
	TileW, TileH int
	// Chiplet grid per tile: ChipletsX*ChipletsY chiplets are placed over
	// each tile, which is partitioned into equal rectangular regions.
	ChipletsX, ChipletsY int
	// Chiplet mesh dimensions (routers per chiplet).
	ChipletW, ChipletH int
	// BoundaryPerChiplet is the number of boundary routers (and vertical
	// links) per chiplet.
	BoundaryPerChiplet int
	// LinkLatency in cycles for intra-tile and chiplet links.
	LinkLatency int
	// InterTileLatency in cycles for the links bridging adjacent tiles.
	// Ignored (may be zero) for a 1x1 tile grid.
	InterTileLatency int
	// Seed drives random tie-breaking in the static binding (Sec. V-D).
	Seed uint64
}

// ScaleSmallConfig returns the flat 16x16-interposer scale system: one
// tile, 16 chiplets of 4x4 routers — 512 routers, 256 cores.
func ScaleSmallConfig() ScaleConfig {
	return ScaleConfig{
		TilesX: 1, TilesY: 1,
		TileW: 16, TileH: 16,
		ChipletsX: 4, ChipletsY: 4,
		ChipletW: 4, ChipletH: 4,
		BoundaryPerChiplet: 4,
		LinkLatency:        1,
		Seed:               1,
	}
}

// ScaleLargeConfig returns the 2x2-tile hierarchical system: four 16x16
// interposer tiles, 64 chiplets — 2048 routers, 1024 cores.
func ScaleLargeConfig() ScaleConfig {
	c := ScaleSmallConfig()
	c.TilesX, c.TilesY = 2, 2
	c.InterTileLatency = 4
	return c
}

// ScaleHugeConfig returns the 4x4-tile hierarchical system: sixteen 16x16
// interposer tiles, 256 chiplets — 8192 routers, 4096 cores.
func ScaleHugeConfig() ScaleConfig {
	c := ScaleSmallConfig()
	c.TilesX, c.TilesY = 4, 4
	c.InterTileLatency = 4
	return c
}

// InterposerDims returns the global interposer mesh dimensions.
func (c ScaleConfig) InterposerDims() (w, h int) {
	return c.TilesX * c.TileW, c.TilesY * c.TileH
}

// NumChiplets returns the total chiplet count across all tiles.
func (c ScaleConfig) NumChiplets() int {
	return c.TilesX * c.TilesY * c.ChipletsX * c.ChipletsY
}

// NumRouters returns the total router count of the built system.
func (c ScaleConfig) NumRouters() int {
	w, h := c.InterposerDims()
	return w*h + c.NumChiplets()*c.ChipletW*c.ChipletH
}

// NumCores returns the traffic endpoint count (one per chiplet router).
func (c ScaleConfig) NumCores() int {
	return c.NumChiplets() * c.ChipletW * c.ChipletH
}

// NumLinks returns the total link count of the built system: the global
// interposer mesh (tile bridges included), every chiplet mesh, and one
// vertical link per boundary router.
func (c ScaleConfig) NumLinks() int {
	w, h := c.InterposerDims()
	interposer := h*(w-1) + w*(h-1)
	perChiplet := c.ChipletH*(c.ChipletW-1) + c.ChipletW*(c.ChipletH-1)
	return interposer + c.NumChiplets()*(perChiplet+c.BoundaryPerChiplet)
}

// Validate reports configuration errors before building.
func (c ScaleConfig) Validate() error {
	switch {
	case c.TilesX < 1 || c.TilesY < 1:
		return fmt.Errorf("topology: tile grid %dx%d invalid", c.TilesX, c.TilesY)
	case c.TileW < 1 || c.TileH < 1:
		return fmt.Errorf("topology: tile %dx%d invalid", c.TileW, c.TileH)
	case c.ChipletW < 2 || c.ChipletH < 2:
		return fmt.Errorf("topology: chiplet %dx%d too small (need >=2x2)", c.ChipletW, c.ChipletH)
	case c.ChipletsX < 1 || c.ChipletsY < 1:
		return fmt.Errorf("topology: chiplet grid %dx%d invalid", c.ChipletsX, c.ChipletsY)
	case c.TileW%c.ChipletsX != 0 || c.TileH%c.ChipletsY != 0:
		return fmt.Errorf("topology: tile %dx%d not divisible into %dx%d regions",
			c.TileW, c.TileH, c.ChipletsX, c.ChipletsY)
	case c.BoundaryPerChiplet < 1:
		return fmt.Errorf("topology: need at least one boundary router per chiplet")
	case c.BoundaryPerChiplet > 2*(c.ChipletW+c.ChipletH)-4:
		return fmt.Errorf("topology: %d boundary routers exceed chiplet perimeter", c.BoundaryPerChiplet)
	case c.LinkLatency < 1:
		return fmt.Errorf("topology: link latency must be >= 1")
	case (c.TilesX > 1 || c.TilesY > 1) && c.InterTileLatency < 1:
		return fmt.Errorf("topology: inter-tile latency must be >= 1 for a %dx%d tile grid",
			c.TilesX, c.TilesY)
	}
	return nil
}

// BuildScale constructs the scale-out system described by c.
//
// Unlike Build, it is memory-lean: node, port and link storage are counted
// exactly up front and carved out of three contiguous arenas, so building
// never reallocates mid-construction and an 8k-router system builds in a
// few milliseconds with no per-node map allocations.
func BuildScale(c ScaleConfig) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	gw, gh := c.InterposerDims()
	numInterposer := gw * gh
	numChiplets := c.NumChiplets()
	routersPerChiplet := c.ChipletW * c.ChipletH
	numNodes := c.NumRouters()
	numLinks := c.NumLinks()
	regionW := c.TileW / c.ChipletsX
	regionH := c.TileH / c.ChipletsY
	gridW := c.TilesX * c.ChipletsX // chiplet grid width, global
	gridH := c.TilesY * c.ChipletsY
	boundaryLocal := boundaryPositions(c.ChipletW, c.ChipletH, c.BoundaryPerChiplet)

	// Exact per-node port counts, so each node's port slice can be carved
	// at full capacity from one shared arena and appends never reallocate.
	portCount := make([]int32, numNodes)
	meshDegree := func(x, y, w, h int) int32 {
		d := int32(0)
		if x > 0 {
			d++
		}
		if x+1 < w {
			d++
		}
		if y > 0 {
			d++
		}
		if y+1 < h {
			d++
		}
		return d
	}
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			portCount[y*gw+x] = 1 + meshDegree(x, y, gw, gh)
		}
	}
	// Up links: replay the attachment rule (spread or round-robin within
	// the chiplet's region) without building anything.
	regionSize := regionW * regionH
	upAt := func(gx, gy, bi int) (ix, iy int) {
		var ri int
		if c.BoundaryPerChiplet <= regionSize {
			ri = bi * regionSize / c.BoundaryPerChiplet
		} else {
			ri = bi % regionSize
		}
		return gx*regionW + ri%regionW, gy*regionH + ri/regionW
	}
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < gridW; gx++ {
			for bi := range boundaryLocal {
				ix, iy := upAt(gx, gy, bi)
				portCount[iy*gw+ix]++
			}
		}
	}
	for ci := 0; ci < numChiplets; ci++ {
		base := numInterposer + ci*routersPerChiplet
		for y := 0; y < c.ChipletH; y++ {
			for x := 0; x < c.ChipletW; x++ {
				portCount[base+y*c.ChipletW+x] = 1 + meshDegree(x, y, c.ChipletW, c.ChipletH)
			}
		}
		for _, pos := range boundaryLocal {
			portCount[base+pos.y*c.ChipletW+pos.x]++
		}
	}
	totalPorts := 0
	for _, pc := range portCount {
		totalPorts += int(pc)
	}

	t := &Topology{
		InterposerW: gw, InterposerH: gh,
		Nodes: make([]Node, 0, numNodes),
		Links: make([]*Link, 0, numLinks),
	}
	t.linkArena = make([]Link, 0, numLinks)
	portArena := make([]Port, totalPorts)
	rng := sim.NewRNG(c.Seed)

	nextPort := 0
	newNode := func(kind NodeKind, chiplet, x, y int) NodeID {
		id := NodeID(len(t.Nodes))
		ports := portArena[nextPort : nextPort : nextPort+int(portCount[id])]
		nextPort += int(portCount[id])
		t.Nodes = append(t.Nodes, Node{
			ID: id, Kind: kind, Chiplet: chiplet, X: x, Y: y,
			Ports:         append(ports, Port{Dir: Local, Neighbor: InvalidNode, NeighborPort: InvalidPort}),
			BoundBoundary: InvalidNode,
		})
		return id
	}

	// Global interposer mesh, row-major in global coordinates. Mesh edges
	// that cross a tile border are the inter-tile bridges and carry
	// InterTileLatency.
	t.Interposer = make([]NodeID, 0, numInterposer)
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			t.Interposer = append(t.Interposer, newNode(InterposerRouter, InterposerChiplet, x, y))
		}
	}
	latencyOf := func(sameTile bool) int {
		if sameTile {
			return c.LinkLatency
		}
		return c.InterTileLatency
	}
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			n := t.Interposer[y*gw+x]
			if x+1 < gw {
				t.addLink(n, t.Interposer[y*gw+x+1], East,
					latencyOf(x/c.TileW == (x+1)/c.TileW), false)
			}
			if y+1 < gh {
				t.addLink(n, t.Interposer[(y+1)*gw+x], North,
					latencyOf(y/c.TileH == (y+1)/c.TileH), false)
			}
		}
	}

	// Chiplets, in global chiplet-grid row-major order so chiplet index ci
	// maps to grid position (ci%gridW, ci/gridW) exactly as in Build.
	t.Chiplets = make([]Chiplet, 0, numChiplets)
	for ci := 0; ci < numChiplets; ci++ {
		gx, gy := ci%gridW, ci/gridW
		ch := Chiplet{Index: ci, Width: c.ChipletW, Height: c.ChipletH, GridX: gx, GridY: gy}
		ch.Routers = make([]NodeID, 0, routersPerChiplet)
		for y := 0; y < c.ChipletH; y++ {
			for x := 0; x < c.ChipletW; x++ {
				ch.Routers = append(ch.Routers, newNode(ChipletRouter, ci, x, y))
			}
		}
		meshLinks(t, ch.Routers, c.ChipletW, c.ChipletH, c.LinkLatency)

		ch.Boundary = make([]NodeID, 0, c.BoundaryPerChiplet)
		for bi, pos := range boundaryLocal {
			b := ch.RouterAt(pos.x, pos.y)
			t.Nodes[b].Kind = BoundaryRouter
			ch.Boundary = append(ch.Boundary, b)
			ix, iy := upAt(gx, gy, bi)
			ip := t.InterposerAt(ix, iy)
			t.addLink(ip, b, Up, c.LinkLatency, true)
			t.Nodes[ip].BoundBoundary = b
		}
		t.Chiplets = append(t.Chiplets, ch)
	}

	bindChipletRouters(t, rng)
	t.finish()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: built scale system fails validation: %w", err)
	}
	return t, nil
}

// MustBuildScale is BuildScale for known-good configurations.
func MustBuildScale(c ScaleConfig) *Topology {
	t, err := BuildScale(c)
	if err != nil {
		panic(fmt.Sprintf("topology: MustBuildScale(%dx%d tiles of %dx%d, %dx%d chiplets of %dx%d): %v",
			c.TilesX, c.TilesY, c.TileW, c.TileH, c.ChipletsX, c.ChipletsY, c.ChipletW, c.ChipletH, err))
	}
	return t
}
